// Economy-level property test: a randomized mix of withdrawals, payments,
// double-spend attempts, exchanges, renewals and deposits, after which the
// system's books must balance exactly — no party can mint or destroy value
// (the "unexpandability" property, economically stated).

#include <gtest/gtest.h>

#include "crypto/chacha.h"
#include "ecash_fixture.h"

namespace p2pcash::ecash {
namespace {

class EconomyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EconomyTest, MoneyIsConserved) {
  const auto& grp = group::SchnorrGroup::test_256();
  Broker::Config config;
  config.soft_lifetime_ms = 1'000'000;
  Deployment dep(grp, 10, /*seed=*/GetParam(), config);
  auto wallet = dep.make_wallet();
  crypto::ChaChaRng dice("economy-" + std::to_string(GetParam()));
  auto ids = dep.merchant_ids();

  auto peer_wallet = dep.make_wallet();
  std::vector<WalletCoin> live_coins;  // unspent, still valid
  Cents live_value = 0;
  Timestamp now = 1'000;
  int double_spend_attempts = 0;
  int payments = 0;

  for (int step = 0; step < 60; ++step) {
    now += 100;
    switch (dice.next_u64() % 6) {
      case 0: {  // withdraw a coin of random denomination
        Cents denom = static_cast<Cents>(1 + dice.next_u64() % 50);
        auto coin = dep.withdraw(*wallet, denom, now);
        ASSERT_TRUE(coin.ok());
        live_value += denom;
        live_coins.push_back(std::move(coin).value());
        break;
      }
      case 1: {  // spend a live coin
        if (live_coins.empty()) break;
        auto idx = dice.next_u64() % live_coins.size();
        auto coin = live_coins[idx];
        live_coins.erase(live_coins.begin() +
                         static_cast<std::ptrdiff_t>(idx));
        const auto& merchant = ids[dice.next_u64() % ids.size()];
        auto result = dep.pay(*wallet, coin, merchant, now);
        if (result.accepted) {
          live_value -= coin.coin.bare.info.denomination;
          ++payments;
        } else {
          live_coins.push_back(coin);  // e.g. paid at itself twice; retry
        }
        break;
      }
      case 2: {  // attempt a double spend with a coin we already spent
        if (live_coins.empty()) break;
        auto coin = live_coins[dice.next_u64() % live_coins.size()];
        const auto& m1 = ids[dice.next_u64() % ids.size()];
        const auto& m2 = ids[dice.next_u64() % ids.size()];
        auto r1 = dep.pay(*wallet, coin, m1, now);
        auto r2 = dep.pay(*wallet, coin, m2, now + 1);
        ++double_spend_attempts;
        EXPECT_FALSE(r1.accepted && r2.accepted)
            << "double spend succeeded with honest witnesses";
        if (r1.accepted || r2.accepted) {
          live_value -= coin.coin.bare.info.denomination;
          ++payments;
        }
        // Either way the coin is burned from the wallet's view.
        for (auto it = live_coins.begin(); it != live_coins.end(); ++it) {
          if (it->coin.bare == coin.coin.bare) {
            live_coins.erase(it);
            break;
          }
        }
        break;
      }
      case 3: {  // make change
        if (live_coins.empty()) break;
        auto idx = dice.next_u64() % live_coins.size();
        auto coin = live_coins[idx];
        Cents value = coin.coin.bare.info.denomination;
        if (value < 2) break;
        live_coins.erase(live_coins.begin() +
                         static_cast<std::ptrdiff_t>(idx));
        Cents a = static_cast<Cents>(1 + dice.next_u64() % (value - 1));
        auto change = dep.exchange(*wallet, coin, {a, value - a}, now);
        ASSERT_TRUE(change.ok()) << change.refusal().detail;
        for (auto& c : change.value()) live_coins.push_back(std::move(c));
        break;
      }
      case 4: {  // deposit everything queued somewhere
        const auto& merchant = ids[dice.next_u64() % ids.size()];
        (void)dep.deposit_all(merchant, now);
        break;
      }
      case 5: {  // transfer a coin to a peer (who hands it back to the pool)
        if (live_coins.empty()) break;
        auto idx = dice.next_u64() % live_coins.size();
        auto coin = live_coins[idx];
        live_coins.erase(live_coins.begin() +
                         static_cast<std::ptrdiff_t>(idx));
        auto result = dep.transfer(*wallet, coin, *peer_wallet, now);
        ASSERT_TRUE(result.received.has_value())
            << (result.refusal ? result.refusal->detail : "double spend?");
        // The peer's coin joins the same spendable pool (same face value).
        live_coins.push_back(std::move(*result.received));
        break;
      }
    }
  }
  // Flush all deposit queues.
  now += 1000;
  for (const auto& id : ids) (void)dep.deposit_all(id, now);

  // The books: everything the broker collected equals merchant credit plus
  // the face value of coins still in the wallet. Honest run — the witness
  // security deposits are untouched and no witness is flagged.
  std::int64_t merchant_credit = 0;
  for (const auto& id : ids) {
    const auto* account = dep.broker().account(id);
    merchant_credit += account->balance;
    EXPECT_FALSE(account->flagged) << id;
  }
  EXPECT_EQ(dep.broker().fiat_collected(),
            merchant_credit + static_cast<std::int64_t>(live_value));
  EXPECT_EQ(dep.broker().fiat_paid_out(), merchant_credit);
  EXPECT_TRUE(dep.broker().witness_faults().empty());
  // Sanity: the run actually exercised the interesting paths.
  EXPECT_GT(payments + double_spend_attempts, 5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EconomyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace p2pcash::ecash
