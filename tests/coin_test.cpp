// Coin structure: serialization, verification paths, expiry, tampering.

#include "ecash/coin.h"

#include <gtest/gtest.h>

#include "ecash_fixture.h"

namespace p2pcash::ecash {
namespace {

using bn::BigInt;
using testing::EcashTest;

class CoinTest : public EcashTest {};

TEST_F(CoinTest, InfoSerializationRoundTrip) {
  CoinInfo info{100, 3, 5000, 9000, 3, 2, {}};
  auto bytes = wire::encode(info);
  auto decoded = wire::decode<CoinInfo>(bytes);
  EXPECT_EQ(decoded, info);
}

TEST_F(CoinTest, CoinSerializationRoundTrip) {
  auto wc = withdraw();
  auto bytes = wire::encode(wc.coin);
  auto decoded = wire::decode<Coin>(bytes);
  EXPECT_EQ(decoded, wc.coin);
  EXPECT_EQ(decoded.bare.coin_hash(), wc.coin.bare.coin_hash());
}

TEST_F(CoinTest, FreshCoinVerifies) {
  auto wc = withdraw();
  auto ok = verify_coin(dep_.grp(), dep_.broker().coin_key(), wc.coin, 2000);
  EXPECT_TRUE(ok.ok()) << (ok.ok() ? "" : ok.refusal().detail);
}

TEST_F(CoinTest, ExpiredCoinRefused) {
  auto wc = withdraw(100, /*now=*/1000);
  Timestamp past_soft = wc.coin.bare.info.soft_expiry + 1;
  auto ok = verify_coin(dep_.grp(), dep_.broker().coin_key(), wc.coin,
                        past_soft);
  ASSERT_FALSE(ok.ok());
  EXPECT_EQ(ok.refusal().reason, RefusalReason::kExpired);
}

TEST_F(CoinTest, TamperedInfoBreaksSignature) {
  auto wc = withdraw();
  auto tampered = wc.coin;
  tampered.bare.info.denomination = 1'000'000;  // give myself a raise
  auto ok = verify_coin(dep_.grp(), dep_.broker().coin_key(), tampered, 2000);
  ASSERT_FALSE(ok.ok());
  EXPECT_EQ(ok.refusal().reason, RefusalReason::kInvalidCoin);
}

TEST_F(CoinTest, TamperedCommitmentsBreakSignature) {
  auto wc = withdraw();
  auto tampered = wc.coin;
  tampered.bare.a = dep_.grp().exp_g(BigInt{777});
  auto ok = verify_coin(dep_.grp(), dep_.broker().coin_key(), tampered, 2000);
  ASSERT_FALSE(ok.ok());
}

TEST_F(CoinTest, SwappedWitnessEntryDetected) {
  // Attach a different merchant's (validly signed) entry: the witness
  // point check must catch the steering attempt.
  auto wc = withdraw();
  const auto& table = dep_.broker().current_table();
  const auto& honest = wc.coin.witnesses[0];
  SignedWitnessEntry other;
  bool found = false;
  for (const auto& e : table.entries()) {
    if (e.merchant != honest.merchant) {
      other = e;
      found = true;
      break;
    }
  }
  ASSERT_TRUE(found);
  auto tampered = wc.coin;
  tampered.witnesses[0] = other;
  auto ok = verify_coin(dep_.grp(), dep_.broker().coin_key(), tampered, 2000);
  ASSERT_FALSE(ok.ok());
  EXPECT_EQ(ok.refusal().reason, RefusalReason::kWrongWitness);
}

TEST_F(CoinTest, ForgedWitnessEntrySignatureDetected) {
  auto wc = withdraw();
  auto tampered = wc.coin;
  // Widen my own range to cover the coin (forged bounds, stale signature).
  tampered.witnesses[0].lo = BigInt{0};
  tampered.witnesses[0].hi = BigInt{1} << kRangeBits;
  auto ok = verify_coin(dep_.grp(), dep_.broker().coin_key(), tampered, 2000);
  ASSERT_FALSE(ok.ok());
  EXPECT_EQ(ok.refusal().reason, RefusalReason::kBadSignature);
}

TEST_F(CoinTest, WitnessCountMismatchDetected) {
  auto wc = withdraw();
  auto tampered = wc.coin;
  tampered.witnesses.push_back(tampered.witnesses[0]);
  auto ok = verify_coin(dep_.grp(), dep_.broker().coin_key(), tampered, 2000);
  ASSERT_FALSE(ok.ok());
}

TEST_F(CoinTest, BadWitnessPolicyDetected) {
  auto wc = withdraw();
  auto tampered = wc.coin;
  tampered.bare.info.witness_k = 0;
  auto ok = verify_coin(dep_.grp(), dep_.broker().coin_key(), tampered, 2000);
  ASSERT_FALSE(ok.ok());
}

TEST_F(CoinTest, SecretPathVerifierAgrees) {
  auto wc = withdraw();
  // The broker's cheap self-check accepts genuine bare coins…
  EXPECT_TRUE(verify_bare_coin_with_secret(
                  dep_.grp(), BigInt{0} /* wrong secret */, wc.coin.bare)
                  .ok() == false);
  // (wrong secret fails; the genuine-path equivalence is covered in
  // blindsig_test and implicitly by every deposit in the suite).
}

TEST_F(CoinTest, CoinHashUniquePerCoin) {
  auto c1 = withdraw();
  auto c2 = withdraw();
  EXPECT_NE(c1.coin.bare.coin_hash(), c2.coin.bare.coin_hash());
  EXPECT_NE(c1.coin.bare.a, c2.coin.bare.a);
}

TEST_F(CoinTest, WitnessPointMatchesAssignedEntry) {
  for (int i = 0; i < 5; ++i) {
    auto wc = withdraw();
    auto point = witness_point(wc.coin.bare.coin_hash(), 0);
    EXPECT_TRUE(wc.coin.witnesses[0].contains(point));
    // And the entry is the one the broker's table prescribes.
    auto expected = dep_.broker().current_table().lookup(point);
    ASSERT_TRUE(expected.has_value());
    EXPECT_EQ(expected->merchant, wc.coin.witnesses[0].merchant);
  }
}

TEST_F(CoinTest, ClientCannotSteerWitness) {
  // The witness distribution over many withdrawals must touch multiple
  // merchants (the client has no control over h(bare coin)).
  std::set<MerchantId> seen;
  for (int i = 0; i < 24 && seen.size() < 3; ++i) {
    seen.insert(withdraw().coin.witnesses[0].merchant);
  }
  EXPECT_GE(seen.size(), 3u);
}

}  // namespace
}  // namespace p2pcash::ecash
