// ChaCha20 block function (RFC 8439 §2.3.2) and the deterministic RNG.

#include "crypto/chacha.h"

#include <gtest/gtest.h>

#include <map>

#include "crypto/encoding.h"

namespace p2pcash::crypto {
namespace {

TEST(ChaChaBlock, Rfc8439Vector) {
  std::array<std::uint32_t, 8> key;
  for (int i = 0; i < 8; ++i) {
    key[i] = static_cast<std::uint32_t>(4 * i) |
             (static_cast<std::uint32_t>(4 * i + 1) << 8) |
             (static_cast<std::uint32_t>(4 * i + 2) << 16) |
             (static_cast<std::uint32_t>(4 * i + 3) << 24);
  }
  std::array<std::uint32_t, 3> nonce = {0x09000000, 0x4a000000, 0x00000000};
  std::array<std::uint8_t, 64> out;
  chacha20_block(key, 1, nonce, out);
  EXPECT_EQ(to_hex(out),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e"
            "d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e");
}

TEST(ChaChaRng, DeterministicFromSeed) {
  ChaChaRng a("seed");
  ChaChaRng b("seed");
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(ChaChaRng, DifferentSeedsDiverge) {
  ChaChaRng a("seed-1");
  ChaChaRng b("seed-2");
  bool differ = false;
  for (int i = 0; i < 4 && !differ; ++i) differ = a.next_u64() != b.next_u64();
  EXPECT_TRUE(differ);
}

TEST(ChaChaRng, IntegerSeedDeterministic) {
  ChaChaRng a(std::uint64_t{42});
  ChaChaRng b(std::uint64_t{42});
  ChaChaRng c(std::uint64_t{43});
  EXPECT_EQ(a.next_u64(), b.next_u64());
  EXPECT_NE(a.next_u64(), c.next_u64());
}

TEST(ChaChaRng, FillSpansBlockBoundaries) {
  ChaChaRng whole("boundary");
  std::vector<std::uint8_t> big(200);
  whole.fill(big);

  ChaChaRng pieces("boundary");
  std::vector<std::uint8_t> assembled;
  for (std::size_t taken = 0; taken < 200;) {
    std::size_t n = std::min<std::size_t>(33, 200 - taken);
    std::vector<std::uint8_t> chunk(n);
    pieces.fill(chunk);
    assembled.insert(assembled.end(), chunk.begin(), chunk.end());
    taken += n;
  }
  EXPECT_EQ(big, assembled);
}

TEST(ChaChaRng, ForkIsIndependent) {
  ChaChaRng parent("fork-base");
  ChaChaRng child = parent.fork("wallet");
  // Child does not replay parent output.
  ChaChaRng parent2("fork-base");
  ChaChaRng child2 = parent2.fork("wallet");
  EXPECT_EQ(child.next_u64(), child2.next_u64());  // deterministic fork
  ChaChaRng other = parent2.fork("merchant");
  // Different labels after identical state → different streams... but note
  // the parent consumed bytes for the first fork, so re-fork from a fresh
  // parent for a fair label comparison.
  ChaChaRng parent3("fork-base");
  ChaChaRng child3 = parent3.fork("merchant");
  EXPECT_NE(child2.next_u64(), child3.next_u64());
  (void)other;
}

TEST(ChaChaRng, ByteDistributionSanity) {
  // Chi-square-ish smoke: each of 256 byte values should appear roughly
  // uniformly over 256 KiB of output.
  ChaChaRng rng("distribution");
  std::vector<std::uint8_t> buf(256 * 1024);
  rng.fill(buf);
  std::map<std::uint8_t, std::size_t> counts;
  for (auto b : buf) counts[b]++;
  const double expected = static_cast<double>(buf.size()) / 256.0;
  for (const auto& [value, count] : counts) {
    EXPECT_GT(count, expected * 0.8) << int(value);
    EXPECT_LT(count, expected * 1.2) << int(value);
  }
  EXPECT_EQ(counts.size(), 256u);
}

TEST(SystemRng, ProducesBytes) {
  SystemRng rng;
  std::vector<std::uint8_t> a(32), b(32);
  rng.fill(a);
  rng.fill(b);
  EXPECT_NE(a, b);  // 2^-256 false-failure probability
}

}  // namespace
}  // namespace p2pcash::crypto
