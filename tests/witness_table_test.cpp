// Witness range tables: construction, weighting, lookup, validation,
// and the non-malleability / non-steerability of witness assignment.

#include "ecash/witness_table.h"

#include <gtest/gtest.h>

#include <limits>
#include <map>

#include "crypto/chacha.h"
#include "ecash/coin.h"

namespace p2pcash::ecash {
namespace {

using bn::BigInt;

const group::SchnorrGroup& grp() { return group::SchnorrGroup::test_256(); }

struct Fixture {
  crypto::ChaChaRng rng{"wt-fixture"};
  sig::KeyPair broker = sig::KeyPair::generate(grp(), rng);

  WitnessTable build(std::vector<std::pair<MerchantId, std::uint64_t>> spec,
                     std::uint32_t version = 1) {
    std::vector<WitnessTable::Participant> participants;
    for (auto& [id, weight] : spec) {
      auto key = sig::KeyPair::generate(grp(), rng);
      participants.push_back({id, key.public_key(), weight});
    }
    return WitnessTable::build(version, /*published_at=*/1000, participants,
                               broker, rng);
  }
};

TEST(WitnessTable, CoversWholeSpaceExactly) {
  Fixture f;
  auto table = f.build({{"a", 1}, {"b", 1}, {"c", 1}});
  EXPECT_TRUE(table.validate(grp(), f.broker.public_key()));
  const BigInt space = BigInt{1} << kRangeBits;
  BigInt covered{0};
  for (const auto& e : table.entries()) covered += e.hi - e.lo;
  EXPECT_EQ(covered, space);
  EXPECT_EQ(table.entries().front().lo, BigInt{0});
  EXPECT_EQ(table.entries().back().hi, space);
}

TEST(WitnessTable, WeightsScaleRanges) {
  Fixture f;
  auto table = f.build({{"small", 1}, {"big", 9}});
  const BigInt small_size =
      table.entries()[0].hi - table.entries()[0].lo;
  const BigInt big_size = table.entries()[1].hi - table.entries()[1].lo;
  // big gets 9x the space (within rounding of one part in 2^160).
  EXPECT_TRUE(big_size > small_size * BigInt{8});
  EXPECT_TRUE(big_size < small_size * BigInt{10});
}

TEST(WitnessTable, LookupFindsContainingRange) {
  Fixture f;
  auto table = f.build({{"a", 1}, {"b", 2}, {"c", 3}});
  // Boundary points: lo inclusive, hi exclusive.
  for (const auto& e : table.entries()) {
    auto hit = table.lookup(e.lo);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->merchant, e.merchant);
    auto last = table.lookup(e.hi - BigInt{1});
    ASSERT_TRUE(last.has_value());
    EXPECT_EQ(last->merchant, e.merchant);
  }
  // Out-of-space point.
  EXPECT_FALSE(table.lookup(BigInt{1} << kRangeBits).has_value());
}

TEST(WitnessTable, FindByMerchant) {
  Fixture f;
  auto table = f.build({{"a", 1}, {"b", 1}});
  EXPECT_TRUE(table.find("a").has_value());
  EXPECT_TRUE(table.find("b").has_value());
  EXPECT_FALSE(table.find("zzz").has_value());
}

TEST(WitnessTable, ValidateDetectsTampering) {
  Fixture f;
  auto table = f.build({{"a", 1}, {"b", 1}});
  EXPECT_TRUE(table.validate(grp(), f.broker.public_key()));

  // Serialize, tamper with a range bound, deserialize: must fail.
  wire::Writer w;
  table.encode(w);
  auto bytes = w.take();
  wire::Reader r(bytes);
  auto decoded = WitnessTable::decode(r);
  EXPECT_TRUE(decoded.validate(grp(), f.broker.public_key()));

  // Forged entry: swap the two merchants' ranges (keeps coverage, breaks
  // the signatures).
  wire::Writer w2;
  auto copy = table;
  w2 = wire::Writer{};
  copy.encode(w2);
  auto raw = w2.take();
  wire::Reader r2(raw);
  auto mutated = WitnessTable::decode(r2);
  EXPECT_TRUE(mutated.validate(grp(), f.broker.public_key()));
  // Wrong broker key must fail validation outright.
  crypto::ChaChaRng rng2("other");
  auto other = sig::KeyPair::generate(grp(), rng2);
  EXPECT_FALSE(table.validate(grp(), other.public_key()));
}

TEST(WitnessTable, EntrySignatureBindsAllFields) {
  Fixture f;
  auto table = f.build({{"a", 1}, {"b", 1}});
  auto entry = table.entries()[0];
  auto check = [&](const SignedWitnessEntry& e) {
    return sig::verify(grp(), f.broker.public_key(), e.signed_payload(),
                       e.broker_sig);
  };
  EXPECT_TRUE(check(entry));
  auto bad = entry;
  bad.merchant = "mallory";
  EXPECT_FALSE(check(bad));
  bad = entry;
  bad.lo = bad.lo + BigInt{1};
  EXPECT_FALSE(check(bad));
  bad = entry;
  bad.hi = bad.hi - BigInt{1};
  EXPECT_FALSE(check(bad));
  bad = entry;
  bad.version = 99;
  EXPECT_FALSE(check(bad));
  bad = entry;
  bad.witness_key.y = grp().exp_g(BigInt{5});
  EXPECT_FALSE(check(bad));
}

TEST(WitnessTable, RejectsDegenerateInputs) {
  Fixture f;
  EXPECT_THROW(WitnessTable::build(1, 0, {}, f.broker, f.rng),
               std::invalid_argument);
  std::vector<WitnessTable::Participant> zero_weight = {
      {"a", f.broker.public_key(), 0}};
  EXPECT_THROW(WitnessTable::build(1, 0, zero_weight, f.broker, f.rng),
               std::invalid_argument);
  // Regression: total weight is accumulated in a uint64 — two near-max
  // weights would silently wrap and corrupt every range boundary.
  std::vector<WitnessTable::Participant> wrapping = {
      {"a", f.broker.public_key(),
       std::numeric_limits<std::uint64_t>::max() - 1},
      {"b", f.broker.public_key(), 2}};
  EXPECT_THROW(WitnessTable::build(1, 0, wrapping, f.broker, f.rng),
               std::overflow_error);
}

TEST(WitnessTable, SerializationRoundTrip) {
  Fixture f;
  auto table = f.build({{"x", 3}, {"y", 1}, {"z", 2}}, /*version=*/7);
  wire::Writer w;
  table.encode(w);
  auto bytes = w.take();
  wire::Reader r(bytes);
  auto decoded = WitnessTable::decode(r);
  EXPECT_EQ(decoded.version(), 7u);
  EXPECT_EQ(decoded.published_at(), table.published_at());
  EXPECT_EQ(decoded.entries(), table.entries());
}

TEST(WitnessAssignment, FollowsWeightsStatistically) {
  // Withdraw many coins and check assignment frequencies track range
  // weights — the broker's incentive mechanism (paper §4).
  Fixture f;
  auto table = f.build({{"light", 1}, {"heavy", 3}});
  crypto::ChaChaRng rng("assign");
  std::map<MerchantId, int> hits;
  const int kTrials = 400;
  for (int i = 0; i < kTrials; ++i) {
    // Witness points of random coins are uniform: model with random
    // 160-bit values (the real h(bare coin) is a hash output).
    BigInt point = bn::random_bits(rng, kRangeBits);
    auto entry = table.lookup(point);
    ASSERT_TRUE(entry.has_value());
    hits[entry->merchant]++;
  }
  // heavy should get ~75%; allow generous statistical slack.
  EXPECT_GT(hits["heavy"], kTrials * 0.65);
  EXPECT_LT(hits["heavy"], kTrials * 0.85);
  EXPECT_GT(hits["light"], kTrials * 0.15);
}

TEST(WitnessPoint, DerivationIsStable) {
  std::array<std::uint8_t, 32> hash{};
  hash[0] = 0xab;
  auto p0 = witness_point(hash, 0);
  auto p0_again = witness_point(hash, 0);
  auto p1 = witness_point(hash, 1);
  EXPECT_EQ(p0, p0_again);
  EXPECT_NE(p0, p1);
  EXPECT_LT(p0, BigInt{1} << kRangeBits);
  EXPECT_LT(p1, BigInt{1} << kRangeBits);
  // Slot 0 is the truncated coin hash itself.
  EXPECT_EQ(p0, BigInt::from_bytes_be(
                    std::span<const std::uint8_t>(hash.data(), 20)));
}

}  // namespace
}  // namespace p2pcash::ecash
