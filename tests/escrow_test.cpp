// The escrow extension: ElGamal hybrid encryption and traceable coins.

#include "escrow/escrow.h"

#include <gtest/gtest.h>

#include "ecash_fixture.h"

namespace p2pcash::escrow {
namespace {

using bn::BigInt;

const group::SchnorrGroup& grp() { return group::SchnorrGroup::test_256(); }

std::vector<std::uint8_t> bytes(std::string_view s) {
  return {s.begin(), s.end()};
}

TEST(ElGamal, EncryptDecryptRoundTrip) {
  crypto::ChaChaRng rng("eg-rt");
  auto keys = ElGamalKeyPair::generate(grp(), rng);
  const std::vector<std::string> messages = {"", "x", "alice@example.org",
                                             std::string(500, 'z')};
  for (const std::string& msg : messages) {
    auto ct = encrypt(grp(), keys.y, bytes(msg), rng);
    auto pt = decrypt(grp(), keys.x, ct);
    ASSERT_TRUE(pt.has_value()) << msg.size();
    EXPECT_EQ(*pt, bytes(msg));
  }
}

TEST(ElGamal, WrongKeyFails) {
  crypto::ChaChaRng rng("eg-wrong");
  auto keys = ElGamalKeyPair::generate(grp(), rng);
  auto other = ElGamalKeyPair::generate(grp(), rng);
  auto ct = encrypt(grp(), keys.y, bytes("secret"), rng);
  EXPECT_FALSE(decrypt(grp(), other.x, ct).has_value());
}

TEST(ElGamal, TamperDetected) {
  crypto::ChaChaRng rng("eg-tamper");
  auto keys = ElGamalKeyPair::generate(grp(), rng);
  auto ct = encrypt(grp(), keys.y, bytes("secret"), rng);
  auto bad_body = ct;
  bad_body.body[0] ^= 1;
  EXPECT_FALSE(decrypt(grp(), keys.x, bad_body).has_value());
  auto bad_mac = ct;
  bad_mac.mac[0] ^= 1;
  EXPECT_FALSE(decrypt(grp(), keys.x, bad_mac).has_value());
  auto bad_eph = ct;
  bad_eph.ephemeral = grp().exp_g(BigInt{5});
  EXPECT_FALSE(decrypt(grp(), keys.x, bad_eph).has_value());
}

TEST(ElGamal, CiphertextsAreRandomized) {
  crypto::ChaChaRng rng("eg-rand");
  auto keys = ElGamalKeyPair::generate(grp(), rng);
  auto c1 = encrypt(grp(), keys.y, bytes("same"), rng);
  auto c2 = encrypt(grp(), keys.y, bytes("same"), rng);
  EXPECT_NE(c1, c2);  // fresh ephemeral per encryption (IND-CPA requirement)
  EXPECT_NE(c1.body, c2.body);
}

TEST(ElGamal, EncodingRoundTrip) {
  crypto::ChaChaRng rng("eg-codec");
  auto keys = ElGamalKeyPair::generate(grp(), rng);
  auto ct = encrypt(grp(), keys.y, bytes("payload"), rng);
  auto encoded = encode_ciphertext(ct);
  auto decoded = decode_ciphertext(encoded);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, ct);
  // Truncated / garbage encodings return nullopt, never throw.
  for (std::size_t cut = 0; cut < encoded.size(); cut += 7) {
    EXPECT_FALSE(decode_ciphertext(
                     std::span<const std::uint8_t>(encoded.data(), cut))
                     .has_value());
  }
}

class EscrowCoinTest : public ecash::testing::EcashTest {
 protected:
  EscrowCoinTest() : authority_(EscrowAuthority::create(dep_.grp(), rng_)) {}

  ecash::WalletCoin withdraw_escrowed(const std::string& identity) {
    auto offer = dep_.broker().start_withdrawal_escrowed(
        100, identity, authority_.public_y(), 1000);
    EXPECT_TRUE(offer.ok());
    auto state = wallet_->begin_withdrawal(offer.value());
    auto response =
        dep_.broker().finish_withdrawal(state.session, state.e);
    EXPECT_TRUE(response.ok());
    auto coin = wallet_->complete_withdrawal(state, response.value(),
                                             dep_.broker().current_table());
    EXPECT_TRUE(coin.ok());
    return std::move(coin).value();
  }

  crypto::ChaChaRng rng_{"escrow-authority"};
  EscrowAuthority authority_;
};

TEST_F(EscrowCoinTest, AuthorityTracesTheOwner) {
  auto coin = withdraw_escrowed("alice@example.org");
  EXPECT_FALSE(coin.coin.bare.info.escrow_tag.empty());
  auto traced = authority_.trace(coin.coin);
  ASSERT_TRUE(traced.ok());
  EXPECT_EQ(traced.value(), "alice@example.org");
}

TEST_F(EscrowCoinTest, EscrowedCoinSpendsNormally) {
  auto coin = withdraw_escrowed("bob@example.org");
  auto merchant = non_witness_merchant(coin);
  EXPECT_TRUE(dep_.pay(*wallet_, coin, merchant, 2000).accepted);
  EXPECT_EQ(dep_.deposit_all(merchant, 3000).credited, 100u);
  // Even after circulation the authority can still trace it (from the
  // deposited transcript's coin, which carries the same info).
  EXPECT_TRUE(authority_.trace(coin.coin).ok());
}

TEST_F(EscrowCoinTest, BareCoinsAreUntraceable) {
  auto coin = withdraw();  // regular withdrawal: empty tag
  EXPECT_TRUE(coin.coin.bare.info.escrow_tag.empty());
  auto traced = authority_.trace(coin.coin);
  EXPECT_FALSE(traced.ok());
}

TEST_F(EscrowCoinTest, OnlyTheAuthorityCanTrace) {
  auto coin = withdraw_escrowed("carol@example.org");
  auto impostor = EscrowAuthority::create(dep_.grp(), rng_);
  EXPECT_FALSE(impostor.trace(coin.coin).ok());
}

TEST_F(EscrowCoinTest, TagCannotBeStrippedOrSwapped) {
  auto coin = withdraw_escrowed("dave@example.org");
  // Strip the tag: the blind signature covers info, so the coin dies.
  auto stripped = coin.coin;
  stripped.bare.info.escrow_tag.clear();
  EXPECT_FALSE(
      ecash::verify_coin(dep_.grp(), dep_.broker().coin_key(), stripped, 2000)
          .ok());
  // Swap in another coin's tag: same.
  auto other = withdraw_escrowed("eve@example.org");
  auto swapped = coin.coin;
  swapped.bare.info.escrow_tag = other.coin.bare.info.escrow_tag;
  EXPECT_FALSE(
      ecash::verify_coin(dep_.grp(), dep_.broker().coin_key(), swapped, 2000)
          .ok());
}

TEST_F(EscrowCoinTest, DistinctCoinsDistinctTags) {
  // Same client, two coins: tags must differ (randomized encryption), so
  // merchants cannot link two escrowed coins to one another — only the
  // authority (and the issuing broker) can.
  auto c1 = withdraw_escrowed("frank@example.org");
  auto c2 = withdraw_escrowed("frank@example.org");
  EXPECT_NE(c1.coin.bare.info.escrow_tag, c2.coin.bare.info.escrow_tag);
  EXPECT_EQ(authority_.trace(c1.coin).value(), "frank@example.org");
  EXPECT_EQ(authority_.trace(c2.coin).value(), "frank@example.org");
}

TEST_F(EscrowCoinTest, DoubleSpendOfEscrowedCoinTraceable) {
  // The full escrow story: a double-spender of an escrowed coin is blocked
  // in real time AND identifiable via the authority.
  auto coin = withdraw_escrowed("mallory@example.org");
  auto ids = dep_.merchant_ids();
  ASSERT_TRUE(dep_.pay(*wallet_, coin, ids[0], 2000).accepted);
  auto fraud = dep_.pay(*wallet_, coin, ids[1], 3000);
  ASSERT_FALSE(fraud.accepted);
  ASSERT_TRUE(fraud.double_spend_proof.has_value());
  // The merchant hands coin + proof to the authority:
  auto who = authority_.trace(coin.coin);
  ASSERT_TRUE(who.ok());
  EXPECT_EQ(who.value(), "mallory@example.org");
}

}  // namespace
}  // namespace p2pcash::escrow
