// Integration: the full withdraw → pay → deposit lifecycle (completeness).

#include <gtest/gtest.h>

#include "ecash_fixture.h"

namespace p2pcash::ecash {
namespace {

using testing::EcashTest;

class RoundTripTest : public EcashTest {};

TEST_F(RoundTripTest, HappyPath) {
  auto coin = withdraw(100);
  auto merchant = non_witness_merchant(coin);
  auto result = dep_.pay(*wallet_, coin, merchant, 2000);
  ASSERT_TRUE(result.accepted) << (result.refusal ? result.refusal->detail : "");
  EXPECT_EQ(dep_.node(merchant).merchant->services_delivered(), 1u);

  auto summary = dep_.deposit_all(merchant, 3000);
  EXPECT_EQ(summary.accepted, 1u);
  EXPECT_EQ(summary.credited, 100u);
  EXPECT_EQ(dep_.broker().account(merchant)->balance, 100);
  EXPECT_EQ(dep_.broker().coins_deposited(), 1u);
}

TEST_F(RoundTripTest, PayingAtTheWitnessItselfWorks) {
  // A merchant can accept coins it witnesses ("witness and merchant on the
  // same hardware").
  auto coin = withdraw(100);
  auto witness_id = coin.coin.witnesses[0].merchant;
  auto result = dep_.pay(*wallet_, coin, witness_id, 2000);
  EXPECT_TRUE(result.accepted);
  EXPECT_EQ(dep_.deposit_all(witness_id, 3000).accepted, 1u);
}

TEST_F(RoundTripTest, ManyCoinsManyMerchants) {
  const auto ids = dep_.merchant_ids();
  std::map<MerchantId, Cents> expected;
  for (int i = 0; i < 12; ++i) {
    auto coin = withdraw(25, 1000 + i);
    const auto& merchant = ids[static_cast<std::size_t>(i) % ids.size()];
    auto result = dep_.pay(*wallet_, coin, merchant, 2000 + i);
    ASSERT_TRUE(result.accepted) << i;
    expected[merchant] += 25;
  }
  for (const auto& [merchant, total] : expected) {
    auto summary = dep_.deposit_all(merchant, 5000);
    EXPECT_EQ(summary.credited, total) << merchant;
    EXPECT_EQ(summary.refused, 0u);
  }
  EXPECT_EQ(dep_.broker().coins_issued(), 12u);
  EXPECT_EQ(dep_.broker().coins_deposited(), 12u);
  EXPECT_EQ(dep_.broker().fiat_collected(), 12 * 25);
  EXPECT_EQ(dep_.broker().fiat_paid_out(), 12 * 25);
}

TEST_F(RoundTripTest, WalletBookkeeping) {
  wallet_->add_coin(withdraw(100));
  wallet_->add_coin(withdraw(25));
  wallet_->add_coin(withdraw(25));
  EXPECT_EQ(wallet_->balance(), 150u);
  auto coin = wallet_->take_coin(25);
  ASSERT_TRUE(coin.has_value());
  EXPECT_EQ(wallet_->balance(), 125u);
  EXPECT_FALSE(wallet_->take_coin(999).has_value());
}

TEST_F(RoundTripTest, DistinctWalletsDistinctCoins) {
  auto wallet2 = dep_.make_wallet();
  auto c1 = withdraw();
  auto c2o = dep_.withdraw(*wallet2, 100, 1000);
  ASSERT_TRUE(c2o.ok());
  EXPECT_NE(c1.coin.bare.coin_hash(), c2o.value().coin.bare.coin_hash());
}

TEST_F(RoundTripTest, ZeroDenominationRefused) {
  auto outcome = dep_.broker().start_withdrawal(0, 1000);
  EXPECT_FALSE(outcome.ok());
}

TEST_F(RoundTripTest, WithdrawalSessionSingleSignature) {
  auto offer = dep_.broker().start_withdrawal(100, 1000);
  ASSERT_TRUE(offer.ok());
  auto state = wallet_->begin_withdrawal(offer.value());
  auto r1 = dep_.broker().finish_withdrawal(state.session, state.e);
  ASSERT_TRUE(r1.ok());
  // Retransmitting the same challenge (lost response, client retry) is
  // idempotent: the recorded response comes back, no new signature.
  auto r2 = dep_.broker().finish_withdrawal(state.session, state.e);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2.value().r, r1.value().r);
  EXPECT_EQ(r2.value().c, r1.value().c);
  EXPECT_EQ(r2.value().s, r1.value().s);
  EXPECT_EQ(dep_.broker().coins_issued(), 1u);
  // A *different* challenge on the answered session (a bid for a second
  // signature) must still fail.
  auto r3 = dep_.broker().finish_withdrawal(state.session, state.e + 1);
  ASSERT_FALSE(r3.ok());
  EXPECT_EQ(r3.refusal().reason, RefusalReason::kStaleRequest);
}

TEST_F(RoundTripTest, CoinsCarryBrokerConfiguredExpiry) {
  Timestamp now = 50'000;
  auto coin = withdraw(100, now);
  const auto& cfg = dep_.broker().config();
  EXPECT_EQ(coin.coin.bare.info.soft_expiry, now + cfg.soft_lifetime_ms);
  EXPECT_EQ(coin.coin.bare.info.hard_expiry,
            now + cfg.soft_lifetime_ms + cfg.renewal_window_ms);
  EXPECT_EQ(coin.coin.bare.info.list_version, 1u);
}

class MultiWitnessRoundTrip : public EcashTest {
 protected:
  static Broker::Config multi_config() {
    Broker::Config config;
    config.witness_n = 3;
    config.witness_k = 2;
    return config;
  }
  MultiWitnessRoundTrip() : EcashTest(multi_config()) {}
};

TEST_F(MultiWitnessRoundTrip, TwoOfThreeWitnessesSuffice) {
  auto coin = withdraw(100);
  EXPECT_EQ(coin.coin.witnesses.size(), 3u);
  auto merchant = non_witness_merchant(coin);
  auto result = dep_.pay(*wallet_, coin, merchant, 2000);
  ASSERT_TRUE(result.accepted)
      << (result.refusal ? result.refusal->detail : "");
  auto summary = dep_.deposit_all(merchant, 3000);
  EXPECT_EQ(summary.accepted, 1u);
}

TEST_F(MultiWitnessRoundTrip, SurvivesOneWitnessOffline) {
  auto coin = withdraw(100);
  // Knock out the first witness; 2-of-3 must still complete.  (Witness
  // slots can collide on the same merchant; skip if that merchant is also
  // slot 1's owner.)
  auto w0 = coin.coin.witnesses[0].merchant;
  dep_.set_offline(w0, true);
  auto merchant = non_witness_merchant(coin);
  auto result = dep_.pay(*wallet_, coin, merchant, 2000);
  std::set<MerchantId> distinct;
  for (const auto& w : coin.coin.witnesses) distinct.insert(w.merchant);
  if (distinct.size() >= 3) {
    EXPECT_TRUE(result.accepted)
        << (result.refusal ? result.refusal->detail : "");
  }
  dep_.set_offline(w0, false);
}

TEST_F(MultiWitnessRoundTrip, TwoWitnessesOfflineBlocksPayment) {
  auto coin = withdraw(100);
  std::set<MerchantId> distinct;
  for (const auto& w : coin.coin.witnesses) distinct.insert(w.merchant);
  if (distinct.size() < 3) return;  // collided slots: scenario not expressible
  auto it = distinct.begin();
  dep_.set_offline(*it++, true);
  dep_.set_offline(*it, true);
  auto merchant = non_witness_merchant(coin);
  auto result = dep_.pay(*wallet_, coin, merchant, 2000);
  EXPECT_FALSE(result.accepted);
}

}  // namespace
}  // namespace p2pcash::ecash
