// Loopback TCP transport: real sockets, framing, reconnect and flow
// control.  Labeled "transport" so the TSan CI lane runs the whole suite
// under the race detector — the io thread, worker strands and external
// senders all touch the same TcpNet.
//
// The transport's delivery model is UDP-like by design (sends may be lost
// while a connection dials or a queue is capped), so round-trip tests
// retry sends until the reply lands, exactly like the protocol actors do.

#include "transport/tcp_net.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace p2pcash::transport {
namespace {

using namespace std::chrono_literals;
using simnet::Message;

bool wait_until(const std::function<bool()>& pred,
                std::chrono::milliseconds timeout = 10'000ms) {
  auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(2ms);
  }
  return pred();
}

Message make_msg(NodeId from, NodeId to, std::string type,
                 std::vector<std::uint8_t> payload) {
  Message msg;
  msg.from = from;
  msg.to = to;
  msg.type = std::move(type);
  msg.payload = std::move(payload);
  return msg;
}

/// Records every delivered message (handlers run on this node's strand;
/// the mutex only bridges to the test thread's assertions).
class Recorder : public simnet::Node {
 public:
  void on_message(const Message& msg) override {
    std::lock_guard<std::mutex> lock(mu_);
    messages_.push_back(msg);
  }
  std::size_t count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return messages_.size();
  }
  std::vector<Message> messages() const {
    std::lock_guard<std::mutex> lock(mu_);
    return messages_;
  }

 private:
  mutable std::mutex mu_;
  std::vector<Message> messages_;
};

/// Replies to every message with a "pong" carrying the same payload.
class Echo : public simnet::Node {
 public:
  void bind(Transport& tx) { tx_ = &tx; }
  void on_message(const Message& msg) override {
    tx_->send(make_msg(id(), msg.from, "pong", msg.payload));
  }

 private:
  Transport* tx_ = nullptr;
};

/// Stalls its strand on every delivery, backing the mailbox up into the
/// inbound flow-control path.
class SlowReader : public simnet::Node {
 public:
  void on_message(const Message&) override {
    std::this_thread::sleep_for(200us);
    count_.fetch_add(1, std::memory_order_relaxed);
  }
  std::size_t count() const { return count_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::size_t> count_{0};
};

/// Reconnect pacing tightened so outage tests converge in milliseconds.
TcpNet::Options fast_options() {
  TcpNet::Options options;
  options.worker_threads = 2;
  options.reconnect.backoff_base_ms = 10;
  options.reconnect.backoff_cap_ms = 50;
  options.reconnect.max_attempts = 200;
  options.breaker.failure_threshold = 3;
  options.breaker.open_ms = 100;
  return options;
}

TEST(Envelope, RoundTripAndTruncationSafety) {
  Message msg = make_msg(3, 7, "payment/request", {0x00, 0x01, 0xfe, 0xff});
  auto bytes = encode_envelope(msg);
  Message back = decode_envelope(bytes);
  EXPECT_EQ(back.from, msg.from);
  EXPECT_EQ(back.to, msg.to);
  EXPECT_EQ(back.type, msg.type);
  EXPECT_EQ(back.payload, msg.payload);
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    std::span<const std::uint8_t> prefix(bytes.data(), cut);
    EXPECT_THROW((void)decode_envelope(prefix), wire::DecodeError) << cut;
  }
  // Trailing garbage is a framing violation, not silently ignored.
  auto padded = bytes;
  padded.push_back(0xaa);
  EXPECT_THROW((void)decode_envelope(padded), wire::DecodeError);
}

TEST(TcpTransport, EndpointsGetDistinctLoopbackPorts) {
  TcpNet net(fast_options());
  Recorder a, b, c;
  NodeId ia = net.attach(a), ib = net.attach(b), ic = net.attach(c);
  EXPECT_EQ(a.id(), ia);
  EXPECT_NE(net.port(ia), 0);
  EXPECT_NE(net.port(ib), 0);
  EXPECT_NE(net.port(ic), 0);
  EXPECT_NE(net.port(ia), net.port(ib));
  net.start();
  Recorder late;
  EXPECT_THROW(net.attach(late), std::logic_error);
  net.stop();
}

TEST(TcpTransport, EchoRoundTrip) {
  TcpNet net(fast_options());
  Echo echo;
  Recorder client;
  NodeId echo_id = net.attach(echo);
  NodeId client_id = net.attach(client);
  echo.bind(net);
  net.start();

  const std::vector<std::uint8_t> payload = {9, 8, 7, 6};
  ASSERT_TRUE(wait_until([&] {
    if (client.count() > 0) return true;
    net.send(make_msg(client_id, echo_id, "ping", payload));
    return false;
  })) << "no pong within the deadline";
  auto msgs = client.messages();
  ASSERT_FALSE(msgs.empty());
  EXPECT_EQ(msgs[0].type, "pong");
  EXPECT_EQ(msgs[0].payload, payload);
  EXPECT_EQ(msgs[0].from, echo_id);
  EXPECT_EQ(msgs[0].to, client_id);
  net.stop();

  auto stats = net.stats();
  EXPECT_GT(stats.connects, 0u);
  EXPECT_GT(stats.messages_received, 0u);
  EXPECT_GT(stats.bytes_sent, 0u);
  EXPECT_EQ(stats.decode_errors, 0u);
}

TEST(TcpTransport, TimersAndPostsRunOnTheEndpointStrand) {
  TcpNet net(fast_options());
  Recorder node;
  NodeId id = net.attach(node);
  net.start();

  // Strand contract: post()ed work and timer callbacks for one endpoint
  // never run concurrently with each other or with deliveries.  The
  // unguarded counter below is the assertion — TSan fails the lane if two
  // strand tasks ever overlap.
  struct State {
    int unguarded = 0;
    std::atomic<int> done{0};
  };
  auto state = std::make_shared<State>();
  constexpr int kTasks = 200;
  for (int i = 0; i < kTasks; ++i) {
    net.post(id, [state] {
      ++state->unguarded;
      state->done.fetch_add(1, std::memory_order_release);
    });
  }
  net.schedule_on(id, 5, [state] {
    ++state->unguarded;
    state->done.fetch_add(1, std::memory_order_release);
  });
  ASSERT_TRUE(wait_until(
      [&] { return state->done.load(std::memory_order_acquire) == kTasks + 1; }));
  EXPECT_EQ(state->unguarded, kTasks + 1);
  EXPECT_GT(net.stats().timers_fired, 0u);
  net.stop();
}

TEST(TcpTransport, ConcurrentSendersDeliverInPerSenderOrder) {
  auto options = fast_options();
  options.worker_threads = 4;
  TcpNet net(options);
  Recorder sink;
  NodeId sink_id = net.attach(sink);
  constexpr std::size_t kSenders = 4;
  constexpr std::uint32_t kPerSender = 250;
  std::vector<std::unique_ptr<Recorder>> senders;
  std::vector<NodeId> sender_ids;
  for (std::size_t i = 0; i < kSenders; ++i) {
    senders.push_back(std::make_unique<Recorder>());
    sender_ids.push_back(net.attach(*senders.back()));
  }
  net.start();

  // Hammer one sink from many external threads at once: the thread-safety
  // claim of send() is exactly this usage.
  std::vector<std::thread> threads;
  for (std::size_t s = 0; s < kSenders; ++s) {
    threads.emplace_back([&, s] {
      for (std::uint32_t seq = 0; seq < kPerSender; ++seq) {
        std::vector<std::uint8_t> payload = {
            static_cast<std::uint8_t>(seq >> 24),
            static_cast<std::uint8_t>(seq >> 16),
            static_cast<std::uint8_t>(seq >> 8),
            static_cast<std::uint8_t>(seq)};
        net.send(make_msg(sender_ids[s], sink_id, "seq", payload));
      }
    });
  }
  for (auto& t : threads) t.join();

  // Loopback with live listeners and default queue caps loses nothing.
  ASSERT_TRUE(wait_until(
      [&] { return sink.count() == kSenders * kPerSender; }))
      << "delivered " << sink.count() << "/" << kSenders * kPerSender;
  // One TCP stream per (from,to) plus one strand per endpoint ⇒ each
  // sender's messages arrive in the order it sent them.
  std::map<NodeId, std::uint32_t> next_seq;
  for (const auto& msg : sink.messages()) {
    ASSERT_EQ(msg.payload.size(), 4u);
    std::uint32_t seq = (std::uint32_t{msg.payload[0]} << 24) |
                        (std::uint32_t{msg.payload[1]} << 16) |
                        (std::uint32_t{msg.payload[2]} << 8) |
                        std::uint32_t{msg.payload[3]};
    EXPECT_EQ(seq, next_seq[msg.from]) << "sender " << msg.from;
    next_seq[msg.from] = seq + 1;
  }
  net.stop();
}

TEST(TcpTransport, ReconnectAfterPeerRestart) {
  TcpNet net(fast_options());
  Echo echo;
  Recorder client;
  NodeId echo_id = net.attach(echo);
  NodeId client_id = net.attach(client);
  echo.bind(net);
  net.start();

  ASSERT_TRUE(wait_until([&] {
    if (client.count() > 0) return true;
    net.send(make_msg(client_id, echo_id, "ping", {1}));
    return false;
  }));
  const std::uint16_t port_before = net.port(echo_id);

  net.set_down(echo_id, true);
  // Sends into the outage are absorbed (queued or dropped), never fatal.
  for (int i = 0; i < 20; ++i) {
    net.send(make_msg(client_id, echo_id, "ping", {2}));
    std::this_thread::sleep_for(5ms);
  }
  const std::size_t before_restart = client.count();

  net.set_down(echo_id, false);
  EXPECT_EQ(net.port(echo_id), port_before) << "port must survive restart";
  ASSERT_TRUE(wait_until([&] {
    if (client.count() > before_restart) return true;
    net.send(make_msg(client_id, echo_id, "ping", {3}));
    return false;
  })) << "no pong after peer restart";

  auto stats = net.stats();
  EXPECT_GT(stats.disconnects, 0u);
  EXPECT_GE(stats.connects, 2u);  // original + at least one reconnect
  net.stop();
}

TEST(TcpTransport, BackpressureBoundsMemoryAndRecovers) {
  auto options = fast_options();
  options.peer_queue_limit_bytes = 64 * 1024;  // ~63 queued frames
  options.mailbox_high_watermark = 4;          // pause reads almost at once
  options.mailbox_low_watermark = 1;
  TcpNet net(options);
  SlowReader slow;
  Recorder sender_node;
  NodeId slow_id = net.attach(slow);
  NodeId sender_id = net.attach(sender_node);
  net.start();

  // Blast far more bytes than the reader (stalling strand, reads paused by
  // the watermark) and the kernel socket buffers can absorb: the outbound
  // queue cap must engage and drop instead of growing without bound.
  const std::vector<std::uint8_t> payload(1024, 0xbb);
  constexpr int kBlast = 20'000;  // ~20 MB offered against a 64 KB cap
  for (int i = 0; i < kBlast; ++i)
    net.send(make_msg(sender_id, slow_id, "blast", payload));

  auto stats = net.stats();
  EXPECT_GT(stats.backpressure_drops, 0u);
  EXPECT_LT(stats.messages_sent, static_cast<std::uint64_t>(kBlast));

  // Inbound flow control engaged too: a socket read bursts dozens of
  // frames into the reader's mailbox, crossing the high watermark, and the
  // io thread stops reading its sockets.
  ASSERT_TRUE(wait_until([&] { return net.stats().reads_paused > 0; }));

  // Recovery: every message that was *accepted* (not dropped at the cap)
  // drains through pause/resume cycles to the reader — the flow-controlled
  // state is transient and lossless past the cap, not terminal.
  ASSERT_TRUE(wait_until(
      [&] { return slow.count() == net.stats().messages_sent; }, 60'000ms))
      << "delivered " << slow.count() << " of "
      << net.stats().messages_sent << " accepted messages";
  // And a fresh message still gets through.
  net.send(make_msg(sender_id, slow_id, "probe", {1}));
  ASSERT_TRUE(wait_until(
      [&] { return slow.count() == net.stats().messages_sent; }));
  net.stop();
}

TEST(TcpTransport, OversizedSendIsRefusedLocally) {
  auto options = fast_options();
  options.max_frame_bytes = 1024;
  TcpNet net(options);
  Recorder a, b;
  NodeId ia = net.attach(a);
  NodeId ib = net.attach(b);
  net.start();
  net.send(make_msg(ia, ib, "huge", std::vector<std::uint8_t>(4096, 1)));
  auto stats = net.stats();
  EXPECT_EQ(stats.messages_sent, 0u);
  EXPECT_GT(stats.backpressure_drops, 0u);
  // A legal message afterwards still flows.
  ASSERT_TRUE(wait_until([&] {
    if (b.count() > 0) return true;
    net.send(make_msg(ia, ib, "small", {1}));
    return false;
  }));
  net.stop();
}

TEST(TcpTransport, StopIsIdempotentAndSendsAfterStopAreDropped) {
  TcpNet net(fast_options());
  Recorder a, b;
  NodeId ia = net.attach(a);
  NodeId ib = net.attach(b);
  net.start();
  net.stop();
  net.stop();
  net.send(make_msg(ia, ib, "late", {1}));  // must not crash or deliver
  std::this_thread::sleep_for(20ms);
  EXPECT_EQ(b.count(), 0u);
}

}  // namespace
}  // namespace p2pcash::transport
