// Coin transferability (the PPay-style extension): witness-endorsed
// ownership hand-offs, chains, and every way a transfer can go wrong.

#include <gtest/gtest.h>

#include "ecash_fixture.h"

namespace p2pcash::ecash {
namespace {

using testing::EcashTest;

class TransferTest : public EcashTest {
 protected:
  std::unique_ptr<Wallet> bob_ = dep_.make_wallet();
  std::unique_ptr<Wallet> carol_ = dep_.make_wallet();
};

TEST_F(TransferTest, HandOffAndSpendByRecipient) {
  auto coin = withdraw(100);
  auto result = dep_.transfer(*wallet_, coin, *bob_, 2000);
  ASSERT_TRUE(result.received.has_value())
      << (result.refusal ? result.refusal->detail : "");
  const auto& received = *result.received;
  EXPECT_EQ(received.coin.transfers.size(), 1u);
  EXPECT_EQ(received.coin.bare.coin_hash(), coin.coin.bare.coin_hash());
  // Bob spends it like any coin.
  auto merchant = non_witness_merchant(received);
  EXPECT_TRUE(dep_.pay(*bob_, received, merchant, 3000).accepted);
  // And the merchant can cash it.
  EXPECT_EQ(dep_.deposit_all(merchant, 4000).credited, 100u);
}

TEST_F(TransferTest, MultiHopChain) {
  auto coin = withdraw(100);
  auto to_bob = dep_.transfer(*wallet_, coin, *bob_, 2000);
  ASSERT_TRUE(to_bob.received.has_value());
  auto to_carol = dep_.transfer(*bob_, *to_bob.received, *carol_, 2100);
  ASSERT_TRUE(to_carol.received.has_value())
      << (to_carol.refusal ? to_carol.refusal->detail : "");
  EXPECT_EQ(to_carol.received->coin.transfers.size(), 2u);
  auto merchant = non_witness_merchant(*to_carol.received);
  EXPECT_TRUE(dep_.pay(*carol_, *to_carol.received, merchant, 2200).accepted);
  EXPECT_EQ(dep_.deposit_all(merchant, 3000).credited, 100u);
}

TEST_F(TransferTest, OldOwnerCannotSpendAfterTransfer) {
  auto coin = withdraw(100);
  auto result = dep_.transfer(*wallet_, coin, *bob_, 2000);
  ASSERT_TRUE(result.received.has_value());
  // Alice still holds the original (chain-less) coin bytes and secrets.
  auto merchant = non_witness_merchant(coin);
  auto spend = dep_.pay(*wallet_, coin, merchant, 3000);
  EXPECT_FALSE(spend.accepted);
  // The witness extracted Alice's secrets from her own two responses
  // (transfer link + stale payment).
  ASSERT_TRUE(spend.double_spend_proof.has_value());
  EXPECT_TRUE(spend.double_spend_proof->verify(dep_.grp()));
  EXPECT_EQ(spend.double_spend_proof->secrets.of_a.e1, coin.secret.x1);
}

TEST_F(TransferTest, OldOwnerCannotDoubleTransfer) {
  auto coin = withdraw(100);
  auto to_bob = dep_.transfer(*wallet_, coin, *bob_, 2000);
  ASSERT_TRUE(to_bob.received.has_value());
  auto to_carol = dep_.transfer(*wallet_, coin, *carol_, 2100);
  EXPECT_FALSE(to_carol.received.has_value());
  ASSERT_TRUE(to_carol.double_spend_proof.has_value());
  EXPECT_TRUE(to_carol.double_spend_proof->verify(dep_.grp()));
}

TEST_F(TransferTest, SpentCoinCannotBeTransferred) {
  auto coin = withdraw(100);
  auto merchant = non_witness_merchant(coin);
  ASSERT_TRUE(dep_.pay(*wallet_, coin, merchant, 2000).accepted);
  auto result = dep_.transfer(*wallet_, coin, *bob_, 3000);
  EXPECT_FALSE(result.received.has_value());
  ASSERT_TRUE(result.double_spend_proof.has_value());
  EXPECT_TRUE(result.double_spend_proof->verify(dep_.grp()));
}

TEST_F(TransferTest, RecipientCannotBeDefraudedByForgedLink) {
  // A "seller" who skips the witness and forges the link signature cannot
  // hand over anything spendable: the recipient's accept_transfer and
  // every verifier reject the chain.
  auto coin = withdraw(100);
  auto intent = bob_->prepare_receive();
  auto response =
      wallet_->respond_transfer(coin, intent.comm.a, intent.comm.b, 2000);
  crypto::ChaChaRng rng("forger");
  auto fake_key = sig::KeyPair::generate(dep_.grp(), rng);
  TransferLink forged;
  forged.new_a = intent.comm.a;
  forged.new_b = intent.comm.b;
  forged.r1 = response.r1;
  forged.r2 = response.r2;
  forged.datetime = 2000;
  forged.witness = coin.coin.witnesses[0].merchant;
  auto signature = fake_key.sign(
      forged.signed_payload(coin.coin.bare.coin_hash(), 0), rng);
  forged.sig_e = signature.e;
  forged.sig_s = signature.s;
  auto accepted = bob_->accept_transfer(coin.coin, forged, intent);
  ASSERT_FALSE(accepted.ok());
  EXPECT_EQ(accepted.refusal().reason, RefusalReason::kBadSignature);
}

TEST_F(TransferTest, ChainTamperingDetectedEverywhere) {
  auto coin = withdraw(100);
  auto to_bob = dep_.transfer(*wallet_, coin, *bob_, 2000);
  ASSERT_TRUE(to_bob.received.has_value());
  auto tampered = to_bob.received->coin;
  // Redirect the link to the attacker's commitments.
  crypto::ChaChaRng rng("redirect");
  tampered.transfers[0].new_a = dep_.grp().exp_g(dep_.grp().random_scalar(rng));
  EXPECT_FALSE(
      verify_coin(dep_.grp(), dep_.broker().coin_key(), tampered, 3000).ok());
  // Dropping the chain reverts to the original commitments — but the
  // witness remembers, so it cannot be spent (covered above); chain
  // *truncation of a 2-link chain to 1 link* must also fail verification
  // downstream at the witness.
  auto to_carol = dep_.transfer(*bob_, *to_bob.received, *carol_, 2100);
  ASSERT_TRUE(to_carol.received.has_value());
  auto stale = *to_bob.received;  // bob's stale 1-link copy
  auto merchant = non_witness_merchant(stale);
  auto spend = dep_.pay(*bob_, stale, merchant, 2200);
  EXPECT_FALSE(spend.accepted);
}

TEST_F(TransferTest, TransferredCoinSerializationRoundTrip) {
  auto coin = withdraw(100);
  auto to_bob = dep_.transfer(*wallet_, coin, *bob_, 2000);
  ASSERT_TRUE(to_bob.received.has_value());
  auto bytes = wire::encode(to_bob.received->coin);
  auto decoded = wire::decode<Coin>(bytes);
  EXPECT_EQ(decoded, to_bob.received->coin);
  EXPECT_TRUE(verify_transfer_chain(dep_.grp(), decoded).ok());
}

TEST_F(TransferTest, TransferredCoinRenewableByNewOwnerOnly) {
  auto coin = withdraw(100, 1000);
  auto to_bob = dep_.transfer(*wallet_, coin, *bob_, 2000);
  ASSERT_TRUE(to_bob.received.has_value());
  Timestamp when = coin.coin.bare.info.soft_expiry +
                   dep_.broker().config().deposit_grace_ms + 1000;
  // Alice tries to renew the coin she gave away, with her old secrets and
  // the original (chain-less) coin: the broker must refuse — her proof
  // opens the bare commitments, but the renewal... (the chain-less coin
  // still verifies at the broker, which has no chain knowledge; what stops
  // her is that the renewed coin's value was already handed to Bob, whose
  // renewal uses the chained coin).  Renew as Bob first:
  auto renewed = dep_.renew(*bob_, *to_bob.received, when);
  ASSERT_TRUE(renewed.ok()) << renewed.refusal().detail;
  // Now Alice's attempt collides with the recorded renewal and is refused.
  auto alice_attempt = dep_.renew(*wallet_, coin, when + 10);
  EXPECT_FALSE(alice_attempt.ok());
  EXPECT_EQ(alice_attempt.refusal().reason, RefusalReason::kDoubleSpent);
}

TEST_F(TransferTest, OfflineWitnessBlocksTransfer) {
  auto coin = withdraw(100);
  dep_.set_offline(coin.coin.witnesses[0].merchant, true);
  auto result = dep_.transfer(*wallet_, coin, *bob_, 2000);
  EXPECT_FALSE(result.received.has_value());
  ASSERT_TRUE(result.refusal.has_value());
}

TEST_F(TransferTest, WitnessSnapshotCoversChains) {
  auto coin = withdraw(100);
  auto witness_id = coin.coin.witnesses[0].merchant;
  auto to_bob = dep_.transfer(*wallet_, coin, *bob_, 2000);
  ASSERT_TRUE(to_bob.received.has_value());
  // Crash/restore the witness; the chain record must survive so Alice's
  // stale copy still cannot spend.
  auto& node = dep_.node(witness_id);
  auto snapshot = node.witness->snapshot_state();
  auto key = sig::KeyPair::from_secret(dep_.grp(),
                                       node.merchant->key_pair().secret());
  node.witness = std::make_unique<WitnessService>(
      dep_.grp(), dep_.broker().coin_key(), witness_id, key, dep_.rng());
  node.witness->restore_state(snapshot);
  auto merchant = non_witness_merchant(coin);
  EXPECT_FALSE(dep_.pay(*wallet_, coin, merchant, 3000).accepted);
  // Bob's genuine copy still works.
  auto merchant2 = non_witness_merchant(*to_bob.received);
  EXPECT_TRUE(dep_.pay(*bob_, *to_bob.received, merchant2, 4000).accepted);
}

}  // namespace
}  // namespace p2pcash::ecash
