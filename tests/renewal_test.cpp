// Coin renewal (Algorithm 4): windows, exchange semantics, fraud paths.

#include <gtest/gtest.h>

#include "ecash_fixture.h"

namespace p2pcash::ecash {
namespace {

using testing::EcashTest;

class RenewalTest : public EcashTest {
 protected:
  /// A time inside the renewal window of `coin`.
  Timestamp renewal_time(const WalletCoin& coin) {
    return coin.coin.bare.info.soft_expiry +
           dep_.broker().config().deposit_grace_ms + 1000;
  }
};

TEST_F(RenewalTest, ExpiredCoinRenewsIntoFreshCoin) {
  auto coin = withdraw(100, 1000);
  Timestamp when = renewal_time(coin);
  auto renewed = dep_.renew(*wallet_, coin, when);
  ASSERT_TRUE(renewed.ok()) << (renewed.ok() ? "" : renewed.refusal().detail);
  EXPECT_EQ(renewed.value().coin.bare.info.denomination, 100u);
  EXPECT_GT(renewed.value().coin.bare.info.soft_expiry, when);
  EXPECT_NE(renewed.value().coin.bare.coin_hash(),
            coin.coin.bare.coin_hash());
  // The new coin spends normally.
  auto merchant = non_witness_merchant(renewed.value());
  EXPECT_TRUE(dep_.pay(*wallet_, renewed.value(), merchant, when + 10).accepted);
}

TEST_F(RenewalTest, RenewalRefusedBeforeWindowOpens) {
  auto coin = withdraw(100, 1000);
  // Too early: still inside the deposit grace period.
  Timestamp early = coin.coin.bare.info.soft_expiry + 10;
  auto outcome = dep_.renew(*wallet_, coin, early);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.refusal().reason, RefusalReason::kStaleRequest);
}

TEST_F(RenewalTest, RenewalRefusedAfterHardExpiry) {
  auto coin = withdraw(100, 1000);
  Timestamp too_late = coin.coin.bare.info.hard_expiry + 1;
  auto outcome = dep_.renew(*wallet_, coin, too_late);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.refusal().reason, RefusalReason::kExpired);
}

TEST_F(RenewalTest, SpentCoinCannotRenew) {
  auto coin = withdraw(100, 1000);
  auto merchant = non_witness_merchant(coin);
  ASSERT_TRUE(dep_.pay(*wallet_, coin, merchant, 2000).accepted);
  ASSERT_EQ(dep_.deposit_all(merchant, 3000).accepted, 1u);
  auto outcome = dep_.renew(*wallet_, coin, renewal_time(coin));
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.refusal().reason, RefusalReason::kDoubleSpent);
  // The broker extracted a publicly verifiable fraud proof.
  ASSERT_EQ(dep_.broker().renewal_fraud_proofs().size(), 1u);
  EXPECT_TRUE(dep_.broker().renewal_fraud_proofs()[0].verify(dep_.grp()));
}

TEST_F(RenewalTest, DoubleRenewalRefusedWithExtraction) {
  auto coin = withdraw(100, 1000);
  Timestamp when = renewal_time(coin);
  ASSERT_TRUE(dep_.renew(*wallet_, coin, when).ok());
  auto second = dep_.renew(*wallet_, coin, when + 50);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.refusal().reason, RefusalReason::kDoubleSpent);
  ASSERT_EQ(dep_.broker().renewal_fraud_proofs().size(), 1u);
  const auto& proof = dep_.broker().renewal_fraud_proofs()[0];
  EXPECT_TRUE(proof.verify(dep_.grp()));
  EXPECT_EQ(proof.secrets.of_a.e1, coin.secret.x1);
}

TEST_F(RenewalTest, RenewedCoinCannotBeDeposited) {
  // A witness-signed transcript that somehow arrives after renewal is
  // refused (the disjoint windows make this an attack, not an accident).
  auto coin = withdraw(100, 1000);
  auto merchant = non_witness_merchant(coin);
  ASSERT_TRUE(dep_.pay(*wallet_, coin, merchant, 2000).accepted);
  // Renew first (the merchant sat on its deposit past the grace window).
  Timestamp when = renewal_time(coin);
  ASSERT_TRUE(dep_.renew(*wallet_, coin, when).ok());
  auto queue = dep_.node(merchant).merchant->drain_deposit_queue();
  ASSERT_EQ(queue.size(), 1u);
  auto receipt = dep_.broker().deposit(merchant, queue[0], when + 100);
  EXPECT_FALSE(receipt.ok());
}

TEST_F(RenewalTest, OwnershipProofRequired) {
  // A thief holding only the public coin (no representation secrets)
  // cannot renew it.
  auto coin = withdraw(100, 1000);
  Timestamp when = renewal_time(coin);
  auto offer = dep_.broker().start_renewal(100, when);
  ASSERT_TRUE(offer.ok());
  crypto::ChaChaRng thief_rng("thief");
  nizk::Response forged{dep_.grp().random_scalar(thief_rng),
                        dep_.grp().random_scalar(thief_rng)};
  auto outcome = dep_.broker().finish_renewal(
      offer.value().session, dep_.grp().random_scalar(thief_rng),
      coin.coin, forged, when, when);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.refusal().reason, RefusalReason::kBadProof);
}

TEST_F(RenewalTest, DenominationMustMatch) {
  auto coin = withdraw(100, 1000);
  Timestamp when = renewal_time(coin);
  auto offer = dep_.broker().start_renewal(500, when);  // upgrade attempt
  ASSERT_TRUE(offer.ok());
  auto challenge = dep_.broker().renewal_challenge(coin.coin, when);
  auto state = wallet_->begin_renewal(coin, offer.value(), challenge, when);
  auto outcome = dep_.broker().finish_renewal(
      state.session, state.e, coin.coin, state.old_proof, when, when);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.refusal().reason, RefusalReason::kBadProof);
}

TEST_F(RenewalTest, TamperedOldCoinRefused) {
  auto coin = withdraw(100, 1000);
  Timestamp when = renewal_time(coin);
  auto offer = dep_.broker().start_renewal(100, when);
  ASSERT_TRUE(offer.ok());
  auto tampered = coin.coin;
  tampered.bare.info.list_version = 99;  // breaks the blind signature
  auto challenge = dep_.broker().renewal_challenge(tampered, when);
  auto state = wallet_->begin_renewal(coin, offer.value(), challenge, when);
  auto outcome = dep_.broker().finish_renewal(state.session, state.e,
                                              tampered, state.old_proof,
                                              when, when);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.refusal().reason, RefusalReason::kInvalidCoin);
}

TEST_F(RenewalTest, RenewalChainSurvivesGenerations) {
  // Renew a coin through three generations; each renewed coin is fresh,
  // unlinkable to the previous, and finally spendable.
  auto coin = withdraw(100, 1000);
  for (int generation = 0; generation < 3; ++generation) {
    Timestamp when = renewal_time(coin);
    auto renewed = dep_.renew(*wallet_, coin, when);
    ASSERT_TRUE(renewed.ok()) << "generation " << generation;
    EXPECT_NE(renewed.value().coin.bare.coin_hash(),
              coin.coin.bare.coin_hash());
    coin = std::move(renewed).value();
  }
  auto merchant = non_witness_merchant(coin);
  Timestamp spend_at = coin.coin.bare.info.soft_expiry - 1000;
  EXPECT_TRUE(dep_.pay(*wallet_, coin, merchant, spend_at).accepted);
}

}  // namespace
}  // namespace p2pcash::ecash
