// The protocols over the simulated network: round counts, latency shape,
// double-spend detection end-to-end, witness failure and timeouts.

#include "actors/world.h"

#include <gtest/gtest.h>

namespace p2pcash::actors {
namespace {

SimWorld::Options fast_options() {
  SimWorld::Options opt;
  opt.merchants = 6;
  opt.seed = 77;
  opt.cost = simnet::free_cost();  // isolate network behaviour
  opt.latency_lo = 25;
  opt.latency_hi = 50;
  return opt;
}

ecash::WalletCoin must_withdraw(SimWorld& world, ClientActor& client,
                                ecash::Cents denomination = 100) {
  std::optional<ecash::WalletCoin> coin;
  client.withdraw(denomination, [&](ecash::Outcome<ecash::WalletCoin> c) {
    ASSERT_TRUE(c.ok()) << c.refusal().detail;
    coin = std::move(c).value();
  });
  world.sim().run();
  EXPECT_TRUE(coin.has_value());
  return std::move(*coin);
}

TEST(Actors, WithdrawalOverNetwork) {
  auto& grp = group::SchnorrGroup::test_256();
  SimWorld world(grp, fast_options());
  auto& client = world.add_client();
  auto coin = must_withdraw(world, client);
  EXPECT_EQ(coin.coin.bare.info.denomination, 100u);
  // 2 round trips x [25, 50] ms one way.
  EXPECT_GE(world.sim().now(), 4 * 25.0);
  EXPECT_LE(world.sim().now(), 4 * 50.0);
  EXPECT_EQ(world.broker().coins_issued(), 1u);
}

TEST(Actors, PaymentOverNetworkSucceeds) {
  auto& grp = group::SchnorrGroup::test_256();
  SimWorld world(grp, fast_options());
  auto& client = world.add_client();
  auto coin = must_withdraw(world, client);
  auto witness_id = coin.coin.witnesses[0].merchant;
  // Pay at a merchant that is not the witness so all 6 hops are remote.
  ecash::MerchantId target;
  for (const auto& id : world.merchant_ids()) {
    if (id != witness_id) {
      target = id;
      break;
    }
  }
  double t0 = world.sim().now();
  std::optional<ClientActor::PayResult> result;
  client.pay(coin, target, [&](ClientActor::PayResult r) { result = r; });
  world.sim().run();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->accepted) << (result->error ? *result->error : "");
  // 3 round trips = 6 one-way hops of [25, 50] ms (paper: "3 rounds of
  // message exchange").
  EXPECT_GE(result->elapsed_ms, 6 * 25.0);
  EXPECT_LE(result->elapsed_ms, 6 * 50.0);
  EXPECT_GT(world.sim().now(), t0);
  EXPECT_EQ(world.merchant(target).services_delivered(), 1u);
}

TEST(Actors, DoubleSpendBlockedOverNetwork) {
  auto& grp = group::SchnorrGroup::test_256();
  SimWorld world(grp, fast_options());
  auto& client = world.add_client();
  auto coin = must_withdraw(world, client);
  auto ids = world.merchant_ids();
  std::optional<ClientActor::PayResult> r1, r2;
  client.pay(coin, ids[0], [&](ClientActor::PayResult r) { r1 = r; });
  world.sim().run();
  client.pay(coin, ids[1], [&](ClientActor::PayResult r) { r2 = r; });
  world.sim().run();
  ASSERT_TRUE(r1 && r2);
  EXPECT_TRUE(r1->accepted);
  EXPECT_FALSE(r2->accepted);
  ASSERT_TRUE(r2->double_spend_proof.has_value());
  EXPECT_TRUE(r2->double_spend_proof->verify(grp));
}

TEST(Actors, ConcurrentDoubleSpendAtTwoMerchantsOnlyOneWins) {
  // The race the witness commitment exists to serialize: an attacker runs
  // two client instances (a coin is a bearer instrument — whoever holds
  // the secrets can spend it) firing at the same instant at different
  // merchants.
  auto& grp = group::SchnorrGroup::test_256();
  SimWorld world(grp, fast_options());
  auto& honest = world.add_client();
  auto& accomplice = world.add_client();
  auto coin = must_withdraw(world, honest);
  auto ids = world.merchant_ids();
  std::optional<ClientActor::PayResult> r1, r2;
  honest.pay(coin, ids[0], [&](ClientActor::PayResult r) { r1 = r; },
             /*timeout_ms=*/10'000);
  accomplice.pay(coin, ids[1], [&](ClientActor::PayResult r) { r2 = r; },
                 /*timeout_ms=*/10'000);
  world.sim().run();
  ASSERT_TRUE(r1 && r2);
  int successes = (r1->accepted ? 1 : 0) + (r2->accepted ? 1 : 0);
  EXPECT_LE(successes, 1);
}

TEST(Actors, SameClientRefusesConcurrentSpendOfOneCoin) {
  auto& grp = group::SchnorrGroup::test_256();
  SimWorld world(grp, fast_options());
  auto& client = world.add_client();
  auto coin = must_withdraw(world, client);
  auto ids = world.merchant_ids();
  std::optional<ClientActor::PayResult> r1, r2;
  client.pay(coin, ids[0], [&](ClientActor::PayResult r) { r1 = r; });
  client.pay(coin, ids[1], [&](ClientActor::PayResult r) { r2 = r; });
  // The second is rejected locally, before any message leaves the client.
  ASSERT_TRUE(r2.has_value());
  EXPECT_FALSE(r2->accepted);
  world.sim().run();
  ASSERT_TRUE(r1.has_value());
  EXPECT_TRUE(r1->accepted);
}

TEST(Actors, DeadWitnessTimesOutPayment) {
  auto& grp = group::SchnorrGroup::test_256();
  SimWorld world(grp, fast_options());
  auto& client = world.add_client();
  auto coin = must_withdraw(world, client);
  auto witness_id = coin.coin.witnesses[0].merchant;
  world.set_merchant_down(witness_id, true);
  ecash::MerchantId target;
  for (const auto& id : world.merchant_ids()) {
    if (id != witness_id) {
      target = id;
      break;
    }
  }
  std::optional<ClientActor::PayResult> result;
  client.pay(coin, target, [&](ClientActor::PayResult r) { result = r; },
             /*timeout_ms=*/5000);
  world.sim().run();
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->accepted);
  ASSERT_TRUE(result->error.has_value());
  EXPECT_EQ(*result->error, "timeout");
  EXPECT_NEAR(result->elapsed_ms, 5000, 1);
}

TEST(Actors, LateServiceAfterClientTimeoutIsIgnored) {
  // Regression for the resilient pipeline: a pay.service that limps in
  // after the client's overall deadline must not resurrect the completed
  // (failed) payment — the pending record is gone and the reply is counted
  // as late, not dispatched.
  auto& grp = group::SchnorrGroup::test_256();
  SimWorld world(grp, fast_options());
  auto& client = world.add_client();
  auto coin = must_withdraw(world, client);
  auto witness_id = coin.coin.witnesses[0].merchant;
  ecash::MerchantId target;
  for (const auto& id : world.merchant_ids()) {
    if (id != witness_id) {
      target = id;
      break;
    }
  }
  // Delay only the merchant -> client direction so the payment completes on
  // the merchant's side but the service ack arrives long after the deadline.
  world.net().set_link_fault(world.merchant_node(target), client.id(),
                             simnet::LinkFault{.extra_latency_ms = 5'000});
  std::optional<ClientActor::PayResult> result;
  client.pay(coin, target, [&](ClientActor::PayResult r) { result = r; },
             /*timeout_ms=*/3'000);
  world.sim().run();
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->accepted);
  ASSERT_TRUE(result->error.has_value());
  EXPECT_EQ(*result->error, "timeout");
  // The merchant did deliver (its side finished); the late ack was dropped
  // on the floor by the client instead of firing a dead callback.
  EXPECT_EQ(world.merchant(target).services_delivered(), 1u);
  EXPECT_GE(client.resilience().late_replies_ignored, 1u);
  EXPECT_EQ(client.resilience().timeouts, 1u);
}

TEST(Actors, DepositOverNetwork) {
  auto& grp = group::SchnorrGroup::test_256();
  SimWorld world(grp, fast_options());
  auto& client = world.add_client();
  auto coin = must_withdraw(world, client);
  auto target = world.merchant_ids()[2];
  std::optional<ClientActor::PayResult> result;
  client.pay(coin, target, [&](ClientActor::PayResult r) { result = r; });
  world.sim().run();
  ASSERT_TRUE(result && result->accepted);
  // Merchant flushes its queue through the broker actor.
  auto queue = world.merchant(target).drain_deposit_queue();
  ASSERT_EQ(queue.size(), 1u);
  wire::Writer w;
  queue[0].encode(w);
  world.net().send(simnet::Message{world.merchant_node(target),
                                   world.directory().broker, "deposit.submit",
                                   w.take(), {}});
  world.sim().run();
  EXPECT_EQ(world.broker().coins_deposited(), 1u);
  EXPECT_EQ(world.broker().account(target)->balance, 100);
}

TEST(Actors, MultiWitnessPaymentOverNetwork) {
  auto& grp = group::SchnorrGroup::test_256();
  auto opt = fast_options();
  opt.merchants = 8;
  opt.broker.witness_n = 3;
  opt.broker.witness_k = 2;
  SimWorld world(grp, opt);
  auto& client = world.add_client();
  auto coin = must_withdraw(world, client);
  ecash::MerchantId target;
  for (const auto& id : world.merchant_ids()) {
    bool is_witness = false;
    for (const auto& w : coin.coin.witnesses)
      if (w.merchant == id) is_witness = true;
    if (!is_witness) {
      target = id;
      break;
    }
  }
  std::optional<ClientActor::PayResult> result;
  client.pay(coin, target, [&](ClientActor::PayResult r) { result = r; });
  world.sim().run();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->accepted) << (result->error ? *result->error : "");
}

TEST(Actors, PythonCostModelReproducesPaperLatency) {
  // Table 2: ~1.8 s mean payment latency on PlanetLab with Python crypto.
  auto& grp = group::SchnorrGroup::test_256();
  auto opt = fast_options();
  opt.cost = simnet::python2007_cost();
  SimWorld world(grp, opt);
  auto& client = world.add_client();
  auto coin = must_withdraw(world, client);
  ecash::MerchantId target;
  for (const auto& id : world.merchant_ids()) {
    if (id != coin.coin.witnesses[0].merchant) {
      target = id;
      break;
    }
  }
  std::optional<ClientActor::PayResult> result;
  client.pay(coin, target, [&](ClientActor::PayResult r) { result = r; });
  world.sim().run();
  ASSERT_TRUE(result && result->accepted);
  EXPECT_GT(result->elapsed_ms, 1200);
  EXPECT_LT(result->elapsed_ms, 2500);
}

TEST(Actors, ByteAccountingRoughlyMatchesTable2Shape) {
  auto& grp = group::SchnorrGroup::test_256();
  auto opt = fast_options();
  opt.wire = simnet::WireFormat::kUri;
  SimWorld world(grp, opt);
  auto& client = world.add_client();
  auto coin = must_withdraw(world, client);
  world.net().reset_byte_counts();
  ecash::MerchantId target;
  for (const auto& id : world.merchant_ids()) {
    if (id != coin.coin.witnesses[0].merchant) {
      target = id;
      break;
    }
  }
  std::optional<ClientActor::PayResult> result;
  client.pay(coin, target, [&](ClientActor::PayResult r) { result = r; });
  world.sim().run();
  ASSERT_TRUE(result && result->accepted);
  // Client sends commit request + transcript; with a 256-bit test group
  // that is far under the paper's 1.6 KB but strictly positive and smaller
  // than merchant+witness traffic.
  auto client_node = static_cast<simnet::NodeId>(1 + opt.merchants);
  auto client_bytes = world.net().bytes_sent(client_node);
  EXPECT_GT(client_bytes, 200u);
  auto merchant_bytes = world.net().bytes_sent(world.merchant_node(target));
  EXPECT_GT(merchant_bytes, 0u);
}

}  // namespace
}  // namespace p2pcash::actors
