// ObsServer: the live HTTP scrape endpoint.  Exercised over real loopback
// sockets — a scrape must return exactly what the registry/sink export
// functions produce, byte for byte, twice in a row (the determinism the
// golden-scrape CI check relies on).

#include "obs/obs_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "obs/clock.h"
#include "obs/flight_recorder.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"

namespace p2pcash::obs {
namespace {

struct HttpResponse {
  std::string status_line;
  std::string headers;
  std::string body;
};

/// Blocking one-shot HTTP/1.0 GET against 127.0.0.1:`port`.
HttpResponse http_get(std::uint16_t port, const std::string& target,
                      const std::string& method = "GET") {
  HttpResponse out;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return out;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return out;
  }
  const std::string request = method + " " + target + " HTTP/1.0\r\n\r\n";
  (void)::send(fd, request.data(), request.size(), 0);
  std::string raw;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    raw.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  const auto line_end = raw.find("\r\n");
  if (line_end == std::string::npos) return out;
  out.status_line = raw.substr(0, line_end);
  const auto header_end = raw.find("\r\n\r\n");
  if (header_end == std::string::npos) return out;
  out.headers = raw.substr(line_end + 2, header_end - line_end - 2);
  out.body = raw.substr(header_end + 4);
  return out;
}

struct ServerFixture : ::testing::Test {
  ServerFixture()
      : flight(8, clock_fn(clock)),
        tracer(clock, &sink, &registry) {}

  void populate() {
    registry.counter("payments_total").inc(3);
    registry.gauge("queue_depth").set(2);
    registry.histogram("pay_ms").record(4.0);
    sink.set_meta({"tcp", 8});
    const auto root = tracer.start_root("payment", 1);
    clock.set(5.0);
    tracer.event(root, "rpc.retry", "resend");
    tracer.end_span(root, "ok");
    flight.record("net.connect", "node 1");
  }

  ManualClock clock;
  MetricsRegistry registry;
  TraceSink sink;
  FlightRecorder flight;
  Tracer tracer;
};

TEST_F(ServerFixture, GoldenScrapeMatchesRegistryExportByteForByte) {
  populate();
  ObsServer server({&registry, &sink, &flight, nullptr});
  const std::uint16_t port = server.start(0);
  ASSERT_NE(port, 0);

  const auto first = http_get(port, "/metrics");
  const auto second = http_get(port, "/metrics");
  EXPECT_EQ(first.status_line, "HTTP/1.0 200 OK");
  EXPECT_NE(first.headers.find("text/plain; version=0.0.4"),
            std::string::npos)
      << first.headers;
  // Two scrapes of an idle registry are byte-identical, and both equal
  // the in-process export exactly.
  EXPECT_EQ(first.body, second.body);
  EXPECT_EQ(first.body, registry.prometheus_text());
  EXPECT_NE(first.body.find("payments_total 3"), std::string::npos);
  EXPECT_NE(first.body.find("pay_ms_bucket"), std::string::npos);
  EXPECT_EQ(server.requests_served(), 2u);
}

TEST_F(ServerFixture, MetricsJsonEndpointMatchesJsonExport) {
  populate();
  ObsServer server({&registry, &sink, &flight, nullptr});
  const std::uint16_t port = server.start(0);
  ASSERT_NE(port, 0);
  const auto got = http_get(port, "/metrics.json");
  EXPECT_EQ(got.status_line, "HTTP/1.0 200 OK");
  EXPECT_EQ(got.body, registry.json_text());
}

TEST_F(ServerFixture, TracezServesSinkJsonlWithMeta) {
  populate();
  ObsServer server({&registry, &sink, &flight, nullptr});
  const std::uint16_t port = server.start(0);
  ASSERT_NE(port, 0);
  const auto got = http_get(port, "/tracez");
  EXPECT_EQ(got.status_line, "HTTP/1.0 200 OK");
  EXPECT_NE(got.headers.find("application/x-ndjson"), std::string::npos);
  EXPECT_EQ(got.body, sink.to_jsonl());
  EXPECT_NE(got.body.find("\"transport\":\"tcp\""), std::string::npos);
  EXPECT_NE(got.body.find("\"name\":\"payment\""), std::string::npos);
}

TEST_F(ServerFixture, FlightzServesBreadcrumbs) {
  populate();
  ObsServer server({&registry, &sink, &flight, nullptr});
  const std::uint16_t port = server.start(0);
  ASSERT_NE(port, 0);
  const auto got = http_get(port, "/flightz");
  EXPECT_EQ(got.status_line, "HTTP/1.0 200 OK");
  EXPECT_NE(got.body.find("net.connect"), std::string::npos);
}

TEST_F(ServerFixture, HealthzReflectsTheHealthCallback) {
  bool healthy = true;
  ObsServer server({&registry, &sink, &flight, [&healthy] {
                      return healthy;
                    }});
  const std::uint16_t port = server.start(0);
  ASSERT_NE(port, 0);
  EXPECT_EQ(http_get(port, "/healthz").status_line, "HTTP/1.0 200 OK");
  healthy = false;
  const auto sick = http_get(port, "/healthz");
  EXPECT_EQ(sick.status_line, "HTTP/1.0 503 Service Unavailable");
  EXPECT_EQ(sick.body, "unhealthy\n");
}

TEST_F(ServerFixture, UnknownTargetIs404AndNonGetIs405) {
  ObsServer server({&registry, &sink, &flight, nullptr});
  const std::uint16_t port = server.start(0);
  ASSERT_NE(port, 0);
  EXPECT_EQ(http_get(port, "/nope").status_line,
            "HTTP/1.0 404 Not Found");
  EXPECT_EQ(http_get(port, "/metrics", "POST").status_line,
            "HTTP/1.0 405 Method Not Allowed");
}

TEST_F(ServerFixture, StartIsIdempotentAndStopReleasesThePort) {
  ObsServer server({&registry, &sink, &flight, nullptr});
  const std::uint16_t port = server.start(0);
  ASSERT_NE(port, 0);
  EXPECT_EQ(server.start(0), port);  // already running: same port back
  EXPECT_TRUE(server.running());
  server.stop();
  EXPECT_FALSE(server.running());
  server.stop();  // idempotent
  // Restart binds fresh.
  const std::uint16_t again = server.start(0);
  EXPECT_NE(again, 0);
  EXPECT_EQ(http_get(again, "/healthz").status_line, "HTTP/1.0 200 OK");
}

TEST(ObsServer, MissingSourcesServe404) {
  ObsServer server({nullptr, nullptr, nullptr, nullptr});
  const std::uint16_t port = server.start(0);
  ASSERT_NE(port, 0);
  EXPECT_EQ(http_get(port, "/metrics").status_line,
            "HTTP/1.0 404 Not Found");
  EXPECT_EQ(http_get(port, "/tracez").status_line,
            "HTTP/1.0 404 Not Found");
  // /healthz needs no source.
  EXPECT_EQ(http_get(port, "/healthz").status_line, "HTTP/1.0 200 OK");
}

}  // namespace
}  // namespace p2pcash::obs
