// Observability layer: metrics registry (log2 histograms, collectors,
// Prometheus/JSON export) and the causal trace layer (spans, events,
// ring-buffer sink, JSONL determinism).

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include <csignal>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "metrics/counters.h"
#include "obs/clock.h"
#include "obs/flight_recorder.h"
#include "obs/json_writer.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"

namespace p2pcash::obs {
namespace {

// ---------------------------------------------------------------------------
// Histogram bucketing edge cases
// ---------------------------------------------------------------------------

TEST(Histogram, BucketZeroCoversZeroNegativeAndSubMillisecond) {
  EXPECT_EQ(Histogram::bucket_index(0.0), 0u);
  EXPECT_EQ(Histogram::bucket_index(-5.0), 0u);
  EXPECT_EQ(Histogram::bucket_index(0.25), 0u);
  EXPECT_EQ(Histogram::bucket_index(1.0), 0u);  // bucket 0 is (-inf, 1]
  EXPECT_EQ(Histogram::bucket_index(std::numeric_limits<double>::quiet_NaN()),
            0u);
}

TEST(Histogram, PowerOfTwoBoundariesAreInclusive) {
  // Bucket i covers (2^(i-1), 2^i]: an exact power of two lands in its own
  // bucket, one ulp above spills into the next.
  EXPECT_EQ(Histogram::bucket_index(2.0), 1u);
  EXPECT_EQ(Histogram::bucket_index(2.0001), 2u);
  EXPECT_EQ(Histogram::bucket_index(4.0), 2u);
  EXPECT_EQ(Histogram::bucket_index(1024.0), 10u);
  EXPECT_EQ(Histogram::bucket_index(1025.0), 11u);
}

TEST(Histogram, MaxRepresentableAndOverflowBucket) {
  // The last finite boundary is 2^30 ms; beyond that everything goes to
  // the +Inf overflow bucket (index kBuckets-1).
  const double last_finite = Histogram::bucket_upper(Histogram::kBuckets - 2);
  EXPECT_EQ(Histogram::bucket_index(last_finite), Histogram::kBuckets - 2);
  EXPECT_EQ(Histogram::bucket_index(last_finite * 2),
            Histogram::kBuckets - 1);
  EXPECT_EQ(Histogram::bucket_index(std::numeric_limits<double>::max()),
            Histogram::kBuckets - 1);
  EXPECT_EQ(Histogram::bucket_index(std::numeric_limits<double>::infinity()),
            Histogram::kBuckets - 1);
  EXPECT_TRUE(std::isinf(Histogram::bucket_upper(Histogram::kBuckets - 1)));
}

TEST(Histogram, RecordTracksCountSumMinMax) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.percentile(50), 0.0);
  h.record(0.0);
  h.record(3.0);
  h.record(100.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 103.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_EQ(h.buckets()[0], 1u);
  EXPECT_EQ(h.buckets()[Histogram::bucket_index(3.0)], 1u);
  EXPECT_EQ(h.buckets()[Histogram::bucket_index(100.0)], 1u);
}

TEST(Histogram, PercentileClampedToObservedRange) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.record(50.0);
  // All samples in one bucket: interpolation cannot escape [min, max].
  EXPECT_DOUBLE_EQ(h.percentile(0), 50.0);
  EXPECT_DOUBLE_EQ(h.percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(h.percentile(100), 50.0);
}

TEST(Histogram, PercentileOrdersAcrossBuckets) {
  Histogram h;
  for (int i = 0; i < 90; ++i) h.record(2.0);     // bucket 1
  for (int i = 0; i < 10; ++i) h.record(1000.0);  // bucket 10
  const double p50 = h.percentile(50);
  const double p95 = h.percentile(95);
  const double p99 = h.percentile(99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_LE(p50, 2.0);
  EXPECT_GT(p95, 2.0);  // the tail reaches into the slow bucket
  EXPECT_LE(p99, 1000.0);
}

TEST(Histogram, OverflowSamplesReportObservedMax) {
  Histogram h;
  h.record(1.0);
  const double huge = 5e9;  // past the last finite boundary
  h.record(huge);
  EXPECT_EQ(h.buckets()[Histogram::kBuckets - 1], 1u);
  EXPECT_DOUBLE_EQ(h.percentile(100), huge);  // clamped to max, not +inf
}

// ---------------------------------------------------------------------------
// Registry: identity, collectors, exports
// ---------------------------------------------------------------------------

TEST(MetricsRegistry, NamedMetricsAreStableIdentities) {
  MetricsRegistry reg;
  reg.counter("requests").inc();
  reg.counter("requests").inc(2);
  EXPECT_EQ(reg.counter("requests").value(), 3u);
  reg.gauge("depth").set(7.5);
  EXPECT_DOUBLE_EQ(reg.gauge("depth").value(), 7.5);
  reg.histogram("lat").record(4.0);
  EXPECT_EQ(reg.histogram("lat").count(), 1u);
  EXPECT_NE(reg.find_counter("requests"), nullptr);
  EXPECT_EQ(reg.find_counter("missing"), nullptr);
  EXPECT_EQ(reg.find_gauge("missing"), nullptr);
  EXPECT_EQ(reg.find_histogram("missing"), nullptr);
  EXPECT_EQ(reg.histogram_names(), std::vector<std::string>{"lat"});
}

TEST(MetricsRegistry, CollectorsFeedBothExports) {
  MetricsRegistry reg;
  metrics::ResilienceCounters rc;
  rc.retries = 7;
  reg.register_collector([&rc]() { return resilience_samples("rpc", rc); });
  metrics::OpCounters ops{11, 22, 33, 44};
  reg.register_collector(
      [&ops]() { return op_counter_samples("crypto", ops); });

  const std::string prom = reg.prometheus_text();
  EXPECT_NE(prom.find("rpc_retries_total 7"), std::string::npos);
  EXPECT_NE(prom.find("crypto_ops_exp_total 11"), std::string::npos);
  EXPECT_NE(prom.find("crypto_ops_ver_total 44"), std::string::npos);

  const std::string json = reg.json_text();
  EXPECT_NE(json.find("\"rpc_retries_total\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"crypto_ops_hash_total\": 22"), std::string::npos);
}

TEST(MetricsRegistry, PrometheusHistogramIsCumulativeWithInf) {
  MetricsRegistry reg;
  auto& h = reg.histogram("pay_ms");
  h.record(2.0);
  h.record(2.0);
  h.record(1000.0);
  const std::string prom = reg.prometheus_text();
  EXPECT_NE(prom.find("# TYPE pay_ms histogram"), std::string::npos);
  EXPECT_NE(prom.find("pay_ms_bucket{le=\"2\"} 2"), std::string::npos);
  EXPECT_NE(prom.find("pay_ms_bucket{le=\"+Inf\"} 3"), std::string::npos);
  EXPECT_NE(prom.find("pay_ms_count 3"), std::string::npos);
  EXPECT_NE(prom.find("pay_ms_p50"), std::string::npos);
  EXPECT_NE(prom.find("pay_ms_p95"), std::string::npos);
  EXPECT_NE(prom.find("pay_ms_p99"), std::string::npos);
}

TEST(MetricsRegistry, ExportsAreByteDeterministic) {
  auto build = []() {
    MetricsRegistry reg;
    reg.counter("b_total").inc(2);
    reg.counter("a_total").inc(1);
    reg.gauge("g").set(1.25);
    auto& h = reg.histogram("lat_ms");
    for (int i = 1; i <= 32; ++i) h.record(static_cast<double>(i));
    return std::make_pair(reg.prometheus_text(), reg.json_text());
  };
  const auto first = build();
  const auto second = build();
  EXPECT_EQ(first.first, second.first);
  EXPECT_EQ(first.second, second.second);
}

// ---------------------------------------------------------------------------
// JsonWriter non-finite handling
// ---------------------------------------------------------------------------

TEST(JsonWriter, NonFiniteDoublesEmitNull) {
  // "%.6g" renders inf/nan as bare tokens, which is not JSON.  An empty
  // histogram's min is +inf and a 0/0 rate is NaN, and both reach the
  // JSON export — they must come out as null.
  JsonWriter w;
  w.field("pinf", std::numeric_limits<double>::infinity());
  w.field("ninf", -std::numeric_limits<double>::infinity());
  w.field("nan", std::nan(""));
  w.field("finite", 1.5);
  w.array_double("mixed", {1.0, std::numeric_limits<double>::infinity(),
                           std::nan("")});
  const std::string doc = w.finish();
  EXPECT_NE(doc.find("\"pinf\": null"), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"ninf\": null"), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"nan\": null"), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"finite\": 1.5"), std::string::npos) << doc;
  EXPECT_NE(doc.find("[1, null, null]"), std::string::npos) << doc;
}

TEST(JsonWriter, EmptyHistogramJsonExportIsValid) {
  // Regression for the concrete production path: a registered-but-never-
  // recorded histogram exports min=+inf through the JSON emitter.
  MetricsRegistry reg;
  reg.histogram("never_recorded_ms");
  const std::string doc = reg.json_text();
  EXPECT_EQ(doc.find("inf"), std::string::npos) << doc;
  EXPECT_EQ(doc.find("nan"), std::string::npos) << doc;
}

// ---------------------------------------------------------------------------
// Trace layer
// ---------------------------------------------------------------------------

struct FakeClock {
  TimeMs now = 0;
  std::function<TimeMs()> fn() {
    return [this]() { return now; };
  }
};

TEST(Tracer, SpanLifecycleAndHierarchy) {
  FakeClock clock;
  TraceSink sink;
  MetricsRegistry reg;
  Tracer tracer(clock.fn(), &sink, &reg);

  const auto root = tracer.start_root("payment", 9);
  ASSERT_TRUE(root.valid());
  clock.now = 10;
  const auto child = tracer.start_child(root, "payment_commit", 9);
  ASSERT_TRUE(child.valid());
  EXPECT_EQ(child.trace, root.trace);
  EXPECT_TRUE(tracer.is_open(root));
  EXPECT_TRUE(tracer.is_open(child));

  clock.now = 40;
  tracer.end_span(child);
  clock.now = 50;
  tracer.end_span(root, "ok");
  EXPECT_EQ(tracer.open_spans(), 0u);

  auto spans = sink.spans_for(root.trace);
  ASSERT_EQ(spans.size(), 2u);
  // Completion order: child first.
  EXPECT_EQ(spans[0]->name, "payment_commit");
  EXPECT_EQ(spans[0]->parent, root.span);
  EXPECT_DOUBLE_EQ(spans[0]->start_ms, 10.0);
  EXPECT_DOUBLE_EQ(spans[0]->end_ms, 40.0);
  EXPECT_EQ(spans[1]->name, "payment");
  EXPECT_EQ(spans[1]->parent, 0u);

  // Durations landed in per-phase histograms.
  const auto* h = reg.find_histogram("span_payment_commit_ms");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 1u);
  EXPECT_DOUBLE_EQ(h->sum(), 30.0);
}

TEST(Tracer, InvalidParentPropagatesAsNoop) {
  FakeClock clock;
  TraceSink sink;
  Tracer tracer(clock.fn(), &sink);
  const TraceContext untraced{};
  const auto child = tracer.start_child(untraced, "x", 1);
  EXPECT_FALSE(child.valid());
  tracer.end_span(child);          // all no-ops
  tracer.event(child, "e", "d");
  EXPECT_EQ(sink.size(), 0u);
}

TEST(Tracer, DoubleEndIsIgnored) {
  FakeClock clock;
  TraceSink sink;
  Tracer tracer(clock.fn(), &sink);
  const auto root = tracer.start_root("withdraw", 1);
  tracer.end_span(root, "ok");
  tracer.end_span(root, "late-duplicate");  // span already closed
  EXPECT_EQ(sink.span_count(), 1u);
  EXPECT_EQ(sink.spans_for(root.trace)[0]->status, "ok");
}

TEST(Tracer, EventsAttachToSpans) {
  FakeClock clock;
  TraceSink sink;
  Tracer tracer(clock.fn(), &sink);
  const auto root = tracer.start_root("payment", 2);
  clock.now = 33;
  tracer.event(root, "rpc.retry", "resending transcript");
  tracer.end_span(root);
  const std::string jsonl = sink.to_jsonl();
  EXPECT_NE(jsonl.find("\"kind\":\"event\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"t_ms\":33"), std::string::npos);
  EXPECT_NE(jsonl.find("rpc.retry"), std::string::npos);
  EXPECT_EQ(sink.event_count(), 1u);
}

TEST(TraceSink, RingBufferDropsOldestAndCounts) {
  FakeClock clock;
  TraceSink sink(/*capacity=*/2);
  Tracer tracer(clock.fn(), &sink);
  for (int i = 0; i < 3; ++i) {
    const auto root = tracer.start_root("s" + std::to_string(i), 0);
    tracer.end_span(root);
  }
  EXPECT_EQ(sink.size(), 2u);
  EXPECT_EQ(sink.dropped(), 1u);
  EXPECT_EQ(sink.span_count(), 3u);  // total ever added
  const std::string jsonl = sink.to_jsonl();
  EXPECT_EQ(jsonl.find("\"name\":\"s0\""), std::string::npos);  // evicted
  EXPECT_NE(jsonl.find("\"name\":\"s2\""), std::string::npos);
}

TEST(TraceSink, TraceFilterAndClear) {
  FakeClock clock;
  TraceSink sink;
  Tracer tracer(clock.fn(), &sink);
  const auto t1 = tracer.start_root("one", 0);
  const auto t2 = tracer.start_root("two", 0);
  tracer.event(t1, "only-in-one");
  tracer.end_span(t1);
  tracer.end_span(t2);
  const std::string only = sink.trace_jsonl(t1.trace);
  EXPECT_NE(only.find("\"name\":\"one\""), std::string::npos);
  EXPECT_NE(only.find("only-in-one"), std::string::npos);
  EXPECT_EQ(only.find("\"name\":\"two\""), std::string::npos);
  sink.clear();
  EXPECT_EQ(sink.size(), 0u);
  EXPECT_EQ(sink.span_count(), 0u);
  EXPECT_EQ(sink.to_jsonl(), "");
}

TEST(TraceSink, JsonlGolden) {
  // Pins the export schema byte-for-byte: trace_lint.py, the timeline
  // renderer and the replay-determinism CI check all parse these lines.
  FakeClock clock;
  TraceSink sink;
  Tracer tracer(clock.fn(), &sink);
  const auto root = tracer.start_root("withdraw", 9);
  clock.now = 1.5;
  tracer.event(root, "rpc.retry", "resend \"withdraw.start\"");
  clock.now = 2.25;
  tracer.end_span(root, "ok");
  EXPECT_EQ(sink.to_jsonl(),
            "{\"kind\":\"event\",\"trace\":1,\"span\":1,\"t_ms\":1.5,"
            "\"name\":\"rpc.retry\",\"detail\":\"resend \\\"withdraw.start\\\""
            "\"}\n"
            "{\"kind\":\"span\",\"trace\":1,\"span\":1,\"parent\":0,"
            "\"name\":\"withdraw\",\"node\":9,\"start_ms\":0,\"end_ms\":2.25,"
            "\"status\":\"ok\"}\n");
}

// ---------------------------------------------------------------------------
// Clock seam: the same Tracer runs on sim-time (SimWorld) or wall-clock
// (NodeRuntime) through obs::Clock.
// ---------------------------------------------------------------------------

TEST(Clock, ManualClockSetAndAdvance) {
  ManualClock clock;
  EXPECT_DOUBLE_EQ(clock.now_ms(), 0.0);
  clock.set(100.0);
  EXPECT_DOUBLE_EQ(clock.now_ms(), 100.0);
  clock.advance(2.5);
  EXPECT_DOUBLE_EQ(clock.now_ms(), 102.5);
}

TEST(Clock, WallClockIsMonotoneFromConstruction) {
  WallClock clock;
  const TimeMs a = clock.now_ms();
  const TimeMs b = clock.now_ms();
  EXPECT_GE(a, 0.0);  // epoch = construction time
  EXPECT_GE(b, a);
}

TEST(Clock, TracerRunsOnInjectedClock) {
  ManualClock clock;
  TraceSink sink;
  Tracer tracer(clock, &sink);
  const auto root = tracer.start_root("payment", 1);
  clock.set(42.0);
  tracer.end_span(root, "ok");
  auto spans = sink.spans_for(root.trace);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_DOUBLE_EQ(spans[0]->start_ms, 0.0);
  EXPECT_DOUBLE_EQ(spans[0]->end_ms, 42.0);
}

// ---------------------------------------------------------------------------
// Export metadata: the transport-kind line tooling uses to tell sim traces
// from TCP traces.
// ---------------------------------------------------------------------------

TEST(TraceSink, MetaLineGolden) {
  FakeClock clock;
  TraceSink sink;
  Tracer tracer(clock.fn(), &sink);
  sink.set_meta({"tcp", 8});
  const auto root = tracer.start_root("withdraw", 9);
  clock.now = 2.25;
  tracer.end_span(root, "ok");
  EXPECT_EQ(sink.to_jsonl(),
            "{\"kind\":\"meta\",\"transport\":\"tcp\",\"hardware_threads\":8}"
            "\n"
            "{\"kind\":\"span\",\"trace\":1,\"span\":1,\"parent\":0,"
            "\"name\":\"withdraw\",\"node\":9,\"start_ms\":0,\"end_ms\":2.25,"
            "\"status\":\"ok\"}\n");
  // The per-trace filter carries the same context line.
  EXPECT_NE(sink.trace_jsonl(root.trace).find("\"kind\":\"meta\""),
            std::string::npos);
}

TEST(TraceSink, MetaSurvivesClearAndAbsentByDefault) {
  FakeClock clock;
  TraceSink sink;
  Tracer tracer(clock.fn(), &sink);
  const auto root = tracer.start_root("x", 0);
  tracer.end_span(root);
  EXPECT_EQ(sink.to_jsonl().find("\"kind\":\"meta\""), std::string::npos);
  sink.set_meta({"sim", 4});
  sink.clear();
  // clear() evicts records but keeps the export context: the meta line is
  // all that remains.
  EXPECT_EQ(sink.to_jsonl(),
            "{\"kind\":\"meta\",\"transport\":\"sim\","
            "\"hardware_threads\":4}\n");
  const auto again = tracer.start_root("y", 0);
  tracer.end_span(again);
  EXPECT_NE(sink.to_jsonl().find("\"transport\":\"sim\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// FlightRecorder: lock-free crash breadcrumbs
// ---------------------------------------------------------------------------

TEST(FlightRecorder, RecordsAndSnapshotsInOrder) {
  ManualClock clock;
  FlightRecorder rec(16, clock_fn(clock));
  clock.set(1.0);
  rec.record("net.connect", "node 3");
  clock.set(2.0);
  rec.record("net.disconnect");
  EXPECT_EQ(rec.recorded(), 2u);
  auto snap = rec.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_STREQ(snap[0].name, "net.connect");
  EXPECT_STREQ(snap[0].detail, "node 3");
  EXPECT_DOUBLE_EQ(snap[0].t_ms, 1.0);
  EXPECT_STREQ(snap[1].name, "net.disconnect");
}

TEST(FlightRecorder, RingWrapsKeepingNewest) {
  ManualClock clock;
  FlightRecorder rec(8, clock_fn(clock));  // capacity rounds to exactly 8
  for (int i = 0; i < 20; ++i)
    rec.record("step", std::to_string(i));
  EXPECT_EQ(rec.recorded(), 20u);
  auto snap = rec.snapshot();
  ASSERT_EQ(snap.size(), 8u);
  EXPECT_STREQ(snap.front().detail, "12");  // oldest retained
  EXPECT_STREQ(snap.back().detail, "19");
}

TEST(FlightRecorder, OversizedFieldsTruncateNotOverflow) {
  ManualClock clock;
  FlightRecorder rec(8, clock_fn(clock));
  const std::string long_name(100, 'n');
  const std::string long_detail(500, 'd');
  rec.record(long_name, long_detail);
  auto snap = rec.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(std::string(snap[0].name).size(), sizeof(snap[0].name) - 1);
  EXPECT_EQ(std::string(snap[0].detail).size(), sizeof(snap[0].detail) - 1);
}

TEST(FlightRecorder, DumpToStringListsBreadcrumbs) {
  ManualClock clock;
  FlightRecorder rec(8, clock_fn(clock));
  clock.set(12.5);
  rec.record("net.queue_shed", "node 2: 4096 bytes");
  const std::string dump = rec.dump_to_string();
  EXPECT_NE(dump.find("# flight recorder: 1 recorded"), std::string::npos)
      << dump;
  EXPECT_NE(dump.find("net.queue_shed"), std::string::npos);
  EXPECT_NE(dump.find("node 2: 4096 bytes"), std::string::npos);
}

TEST(FlightRecorder, SigUsr1DumpsToArtifactAndContinues) {
  const char* path = "flight_sigusr1_artifact.txt";
  std::remove(path);
  ManualClock clock;
  FlightRecorder rec(8, clock_fn(clock));
  rec.set_artifact_path(path);
  EXPECT_EQ(rec.artifact_path(), path);
  rec.record("payment.start", "coin 7");
  FlightRecorder::install_process_hooks(&rec);
  std::raise(SIGUSR1);  // handler runs synchronously on this thread
  FlightRecorder::install_process_hooks(nullptr);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_NE(ss.str().find("reason=sigusr1"), std::string::npos) << ss.str();
  EXPECT_NE(ss.str().find("payment.start"), std::string::npos);
  std::remove(path);
}

TEST(FlightRecorderDeathTest, AbortDumpsArtifactBeforeDying) {
  // The SIGABRT hook must write the artifact, then re-raise with the
  // default disposition so the process still dies abnormally.  The death
  // test forks; the child's artifact file survives for us to inspect.
  const char* path = "flight_abort_artifact.txt";
  std::remove(path);
  EXPECT_DEATH(
      {
        static ManualClock clock;
        static FlightRecorder rec(8, clock_fn(clock));
        rec.set_artifact_path(path);
        rec.record("witness.sign", "pending endorsement");
        FlightRecorder::install_process_hooks(&rec);
        std::abort();
      },
      "flight recorder: dumped");
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_NE(ss.str().find("reason=abort"), std::string::npos) << ss.str();
  EXPECT_NE(ss.str().find("witness.sign"), std::string::npos);
  std::remove(path);
}

}  // namespace
}  // namespace p2pcash::obs
