// Schnorr group: generation, validation, group laws, hash-to-structures.

#include "group/schnorr_group.h"

#include <gtest/gtest.h>

#include "bn/prime.h"
#include "crypto/chacha.h"
#include "metrics/counters.h"

namespace p2pcash::group {
namespace {

using bn::BigInt;

const SchnorrGroup& grp() { return SchnorrGroup::test_256(); }

TEST(GroupGenerate, StructureHolds) {
  crypto::ChaChaRng rng("group-gen");
  auto g = SchnorrGroup::generate(rng, 256, 160);
  EXPECT_EQ(g.p().bit_length(), 256u);
  EXPECT_EQ(g.q().bit_length(), 160u);
  EXPECT_TRUE(bn::is_probable_prime(g.p(), rng));
  EXPECT_TRUE(bn::is_probable_prime(g.q(), rng));
  EXPECT_EQ(bn::mod(g.p() - BigInt{1}, g.q()), BigInt{0});
  EXPECT_TRUE(g.is_generator(g.g()));
  EXPECT_TRUE(g.is_generator(g.g1()));
  EXPECT_TRUE(g.is_generator(g.g2()));
  EXPECT_NE(g.g1(), g.g2());
  EXPECT_NE(g.g(), g.g1());
}

TEST(GroupGenerate, CachedGroupsAreStable) {
  // Same object on repeated access (generated once per process).
  EXPECT_EQ(&SchnorrGroup::test_256(), &SchnorrGroup::test_256());
  EXPECT_EQ(SchnorrGroup::test_512().p().bit_length(), 512u);
}

TEST(GroupFromParams, ValidatesInputs) {
  crypto::ChaChaRng rng("from-params");
  const auto& g = grp();
  // Round-trip through from_params succeeds.
  auto rebuilt =
      SchnorrGroup::from_params(g.p(), g.q(), g.g(), g.g1(), g.g2(), rng);
  EXPECT_EQ(rebuilt, g);
  // Composite p rejected.
  EXPECT_THROW(SchnorrGroup::from_params(g.p() + BigInt{2}, g.q(), g.g(),
                                         g.g1(), g.g2(), rng),
               std::invalid_argument);
  // q not dividing p-1 rejected (use another prime q').
  BigInt q2 = bn::generate_prime(rng, 160);
  EXPECT_THROW(
      SchnorrGroup::from_params(g.p(), q2, g.g(), g.g1(), g.g2(), rng),
      std::invalid_argument);
  // Non-subgroup generator rejected: 1 has order 1; p-1 has order 2.
  EXPECT_THROW(SchnorrGroup::from_params(g.p(), g.q(), BigInt{1}, g.g1(),
                                         g.g2(), rng),
               std::invalid_argument);
  EXPECT_THROW(SchnorrGroup::from_params(g.p(), g.q(), g.p() - BigInt{1},
                                         g.g1(), g.g2(), rng),
               std::invalid_argument);
}

TEST(GroupOps, ExponentLaws) {
  crypto::ChaChaRng rng("laws");
  const auto& g = grp();
  for (int i = 0; i < 10; ++i) {
    BigInt x = g.random_scalar(rng);
    BigInt y = g.random_scalar(rng);
    EXPECT_EQ(g.mul(g.exp_g(x), g.exp_g(y)),
              g.exp_g(bn::mod(x + y, g.q())));
    EXPECT_EQ(g.exp(g.exp_g(x), y), g.exp_g(bn::mod_mul(x, y, g.q())));
  }
}

TEST(GroupOps, ExponentsReducedModQ) {
  crypto::ChaChaRng rng("reduce");
  const auto& g = grp();
  BigInt x = g.random_scalar(rng);
  EXPECT_EQ(g.exp_g(x), g.exp_g(x + g.q()));
  EXPECT_EQ(g.exp_g(BigInt{0}), BigInt{1});
  EXPECT_EQ(g.exp_g(g.q()), BigInt{1});
}

TEST(GroupOps, InverseMultiplies) {
  crypto::ChaChaRng rng("inv");
  const auto& g = grp();
  BigInt x = g.exp_g(g.random_scalar(rng));
  EXPECT_EQ(g.mul(x, g.inv(x)), BigInt{1});
}

TEST(GroupMembership, Detection) {
  const auto& g = grp();
  EXPECT_FALSE(g.is_element(BigInt{0}));
  EXPECT_FALSE(g.is_element(g.p()));
  EXPECT_FALSE(g.is_element(g.p() + BigInt{5}));
  EXPECT_FALSE(g.is_element(BigInt{-3}));
  EXPECT_TRUE(g.is_element(BigInt{1}));
  EXPECT_FALSE(g.is_generator(BigInt{1}));
  // p-1 has order 2 (not q) since q is odd.
  EXPECT_FALSE(g.is_element(g.p() - BigInt{1}));
  EXPECT_TRUE(g.is_generator(g.exp_g(BigInt{12345})));
}

TEST(HashToGroup, LandsInSubgroup) {
  const auto& g = grp();
  for (int i = 0; i < 10; ++i) {
    std::vector<std::uint8_t> data = {static_cast<std::uint8_t>(i)};
    BigInt element = g.hash_to_group(data);
    EXPECT_TRUE(g.is_element(element));
    EXPECT_NE(element, BigInt{1});
  }
}

TEST(HashToGroup, DeterministicAndSpread) {
  const auto& g = grp();
  std::vector<std::uint8_t> a = {1, 2, 3};
  std::vector<std::uint8_t> b = {1, 2, 4};
  EXPECT_EQ(g.hash_to_group(a), g.hash_to_group(a));
  EXPECT_NE(g.hash_to_group(a), g.hash_to_group(b));
}

TEST(HashToZq, RangeAndDeterminism) {
  const auto& g = grp();
  for (int i = 0; i < 20; ++i) {
    std::vector<std::uint8_t> data = {static_cast<std::uint8_t>(i), 99};
    BigInt v = g.hash_to_zq(data);
    EXPECT_TRUE(v >= BigInt{0} && v < g.q());
  }
  EXPECT_EQ(g.hash_to_zq({5}), g.hash_to_zq({5}));
  EXPECT_NE(g.hash_to_zq({5}), g.hash_to_zq({6}));
}

TEST(GroupMetrics, ExpAndHashCounted) {
  const auto& g = grp();
  metrics::OpCounters ops;
  {
    metrics::ScopedOpCounting guard(ops);
    (void)g.exp_g(BigInt{3});
    (void)g.exp(g.g1(), BigInt{4});
    (void)g.hash_to_zq({1});
    (void)g.hash_to_group({2});
    (void)g.mul(g.g1(), g.g2());  // not counted: multiplication is cheap
  }
  EXPECT_EQ(ops.exp, 2u);
  EXPECT_EQ(ops.hash, 2u);
  EXPECT_EQ(ops.sig, 0u);
  EXPECT_EQ(ops.ver, 0u);
}

TEST(GroupSizes, ByteWidths) {
  const auto& g = grp();
  EXPECT_EQ(g.element_bytes(), 32u);  // 256-bit p
  EXPECT_EQ(g.scalar_bytes(), 20u);   // 160-bit q
}

TEST(RandomScalar, InRange) {
  crypto::ChaChaRng rng("scalar");
  const auto& g = grp();
  for (int i = 0; i < 50; ++i) {
    BigInt s = g.random_scalar(rng);
    EXPECT_TRUE(s >= BigInt{1} && s < g.q());
  }
}

}  // namespace
}  // namespace p2pcash::group
