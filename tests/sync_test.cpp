// sync_test.cpp — runtime lock-order checker (src/sync/lock_order.h):
// inversion detection with both lock names in the report, re-entrancy
// rejection, hierarchy enforcement, and the no-false-positive cases that
// keep the checker usable (consistent ordering, out-of-order release,
// shared locks, try_lock).
//
// Every case runs with a capturing violation handler installed (the
// default handler aborts, by design) and restores the tracker's global
// state on teardown so later tests in other binaries are unaffected.

#include <gtest/gtest.h>

#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "sync/annotated.h"
#include "sync/lock_order.h"

namespace p2pcash::sync {
namespace {

class LockOrderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = lock_order::enabled();
    lock_order::reset();
    lock_order::set_violation_handler(
        [this](const lock_order::Violation& v) {
          std::lock_guard<std::mutex> lock(record_mu_);
          violations_.push_back(v);
        });
    lock_order::set_enabled(true);
  }

  void TearDown() override {
    lock_order::set_enabled(was_enabled_);
    lock_order::set_violation_handler(nullptr);
    lock_order::reset();
  }

  std::vector<lock_order::Violation> violations() const {
    std::lock_guard<std::mutex> lock(record_mu_);
    return violations_;
  }

 private:
  bool was_enabled_ = false;
  // Plain std::mutex on purpose: the handler runs inside the tracker's
  // acquisition path and must not acquire tracked locks.
  mutable std::mutex record_mu_;
  std::vector<lock_order::Violation> violations_;
};

// ---------------------------------------------------------------------------
// Inversion detection
// ---------------------------------------------------------------------------

TEST_F(LockOrderTest, InversionReportedWithBothLockNames) {
  // The two orders run against *distinct instances* of the same named
  // roles throughout the deliberate-inversion tests below: the tracker
  // keys its graph by name so it still reports, while TSan (which keys by
  // instance) does not flag the test's own intentional inversion in its
  // deadlock detector.
  static Mutex a1("test.order_a");
  static Mutex b1("test.order_b");

  {  // Teach the tracker a -> b.
    MutexLock la(a1);
    MutexLock lb(b1);
  }
  ASSERT_TRUE(violations().empty());

  // Another thread acquires the roles in the reverse order.  Sequential
  // (the other thread runs to completion), so no real deadlock — but some
  // interleaving of the two orders would deadlock, and that is what the
  // tracker must report.
  static Mutex a2("test.order_a");
  static Mutex b2("test.order_b");
  std::thread reversed([&] {
    MutexLock lb(b2);
    MutexLock la(a2);
  });
  reversed.join();

  const auto v = violations();
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].kind, lock_order::ViolationKind::kInversion);
  EXPECT_EQ(v[0].acquiring, "test.order_a");
  EXPECT_EQ(v[0].held, "test.order_b");
  // The report must name BOTH locks so the log alone identifies the pair.
  EXPECT_NE(v[0].detail.find("test.order_a"), std::string::npos);
  EXPECT_NE(v[0].detail.find("test.order_b"), std::string::npos);
  EXPECT_EQ(lock_order::violation_count(), 1u);
}

TEST_F(LockOrderTest, InversionDetectedAcrossDistinctInstancesOfOneRole) {
  // The graph is keyed by lock *name*, so the inversion is caught even
  // when the second thread touches different instances of the same roles
  // (e.g. two WitnessService objects both naming "ecash.witness").
  static Mutex a1("test.role_p");
  static Mutex b1("test.role_q");
  static Mutex a2("test.role_p");
  static Mutex b2("test.role_q");

  {
    MutexLock la(a1);
    MutexLock lb(b1);
  }
  {
    MutexLock lb(b2);
    MutexLock la(a2);
  }

  const auto v = violations();
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].kind, lock_order::ViolationKind::kInversion);
  EXPECT_EQ(v[0].acquiring, "test.role_p");
  EXPECT_EQ(v[0].held, "test.role_q");
}

TEST_F(LockOrderTest, TransitiveCycleThroughThirdLockIsReported) {
  // Fresh instances per nesting so only the tracker's name-keyed graph
  // (not TSan's instance-keyed one) observes the constructed cycle.
  static Mutex a1("test.tri_a"), a2("test.tri_a");
  static Mutex b1("test.tri_b"), b2("test.tri_b");
  static Mutex c1("test.tri_c"), c2("test.tri_c");

  {  // a -> b
    MutexLock la(a1);
    MutexLock lb(b1);
  }
  {  // b -> c
    MutexLock lb(b2);
    MutexLock lc(c1);
  }
  ASSERT_TRUE(violations().empty());
  {  // c -> a closes a -> b -> c -> a
    MutexLock lc(c2);
    MutexLock la(a2);
  }

  const auto v = violations();
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].kind, lock_order::ViolationKind::kInversion);
  EXPECT_EQ(v[0].acquiring, "test.tri_a");
  EXPECT_EQ(v[0].held, "test.tri_c");
  // The cycle path in the report walks a -> b -> c.
  EXPECT_NE(v[0].detail.find("test.tri_b"), std::string::npos);
}

TEST_F(LockOrderTest, ConsistentOrderAcrossManyThreadsIsClean) {
  static Mutex a("test.clean_a");
  static Mutex b("test.clean_b");
  std::vector<std::thread> threads;
  threads.reserve(8);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        MutexLock la(a);
        MutexLock lb(b);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_TRUE(violations().empty());
  EXPECT_EQ(lock_order::violation_count(), 0u);
}

// ---------------------------------------------------------------------------
// Re-entrancy
// ---------------------------------------------------------------------------

TEST_F(LockOrderTest, ReentrantAcquisitionReported) {
  // Driven through the tracker hooks exactly as Mutex::lock() drives them:
  // actually re-locking the underlying std::mutex is UB (self-deadlock),
  // so the test exercises the detection path without the deadlock.
  lock_order::LockNode node{"test.reentrant", 0};
  lock_order::on_acquire(&node);
  ASSERT_TRUE(violations().empty());
  lock_order::on_acquire(&node);

  const auto v = violations();
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].kind, lock_order::ViolationKind::kReentrancy);
  EXPECT_EQ(v[0].acquiring, "test.reentrant");
  EXPECT_EQ(v[0].held, "test.reentrant");
  EXPECT_NE(v[0].detail.find("test.reentrant"), std::string::npos);

  lock_order::on_release(&node);
  lock_order::on_release(&node);
}

TEST_F(LockOrderTest, DistinctInstancesOfOneRoleAreNotReentrancy) {
  // Two instances sharing a name (two brokers, two witnesses) may nest;
  // only the same *instance* twice is re-entrancy.
  static Mutex m1("test.twin");
  static Mutex m2("test.twin");
  {
    MutexLock l1(m1);
    MutexLock l2(m2);
  }
  EXPECT_TRUE(violations().empty());
}

// ---------------------------------------------------------------------------
// Hierarchy levels
// ---------------------------------------------------------------------------

TEST_F(LockOrderTest, AscendingLevelsReportedOnFirstBadAcquisition) {
  // The hierarchy check fires on the very first ascending acquisition —
  // no reverse edge needs to be observed first.
  static Mutex sink("test.h_sink", level::kSink);
  static Mutex service("test.h_service", level::kService);
  {
    MutexLock ls(sink);
    MutexLock lv(service);
  }
  const auto v = violations();
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].kind, lock_order::ViolationKind::kHierarchy);
  EXPECT_EQ(v[0].acquiring, "test.h_service");
  EXPECT_EQ(v[0].held, "test.h_sink");
}

TEST_F(LockOrderTest, EqualLevelsAlsoViolate) {
  // Strict descent: two same-level locks may not nest (their relative
  // order would be undefined across call sites).
  static Mutex s1("test.h_eq1", level::kService);
  static Mutex s2("test.h_eq2", level::kService);
  {
    MutexLock l1(s1);
    MutexLock l2(s2);
  }
  const auto v = violations();
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].kind, lock_order::ViolationKind::kHierarchy);
}

TEST_F(LockOrderTest, DescendingHierarchyIsClean) {
  // The full legal nesting: service -> actors -> tracer -> registry ->
  // sink -> group cache, with an unranked (level 0) lock interleaved —
  // unranked locks opt out of hierarchy checking entirely.
  static Mutex service("test.n_service", level::kService);
  static Mutex actors("test.n_actors", level::kActors);
  static Mutex tracer("test.n_tracer", level::kTracer);
  static Mutex unranked("test.n_unranked");
  static Mutex registry("test.n_registry", level::kRegistry);
  static Mutex sink("test.n_sink", level::kSink);
  static Mutex cache("test.n_cache", level::kGroupCache);
  {
    MutexLock l1(service);
    MutexLock l2(actors);
    MutexLock l3(tracer);
    MutexLock l4(unranked);
    MutexLock l5(registry);
    MutexLock l6(sink);
    MutexLock l7(cache);
  }
  EXPECT_TRUE(violations().empty());
  EXPECT_EQ(lock_order::violation_count(), 0u);
}

// ---------------------------------------------------------------------------
// Shared locks, release order, try_lock, enable/reset
// ---------------------------------------------------------------------------

TEST_F(LockOrderTest, SharedAcquisitionsParticipateInOrdering) {
  // A reader hold can still deadlock against an exclusive hold, so shared
  // acquisitions contribute the same edges.
  static SharedMutex rw1("test.rw");
  static Mutex m1("test.rw_peer");
  static SharedMutex rw2("test.rw");
  static Mutex m2("test.rw_peer");
  {
    SharedLock lr(rw1);
    MutexLock lm(m1);
  }
  {
    MutexLock lm(m2);
    SharedLock lr(rw2);
  }
  const auto v = violations();
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].kind, lock_order::ViolationKind::kInversion);
  EXPECT_EQ(v[0].acquiring, "test.rw");
  EXPECT_EQ(v[0].held, "test.rw_peer");
}

TEST_F(LockOrderTest, OutOfOrderReleaseIsTolerated) {
  static Mutex a("test.rel_a");
  static Mutex b("test.rel_b");
  a.lock();
  b.lock();
  a.unlock();  // released before b: legal with unique_lock-style usage
  b.unlock();
  {  // The learned a -> b order still applies cleanly.
    MutexLock la(a);
    MutexLock lb(b);
  }
  EXPECT_TRUE(violations().empty());
}

TEST_F(LockOrderTest, TryLockNeverReportsInversion) {
  static Mutex a1("test.try_a");
  static Mutex b1("test.try_b");
  static Mutex a2("test.try_a");
  static Mutex b2("test.try_b");
  {  // learn a -> b
    MutexLock la(a1);
    MutexLock lb(b1);
  }
  // Reverse order via try_lock: cannot block, cannot deadlock, no report.
  b2.lock();
  ASSERT_TRUE(a2.try_lock());
  a2.unlock();
  b2.unlock();
  EXPECT_TRUE(violations().empty());
  EXPECT_EQ(lock_order::violation_count(), 0u);
}

TEST_F(LockOrderTest, DisabledTrackerIsSilent) {
  lock_order::set_enabled(false);
  static Mutex a1("test.off_a");
  static Mutex b1("test.off_b");
  static Mutex a2("test.off_a");
  static Mutex b2("test.off_b");
  {
    MutexLock la(a1);
    MutexLock lb(b1);
  }
  {
    MutexLock lb(b2);
    MutexLock la(a2);
  }
  EXPECT_TRUE(violations().empty());
  EXPECT_EQ(lock_order::violation_count(), 0u);
}

TEST_F(LockOrderTest, ResetForgetsLearnedOrder) {
  static Mutex a1("test.reset_a");
  static Mutex b1("test.reset_b");
  static Mutex a2("test.reset_a");
  static Mutex b2("test.reset_b");
  {
    MutexLock la(a1);
    MutexLock lb(b1);
  }
  lock_order::reset();
  {  // Reverse order after reset: the graph is empty, b -> a is learned
     // fresh, no inversion.
    MutexLock lb(b2);
    MutexLock la(a2);
  }
  EXPECT_TRUE(violations().empty());
  EXPECT_EQ(lock_order::violation_count(), 0u);
}

}  // namespace
}  // namespace p2pcash::sync
