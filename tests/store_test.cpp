// Durable coin-state store: CRC framing, torn-tail recovery, group commit,
// compaction, the immutable table-file format, and the golden guarantee
// that store-backed services produce byte-identical snapshots to plain ones.

#include <gtest/gtest.h>

#include <thread>

#include "crypto/chacha.h"
#include "ecash/deployment.h"
#include "obs/metrics_registry.h"
#include "store/crc32c.h"
#include "store/log_store.h"
#include "store/store.h"
#include "store/table_file.h"
#include "store/vfs.h"

namespace p2pcash::store {
namespace {

std::vector<std::uint8_t> bytes_of(std::string_view s) {
  return std::vector<std::uint8_t>(s.begin(), s.end());
}

// ---- crc32c ---------------------------------------------------------------

TEST(Crc32c, KnownVectors) {
  // RFC 3720 appendix B test vectors (CRC-32C / Castagnoli).
  EXPECT_EQ(crc32c(std::vector<std::uint8_t>{}), 0x00000000u);
  EXPECT_EQ(crc32c(bytes_of("123456789")), 0xE3069283u);
  std::vector<std::uint8_t> zeros(32, 0x00);
  EXPECT_EQ(crc32c(zeros), 0x8A9136AAu);
  std::vector<std::uint8_t> ones(32, 0xFF);
  EXPECT_EQ(crc32c(ones), 0x62A8AB43u);
}

TEST(Crc32c, SeedChainsIncrementalComputation) {
  auto data = bytes_of("the quick brown fox jumps over the lazy dog");
  auto whole = crc32c(data);
  std::span<const std::uint8_t> all(data);
  auto part = crc32c(all.subspan(10), crc32c(all.first(10)));
  EXPECT_EQ(part, whole);
}

// ---- MemVfs ---------------------------------------------------------------

TEST(MemVfs, CrashKeepsSyncedPrefixPlusKeptTail) {
  MemVfs vfs;
  auto f = vfs.open("log");
  f->append(bytes_of("durable"));
  f->sync();
  f->append(bytes_of("unsynced"));
  EXPECT_EQ(vfs.unsynced_bytes("log"), 8u);

  vfs.crash_file("log", 3);  // kernel flushed 3 bytes of the tail
  EXPECT_EQ(vfs.contents("log"), bytes_of("durableuns"));
  // Everything surviving a crash is by definition durable now.
  EXPECT_EQ(vfs.unsynced_bytes("log"), 0u);
  // keep is clamped to the tail length.
  auto g = vfs.open("log");
  g->append(bytes_of("xy"));
  vfs.crash_file("log", 99);
  EXPECT_EQ(vfs.contents("log"), bytes_of("durableunsxy"));
}

TEST(MemVfs, RenameIsCrashAtomic) {
  MemVfs vfs;
  vfs.open("a")->append(bytes_of("new"));
  vfs.open("b")->append(bytes_of("old"));
  vfs.rename("a", "b");
  EXPECT_FALSE(vfs.exists("a"));
  EXPECT_EQ(vfs.contents("b"), bytes_of("new"));
  // The renamed-in bytes survive an immediate crash (rename barrier).
  vfs.crash_file("b", 0);
  EXPECT_EQ(vfs.contents("b"), bytes_of("new"));
}

// ---- LogStore basics ------------------------------------------------------

TEST(LogStore, CheckpointAndDeltasRoundTrip) {
  MemVfs vfs;
  {
    LogStore log(vfs, "log");
    EXPECT_TRUE(log.empty());
    log.checkpoint(bytes_of("snap"));
    log.append(bytes_of("d1"));
    log.append(bytes_of("d2"));
    log.commit();
  }
  LogStore reopened(vfs, "log");
  EXPECT_FALSE(reopened.empty());
  auto rec = reopened.recover();
  EXPECT_EQ(rec.snapshot, bytes_of("snap"));
  ASSERT_EQ(rec.deltas.size(), 2u);
  EXPECT_EQ(rec.deltas[0], bytes_of("d1"));
  EXPECT_EQ(rec.deltas[1], bytes_of("d2"));
  EXPECT_EQ(reopened.stats().recovered_records, 3u);
  EXPECT_EQ(reopened.stats().truncated_bytes, 0u);
}

TEST(LogStore, LaterCheckpointSupersedesEarlierRecords) {
  MemVfs vfs;
  LogStore log(vfs, "log");
  log.checkpoint(bytes_of("one"));
  log.append(bytes_of("d1"));
  log.commit();
  log.checkpoint(bytes_of("two"));  // compaction: rewrites the log
  log.append(bytes_of("d2"));
  log.commit();

  LogStore reopened(vfs, "log");
  auto rec = reopened.recover();
  EXPECT_EQ(rec.snapshot, bytes_of("two"));
  ASSERT_EQ(rec.deltas.size(), 1u);
  EXPECT_EQ(rec.deltas[0], bytes_of("d2"));
  // Compaction really shrank the log to checkpoint + one delta.
  EXPECT_EQ(reopened.stats().recovered_records, 2u);
}

TEST(LogStore, UncommittedTailIsLostCommittedPrefixIsNot) {
  MemVfs vfs;
  LogStore log(vfs, "log");
  log.checkpoint(bytes_of("snap"));
  log.append(bytes_of("acked"));
  log.commit();
  log.append(bytes_of("unacked"));  // never committed

  vfs.crash_file("log", 0);  // none of the page cache made it
  LogStore reopened(vfs, "log");
  auto rec = reopened.recover();
  EXPECT_EQ(rec.snapshot, bytes_of("snap"));
  ASSERT_EQ(rec.deltas.size(), 1u);
  EXPECT_EQ(rec.deltas[0], bytes_of("acked"));
}

TEST(LogStore, EveryTornTailPositionRecoversCleanly) {
  // Kill at every possible byte of the unsynced tail: recovery must keep
  // exactly the records whose frames fully survived, and truncate the rest.
  MemVfs vfs;
  LogStore log(vfs, "log");
  log.checkpoint(bytes_of("base"));
  const std::uint64_t base_len = log.size_bytes();
  log.append(bytes_of("delta-one"));
  log.append(bytes_of("delta-two!"));
  const auto full = vfs.contents("log");
  const std::uint64_t rec1 = kFrameHeaderBytes + 1 + 9;  // frame|kind|body
  const std::uint64_t rec2 = kFrameHeaderBytes + 1 + 10;
  ASSERT_EQ(full.size(), base_len + rec1 + rec2);

  for (std::uint64_t keep = 0; keep <= rec1 + rec2; ++keep) {
    MemVfs torn;
    torn.set_contents(
        "log",
        std::vector<std::uint8_t>(
            full.begin(),
            full.begin() + static_cast<std::ptrdiff_t>(base_len + keep)));
    LogStore reopened(torn, "log");
    auto rec = reopened.recover();
    EXPECT_EQ(rec.snapshot, bytes_of("base")) << "keep=" << keep;
    const std::uint64_t survives =
        keep >= rec1 + rec2 ? rec1 + rec2 : keep >= rec1 ? rec1 : 0;
    EXPECT_EQ(rec.deltas.size(), survives == rec1 + rec2 ? 2u
                                 : survives == rec1      ? 1u
                                                         : 0u)
        << "keep=" << keep;
    // The torn bytes were chopped from the reopened file.
    EXPECT_EQ(torn.contents("log").size(), base_len + survives)
        << "keep=" << keep;
    EXPECT_EQ(reopened.stats().truncated_bytes, keep - survives)
        << "keep=" << keep;
  }
}

TEST(LogStore, CrashDuringCompactionFallsBackToOldLog) {
  MemVfs vfs;
  {
    LogStore log(vfs, "log");
    log.checkpoint(bytes_of("snap"));
    log.append(bytes_of("d1"));
    log.commit();
  }
  // Simulate a crash mid-compaction: a stale temp file next to a good log.
  vfs.set_contents("log.tmp", bytes_of("half-written garbage"));
  LogStore reopened(vfs, "log");
  EXPECT_FALSE(vfs.exists("log.tmp"));  // stale temp removed on open
  auto rec = reopened.recover();
  EXPECT_EQ(rec.snapshot, bytes_of("snap"));
  ASSERT_EQ(rec.deltas.size(), 1u);
}

TEST(LogStore, StatsCountAppendsCommitsAndFsyncs) {
  obs::MetricsRegistry registry;
  MemVfs vfs;
  LogStore::Options opts;
  opts.metrics = &registry;
  LogStore log(vfs, "log", opts);
  log.append(bytes_of("a"));
  log.append(bytes_of("b"));
  log.commit();
  log.commit();  // nothing new: no extra fsync
  auto stats = log.stats();
  EXPECT_EQ(stats.appended_records, 2u);
  EXPECT_EQ(stats.commits, 1u);
  EXPECT_EQ(stats.fsyncs, 1u);
  auto text = registry.prometheus_text();
  EXPECT_NE(text.find("store_appends_total"), std::string::npos);
  EXPECT_NE(text.find("store_commit_batch_records"), std::string::npos);
}

TEST(LogStore, ConcurrentCommittersAreGroupCommitted) {
  MemVfs vfs;
  LogStore log(vfs, "log");
  constexpr int kThreads = 8;
  constexpr int kOps = 50;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log, t]() {
      for (int i = 0; i < kOps; ++i) {
        std::uint8_t payload[2] = {static_cast<std::uint8_t>(t),
                                   static_cast<std::uint8_t>(i)};
        log.append(payload);
        log.commit();
      }
    });
  }
  for (auto& th : threads) th.join();
  auto stats = log.stats();
  EXPECT_EQ(stats.appended_records, kThreads * kOps);
  // Group commit: leaders sync whole batches, so fsyncs never exceed the
  // commit() calls that found work.
  EXPECT_LE(stats.fsyncs, stats.commits);
  LogStore reopened(vfs, "log");
  EXPECT_EQ(reopened.recover().deltas.size(), kThreads * kOps);
}

// ---- hostile inputs (see also fuzz_test.cpp's log corpus) -----------------

TEST(LogStore, OversizedLengthPrefixIsCorruptionNotAllocation) {
  MemVfs vfs;
  auto genuine = LogStore::frame_record(kRecordDelta, bytes_of("fine"));
  std::vector<std::uint8_t> bytes = genuine;
  bytes.insert(bytes.end(), {0xff, 0xff, 0xff, 0xff,  // 4 GiB length claim
                             0x00, 0x00, 0x00, 0x00});
  vfs.set_contents("log", bytes);
  LogStore log(vfs, "log");
  auto rec = log.recover();
  ASSERT_EQ(rec.deltas.size(), 1u);
  EXPECT_EQ(rec.deltas[0], bytes_of("fine"));
  EXPECT_EQ(log.stats().truncated_bytes, 8u);
  EXPECT_EQ(vfs.contents("log"), genuine);
}

TEST(LogStore, FlippedCrcByteDropsTheRecordAndEverythingAfter) {
  MemVfs vfs;
  auto r1 = LogStore::frame_record(kRecordDelta, bytes_of("first"));
  auto r2 = LogStore::frame_record(kRecordDelta, bytes_of("second"));
  auto r3 = LogStore::frame_record(kRecordDelta, bytes_of("third"));
  std::vector<std::uint8_t> bytes;
  for (const auto* r : {&r1, &r2, &r3})
    bytes.insert(bytes.end(), r->begin(), r->end());
  bytes[r1.size() + 4] ^= 0xff;  // CRC field of the second record
  vfs.set_contents("log", bytes);
  LogStore log(vfs, "log");
  auto rec = log.recover();
  // The single-log CRC trade-off: corruption truncates the suffix.  Only
  // the prefix before the bad record survives.
  ASSERT_EQ(rec.deltas.size(), 1u);
  EXPECT_EQ(rec.deltas[0], bytes_of("first"));
  EXPECT_EQ(log.stats().truncated_bytes, r2.size() + r3.size());
}

TEST(LogStore, AppendingAfterRecoveryProducesAValidLog) {
  MemVfs vfs;
  auto r1 = LogStore::frame_record(kRecordDelta, bytes_of("keep"));
  std::vector<std::uint8_t> bytes = r1;
  bytes.insert(bytes.end(), {0x00, 0x00, 0x01});  // torn header
  vfs.set_contents("log", bytes);
  {
    LogStore log(vfs, "log");
    log.append(bytes_of("fresh"));
    log.commit();
  }
  LogStore reopened(vfs, "log");
  auto rec = reopened.recover();
  ASSERT_EQ(rec.deltas.size(), 2u);
  EXPECT_EQ(rec.deltas[0], bytes_of("keep"));
  EXPECT_EQ(rec.deltas[1], bytes_of("fresh"));
}

// ---- SnapshotStore --------------------------------------------------------

TEST(SnapshotStore, ModelsTheLegacySynchronousWal) {
  SnapshotStore store;
  EXPECT_TRUE(store.empty());
  store.checkpoint(bytes_of("snap"));
  EXPECT_FALSE(store.empty());
  store.append(bytes_of("d"));
  EXPECT_EQ(store.delta_count(), 1u);
  store.commit();  // no-op
  auto rec = store.recover();
  EXPECT_EQ(rec.snapshot, bytes_of("snap"));
  ASSERT_EQ(rec.deltas.size(), 1u);
  store.checkpoint(bytes_of("snap2"));
  EXPECT_EQ(store.delta_count(), 0u);  // compaction clears the journal
}

// ---- PosixVfs + mmap ------------------------------------------------------

TEST(PosixVfs, LogRoundTripsOnARealFilesystem) {
  PosixVfs vfs(::testing::TempDir() + "p2pcash_store_test");
  if (vfs.exists("posix.log")) vfs.remove("posix.log");
  {
    LogStore log(vfs, "posix.log");
    log.checkpoint(bytes_of("snap"));
    log.append(bytes_of("delta"));
    log.commit();
  }
  LogStore reopened(vfs, "posix.log");
  auto rec = reopened.recover();
  EXPECT_EQ(rec.snapshot, bytes_of("snap"));
  ASSERT_EQ(rec.deltas.size(), 1u);
  EXPECT_EQ(rec.deltas[0], bytes_of("delta"));
  vfs.remove("posix.log");
}

// ---- table file -----------------------------------------------------------

TableKey key_of(std::uint64_t v) {
  TableKey k{};
  for (int i = 0; i < 8; ++i)
    k[kTableKeyBytes - 1 - static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(v >> (8 * i));
  return k;
}

TEST(TableFile, BuildsSortsAndSearches) {
  TableFileBuilder builder(7, 12345);
  builder.add(key_of(300), bytes_of("r300"));
  builder.add(key_of(100), bytes_of("r100"));
  builder.add(key_of(200), bytes_of("r200"));
  auto bytes = builder.build();

  TableFileView view(bytes);
  EXPECT_EQ(view.version(), 7u);
  EXPECT_EQ(view.published_at(), 12345);
  ASSERT_EQ(view.entry_count(), 3u);
  EXPECT_EQ(view.key(0), key_of(100));  // sorted on build
  auto p = view.payload(1);
  EXPECT_EQ(std::vector<std::uint8_t>(p.begin(), p.end()), bytes_of("r200"));

  EXPECT_FALSE(view.predecessor(key_of(99)).has_value());
  EXPECT_EQ(view.predecessor(key_of(100)), 0u);
  EXPECT_EQ(view.predecessor(key_of(250)), 1u);
  EXPECT_EQ(view.predecessor(key_of(5000)), 2u);
}

TEST(TableFile, RejectsDuplicateKeysAndCorruptBytes) {
  TableFileBuilder builder(1, 0);
  builder.add(key_of(1), bytes_of("a"));
  builder.add(key_of(1), bytes_of("b"));
  EXPECT_THROW((void)builder.build(), std::invalid_argument);

  TableFileBuilder ok(1, 0);
  ok.add(key_of(1), bytes_of("a"));
  auto bytes = ok.build();
  // Flip any byte: the trailing CRC (or a structural check) must reject.
  for (std::size_t i = 0; i < bytes.size(); i += 3) {
    auto bad = bytes;
    bad[i] ^= 0x01;
    EXPECT_THROW(TableFileView{bad}, std::runtime_error) << "byte " << i;
  }
  // Truncations are rejected too.
  for (std::size_t cut : {std::size_t{0}, std::size_t{7}, std::size_t{23}}) {
    std::span<const std::uint8_t> prefix(bytes.data(), cut);
    EXPECT_THROW(TableFileView{prefix}, std::runtime_error) << "cut " << cut;
  }
}

TEST(TableFile, MmapViewMatchesInMemoryView) {
  TableFileBuilder builder(3, 99);
  for (std::uint64_t k = 0; k < 50; ++k)
    builder.add(key_of(k * 10), bytes_of("payload-" + std::to_string(k)));
  auto bytes = builder.build();

  PosixVfs vfs(::testing::TempDir() + "p2pcash_store_test");
  if (vfs.exists("table.p2ptbl")) vfs.remove("table.p2ptbl");
  vfs.open("table.p2ptbl")->append(bytes);
  MappedTableFile mapped(vfs.dir() + "/table.p2ptbl");
  const TableFileView& view = mapped.view();
  TableFileView mem(bytes);
  ASSERT_EQ(view.entry_count(), mem.entry_count());
  for (std::uint32_t i = 0; i < view.entry_count(); ++i) {
    EXPECT_EQ(view.key(i), mem.key(i));
    auto a = view.payload(i);
    auto b = mem.payload(i);
    ASSERT_EQ(a.size(), b.size());
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
  }
  vfs.remove("table.p2ptbl");
}

}  // namespace
}  // namespace p2pcash::store

// ---- golden equivalence ---------------------------------------------------
//
// The journaling seam must be invisible: a deployment whose broker and
// witnesses run behind a Store produces byte-identical snapshot_state()
// bytes to a plain deployment driven by the same seed and script — and a
// service recovered from the store reproduces those bytes exactly.

namespace p2pcash::ecash {
namespace {

struct ScriptResult {
  std::vector<std::uint8_t> broker_snapshot;
  std::vector<std::vector<std::uint8_t>> witness_snapshots;
};

/// The deterministic script: withdrawals, payments, a double spend, a
/// deposit wave and an exchange — every journaled record kind fires.
ScriptResult run_script(Deployment& dep) {
  auto wallet = dep.make_wallet();
  std::vector<WalletCoin> coins;
  for (int i = 0; i < 4; ++i) {
    auto coin = dep.withdraw(*wallet, 100, 1000);
    EXPECT_TRUE(coin.ok());
    coins.push_back(std::move(coin).value());
  }
  auto ids = dep.merchant_ids();
  EXPECT_TRUE(dep.pay(*wallet, coins[0], ids[0], 2000).accepted);
  EXPECT_TRUE(dep.pay(*wallet, coins[1], ids[1], 2100).accepted);
  // Double spend: the witness answers with a proof, not an endorsement.
  EXPECT_FALSE(dep.pay(*wallet, coins[0], ids[2], 2200).accepted);
  dep.deposit_all(ids[0], 3000);
  dep.deposit_all(ids[1], 3000);
  auto change = dep.exchange(*wallet, coins[2], {60, 40}, 4000);
  EXPECT_TRUE(change.ok());

  ScriptResult result;
  result.broker_snapshot = dep.broker().snapshot_state();
  for (const auto& id : dep.merchant_ids())
    result.witness_snapshots.push_back(dep.node(id).witness->snapshot_state());
  return result;
}

TEST(StoreGolden, SnapshotStoreBackedRunIsByteIdenticalToPlain) {
  const auto& grp = group::SchnorrGroup::test_256();
  Deployment plain(grp, 8, /*seed=*/77);
  Deployment backed(grp, 8, /*seed=*/77);

  store::SnapshotStore broker_store;
  backed.broker().attach_store(broker_store);
  std::vector<std::unique_ptr<store::SnapshotStore>> witness_stores;
  for (const auto& id : backed.merchant_ids()) {
    witness_stores.push_back(std::make_unique<store::SnapshotStore>());
    backed.node(id).witness->attach_store(*witness_stores.back());
  }

  auto want = run_script(plain);
  auto got = run_script(backed);
  EXPECT_EQ(got.broker_snapshot, want.broker_snapshot);
  ASSERT_EQ(got.witness_snapshots.size(), want.witness_snapshots.size());
  for (std::size_t i = 0; i < want.witness_snapshots.size(); ++i)
    EXPECT_EQ(got.witness_snapshots[i], want.witness_snapshots[i]) << i;
  // The journaling actually ran (the seam was exercised, not bypassed).
  EXPECT_GT(broker_store.delta_count(), 0u);
}

TEST(StoreGolden, LogStoreRecoveryReproducesTheExactSnapshotBytes) {
  const auto& grp = group::SchnorrGroup::test_256();
  Deployment plain(grp, 8, /*seed=*/77);
  Deployment backed(grp, 8, /*seed=*/77);

  store::MemVfs vfs;
  store::LogStore broker_store(vfs, "broker.log");
  backed.broker().attach_store(broker_store);

  auto want = run_script(plain);
  auto got = run_script(backed);
  EXPECT_EQ(got.broker_snapshot, want.broker_snapshot);

  // Recover a fresh broker from the log alone: same bytes again.
  crypto::ChaChaRng rng("recovery");
  store::LogStore reopened(vfs, "broker.log");
  Broker recovered(grp, rng);
  recovered.attach_store(reopened);
  EXPECT_EQ(recovered.snapshot_state(), want.broker_snapshot);

  // Compaction preserves the state and shrinks the log.
  auto before = reopened.size_bytes();
  recovered.checkpoint_store();
  EXPECT_LE(reopened.size_bytes(), before);
  EXPECT_EQ(recovered.snapshot_state(), want.broker_snapshot);
}

TEST(StoreGolden, ExportedTableFileResolvesEveryLookupIdentically) {
  const auto& grp = group::SchnorrGroup::test_256();
  Deployment dep(grp, 8, /*seed=*/99);
  auto bytes = dep.broker().export_table_file(1);
  store::TableFileView view(bytes);
  const WitnessTable& table = dep.broker().current_table();
  ASSERT_EQ(view.entry_count(), table.entries().size());

  crypto::ChaChaRng rng("table-points");
  for (int i = 0; i < 200; ++i) {
    std::vector<std::uint8_t> raw(kRangeBits / 8);
    rng.fill(raw);
    auto point = bn::BigInt::from_bytes_be(raw);
    auto via_file = WitnessTable::lookup_table_file(view, point);
    auto via_table = table.lookup(point);
    ASSERT_EQ(via_file.has_value(), via_table.has_value()) << i;
    if (via_file) {
      EXPECT_EQ(*via_file, *via_table) << i;
    }
  }
  // Range boundaries resolve identically too (the off-by-one hot spots).
  for (const auto& e : table.entries()) {
    auto at_lo = WitnessTable::lookup_table_file(view, e.lo);
    ASSERT_TRUE(at_lo.has_value());
    EXPECT_EQ(at_lo->merchant, e.merchant);
    auto below_hi = WitnessTable::lookup_table_file(view, e.hi - bn::BigInt{1});
    ASSERT_TRUE(below_hi.has_value());
    EXPECT_EQ(below_hi->merchant, e.merchant);
  }
  EXPECT_THROW((void)dep.broker().export_table_file(42),
               std::invalid_argument);
}

}  // namespace
}  // namespace p2pcash::ecash
