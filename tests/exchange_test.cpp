// Denomination exchange (the change-making extension, §8 divisibility
// direction): a coin is paid to the broker under witness protection and
// swapped for smaller coins.

#include <gtest/gtest.h>

#include "ecash_fixture.h"

namespace p2pcash::ecash {
namespace {

using testing::EcashTest;

class ExchangeTest : public EcashTest {};

TEST_F(ExchangeTest, CoinSplitsIntoChange) {
  auto coin = withdraw(100);
  auto change = dep_.exchange(*wallet_, coin, {50, 25, 25}, 2000);
  ASSERT_TRUE(change.ok()) << (change.ok() ? "" : change.refusal().detail);
  ASSERT_EQ(change.value().size(), 3u);
  EXPECT_EQ(change.value()[0].coin.bare.info.denomination, 50u);
  EXPECT_EQ(change.value()[1].coin.bare.info.denomination, 25u);
  EXPECT_EQ(change.value()[2].coin.bare.info.denomination, 25u);
  // The change coins are fresh, unlinkable, and independently spendable.
  for (const auto& c : change.value()) {
    EXPECT_NE(c.coin.bare.coin_hash(), coin.coin.bare.coin_hash());
    auto merchant = non_witness_merchant(c);
    EXPECT_TRUE(dep_.pay(*wallet_, c, merchant, 3000).accepted);
  }
}

TEST_F(ExchangeTest, ChangeMustSumToValue) {
  auto coin = withdraw(100);
  auto bad = dep_.exchange(*wallet_, coin, {50, 25}, 2000);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.refusal().reason, RefusalReason::kBadProof);
  auto zero = dep_.exchange(*wallet_, coin, {100, 0}, 2000);
  EXPECT_FALSE(zero.ok());
  auto empty = dep_.exchange(*wallet_, coin, {}, 2000);
  EXPECT_FALSE(empty.ok());
  // The bad splits were rejected client-side, before any witness was
  // contacted — so the coin is still fresh and a correct split succeeds.
  // (Had the witness signed first, a retried split would read as a double
  // spend; the driver therefore validates sums up front.)
  auto good = dep_.exchange(*wallet_, coin, {60, 40}, 2000);
  EXPECT_TRUE(good.ok()) << (good.ok() ? "" : good.refusal().detail);
}

TEST_F(ExchangeTest, SpentCoinCannotBeExchanged) {
  auto coin = withdraw(100);
  auto merchant = non_witness_merchant(coin);
  ASSERT_TRUE(dep_.pay(*wallet_, coin, merchant, 2000).accepted);
  auto& witness = *dep_.node(coin.coin.witnesses[0].merchant).witness;
  Timestamp later = 2000 + witness.commitment_ttl() + 100;
  auto outcome = dep_.exchange(*wallet_, coin, {50, 50}, later);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.refusal().reason, RefusalReason::kDoubleSpent);
}

TEST_F(ExchangeTest, ExchangedCoinCannotBeSpent) {
  auto coin = withdraw(100);
  auto change = dep_.exchange(*wallet_, coin, {100}, 2000);
  ASSERT_TRUE(change.ok());
  auto& witness = *dep_.node(coin.coin.witnesses[0].merchant).witness;
  Timestamp later = 2000 + witness.commitment_ttl() + 100;
  auto merchant = non_witness_merchant(coin);
  auto result = dep_.pay(*wallet_, coin, merchant, later);
  EXPECT_FALSE(result.accepted);
  EXPECT_TRUE(result.double_spend_proof.has_value());  // witness extracts
}

TEST_F(ExchangeTest, ExchangedCoinCannotBeExchangedAgain) {
  auto coin = withdraw(100);
  ASSERT_TRUE(dep_.exchange(*wallet_, coin, {50, 50}, 2000).ok());
  auto& witness = *dep_.node(coin.coin.witnesses[0].merchant).witness;
  Timestamp later = 2000 + witness.commitment_ttl() + 100;
  auto again = dep_.exchange(*wallet_, coin, {50, 50}, later);
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.refusal().reason, RefusalReason::kDoubleSpent);
}

TEST_F(ExchangeTest, FaultyWitnessDoubleUseCaughtAtDeposit) {
  // Exchange the coin, then (with a faulty witness) also spend it at a
  // merchant.  The merchant's deposit collides with the exchange record;
  // the merchant is paid from the witness's security deposit.
  auto coin = withdraw(100);
  auto witness_id = coin.coin.witnesses[0].merchant;
  ASSERT_TRUE(dep_.exchange(*wallet_, coin, {100}, 2000).ok());
  dep_.node(witness_id).witness->set_faulty(true);
  Timestamp later =
      2000 + dep_.node(witness_id).witness->commitment_ttl() + 100;
  MerchantId victim;
  for (const auto& id : dep_.merchant_ids())
    if (id != witness_id) {
      victim = id;
      break;
    }
  ASSERT_TRUE(dep_.pay(*wallet_, coin, victim, later).accepted);
  auto summary = dep_.deposit_all(victim, later + 1000);
  EXPECT_EQ(summary.credited, 100u);  // merchant made whole
  EXPECT_TRUE(dep_.broker().account(witness_id)->flagged);
  ASSERT_EQ(dep_.broker().witness_faults().size(), 1u);
}

TEST_F(ExchangeTest, TranscriptMustNameTheBroker) {
  // A merchant-bound transcript cannot be replayed into an exchange.
  auto coin = withdraw(100);
  auto merchant = non_witness_merchant(coin);
  ASSERT_TRUE(dep_.pay(*wallet_, coin, merchant, 2000).accepted);
  auto queue = dep_.node(merchant).merchant->drain_deposit_queue();
  ASSERT_EQ(queue.size(), 1u);
  auto outcome = dep_.broker().exchange(queue[0], {50, 50}, 3000);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.refusal().reason, RefusalReason::kBadProof);
}

TEST_F(ExchangeTest, ValueIsConservedAcrossExchanges) {
  auto coin = withdraw(100);
  auto fiat_before = dep_.broker().fiat_collected();
  auto change = dep_.exchange(*wallet_, coin, {40, 30, 30}, 2000);
  ASSERT_TRUE(change.ok());
  // No new fiat entered the system.
  EXPECT_EQ(dep_.broker().fiat_collected(), fiat_before);
  // Spending + depositing all change pays out exactly the original value.
  Cents credited = 0;
  for (const auto& c : change.value()) {
    auto merchant = non_witness_merchant(c);
    ASSERT_TRUE(dep_.pay(*wallet_, c, merchant, 3000).accepted);
    credited += dep_.deposit_all(merchant, 4000).credited;
  }
  EXPECT_EQ(credited, 100u);
}

}  // namespace
}  // namespace p2pcash::ecash
