// Modular arithmetic: mod/modexp/modinv and the Montgomery context.

#include <gtest/gtest.h>

#include "bn/bigint.h"
#include "bn/montgomery.h"
#include "bn/prime.h"
#include "crypto/chacha.h"

namespace p2pcash::bn {
namespace {

TEST(Mod, CanonicalRange) {
  BigInt m{7};
  EXPECT_EQ(mod(BigInt{10}, m).to_dec(), "3");
  EXPECT_EQ(mod(BigInt{-10}, m).to_dec(), "4");
  EXPECT_EQ(mod(BigInt{-7}, m).to_dec(), "0");
  EXPECT_EQ(mod(BigInt{0}, m).to_dec(), "0");
  EXPECT_THROW(mod(BigInt{1}, BigInt{0}), std::domain_error);
  EXPECT_THROW(mod(BigInt{1}, BigInt{-3}), std::domain_error);
}

TEST(Mod, AddSubMul) {
  BigInt m{11};
  EXPECT_EQ(mod_add(BigInt{9}, BigInt{5}, m).to_dec(), "3");
  EXPECT_EQ(mod_sub(BigInt{3}, BigInt{5}, m).to_dec(), "9");
  EXPECT_EQ(mod_mul(BigInt{7}, BigInt{8}, m).to_dec(), "1");
}

TEST(ModExp, SmallKnown) {
  EXPECT_EQ(mod_exp(BigInt{2}, BigInt{10}, BigInt{1000}).to_dec(), "24");
  EXPECT_EQ(mod_exp(BigInt{3}, BigInt{0}, BigInt{7}).to_dec(), "1");
  EXPECT_EQ(mod_exp(BigInt{0}, BigInt{5}, BigInt{7}).to_dec(), "0");
  EXPECT_EQ(mod_exp(BigInt{5}, BigInt{1}, BigInt{7}).to_dec(), "5");
  EXPECT_EQ(mod_exp(BigInt{5}, BigInt{3}, BigInt{1}).to_dec(), "0");
}

TEST(ModExp, NegativeExponentThrows) {
  EXPECT_THROW(mod_exp(BigInt{2}, BigInt{-1}, BigInt{7}), std::domain_error);
}

TEST(ModExp, EvenModulusPath) {
  // Montgomery requires odd moduli; the even path must still be correct.
  EXPECT_EQ(mod_exp(BigInt{3}, BigInt{4}, BigInt{100}).to_dec(), "81");
  EXPECT_EQ(mod_exp(BigInt{7}, BigInt{13}, BigInt{2048}).to_dec(),
            mod_exp(BigInt{7}, BigInt{13}, BigInt{2048}).to_dec());
  // Cross-check vs naive square-and-multiply on random inputs.
  crypto::ChaChaRng rng("even-mod");
  for (int i = 0; i < 10; ++i) {
    BigInt base = random_bits(rng, 64);
    BigInt m = random_bits(rng, 40) * BigInt{2} + BigInt{2};
    BigInt e = random_bits(rng, 16);
    BigInt naive{1};
    for (BigInt k{0}; k < e; k += BigInt{1}) naive = mod_mul(naive, base, m);
    EXPECT_EQ(mod_exp(base, e, m), naive);
  }
}

TEST(ModExp, FermatLittleTheorem) {
  // a^(p-1) = 1 mod p for primes p and gcd(a, p) = 1.
  const char* primes[] = {"65537", "2147483647",
                          "170141183460469231731687303715884105727"};
  crypto::ChaChaRng rng("fermat");
  for (const char* ps : primes) {
    BigInt p = BigInt::from_dec(ps);
    for (int i = 0; i < 5; ++i) {
      BigInt a = random_below(rng, p - BigInt{1}) + BigInt{1};
      EXPECT_EQ(mod_exp(a, p - BigInt{1}, p), BigInt{1}) << ps;
    }
  }
}

TEST(ModInverse, Basics) {
  BigInt m{17};
  for (int a = 1; a < 17; ++a) {
    BigInt inv = mod_inverse(BigInt{a}, m);
    EXPECT_EQ(mod_mul(BigInt{a}, inv, m), BigInt{1}) << a;
  }
  EXPECT_THROW(mod_inverse(BigInt{6}, BigInt{9}), std::domain_error);
  EXPECT_THROW(mod_inverse(BigInt{0}, BigInt{7}), std::domain_error);
}

TEST(ModInverse, NegativeInput) {
  BigInt m{17};
  BigInt inv = mod_inverse(BigInt{-3}, m);
  EXPECT_EQ(mod_mul(mod(BigInt{-3}, m), inv, m), BigInt{1});
}

TEST(ModExp, DegenerateInputs) {
  BigInt m{13};
  EXPECT_EQ(mod_exp(BigInt{5}, BigInt{0}, m).to_dec(), "1");
  EXPECT_EQ(mod_exp(BigInt{0}, BigInt{5}, m).to_dec(), "0");
  EXPECT_EQ(mod_exp(BigInt{0}, BigInt{0}, m).to_dec(), "1");
  // Modulus one: every result is the canonical zero.
  EXPECT_EQ(mod_exp(BigInt{5}, BigInt{3}, BigInt{1}).to_dec(), "0");
}

TEST(ModInverse, NonInvertibleThrows) {
  EXPECT_THROW(mod_inverse(BigInt{6}, BigInt{9}), std::domain_error);
  EXPECT_THROW(mod_inverse(BigInt{0}, BigInt{7}), std::domain_error);
}

// Moduli whose limbs saturate 32 bits stress the Montgomery reduction's
// carry chains and neg_inverse_32's wrap-around arithmetic — exactly the
// places where a missed carry or a signed overflow would hide.  UBSan's
// signed-integer-overflow/shift checks cover the arithmetic; the equality
// against plain mod_exp covers the carries.
TEST(Montgomery, SaturatedLimbModulus) {
  // 2^96 - 17 is odd and every stored limb is near-saturated.
  const BigInt m = (BigInt{1} << 96) - BigInt{17};
  crypto::ChaChaRng rng("saturated-limb");
  for (int iter = 0; iter < 10; ++iter) {
    BigInt base = mod(random_bits(rng, 200), m);
    BigInt e = random_bits(rng, 96);
    MontgomeryCtx mont(m);
    EXPECT_EQ(mont.exp(base, e), mod_exp(base, e, m));
  }
}

TEST(Montgomery, RejectsBadModulus) {
  EXPECT_THROW(MontgomeryCtx(BigInt{8}), std::domain_error);   // even
  EXPECT_THROW(MontgomeryCtx(BigInt{1}), std::domain_error);   // too small
  EXPECT_THROW(MontgomeryCtx(BigInt{-7}), std::domain_error);  // negative
}

TEST(Montgomery, MulMatchesPlain) {
  crypto::ChaChaRng rng("mont-mul");
  for (int i = 0; i < 20; ++i) {
    BigInt m = random_bits(rng, 256);
    m.set_bit(0);
    m.set_bit(255);
    MontgomeryCtx ctx(m);
    BigInt a = random_below(rng, m);
    BigInt b = random_below(rng, m);
    EXPECT_EQ(ctx.mul(a, b), mod_mul(a, b, m));
  }
}

TEST(Montgomery, ExpMatchesPlainSquareMultiply) {
  crypto::ChaChaRng rng("mont-exp");
  for (int i = 0; i < 10; ++i) {
    BigInt m = random_bits(rng, 192);
    m.set_bit(0);
    m.set_bit(191);
    MontgomeryCtx ctx(m);
    BigInt base = random_below(rng, m);
    BigInt e = random_bits(rng, 64);
    // Naive reference.
    BigInt ref{1};
    for (std::size_t bit = e.bit_length(); bit-- > 0;) {
      ref = mod_mul(ref, ref, m);
      if (e.bit(bit)) ref = mod_mul(ref, base, m);
    }
    EXPECT_EQ(ctx.exp(base, e), ref);
  }
}

TEST(Montgomery, ExpEdgeCases) {
  MontgomeryCtx ctx(BigInt{101});
  EXPECT_EQ(ctx.exp(BigInt{5}, BigInt{0}), BigInt{1});
  EXPECT_EQ(ctx.exp(BigInt{5}, BigInt{1}), BigInt{5});
  EXPECT_EQ(ctx.exp(BigInt{0}, BigInt{3}), BigInt{0});
  EXPECT_EQ(ctx.exp(BigInt{100}, BigInt{2}), BigInt{1});  // (-1)^2
  EXPECT_THROW(ctx.exp(BigInt{2}, BigInt{-3}), std::domain_error);
}

TEST(Montgomery, BaseLargerThanModulusReduced) {
  MontgomeryCtx ctx(BigInt{101});
  EXPECT_EQ(ctx.exp(BigInt{205}, BigInt{2}), BigInt{9});  // 205 = 3 mod 101
  EXPECT_EQ(ctx.mul(BigInt{102}, BigInt{102}), BigInt{1});
}

TEST(Montgomery, ExponentLaws) {
  crypto::ChaChaRng rng("exp-laws");
  BigInt m = generate_prime(rng, 128);
  MontgomeryCtx ctx(m);
  for (int i = 0; i < 10; ++i) {
    BigInt g = random_below(rng, m - BigInt{1}) + BigInt{1};
    BigInt a = random_bits(rng, 96);
    BigInt b = random_bits(rng, 96);
    // g^(a+b) = g^a * g^b  and  (g^a)^b = g^(ab)
    EXPECT_EQ(ctx.exp(g, a + b), ctx.mul(ctx.exp(g, a), ctx.exp(g, b)));
    EXPECT_EQ(ctx.exp(ctx.exp(g, a), b), ctx.exp(g, a * b));
  }
}

class ModExpWidthTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ModExpWidthTest, MontgomeryConsistentAcrossWidths) {
  const std::size_t bits = GetParam();
  crypto::ChaChaRng rng("width-" + std::to_string(bits));
  BigInt m = random_bits(rng, bits);
  m.set_bit(0);
  m.set_bit(bits - 1);
  MontgomeryCtx ctx(m);
  BigInt a = random_below(rng, m);
  BigInt x = random_bits(rng, 160);
  BigInt y = random_bits(rng, 160);
  EXPECT_EQ(ctx.mul(ctx.exp(a, x), ctx.exp(a, y)), ctx.exp(a, x + y));
}

INSTANTIATE_TEST_SUITE_P(Widths, ModExpWidthTest,
                         ::testing::Values(33, 64, 65, 96, 160, 512, 1024,
                                           2048));

}  // namespace
}  // namespace p2pcash::bn
