// Plain Schnorr signatures.

#include "sig/schnorr_sig.h"

#include <gtest/gtest.h>

#include "crypto/chacha.h"
#include "metrics/counters.h"
#include "sig/batch_verify.h"

namespace p2pcash::sig {
namespace {

using bn::BigInt;

const group::SchnorrGroup& grp() { return group::SchnorrGroup::test_256(); }

std::vector<std::uint8_t> msg(std::string_view s) { return {s.begin(), s.end()}; }

TEST(SchnorrSig, SignVerifyRoundTrip) {
  crypto::ChaChaRng rng("sig-rt");
  auto key = KeyPair::generate(grp(), rng);
  auto m = msg("pay to the bearer");
  auto signature = key.sign(m, rng);
  EXPECT_TRUE(verify(grp(), key.public_key(), m, signature));
}

TEST(SchnorrSig, WrongMessageFails) {
  crypto::ChaChaRng rng("sig-msg");
  auto key = KeyPair::generate(grp(), rng);
  auto signature = key.sign(msg("original"), rng);
  EXPECT_FALSE(verify(grp(), key.public_key(), msg("tampered"), signature));
  EXPECT_FALSE(verify(grp(), key.public_key(), msg(""), signature));
}

TEST(SchnorrSig, WrongKeyFails) {
  crypto::ChaChaRng rng("sig-key");
  auto key1 = KeyPair::generate(grp(), rng);
  auto key2 = KeyPair::generate(grp(), rng);
  auto m = msg("message");
  auto signature = key1.sign(m, rng);
  EXPECT_FALSE(verify(grp(), key2.public_key(), m, signature));
}

TEST(SchnorrSig, TamperedComponentsFail) {
  crypto::ChaChaRng rng("sig-tamper");
  auto key = KeyPair::generate(grp(), rng);
  auto m = msg("message");
  auto signature = key.sign(m, rng);
  auto bad_e = signature;
  bad_e.e = bn::mod(bad_e.e + BigInt{1}, grp().q());
  EXPECT_FALSE(verify(grp(), key.public_key(), m, bad_e));
  auto bad_s = signature;
  bad_s.s = bn::mod(bad_s.s + BigInt{1}, grp().q());
  EXPECT_FALSE(verify(grp(), key.public_key(), m, bad_s));
}

TEST(SchnorrSig, OutOfRangeScalarsRejected) {
  crypto::ChaChaRng rng("sig-range");
  auto key = KeyPair::generate(grp(), rng);
  auto m = msg("message");
  auto signature = key.sign(m, rng);
  auto oversized = signature;
  oversized.e = oversized.e + grp().q();  // same residue, non-canonical
  EXPECT_FALSE(verify(grp(), key.public_key(), m, oversized));
  auto negative = signature;
  negative.s = negative.s - grp().q();
  EXPECT_FALSE(verify(grp(), key.public_key(), m, negative));
}

TEST(SchnorrSig, BadPublicKeyRejected) {
  crypto::ChaChaRng rng("sig-pk");
  auto key = KeyPair::generate(grp(), rng);
  auto m = msg("message");
  auto signature = key.sign(m, rng);
  PublicKey outside{grp().p() - BigInt{1}};  // order-2 element, not in <g>
  EXPECT_FALSE(verify(grp(), outside, m, signature));
}

TEST(SchnorrSig, FromSecretReproducesKey) {
  crypto::ChaChaRng rng("sig-secret");
  auto key = KeyPair::generate(grp(), rng);
  auto again = KeyPair::from_secret(grp(), key.secret());
  EXPECT_EQ(key.public_key(), again.public_key());
}

TEST(SchnorrSig, SignaturesAreRandomized) {
  crypto::ChaChaRng rng("sig-rand");
  auto key = KeyPair::generate(grp(), rng);
  auto m = msg("same message");
  auto s1 = key.sign(m, rng);
  auto s2 = key.sign(m, rng);
  EXPECT_NE(s1, s2);  // fresh nonce per signature
  EXPECT_TRUE(verify(grp(), key.public_key(), m, s1));
  EXPECT_TRUE(verify(grp(), key.public_key(), m, s2));
}

TEST(SchnorrSig, Fingerprint) {
  crypto::ChaChaRng rng("sig-fp");
  auto k1 = KeyPair::generate(grp(), rng);
  auto k2 = KeyPair::generate(grp(), rng);
  EXPECT_EQ(k1.public_key().fingerprint().size(), 16u);
  EXPECT_NE(k1.public_key().fingerprint(), k2.public_key().fingerprint());
}

TEST(SchnorrSig, MetricsCountSigVerUnits) {
  crypto::ChaChaRng rng("sig-metrics");
  auto key = KeyPair::generate(grp(), rng);
  auto m = msg("count me");
  metrics::OpCounters ops;
  {
    metrics::ScopedOpCounting guard(ops);
    auto signature = key.sign(m, rng);
    (void)verify(grp(), key.public_key(), m, signature);
  }
  // One Sig + one Ver; the internal exponentiations must NOT leak into the
  // Exp column (the paper counts plain signatures as opaque units).
  EXPECT_EQ(ops.sig, 1u);
  EXPECT_EQ(ops.ver, 1u);
  EXPECT_EQ(ops.exp, 0u);
  EXPECT_EQ(ops.hash, 0u);
}

class SigGroupSizeTest : public ::testing::TestWithParam<int> {};

TEST_P(SigGroupSizeTest, WorksInAllGroups) {
  const auto& g = GetParam() == 0 ? group::SchnorrGroup::test_256()
                                  : group::SchnorrGroup::test_512();
  crypto::ChaChaRng rng("sig-size");
  auto key = KeyPair::generate(g, rng);
  auto m = msg("any group");
  auto signature = key.sign(m, rng);
  EXPECT_TRUE(verify(g, key.public_key(), m, signature));
}

INSTANTIATE_TEST_SUITE_P(Groups, SigGroupSizeTest, ::testing::Values(0, 1));

// ---------------------------------------------------------------------------
// Batch verification
// ---------------------------------------------------------------------------

TEST(SigBatch, AllValidBatchAcceptsAcrossSharedAndDistinctKeys) {
  crypto::ChaChaRng rng("sig-batch-ok");
  auto k1 = KeyPair::generate(grp(), rng);
  auto k2 = KeyPair::generate(grp(), rng);
  std::vector<BatchItem> items;
  for (int i = 0; i < 6; ++i) {
    const KeyPair& k = i % 2 ? k1 : k2;  // repeated keys dedup membership
    auto m = msg("payment " + std::to_string(i));
    items.push_back(BatchItem{k.public_key(), m, k.sign(m, rng)});
  }
  auto result = batch_verify(grp(), items);
  EXPECT_TRUE(result.ok);
  EXPECT_TRUE(result.bad_indices.empty());
}

TEST(SigBatch, ForgedSignatureInBatchIsNamed) {
  crypto::ChaChaRng rng("sig-batch-forged");
  auto key = KeyPair::generate(grp(), rng);
  std::vector<BatchItem> items;
  for (int i = 0; i < 8; ++i) {
    auto m = msg("endorsement " + std::to_string(i));
    items.push_back(BatchItem{key.public_key(), m, key.sign(m, rng)});
  }
  items[5].sig.s = bn::mod(items[5].sig.s + BigInt{1}, grp().q());
  items[2].message = msg("substituted transcript");
  auto result = batch_verify(grp(), items);
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.bad_indices, (std::vector<std::size_t>{2, 5}));
}

TEST(SigBatch, DecisionsMatchIndividualVerifier) {
  // Bit-compatibility: per-index accept/reject must equal n independent
  // verify() calls, including range rejects and a non-subgroup key.
  crypto::ChaChaRng rng("sig-batch-compat");
  auto key = KeyPair::generate(grp(), rng);
  std::vector<BatchItem> items;
  for (int i = 0; i < 10; ++i) {
    auto m = msg("item " + std::to_string(i));
    items.push_back(BatchItem{key.public_key(), m, key.sign(m, rng)});
  }
  items[0].sig.e = items[0].sig.e + grp().q();  // non-canonical residue
  items[4].sig.s = items[4].sig.s - grp().q();  // negative scalar
  items[7].pk = PublicKey{grp().p() - BigInt{1}};  // not in <g>
  std::vector<std::size_t> expected_bad;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (!verify(grp(), items[i].pk, items[i].message, items[i].sig))
      expected_bad.push_back(i);
  }
  auto result = batch_verify(grp(), items);
  EXPECT_EQ(result.bad_indices, expected_bad);
  EXPECT_FALSE(result.ok);
}

TEST(SigBatch, CountsOneVerPerItemAndNoLeakedExp) {
  crypto::ChaChaRng rng("sig-batch-metrics");
  auto key = KeyPair::generate(grp(), rng);
  std::vector<BatchItem> items;
  for (int i = 0; i < 4; ++i) {
    auto m = msg("count " + std::to_string(i));
    items.push_back(BatchItem{key.public_key(), m, key.sign(m, rng)});
  }
  metrics::OpCounters ops;
  {
    metrics::ScopedOpCounting guard(ops);
    EXPECT_TRUE(batch_verify(grp(), items).ok);
  }
  EXPECT_EQ(ops.ver, 4u);
  EXPECT_EQ(ops.exp, 0u);
  EXPECT_EQ(ops.hash, 0u);
}

}  // namespace
}  // namespace p2pcash::sig
