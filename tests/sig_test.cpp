// Plain Schnorr signatures.

#include "sig/schnorr_sig.h"

#include <gtest/gtest.h>

#include "crypto/chacha.h"
#include "metrics/counters.h"

namespace p2pcash::sig {
namespace {

using bn::BigInt;

const group::SchnorrGroup& grp() { return group::SchnorrGroup::test_256(); }

std::vector<std::uint8_t> msg(std::string_view s) { return {s.begin(), s.end()}; }

TEST(SchnorrSig, SignVerifyRoundTrip) {
  crypto::ChaChaRng rng("sig-rt");
  auto key = KeyPair::generate(grp(), rng);
  auto m = msg("pay to the bearer");
  auto signature = key.sign(m, rng);
  EXPECT_TRUE(verify(grp(), key.public_key(), m, signature));
}

TEST(SchnorrSig, WrongMessageFails) {
  crypto::ChaChaRng rng("sig-msg");
  auto key = KeyPair::generate(grp(), rng);
  auto signature = key.sign(msg("original"), rng);
  EXPECT_FALSE(verify(grp(), key.public_key(), msg("tampered"), signature));
  EXPECT_FALSE(verify(grp(), key.public_key(), msg(""), signature));
}

TEST(SchnorrSig, WrongKeyFails) {
  crypto::ChaChaRng rng("sig-key");
  auto key1 = KeyPair::generate(grp(), rng);
  auto key2 = KeyPair::generate(grp(), rng);
  auto m = msg("message");
  auto signature = key1.sign(m, rng);
  EXPECT_FALSE(verify(grp(), key2.public_key(), m, signature));
}

TEST(SchnorrSig, TamperedComponentsFail) {
  crypto::ChaChaRng rng("sig-tamper");
  auto key = KeyPair::generate(grp(), rng);
  auto m = msg("message");
  auto signature = key.sign(m, rng);
  auto bad_e = signature;
  bad_e.e = bn::mod(bad_e.e + BigInt{1}, grp().q());
  EXPECT_FALSE(verify(grp(), key.public_key(), m, bad_e));
  auto bad_s = signature;
  bad_s.s = bn::mod(bad_s.s + BigInt{1}, grp().q());
  EXPECT_FALSE(verify(grp(), key.public_key(), m, bad_s));
}

TEST(SchnorrSig, OutOfRangeScalarsRejected) {
  crypto::ChaChaRng rng("sig-range");
  auto key = KeyPair::generate(grp(), rng);
  auto m = msg("message");
  auto signature = key.sign(m, rng);
  auto oversized = signature;
  oversized.e = oversized.e + grp().q();  // same residue, non-canonical
  EXPECT_FALSE(verify(grp(), key.public_key(), m, oversized));
  auto negative = signature;
  negative.s = negative.s - grp().q();
  EXPECT_FALSE(verify(grp(), key.public_key(), m, negative));
}

TEST(SchnorrSig, BadPublicKeyRejected) {
  crypto::ChaChaRng rng("sig-pk");
  auto key = KeyPair::generate(grp(), rng);
  auto m = msg("message");
  auto signature = key.sign(m, rng);
  PublicKey outside{grp().p() - BigInt{1}};  // order-2 element, not in <g>
  EXPECT_FALSE(verify(grp(), outside, m, signature));
}

TEST(SchnorrSig, FromSecretReproducesKey) {
  crypto::ChaChaRng rng("sig-secret");
  auto key = KeyPair::generate(grp(), rng);
  auto again = KeyPair::from_secret(grp(), key.secret());
  EXPECT_EQ(key.public_key(), again.public_key());
}

TEST(SchnorrSig, SignaturesAreRandomized) {
  crypto::ChaChaRng rng("sig-rand");
  auto key = KeyPair::generate(grp(), rng);
  auto m = msg("same message");
  auto s1 = key.sign(m, rng);
  auto s2 = key.sign(m, rng);
  EXPECT_NE(s1, s2);  // fresh nonce per signature
  EXPECT_TRUE(verify(grp(), key.public_key(), m, s1));
  EXPECT_TRUE(verify(grp(), key.public_key(), m, s2));
}

TEST(SchnorrSig, Fingerprint) {
  crypto::ChaChaRng rng("sig-fp");
  auto k1 = KeyPair::generate(grp(), rng);
  auto k2 = KeyPair::generate(grp(), rng);
  EXPECT_EQ(k1.public_key().fingerprint().size(), 16u);
  EXPECT_NE(k1.public_key().fingerprint(), k2.public_key().fingerprint());
}

TEST(SchnorrSig, MetricsCountSigVerUnits) {
  crypto::ChaChaRng rng("sig-metrics");
  auto key = KeyPair::generate(grp(), rng);
  auto m = msg("count me");
  metrics::OpCounters ops;
  {
    metrics::ScopedOpCounting guard(ops);
    auto signature = key.sign(m, rng);
    (void)verify(grp(), key.public_key(), m, signature);
  }
  // One Sig + one Ver; the internal exponentiations must NOT leak into the
  // Exp column (the paper counts plain signatures as opaque units).
  EXPECT_EQ(ops.sig, 1u);
  EXPECT_EQ(ops.ver, 1u);
  EXPECT_EQ(ops.exp, 0u);
  EXPECT_EQ(ops.hash, 0u);
}

class SigGroupSizeTest : public ::testing::TestWithParam<int> {};

TEST_P(SigGroupSizeTest, WorksInAllGroups) {
  const auto& g = GetParam() == 0 ? group::SchnorrGroup::test_256()
                                  : group::SchnorrGroup::test_512();
  crypto::ChaChaRng rng("sig-size");
  auto key = KeyPair::generate(g, rng);
  auto m = msg("any group");
  auto signature = key.sign(m, rng);
  EXPECT_TRUE(verify(g, key.public_key(), m, signature));
}

INSTANTIATE_TEST_SUITE_P(Groups, SigGroupSizeTest, ::testing::Values(0, 1));

}  // namespace
}  // namespace p2pcash::sig
