// Primality testing and DSA-style (p, q) parameter generation.

#include "bn/prime.h"

#include <gtest/gtest.h>

#include "crypto/chacha.h"

namespace p2pcash::bn {
namespace {

TEST(MillerRabin, SmallPrimes) {
  crypto::ChaChaRng rng("mr-small");
  for (std::uint32_t p : {2u, 3u, 5u, 7u, 11u, 97u, 541u, 7919u}) {
    EXPECT_TRUE(is_probable_prime(BigInt{p}, rng)) << p;
  }
}

TEST(MillerRabin, SmallComposites) {
  crypto::ChaChaRng rng("mr-comp");
  for (std::uint32_t c : {0u, 1u, 4u, 6u, 9u, 100u, 561u, 7917u, 1000001u}) {
    EXPECT_FALSE(is_probable_prime(BigInt{c}, rng)) << c;
  }
}

TEST(MillerRabin, CarmichaelNumbers) {
  // Fermat pseudoprimes to every base — Miller–Rabin must reject them.
  crypto::ChaChaRng rng("carmichael");
  for (const char* c : {"561", "1105", "1729", "2465", "2821", "6601",
                        "8911", "41041", "825265", "321197185"}) {
    EXPECT_FALSE(is_probable_prime(BigInt::from_dec(c), rng)) << c;
  }
}

TEST(MillerRabin, KnownLargePrimes) {
  crypto::ChaChaRng rng("mr-large");
  // 2^127 - 1 (Mersenne), 2^255 - 19.
  BigInt m127 = (BigInt{1} << 127) - BigInt{1};
  EXPECT_TRUE(is_probable_prime(m127, rng));
  BigInt ed = (BigInt{1} << 255) - BigInt{19};
  EXPECT_TRUE(is_probable_prime(ed, rng));
  // 2^128 - 1 factors (it is 3 * 5 * 17 * ...).
  EXPECT_FALSE(is_probable_prime((BigInt{1} << 128) - BigInt{1}, rng));
}

TEST(MillerRabin, NegativeNeverPrime) {
  crypto::ChaChaRng rng("mr-neg");
  EXPECT_FALSE(is_probable_prime(BigInt{-7}, rng));
}

TEST(GeneratePrime, ExactBitLength) {
  crypto::ChaChaRng rng("genprime");
  for (std::size_t bits : {16u, 64u, 128u, 256u}) {
    BigInt p = generate_prime(rng, bits, 20);
    EXPECT_EQ(p.bit_length(), bits);
    EXPECT_TRUE(p.is_odd());
    EXPECT_TRUE(is_probable_prime(p, rng, 20));
  }
  EXPECT_THROW(generate_prime(rng, 1), std::domain_error);
}

TEST(GeneratePrime, Deterministic) {
  crypto::ChaChaRng rng1("same-seed");
  crypto::ChaChaRng rng2("same-seed");
  EXPECT_EQ(generate_prime(rng1, 96), generate_prime(rng2, 96));
}

TEST(GeneratePq, StructuralProperties) {
  crypto::ChaChaRng rng("genpq");
  auto [p, q] = generate_pq(rng, 512, 160, 20);
  EXPECT_EQ(p.bit_length(), 512u);
  EXPECT_EQ(q.bit_length(), 160u);
  EXPECT_TRUE(is_probable_prime(p, rng, 20));
  EXPECT_TRUE(is_probable_prime(q, rng, 20));
  EXPECT_EQ(mod(p - BigInt{1}, q), BigInt{0}) << "q must divide p-1";
}

TEST(GeneratePq, RejectsDegenerateSizes) {
  crypto::ChaChaRng rng("genpq-bad");
  EXPECT_THROW(generate_pq(rng, 160, 160), std::domain_error);
  EXPECT_THROW(generate_pq(rng, 100, 160), std::domain_error);
}

class PqSizeTest
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(PqSizeTest, GeneratesValidParameters) {
  auto [p_bits, q_bits] = GetParam();
  crypto::ChaChaRng rng("pq-" + std::to_string(p_bits));
  auto [p, q] = generate_pq(rng, p_bits, q_bits, 12);
  EXPECT_EQ(p.bit_length(), p_bits);
  EXPECT_EQ(q.bit_length(), q_bits);
  EXPECT_EQ(mod(p - BigInt{1}, q), BigInt{0});
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, PqSizeTest,
    ::testing::Values(std::pair<std::size_t, std::size_t>{256, 160},
                      std::pair<std::size_t, std::size_t>{384, 160},
                      std::pair<std::size_t, std::size_t>{512, 160},
                      std::pair<std::size_t, std::size_t>{512, 256}));

}  // namespace
}  // namespace p2pcash::bn
