// Conflict resolution: the arbiter's verdicts (paper §5/§6).

#include "ecash/arbiter.h"

#include <gtest/gtest.h>

#include "ecash_fixture.h"

namespace p2pcash::ecash {
namespace {

using testing::EcashTest;

class ArbiterTest : public EcashTest {
 protected:
  /// Produces a genuine double-spend situation and returns the pieces the
  /// dispute involves: the second transcript, the commitment the witness
  /// issued for it, the proof the witness answered with, and the revealed
  /// committed value.
  struct Dispute {
    PaymentTranscript transcript;
    WitnessCommitment commitment;
    DoubleSpendProof proof;
    CommittedValue revealed;
  };
  Dispute make_double_spend_dispute() {
    Dispute d;
    auto coin = withdraw();
    auto ids = dep_.merchant_ids();
    auto& witness = *dep_.node(coin.coin.witnesses[0].merchant).witness;
    // First spend at ids[0].
    EXPECT_TRUE(dep_.pay(*wallet_, coin, ids[0], 2000).accepted);
    // Second spend attempt at ids[1], driven manually so we keep all the
    // intermediate artifacts.
    Timestamp later = 2000 + witness.commitment_ttl() + 100;
    auto intent = wallet_->prepare_payment(coin, ids[1]);
    auto commitment =
        witness.request_commitment(intent.coin_hash, intent.nonce, later);
    EXPECT_TRUE(commitment.ok());
    d.commitment = commitment.value();
    auto transcript = wallet_->build_transcript(coin, intent, {d.commitment},
                                                later + 50);
    EXPECT_TRUE(transcript.ok());
    d.transcript = transcript.value();
    auto sign = witness.sign_transcript(d.transcript, later + 100);
    EXPECT_TRUE(sign.ok());
    d.proof = std::get<DoubleSpendProof>(sign.value());
    auto revealed = witness.reveal_committed_value(intent.coin_hash);
    EXPECT_TRUE(revealed.ok());
    d.revealed = revealed.value();
    return d;
  }
};

TEST_F(ArbiterTest, JustifiedRefusalBlamesClient) {
  auto d = make_double_spend_dispute();
  auto verdict = dep_.arbiter().judge_refusal(d.transcript, d.commitment,
                                              d.revealed, d.proof);
  EXPECT_EQ(verdict, Verdict::kClientDoubleSpent);
}

TEST_F(ArbiterTest, WitnessSilenceIsViolation) {
  auto d = make_double_spend_dispute();
  auto verdict = dep_.arbiter().judge_refusal(d.transcript, d.commitment,
                                              std::nullopt, d.proof);
  EXPECT_EQ(verdict, Verdict::kWitnessViolated);
}

TEST_F(ArbiterTest, FreshCommitmentPlusRefusalIsViolation) {
  // The §5 race audit: if the revealed v is fresh randomness, the witness
  // knew of no prior spend when it committed, so refusing was cheating.
  // A witness whose revealed v does not hash to the committed value_hash
  // (here: it claims fresh randomness unrelated to its commitment) is
  // hiding something — violation.  The true kFresh-under-matching-hash
  // case can only be produced by a cheating witness implementation; the
  // hash-mismatch path covers the same audit rule.
  auto d = make_double_spend_dispute();
  crypto::ChaChaRng rng("fresh-v");
  auto fresh = CommittedValue::fresh(rng);
  auto verdict = dep_.arbiter().judge_refusal(d.transcript, d.commitment,
                                              fresh, d.proof);
  EXPECT_EQ(verdict, Verdict::kWitnessViolated);
}

TEST_F(ArbiterTest, BogusProofIsWitnessViolation) {
  auto d = make_double_spend_dispute();
  crypto::ChaChaRng rng("bogus");
  auto bogus = d.proof;
  bogus.secrets.of_a.e1 = dep_.grp().random_scalar(rng);
  auto verdict = dep_.arbiter().judge_refusal(d.transcript, d.commitment,
                                              d.revealed, bogus);
  EXPECT_EQ(verdict, Verdict::kWitnessViolated);
}

TEST_F(ArbiterTest, MerchantNonceMismatchBlamesMerchant) {
  auto d = make_double_spend_dispute();
  auto tampered = d.transcript;
  tampered.merchant = "m007";  // claims a different victim
  auto verdict = dep_.arbiter().judge_refusal(tampered, d.commitment,
                                              d.revealed, d.proof);
  EXPECT_EQ(verdict, Verdict::kMerchantViolated);
}

TEST_F(ArbiterTest, CommitmentForDifferentCoinIsInvalidEvidence) {
  auto d = make_double_spend_dispute();
  auto other_coin = withdraw();
  auto intent = wallet_->prepare_payment(other_coin, "m002");
  auto& witness = *dep_.node(other_coin.coin.witnesses[0].merchant).witness;
  auto unrelated =
      witness.request_commitment(intent.coin_hash, intent.nonce, 9000);
  ASSERT_TRUE(unrelated.ok());
  auto verdict = dep_.arbiter().judge_refusal(d.transcript, unrelated.value(),
                                              d.revealed, d.proof);
  EXPECT_EQ(verdict, Verdict::kInvalidEvidence);
}

TEST_F(ArbiterTest, DoubleSigningJudged) {
  // Reuse the faulty-witness flow to obtain two signed transcripts.
  auto coin = withdraw();
  auto witness_id = coin.coin.witnesses[0].merchant;
  dep_.node(witness_id).witness->set_faulty(true);
  std::vector<MerchantId> victims;
  for (const auto& id : dep_.merchant_ids()) {
    if (id != witness_id && victims.size() < 2) victims.push_back(id);
  }
  ASSERT_TRUE(dep_.pay(*wallet_, coin, victims[0], 2000).accepted);
  ASSERT_TRUE(dep_.pay(*wallet_, coin, victims[1], 3000).accepted);
  auto q1 = dep_.node(victims[0]).merchant->drain_deposit_queue();
  auto q2 = dep_.node(victims[1]).merchant->drain_deposit_queue();
  ASSERT_EQ(q1.size(), 1u);
  ASSERT_EQ(q2.size(), 1u);
  EXPECT_EQ(dep_.arbiter().judge_double_signing(q1[0], q2[0], witness_id),
            Verdict::kWitnessViolated);
  // Same transcript twice proves nothing.
  EXPECT_EQ(dep_.arbiter().judge_double_signing(q1[0], q1[0], witness_id),
            Verdict::kNoFault);
  // A witness that signed neither cannot be blamed.
  EXPECT_EQ(dep_.arbiter().judge_double_signing(q1[0], q2[0], victims[0]),
            Verdict::kInvalidEvidence);
}

TEST_F(ArbiterTest, ProofValidation) {
  auto d = make_double_spend_dispute();
  EXPECT_TRUE(
      dep_.arbiter().verify_double_spend_proof(d.transcript.coin, d.proof));
  auto other = withdraw();
  EXPECT_FALSE(
      dep_.arbiter().verify_double_spend_proof(other.coin, d.proof));
}

TEST_F(ArbiterTest, VerdictNames) {
  EXPECT_STREQ(to_string(Verdict::kWitnessViolated), "witness-violated");
  EXPECT_STREQ(to_string(Verdict::kClientDoubleSpent), "client-double-spent");
  EXPECT_STREQ(to_string(Verdict::kNoFault), "no-fault");
}

}  // namespace
}  // namespace p2pcash::ecash
