// Golden vectors: the whole deterministic pipeline pinned end-to-end.
//
// Everything in this library is derandomized behind seeded ChaCha20
// streams, so a fixed seed produces bit-identical artifacts.  These tests
// pin SHA-256 digests of canonical encodings: any unintentional change to
// the wire format, the group generation, the hash domains, the blinding
// arithmetic, or the RNG consumption order shows up here first —
// protecting interoperability between independently built nodes.

#include <gtest/gtest.h>

#include "crypto/sha256.h"
#include "ecash/deployment.h"

namespace p2pcash::ecash {
namespace {

std::string digest_of(const std::vector<std::uint8_t>& bytes) {
  return crypto::digest_to_hex(crypto::Sha256::hash(bytes));
}

TEST(GoldenVectors, TestGroupParametersArePinned) {
  // The 256-bit test group is generated deterministically from a public
  // seed; its prime is a cross-version constant.
  EXPECT_EQ(group::SchnorrGroup::test_256().p().to_hex(),
            "aaa21aa1861f0d6ef402b3282186ab50b2b061b53d6871fdb086ed38ebd0970b");
  EXPECT_EQ(group::SchnorrGroup::test_256().q().bit_length(), 160u);
}

TEST(GoldenVectors, EndToEndArtifactsArePinned) {
  Deployment dep(group::SchnorrGroup::test_256(), 4, /*seed=*/424242);
  auto wallet = dep.make_wallet();
  auto coin = dep.withdraw(*wallet, 100, 1000);
  ASSERT_TRUE(coin.ok());
  EXPECT_EQ(
      digest_of(wire::encode(coin.value().coin)),
      "85e92fab283ba04870f20983c6fe7199a4e00dd1e53049ebd03d67abcc0a8f9b");

  MerchantId target = dep.merchant_ids()[0] ==
                              coin.value().coin.witnesses[0].merchant
                          ? dep.merchant_ids()[1]
                          : dep.merchant_ids()[0];
  ASSERT_TRUE(dep.pay(*wallet, coin.value(), target, 2000).accepted);
  auto queue = dep.node(target).merchant->drain_deposit_queue();
  ASSERT_EQ(queue.size(), 1u);
  EXPECT_EQ(
      digest_of(wire::encode(queue[0])),
      "7415ba802d8be7a0dcc1a22ff1a2419a10326a05570869cfd00852aab8ccd2f9");

  EXPECT_EQ(
      digest_of(wire::encode(dep.broker().current_table())),
      "7ed32c1e2635371fd053732db8677b53172c1d01a38df6c1ef5bbe7931a06ef7");
}

TEST(GoldenVectors, RerunsAreBitIdentical) {
  auto run = [] {
    Deployment dep(group::SchnorrGroup::test_256(), 4, /*seed=*/7);
    auto wallet = dep.make_wallet();
    auto coin = dep.withdraw(*wallet, 50, 1000);
    return wire::encode(coin.value().coin);
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace p2pcash::ecash
