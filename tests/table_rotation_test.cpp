// Witness-table rotation: "assigned witness ranges may change over time,
// since merchants may join or leave the network ... from time to time, B
// may publish a new version of the witness range assignments" (§4).
// Coins are pinned to the version in their info, so in-flight coins must
// keep working across publications.

#include <gtest/gtest.h>

#include "ecash_fixture.h"

namespace p2pcash::ecash {
namespace {

using testing::EcashTest;

class TableRotationTest : public EcashTest {};

TEST_F(TableRotationTest, OldCoinsSpendAfterNewPublication) {
  auto old_coin = withdraw(100, 1000);
  EXPECT_EQ(old_coin.coin.bare.info.list_version, 1u);

  // Rebalance and publish v2 (and v3, for good measure).
  dep_.broker().set_weight("m000", 5);
  dep_.broker().publish_witness_table(2000);
  dep_.broker().publish_witness_table(3000);
  EXPECT_EQ(dep_.broker().current_table().version(), 3u);

  // The v1 coin still spends: its carried entries verify against the
  // broker key; the witness recognizes its own (v1) range.
  auto merchant = non_witness_merchant(old_coin);
  EXPECT_TRUE(dep_.pay(*wallet_, old_coin, merchant, 4000).accepted);
  // And deposits: the broker checks against its *stored* v1 table.
  EXPECT_EQ(dep_.deposit_all(merchant, 5000).credited, 100u);
}

TEST_F(TableRotationTest, NewCoinsUseTheNewVersion) {
  dep_.broker().publish_witness_table(2000);
  auto coin = withdraw(100, 3000);
  EXPECT_EQ(coin.coin.bare.info.list_version, 2u);
  for (const auto& entry : coin.coin.witnesses)
    EXPECT_EQ(entry.version, 2u);
  auto merchant = non_witness_merchant(coin);
  EXPECT_TRUE(dep_.pay(*wallet_, coin, merchant, 4000).accepted);
}

TEST_F(TableRotationTest, VersionsCannotBeMixed) {
  // A coin claiming v1 info but carrying v2 entries must be rejected —
  // version pinning is what makes the static assignment non-malleable.
  auto coin = withdraw(100, 1000);
  dep_.broker().publish_witness_table(2000);
  const auto& v2 = dep_.broker().current_table();
  auto tampered = coin.coin;
  auto v2_entry = v2.lookup(witness_point(tampered.bare.coin_hash(), 0));
  ASSERT_TRUE(v2_entry.has_value());
  tampered.witnesses[0] = *v2_entry;
  auto verdict =
      verify_coin(dep_.grp(), dep_.broker().coin_key(), tampered, 3000);
  ASSERT_FALSE(verdict.ok());
  EXPECT_EQ(verdict.refusal().reason, RefusalReason::kInvalidCoin);
}

TEST_F(TableRotationTest, RenewalMigratesToTheCurrentVersion) {
  auto coin = withdraw(100, 1000);
  dep_.broker().set_weight("m001", 7);
  dep_.broker().publish_witness_table(2000);
  Timestamp when = coin.coin.bare.info.soft_expiry +
                   dep_.broker().config().deposit_grace_ms + 1000;
  auto renewed = dep_.renew(*wallet_, coin, when);
  ASSERT_TRUE(renewed.ok()) << renewed.refusal().detail;
  EXPECT_EQ(renewed.value().coin.bare.info.list_version, 2u);
}

TEST_F(TableRotationTest, DepositOfUnknownVersionRefused) {
  // A forged coin claiming a future table version dies at the merchant
  // (no valid entries can exist) and at the broker (unknown version).
  auto coin = withdraw(100, 1000);
  auto merchant = non_witness_merchant(coin);
  ASSERT_TRUE(dep_.pay(*wallet_, coin, merchant, 2000).accepted);
  auto queue = dep_.node(merchant).merchant->drain_deposit_queue();
  ASSERT_EQ(queue.size(), 1u);
  auto tampered = queue[0];
  tampered.transcript.coin.bare.info.list_version = 42;
  auto outcome = dep_.broker().deposit(merchant, tampered, 3000);
  EXPECT_FALSE(outcome.ok());
}

TEST_F(TableRotationTest, WeightsChangeNewAssignmentsOnly) {
  // Publish a heavily skewed v2; verify new coins track it while the old
  // coin's witness stays fixed ("static witness assignment", §4).
  auto old_coin = withdraw(100, 1000);
  auto old_witness = old_coin.coin.witnesses[0].merchant;
  dep_.broker().set_weight("m002", 1000);  // m002 takes ~99% of v2 space
  dep_.broker().publish_witness_table(2000);
  int m002_hits = 0;
  for (int i = 0; i < 12; ++i) {
    auto coin = withdraw(100, 3000 + i);
    if (coin.coin.witnesses[0].merchant == "m002") ++m002_hits;
  }
  EXPECT_GE(m002_hits, 10);  // overwhelmingly m002 under the new weights
  EXPECT_EQ(old_coin.coin.witnesses[0].merchant, old_witness);
}

TEST_F(TableRotationTest, HistoricalTablesRemainQueryable) {
  dep_.broker().publish_witness_table(2000);
  dep_.broker().publish_witness_table(3000);
  ASSERT_NE(dep_.broker().table(1), nullptr);
  ASSERT_NE(dep_.broker().table(2), nullptr);
  ASSERT_NE(dep_.broker().table(3), nullptr);
  EXPECT_EQ(dep_.broker().table(4), nullptr);
  EXPECT_EQ(dep_.broker().table(0), nullptr);
  EXPECT_EQ(dep_.broker().table(1)->version(), 1u);
}

}  // namespace
}  // namespace p2pcash::ecash
