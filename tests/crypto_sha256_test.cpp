// SHA-256 against FIPS 180-4 / NIST CAVP vectors, plus streaming behaviour.

#include "crypto/sha256.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace p2pcash::crypto {
namespace {

std::string hex_of(std::string_view s) {
  return digest_to_hex(Sha256::hash(s));
}

TEST(Sha256, FipsVectors) {
  EXPECT_EQ(hex_of(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(hex_of("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(hex_of("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
  EXPECT_EQ(hex_of("The quick brown fox jumps over the lazy dog"),
            "d7a8fbb307d7809469ca9abcb0082e4f8d5651e46d3cdb762d02d0bf37c9e592");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(digest_to_hex(h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, StreamingMatchesOneShot) {
  std::string data = "the witness approach provides hard guarantees";
  for (std::size_t split = 0; split <= data.size(); ++split) {
    Sha256 h;
    h.update(std::string_view(data).substr(0, split));
    h.update(std::string_view(data).substr(split));
    EXPECT_EQ(h.finalize(), Sha256::hash(data)) << "split=" << split;
  }
}

TEST(Sha256, EmptyUpdatesAreNoOps) {
  // Regression: an empty span may carry a null data() pointer, and
  // memcpy(dst, nullptr, 0) is undefined behaviour (caught by UBSan).
  // Interleaved empty updates must not disturb the stream.
  std::string data = "abc";
  Sha256 h;
  h.update(std::span<const std::uint8_t>{});
  h.update(std::string_view(data).substr(0, 1));
  h.update(std::span<const std::uint8_t>{});
  h.update(std::string_view(data).substr(1));
  h.update(std::span<const std::uint8_t>{});
  EXPECT_EQ(digest_to_hex(h.finalize()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");

  Sha256 only_empty;
  only_empty.update(std::span<const std::uint8_t>{});
  EXPECT_EQ(digest_to_hex(only_empty.finalize()),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, BlockBoundaryLengths) {
  // Lengths around the 64-byte block and 56-byte padding boundary.
  for (std::size_t len : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u, 127u,
                          128u, 129u}) {
    std::string a(len, 'x');
    Sha256 h;
    for (char c : a) h.update(std::string_view(&c, 1));
    EXPECT_EQ(h.finalize(), Sha256::hash(a)) << "len=" << len;
  }
}

TEST(Sha256, ResetReuses) {
  Sha256 h;
  h.update(std::string_view("garbage"));
  (void)h.finalize();
  h.reset();
  h.update(std::string_view("abc"));
  EXPECT_EQ(digest_to_hex(h.finalize()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(HashFields, OrderAndBoundariesMatter) {
  std::vector<std::vector<std::uint8_t>> ab = {{0x61}, {0x62}};  // "a","b"
  std::vector<std::vector<std::uint8_t>> ba = {{0x62}, {0x61}};
  std::vector<std::vector<std::uint8_t>> joined = {{0x61, 0x62}};  // "ab"
  std::vector<std::vector<std::uint8_t>> padded = {{0x61}, {}, {0x62}};
  auto h1 = hash_fields(ab);
  EXPECT_NE(h1, hash_fields(ba));
  EXPECT_NE(h1, hash_fields(joined));
  EXPECT_NE(h1, hash_fields(padded));
  EXPECT_EQ(h1, hash_fields(ab));  // deterministic
}

TEST(DigestToHex, Format) {
  auto d = Sha256::hash(std::string_view("abc"));
  auto hex = digest_to_hex(d);
  EXPECT_EQ(hex.size(), 64u);
  for (char c : hex) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'));
  }
}

}  // namespace
}  // namespace p2pcash::crypto
