// Abe–Okamoto partially blind signatures: correctness, tampering,
// info binding, and the blindness game of paper §6.

#include "blindsig/abe_okamoto.h"

#include <gtest/gtest.h>

#include "crypto/chacha.h"
#include "metrics/counters.h"

namespace p2pcash::blindsig {
namespace {

using bn::BigInt;

const group::SchnorrGroup& grp() { return group::SchnorrGroup::test_256(); }

std::vector<std::uint8_t> bytes(std::string_view s) {
  return {s.begin(), s.end()};
}

struct Issued {
  PartialBlindSignature sig;
  std::vector<std::uint8_t> info;
  std::vector<std::uint8_t> msg;
};

Issued issue(const BlindSigner& signer, std::string_view info,
             std::string_view msg, bn::Rng& rng) {
  BlindRequester requester(grp(), signer.public_y(), bytes(info), bytes(msg));
  auto session = signer.start(bytes(info), rng);
  BigInt e = requester.challenge(session.first, rng);
  auto response = signer.respond(session, e);
  return Issued{requester.unblind(response), bytes(info), bytes(msg)};
}

TEST(BlindSig, IssueAndVerify) {
  crypto::ChaChaRng rng("bs-basic");
  BlindSigner signer(grp(), grp().random_scalar(rng));
  auto issued = issue(signer, "denom=100", "commitments", rng);
  EXPECT_TRUE(
      verify(grp(), signer.public_y(), issued.info, issued.msg, issued.sig));
}

TEST(BlindSig, SecretVerifierAgreesWithPublic) {
  crypto::ChaChaRng rng("bs-secret");
  BigInt x = grp().random_scalar(rng);
  BlindSigner signer(grp(), x);
  auto issued = issue(signer, "denom=25", "msg", rng);
  EXPECT_TRUE(
      verify_with_secret(grp(), x, issued.info, issued.msg, issued.sig));
  // And rejects what the public verifier rejects.
  auto bad = issued.sig;
  bad.rho = bn::mod(bad.rho + BigInt{1}, grp().q());
  EXPECT_FALSE(verify(grp(), signer.public_y(), issued.info, issued.msg, bad));
  EXPECT_FALSE(verify_with_secret(grp(), x, issued.info, issued.msg, bad));
}

TEST(BlindSig, EveryComponentTamperDetected) {
  crypto::ChaChaRng rng("bs-tamper");
  BlindSigner signer(grp(), grp().random_scalar(rng));
  auto issued = issue(signer, "info", "msg", rng);
  for (int field = 0; field < 4; ++field) {
    auto bad = issued.sig;
    BigInt* target = field == 0   ? &bad.rho
                     : field == 1 ? &bad.omega
                     : field == 2 ? &bad.sigma
                                  : &bad.delta;
    *target = bn::mod(*target + BigInt{1}, grp().q());
    EXPECT_FALSE(
        verify(grp(), signer.public_y(), issued.info, issued.msg, bad))
        << "field " << field;
  }
}

TEST(BlindSig, InfoIsBound) {
  crypto::ChaChaRng rng("bs-info");
  BlindSigner signer(grp(), grp().random_scalar(rng));
  auto issued = issue(signer, "denom=100", "msg", rng);
  // The same signature under different info must fail: z = F(info) differs.
  EXPECT_FALSE(verify(grp(), signer.public_y(), bytes("denom=10000"),
                      issued.msg, issued.sig));
}

TEST(BlindSig, MessageIsBound) {
  crypto::ChaChaRng rng("bs-msg");
  BlindSigner signer(grp(), grp().random_scalar(rng));
  auto issued = issue(signer, "info", "commitments-A-B", rng);
  EXPECT_FALSE(verify(grp(), signer.public_y(), issued.info,
                      bytes("other-commitments"), issued.sig));
}

TEST(BlindSig, WrongSignerKeyFails) {
  crypto::ChaChaRng rng("bs-key");
  BlindSigner signer(grp(), grp().random_scalar(rng));
  BlindSigner other(grp(), grp().random_scalar(rng));
  auto issued = issue(signer, "info", "msg", rng);
  EXPECT_FALSE(
      verify(grp(), other.public_y(), issued.info, issued.msg, issued.sig));
}

TEST(BlindSig, OutOfRangeComponentsRejected) {
  crypto::ChaChaRng rng("bs-range");
  BlindSigner signer(grp(), grp().random_scalar(rng));
  auto issued = issue(signer, "info", "msg", rng);
  auto oversized = issued.sig;
  oversized.omega = oversized.omega + grp().q();
  EXPECT_FALSE(verify(grp(), signer.public_y(), issued.info, issued.msg,
                      oversized));
}

TEST(BlindSig, RequesterRejectsBadResponse) {
  crypto::ChaChaRng rng("bs-badresp");
  BlindSigner signer(grp(), grp().random_scalar(rng));
  BlindRequester requester(grp(), signer.public_y(), bytes("info"),
                           bytes("msg"));
  auto session = signer.start(bytes("info"), rng);
  BigInt e = requester.challenge(session.first, rng);
  auto response = signer.respond(session, e);
  response.r = bn::mod(response.r + BigInt{1}, grp().q());
  EXPECT_THROW((void)requester.unblind(response), std::runtime_error);
}

TEST(BlindSig, ProtocolStateMachineEnforced) {
  crypto::ChaChaRng rng("bs-state");
  BlindSigner signer(grp(), grp().random_scalar(rng));
  BlindRequester requester(grp(), signer.public_y(), bytes("info"),
                           bytes("msg"));
  auto session = signer.start(bytes("info"), rng);
  // unblind before challenge: logic error.
  EXPECT_THROW((void)requester.unblind(SignerResponse{}), std::logic_error);
  (void)requester.challenge(session.first, rng);
  EXPECT_THROW((void)requester.challenge(session.first, rng),
               std::logic_error);
}

TEST(BlindSig, SignaturesAreUnlinkableAcrossRuns) {
  // The §6 blindness game, verified algebraically: given the signer's view
  // of two issuing sessions and the two unblinded signatures in unknown
  // order, BOTH pairings are consistent — for every (view, signature) pair
  // there exist blinding factors t1..t4 connecting them.  We reconstruct
  // the t_i for each pairing and check the defining equations, so a signer
  // cannot tell which session produced which coin.
  crypto::ChaChaRng rng("bs-blind");
  BigInt x = grp().random_scalar(rng);
  BlindSigner signer(grp(), x);
  // The paper's game: same info (all the broker may learn), but each coin
  // hides *different* commitments A, B — the realistic case.
  const auto info = bytes("same-info");
  const auto msg1 = bytes("coin-1-commitments");
  const auto msg2 = bytes("coin-2-commitments");
  BigInt z = grp().hash_to_group(info);

  struct View {
    BlindSigner::Session session;
    BigInt e;
    SignerResponse response;
  };
  auto run = [&](View& view, PartialBlindSignature& out,
                 const std::vector<std::uint8_t>& msg) {
    BlindRequester requester(grp(), signer.public_y(), info, msg);
    view.session = signer.start(info, rng);
    view.e = requester.challenge(view.session.first, rng);
    view.response = signer.respond(view.session, view.e);
    out = requester.unblind(view.response);
  };
  View v1, v2;
  PartialBlindSignature s1, s2;
  run(v1, s1, msg1);
  run(v2, s2, msg2);

  auto consistent = [&](const View& v, const PartialBlindSignature& s) {
    const BigInt& q = grp().q();
    BigInt t1 = bn::mod_sub(s.rho, v.response.r, q);
    BigInt t2 = bn::mod_sub(s.omega, v.response.c, q);
    BigInt t3 = bn::mod_sub(s.sigma, v.response.s, q);
    BigInt t4 = bn::mod_sub(s.delta, bn::mod_sub(v.e, v.response.c, q), q);
    // alpha = a * g^t1 * y^t2 must equal g^rho y^omega; beta likewise.
    BigInt alpha = grp().mul(grp().mul(v.session.first.a, grp().exp_g(t1)),
                             grp().exp(signer.public_y(), t2));
    BigInt beta = grp().mul(grp().mul(v.session.first.b, grp().exp_g(t3)),
                            grp().exp(z, t4));
    BigInt lhs = grp().mul(grp().exp_g(s.rho),
                           grp().exp(signer.public_y(), s.omega));
    BigInt rhs = grp().mul(grp().exp_g(s.sigma), grp().exp(z, s.delta));
    return alpha == lhs && beta == rhs &&
           bn::mod_add(t2, t4, q) ==
               bn::mod_sub(bn::mod_add(s.omega, s.delta, q), v.e, q);
  };
  // Both true pairings AND both crossed pairings are consistent: perfect
  // blindness.
  EXPECT_TRUE(consistent(v1, s1));
  EXPECT_TRUE(consistent(v2, s2));
  EXPECT_TRUE(consistent(v1, s2));
  EXPECT_TRUE(consistent(v2, s1));
}

TEST(BlindSig, WithdrawalOpCountsMatchTable1) {
  // Broker side of Algorithm 1: 3 Exp + 1 Hash (the F(info) for z).
  crypto::ChaChaRng rng("bs-ops");
  BigInt x = grp().random_scalar(rng);
  BlindSigner signer(grp(), x);
  metrics::OpCounters broker_ops;
  BlindSigner::Session session;
  {
    metrics::ScopedOpCounting guard(broker_ops);
    session = signer.start(bytes("info"), rng);
  }
  EXPECT_EQ(broker_ops.exp, 3u);
  EXPECT_EQ(broker_ops.hash, 1u);

  BlindRequester requester(grp(), signer.public_y(), bytes("info"),
                           bytes("msg"));
  // Client challenge: alpha (2 Exp) + beta (2 Exp) + epsilon (1 Hash).
  metrics::OpCounters challenge_ops;
  BigInt e;
  {
    metrics::ScopedOpCounting guard(challenge_ops);
    e = requester.challenge(session.first, rng);
  }
  EXPECT_EQ(challenge_ops.exp, 4u);
  EXPECT_EQ(challenge_ops.hash, 1u);

  // Broker respond: pure Z_q arithmetic, zero crypto ops.
  metrics::OpCounters respond_ops;
  SignerResponse response;
  {
    metrics::ScopedOpCounting guard(respond_ops);
    response = signer.respond(session, e);
  }
  EXPECT_EQ(respond_ops, metrics::OpCounters{});

  // Client unblind + step-4 check: 4 Exp + 1 Hash.
  metrics::OpCounters unblind_ops;
  PartialBlindSignature sig;
  {
    metrics::ScopedOpCounting guard(unblind_ops);
    sig = requester.unblind(response);
  }
  EXPECT_EQ(unblind_ops.exp, 4u);
  EXPECT_EQ(unblind_ops.hash, 1u);
  EXPECT_TRUE(verify(grp(), signer.public_y(), bytes("info"), bytes("msg"),
                     sig));
}

}  // namespace
}  // namespace p2pcash::blindsig
