// Shared test fixture: a small in-memory deployment plus helpers.

#pragma once

#include <gtest/gtest.h>

#include "ecash/deployment.h"

namespace p2pcash::ecash::testing {

/// Deployment of `kMerchants` merchants over the fast 256-bit test group.
class EcashTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kMerchants = 8;

  EcashTest() : EcashTest(Broker::Config{}) {}
  explicit EcashTest(Broker::Config config)
      : dep_(group::SchnorrGroup::test_256(), kMerchants, /*seed=*/1234,
             config),
        wallet_(dep_.make_wallet()) {}

  /// Withdraws a coin or fails the test.
  WalletCoin withdraw(Cents denomination = 100, Timestamp now = 1000) {
    auto coin = dep_.withdraw(*wallet_, denomination, now);
    EXPECT_TRUE(coin.ok()) << (coin.ok() ? "" : coin.refusal().detail);
    return std::move(coin).value();
  }

  /// First merchant id that is NOT one of the coin's witnesses (so payment
  /// always involves a remote witness hop).
  MerchantId non_witness_merchant(const WalletCoin& coin) {
    for (const auto& id : dep_.merchant_ids()) {
      bool is_witness = false;
      for (const auto& w : coin.coin.witnesses) {
        if (w.merchant == id) is_witness = true;
      }
      if (!is_witness) return id;
    }
    ADD_FAILURE() << "all merchants are witnesses of this coin";
    return dep_.merchant_ids().front();
  }

  Deployment dep_;
  std::unique_ptr<Wallet> wallet_;
};

}  // namespace p2pcash::ecash::testing
