// Witness crash recovery: the spent-coin state must survive restarts or a
// crashed-and-wiped witness would double-sign (and pay for it).

#include <gtest/gtest.h>

#include "ecash_fixture.h"

namespace p2pcash::ecash {
namespace {

using testing::EcashTest;

class WitnessRecoveryTest : public EcashTest {
 protected:
  /// Simulates a crash/restart of the given witness: snapshot, destroy,
  /// rebuild with the same key, restore.
  void crash_and_restore(const MerchantId& id, bool with_snapshot) {
    auto& node = dep_.node(id);
    std::vector<std::uint8_t> snapshot;
    if (with_snapshot) snapshot = node.witness->snapshot_state();
    // Rebuild the service from scratch (same identity/key).
    auto key = sig::KeyPair::from_secret(dep_.grp(),
                                         node.merchant->key_pair().secret());
    node.witness = std::make_unique<WitnessService>(
        dep_.grp(), dep_.broker().coin_key(), id, key, dep_.rng());
    if (with_snapshot) node.witness->restore_state(snapshot);
  }
};

TEST_F(WitnessRecoveryTest, SnapshotRoundTripsExactly) {
  auto coin = withdraw(100);
  auto witness_id = coin.coin.witnesses[0].merchant;
  auto m1 = non_witness_merchant(coin);
  ASSERT_TRUE(dep_.pay(*wallet_, coin, m1, 2000).accepted);
  auto& witness = *dep_.node(witness_id).witness;
  auto snapshot = witness.snapshot_state();
  WitnessService clone(dep_.grp(), dep_.broker().coin_key(), witness_id,
                       sig::KeyPair::from_secret(
                           dep_.grp(),
                           dep_.node(witness_id).merchant->key_pair().secret()),
                       dep_.rng());
  clone.restore_state(snapshot);
  EXPECT_EQ(clone.snapshot_state(), snapshot);
  EXPECT_EQ(clone.coins_signed(), witness.coins_signed());
}

TEST_F(WitnessRecoveryTest, RestoredWitnessStillBlocksDoubleSpend) {
  auto coin = withdraw(100);
  auto witness_id = coin.coin.witnesses[0].merchant;
  auto m1 = non_witness_merchant(coin);
  ASSERT_TRUE(dep_.pay(*wallet_, coin, m1, 2000).accepted);

  crash_and_restore(witness_id, /*with_snapshot=*/true);

  MerchantId m2 = m1 == "m000" ? "m001" : "m000";
  Timestamp later =
      2000 + dep_.node(witness_id).witness->commitment_ttl() + 100;
  auto result = dep_.pay(*wallet_, coin, m2, later);
  EXPECT_FALSE(result.accepted);
  ASSERT_TRUE(result.double_spend_proof.has_value());
  EXPECT_TRUE(result.double_spend_proof->verify(dep_.grp()));
}

TEST_F(WitnessRecoveryTest, AmnesiaIsExactlyTheFaultyWitnessCase) {
  // Without the snapshot, the restarted witness forgets the first spend,
  // signs again — and the broker's deposit protocol charges it, just like
  // a deliberately faulty witness.  This is why durability matters.
  auto coin = withdraw(100);
  auto witness_id = coin.coin.witnesses[0].merchant;
  auto m1 = non_witness_merchant(coin);
  ASSERT_TRUE(dep_.pay(*wallet_, coin, m1, 2000).accepted);

  crash_and_restore(witness_id, /*with_snapshot=*/false);

  MerchantId m2 = m1 == "m000" ? "m001" : "m000";
  auto result = dep_.pay(*wallet_, coin, m2, 3000);
  EXPECT_TRUE(result.accepted);  // the amnesiac witness signed again

  ASSERT_EQ(dep_.deposit_all(m1, 5000).credited, 100u);
  auto s2 = dep_.deposit_all(m2, 6000);
  EXPECT_EQ(s2.credited, 100u);  // merchant paid from the witness deposit
  EXPECT_TRUE(dep_.broker().account(witness_id)->flagged);
}

TEST_F(WitnessRecoveryTest, RestoredDoubleSpendProofStillServed) {
  auto coin = withdraw(100);
  auto witness_id = coin.coin.witnesses[0].merchant;
  auto ids = dep_.merchant_ids();
  ASSERT_TRUE(dep_.pay(*wallet_, coin, ids[0], 2000).accepted);
  EXPECT_FALSE(dep_.pay(*wallet_, coin, ids[1], 3000).accepted);

  crash_and_restore(witness_id, /*with_snapshot=*/true);
  EXPECT_TRUE(dep_.node(witness_id)
                  .witness->has_double_spend_record(coin.coin.bare.coin_hash()));
  auto third = dep_.pay(*wallet_, coin, ids[2], 4000);
  EXPECT_FALSE(third.accepted);
  ASSERT_TRUE(third.double_spend_proof.has_value());
}

TEST_F(WitnessRecoveryTest, CorruptSnapshotsRejected) {
  auto coin = withdraw(100);
  auto witness_id = coin.coin.witnesses[0].merchant;
  auto m1 = non_witness_merchant(coin);
  ASSERT_TRUE(dep_.pay(*wallet_, coin, m1, 2000).accepted);
  auto& witness = *dep_.node(witness_id).witness;
  auto snapshot = witness.snapshot_state();

  // Truncations at every prefix either throw or are rejected; never UB.
  for (std::size_t cut : {0u, 1u, 8u, 32u}) {
    if (cut >= snapshot.size()) continue;
    std::span<const std::uint8_t> prefix(snapshot.data(), cut);
    EXPECT_THROW(witness.restore_state(prefix), wire::DecodeError);
  }
  // Bad magic.
  auto garbled = snapshot;
  garbled[10] ^= 0xff;
  EXPECT_THROW(witness.restore_state(garbled), wire::DecodeError);
  // A failed restore must not have clobbered the state.
  EXPECT_EQ(witness.snapshot_state(), snapshot);
}

}  // namespace
}  // namespace p2pcash::ecash
