// Witness crash recovery: the spent-coin state must survive restarts or a
// crashed-and-wiped witness would double-sign (and pay for it).

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>

#include "ecash_fixture.h"
#include "store/log_store.h"
#include "store/vfs.h"

namespace p2pcash::ecash {
namespace {

using testing::EcashTest;

/// When $P2PCASH_STORE_ARTIFACT names a directory, dumps the offending log
/// bytes and the record-boundary index there so CI can upload them as a
/// failure artifact.
void dump_store_artifact(const std::string& tag,
                         const std::vector<std::uint8_t>& log,
                         const std::vector<std::uint64_t>& bounds) {
  const char* dir = std::getenv("P2PCASH_STORE_ARTIFACT");
  if (dir == nullptr) return;
  std::ofstream raw(std::string(dir) + "/" + tag + ".log", std::ios::binary);
  raw.write(reinterpret_cast<const char*>(log.data()),
            static_cast<std::streamsize>(log.size()));
  std::ofstream idx(std::string(dir) + "/" + tag + ".idx");
  for (auto b : bounds) idx << b << "\n";
}

std::uint32_t be32_at(const std::vector<std::uint8_t>& b, std::size_t off) {
  return (std::uint32_t{b[off]} << 24) | (std::uint32_t{b[off + 1]} << 16) |
         (std::uint32_t{b[off + 2]} << 8) | std::uint32_t{b[off + 3]};
}

class WitnessRecoveryTest : public EcashTest {
 protected:
  /// Simulates a crash/restart of the given witness: snapshot, destroy,
  /// rebuild with the same key, restore.
  void crash_and_restore(const MerchantId& id, bool with_snapshot) {
    auto& node = dep_.node(id);
    std::vector<std::uint8_t> snapshot;
    if (with_snapshot) snapshot = node.witness->snapshot_state();
    // Rebuild the service from scratch (same identity/key).
    auto key = sig::KeyPair::from_secret(dep_.grp(),
                                         node.merchant->key_pair().secret());
    node.witness = std::make_unique<WitnessService>(
        dep_.grp(), dep_.broker().coin_key(), id, key, dep_.rng());
    if (with_snapshot) node.witness->restore_state(snapshot);
  }
};

TEST_F(WitnessRecoveryTest, SnapshotRoundTripsExactly) {
  auto coin = withdraw(100);
  auto witness_id = coin.coin.witnesses[0].merchant;
  auto m1 = non_witness_merchant(coin);
  ASSERT_TRUE(dep_.pay(*wallet_, coin, m1, 2000).accepted);
  auto& witness = *dep_.node(witness_id).witness;
  auto snapshot = witness.snapshot_state();
  WitnessService clone(dep_.grp(), dep_.broker().coin_key(), witness_id,
                       sig::KeyPair::from_secret(
                           dep_.grp(),
                           dep_.node(witness_id).merchant->key_pair().secret()),
                       dep_.rng());
  clone.restore_state(snapshot);
  EXPECT_EQ(clone.snapshot_state(), snapshot);
  EXPECT_EQ(clone.coins_signed(), witness.coins_signed());
}

TEST_F(WitnessRecoveryTest, RestoredWitnessStillBlocksDoubleSpend) {
  auto coin = withdraw(100);
  auto witness_id = coin.coin.witnesses[0].merchant;
  auto m1 = non_witness_merchant(coin);
  ASSERT_TRUE(dep_.pay(*wallet_, coin, m1, 2000).accepted);

  crash_and_restore(witness_id, /*with_snapshot=*/true);

  MerchantId m2 = m1 == "m000" ? "m001" : "m000";
  Timestamp later =
      2000 + dep_.node(witness_id).witness->commitment_ttl() + 100;
  auto result = dep_.pay(*wallet_, coin, m2, later);
  EXPECT_FALSE(result.accepted);
  ASSERT_TRUE(result.double_spend_proof.has_value());
  EXPECT_TRUE(result.double_spend_proof->verify(dep_.grp()));
}

TEST_F(WitnessRecoveryTest, AmnesiaIsExactlyTheFaultyWitnessCase) {
  // Without the snapshot, the restarted witness forgets the first spend,
  // signs again — and the broker's deposit protocol charges it, just like
  // a deliberately faulty witness.  This is why durability matters.
  auto coin = withdraw(100);
  auto witness_id = coin.coin.witnesses[0].merchant;
  auto m1 = non_witness_merchant(coin);
  ASSERT_TRUE(dep_.pay(*wallet_, coin, m1, 2000).accepted);

  crash_and_restore(witness_id, /*with_snapshot=*/false);

  MerchantId m2 = m1 == "m000" ? "m001" : "m000";
  auto result = dep_.pay(*wallet_, coin, m2, 3000);
  EXPECT_TRUE(result.accepted);  // the amnesiac witness signed again

  ASSERT_EQ(dep_.deposit_all(m1, 5000).credited, 100u);
  auto s2 = dep_.deposit_all(m2, 6000);
  EXPECT_EQ(s2.credited, 100u);  // merchant paid from the witness deposit
  EXPECT_TRUE(dep_.broker().account(witness_id)->flagged);
}

TEST_F(WitnessRecoveryTest, RestoredDoubleSpendProofStillServed) {
  auto coin = withdraw(100);
  auto witness_id = coin.coin.witnesses[0].merchant;
  auto ids = dep_.merchant_ids();
  ASSERT_TRUE(dep_.pay(*wallet_, coin, ids[0], 2000).accepted);
  EXPECT_FALSE(dep_.pay(*wallet_, coin, ids[1], 3000).accepted);

  crash_and_restore(witness_id, /*with_snapshot=*/true);
  EXPECT_TRUE(dep_.node(witness_id)
                  .witness->has_double_spend_record(coin.coin.bare.coin_hash()));
  auto third = dep_.pay(*wallet_, coin, ids[2], 4000);
  EXPECT_FALSE(third.accepted);
  ASSERT_TRUE(third.double_spend_proof.has_value());
}

TEST_F(WitnessRecoveryTest, CorruptSnapshotsRejected) {
  auto coin = withdraw(100);
  auto witness_id = coin.coin.witnesses[0].merchant;
  auto m1 = non_witness_merchant(coin);
  ASSERT_TRUE(dep_.pay(*wallet_, coin, m1, 2000).accepted);
  auto& witness = *dep_.node(witness_id).witness;
  auto snapshot = witness.snapshot_state();

  // Truncations at every prefix either throw or are rejected; never UB.
  for (std::size_t cut : {0u, 1u, 8u, 32u}) {
    if (cut >= snapshot.size()) continue;
    std::span<const std::uint8_t> prefix(snapshot.data(), cut);
    EXPECT_THROW(witness.restore_state(prefix), wire::DecodeError);
  }
  // Bad magic.
  auto garbled = snapshot;
  garbled[10] ^= 0xff;
  EXPECT_THROW(witness.restore_state(garbled), wire::DecodeError);
  // A failed restore must not have clobbered the state.
  EXPECT_EQ(witness.snapshot_state(), snapshot);
}

TEST_F(WitnessRecoveryTest, CrashPointMatrixLosesNoAcknowledgedSignature) {
  // Twin of the broker crash matrix: every witness journals to its own
  // durable log, and for the designated witness we kill the process at
  // every acknowledged commit boundary, every record boundary, and at torn
  // cuts inside each record.  A rebuilt witness must reproduce the
  // acknowledged spent-coin state byte-for-byte — amnesia here is exactly
  // the faulty-witness case the broker charges for.
  store::MemVfs vfs;
  std::vector<std::unique_ptr<store::LogStore>> stores;
  for (const auto& id : dep_.merchant_ids()) {
    stores.push_back(
        std::make_unique<store::LogStore>(vfs, "witness-" + id + ".log"));
    dep_.node(id).witness->attach_store(*stores.back());
  }

  std::vector<WalletCoin> coins;
  for (int i = 0; i < 22; ++i) coins.push_back(withdraw(100));

  const auto w = coins[0].coin.witnesses[0].merchant;
  const std::string log_name = "witness-" + w + ".log";

  struct Ack {
    std::uint64_t offset;
    std::vector<std::uint8_t> snapshot;
  };
  std::vector<Ack> acks;
  // Only this witness's log matters; dedupe marks where an operation did
  // not involve `w` (its log did not grow).
  auto mark = [&]() {
    const std::uint64_t len = vfs.contents(log_name).size();
    if (!acks.empty() && acks.back().offset == len) return;
    acks.push_back({len, dep_.node(w).witness->snapshot_state()});
  };
  mark();  // pristine (possibly empty-log) state

  // Phase 1: first spends — commitments and spent records.
  std::vector<MerchantId> payees;
  Timestamp now = 2000;
  for (int i = 0; i < 16; ++i) {
    auto m = non_witness_merchant(coins[i]);
    ASSERT_TRUE(dep_.pay(*wallet_, coins[i], m, now).accepted) << i;
    payees.push_back(m);
    now += 10;
    mark();
  }

  // Phase 2: double spends after the commitment TTL — proof records.
  const auto ids = dep_.merchant_ids();
  now += dep_.node(w).witness->commitment_ttl() + 100;
  for (int i = 0; i < 8; ++i) {
    MerchantId other;
    for (const auto& id : ids) {
      if (id == payees[i]) continue;
      bool is_witness = false;
      for (const auto& e : coins[i].coin.witnesses)
        if (e.merchant == id) is_witness = true;
      if (!is_witness) {
        other = id;
        break;
      }
    }
    ASSERT_FALSE(other.empty()) << i;
    auto r = dep_.pay(*wallet_, coins[i], other, now);
    EXPECT_FALSE(r.accepted) << i;
    now += 10;
    mark();
  }

  // Phase 3: transfers of unspent coins — ownership-endorsement records.
  auto recipient = dep_.make_wallet();
  for (int i = 16; i < 20; ++i) {
    auto tr = dep_.transfer(*wallet_, coins[i], *recipient, now);
    ASSERT_TRUE(tr.received.has_value()) << i;
    now += 10;
    mark();
  }

  const auto final_log = vfs.contents(log_name);
  ASSERT_GT(acks.size(), 3u);  // the designated witness did real work

  std::vector<std::uint64_t> bounds{0};
  for (std::size_t off = 0;
       off + store::kFrameHeaderBytes <= final_log.size();) {
    off += store::kFrameHeaderBytes + be32_at(final_log, off);
    ASSERT_LE(off, final_log.size());
    bounds.push_back(off);
  }
  ASSERT_EQ(bounds.back(), final_log.size());

  auto recover_at = [&](std::uint64_t cut) {
    store::MemVfs crashed;
    crashed.set_contents(
        log_name,
        std::vector<std::uint8_t>(
            final_log.begin(),
            final_log.begin() + static_cast<std::ptrdiff_t>(cut)));
    store::LogStore reopened(crashed, log_name);
    auto key = sig::KeyPair::from_secret(
        dep_.grp(), dep_.node(w).merchant->key_pair().secret());
    WitnessService reborn(dep_.grp(), dep_.broker().coin_key(), w, key,
                          dep_.rng());
    reborn.attach_store(reopened);
    return reborn.snapshot_state();
  };

  // 1. Every acknowledged signature survives a crash at its commit point.
  for (std::size_t i = 0; i < acks.size(); ++i)
    EXPECT_EQ(recover_at(acks[i].offset), acks[i].snapshot) << "ack " << i;

  // 2. Records are atomic: torn cuts recover to the preceding boundary.
  for (std::size_t i = 0; i + 1 < bounds.size(); ++i) {
    auto at_boundary = recover_at(bounds[i]);
    const std::uint64_t next = bounds[i + 1];
    for (std::uint64_t cut :
         {bounds[i] + 1, (bounds[i] + next) / 2, next - 1}) {
      if (cut <= bounds[i] || cut >= next) continue;
      EXPECT_EQ(recover_at(cut), at_boundary) << "record " << i;
    }
  }

  // 3. Exactly-once across the reboot: swap in a witness recovered from
  //    the full log and try to double-spend a coin it endorsed — the
  //    recovered spent-record must produce a verifying proof, not a second
  //    signature.
  {
    stores.push_back(std::make_unique<store::LogStore>(vfs, log_name));
    auto key = sig::KeyPair::from_secret(
        dep_.grp(), dep_.node(w).merchant->key_pair().secret());
    auto reborn = std::make_unique<WitnessService>(
        dep_.grp(), dep_.broker().coin_key(), w, key, dep_.rng());
    reborn->attach_store(*stores.back());
    EXPECT_EQ(reborn->snapshot_state(),
              dep_.node(w).witness->snapshot_state());
    dep_.node(w).witness = std::move(reborn);

    // Find a spent coin whose witness set includes w.
    for (int i = 0; i < 16; ++i) {
      bool mine = false;
      for (const auto& e : coins[i].coin.witnesses)
        if (e.merchant == w) mine = true;
      if (!mine) continue;
      EXPECT_TRUE(dep_.node(w).witness->has_double_spend_record(
                      coins[i].coin.bare.coin_hash()) ||
                  i >= 8)
          << i;
      MerchantId other;
      for (const auto& id : ids) {
        if (id == payees[i]) continue;
        bool is_witness = false;
        for (const auto& e : coins[i].coin.witnesses)
          if (e.merchant == id) is_witness = true;
        if (!is_witness) {
          other = id;
          break;
        }
      }
      auto again = dep_.pay(*wallet_, coins[i], other, now + 1000);
      EXPECT_FALSE(again.accepted) << i;
      if (again.double_spend_proof.has_value()) {
        EXPECT_TRUE(again.double_spend_proof->verify(dep_.grp())) << i;
      }
      break;
    }
  }

  if (HasFailure()) dump_store_artifact("witness", final_log, bounds);
}

}  // namespace
}  // namespace p2pcash::ecash
