// Robustness fuzzing: randomly corrupted wire bytes must never crash a
// decoder, and corrupted protocol objects must never verify.  A payment
// system's parsers face adversarial input by definition.

#include <gtest/gtest.h>

#include "crypto/chacha.h"
#include "ecash_fixture.h"
#include "store/log_store.h"
#include "store/vfs.h"
#include "wire/framing.h"
#include "wire/uri_form.h"

namespace p2pcash::ecash {
namespace {

using testing::EcashTest;

class FuzzFixture : public EcashTest {
 protected:
  crypto::ChaChaRng fuzz_rng_{"fuzz"};

  std::vector<std::uint8_t> flip_bits(std::vector<std::uint8_t> data,
                                      int flips) {
    for (int i = 0; i < flips && !data.empty(); ++i) {
      std::size_t pos = fuzz_rng_.next_u64() % data.size();
      data[pos] ^= static_cast<std::uint8_t>(1u << (fuzz_rng_.next_u64() % 8));
    }
    return data;
  }

  /// Decode under fuzz: success or DecodeError are both fine; anything
  /// else (segfault, uncaught logic error) fails the test by crashing.
  template <typename T>
  std::optional<T> try_decode(const std::vector<std::uint8_t>& bytes) {
    try {
      return wire::decode<T>(bytes);
    } catch (const wire::DecodeError&) {
      return std::nullopt;
    }
  }
};

TEST_F(FuzzFixture, CorruptedCoinsNeverVerify) {
  auto wc = withdraw();
  auto genuine = wire::encode(wc.coin);
  int decoded_ok = 0, verified = 0;
  for (int trial = 0; trial < 300; ++trial) {
    auto mutated = flip_bits(genuine, 1 + static_cast<int>(trial % 4));
    if (mutated == genuine) continue;
    auto coin = try_decode<Coin>(mutated);
    if (!coin) continue;
    ++decoded_ok;
    if (verify_coin(dep_.grp(), dep_.broker().coin_key(), *coin, 2000).ok())
      ++verified;
  }
  // Bit flips that survive decoding must still die in verification: a flip
  // anywhere (signature, info, commitments, ranges) breaks something.
  EXPECT_EQ(verified, 0);
  EXPECT_GT(decoded_ok, 0);  // the harness actually exercised verify paths
}

TEST_F(FuzzFixture, CorruptedTranscriptsNeverVerify) {
  auto wc = withdraw();
  auto merchant = non_witness_merchant(wc);
  auto intent = wallet_->prepare_payment(wc, merchant);
  auto& witness = *dep_.node(wc.coin.witnesses[0].merchant).witness;
  auto commitment =
      witness.request_commitment(intent.coin_hash, intent.nonce, 2000);
  ASSERT_TRUE(commitment.ok());
  auto transcript =
      wallet_->build_transcript(wc, intent, {commitment.value()}, 2100);
  ASSERT_TRUE(transcript.ok());
  auto genuine = wire::encode(transcript.value());

  for (int trial = 0; trial < 200; ++trial) {
    auto mutated = flip_bits(genuine, 1 + static_cast<int>(trial % 3));
    if (mutated == genuine) continue;
    auto t = try_decode<PaymentTranscript>(mutated);
    if (!t) continue;
    // Either the coin or the NIZK must fail — UNLESS the flip landed in
    // the salt, which these two checks deliberately do not cover (the salt
    // is enforced by the witness/merchant nonce binding instead).
    bool coin_ok =
        verify_coin(dep_.grp(), dep_.broker().coin_key(), t->coin, 2000).ok();
    bool proof_ok = verify_transcript_proof(dep_.grp(), *t);
    if (coin_ok && proof_ok) {
      EXPECT_EQ(t->coin, transcript.value().coin) << "trial " << trial;
      EXPECT_EQ(t->resp, transcript.value().resp) << "trial " << trial;
      EXPECT_EQ(t->merchant, transcript.value().merchant);
      EXPECT_EQ(t->datetime, transcript.value().datetime);
      EXPECT_NE(t->salt, transcript.value().salt) << "trial " << trial;
      // And the nonce binding does catch it:
      EXPECT_NE(payment_nonce(t->salt, t->merchant),
                payment_nonce(transcript.value().salt,
                              transcript.value().merchant));
    }
  }
}

TEST_F(FuzzFixture, TruncatedStructuresThrowCleanly) {
  auto wc = withdraw();
  auto merchant = non_witness_merchant(wc);
  ASSERT_TRUE(dep_.pay(*wallet_, wc, merchant, 2000).accepted);
  auto queue = dep_.node(merchant).merchant->drain_deposit_queue();
  ASSERT_EQ(queue.size(), 1u);

  auto coin_bytes = wire::encode(wc.coin);
  auto st_bytes = wire::encode(queue[0]);
  for (std::size_t cut = 0; cut < coin_bytes.size(); cut += 3) {
    std::vector<std::uint8_t> prefix(coin_bytes.begin(),
                                     coin_bytes.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_FALSE(try_decode<Coin>(prefix).has_value()) << cut;
  }
  for (std::size_t cut = 0; cut < st_bytes.size(); cut += 7) {
    std::vector<std::uint8_t> prefix(st_bytes.begin(),
                                     st_bytes.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_FALSE(try_decode<SignedTranscript>(prefix).has_value()) << cut;
  }
}

TEST_F(FuzzFixture, RandomGarbageNeverDecodesToValidCoin) {
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<std::uint8_t> garbage(50 + fuzz_rng_.next_u64() % 500);
    fuzz_rng_.fill(garbage);
    auto coin = try_decode<Coin>(garbage);
    if (coin) {
      EXPECT_FALSE(
          verify_coin(dep_.grp(), dep_.broker().coin_key(), *coin, 2000)
              .ok());
    }
  }
}

TEST_F(FuzzFixture, FuzzedDepositsAreRefusedNotFatal) {
  // The broker must survive arbitrary garbage deposits.
  auto wc = withdraw();
  auto merchant = non_witness_merchant(wc);
  ASSERT_TRUE(dep_.pay(*wallet_, wc, merchant, 2000).accepted);
  auto queue = dep_.node(merchant).merchant->drain_deposit_queue();
  auto genuine = wire::encode(queue[0]);
  int refused = 0;
  for (int trial = 0; trial < 150; ++trial) {
    auto mutated = flip_bits(genuine, 1 + static_cast<int>(trial % 5));
    if (mutated == genuine) continue;
    auto st = try_decode<SignedTranscript>(mutated);
    if (!st) continue;
    auto receipt = dep_.broker().deposit(merchant, *st, 3000);
    if (!receipt.ok()) ++refused;
    // At most ONE mutation could be accepted — a flip confined to ignored
    // trailing... actually none: every byte is load-bearing.
    EXPECT_FALSE(receipt.ok()) << "trial " << trial;
  }
  EXPECT_GT(refused, 0);
  // The genuine deposit still clears after the bombardment.
  EXPECT_TRUE(dep_.broker().deposit(merchant, queue[0], 4000).ok());
}

TEST_F(FuzzFixture, AdversarialLengthPrefixCorpusNeverOverReads) {
  // Hand-built corpus of hostile length prefixes: values that would wrap
  // a naive `pos + n` bounds check, maximal u32 lengths, lengths one past
  // the end, and nested length fields inside otherwise-plausible buffers.
  // Reader::need compares against remaining bytes, so every case must
  // throw DecodeError (or decode cleanly) — never over-read.
  const std::vector<std::vector<std::uint8_t>> corpus = {
      {0xff, 0xff, 0xff, 0xff},                          // SIZE_MAX-ish len, no payload
      {0xff, 0xff, 0xff, 0xff, 0xaa},                    // ... with 1 stray byte
      {0xff, 0xff, 0xff, 0xfc},                          // wraps pos+n at pos=4
      {0x80, 0x00, 0x00, 0x00, 0x01, 0x02},              // 2^31 payload claim
      {0x00, 0x00, 0x00, 0x05, 0x01, 0x02, 0x03, 0x04},  // one byte short
      {0x00, 0x00, 0x00, 0x00},                          // empty payload (valid)
      {0x00, 0x00, 0x00, 0x02, 0x00, 0x00,               // valid outer...
       0xff, 0xff, 0xff, 0xf0},                          // ...hostile inner
  };
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    const auto& bytes = corpus[i];
    // Raw Reader primitives.
    for (int mode = 0; mode < 3; ++mode) {
      wire::Reader r(bytes);
      try {
        if (mode == 0) (void)r.get_bytes();
        if (mode == 1) (void)r.get_string();
        if (mode == 2) (void)r.get_bigint();
        EXPECT_LE(r.remaining(), bytes.size()) << "corpus " << i;
      } catch (const wire::DecodeError&) {
        // expected for the hostile entries
      }
    }
    // Typed decoders built on Reader.
    EXPECT_FALSE(try_decode<Coin>(bytes).has_value()) << "corpus " << i;
    EXPECT_FALSE(try_decode<SignedTranscript>(bytes).has_value())
        << "corpus " << i;
  }
  // The same prefixes injected mid-stream: splice each corpus entry into a
  // genuine coin encoding at a few offsets and require decode-or-throw.
  auto wc = withdraw();
  auto genuine = wire::encode(wc.coin);
  for (const auto& evil : corpus) {
    for (std::size_t off = 0; off < genuine.size(); off += 97) {
      std::vector<std::uint8_t> spliced(genuine.begin(),
                                        genuine.begin() + static_cast<std::ptrdiff_t>(off));
      spliced.insert(spliced.end(), evil.begin(), evil.end());
      (void)try_decode<Coin>(spliced);  // must not crash or over-read
    }
  }
}

TEST_F(FuzzFixture, FramingSurvivesAdversarialStreams) {
  // The TCP transport's frame decoder faces a raw socket: truncation,
  // hostile length prefixes, and garbage interleaved with real frames.
  // Every input must end in parsed frames or DecodeError — never a crash,
  // an over-read, or an unbounded allocation.
  constexpr std::size_t kMax = 4096;

  // 1. Truncated frames: every prefix of a multi-frame stream either
  //    yields the complete leading frames or waits for more bytes.
  std::vector<std::uint8_t> stream;
  wire::append_frame(stream, std::vector<std::uint8_t>(10, 0x11), kMax);
  wire::append_frame(stream, std::vector<std::uint8_t>(200, 0x22), kMax);
  wire::append_frame(stream, std::vector<std::uint8_t>{}, kMax);
  for (std::size_t cut = 0; cut <= stream.size(); ++cut) {
    wire::FrameDecoder dec(kMax);
    dec.feed(std::span<const std::uint8_t>(stream.data(), cut));
    std::size_t frames = 0;
    while (dec.next()) ++frames;
    EXPECT_LE(frames, 3u) << "cut=" << cut;
    EXPECT_LE(dec.buffered(), cut) << "cut=" << cut;
  }

  // 2. Oversized length prefixes: any header whose payload length (after
  //    masking the trace-envelope flag bit) is above kMax poisons the
  //    decoder immediately, before payload bytes are buffered.
  const std::vector<std::vector<std::uint8_t>> hostile_headers = {
      {0xff, 0xff, 0xff, 0xff},  // traced flag + ~2 GiB claim
      {0x7f, 0xff, 0xff, 0xff},  // untraced ~2 GiB claim
      {0x00, 0x00, 0x10, 0x01},  // kMax + 1
      {0x80, 0x00, 0x10, 0x01},  // traced flag + kMax + 1
  };
  for (std::size_t i = 0; i < hostile_headers.size(); ++i) {
    wire::FrameDecoder dec(kMax);
    EXPECT_THROW(dec.feed(hostile_headers[i]), wire::DecodeError) << i;
    EXPECT_EQ(dec.buffered(), 0u) << i;  // nothing hoarded for the attacker
    EXPECT_THROW(dec.feed(std::vector<std::uint8_t>{0, 0, 0, 0}),
                 wire::DecodeError)
        << "poisoned decoder must stay poisoned, corpus " << i;
  }

  // 3. Garbage interleaved after valid frames: the stream desynchronizes
  //    into either bogus-but-bounded frames or a DecodeError; the frames
  //    parsed before the garbage are intact either way.
  for (int trial = 0; trial < 60; ++trial) {
    std::vector<std::uint8_t> mixed;
    std::vector<std::uint8_t> payload(1 + fuzz_rng_.next_u64() % 64);
    fuzz_rng_.fill(payload);
    wire::append_frame(mixed, payload, kMax);
    std::vector<std::uint8_t> garbage(fuzz_rng_.next_u64() % 40);
    fuzz_rng_.fill(garbage);
    mixed.insert(mixed.end(), garbage.begin(), garbage.end());
    wire::FrameDecoder dec(kMax);
    try {
      dec.feed(mixed);
      auto first = dec.next();
      ASSERT_TRUE(first.has_value()) << "trial " << trial;
      EXPECT_EQ(*first, payload) << "trial " << trial;
      while (auto f = dec.next()) EXPECT_LE(f->size(), kMax);
    } catch (const wire::DecodeError&) {
      // garbage read as an oversized header — correct rejection
    }
  }

  // 4. Random re-chunking: any fragmentation of a valid stream reassembles
  //    to the identical frame sequence.
  std::vector<std::vector<std::uint8_t>> sent;
  std::vector<std::uint8_t> wire_bytes;
  for (int i = 0; i < 20; ++i) {
    std::vector<std::uint8_t> p(fuzz_rng_.next_u64() % 300);
    fuzz_rng_.fill(p);
    sent.push_back(p);
    wire::append_frame(wire_bytes, p, kMax);
  }
  for (int trial = 0; trial < 30; ++trial) {
    wire::FrameDecoder dec(kMax);
    std::vector<std::vector<std::uint8_t>> got;
    std::size_t pos = 0;
    while (pos < wire_bytes.size()) {
      std::size_t chunk = 1 + fuzz_rng_.next_u64() %
                                  std::min<std::size_t>(
                                      97, wire_bytes.size() - pos);
      dec.feed(std::span<const std::uint8_t>(wire_bytes.data() + pos, chunk));
      pos += chunk;
      while (auto f = dec.next()) got.push_back(*f);
    }
    ASSERT_EQ(got.size(), sent.size()) << "trial " << trial;
    EXPECT_EQ(got, sent) << "trial " << trial;
    EXPECT_EQ(dec.buffered(), 0u);
  }
}

TEST_F(FuzzFixture, HostileLogCorpusRecoversOrTruncatesNeverCrashes) {
  // Hostile on-disk logs for the durable store (store/log_store.h):
  // mid-record truncation, flipped bytes, duplicated tails, garbage tails
  // and oversized length prefixes.  Recovery must truncate to the last
  // valid record — never crash, never hand back a record that was not
  // genuinely written (CRC-validated), and reopening the recovered file
  // must be a no-op.
  const std::vector<std::uint8_t> snapshot_body = {0xAA, 0xBB, 0xCC};
  std::vector<std::vector<std::uint8_t>> delta_bodies;
  std::vector<std::uint8_t> genuine;
  {
    auto cp = store::LogStore::frame_record(store::kRecordCheckpoint,
                                            snapshot_body);
    genuine.insert(genuine.end(), cp.begin(), cp.end());
    for (int i = 0; i < 6; ++i) {
      std::vector<std::uint8_t> body(3 + i * 7);
      fuzz_rng_.fill(body);
      delta_bodies.push_back(body);
      auto rec = store::LogStore::frame_record(store::kRecordDelta, body);
      genuine.insert(genuine.end(), rec.begin(), rec.end());
    }
  }

  for (int trial = 0; trial < 300; ++trial) {
    auto bytes = genuine;
    switch (trial % 5) {
      case 0:  // mid-record truncation
        bytes.resize(fuzz_rng_.next_u64() % (bytes.size() + 1));
        break;
      case 1:  // flipped bits anywhere
        bytes = flip_bits(std::move(bytes), 1 + static_cast<int>(trial % 4));
        break;
      case 2: {  // duplicated tail (usually lands mid-frame)
        std::size_t k = 1 + fuzz_rng_.next_u64() % bytes.size();
        bytes.insert(bytes.end(), bytes.end() - static_cast<std::ptrdiff_t>(k),
                     bytes.end());
        break;
      }
      case 3: {  // garbage tail
        std::vector<std::uint8_t> junk(1 + fuzz_rng_.next_u64() % 64);
        fuzz_rng_.fill(junk);
        bytes.insert(bytes.end(), junk.begin(), junk.end());
        break;
      }
      case 4:  // oversized length prefix claims gigabytes
        bytes.insert(bytes.end(), {0xff, 0xff, 0xff, 0xfe, 0x12, 0x34, 0x56,
                                   0x78, 0x00});
        break;
    }

    store::MemVfs vfs;
    vfs.set_contents("log", bytes);
    store::LogStore log(vfs, "log");  // must not throw on any corpus entry
    auto rec = log.recover();
    // Nothing forged: the snapshot is the genuine one or nothing, and every
    // recovered delta is byte-identical to a genuinely written body (a CRC
    // collision on corrupted bytes is the only escape — 2^-32 per trial).
    if (!rec.snapshot.empty()) {
      EXPECT_EQ(rec.snapshot, snapshot_body) << "trial " << trial;
    }
    for (const auto& d : rec.deltas) {
      bool genuine_body = false;
      for (const auto& b : delta_bodies) genuine_body |= (d == b);
      EXPECT_TRUE(genuine_body) << "trial " << trial;
    }
    // The file was truncated to exactly the surviving records: a second
    // open finds a fully valid log and chops nothing.
    store::LogStore reopened(vfs, "log");
    EXPECT_EQ(reopened.stats().truncated_bytes, 0u) << "trial " << trial;
    auto rec2 = reopened.recover();
    EXPECT_EQ(rec2.snapshot, rec.snapshot) << "trial " << trial;
    EXPECT_EQ(rec2.deltas, rec.deltas) << "trial " << trial;
  }
}

TEST_F(FuzzFixture, FuzzedUriFormsParseOrThrow) {
  crypto::ChaChaRng rng("uri-fuzz");
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint8_t> raw(1 + rng.next_u64() % 120);
    rng.fill(raw);
    std::string s(raw.begin(), raw.end());
    try {
      auto form = wire::UriForm::parse(s);
      (void)form.render();
    } catch (const wire::DecodeError&) {
      // fine
    }
  }
}

}  // namespace
}  // namespace p2pcash::ecash
