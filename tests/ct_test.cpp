// Secret-hygiene primitives: constant-time comparison, secure_wipe,
// SecretBuffer ownership semantics, and the wipe() hooks on the protocol's
// secret-bearing types (BigInt, CoinSecret).

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

#include "bn/bigint.h"
#include "crypto/hmac.h"
#include "crypto/secret.h"
#include "nizk/representation.h"

namespace p2pcash {
namespace {

using bn::BigInt;

std::vector<std::uint8_t> bytes(std::initializer_list<std::uint8_t> v) {
  return std::vector<std::uint8_t>(v);
}

TEST(ConstantTimeEqualTest, EqualBuffers) {
  auto a = bytes({1, 2, 3, 4});
  auto b = bytes({1, 2, 3, 4});
  EXPECT_TRUE(crypto::constant_time_equal(a, b));
}

TEST(ConstantTimeEqualTest, EmptyBuffersAreEqual) {
  std::vector<std::uint8_t> a, b;
  EXPECT_TRUE(crypto::constant_time_equal(a, b));
}

TEST(ConstantTimeEqualTest, DifferenceInAnyPositionDetected) {
  const auto a = bytes({10, 20, 30, 40, 50});
  for (std::size_t i = 0; i < a.size(); ++i) {
    auto b = a;
    b[i] ^= 0x80;
    EXPECT_FALSE(crypto::constant_time_equal(a, b)) << "position " << i;
  }
}

TEST(ConstantTimeEqualTest, LengthMismatchIsUnequal) {
  auto a = bytes({1, 2, 3});
  auto b = bytes({1, 2, 3, 0});
  EXPECT_FALSE(crypto::constant_time_equal(a, b));
  EXPECT_FALSE(crypto::constant_time_equal(b, a));
}

TEST(SecureWipeTest, WipesRawRange) {
  std::array<std::uint8_t, 32> buf;
  buf.fill(0xAB);
  crypto::secure_wipe(buf.data(), buf.size());
  for (auto byte : buf) EXPECT_EQ(byte, 0);
}

TEST(SecureWipeTest, WipesContainersOfTriviallyCopyableElements) {
  std::array<std::uint32_t, 8> words;
  words.fill(0xDEADBEEF);
  crypto::secure_wipe(words);
  for (auto w : words) EXPECT_EQ(w, 0u);

  std::vector<std::uint8_t> vec(64, 0x5A);
  crypto::secure_wipe(vec);
  for (auto byte : vec) EXPECT_EQ(byte, 0);
  EXPECT_EQ(vec.size(), 64u);  // wiping a container keeps its size
}

TEST(SecureWipeTest, NullAndEmptyAreNoOps) {
  crypto::secure_wipe(nullptr, 0);
  crypto::secure_wipe(nullptr, 16);  // null pointer: must not dereference
  std::vector<std::uint8_t> empty;
  crypto::secure_wipe(empty);
}

TEST(SecretBufferTest, WipeZeroizesAndEmpties) {
  crypto::SecretBuffer buf(bytes({9, 8, 7, 6}));
  ASSERT_EQ(buf.size(), 4u);
  buf.wipe();
  EXPECT_TRUE(buf.empty());
}

TEST(SecretBufferTest, MoveTransfersOwnershipAndClearsSource) {
  crypto::SecretBuffer a(bytes({1, 2, 3}));
  crypto::SecretBuffer b(std::move(a));
  EXPECT_TRUE(a.empty());  // NOLINT(bugprone-use-after-move) — spec'd state
  ASSERT_EQ(b.size(), 3u);
  EXPECT_EQ(b.data()[0], 1);

  crypto::SecretBuffer c(bytes({42}));
  c = std::move(b);
  EXPECT_TRUE(b.empty());  // NOLINT(bugprone-use-after-move)
  ASSERT_EQ(c.size(), 3u);
  EXPECT_EQ(c.data()[2], 3);
}

TEST(SecretBufferTest, CloneIsAnIndependentCopy) {
  crypto::SecretBuffer a(bytes({5, 6, 7}));
  crypto::SecretBuffer b = a.clone();
  a.wipe();
  ASSERT_EQ(b.size(), 3u);
  EXPECT_EQ(b.data()[1], 6);
}

TEST(SecretBufferTest, ConvertsToSpanForCryptoApis) {
  crypto::SecretBuffer key(bytes({1, 2, 3, 4}));
  std::span<const std::uint8_t> view = key;
  EXPECT_EQ(view.size(), 4u);
  EXPECT_EQ(view[3], 4);
}

TEST(BigIntWipeTest, WipedValueIsZero) {
  BigInt x(std::int64_t{0x123456789ABCDEF});
  x.wipe();
  EXPECT_EQ(x, BigInt(0));
}

TEST(BigIntWipeTest, WipedNegativeValueIsZero) {
  BigInt x(-987654321);
  x.wipe();
  EXPECT_EQ(x, BigInt(0));
  EXPECT_FALSE(x.is_negative());
}

TEST(BigIntWipeTest, WipedValueIsReusable) {
  BigInt x(77);
  x.wipe();
  x = BigInt(5) + BigInt(6);
  EXPECT_EQ(x, BigInt(11));
}

TEST(CoinSecretWipeTest, WipeZeroizesAllFourScalars) {
  nizk::CoinSecret s;
  s.x1 = BigInt(11);
  s.x2 = BigInt(22);
  s.y1 = BigInt(33);
  s.y2 = BigInt(44);
  s.wipe();
  EXPECT_EQ(s.x1, BigInt(0));
  EXPECT_EQ(s.x2, BigInt(0));
  EXPECT_EQ(s.y1, BigInt(0));
  EXPECT_EQ(s.y2, BigInt(0));
}

TEST(CoinSecretWipeTest, CopyIsIndependentOfWipedOriginal) {
  nizk::CoinSecret s;
  s.x1 = BigInt(123);
  nizk::CoinSecret copy = s;
  s.wipe();
  EXPECT_EQ(copy.x1, BigInt(123));
}

}  // namespace
}  // namespace p2pcash
