// HMAC-SHA256 (RFC 4231) and HKDF (RFC 5869) test vectors.

#include "crypto/hmac.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "crypto/encoding.h"

namespace p2pcash::crypto {
namespace {

std::vector<std::uint8_t> str_bytes(std::string_view s) {
  return {s.begin(), s.end()};
}

TEST(Hmac, Rfc4231Case1) {
  std::vector<std::uint8_t> key(20, 0x0b);
  auto mac = hmac_sha256(key, str_bytes("Hi There"));
  EXPECT_EQ(digest_to_hex(mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  auto mac = hmac_sha256(str_bytes("Jefe"),
                         str_bytes("what do ya want for nothing?"));
  EXPECT_EQ(digest_to_hex(mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231Case3) {
  std::vector<std::uint8_t> key(20, 0xaa);
  std::vector<std::uint8_t> data(50, 0xdd);
  auto mac = hmac_sha256(key, data);
  EXPECT_EQ(digest_to_hex(mac),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(Hmac, Rfc4231Case6LongKey) {
  std::vector<std::uint8_t> key(131, 0xaa);
  auto mac = hmac_sha256(
      key, str_bytes("Test Using Larger Than Block-Size Key - Hash Key First"));
  EXPECT_EQ(digest_to_hex(mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hmac, EmptyKeyAndEmptyData) {
  // Regression: an empty key vector has a null data() pointer, and
  // memcpy from it is undefined behaviour even for zero bytes (caught by
  // UBSan).  RFC 4868-style vector for HMAC-SHA256("", "").
  auto mac = hmac_sha256(std::vector<std::uint8_t>{},
                         std::vector<std::uint8_t>{});
  EXPECT_EQ(digest_to_hex(mac),
            "b613679a0814d9ec772f95d778c35fc5ff1697c493715653c6c712144292c5ad");
  // An empty key must behave exactly like a zero block (HMAC pads with
  // zeros), which a 64-byte zero key makes explicit.
  std::vector<std::uint8_t> zero_key(64, 0x00);
  EXPECT_EQ(hmac_sha256(zero_key, str_bytes("msg")),
            hmac_sha256(std::vector<std::uint8_t>{}, str_bytes("msg")));
}

TEST(Hkdf, Rfc5869Case1) {
  std::vector<std::uint8_t> ikm(22, 0x0b);
  auto salt = from_hex("000102030405060708090a0b0c");
  auto info = from_hex("f0f1f2f3f4f5f6f7f8f9");
  auto prk = hkdf_extract(salt, ikm);
  EXPECT_EQ(digest_to_hex(prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5");
  auto okm = hkdf_expand(prk, info, 42);
  EXPECT_EQ(to_hex(okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865");
}

TEST(Hkdf, Rfc5869Case3EmptySaltInfo) {
  std::vector<std::uint8_t> ikm(22, 0x0b);
  auto prk = hkdf_extract({}, ikm);
  auto okm = hkdf_expand(prk, {}, 42);
  EXPECT_EQ(to_hex(okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d"
            "9d201395faa4b61a96c8");
}

TEST(Hkdf, LengthLimits) {
  Sha256::Digest prk{};
  EXPECT_EQ(hkdf_expand(prk, {}, 0).size(), 0u);
  EXPECT_EQ(hkdf_expand(prk, {}, 255 * 32).size(), 255u * 32);
  EXPECT_THROW(hkdf_expand(prk, {}, 255 * 32 + 1), std::length_error);
}

TEST(Hkdf, DistinctInfoDistinctKeys) {
  Sha256::Digest prk = Sha256::hash(std::string_view("master"));
  auto k1 = hkdf_expand(prk, str_bytes("coin-signing"), 32);
  auto k2 = hkdf_expand(prk, str_bytes("range-signing"), 32);
  EXPECT_NE(k1, k2);
}

TEST(ConstantTimeEqual, Behaviour) {
  std::vector<std::uint8_t> a = {1, 2, 3};
  std::vector<std::uint8_t> b = {1, 2, 3};
  std::vector<std::uint8_t> c = {1, 2, 4};
  std::vector<std::uint8_t> d = {1, 2};
  EXPECT_TRUE(constant_time_equal(a, b));
  EXPECT_FALSE(constant_time_equal(a, c));
  EXPECT_FALSE(constant_time_equal(a, d));
  EXPECT_TRUE(constant_time_equal({}, {}));
}

}  // namespace
}  // namespace p2pcash::crypto
