// Discrete-event simulator, latency/cost models, network fault injection.

#include <gtest/gtest.h>

#include "crypto/chacha.h"
#include "obs/trace.h"
#include "simnet/fault.h"
#include "simnet/net.h"

namespace p2pcash::simnet {
namespace {

TEST(Simulator, EventsRunInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(30, [&] { order.push_back(3); });
  sim.schedule(10, [&] { order.push_back(1); });
  sim.schedule(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 30);
  EXPECT_EQ(sim.events_executed(), 3u);
}

TEST(Simulator, SameTimeIsFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) sim.schedule(5, [&, i] { order.push_back(i); });
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulator, EventsMaySpawnEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sim.schedule(1, recurse);
  };
  sim.schedule(0, recurse);
  sim.run();
  EXPECT_EQ(depth, 5);
  EXPECT_DOUBLE_EQ(sim.now(), 4);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.schedule(10, [&] { ++fired; });
  sim.schedule(100, [&] { ++fired; });
  sim.run_until(50);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 50);
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, NegativeDelayRejected) {
  Simulator sim;
  EXPECT_THROW(sim.schedule(-1, [] {}), std::invalid_argument);
}

TEST(LatencyModels, UniformStaysInBounds) {
  crypto::ChaChaRng rng("lat");
  UniformLatency model(25, 50);
  for (int i = 0; i < 200; ++i) {
    SimTime t = model.one_way_ms(0, 1, rng);
    EXPECT_GE(t, 25);
    EXPECT_LT(t, 50);
  }
  EXPECT_DOUBLE_EQ(model.one_way_ms(3, 3, rng), 0);  // self-message free
}

TEST(CostModels, PaperCalibration) {
  // The python model must price a signature at 250 ms (paper §7 footnote),
  // openssl at 4.8 ms, with the ~52x ratio carrying over to exponentiation.
  auto python = python2007_cost();
  auto openssl = openssl_cost();
  metrics::OpCounters one_sig{0, 0, 1, 0};
  EXPECT_DOUBLE_EQ(python.cost_ms(one_sig), 250.0);
  EXPECT_DOUBLE_EQ(openssl.cost_ms(one_sig), 4.8);
  metrics::OpCounters mixed{7, 6, 2, 1};
  EXPECT_GT(python.cost_ms(mixed), 40 * openssl.cost_ms(mixed));
  EXPECT_DOUBLE_EQ(free_cost().cost_ms(mixed), 0.0);
}

TEST(EncodedSize, UriCostsMoreThanBinary) {
  for (std::size_t payload : {10u, 100u, 1000u}) {
    EXPECT_GT(encoded_size(WireFormat::kUri, 8, payload),
              encoded_size(WireFormat::kBinary, 8, payload));
  }
  // base64 expansion factor ~4/3 plus escapes.
  std::size_t uri = encoded_size(WireFormat::kUri, 0, 900);
  EXPECT_GT(uri, 1200u);
  EXPECT_LT(uri, 1500u);
}

class NetFixture : public ::testing::Test {
 protected:
  struct Recorder : Node {
    std::vector<Message> received;
    void on_message(const Message& msg) override { received.push_back(msg); }
  };

  NetFixture()
      : rng_("net"),
        net_(sim_, std::make_unique<ConstantLatency>(10), rng_) {
    net_.attach(a_);
    net_.attach(b_);
  }

  Simulator sim_;
  crypto::ChaChaRng rng_;
  Network net_;
  Recorder a_, b_;
};

TEST_F(NetFixture, DeliversWithLatency) {
  net_.send(Message{a_.id(), b_.id(), "ping", {1, 2, 3}, {}});
  sim_.run();
  ASSERT_EQ(b_.received.size(), 1u);
  EXPECT_EQ(b_.received[0].type, "ping");
  EXPECT_EQ(b_.received[0].payload, (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim_.now(), 10);
}

TEST_F(NetFixture, DownNodeDropsSilently) {
  net_.set_down(b_.id(), true);
  net_.send(Message{a_.id(), b_.id(), "ping", {}, {}});
  sim_.run();
  EXPECT_TRUE(b_.received.empty());
  net_.set_down(b_.id(), false);
  net_.send(Message{a_.id(), b_.id(), "ping", {}, {}});
  sim_.run();
  EXPECT_EQ(b_.received.size(), 1u);
}

TEST_F(NetFixture, NodeGoingDownInFlightLosesMessage) {
  net_.send(Message{a_.id(), b_.id(), "ping", {}, {}});
  sim_.schedule(5, [&] { net_.set_down(b_.id(), true); });
  sim_.run();
  EXPECT_TRUE(b_.received.empty());
}

TEST_F(NetFixture, DropRateLosesSomeMessages) {
  net_.set_drop_rate(0.5);
  for (int i = 0; i < 100; ++i)
    net_.send(Message{a_.id(), b_.id(), "ping", {}, {}});
  sim_.run();
  EXPECT_GT(b_.received.size(), 20u);
  EXPECT_LT(b_.received.size(), 80u);
}

TEST_F(NetFixture, ByteAccountingBothEnds) {
  net_.send(Message{a_.id(), b_.id(), "ping", std::vector<std::uint8_t>(96), {}});
  sim_.run();
  const std::size_t expected = encoded_size(WireFormat::kBinary, 4, 96);
  EXPECT_EQ(net_.bytes_sent(a_.id()), expected);
  EXPECT_EQ(net_.bytes_received(b_.id()), expected);
  EXPECT_EQ(net_.messages_sent(a_.id()), 1u);
  net_.reset_byte_counts();
  EXPECT_EQ(net_.bytes_sent(a_.id()), 0u);
}

TEST_F(NetFixture, SenderBytesCountedEvenWhenDropped) {
  // The sender pays for bytes it puts on the wire, delivered or not.
  net_.set_down(b_.id(), true);
  net_.send(Message{a_.id(), b_.id(), "ping", std::vector<std::uint8_t>(10), {}});
  sim_.run();
  EXPECT_GT(net_.bytes_sent(a_.id()), 0u);
  EXPECT_EQ(net_.bytes_received(b_.id()), 0u);
}

TEST_F(NetFixture, UnknownDestinationThrows) {
  EXPECT_THROW(net_.send(Message{a_.id(), 99, "x", {}, {}}),
               std::invalid_argument);
}

TEST_F(NetFixture, LinkFaultDropLosesOnlyThatDirection) {
  net_.set_link_fault(a_.id(), b_.id(), LinkFault{.drop = 1.0});
  for (int i = 0; i < 10; ++i) {
    net_.send(Message{a_.id(), b_.id(), "ping", {}, {}});
    net_.send(Message{b_.id(), a_.id(), "pong", {}, {}});
  }
  sim_.run();
  EXPECT_TRUE(b_.received.empty());       // faulted direction
  EXPECT_EQ(a_.received.size(), 10u);     // reverse direction untouched
  net_.clear_link_fault(a_.id(), b_.id());
  net_.send(Message{a_.id(), b_.id(), "ping", {}, {}});
  sim_.run();
  EXPECT_EQ(b_.received.size(), 1u);
}

TEST_F(NetFixture, LinkFaultExtraLatencyDelaysDelivery) {
  net_.set_link_fault(a_.id(), b_.id(), LinkFault{.extra_latency_ms = 90});
  net_.send(Message{a_.id(), b_.id(), "ping", {}, {}});
  sim_.run();
  ASSERT_EQ(b_.received.size(), 1u);
  EXPECT_DOUBLE_EQ(sim_.now(), 100);  // 10 base + 90 extra
}

TEST_F(NetFixture, LinkFaultDuplicateDeliversTwoCopies) {
  net_.set_link_fault(a_.id(), b_.id(), LinkFault{.duplicate = 1.0});
  net_.send(Message{a_.id(), b_.id(), "ping", {7}, {}});
  sim_.run();
  ASSERT_EQ(b_.received.size(), 2u);
  EXPECT_EQ(b_.received[0].payload, b_.received[1].payload);
}

TEST_F(NetFixture, LinkFaultReorderLetsLaterSendOvertake) {
  // First message held back by 50 ms; second sent right after overtakes it
  // (constant 10 ms base latency makes the schedule deterministic).
  net_.set_link_fault(a_.id(), b_.id(),
                      LinkFault{.reorder = 1.0, .reorder_hold_ms = 50});
  net_.send(Message{a_.id(), b_.id(), "first", {}, {}});
  net_.clear_link_fault(a_.id(), b_.id());
  net_.send(Message{a_.id(), b_.id(), "second", {}, {}});
  sim_.run();
  ASSERT_EQ(b_.received.size(), 2u);
  EXPECT_EQ(b_.received[0].type, "second");
  EXPECT_EQ(b_.received[1].type, "first");
}

// Trace-context propagation: the context is simulator metadata attached to
// the Message, so every delivered copy — including spurious duplicates and
// reordered stragglers — must carry the ORIGINAL send's context unchanged.
TEST_F(NetFixture, TraceContextSurvivesDuplication) {
  const obs::TraceContext ctx{42, 7};
  net_.set_link_fault(a_.id(), b_.id(), LinkFault{.duplicate = 1.0});
  net_.send(Message{a_.id(), b_.id(), "ping", {1}, ctx});
  sim_.run();
  ASSERT_EQ(b_.received.size(), 2u);
  EXPECT_EQ(b_.received[0].trace, ctx);
  EXPECT_EQ(b_.received[1].trace, ctx);
}

TEST_F(NetFixture, TraceContextSurvivesReordering) {
  const obs::TraceContext held{1, 10};
  const obs::TraceContext fast{2, 20};
  net_.set_link_fault(a_.id(), b_.id(),
                      LinkFault{.reorder = 1.0, .reorder_hold_ms = 50});
  net_.send(Message{a_.id(), b_.id(), "first", {}, held});
  net_.clear_link_fault(a_.id(), b_.id());
  net_.send(Message{a_.id(), b_.id(), "second", {}, fast});
  sim_.run();
  ASSERT_EQ(b_.received.size(), 2u);
  // The overtaking message and the straggler each keep their own context.
  EXPECT_EQ(b_.received[0].type, "second");
  EXPECT_EQ(b_.received[0].trace, fast);
  EXPECT_EQ(b_.received[1].type, "first");
  EXPECT_EQ(b_.received[1].trace, held);
}

// With a tracer attached, network anomalies on traced messages become
// events on the message's span — and tracing must not change what is
// delivered or counted.
TEST_F(NetFixture, TracerRecordsAnomalyEventsWithoutPerturbingDelivery) {
  obs::TraceSink sink;
  obs::Tracer tracer([this]() { return sim_.now(); }, &sink);
  net_.set_tracer(&tracer);
  const auto span = tracer.start_root("payment", a_.id());

  net_.set_link_fault(a_.id(), b_.id(), LinkFault{.duplicate = 1.0});
  net_.send(Message{a_.id(), b_.id(), "ping", {1}, span});
  sim_.run();  // deliver both copies before the receiver goes down
  net_.clear_link_fault(a_.id(), b_.id());
  net_.set_down(b_.id(), true);
  net_.send(Message{a_.id(), b_.id(), "ping", {2}, span});
  // Untraced messages never generate events, even through faults.
  net_.send(Message{a_.id(), b_.id(), "ping", {3}, {}});
  sim_.run();

  tracer.end_span(span);
  const std::string jsonl = sink.to_jsonl();
  EXPECT_NE(jsonl.find("net.dup"), std::string::npos);
  EXPECT_NE(jsonl.find("net.drop"), std::string::npos);
  EXPECT_EQ(sink.event_count(), 2u);  // one dup + one drop, nothing else
  ASSERT_EQ(b_.received.size(), 2u);  // both copies of the traced send
  EXPECT_EQ(net_.messages_sent(a_.id()), 3u);
  net_.set_tracer(nullptr);
}

// Satellite of the chaos PR: the byte-accounting contract must hold exactly
// under drops and duplication — one sent message per send() call no matter
// what the network does to it, one received count per delivered copy.
TEST_F(NetFixture, ByteCountersExactUnderDropsAndDuplicates) {
  const std::size_t wire = encoded_size(WireFormat::kBinary, 4, 32);
  // 5 sends on a link that drops everything.
  net_.set_link_fault(a_.id(), b_.id(), LinkFault{.drop = 1.0});
  for (int i = 0; i < 5; ++i)
    net_.send(Message{a_.id(), b_.id(), "ping", std::vector<std::uint8_t>(32), {}});
  // 3 sends on a link that duplicates everything.
  net_.set_link_fault(a_.id(), b_.id(), LinkFault{.duplicate = 1.0});
  for (int i = 0; i < 3; ++i)
    net_.send(Message{a_.id(), b_.id(), "ping", std::vector<std::uint8_t>(32), {}});
  sim_.run();
  EXPECT_EQ(net_.messages_sent(a_.id()), 8u);      // one per send() call
  EXPECT_EQ(net_.bytes_sent(a_.id()), 8 * wire);   // sender pays once each
  ASSERT_EQ(b_.received.size(), 6u);               // 3 doubled, 5 lost
  EXPECT_EQ(net_.bytes_received(b_.id()), 6 * wire);
}

TEST_F(NetFixture, PartitionCutsCrossTrafficAndHeals) {
  net_.set_partition({{a_.id()}, {b_.id()}});
  EXPECT_TRUE(net_.partitioned());
  EXPECT_TRUE(net_.partition_separates(a_.id(), b_.id()));
  net_.send(Message{a_.id(), b_.id(), "ping", {}, {}});
  net_.send(Message{b_.id(), a_.id(), "pong", {}, {}});
  sim_.run();
  EXPECT_TRUE(a_.received.empty());
  EXPECT_TRUE(b_.received.empty());
  net_.heal_partition();
  EXPECT_FALSE(net_.partition_separates(a_.id(), b_.id()));
  net_.send(Message{a_.id(), b_.id(), "ping", {}, {}});
  sim_.run();
  EXPECT_EQ(b_.received.size(), 1u);
}

TEST_F(NetFixture, FaultPlanCrashRunsHooksInOrder) {
  FaultPlan plan(net_);
  std::vector<std::string> events;
  plan.set_recovery_hooks(
      b_.id(),
      [&](NodeId) {
        events.push_back("crash");
        EXPECT_FALSE(net_.is_down(b_.id()));  // snapshot while still up
      },
      [&](NodeId) {
        events.push_back("restart");
        EXPECT_TRUE(net_.is_down(b_.id()));  // restore while still down
      });
  plan.schedule_crash(b_.id(), 100, 300);
  // Message during the outage vanishes; after restart traffic flows.
  sim_.schedule(150, [&] { net_.send(Message{a_.id(), b_.id(), "lost", {}, {}}); });
  sim_.schedule(350, [&] { net_.send(Message{a_.id(), b_.id(), "ok", {}, {}}); });
  sim_.run();
  EXPECT_EQ(events, (std::vector<std::string>{"crash", "restart"}));
  ASSERT_EQ(b_.received.size(), 1u);
  EXPECT_EQ(b_.received[0].type, "ok");
  EXPECT_FALSE(net_.is_down(b_.id()));
  EXPECT_EQ(plan.log().size(), 1u);
}

TEST_F(NetFixture, FaultPlanCrashWithoutRestartStaysDown) {
  FaultPlan plan(net_);
  plan.schedule_crash(b_.id(), 100, /*restart_at=*/50);  // restart < crash
  sim_.run();
  EXPECT_TRUE(net_.is_down(b_.id()));
}

TEST_F(NetFixture, FaultPlanSchedulesLinkFaultWindow) {
  FaultPlan plan(net_);
  plan.schedule_link_fault(a_.id(), b_.id(), LinkFault{.drop = 1.0}, 100, 200);
  EXPECT_EQ(net_.link_fault(a_.id(), b_.id()), nullptr);  // not yet active
  sim_.schedule(150, [&] {
    ASSERT_NE(net_.link_fault(a_.id(), b_.id()), nullptr);
    net_.send(Message{a_.id(), b_.id(), "during", {}, {}});
  });
  sim_.schedule(250, [&] {
    EXPECT_EQ(net_.link_fault(a_.id(), b_.id()), nullptr);  // cleared
    net_.send(Message{a_.id(), b_.id(), "after", {}, {}});
  });
  sim_.run();
  ASSERT_EQ(b_.received.size(), 1u);
  EXPECT_EQ(b_.received[0].type, "after");
}

TEST_F(NetFixture, FaultPlanSchedulesPartitionWithHeal) {
  FaultPlan plan(net_);
  plan.schedule_partition("split", {{a_.id()}, {b_.id()}}, 100, 200);
  sim_.schedule(150, [&] {
    EXPECT_TRUE(net_.partition_separates(a_.id(), b_.id()));
    net_.send(Message{a_.id(), b_.id(), "during", {}, {}});
  });
  sim_.schedule(250, [&] {
    EXPECT_FALSE(net_.partitioned());
    net_.send(Message{a_.id(), b_.id(), "after", {}, {}});
  });
  sim_.run();
  ASSERT_EQ(b_.received.size(), 1u);
  EXPECT_EQ(b_.received[0].type, "after");
}

TEST(FaultPlanRandom, SameSeedSameSchedule) {
  // randomize() must be a pure function of (options, rng seed): two plans
  // built from the same seed produce identical logs, a different seed a
  // different schedule.  This is what makes chaos failures reproducible
  // from the printed seed alone.
  auto build = [](std::uint64_t seed) {
    Simulator sim;
    crypto::ChaChaRng net_rng("fixed");
    Network net(sim, std::make_unique<ConstantLatency>(10), net_rng);
    struct Sink : Node {
      void on_message(const Message&) override {}
    };
    Sink nodes[4];
    FaultPlan::ChaosOptions opt;
    for (auto& n : nodes) {
      NodeId id = net.attach(n);
      opt.nodes.push_back(id);
      opt.crashable.push_back(id);
    }
    FaultPlan plan(net);
    crypto::ChaChaRng rng(seed);
    plan.randomize(opt, rng);
    return plan.log();
  };
  const auto log1 = build(42);
  const auto log2 = build(42);
  const auto log3 = build(43);
  EXPECT_FALSE(log1.empty());
  EXPECT_EQ(log1, log2);
  EXPECT_NE(log1, log3);
}

}  // namespace
}  // namespace p2pcash::simnet
