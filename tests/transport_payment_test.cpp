// The same actor-level payment scenarios over BOTH transports: SimWorld's
// deterministic simnet shim and NodeRuntime's real loopback TCP sockets.
// Passing both proves the Transport seam is behavior-preserving — the
// protocol logic in src/actors neither knows nor cares whether a message
// crossed a simulated link or a kernel socket.  The TCP half runs under
// TSan in CI (label "transport").

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "actors/runtime.h"
#include "actors/world.h"
#include "overlay/chord.h"

namespace p2pcash::actors {
namespace {

constexpr std::size_t kMerchants = 6;
constexpr simnet::SimTime kPayTimeoutMs = 8'000;

/// One payment deployment, abstracted over the transport underneath.
/// add_client() is only legal before start() (the TCP runtime fixes its
/// endpoint set when the io loop spawns; the sim world just doesn't care).
class Harness {
 public:
  virtual ~Harness() = default;
  virtual ClientActor& add_client() = 0;
  virtual void start() {}
  virtual std::vector<MerchantId> merchant_ids() = 0;
  virtual ecash::Outcome<ecash::WalletCoin> withdraw(ClientActor& client,
                                                     ecash::Cents denom) = 0;
  virtual ClientActor::PayResult pay(ClientActor& client,
                                     const ecash::WalletCoin& coin,
                                     const MerchantId& merchant) = 0;
  /// Two clients spending at the same instant (the double-spend race).
  virtual std::pair<ClientActor::PayResult, ClientActor::PayResult>
  pay_racing(ClientActor& c1, ClientActor& c2, const ecash::WalletCoin& coin,
             const MerchantId& m1, const MerchantId& m2) = 0;
  virtual void set_merchant_down(const MerchantId& id, bool down) = 0;
  virtual std::uint64_t services_delivered(const MerchantId& id) = 0;
  virtual const group::SchnorrGroup& grp() const = 0;
};

class SimHarness : public Harness {
 public:
  SimHarness()
      : grp_(group::SchnorrGroup::test_256()), world_(grp_, options()) {}

  static SimWorld::Options options() {
    SimWorld::Options opt;
    opt.merchants = kMerchants;
    opt.seed = 77;
    opt.cost = simnet::free_cost();
    opt.latency_lo = 25;
    opt.latency_hi = 50;
    opt.retry.attempt_timeout_ms = 500;
    opt.retry.max_attempts = 2;
    opt.breaker.open_ms = 500;
    return opt;
  }

  ClientActor& add_client() override { return world_.add_client(); }
  std::vector<MerchantId> merchant_ids() override {
    return world_.merchant_ids();
  }
  ecash::Outcome<ecash::WalletCoin> withdraw(ClientActor& client,
                                             ecash::Cents denom) override {
    std::optional<ecash::Outcome<ecash::WalletCoin>> result;
    client.withdraw(denom, [&](ecash::Outcome<ecash::WalletCoin> c) {
      result = std::move(c);
    });
    world_.sim().run();
    return std::move(*result);
  }
  ClientActor::PayResult pay(ClientActor& client,
                             const ecash::WalletCoin& coin,
                             const MerchantId& merchant) override {
    std::optional<ClientActor::PayResult> result;
    client.pay(coin, merchant,
               [&](ClientActor::PayResult r) { result = std::move(r); },
               kPayTimeoutMs);
    world_.sim().run();
    return std::move(*result);
  }
  std::pair<ClientActor::PayResult, ClientActor::PayResult> pay_racing(
      ClientActor& c1, ClientActor& c2, const ecash::WalletCoin& coin,
      const MerchantId& m1, const MerchantId& m2) override {
    std::optional<ClientActor::PayResult> r1, r2;
    c1.pay(coin, m1, [&](ClientActor::PayResult r) { r1 = std::move(r); },
           kPayTimeoutMs);
    c2.pay(coin, m2, [&](ClientActor::PayResult r) { r2 = std::move(r); },
           kPayTimeoutMs);
    world_.sim().run();
    return {std::move(*r1), std::move(*r2)};
  }
  void set_merchant_down(const MerchantId& id, bool down) override {
    world_.set_merchant_down(id, down);
  }
  std::uint64_t services_delivered(const MerchantId& id) override {
    return world_.merchant(id).services_delivered();
  }
  const group::SchnorrGroup& grp() const override { return grp_; }

 private:
  const group::SchnorrGroup& grp_;
  SimWorld world_;
};

class TcpHarness : public Harness {
 public:
  TcpHarness()
      : grp_(group::SchnorrGroup::test_256()), runtime_(grp_, options()) {}

  static NodeRuntime::Options options() {
    NodeRuntime::Options opt;
    opt.merchants = kMerchants;
    opt.worker_threads = 4;
    opt.seed = 77;
    opt.retry.attempt_timeout_ms = 500;
    opt.retry.max_attempts = 2;
    opt.breaker.open_ms = 500;
    // Tight reconnect pacing so the restart scenario converges quickly.
    opt.net.reconnect.backoff_base_ms = 10;
    opt.net.reconnect.backoff_cap_ms = 50;
    opt.net.reconnect.max_attempts = 200;
    opt.net.breaker.open_ms = 100;
    // CI sets P2PCASH_FLIGHT_ARTIFACT so a crash in a transport test dumps
    // the breadcrumb ring to an uploadable file.  Tests sit outside the
    // det_lint scope, so reading the environment HERE and passing it down
    // as an explicit option keeps the runtime itself deterministic.
    if (const char* artifact = std::getenv("P2PCASH_FLIGHT_ARTIFACT"))
      opt.flight_artifact = artifact;
    return opt;
  }

  ClientActor& add_client() override { return runtime_.add_client(); }
  void start() override { runtime_.start(); }
  std::vector<MerchantId> merchant_ids() override {
    return runtime_.merchant_ids();
  }
  ecash::Outcome<ecash::WalletCoin> withdraw(ClientActor& client,
                                             ecash::Cents denom) override {
    return runtime_.withdraw(client, denom);
  }
  ClientActor::PayResult pay(ClientActor& client,
                             const ecash::WalletCoin& coin,
                             const MerchantId& merchant) override {
    return runtime_.pay(client, coin, merchant, kPayTimeoutMs);
  }
  std::pair<ClientActor::PayResult, ClientActor::PayResult> pay_racing(
      ClientActor& c1, ClientActor& c2, const ecash::WalletCoin& coin,
      const MerchantId& m1, const MerchantId& m2) override {
    std::optional<ClientActor::PayResult> r1, r2;
    std::thread t1(
        [&] { r1 = runtime_.pay(c1, coin, m1, kPayTimeoutMs); });
    std::thread t2(
        [&] { r2 = runtime_.pay(c2, coin, m2, kPayTimeoutMs); });
    t1.join();
    t2.join();
    return {std::move(*r1), std::move(*r2)};
  }
  void set_merchant_down(const MerchantId& id, bool down) override {
    runtime_.set_merchant_down(id, down);
  }
  std::uint64_t services_delivered(const MerchantId& id) override {
    return runtime_.merchant_actor(id).merchant().services_delivered();
  }
  const group::SchnorrGroup& grp() const override { return grp_; }

 private:
  const group::SchnorrGroup& grp_;
  NodeRuntime runtime_;
};

ecash::WalletCoin must_withdraw(Harness& h, ClientActor& client) {
  auto outcome = h.withdraw(client, 100);
  EXPECT_TRUE(outcome.ok()) << outcome.refusal().detail;
  return std::move(outcome).value();
}

MerchantId non_witness_merchant(Harness& h, const ecash::WalletCoin& coin) {
  for (const auto& id : h.merchant_ids()) {
    bool is_witness = false;
    for (const auto& w : coin.coin.witnesses)
      if (w.merchant == id) is_witness = true;
    if (!is_witness) return id;
  }
  ADD_FAILURE() << "every merchant is a witness?";
  return h.merchant_ids().front();
}

// -- the scenarios, written once ------------------------------------------

void RunWithdrawScenario(Harness& h) {
  auto& client = h.add_client();
  h.start();
  auto coin = must_withdraw(h, client);
  EXPECT_EQ(coin.coin.bare.info.denomination, 100u);
  EXPECT_FALSE(coin.coin.witnesses.empty());
}

void RunPaymentScenario(Harness& h) {
  auto& client = h.add_client();
  h.start();
  auto coin = must_withdraw(h, client);
  auto target = non_witness_merchant(h, coin);
  auto result = h.pay(client, coin, target);
  EXPECT_TRUE(result.accepted) << (result.error ? *result.error : "");
  EXPECT_EQ(h.services_delivered(target), 1u);
}

void RunDoubleSpendScenario(Harness& h) {
  auto& client = h.add_client();
  h.start();
  auto coin = must_withdraw(h, client);
  auto ids = h.merchant_ids();
  auto r1 = h.pay(client, coin, ids[0]);
  auto r2 = h.pay(client, coin, ids[1]);
  EXPECT_TRUE(r1.accepted) << (r1.error ? *r1.error : "");
  EXPECT_FALSE(r2.accepted);
  ASSERT_TRUE(r2.double_spend_proof.has_value());
  EXPECT_TRUE(r2.double_spend_proof->verify(h.grp()));
}

void RunRacingDoubleSpendScenario(Harness& h) {
  // A coin is a bearer instrument: two client instances holding its secrets
  // fire at two merchants at the same instant.  The witness commitment
  // serializes the race — at most one payment may be accepted.
  auto& honest = h.add_client();
  auto& accomplice = h.add_client();
  h.start();
  auto coin = must_withdraw(h, honest);
  auto ids = h.merchant_ids();
  auto [r1, r2] = h.pay_racing(honest, accomplice, coin, ids[0], ids[1]);
  int successes = (r1.accepted ? 1 : 0) + (r2.accepted ? 1 : 0);
  EXPECT_LE(successes, 1);
}

void RunMerchantRestartScenario(Harness& h) {
  auto& client = h.add_client();
  h.start();
  auto coin = must_withdraw(h, client);
  auto target = non_witness_merchant(h, coin);
  h.set_merchant_down(target, true);
  auto failed = h.pay(client, coin, target);
  EXPECT_FALSE(failed.accepted);
  ASSERT_TRUE(failed.error.has_value());
  h.set_merchant_down(target, false);
  // A fresh coin spent at the restarted merchant: the full stack (dial,
  // framing, strands, actors) has recovered end to end.
  auto coin2 = must_withdraw(h, client);
  auto ok = h.pay(client, coin2, target);
  EXPECT_TRUE(ok.accepted) << (ok.error ? *ok.error : "");
}

// -- instantiated over both transports ------------------------------------

TEST(PaymentOverSimnet, Withdraw) { SimHarness h; RunWithdrawScenario(h); }
TEST(PaymentOverTcp, Withdraw) { TcpHarness h; RunWithdrawScenario(h); }

TEST(PaymentOverSimnet, PaymentSucceeds) {
  SimHarness h;
  RunPaymentScenario(h);
}
TEST(PaymentOverTcp, PaymentSucceeds) {
  TcpHarness h;
  RunPaymentScenario(h);
}

TEST(PaymentOverSimnet, DoubleSpendBlockedWithProof) {
  SimHarness h;
  RunDoubleSpendScenario(h);
}
TEST(PaymentOverTcp, DoubleSpendBlockedWithProof) {
  TcpHarness h;
  RunDoubleSpendScenario(h);
}

TEST(PaymentOverSimnet, RacingDoubleSpendAtMostOneWins) {
  SimHarness h;
  RunRacingDoubleSpendScenario(h);
}
TEST(PaymentOverTcp, RacingDoubleSpendAtMostOneWins) {
  TcpHarness h;
  RunRacingDoubleSpendScenario(h);
}

TEST(PaymentOverSimnet, MerchantRestartRecovery) {
  SimHarness h;
  RunMerchantRestartScenario(h);
}
TEST(PaymentOverTcp, MerchantRestartRecovery) {
  TcpHarness h;
  RunMerchantRestartScenario(h);
}

// -- TCP-only: wall-clock trace propagation over the wire ------------------
//
// The scenarios above prove behavior parity; these prove the OBSERVABILITY
// of the TCP half: a payment traced on the client stitches into one span
// tree across broker/merchant/witness nodes via the wire trace envelope,
// and stays stitched through retries, failover and reconnects.

/// Naive field extraction from one exported JSONL line (the export format
/// is pinned by obs_test's goldens, so string scanning is safe here).
std::uint64_t field_u64(const std::string& line, const char* key) {
  const std::string pat = std::string("\"") + key + "\":";
  const auto pos = line.find(pat);
  if (pos == std::string::npos) return 0;
  return std::strtoull(line.c_str() + pos + pat.size(), nullptr, 10);
}

double field_double(const std::string& line, const char* key) {
  const std::string pat = std::string("\"") + key + "\":";
  const auto pos = line.find(pat);
  if (pos == std::string::npos) return 0;
  return std::strtod(line.c_str() + pos + pat.size(), nullptr);
}

std::string field_str(const std::string& line, const char* key) {
  const std::string pat = std::string("\"") + key + "\":\"";
  const auto pos = line.find(pat);
  if (pos == std::string::npos) return {};
  const auto end = line.find('"', pos + pat.size());
  return line.substr(pos + pat.size(), end - pos - pat.size());
}

struct ParsedSpan {
  std::uint64_t trace = 0, span = 0, parent = 0, node = 0;
  std::string name;
  double start_ms = 0, end_ms = 0;
};

std::vector<ParsedSpan> parse_spans(const std::string& jsonl) {
  std::vector<ParsedSpan> out;
  std::size_t pos = 0;
  while (pos < jsonl.size()) {
    const auto nl = jsonl.find('\n', pos);
    const std::string line = jsonl.substr(pos, nl - pos);
    pos = nl == std::string::npos ? jsonl.size() : nl + 1;
    if (line.find("\"kind\":\"span\"") == std::string::npos) continue;
    ParsedSpan s;
    s.trace = field_u64(line, "trace");
    s.span = field_u64(line, "span");
    s.parent = field_u64(line, "parent");
    s.node = field_u64(line, "node");
    s.name = field_str(line, "name");
    s.start_ms = field_double(line, "start_ms");
    s.end_ms = field_double(line, "end_ms");
    out.push_back(std::move(s));
  }
  return out;
}

/// Polls the sink until a span with `name` appears (async phases like the
/// merchant's deposit land after the client's callback fires).
bool wait_for_span(NodeRuntime& rt, const std::string& name,
                   int timeout_ms = 10'000) {
  const std::string needle = "\"name\":\"" + name + "\"";
  for (int waited = 0; waited < timeout_ms; waited += 50) {
    if (rt.trace_sink().to_jsonl().find(needle) != std::string::npos)
      return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  return false;
}

TEST(PaymentOverTcp, TraceStitchesAcrossNodes) {
  auto& grp = group::SchnorrGroup::test_256();
  NodeRuntime rt(grp, TcpHarness::options());
  auto& client = rt.add_client();
  rt.start();

  auto outcome = rt.withdraw(client, 100);
  ASSERT_TRUE(outcome.ok()) << outcome.refusal().detail;
  auto coin = std::move(outcome).value();
  MerchantId target;
  for (const auto& id : rt.merchant_ids()) {
    bool is_witness = false;
    for (const auto& w : coin.coin.witnesses)
      if (w.merchant == id) is_witness = true;
    if (!is_witness) target = id;
  }
  ASSERT_FALSE(target.empty());
  auto result = rt.pay(client, coin, target, kPayTimeoutMs);
  ASSERT_TRUE(result.accepted) << (result.error ? *result.error : "");

  // Drive the deferred deposit so the trace reaches the final phase.
  rt.net().post(rt.merchant_node(target),
                [&] { rt.merchant_actor(target).flush_deposits(); });
  EXPECT_TRUE(wait_for_span(rt, "deposit"));
  rt.stop();

  const std::string jsonl = rt.trace_sink().to_jsonl();
  EXPECT_NE(jsonl.find("\"kind\":\"meta\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"transport\":\"tcp\""), std::string::npos);

  const auto spans = parse_spans(jsonl);
  std::map<std::uint64_t, const ParsedSpan*> by_id;
  for (const auto& s : spans) by_id[s.span] = &s;

  // Every non-root span resolves to an in-file parent in the same trace,
  // and never starts measurably before it — across ALL traces, which is
  // exactly what a cross-node stitch through the wire envelope must give.
  for (const auto& s : spans) {
    if (s.parent == 0) continue;
    const auto parent = by_id.find(s.parent);
    ASSERT_NE(parent, by_id.end())
        << "orphan span " << s.name << " (#" << s.span << ")";
    EXPECT_EQ(parent->second->trace, s.trace) << s.name;
    EXPECT_GE(s.start_ms, parent->second->start_ms - 1.0) << s.name;
  }

  // The payment trace covers every protocol phase, spanning client,
  // merchant, witness and broker nodes.
  std::uint64_t payment_trace = 0;
  for (const auto& s : spans)
    if (s.name == "payment" && s.parent == 0) payment_trace = s.trace;
  ASSERT_NE(payment_trace, 0u);
  std::map<std::string, const ParsedSpan*> phases;
  std::set<std::uint64_t> nodes;
  for (const auto& s : spans)
    if (s.trace == payment_trace) {
      phases.emplace(s.name, &s);
      nodes.insert(s.node);
    }
  for (const char* phase :
       {"payment", "payment_commit", "witness_sign", "witness_commit",
        "merchant_validate", "witness_countersign", "deposit"}) {
    EXPECT_TRUE(phases.count(phase)) << "payment trace missing " << phase;
  }
  EXPECT_GE(nodes.size(), 3u) << "payment trace did not cross nodes";
  // Server spans really ran on OTHER nodes than the client's root.
  ASSERT_TRUE(phases.count("payment") && phases.count("witness_commit"));
  EXPECT_NE(phases["payment"]->node, phases["witness_commit"]->node);

  // The withdraw trace exists too and reaches the broker.
  std::uint64_t withdraw_trace = 0;
  for (const auto& s : spans)
    if (s.name == "withdraw" && s.parent == 0) withdraw_trace = s.trace;
  ASSERT_NE(withdraw_trace, 0u);
  bool saw_broker_offer = false;
  for (const auto& s : spans)
    if (s.trace == withdraw_trace && s.name == "broker_withdraw_offer")
      saw_broker_offer = true;
  EXPECT_TRUE(saw_broker_offer);
}

TEST(PaymentOverTcp, TraceSurvivesMerchantRestart) {
  auto& grp = group::SchnorrGroup::test_256();
  NodeRuntime rt(grp, TcpHarness::options());
  auto& client = rt.add_client();
  rt.start();

  auto coin = std::move(rt.withdraw(client, 100)).value();
  MerchantId target;
  for (const auto& id : rt.merchant_ids()) {
    bool is_witness = false;
    for (const auto& w : coin.coin.witnesses)
      if (w.merchant == id) is_witness = true;
    if (!is_witness) target = id;
  }
  rt.set_merchant_down(target, true);
  auto failed = rt.pay(client, coin, target, kPayTimeoutMs);
  EXPECT_FALSE(failed.accepted);
  rt.set_merchant_down(target, false);
  auto coin2 = std::move(rt.withdraw(client, 100)).value();
  auto ok = rt.pay(client, coin2, target, kPayTimeoutMs);
  EXPECT_TRUE(ok.accepted) << (ok.error ? *ok.error : "");
  rt.stop();

  // The failed attempt left retry/silence breadcrumbs in its trace, the
  // transport recorded the outage, and the post-restart payment still
  // produced a complete, stitched tree.
  const std::string jsonl = rt.trace_sink().to_jsonl();
  EXPECT_TRUE(jsonl.find("rpc.retry") != std::string::npos ||
              jsonl.find("rpc.silence") != std::string::npos ||
              jsonl.find("rpc.exhausted") != std::string::npos)
      << jsonl;
  const std::string flight = rt.flight_recorder().dump_to_string();
  EXPECT_NE(flight.find("net.node_down"), std::string::npos) << flight;
  EXPECT_NE(flight.find("net.node_up"), std::string::npos);

  const auto spans = parse_spans(jsonl);
  std::map<std::uint64_t, const ParsedSpan*> by_id;
  for (const auto& s : spans) by_id[s.span] = &s;
  for (const auto& s : spans) {
    if (s.parent == 0) continue;
    const auto parent = by_id.find(s.parent);
    ASSERT_NE(parent, by_id.end()) << "orphan span " << s.name;
    EXPECT_EQ(parent->second->trace, s.trace);
  }
}

TEST(PaymentOverTcp, WitnessFailoverStampsTheTrace) {
  auto& grp = group::SchnorrGroup::test_256();
  auto opt = TcpHarness::options();
  opt.broker.witness_n = 2;  // a spare to fail over to
  opt.broker.witness_k = 1;
  NodeRuntime rt(grp, opt);
  auto& client = rt.add_client();
  rt.start();

  auto coin = std::move(rt.withdraw(client, 100)).value();
  ASSERT_GE(coin.coin.witnesses.size(), 2u);
  // "Primary" = first in the client's engage order (chord walk from the
  // coin's witness point) — same recipe as the chaos failover scenario.
  const bn::BigInt key = coin.coin.bare.witness_point(0);
  std::vector<bn::BigInt> points;
  for (const auto& entry : coin.coin.witnesses) points.push_back(entry.lo);
  const auto order = overlay::failover_order(key, points);
  const auto primary = coin.coin.witnesses[order.front()].merchant;
  rt.set_merchant_down(primary, true);

  MerchantId target;
  for (const auto& id : rt.merchant_ids()) {
    bool is_witness = false;
    for (const auto& w : coin.coin.witnesses)
      if (w.merchant == id) is_witness = true;
    if (!is_witness) target = id;
  }
  auto result = rt.pay(client, coin, target, kPayTimeoutMs);
  EXPECT_TRUE(result.accepted) << (result.error ? *result.error : "");
  rt.stop();

  EXPECT_GE(client.resilience().failovers, 1u);
  // The failover is visible in the payment's own trace, not just in
  // aggregate counters.
  const auto spans = parse_spans(rt.trace_sink().to_jsonl());
  std::uint64_t payment_trace = 0;
  for (const auto& s : spans)
    if (s.name == "payment" && s.parent == 0) payment_trace = s.trace;
  ASSERT_NE(payment_trace, 0u);
  const std::string trace = rt.trace_sink().trace_jsonl(payment_trace);
  EXPECT_NE(trace.find("rpc.failover"), std::string::npos) << trace;
}

TEST(PaymentOverTcp, LiveScrapeServesTransportMetrics) {
  auto& grp = group::SchnorrGroup::test_256();
  NodeRuntime rt(grp, TcpHarness::options());
  auto& client = rt.add_client();
  rt.start();
  const std::uint16_t port = rt.start_obs_server(0);
  ASSERT_NE(port, 0);

  auto coin = std::move(rt.withdraw(client, 100)).value();
  auto result = rt.pay(client, coin, coin.coin.witnesses.front().merchant,
                       kPayTimeoutMs);
  // Accepted or not, traffic flowed; scrape the live node mid-run.
  auto http_get = [port](const std::string& target) {
    std::string raw;
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return raw;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0) {
      const std::string req = "GET " + target + " HTTP/1.0\r\n\r\n";
      (void)::send(fd, req.data(), req.size(), 0);
      char buf[4096];
      ssize_t n;
      while ((n = ::recv(fd, buf, sizeof buf, 0)) > 0)
        raw.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);
    return raw;
  };

  const std::string metrics = http_get("/metrics");
  EXPECT_NE(metrics.find("200 OK"), std::string::npos);
  // Transport/pool/span instrumentation is all flowing into one registry.
  EXPECT_NE(metrics.find("transport_messages_sent_total"),
            std::string::npos);
  EXPECT_NE(metrics.find("transport_pool_queue_delay_ms"), std::string::npos);
  EXPECT_NE(metrics.find("span_payment_ms"), std::string::npos);
  const std::string health = http_get("/healthz");
  EXPECT_NE(health.find("200 OK"), std::string::npos);
  const std::string traces = http_get("/tracez");
  EXPECT_NE(traces.find("\"transport\":\"tcp\""), std::string::npos);
  rt.stop();
}

}  // namespace
}  // namespace p2pcash::actors
