// The same actor-level payment scenarios over BOTH transports: SimWorld's
// deterministic simnet shim and NodeRuntime's real loopback TCP sockets.
// Passing both proves the Transport seam is behavior-preserving — the
// protocol logic in src/actors neither knows nor cares whether a message
// crossed a simulated link or a kernel socket.  The TCP half runs under
// TSan in CI (label "transport").

#include <gtest/gtest.h>

#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "actors/runtime.h"
#include "actors/world.h"

namespace p2pcash::actors {
namespace {

constexpr std::size_t kMerchants = 6;
constexpr simnet::SimTime kPayTimeoutMs = 8'000;

/// One payment deployment, abstracted over the transport underneath.
/// add_client() is only legal before start() (the TCP runtime fixes its
/// endpoint set when the io loop spawns; the sim world just doesn't care).
class Harness {
 public:
  virtual ~Harness() = default;
  virtual ClientActor& add_client() = 0;
  virtual void start() {}
  virtual std::vector<MerchantId> merchant_ids() = 0;
  virtual ecash::Outcome<ecash::WalletCoin> withdraw(ClientActor& client,
                                                     ecash::Cents denom) = 0;
  virtual ClientActor::PayResult pay(ClientActor& client,
                                     const ecash::WalletCoin& coin,
                                     const MerchantId& merchant) = 0;
  /// Two clients spending at the same instant (the double-spend race).
  virtual std::pair<ClientActor::PayResult, ClientActor::PayResult>
  pay_racing(ClientActor& c1, ClientActor& c2, const ecash::WalletCoin& coin,
             const MerchantId& m1, const MerchantId& m2) = 0;
  virtual void set_merchant_down(const MerchantId& id, bool down) = 0;
  virtual std::uint64_t services_delivered(const MerchantId& id) = 0;
  virtual const group::SchnorrGroup& grp() const = 0;
};

class SimHarness : public Harness {
 public:
  SimHarness()
      : grp_(group::SchnorrGroup::test_256()), world_(grp_, options()) {}

  static SimWorld::Options options() {
    SimWorld::Options opt;
    opt.merchants = kMerchants;
    opt.seed = 77;
    opt.cost = simnet::free_cost();
    opt.latency_lo = 25;
    opt.latency_hi = 50;
    opt.retry.attempt_timeout_ms = 500;
    opt.retry.max_attempts = 2;
    opt.breaker.open_ms = 500;
    return opt;
  }

  ClientActor& add_client() override { return world_.add_client(); }
  std::vector<MerchantId> merchant_ids() override {
    return world_.merchant_ids();
  }
  ecash::Outcome<ecash::WalletCoin> withdraw(ClientActor& client,
                                             ecash::Cents denom) override {
    std::optional<ecash::Outcome<ecash::WalletCoin>> result;
    client.withdraw(denom, [&](ecash::Outcome<ecash::WalletCoin> c) {
      result = std::move(c);
    });
    world_.sim().run();
    return std::move(*result);
  }
  ClientActor::PayResult pay(ClientActor& client,
                             const ecash::WalletCoin& coin,
                             const MerchantId& merchant) override {
    std::optional<ClientActor::PayResult> result;
    client.pay(coin, merchant,
               [&](ClientActor::PayResult r) { result = std::move(r); },
               kPayTimeoutMs);
    world_.sim().run();
    return std::move(*result);
  }
  std::pair<ClientActor::PayResult, ClientActor::PayResult> pay_racing(
      ClientActor& c1, ClientActor& c2, const ecash::WalletCoin& coin,
      const MerchantId& m1, const MerchantId& m2) override {
    std::optional<ClientActor::PayResult> r1, r2;
    c1.pay(coin, m1, [&](ClientActor::PayResult r) { r1 = std::move(r); },
           kPayTimeoutMs);
    c2.pay(coin, m2, [&](ClientActor::PayResult r) { r2 = std::move(r); },
           kPayTimeoutMs);
    world_.sim().run();
    return {std::move(*r1), std::move(*r2)};
  }
  void set_merchant_down(const MerchantId& id, bool down) override {
    world_.set_merchant_down(id, down);
  }
  std::uint64_t services_delivered(const MerchantId& id) override {
    return world_.merchant(id).services_delivered();
  }
  const group::SchnorrGroup& grp() const override { return grp_; }

 private:
  const group::SchnorrGroup& grp_;
  SimWorld world_;
};

class TcpHarness : public Harness {
 public:
  TcpHarness()
      : grp_(group::SchnorrGroup::test_256()), runtime_(grp_, options()) {}

  static NodeRuntime::Options options() {
    NodeRuntime::Options opt;
    opt.merchants = kMerchants;
    opt.worker_threads = 4;
    opt.seed = 77;
    opt.retry.attempt_timeout_ms = 500;
    opt.retry.max_attempts = 2;
    opt.breaker.open_ms = 500;
    // Tight reconnect pacing so the restart scenario converges quickly.
    opt.net.reconnect.backoff_base_ms = 10;
    opt.net.reconnect.backoff_cap_ms = 50;
    opt.net.reconnect.max_attempts = 200;
    opt.net.breaker.open_ms = 100;
    return opt;
  }

  ClientActor& add_client() override { return runtime_.add_client(); }
  void start() override { runtime_.start(); }
  std::vector<MerchantId> merchant_ids() override {
    return runtime_.merchant_ids();
  }
  ecash::Outcome<ecash::WalletCoin> withdraw(ClientActor& client,
                                             ecash::Cents denom) override {
    return runtime_.withdraw(client, denom);
  }
  ClientActor::PayResult pay(ClientActor& client,
                             const ecash::WalletCoin& coin,
                             const MerchantId& merchant) override {
    return runtime_.pay(client, coin, merchant, kPayTimeoutMs);
  }
  std::pair<ClientActor::PayResult, ClientActor::PayResult> pay_racing(
      ClientActor& c1, ClientActor& c2, const ecash::WalletCoin& coin,
      const MerchantId& m1, const MerchantId& m2) override {
    std::optional<ClientActor::PayResult> r1, r2;
    std::thread t1(
        [&] { r1 = runtime_.pay(c1, coin, m1, kPayTimeoutMs); });
    std::thread t2(
        [&] { r2 = runtime_.pay(c2, coin, m2, kPayTimeoutMs); });
    t1.join();
    t2.join();
    return {std::move(*r1), std::move(*r2)};
  }
  void set_merchant_down(const MerchantId& id, bool down) override {
    runtime_.set_merchant_down(id, down);
  }
  std::uint64_t services_delivered(const MerchantId& id) override {
    return runtime_.merchant_actor(id).merchant().services_delivered();
  }
  const group::SchnorrGroup& grp() const override { return grp_; }

 private:
  const group::SchnorrGroup& grp_;
  NodeRuntime runtime_;
};

ecash::WalletCoin must_withdraw(Harness& h, ClientActor& client) {
  auto outcome = h.withdraw(client, 100);
  EXPECT_TRUE(outcome.ok()) << outcome.refusal().detail;
  return std::move(outcome).value();
}

MerchantId non_witness_merchant(Harness& h, const ecash::WalletCoin& coin) {
  for (const auto& id : h.merchant_ids()) {
    bool is_witness = false;
    for (const auto& w : coin.coin.witnesses)
      if (w.merchant == id) is_witness = true;
    if (!is_witness) return id;
  }
  ADD_FAILURE() << "every merchant is a witness?";
  return h.merchant_ids().front();
}

// -- the scenarios, written once ------------------------------------------

void RunWithdrawScenario(Harness& h) {
  auto& client = h.add_client();
  h.start();
  auto coin = must_withdraw(h, client);
  EXPECT_EQ(coin.coin.bare.info.denomination, 100u);
  EXPECT_FALSE(coin.coin.witnesses.empty());
}

void RunPaymentScenario(Harness& h) {
  auto& client = h.add_client();
  h.start();
  auto coin = must_withdraw(h, client);
  auto target = non_witness_merchant(h, coin);
  auto result = h.pay(client, coin, target);
  EXPECT_TRUE(result.accepted) << (result.error ? *result.error : "");
  EXPECT_EQ(h.services_delivered(target), 1u);
}

void RunDoubleSpendScenario(Harness& h) {
  auto& client = h.add_client();
  h.start();
  auto coin = must_withdraw(h, client);
  auto ids = h.merchant_ids();
  auto r1 = h.pay(client, coin, ids[0]);
  auto r2 = h.pay(client, coin, ids[1]);
  EXPECT_TRUE(r1.accepted) << (r1.error ? *r1.error : "");
  EXPECT_FALSE(r2.accepted);
  ASSERT_TRUE(r2.double_spend_proof.has_value());
  EXPECT_TRUE(r2.double_spend_proof->verify(h.grp()));
}

void RunRacingDoubleSpendScenario(Harness& h) {
  // A coin is a bearer instrument: two client instances holding its secrets
  // fire at two merchants at the same instant.  The witness commitment
  // serializes the race — at most one payment may be accepted.
  auto& honest = h.add_client();
  auto& accomplice = h.add_client();
  h.start();
  auto coin = must_withdraw(h, honest);
  auto ids = h.merchant_ids();
  auto [r1, r2] = h.pay_racing(honest, accomplice, coin, ids[0], ids[1]);
  int successes = (r1.accepted ? 1 : 0) + (r2.accepted ? 1 : 0);
  EXPECT_LE(successes, 1);
}

void RunMerchantRestartScenario(Harness& h) {
  auto& client = h.add_client();
  h.start();
  auto coin = must_withdraw(h, client);
  auto target = non_witness_merchant(h, coin);
  h.set_merchant_down(target, true);
  auto failed = h.pay(client, coin, target);
  EXPECT_FALSE(failed.accepted);
  ASSERT_TRUE(failed.error.has_value());
  h.set_merchant_down(target, false);
  // A fresh coin spent at the restarted merchant: the full stack (dial,
  // framing, strands, actors) has recovered end to end.
  auto coin2 = must_withdraw(h, client);
  auto ok = h.pay(client, coin2, target);
  EXPECT_TRUE(ok.accepted) << (ok.error ? *ok.error : "");
}

// -- instantiated over both transports ------------------------------------

TEST(PaymentOverSimnet, Withdraw) { SimHarness h; RunWithdrawScenario(h); }
TEST(PaymentOverTcp, Withdraw) { TcpHarness h; RunWithdrawScenario(h); }

TEST(PaymentOverSimnet, PaymentSucceeds) {
  SimHarness h;
  RunPaymentScenario(h);
}
TEST(PaymentOverTcp, PaymentSucceeds) {
  TcpHarness h;
  RunPaymentScenario(h);
}

TEST(PaymentOverSimnet, DoubleSpendBlockedWithProof) {
  SimHarness h;
  RunDoubleSpendScenario(h);
}
TEST(PaymentOverTcp, DoubleSpendBlockedWithProof) {
  TcpHarness h;
  RunDoubleSpendScenario(h);
}

TEST(PaymentOverSimnet, RacingDoubleSpendAtMostOneWins) {
  SimHarness h;
  RunRacingDoubleSpendScenario(h);
}
TEST(PaymentOverTcp, RacingDoubleSpendAtMostOneWins) {
  TcpHarness h;
  RunRacingDoubleSpendScenario(h);
}

TEST(PaymentOverSimnet, MerchantRestartRecovery) {
  SimHarness h;
  RunMerchantRestartScenario(h);
}
TEST(PaymentOverTcp, MerchantRestartRecovery) {
  TcpHarness h;
  RunMerchantRestartScenario(h);
}

}  // namespace
}  // namespace p2pcash::actors
