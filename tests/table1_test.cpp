// Table-1 regression: the measured crypto-op counts of each protocol, per
// role, pinned against the paper's reported numbers (with the documented
// ±1 hash deviations — see EXPERIMENTS.md).
//
// These tests make the cost model auditable: if a refactor adds or removes
// an exponentiation anywhere on the protocol path, a number here moves.

#include <gtest/gtest.h>

#include "ecash_fixture.h"
#include "metrics/counters.h"

namespace p2pcash::ecash {
namespace {

using metrics::OpCounters;
using metrics::ScopedOpCounting;
using testing::EcashTest;

class Table1Test : public EcashTest {};

TEST_F(Table1Test, WithdrawalClient12Exp4Hash1Ver) {
  auto offer = dep_.broker().start_withdrawal(100, 1000);
  ASSERT_TRUE(offer.ok());
  OpCounters ops;
  Wallet::Withdrawal state = [&] {
    ScopedOpCounting guard(ops);
    return wallet_->begin_withdrawal(offer.value());
  }();
  auto response = dep_.broker().finish_withdrawal(state.session, state.e);
  ASSERT_TRUE(response.ok());
  {
    ScopedOpCounting guard(ops);
    auto coin = wallet_->complete_withdrawal(state, response.value(),
                                             dep_.broker().current_table());
    ASSERT_TRUE(coin.ok());
  }
  EXPECT_EQ(ops.exp, 12u);   // paper: 12
  EXPECT_EQ(ops.hash, 4u);   // paper: 4
  EXPECT_EQ(ops.sig, 0u);    // paper: 0
  EXPECT_EQ(ops.ver, 1u);    // paper: 1
}

TEST_F(Table1Test, WithdrawalBroker3Exp1Hash) {
  OpCounters ops;
  std::uint64_t session = 0;
  bn::BigInt e;
  {
    ScopedOpCounting guard(ops);
    auto offer = dep_.broker().start_withdrawal(100, 1000);
    ASSERT_TRUE(offer.ok());
    session = offer.value().session;
    auto state = [&] {
      metrics::ScopedSuspendOpCounting suspend;  // client work not broker's
      return wallet_->begin_withdrawal(offer.value());
    }();
    e = state.e;
  }
  {
    ScopedOpCounting guard(ops);
    auto response = dep_.broker().finish_withdrawal(session, e);
    ASSERT_TRUE(response.ok());
  }
  EXPECT_EQ(ops.exp, 3u);   // paper: 3
  EXPECT_EQ(ops.hash, 1u);  // paper: 1
  EXPECT_EQ(ops.sig, 0u);
  EXPECT_EQ(ops.ver, 0u);
}

struct PaymentOps {
  OpCounters client, witness, merchant;
};

class PaymentOpsFixture : public EcashTest {
 protected:
  /// Runs one full payment, attributing ops to each role.
  PaymentOps run_payment(const WalletCoin& coin, const MerchantId& mid,
                         Timestamp now) {
    PaymentOps ops;
    auto& witness = *dep_.node(coin.coin.witnesses[0].merchant).witness;
    auto& storefront = *dep_.node(mid).merchant;

    Wallet::PaymentIntent intent;
    {
      ScopedOpCounting guard(ops.client);
      intent = wallet_->prepare_payment(coin, mid);
    }
    Outcome<WitnessCommitment> commitment =
        Refusal{RefusalReason::kInternal, ""};
    {
      ScopedOpCounting guard(ops.witness);
      commitment =
          witness.request_commitment(intent.coin_hash, intent.nonce, now);
    }
    EXPECT_TRUE(commitment.ok());
    Outcome<PaymentTranscript> transcript =
        Refusal{RefusalReason::kInternal, ""};
    {
      ScopedOpCounting guard(ops.client);
      transcript = wallet_->build_transcript(coin, intent,
                                             {commitment.value()}, now + 10);
    }
    EXPECT_TRUE(transcript.ok());
    {
      ScopedOpCounting guard(ops.merchant);
      auto ok = storefront.receive_payment(transcript.value(),
                                           {commitment.value()}, now + 20);
      EXPECT_TRUE(ok.ok()) << (ok.ok() ? "" : ok.refusal().detail);
    }
    Outcome<SignResult> sign = Refusal{RefusalReason::kInternal, ""};
    {
      ScopedOpCounting guard(ops.witness);
      sign = witness.sign_transcript(transcript.value(), now + 30);
    }
    EXPECT_TRUE(sign.ok());
    {
      ScopedOpCounting guard(ops.merchant);
      auto done = storefront.add_endorsement(
          intent.coin_hash, std::get<WitnessEndorsement>(sign.value()));
      EXPECT_TRUE(done.ok());
    }
    return ops;
  }
};

TEST_F(PaymentOpsFixture, PaymentMatchesTable1) {
  auto coin = withdraw();
  auto mid = non_witness_merchant(coin);
  auto ops = run_payment(coin, mid, 2000);

  // Client row — paper: 0 Exp, 3 Hash, 0 Sig, 1 Ver.
  EXPECT_EQ(ops.client.exp, 0u);
  EXPECT_EQ(ops.client.hash, 3u);
  EXPECT_EQ(ops.client.sig, 0u);
  EXPECT_EQ(ops.client.ver, 1u);

  // Witness row — paper: 7 Exp, 6 Hash, 2 Sig, 1 Ver. Exact match.
  EXPECT_EQ(ops.witness.exp, 7u);
  EXPECT_EQ(ops.witness.hash, 6u);
  EXPECT_EQ(ops.witness.sig, 2u);
  EXPECT_EQ(ops.witness.ver, 1u);

  // Merchant row — paper: 7 Exp, 6 Hash, 0 Sig, 3 Ver. Exact match.
  EXPECT_EQ(ops.merchant.exp, 7u);
  EXPECT_EQ(ops.merchant.hash, 6u);
  EXPECT_EQ(ops.merchant.sig, 0u);
  EXPECT_EQ(ops.merchant.ver, 3u);
}

TEST_F(Table1Test, DepositMerchant0Broker6Exp4Hash1Ver) {
  auto coin = withdraw();
  auto mid = non_witness_merchant(coin);
  ASSERT_TRUE(dep_.pay(*wallet_, coin, mid, 2000).accepted);
  auto queue = dep_.node(mid).merchant->drain_deposit_queue();
  ASSERT_EQ(queue.size(), 1u);

  // Merchant side of deposit: just sends the stored transcript — 0 ops.
  OpCounters merchant_ops;
  {
    ScopedOpCounting guard(merchant_ops);
    auto bytes = wire::encode(queue[0]);
    (void)bytes;
  }
  EXPECT_EQ(merchant_ops, OpCounters{});  // paper: 0/0/0/0

  OpCounters broker_ops;
  {
    ScopedOpCounting guard(broker_ops);
    auto receipt = dep_.broker().deposit(mid, queue[0], 5000);
    ASSERT_TRUE(receipt.ok());
  }
  EXPECT_EQ(broker_ops.exp, 6u);   // paper: 6 (3 own-sig fast path + 3 NIZK)
  EXPECT_EQ(broker_ops.hash, 4u);  // paper: 4
  EXPECT_EQ(broker_ops.sig, 0u);
  EXPECT_EQ(broker_ops.ver, 1u);   // paper: 1 (witness endorsement)
}

TEST_F(Table1Test, RenewalClient12Exp5Hash1VerBroker9Exp4Hash) {
  auto coin = withdraw(100, 1000);
  Timestamp when = coin.coin.bare.info.soft_expiry +
                   dep_.broker().config().deposit_grace_ms + 1000;

  OpCounters client_ops, broker_ops;
  Broker::RenewalOffer offer;
  {
    ScopedOpCounting guard(broker_ops);
    auto outcome = dep_.broker().start_renewal(100, when);
    ASSERT_TRUE(outcome.ok());
    offer = outcome.value();
  }
  // The client computes the renewal challenge d* itself (the paper's 5th
  // client Hash); the broker recomputes it inside finish_renewal.
  bn::BigInt challenge;
  {
    ScopedOpCounting guard(client_ops);
    challenge = dep_.broker().renewal_challenge(coin.coin, when);
  }
  Wallet::Renewal state = [&] {
    ScopedOpCounting guard(client_ops);
    return wallet_->begin_renewal(coin, offer, challenge, when);
  }();
  Outcome<blindsig::SignerResponse> response =
      Refusal{RefusalReason::kInternal, ""};
  {
    ScopedOpCounting guard(broker_ops);
    response = dep_.broker().finish_renewal(
        state.session, state.e, coin.coin, state.old_proof,
        state.datetime, when);
  }
  ASSERT_TRUE(response.ok());
  {
    ScopedOpCounting guard(client_ops);
    auto renewed = wallet_->complete_renewal(state, response.value(),
                                             dep_.broker().current_table());
    ASSERT_TRUE(renewed.ok());
  }
  // Client — paper: 12 Exp, 5 Hash, 0 Sig, 1 Ver. Exact match.
  EXPECT_EQ(client_ops.exp, 12u);
  EXPECT_EQ(client_ops.hash, 5u);
  EXPECT_EQ(client_ops.sig, 0u);
  EXPECT_EQ(client_ops.ver, 1u);
  // Broker — paper: 9 Exp, 4 Hash. We measure 5 Hash: +1 for h(bare coin)
  // keying the renewal database (see EXPERIMENTS.md).
  EXPECT_EQ(broker_ops.exp, 9u);
  EXPECT_EQ(broker_ops.hash, 5u);
  EXPECT_EQ(broker_ops.sig, 0u);
  EXPECT_EQ(broker_ops.ver, 0u);
}

TEST_F(PaymentOpsFixture, DoubleSpendDeltasMatchPaper) {
  // §7: on a double spend the merchant does 2 extra Exp (verify the
  // revealed representation) and one Ver less (no transcript signature to
  // check).
  auto coin = withdraw();
  auto ids = dep_.merchant_ids();
  MerchantId m1, m2;
  for (const auto& id : ids) {
    if (id == coin.coin.witnesses[0].merchant) continue;
    if (m1.empty())
      m1 = id;
    else if (m2.empty())
      m2 = id;
  }
  ASSERT_TRUE(dep_.pay(*wallet_, coin, m1, 2000).accepted);

  auto& witness = *dep_.node(coin.coin.witnesses[0].merchant).witness;
  auto& storefront = *dep_.node(m2).merchant;
  Timestamp later = 2000 + witness.commitment_ttl() + 100;
  auto intent = wallet_->prepare_payment(coin, m2);
  auto commitment =
      witness.request_commitment(intent.coin_hash, intent.nonce, later);
  ASSERT_TRUE(commitment.ok());
  auto transcript = wallet_->build_transcript(coin, intent,
                                              {commitment.value()}, later + 10);
  ASSERT_TRUE(transcript.ok());
  ASSERT_TRUE(storefront
                  .receive_payment(transcript.value(), {commitment.value()},
                                   later + 20)
                  .ok());
  auto sign = witness.sign_transcript(transcript.value(), later + 30);
  ASSERT_TRUE(sign.ok());
  const auto* proof = std::get_if<DoubleSpendProof>(&sign.value());
  ASSERT_NE(proof, nullptr);

  OpCounters merchant_ops;
  {
    ScopedOpCounting guard(merchant_ops);
    auto judged = storefront.handle_double_spend(intent.coin_hash, *proof);
    EXPECT_TRUE(judged.ok());
  }
  // Verifying the double-spend proof costs 4 Exp (both representations; the
  // paper's "2 additional exponentiations" verifies one of them), 0 Ver.
  EXPECT_EQ(merchant_ops.exp, 4u);
  EXPECT_EQ(merchant_ops.ver, 0u);
}

}  // namespace
}  // namespace p2pcash::ecash
