// Unit and property tests for the arbitrary-precision integer core.

#include "bn/bigint.h"

#include <gtest/gtest.h>

#include <limits>

#include "crypto/chacha.h"

namespace p2pcash::bn {
namespace {

TEST(BigIntConstruct, DefaultIsZero) {
  BigInt z;
  EXPECT_TRUE(z.is_zero());
  EXPECT_FALSE(z.is_negative());
  EXPECT_EQ(z.bit_length(), 0u);
  EXPECT_EQ(z.to_dec(), "0");
  EXPECT_EQ(z.to_hex(), "0");
}

TEST(BigIntConstruct, SmallValues) {
  EXPECT_EQ(BigInt{42}.to_dec(), "42");
  EXPECT_EQ(BigInt{-42}.to_dec(), "-42");
  EXPECT_EQ(BigInt{0}.to_dec(), "0");
  EXPECT_EQ(BigInt{1}.to_hex(), "1");
  EXPECT_EQ(BigInt{255}.to_hex(), "ff");
}

TEST(BigIntConstruct, Int64Extremes) {
  BigInt max_val{std::int64_t{0x7fffffffffffffff}};
  EXPECT_EQ(max_val.to_hex(), "7fffffffffffffff");
  BigInt min_val{std::numeric_limits<std::int64_t>::min()};
  EXPECT_EQ(min_val.to_hex(), "-8000000000000000");
  EXPECT_EQ(min_val.to_int64(), std::numeric_limits<std::int64_t>::min());
}

TEST(BigIntConstruct, Uint64Full) {
  BigInt v{std::uint64_t{0xffffffffffffffffull}};
  EXPECT_EQ(v.to_hex(), "ffffffffffffffff");
  EXPECT_EQ(v.bit_length(), 64u);
}

TEST(BigIntParse, DecimalRoundTrip) {
  const char* cases[] = {"0", "1", "9", "10", "999999999", "1000000000",
                         "123456789012345678901234567890",
                         "-123456789012345678901234567890"};
  for (const char* s : cases) {
    EXPECT_EQ(BigInt::from_dec(s).to_dec(), s) << s;
  }
}

TEST(BigIntParse, HexRoundTrip) {
  const char* cases[] = {"1", "f", "10", "deadbeef",
                         "ffffffffffffffffffffffffffffffff",
                         "123456789abcdef0123456789abcdef"};
  for (const char* s : cases) {
    EXPECT_EQ(BigInt::from_hex(s).to_hex(), s) << s;
  }
}

TEST(BigIntParse, FromStringDispatches) {
  EXPECT_EQ(BigInt::from_string("0xff").to_dec(), "255");
  EXPECT_EQ(BigInt::from_string("-0xff").to_dec(), "-255");
  EXPECT_EQ(BigInt::from_string("255").to_dec(), "255");
  EXPECT_EQ(BigInt::from_string("-255").to_dec(), "-255");
  EXPECT_EQ(BigInt::from_string("+7").to_dec(), "7");
}

TEST(BigIntParse, RejectsGarbage) {
  EXPECT_THROW(BigInt::from_dec(""), std::invalid_argument);
  EXPECT_THROW(BigInt::from_dec("12a"), std::invalid_argument);
  EXPECT_THROW(BigInt::from_dec("-"), std::invalid_argument);
  EXPECT_THROW(BigInt::from_hex(""), std::invalid_argument);
  EXPECT_THROW(BigInt::from_hex("xyz"), std::invalid_argument);
  EXPECT_THROW(BigInt::from_hex("-"), std::invalid_argument);
}

TEST(BigIntParse, NegativeZeroNormalizes) {
  EXPECT_FALSE(BigInt::from_dec("-0").is_negative());
  EXPECT_TRUE(BigInt::from_dec("-0").is_zero());
  EXPECT_FALSE(BigInt::from_string("-0x0").is_negative());
}

TEST(BigIntBytes, RoundTrip) {
  std::vector<std::uint8_t> bytes = {0x01, 0x02, 0x03, 0xff, 0x00, 0x80};
  BigInt v = BigInt::from_bytes_be(bytes);
  EXPECT_EQ(v.to_hex(), "10203ff0080");
  EXPECT_EQ(v.to_bytes_be(), bytes);
}

TEST(BigIntBytes, LeadingZerosDropped) {
  std::vector<std::uint8_t> bytes = {0x00, 0x00, 0x12};
  BigInt v = BigInt::from_bytes_be(bytes);
  EXPECT_EQ(v.to_bytes_be(), (std::vector<std::uint8_t>{0x12}));
}

TEST(BigIntBytes, PaddedWidth) {
  BigInt v{0x1234};
  auto padded = v.to_bytes_be_padded(4);
  EXPECT_EQ(padded, (std::vector<std::uint8_t>{0, 0, 0x12, 0x34}));
  EXPECT_THROW(v.to_bytes_be_padded(1), std::length_error);
}

TEST(BigIntBytes, ZeroEncodesEmpty) {
  EXPECT_TRUE(BigInt{}.to_bytes_be().empty());
  EXPECT_EQ(BigInt{}.to_bytes_be_padded(3),
            (std::vector<std::uint8_t>{0, 0, 0}));
}

TEST(BigIntArith, AdditionBasics) {
  EXPECT_EQ((BigInt{2} + BigInt{3}).to_dec(), "5");
  EXPECT_EQ((BigInt{-2} + BigInt{3}).to_dec(), "1");
  EXPECT_EQ((BigInt{2} + BigInt{-3}).to_dec(), "-1");
  EXPECT_EQ((BigInt{-2} + BigInt{-3}).to_dec(), "-5");
  EXPECT_EQ((BigInt{5} + BigInt{-5}).to_dec(), "0");
}

TEST(BigIntArith, CarryPropagation) {
  BigInt v = BigInt::from_hex("ffffffffffffffffffffffff");
  EXPECT_EQ((v + BigInt{1}).to_hex(), "1000000000000000000000000");
  EXPECT_EQ((v + BigInt{1} - BigInt{1}).to_hex(), v.to_hex());
}

TEST(BigIntArith, MultiplicationKnown) {
  BigInt a = BigInt::from_dec("123456789012345678901234567890");
  BigInt b = BigInt::from_dec("987654321098765432109876543210");
  EXPECT_EQ((a * b).to_dec(),
            "121932631137021795226185032733622923332237463801111263526900");
  EXPECT_EQ((a * BigInt{0}).to_dec(), "0");
  EXPECT_EQ((a * BigInt{1}).to_dec(), a.to_dec());
  EXPECT_EQ((a * BigInt{-1}).to_dec(), "-" + a.to_dec());
}

TEST(BigIntArith, KaratsubaAgreesWithSchoolbook) {
  // Build operands big enough to trigger the Karatsuba path (>=24 limbs)
  // and check an algebraic identity instead of a second multiplier:
  // (x + 1) * (x - 1) == x^2 - 1.
  crypto::ChaChaRng rng("karatsuba");
  for (int i = 0; i < 10; ++i) {
    BigInt x = random_bits(rng, 2000 + 64 * i);
    EXPECT_EQ((x + BigInt{1}) * (x - BigInt{1}), x * x - BigInt{1});
  }
}

TEST(BigIntDiv, KnownQuotients) {
  BigInt a = BigInt::from_dec("1000000000000000000000");
  EXPECT_EQ((a / BigInt{7}).to_dec(), "142857142857142857142");
  EXPECT_EQ((a % BigInt{7}).to_dec(), "6");
}

TEST(BigIntDiv, TruncationSemantics) {
  // C++ semantics: quotient toward zero, remainder has dividend's sign.
  EXPECT_EQ((BigInt{7} / BigInt{2}).to_dec(), "3");
  EXPECT_EQ((BigInt{-7} / BigInt{2}).to_dec(), "-3");
  EXPECT_EQ((BigInt{7} / BigInt{-2}).to_dec(), "-3");
  EXPECT_EQ((BigInt{-7} / BigInt{-2}).to_dec(), "3");
  EXPECT_EQ((BigInt{7} % BigInt{2}).to_dec(), "1");
  EXPECT_EQ((BigInt{-7} % BigInt{2}).to_dec(), "-1");
  EXPECT_EQ((BigInt{7} % BigInt{-2}).to_dec(), "1");
  EXPECT_EQ((BigInt{-7} % BigInt{-2}).to_dec(), "-1");
}

TEST(BigIntDiv, ByZeroThrows) {
  EXPECT_THROW(BigInt{1} / BigInt{0}, std::domain_error);
  EXPECT_THROW(BigInt{1} % BigInt{0}, std::domain_error);
}

TEST(BigIntDiv, DividendSmallerThanDivisor) {
  EXPECT_EQ((BigInt{3} / BigInt{10}).to_dec(), "0");
  EXPECT_EQ((BigInt{3} % BigInt{10}).to_dec(), "3");
}

TEST(BigIntDiv, KnuthAddBackCase) {
  // A divisor crafted so the q-hat estimate overshoots (the rare D6
  // "add back" branch of Algorithm D).
  BigInt num = BigInt::from_hex("7fffffff800000010000000000000000");
  BigInt den = BigInt::from_hex("800000008000000200000005");
  auto [q, r] = BigInt::divmod(num, den);
  EXPECT_EQ(q * den + r, num);
  EXPECT_TRUE(r >= BigInt{0} && r < den);
}

TEST(BigIntShift, LeftRight) {
  BigInt one{1};
  EXPECT_EQ((one << 100).bit_length(), 101u);
  EXPECT_EQ(((one << 100) >> 100).to_dec(), "1");
  EXPECT_EQ((BigInt{0xff} << 4).to_hex(), "ff0");
  EXPECT_EQ((BigInt{0xff} >> 4).to_hex(), "f");
  EXPECT_EQ((BigInt{0xff} >> 9).to_dec(), "0");
  EXPECT_EQ((BigInt{5} << 0).to_dec(), "5");
}

// Regression block for the sanitizer lanes: shift amounts at and across
// limb boundaries, where an off-by-one in the limb/bit split would index
// out of bounds or shift a 32-bit limb by 32 (UB).
TEST(BigIntShift, LimbBoundaryAmounts) {
  const BigInt v = BigInt::from_hex("123456789abcdef0fedcba9876543210");
  for (std::size_t bits : {31u, 32u, 33u, 63u, 64u, 65u, 95u, 96u, 97u}) {
    BigInt left = v << bits;
    EXPECT_EQ(left >> bits, v) << "shift " << bits;
    EXPECT_EQ(left.bit_length(), v.bit_length() + bits);
  }
  // Shifting zero by anything stays zero (empty limb vector path).
  EXPECT_TRUE((BigInt{} << 96).is_zero());
  EXPECT_TRUE((BigInt{} >> 96).is_zero());
  // Right shift past the top bit collapses to zero, not an OOB read.
  EXPECT_TRUE((v >> 4096).is_zero());
}

TEST(BigIntBits, BitAccess) {
  BigInt v = BigInt::from_hex("a0");  // 1010 0000
  EXPECT_TRUE(v.bit(7));
  EXPECT_FALSE(v.bit(6));
  EXPECT_TRUE(v.bit(5));
  EXPECT_FALSE(v.bit(100));
  v.set_bit(100);
  EXPECT_TRUE(v.bit(100));
  EXPECT_EQ(v.bit_length(), 101u);
}

TEST(BigIntBits, TrailingZeros) {
  EXPECT_EQ(BigInt{}.count_trailing_zeros(), 0u);
  EXPECT_EQ(BigInt{1}.count_trailing_zeros(), 0u);
  EXPECT_EQ(BigInt{8}.count_trailing_zeros(), 3u);
  EXPECT_EQ((BigInt{1} << 130).count_trailing_zeros(), 130u);
}

TEST(BigIntCompare, TotalOrder) {
  BigInt a{-5}, b{-1}, c{0}, d{1}, e{5};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_LT(c, d);
  EXPECT_LT(d, e);
  EXPECT_GT(e, a);
  EXPECT_LE(c, c);
  EXPECT_GE(c, c);
  EXPECT_EQ(BigInt::cmp(a, e), -1);
  EXPECT_EQ(BigInt::cmp(e, a), 1);
  EXPECT_EQ(BigInt::cmp(c, c), 0);
}

TEST(BigIntCompare, MagnitudeIgnoresSign) {
  EXPECT_EQ(BigInt::cmp_magnitude(BigInt{-7}, BigInt{5}), 1);
  EXPECT_EQ(BigInt::cmp_magnitude(BigInt{-7}, BigInt{7}), 0);
}

TEST(BigIntConvert, ToInt64) {
  EXPECT_EQ(BigInt{-12345}.to_int64(), -12345);
  EXPECT_EQ((BigInt{1} << 62).to_int64(), std::int64_t{1} << 62);
  EXPECT_THROW((BigInt{1} << 64).to_int64(), std::overflow_error);
}

TEST(BigIntConvert, ToInt64Boundaries) {
  const std::int64_t max = std::numeric_limits<std::int64_t>::max();
  const std::int64_t min = std::numeric_limits<std::int64_t>::min();
  EXPECT_EQ(BigInt{max}.to_int64(), max);
  // INT64_MIN's magnitude is 2^63, one past INT64_MAX: negating it in
  // int64 arithmetic would overflow (UB), so this exercises the careful
  // path on both construction and extraction.
  EXPECT_EQ(BigInt{min}.to_int64(), min);
  EXPECT_THROW((BigInt{max} + BigInt{1}).to_int64(), std::overflow_error);
  EXPECT_THROW((BigInt{min} - BigInt{1}).to_int64(), std::overflow_error);
}

TEST(BigIntWipe, MultiLimbValueZeroizesAndStaysUsable) {
  BigInt v = BigInt::from_hex("ffeeddccbbaa99887766554433221100");
  v.wipe();
  EXPECT_TRUE(v.is_zero());
  EXPECT_FALSE(v.is_negative());
  EXPECT_EQ(v.bit_length(), 0u);
  v += BigInt{42};  // wiped values remain ordinary zeros
  EXPECT_EQ(v.to_dec(), "42");
}

TEST(BigIntGcd, Basics) {
  EXPECT_EQ(gcd(BigInt{12}, BigInt{18}).to_dec(), "6");
  EXPECT_EQ(gcd(BigInt{-12}, BigInt{18}).to_dec(), "6");
  EXPECT_EQ(gcd(BigInt{0}, BigInt{5}).to_dec(), "5");
  EXPECT_EQ(gcd(BigInt{17}, BigInt{13}).to_dec(), "1");
}

TEST(BigIntGcd, BezoutIdentity) {
  crypto::ChaChaRng rng("egcd");
  for (int i = 0; i < 20; ++i) {
    BigInt a = random_bits(rng, 200);
    BigInt b = random_bits(rng, 180);
    auto [g, x, y] = egcd(a, b);
    EXPECT_EQ(a * x + b * y, g);
    EXPECT_EQ(g, gcd(a, b));
  }
}

// ---------------------------------------------------------------------------
// Property sweep: algebraic identities on random operands of many widths.
// ---------------------------------------------------------------------------

class BigIntPropertyTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BigIntPropertyTest, RingIdentities) {
  const std::size_t bits = GetParam();
  crypto::ChaChaRng rng("bigint-prop-" + std::to_string(bits));
  for (int iter = 0; iter < 25; ++iter) {
    BigInt a = random_bits(rng, bits);
    BigInt b = random_bits(rng, bits / 2 + 1);
    BigInt c = random_bits(rng, bits / 3 + 1);
    // Commutativity / associativity / distributivity.
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ((a * b) * c, a * (b * c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    // Subtraction inverts addition.
    EXPECT_EQ(a + b - b, a);
    EXPECT_EQ(a - a, BigInt{0});
  }
}

TEST_P(BigIntPropertyTest, DivModInvariant) {
  const std::size_t bits = GetParam();
  crypto::ChaChaRng rng("divmod-prop-" + std::to_string(bits));
  for (int iter = 0; iter < 25; ++iter) {
    BigInt a = random_bits(rng, bits);
    BigInt b = random_bits(rng, bits / 2 + 1) + BigInt{1};
    auto [q, r] = BigInt::divmod(a, b);
    EXPECT_EQ(q * b + r, a);
    EXPECT_TRUE(r >= BigInt{0});
    EXPECT_TRUE(r < b);
    // Consistency with operators.
    EXPECT_EQ(a / b, q);
    EXPECT_EQ(a % b, r);
  }
}

TEST_P(BigIntPropertyTest, ShiftsMatchMultiplication) {
  const std::size_t bits = GetParam();
  crypto::ChaChaRng rng("shift-prop-" + std::to_string(bits));
  for (int iter = 0; iter < 10; ++iter) {
    BigInt a = random_bits(rng, bits);
    std::size_t s = rng.next_u64() % 130;
    EXPECT_EQ(a << s, a * (BigInt{1} << s));
    EXPECT_EQ(a >> s, a / (BigInt{1} << s));
  }
}

TEST_P(BigIntPropertyTest, SerializationRoundTrips) {
  const std::size_t bits = GetParam();
  crypto::ChaChaRng rng("serial-prop-" + std::to_string(bits));
  for (int iter = 0; iter < 10; ++iter) {
    BigInt a = random_bits(rng, bits);
    EXPECT_EQ(BigInt::from_hex(a.to_hex()), a);
    EXPECT_EQ(BigInt::from_dec(a.to_dec()), a);
    EXPECT_EQ(BigInt::from_bytes_be(a.to_bytes_be()), a);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, BigIntPropertyTest,
                         ::testing::Values(8, 31, 32, 33, 64, 100, 160, 512,
                                           1024, 2048));

}  // namespace
}  // namespace p2pcash::bn
