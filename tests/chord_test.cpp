// Chord ring: intervals, successors, replica sets, finger routing.

#include "overlay/chord.h"

#include <gtest/gtest.h>

#include <cmath>

#include "crypto/chacha.h"

namespace p2pcash::overlay {
namespace {

using bn::BigInt;

TEST(ChordInterval, PlainAndWrapped) {
  // (2, 5]: 3,4,5 in; 2,6 out.
  EXPECT_TRUE(in_interval_oc(BigInt{3}, BigInt{2}, BigInt{5}));
  EXPECT_TRUE(in_interval_oc(BigInt{5}, BigInt{2}, BigInt{5}));
  EXPECT_FALSE(in_interval_oc(BigInt{2}, BigInt{2}, BigInt{5}));
  EXPECT_FALSE(in_interval_oc(BigInt{6}, BigInt{2}, BigInt{5}));
  // Wrapped (5, 2]: 6, 0, 1, 2 in; 3, 5 out.
  EXPECT_TRUE(in_interval_oc(BigInt{6}, BigInt{5}, BigInt{2}));
  EXPECT_TRUE(in_interval_oc(BigInt{0}, BigInt{5}, BigInt{2}));
  EXPECT_TRUE(in_interval_oc(BigInt{2}, BigInt{5}, BigInt{2}));
  EXPECT_FALSE(in_interval_oc(BigInt{3}, BigInt{5}, BigInt{2}));
  EXPECT_FALSE(in_interval_oc(BigInt{5}, BigInt{5}, BigInt{2}));
}

TEST(ChordRing, NodesSortedAndDistinct) {
  crypto::ChaChaRng rng("ring");
  ChordRing ring(64, rng);
  EXPECT_EQ(ring.size(), 64u);
  const auto& ids = ring.node_ids();
  for (std::size_t i = 1; i < ids.size(); ++i) EXPECT_LT(ids[i - 1], ids[i]);
}

TEST(ChordRing, SuccessorSemantics) {
  crypto::ChaChaRng rng("succ");
  ChordRing ring(16, rng);
  const auto& ids = ring.node_ids();
  // The successor of a node id is the node itself.
  for (std::size_t i = 0; i < ids.size(); ++i)
    EXPECT_EQ(ring.successor_index(ids[i]), i);
  // Just above a node id -> next node (wrapping).
  for (std::size_t i = 0; i < ids.size(); ++i) {
    BigInt just_above = ids[i] + BigInt{1};
    std::size_t expected = (i + 1) % ids.size();
    if (just_above == ids[expected])  // adjacent ids (unlikely)
      continue;
    // If just_above exceeds the last id, wraps to 0.
    EXPECT_EQ(ring.successor_index(just_above), expected);
  }
  // Keys beyond the largest node wrap to node 0.
  EXPECT_EQ(ring.successor_index(ids.back() + BigInt{1}), 0u);
}

TEST(ChordRing, ReplicaSetsAreSuccessiveNodes) {
  crypto::ChaChaRng rng("replicas");
  ChordRing ring(10, rng);
  auto key = bn::random_bits(rng, kIdBits);
  auto replicas = ring.replica_set(key, 3);
  ASSERT_EQ(replicas.size(), 3u);
  EXPECT_EQ(replicas[1], (replicas[0] + 1) % ring.size());
  EXPECT_EQ(replicas[2], (replicas[0] + 2) % ring.size());
  // Requesting more replicas than nodes clamps.
  EXPECT_EQ(ring.replica_set(key, 99).size(), ring.size());
}

TEST(ChordRing, ReplicaSetOnSingleNodeRing) {
  // A 1-node ring must return exactly {0} for any count — the wrap-around
  // walk (idx + i) % n must not emit node 0 repeatedly.
  crypto::ChaChaRng rng("replica-single");
  ChordRing ring(1, rng);
  auto key = bn::random_bits(rng, kIdBits);
  for (std::size_t count : {std::size_t{0}, std::size_t{1}, std::size_t{7}}) {
    auto replicas = ring.replica_set(key, count);
    if (count == 0) {
      EXPECT_TRUE(replicas.empty());
    } else {
      ASSERT_EQ(replicas.size(), 1u) << "count=" << count;
      EXPECT_EQ(replicas[0], 0u);
    }
  }
}

TEST(ChordRing, OversizedReplicaSetIsDistinctAndClamped) {
  // count > n: clamp to the ring size and cover every node exactly once,
  // for every possible successor start position.
  crypto::ChaChaRng rng("replica-clamp");
  ChordRing ring(5, rng);
  for (std::size_t n = 0; n < ring.size(); ++n) {
    // Each node id keys to itself, so the walk starts at every index.
    auto replicas = ring.replica_set(ring.node_ids()[n], ring.size() + 3);
    ASSERT_EQ(replicas.size(), ring.size());
    std::vector<bool> seen(ring.size(), false);
    for (std::size_t idx : replicas) {
      ASSERT_LT(idx, ring.size());
      EXPECT_FALSE(seen[idx]) << "duplicate replica index " << idx;
      seen[idx] = true;
    }
    EXPECT_EQ(replicas.front(), n);
  }
}

TEST(ChordRing, RoutesReachTheSuccessor) {
  crypto::ChaChaRng rng("route");
  ChordRing ring(64, rng);
  for (int i = 0; i < 50; ++i) {
    auto key = bn::random_bits(rng, kIdBits);
    std::size_t start = static_cast<std::size_t>(rng.next_u64() % ring.size());
    auto path = ring.route(start, key);
    ASSERT_FALSE(path.empty());
    EXPECT_EQ(path.front(), start);
    EXPECT_EQ(path.back(), ring.successor_index(key));
  }
}

TEST(ChordRing, HopCountIsLogarithmic) {
  crypto::ChaChaRng rng("hops");
  ChordRing ring(256, rng);
  double total_hops = 0;
  const int kLookups = 100;
  for (int i = 0; i < kLookups; ++i) {
    auto key = bn::random_bits(rng, kIdBits);
    std::size_t start = static_cast<std::size_t>(rng.next_u64() % ring.size());
    auto path = ring.route(start, key);
    total_hops += static_cast<double>(path.size() - 1);
  }
  double avg = total_hops / kLookups;
  // Chord: ~(1/2) log2 N = 4 expected; generous bounds.
  EXPECT_LT(avg, 2.0 * std::log2(256));
  EXPECT_GT(avg, 1.0);
}

TEST(ChordRing, FingersPointAtSuccessors) {
  crypto::ChaChaRng rng("fingers");
  ChordRing ring(32, rng);
  const BigInt space = BigInt{1} << kIdBits;
  for (std::size_t n = 0; n < ring.size(); n += 7) {
    for (std::size_t i = 0; i < kIdBits; i += 20) {
      BigInt target = ring.node_ids()[n] + (BigInt{1} << i);
      if (target >= space) target -= space;
      EXPECT_EQ(ring.finger(n, i), ring.successor_index(target));
    }
  }
}

TEST(ChordRing, SingleNodeOwnsEverything) {
  crypto::ChaChaRng rng("single");
  ChordRing ring(1, rng);
  auto key = bn::random_bits(rng, kIdBits);
  EXPECT_EQ(ring.successor_index(key), 0u);
  auto path = ring.route(0, key);
  EXPECT_EQ(path.back(), 0u);
}

TEST(ChordRing, EmptyRingRejected) {
  crypto::ChaChaRng rng("empty");
  EXPECT_THROW(ChordRing(0, rng), std::invalid_argument);
}

class ChordSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ChordSizeSweep, RoutingCorrectAtEveryScale) {
  crypto::ChaChaRng rng("sweep-" + std::to_string(GetParam()));
  ChordRing ring(GetParam(), rng);
  for (int i = 0; i < 20; ++i) {
    auto key = bn::random_bits(rng, kIdBits);
    std::size_t start = static_cast<std::size_t>(rng.next_u64() % ring.size());
    EXPECT_EQ(ring.route(start, key).back(), ring.successor_index(key));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ChordSizeSweep,
                         ::testing::Values(2, 3, 5, 8, 16, 33, 100, 128));

TEST(RingDistance, ClockwiseWithWraparound) {
  EXPECT_EQ(ring_distance(5, 9), bn::BigInt(4));
  EXPECT_EQ(ring_distance(5, 5), bn::BigInt(0));
  // Counter-clockwise pairs wrap the long way around the 2^160 ring.
  const bn::BigInt ring_size = bn::BigInt(1) << kIdBits;
  EXPECT_EQ(ring_distance(9, 5), ring_size - 4);
}

TEST(FailoverOrder, SortsByClockwiseDistanceFromKey) {
  // key=10; candidates at 50, 12, 7 → clockwise distances 40, 2, 2^160-3.
  const std::vector<ChordId> candidates{50, 12, 7};
  EXPECT_EQ(failover_order(10, candidates),
            (std::vector<std::size_t>{1, 0, 2}));
}

TEST(FailoverOrder, TiesKeepInputOrderAndEmptyIsEmpty) {
  const std::vector<ChordId> candidates{20, 20, 15};
  EXPECT_EQ(failover_order(10, candidates),
            (std::vector<std::size_t>{2, 0, 1}));
  EXPECT_TRUE(failover_order(10, {}).empty());
}

TEST(FailoverOrder, AgreesWithChordReplicaSetOrder) {
  // On a real ring, trying candidates in failover_order must match the
  // successor-list order Chord itself would use for the same key.
  crypto::ChaChaRng rng("failover");
  ChordRing ring(16, rng);
  for (int i = 0; i < 10; ++i) {
    auto key = bn::random_bits(rng, kIdBits);
    auto replicas = ring.replica_set(key, ring.size());
    std::vector<ChordId> candidates;
    for (std::size_t idx : replicas)
      candidates.push_back(ring.node_ids()[idx]);
    // candidates are already in successor order, so failover_order must be
    // the identity permutation.
    auto order = failover_order(key, candidates);
    for (std::size_t j = 0; j < order.size(); ++j) EXPECT_EQ(order[j], j);
  }
}

}  // namespace
}  // namespace p2pcash::overlay
