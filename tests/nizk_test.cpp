// Representation commitments, the payment NIZK, and double-spend
// extraction (paper §6, footnote 4).

#include "nizk/representation.h"

#include <gtest/gtest.h>

#include "crypto/chacha.h"
#include "nizk/batch_verify.h"

namespace p2pcash::nizk {
namespace {

using bn::BigInt;

const group::SchnorrGroup& grp() { return group::SchnorrGroup::test_256(); }

TEST(Nizk, RespondVerifyRoundTrip) {
  crypto::ChaChaRng rng("nizk-rt");
  auto secret = CoinSecret::random(grp(), rng);
  auto comm = commit(grp(), secret);
  BigInt d = grp().random_scalar(rng);
  auto resp = respond(grp(), secret, d);
  EXPECT_TRUE(verify_response(grp(), comm, d, resp));
}

TEST(Nizk, WrongChallengeFails) {
  crypto::ChaChaRng rng("nizk-d");
  auto secret = CoinSecret::random(grp(), rng);
  auto comm = commit(grp(), secret);
  BigInt d = grp().random_scalar(rng);
  auto resp = respond(grp(), secret, d);
  BigInt d2 = bn::mod(d + BigInt{1}, grp().q());
  EXPECT_FALSE(verify_response(grp(), comm, d2, resp));
}

TEST(Nizk, ForeignSecretFails) {
  crypto::ChaChaRng rng("nizk-foreign");
  auto secret = CoinSecret::random(grp(), rng);
  auto other = CoinSecret::random(grp(), rng);
  auto comm = commit(grp(), secret);
  BigInt d = grp().random_scalar(rng);
  auto resp = respond(grp(), other, d);  // right algebra, wrong secrets
  EXPECT_FALSE(verify_response(grp(), comm, d, resp));
}

TEST(Nizk, TamperedResponseFails) {
  crypto::ChaChaRng rng("nizk-tamper");
  auto secret = CoinSecret::random(grp(), rng);
  auto comm = commit(grp(), secret);
  BigInt d = grp().random_scalar(rng);
  auto resp = respond(grp(), secret, d);
  auto bad1 = resp;
  bad1.r1 = bn::mod(bad1.r1 + BigInt{1}, grp().q());
  EXPECT_FALSE(verify_response(grp(), comm, d, bad1));
  auto bad2 = resp;
  bad2.r2 = bn::mod(bad2.r2 + BigInt{1}, grp().q());
  EXPECT_FALSE(verify_response(grp(), comm, d, bad2));
}

TEST(Nizk, OutOfRangeResponseRejected) {
  crypto::ChaChaRng rng("nizk-range");
  auto secret = CoinSecret::random(grp(), rng);
  auto comm = commit(grp(), secret);
  BigInt d = grp().random_scalar(rng);
  auto resp = respond(grp(), secret, d);
  auto oversized = resp;
  oversized.r1 = oversized.r1 + grp().q();
  EXPECT_FALSE(verify_response(grp(), comm, d, oversized));
}

TEST(Nizk, ExtractionRecoversExactSecrets) {
  crypto::ChaChaRng rng("nizk-extract");
  auto secret = CoinSecret::random(grp(), rng);
  BigInt d1 = grp().random_scalar(rng);
  BigInt d2 = grp().random_scalar(rng);
  ASSERT_NE(d1, d2);
  ChallengeResponse cr1{d1, respond(grp(), secret, d1)};
  ChallengeResponse cr2{d2, respond(grp(), secret, d2)};
  auto extracted = extract(grp(), cr1, cr2);
  ASSERT_TRUE(extracted.has_value());
  EXPECT_EQ(extracted->of_a.e1, secret.x1);
  EXPECT_EQ(extracted->of_a.e2, secret.x2);
  EXPECT_EQ(extracted->of_b.e1, secret.y1);
  EXPECT_EQ(extracted->of_b.e2, secret.y2);
}

TEST(Nizk, ExtractedRepresentationsVerify) {
  crypto::ChaChaRng rng("nizk-exrep");
  auto secret = CoinSecret::random(grp(), rng);
  auto comm = commit(grp(), secret);
  BigInt d1 = grp().random_scalar(rng);
  BigInt d2 = bn::mod(d1 + BigInt{7}, grp().q());
  auto extracted = extract(grp(), {d1, respond(grp(), secret, d1)},
                           {d2, respond(grp(), secret, d2)});
  ASSERT_TRUE(extracted.has_value());
  EXPECT_TRUE(verify_representation(grp(), comm.a, extracted->of_a));
  EXPECT_TRUE(verify_representation(grp(), comm.b, extracted->of_b));
  // And a wrong commitment does not verify.
  EXPECT_FALSE(verify_representation(grp(), comm.b, extracted->of_a));
}

TEST(Nizk, SameChallengeExtractsNothing) {
  crypto::ChaChaRng rng("nizk-same");
  auto secret = CoinSecret::random(grp(), rng);
  BigInt d = grp().random_scalar(rng);
  ChallengeResponse cr{d, respond(grp(), secret, d)};
  EXPECT_FALSE(extract(grp(), cr, cr).has_value());
}

TEST(Nizk, SingleTranscriptRevealsNothingCheckable) {
  // A single (d, r1, r2) gives one linear equation in four unknowns; any
  // guessed representation consistent with it still fails against A and B.
  crypto::ChaChaRng rng("nizk-one");
  auto secret = CoinSecret::random(grp(), rng);
  auto comm = commit(grp(), secret);
  BigInt d = grp().random_scalar(rng);
  auto resp = respond(grp(), secret, d);
  // Adversary guesses y1', derives the rest to satisfy the equation — the
  // derived tuple must not open A (that would break the representation
  // problem).
  BigInt fake_y1 = grp().random_scalar(rng);
  Representation fake_a{bn::mod_sub(resp.r1, bn::mod_mul(d, fake_y1, grp().q()),
                                    grp().q()),
                        grp().random_scalar(rng)};
  EXPECT_FALSE(verify_representation(grp(), comm.a, fake_a));
}

TEST(Nizk, CommitmentsDependOnAllFourSecrets) {
  crypto::ChaChaRng rng("nizk-dep");
  auto secret = CoinSecret::random(grp(), rng);
  auto comm = commit(grp(), secret);
  for (int i = 0; i < 4; ++i) {
    auto mutated = secret;
    BigInt* field = i == 0   ? &mutated.x1
                    : i == 1 ? &mutated.x2
                    : i == 2 ? &mutated.y1
                             : &mutated.y2;
    *field = bn::mod(*field + BigInt{1}, grp().q());
    auto comm2 = commit(grp(), mutated);
    EXPECT_TRUE(comm2.a != comm.a || comm2.b != comm.b) << i;
  }
}

class NizkSweep : public ::testing::TestWithParam<int> {};

TEST_P(NizkSweep, ExtractionAlwaysWorks) {
  crypto::ChaChaRng rng("nizk-sweep-" + std::to_string(GetParam()));
  auto secret = CoinSecret::random(grp(), rng);
  auto comm = commit(grp(), secret);
  BigInt d1 = grp().random_scalar(rng);
  BigInt d2 = grp().random_scalar(rng);
  if (d1 == d2) return;
  auto extracted = extract(grp(), {d1, respond(grp(), secret, d1)},
                           {d2, respond(grp(), secret, d2)});
  ASSERT_TRUE(extracted.has_value());
  EXPECT_TRUE(verify_representation(grp(), comm.a, extracted->of_a));
  EXPECT_TRUE(verify_representation(grp(), comm.b, extracted->of_b));
}

INSTANTIATE_TEST_SUITE_P(Seeds, NizkSweep, ::testing::Range(0, 10));

// ---------------------------------------------------------------------------
// RLC batch verification
// ---------------------------------------------------------------------------

std::vector<BatchItem> valid_items(std::size_t n, bn::Rng& rng) {
  std::vector<BatchItem> items;
  for (std::size_t i = 0; i < n; ++i) {
    auto secret = CoinSecret::random(grp(), rng);
    auto comm = commit(grp(), secret);
    BigInt d = grp().random_scalar(rng);
    items.push_back(BatchItem{comm, d, respond(grp(), secret, d)});
  }
  return items;
}

TEST(NizkBatch, AllValidBatchesAccept) {
  crypto::ChaChaRng rng("nizk-batch-ok");
  for (std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{7},
                        std::size_t{40}}) {
    auto items = valid_items(n, rng);
    auto result = batch_verify_responses(grp(), items, rng);
    EXPECT_TRUE(result.ok) << "n=" << n;
    EXPECT_TRUE(result.bad_indices.empty()) << "n=" << n;
  }
}

TEST(NizkBatch, EmptyBatchAccepts) {
  crypto::ChaChaRng rng("nizk-batch-empty");
  auto result = batch_verify_responses(grp(), {}, rng);
  EXPECT_TRUE(result.ok);
}

TEST(NizkBatch, ForgedProofIsNamedByBisection) {
  // One forged response hidden in an otherwise-valid batch: the combined
  // check must fail and the bisection must name exactly the bad index.
  crypto::ChaChaRng rng("nizk-batch-forged");
  auto items = valid_items(9, rng);
  items[6].resp.r1 = bn::mod(items[6].resp.r1 + BigInt{1}, grp().q());
  auto result = batch_verify_responses(grp(), items, rng);
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.bad_indices, (std::vector<std::size_t>{6}));
}

TEST(NizkBatch, MultipleForgeriesAllNamed) {
  crypto::ChaChaRng rng("nizk-batch-multi");
  auto items = valid_items(12, rng);
  for (std::size_t bad : {std::size_t{0}, std::size_t{5}, std::size_t{11}})
    items[bad].resp.r2 = bn::mod(items[bad].resp.r2 + BigInt{1}, grp().q());
  auto result = batch_verify_responses(grp(), items, rng);
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.bad_indices,
            (std::vector<std::size_t>{0, 5, 11}));
}

TEST(NizkBatch, OutOfRangeResponseNamedWithoutAccusingOthers) {
  // r1 = q fails the scalar range check — named up front, exactly like the
  // individual verifier's early reject, with the rest of the batch intact.
  crypto::ChaChaRng rng("nizk-batch-range");
  auto items = valid_items(5, rng);
  items[2].resp.r1 = grp().q();
  items[4].resp.r2 = BigInt{0} - BigInt{1};
  auto result = batch_verify_responses(grp(), items, rng);
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.bad_indices, (std::vector<std::size_t>{2, 4}));
}

TEST(NizkBatch, DecisionsMatchIndividualVerifier) {
  // Bit-compatibility sweep: for a random mix of valid, forged and
  // mismatched items, the batch's accept/reject per index must equal n
  // independent verify_response calls.
  crypto::ChaChaRng rng("nizk-batch-compat");
  auto items = valid_items(16, rng);
  items[1].resp.r1 = bn::mod(items[1].resp.r1 + BigInt{7}, grp().q());
  items[8].d = bn::mod(items[8].d + BigInt{1}, grp().q());
  items[13].comm = commit(grp(), CoinSecret::random(grp(), rng));
  std::vector<std::size_t> expected_bad;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (!verify_response(grp(), items[i].comm, items[i].d, items[i].resp))
      expected_bad.push_back(i);
  }
  auto result = batch_verify_responses(grp(), items, rng);
  EXPECT_EQ(result.bad_indices, expected_bad);
  EXPECT_EQ(result.ok, expected_bad.empty());
}

TEST(NizkBatch, RepresentationBatchAcceptsAndNamesForgeries) {
  crypto::ChaChaRng rng("nizk-batch-rep");
  std::vector<RepresentationItem> items;
  for (std::size_t i = 0; i < 10; ++i) {
    Representation rep{grp().random_scalar(rng), grp().random_scalar(rng)};
    BigInt commitment =
        grp().mul(grp().exp(grp().g1(), rep.e1), grp().exp(grp().g2(), rep.e2));
    items.push_back(RepresentationItem{std::move(commitment), rep});
  }
  auto ok = batch_verify_representations(grp(), items, rng);
  EXPECT_TRUE(ok.ok);
  items[3].rep.e1 = bn::mod(items[3].rep.e1 + BigInt{1}, grp().q());
  auto bad = batch_verify_representations(grp(), items, rng);
  EXPECT_FALSE(bad.ok);
  EXPECT_EQ(bad.bad_indices, (std::vector<std::size_t>{3}));
}

}  // namespace
}  // namespace p2pcash::nizk
