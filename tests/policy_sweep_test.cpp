// Parameterized sweep over witness policies (k-of-n) and group sizes: the
// full lifecycle must hold for every supported configuration.

#include <gtest/gtest.h>

#include "ecash_fixture.h"

namespace p2pcash::ecash {
namespace {

struct PolicyCase {
  std::uint8_t n;
  std::uint8_t k;
  int group_bits;  // 256 or 512
};

class PolicySweepTest : public ::testing::TestWithParam<PolicyCase> {
 protected:
  static const group::SchnorrGroup& group_for(int bits) {
    return bits == 512 ? group::SchnorrGroup::test_512()
                       : group::SchnorrGroup::test_256();
  }
};

TEST_P(PolicySweepTest, FullLifecycleHolds) {
  const auto& param = GetParam();
  Broker::Config config;
  config.witness_n = param.n;
  config.witness_k = param.k;
  Deployment dep(group_for(param.group_bits), /*n_merchants=*/12,
                 /*seed=*/1000 + param.n * 10 + param.k, config);
  auto wallet = dep.make_wallet();

  // Withdraw: the coin carries exactly n distinct witnesses.
  auto coin = dep.withdraw(*wallet, 100, 1000);
  ASSERT_TRUE(coin.ok()) << coin.refusal().detail;
  ASSERT_EQ(coin.value().coin.witnesses.size(), param.n);
  std::set<MerchantId> distinct;
  for (const auto& w : coin.value().coin.witnesses)
    distinct.insert(w.merchant);
  EXPECT_EQ(distinct.size(), param.n) << "witnesses must be distinct";

  // Spend at a non-witness merchant.
  MerchantId target;
  for (const auto& id : dep.merchant_ids()) {
    if (!distinct.contains(id)) {
      target = id;
      break;
    }
  }
  ASSERT_FALSE(target.empty());
  auto payment = dep.pay(*wallet, coin.value(), target, 2000);
  ASSERT_TRUE(payment.accepted)
      << (payment.refusal ? payment.refusal->detail : "");

  // Double spend blocked under every policy.
  MerchantId other;
  for (const auto& id : dep.merchant_ids()) {
    if (!distinct.contains(id) && id != target) {
      other = id;
      break;
    }
  }
  auto fraud = dep.pay(*wallet, coin.value(), other, 3000);
  EXPECT_FALSE(fraud.accepted);

  // Deposit clears with >= k endorsements.
  auto summary = dep.deposit_all(target, 5000);
  EXPECT_EQ(summary.accepted, 1u);
  EXPECT_EQ(summary.credited, 100u);
}

TEST_P(PolicySweepTest, DepositNeedsKDistinctEndorsements) {
  const auto& param = GetParam();
  if (param.k < 2) return;  // only meaningful for multi-witness policies
  Broker::Config config;
  config.witness_n = param.n;
  config.witness_k = param.k;
  Deployment dep(group_for(param.group_bits), 12,
                 /*seed=*/2000 + param.n, config);
  auto wallet = dep.make_wallet();
  auto coin = dep.withdraw(*wallet, 100, 1000);
  ASSERT_TRUE(coin.ok());
  MerchantId target;
  std::set<MerchantId> witnesses;
  for (const auto& w : coin.value().coin.witnesses)
    witnesses.insert(w.merchant);
  for (const auto& id : dep.merchant_ids()) {
    if (!witnesses.contains(id)) {
      target = id;
      break;
    }
  }
  ASSERT_TRUE(dep.pay(*wallet, coin.value(), target, 2000).accepted);
  auto queue = dep.node(target).merchant->drain_deposit_queue();
  ASSERT_EQ(queue.size(), 1u);
  // Strip endorsements below the threshold: refusal.
  auto understaffed = queue[0];
  understaffed.endorsements.resize(param.k - 1);
  auto refused = dep.broker().deposit(target, understaffed, 3000);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.refusal().reason, RefusalReason::kBadSignature);
  // Duplicating one endorsement does not fake the quorum either.
  auto padded = understaffed;
  while (padded.endorsements.size() < param.k)
    padded.endorsements.push_back(padded.endorsements.front());
  EXPECT_FALSE(dep.broker().deposit(target, padded, 3500).ok());
  // The genuine transcript clears.
  EXPECT_TRUE(dep.broker().deposit(target, queue[0], 4000).ok());
}

INSTANTIATE_TEST_SUITE_P(
    Policies, PolicySweepTest,
    ::testing::Values(PolicyCase{1, 1, 256}, PolicyCase{2, 1, 256},
                      PolicyCase{2, 2, 256}, PolicyCase{3, 2, 256},
                      PolicyCase{3, 3, 256}, PolicyCase{5, 3, 256},
                      PolicyCase{1, 1, 512}, PolicyCase{3, 2, 512}),
    [](const ::testing::TestParamInfo<PolicyCase>& param_info) {
      std::string name = "n";
      name += std::to_string(param_info.param.n);
      name += 'k';
      name += std::to_string(param_info.param.k);
      name += 'g';
      name += std::to_string(param_info.param.group_bits);
      return name;
    });

}  // namespace
}  // namespace p2pcash::ecash
