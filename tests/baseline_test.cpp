// Baselines: the DHT spent-coin registry's probabilistic guarantees, the
// online-clearing broker's load/outage behaviour, and offline detection's
// fraud exposure — each contrasted with the witness scheme's hard
// guarantee (which the doublespend tests pin at exactly zero).

#include <gtest/gtest.h>

#include "baseline/dht_registry.h"
#include "baseline/offline_detection.h"
#include "baseline/online_clearing.h"
#include "crypto/chacha.h"

namespace p2pcash::baseline {
namespace {

TEST(DhtRegistry, HonestNetworkDetectsEverything) {
  crypto::ChaChaRng rng("dht-honest");
  DhtSpentRegistry dht({.nodes = 64, .replicas = 3, .malicious_fraction = 0},
                       rng);
  int missed = 0;
  for (int i = 0; i < 50; ++i) {
    auto coin = bn::random_bits(rng, overlay::kIdBits);
    auto first = dht.check_and_record(coin);
    EXPECT_FALSE(first.seen_before);
    auto second = dht.check_and_record(coin);
    if (!second.seen_before) ++missed;
  }
  EXPECT_EQ(missed, 0);
}

TEST(DhtRegistry, MaliciousReplicasLetDoubleSpendsThrough) {
  crypto::ChaChaRng rng("dht-evil");
  DhtSpentRegistry dht(
      {.nodes = 64, .replicas = 2, .malicious_fraction = 0.4}, rng);
  EXPECT_GT(dht.malicious_count(), 0u);
  int missed = 0;
  const int kCoins = 200;
  for (int i = 0; i < kCoins; ++i) {
    auto coin = bn::random_bits(rng, overlay::kIdBits);
    (void)dht.check_and_record(coin);
    if (!dht.check_and_record(coin).seen_before) ++missed;
  }
  // Expected miss rate ~ f^r = 0.16; must be clearly nonzero (the paper's
  // point: "can only support probabilistic guarantees").
  EXPECT_GT(missed, kCoins / 20);
  EXPECT_LT(missed, kCoins / 2);
}

TEST(DhtRegistry, MoreReplicasShrinkTheHole) {
  crypto::ChaChaRng rng("dht-replicas");
  auto miss_rate = [&](std::size_t replicas) {
    crypto::ChaChaRng local("dht-replicas-" + std::to_string(replicas));
    DhtSpentRegistry dht({.nodes = 128,
                          .replicas = replicas,
                          .malicious_fraction = 0.3},
                         local);
    int missed = 0;
    for (int i = 0; i < 300; ++i) {
      auto coin = bn::random_bits(local, overlay::kIdBits);
      (void)dht.check_and_record(coin);
      if (!dht.check_and_record(coin).seen_before) ++missed;
    }
    return missed;
  };
  EXPECT_GT(miss_rate(1), miss_rate(4));
  (void)rng;
}

TEST(DhtRegistry, MisroutingMakesItWorse) {
  auto missed_with = [&](bool misroute) {
    crypto::ChaChaRng local(misroute ? "dht-mis-1" : "dht-mis-0");
    DhtSpentRegistry dht({.nodes = 128,
                          .replicas = 3,
                          .malicious_fraction = 0.25,
                          .malicious_misroute = misroute},
                         local);
    int missed = 0;
    for (int i = 0; i < 300; ++i) {
      auto coin = bn::random_bits(local, overlay::kIdBits);
      (void)dht.check_and_record(coin);
      if (!dht.check_and_record(coin).seen_before) ++missed;
    }
    return missed;
  };
  EXPECT_GT(missed_with(true), missed_with(false));
}

TEST(OnlineClearing, LatencyDegradesWithLoad) {
  crypto::ChaChaRng rng("oc-load");
  OnlineClearingBroker::Options opt;
  opt.service_ms = 10;
  auto light = OnlineClearingBroker::simulate(opt, 2000, 10.0, rng);
  auto heavy = OnlineClearingBroker::simulate(opt, 2000, 95.0, rng);
  // At 95/s against a 100/s server the queue dominates.
  EXPECT_GT(heavy.latency_ms.mean(), 2 * light.latency_ms.mean());
  EXPECT_GT(heavy.broker_utilization, 0.8);
  EXPECT_LT(light.broker_utilization, 0.2);
  EXPECT_EQ(light.cleared, 2000u);
}

TEST(OnlineClearing, LightLoadLatencyIsRttPlusService) {
  crypto::ChaChaRng rng("oc-light");
  OnlineClearingBroker::Options opt;
  opt.service_ms = 10;
  auto stats = OnlineClearingBroker::simulate(opt, 1000, 1.0, rng);
  // RTT in [50, 100] + 10 service (+ occasional brief queueing when two
  // Poisson arrivals cluster).
  EXPECT_GE(stats.latency_ms.min(), 60.0);
  EXPECT_LE(stats.latency_ms.max(), 140.0);
  EXPECT_LE(stats.latency_ms.percentile(90), 110.0);
}

TEST(OnlineClearing, OutageFailsPayments) {
  // The single-point-of-failure argument: take the broker down for a
  // window and every payment in it dies.  The witness scheme has no such
  // global choke point.
  crypto::ChaChaRng rng("oc-outage");
  OnlineClearingBroker::Options opt;
  auto stats = OnlineClearingBroker::simulate(opt, 2000, 20.0, rng,
                                              /*outage_start=*/10'000,
                                              /*outage_end=*/40'000);
  EXPECT_GT(stats.failed_outage, 0u);
  EXPECT_EQ(stats.cleared + stats.failed_outage, 2000u);
  // Roughly 30s of a ~100s run -> ~30% of arrivals fail.
  double fail_rate = static_cast<double>(stats.failed_outage) / 2000.0;
  EXPECT_GT(fail_rate, 0.15);
  EXPECT_LT(fail_rate, 0.45);
}

TEST(OfflineDetection, SlowDepositsMeanLargeExposure) {
  crypto::ChaChaRng rng("off-slow");
  OfflineDetection::Options opt;
  opt.deposit_interval_ms = 3600'000;  // hourly batch deposits
  opt.spend_rate_per_s = 1.0;
  opt.merchants = 120;
  auto stats = OfflineDetection::simulate(group::SchnorrGroup::test_256(),
                                          opt, rng);
  // The attacker hits every merchant before the first deposit lands.
  EXPECT_EQ(stats.fraudulent_spends, 120u);
  EXPECT_TRUE(stats.secrets_extracted);
}

TEST(OfflineDetection, FastDepositsShrinkExposure) {
  crypto::ChaChaRng rng("off-fast");
  OfflineDetection::Options opt;
  opt.deposit_interval_ms = 10'000;  // deposits 10s after sale
  opt.spend_rate_per_s = 1.0;
  opt.merchants = 120;
  auto stats = OfflineDetection::simulate(group::SchnorrGroup::test_256(),
                                          opt, rng);
  EXPECT_GT(stats.fraudulent_spends, 1u);
  EXPECT_LT(stats.fraudulent_spends, 20u);
  EXPECT_EQ(stats.detected_at_deposit, 1u);
  EXPECT_GT(stats.detection_delay_ms, 0.0);
}

TEST(OfflineDetection, DetectionStillNeedsTwoTranscripts) {
  crypto::ChaChaRng rng("off-two");
  OfflineDetection::Options opt;
  opt.deposit_interval_ms = 1000;
  opt.spend_rate_per_s = 0.1;  // slow attacker
  opt.merchants = 5;
  auto stats = OfflineDetection::simulate(group::SchnorrGroup::test_256(),
                                          opt, rng);
  EXPECT_GE(stats.fraudulent_spends, 2u);
  EXPECT_TRUE(stats.secrets_extracted);
}

}  // namespace
}  // namespace p2pcash::baseline
