// Adversarial tests: forgery, theft, replay, malleability, steering —
// the generic e-cash attacks of paper §6.

#include <gtest/gtest.h>

#include "ecash_fixture.h"

namespace p2pcash::ecash {
namespace {

using bn::BigInt;
using testing::EcashTest;

class SecurityTest : public EcashTest {
 protected:
  /// Runs steps 1-3 of a payment and returns the transcript + commitment
  /// without submitting to the merchant.
  struct PreparedPayment {
    Wallet::PaymentIntent intent;
    WitnessCommitment commitment;
    PaymentTranscript transcript;
  };
  PreparedPayment prepare(const WalletCoin& coin, const MerchantId& merchant,
                          Timestamp now) {
    PreparedPayment p;
    p.intent = wallet_->prepare_payment(coin, merchant);
    auto& witness = *dep_.node(coin.coin.witnesses[0].merchant).witness;
    auto commitment =
        witness.request_commitment(p.intent.coin_hash, p.intent.nonce, now);
    EXPECT_TRUE(commitment.ok());
    p.commitment = commitment.value();
    auto transcript =
        wallet_->build_transcript(coin, p.intent, {p.commitment}, now + 50);
    EXPECT_TRUE(transcript.ok());
    p.transcript = transcript.value();
    return p;
  }
};

TEST_F(SecurityTest, ForgedCoinWithoutBrokerRejected) {
  // An attacker fabricates a coin from whole cloth with self-chosen
  // signature values.
  crypto::ChaChaRng rng("forger");
  Coin forged;
  forged.bare.info = CoinInfo{100, 1, 1'000'000'000, 2'000'000'000, 1, 1, {}};
  forged.bare.a = dep_.grp().exp_g(dep_.grp().random_scalar(rng));
  forged.bare.b = dep_.grp().exp_g(dep_.grp().random_scalar(rng));
  forged.bare.sig.rho = dep_.grp().random_scalar(rng);
  forged.bare.sig.omega = dep_.grp().random_scalar(rng);
  forged.bare.sig.sigma = dep_.grp().random_scalar(rng);
  forged.bare.sig.delta = dep_.grp().random_scalar(rng);
  auto entry = dep_.broker().current_table().lookup(
      witness_point(forged.bare.coin_hash(), 0));
  ASSERT_TRUE(entry.has_value());
  forged.witnesses.push_back(*entry);
  auto ok = verify_coin(dep_.grp(), dep_.broker().coin_key(), forged, 2000);
  EXPECT_FALSE(ok.ok());
}

TEST_F(SecurityTest, StolenCoinWithoutSecretsUnspendable) {
  // A thief copies the public Coin bytes but not the wallet secrets.  It
  // cannot produce a valid NIZK response.
  auto coin = withdraw();
  crypto::ChaChaRng thief_rng("thief");
  WalletCoin stolen;
  stolen.coin = coin.coin;  // bytes on the wire
  stolen.secret = nizk::CoinSecret::random(dep_.grp(), thief_rng);
  auto merchant = non_witness_merchant(coin);
  auto result = dep_.pay(*wallet_, stolen, merchant, 2000);
  EXPECT_FALSE(result.accepted);
}

TEST_F(SecurityTest, TranscriptReplayAtAnotherMerchantFails) {
  // Paper: "anyone that sees the transcript should not be able to ... cash
  // the coin."  A transcript is bound to (merchant, time) through d.
  auto coin = withdraw();
  auto m1 = non_witness_merchant(coin);
  auto prepared = prepare(coin, m1, 2000);

  // The eavesdropper redirects the transcript to itself.
  MerchantId thief = m1 == "m000" ? "m001" : "m000";
  auto replayed = prepared.transcript;
  replayed.merchant = thief;
  auto& storefront = *dep_.node(thief).merchant;
  auto outcome =
      storefront.receive_payment(replayed, {prepared.commitment}, 2100);
  EXPECT_FALSE(outcome.ok());  // NIZK fails: d changed, response didn't
}

TEST_F(SecurityTest, TranscriptTimestampMalleabilityFails) {
  auto coin = withdraw();
  auto m1 = non_witness_merchant(coin);
  auto prepared = prepare(coin, m1, 2000);
  auto tampered = prepared.transcript;
  tampered.datetime += 1;  // replaying "later"
  auto& storefront = *dep_.node(m1).merchant;
  auto outcome =
      storefront.receive_payment(tampered, {prepared.commitment}, 2100);
  EXPECT_FALSE(outcome.ok());
}

TEST_F(SecurityTest, ResponseTamperingFails) {
  auto coin = withdraw();
  auto m1 = non_witness_merchant(coin);
  auto prepared = prepare(coin, m1, 2000);
  auto tampered = prepared.transcript;
  tampered.resp.r1 = bn::mod(tampered.resp.r1 + BigInt{1}, dep_.grp().q());
  EXPECT_FALSE(verify_transcript_proof(dep_.grp(), tampered));
}

TEST_F(SecurityTest, WrongWitnessCannotEndorse) {
  // A merchant colluding with a non-assigned "witness" gains nothing: the
  // endorsement is checked against the coin's assigned witness keys.
  auto coin = withdraw();
  auto m1 = non_witness_merchant(coin);
  auto prepared = prepare(coin, m1, 2000);
  auto& storefront = *dep_.node(m1).merchant;
  ASSERT_TRUE(
      storefront.receive_payment(prepared.transcript, {prepared.commitment},
                                 2100)
          .ok());
  // Forge an endorsement from a non-witness merchant.
  MerchantId impostor;
  for (const auto& id : dep_.merchant_ids()) {
    if (id != coin.coin.witnesses[0].merchant && id != m1) {
      impostor = id;
      break;
    }
  }
  crypto::ChaChaRng rng("impostor");
  auto impostor_key = sig::KeyPair::generate(dep_.grp(), rng);
  WitnessEndorsement forged{
      impostor, impostor_key.sign(prepared.transcript.signed_payload(), rng)};
  auto outcome =
      storefront.add_endorsement(prepared.transcript.coin.bare.coin_hash(),
                                 forged);
  EXPECT_FALSE(outcome.ok());
}

TEST_F(SecurityTest, EndorsementSignatureForgeRejected) {
  // Right witness id, wrong key.
  auto coin = withdraw();
  auto m1 = non_witness_merchant(coin);
  auto prepared = prepare(coin, m1, 2000);
  auto& storefront = *dep_.node(m1).merchant;
  ASSERT_TRUE(
      storefront.receive_payment(prepared.transcript, {prepared.commitment},
                                 2100)
          .ok());
  crypto::ChaChaRng rng("forger2");
  auto fake_key = sig::KeyPair::generate(dep_.grp(), rng);
  WitnessEndorsement forged{
      coin.coin.witnesses[0].merchant,
      fake_key.sign(prepared.transcript.signed_payload(), rng)};
  auto outcome = storefront.add_endorsement(
      prepared.transcript.coin.bare.coin_hash(), forged);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.refusal().reason, RefusalReason::kBadSignature);
}

TEST_F(SecurityTest, UnregisteredMerchantCannotDeposit) {
  auto coin = withdraw();
  auto m1 = non_witness_merchant(coin);
  ASSERT_TRUE(dep_.pay(*wallet_, coin, m1, 2000).accepted);
  auto queue = dep_.node(m1).merchant->drain_deposit_queue();
  ASSERT_EQ(queue.size(), 1u);
  auto outcome = dep_.broker().deposit("outsider", queue[0], 3000);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.refusal().reason, RefusalReason::kUnknownMerchant);
}

TEST_F(SecurityTest, DepositOfAnotherMerchantsTranscriptFails) {
  // A registered but dishonest merchant cannot cash a transcript made out
  // to a competitor.
  auto coin = withdraw();
  auto m1 = non_witness_merchant(coin);
  ASSERT_TRUE(dep_.pay(*wallet_, coin, m1, 2000).accepted);
  auto queue = dep_.node(m1).merchant->drain_deposit_queue();
  MerchantId thief = m1 == "m000" ? "m001" : "m000";
  auto outcome = dep_.broker().deposit(thief, queue[0], 3000);
  EXPECT_FALSE(outcome.ok());
}

TEST_F(SecurityTest, CommitmentFromNonAssignedWitnessRejected) {
  // A colluding merchant "witness-shops": gets a commitment from a witness
  // that is not assigned to the coin.
  auto coin = withdraw();
  auto m1 = non_witness_merchant(coin);
  auto intent = wallet_->prepare_payment(coin, m1);
  MerchantId other;
  for (const auto& id : dep_.merchant_ids()) {
    if (id != coin.coin.witnesses[0].merchant) {
      other = id;
      break;
    }
  }
  auto rogue =
      dep_.node(other).witness->request_commitment(intent.coin_hash,
                                                   intent.nonce, 2000);
  ASSERT_TRUE(rogue.ok());  // the rogue witness will happily commit…
  auto transcript =
      wallet_->build_transcript(coin, intent, {rogue.value()}, 2100);
  EXPECT_FALSE(transcript.ok());  // …but the wallet rejects it
  // And even if the client colluded too, the merchant rejects it.
  PaymentTranscript t;
  t.coin = coin.coin;
  t.merchant = m1;
  t.datetime = 2100;
  t.salt = intent.salt;
  auto d = payment_challenge(dep_.grp(), t.coin, t.merchant, t.datetime);
  t.resp = nizk::respond(dep_.grp(), coin.secret, d);
  auto outcome =
      dep_.node(m1).merchant->receive_payment(t, {rogue.value()}, 2200);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.refusal().reason, RefusalReason::kWrongWitness);
}

TEST_F(SecurityTest, WitnessRefusesCoinsNotAssignedToIt) {
  auto coin = withdraw();
  auto m1 = non_witness_merchant(coin);
  auto prepared = prepare(coin, m1, 2000);
  // Send the transcript to a witness that does not own the coin's range.
  MerchantId other;
  for (const auto& id : dep_.merchant_ids()) {
    if (id != coin.coin.witnesses[0].merchant) {
      other = id;
      break;
    }
  }
  auto outcome =
      dep_.node(other).witness->sign_transcript(prepared.transcript, 2200);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.refusal().reason, RefusalReason::kWrongWitness);
}

TEST_F(SecurityTest, SaltTamperingBreaksNonceBinding) {
  auto coin = withdraw();
  auto m1 = non_witness_merchant(coin);
  auto prepared = prepare(coin, m1, 2000);
  auto tampered = prepared.transcript;
  tampered.salt[0] ^= 0xff;
  auto outcome = dep_.node(m1).merchant->receive_payment(
      tampered, {prepared.commitment}, 2100);
  EXPECT_FALSE(outcome.ok());
}

TEST_F(SecurityTest, DoubleSpendProofCannotBeFabricated) {
  // Without two genuine transcripts, a random "proof" does not verify
  // against the coin's commitments (it would break dlog otherwise).
  auto coin = withdraw();
  crypto::ChaChaRng rng("fabricate");
  DoubleSpendProof fake;
  fake.coin_hash = coin.coin.bare.coin_hash();
  fake.a = coin.coin.bare.a;
  fake.b = coin.coin.bare.b;
  fake.secrets.of_a = {dep_.grp().random_scalar(rng),
                       dep_.grp().random_scalar(rng)};
  fake.secrets.of_b = {dep_.grp().random_scalar(rng),
                       dep_.grp().random_scalar(rng)};
  EXPECT_FALSE(fake.verify(dep_.grp()));
}

TEST_F(SecurityTest, InfoBindsWitnessPolicy) {
  // Downgrading the k-of-n policy inside info invalidates the broker's
  // blind signature.
  auto coin = withdraw();
  auto tampered = coin.coin;
  tampered.bare.info.witness_n = 1;
  tampered.bare.info.witness_k = 1;
  tampered.witnesses.resize(1);
  if (coin.coin.bare.info.witness_n == 1) {
    // Policy already 1/1 in this deployment: tamper differently.
    tampered.bare.info.soft_expiry += 1;
  }
  auto ok = verify_coin(dep_.grp(), dep_.broker().coin_key(), tampered, 2000);
  EXPECT_FALSE(ok.ok());
}

}  // namespace
}  // namespace p2pcash::ecash
