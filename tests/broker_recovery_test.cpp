// Broker crash recovery: the deposit database, merchant ledgers and table
// history must survive restarts — a forgetful broker pays every coin twice.

#include <gtest/gtest.h>

#include "ecash_fixture.h"

namespace p2pcash::ecash {
namespace {

using testing::EcashTest;

class BrokerRecoveryTest : public EcashTest {
 protected:
  void crash_and_restore() {
    auto snapshot = dep_.broker().snapshot_state();
    // Simulate a process restart: wipe in-memory state by restoring onto
    // the same object (the ctor-fresh state is what a reboot would give).
    dep_.broker().restore_state(snapshot);
  }
};

TEST_F(BrokerRecoveryTest, SnapshotRoundTripsExactly) {
  auto coin = withdraw(100);
  auto merchant = non_witness_merchant(coin);
  ASSERT_TRUE(dep_.pay(*wallet_, coin, merchant, 2000).accepted);
  ASSERT_EQ(dep_.deposit_all(merchant, 3000).accepted, 1u);
  auto snapshot = dep_.broker().snapshot_state();
  dep_.broker().restore_state(snapshot);
  EXPECT_EQ(dep_.broker().snapshot_state(), snapshot);
}

TEST_F(BrokerRecoveryTest, KeysSurviveSoOldCoinsStillVerify) {
  auto coin = withdraw(100);
  crash_and_restore();
  // Coins issued before the crash still verify under the restored key...
  EXPECT_TRUE(
      verify_coin(dep_.grp(), dep_.broker().coin_key(), coin.coin, 2000).ok());
  // ...and spend + deposit normally.
  auto merchant = non_witness_merchant(coin);
  ASSERT_TRUE(dep_.pay(*wallet_, coin, merchant, 2000).accepted);
  EXPECT_EQ(dep_.deposit_all(merchant, 3000).credited, 100u);
}

TEST_F(BrokerRecoveryTest, DepositDatabaseSurvives) {
  auto coin = withdraw(100);
  auto merchant = non_witness_merchant(coin);
  ASSERT_TRUE(dep_.pay(*wallet_, coin, merchant, 2000).accepted);
  auto queue = dep_.node(merchant).merchant->drain_deposit_queue();
  ASSERT_EQ(queue.size(), 1u);
  ASSERT_TRUE(dep_.broker().deposit(merchant, queue[0], 3000).ok());

  crash_and_restore();

  // Re-depositing after the restart must still be refused.
  auto again = dep_.broker().deposit(merchant, queue[0], 4000);
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.refusal().reason, RefusalReason::kAlreadyDeposited);
  EXPECT_EQ(dep_.broker().account(merchant)->balance, 100);
}

TEST_F(BrokerRecoveryTest, RenewalDatabaseSurvives) {
  auto coin = withdraw(100, 1000);
  Timestamp when = coin.coin.bare.info.soft_expiry +
                   dep_.broker().config().deposit_grace_ms + 1000;
  ASSERT_TRUE(dep_.renew(*wallet_, coin, when).ok());
  crash_and_restore();
  auto second = dep_.renew(*wallet_, coin, when + 100);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.refusal().reason, RefusalReason::kDoubleSpent);
}

TEST_F(BrokerRecoveryTest, OpenSessionsAreDroppedSafely) {
  // A withdrawal in flight across the crash: the signer nonces are gone,
  // so the session must be refused — never answered from scratch (which
  // could let a blinded challenge be answered twice).
  auto offer = dep_.broker().start_withdrawal(100, 1000);
  ASSERT_TRUE(offer.ok());
  auto state = wallet_->begin_withdrawal(offer.value());
  crash_and_restore();
  auto response = dep_.broker().finish_withdrawal(state.session, state.e);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.refusal().reason, RefusalReason::kStaleRequest);
  // The client simply retries with a fresh session.
  auto coin = withdraw(100, 2000);
  EXPECT_EQ(coin.coin.bare.info.denomination, 100u);
}

TEST_F(BrokerRecoveryTest, FlagsAndFaultsSurvive) {
  auto coin = withdraw(100);
  auto witness_id = coin.coin.witnesses[0].merchant;
  dep_.node(witness_id).witness->set_faulty(true);
  std::vector<MerchantId> victims;
  for (const auto& id : dep_.merchant_ids())
    if (id != witness_id && victims.size() < 2) victims.push_back(id);
  ASSERT_TRUE(dep_.pay(*wallet_, coin, victims[0], 2000).accepted);
  ASSERT_TRUE(dep_.pay(*wallet_, coin, victims[1], 3000).accepted);
  dep_.deposit_all(victims[0], 4000);
  dep_.deposit_all(victims[1], 4000);
  ASSERT_TRUE(dep_.broker().account(witness_id)->flagged);

  crash_and_restore();
  EXPECT_TRUE(dep_.broker().account(witness_id)->flagged);
  ASSERT_EQ(dep_.broker().witness_faults().size(), 1u);
  // The flagged witness stays out of post-restart tables.
  const auto& table = dep_.broker().publish_witness_table(5000);
  EXPECT_FALSE(table.find(witness_id).has_value());
}

TEST_F(BrokerRecoveryTest, CorruptSnapshotsRejectedAtomically) {
  auto coin = withdraw(100);
  auto merchant = non_witness_merchant(coin);
  ASSERT_TRUE(dep_.pay(*wallet_, coin, merchant, 2000).accepted);
  dep_.deposit_all(merchant, 3000);
  auto snapshot = dep_.broker().snapshot_state();
  auto before = dep_.broker().snapshot_state();

  auto garbled = snapshot;
  garbled[5] ^= 0xff;  // inside the magic string
  EXPECT_THROW(dep_.broker().restore_state(garbled), wire::DecodeError);
  for (std::size_t cut : {0u, 10u, 60u}) {
    std::span<const std::uint8_t> prefix(snapshot.data(), cut);
    EXPECT_THROW(dep_.broker().restore_state(prefix), wire::DecodeError);
  }
  // Failed restores left the broker untouched.
  EXPECT_EQ(dep_.broker().snapshot_state(), before);
}

}  // namespace
}  // namespace p2pcash::ecash
