// Broker crash recovery: the deposit database, merchant ledgers and table
// history must survive restarts — a forgetful broker pays every coin twice.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>

#include "ecash_fixture.h"
#include "store/log_store.h"
#include "store/vfs.h"

namespace p2pcash::ecash {
namespace {

using testing::EcashTest;

/// When $P2PCASH_STORE_ARTIFACT names a directory, dumps the offending log
/// bytes and the record-boundary index there so CI can upload them as a
/// failure artifact.
void dump_store_artifact(const std::string& tag,
                         const std::vector<std::uint8_t>& log,
                         const std::vector<std::uint64_t>& bounds) {
  const char* dir = std::getenv("P2PCASH_STORE_ARTIFACT");
  if (dir == nullptr) return;
  std::ofstream raw(std::string(dir) + "/" + tag + ".log", std::ios::binary);
  raw.write(reinterpret_cast<const char*>(log.data()),
            static_cast<std::streamsize>(log.size()));
  std::ofstream idx(std::string(dir) + "/" + tag + ".idx");
  for (auto b : bounds) idx << b << "\n";
}

std::uint32_t be32_at(const std::vector<std::uint8_t>& b, std::size_t off) {
  return (std::uint32_t{b[off]} << 24) | (std::uint32_t{b[off + 1]} << 16) |
         (std::uint32_t{b[off + 2]} << 8) | std::uint32_t{b[off + 3]};
}

class BrokerRecoveryTest : public EcashTest {
 protected:
  void crash_and_restore() {
    auto snapshot = dep_.broker().snapshot_state();
    // Simulate a process restart: wipe in-memory state by restoring onto
    // the same object (the ctor-fresh state is what a reboot would give).
    dep_.broker().restore_state(snapshot);
  }
};

TEST_F(BrokerRecoveryTest, SnapshotRoundTripsExactly) {
  auto coin = withdraw(100);
  auto merchant = non_witness_merchant(coin);
  ASSERT_TRUE(dep_.pay(*wallet_, coin, merchant, 2000).accepted);
  ASSERT_EQ(dep_.deposit_all(merchant, 3000).accepted, 1u);
  auto snapshot = dep_.broker().snapshot_state();
  dep_.broker().restore_state(snapshot);
  EXPECT_EQ(dep_.broker().snapshot_state(), snapshot);
}

TEST_F(BrokerRecoveryTest, KeysSurviveSoOldCoinsStillVerify) {
  auto coin = withdraw(100);
  crash_and_restore();
  // Coins issued before the crash still verify under the restored key...
  EXPECT_TRUE(
      verify_coin(dep_.grp(), dep_.broker().coin_key(), coin.coin, 2000).ok());
  // ...and spend + deposit normally.
  auto merchant = non_witness_merchant(coin);
  ASSERT_TRUE(dep_.pay(*wallet_, coin, merchant, 2000).accepted);
  EXPECT_EQ(dep_.deposit_all(merchant, 3000).credited, 100u);
}

TEST_F(BrokerRecoveryTest, DepositDatabaseSurvives) {
  auto coin = withdraw(100);
  auto merchant = non_witness_merchant(coin);
  ASSERT_TRUE(dep_.pay(*wallet_, coin, merchant, 2000).accepted);
  auto queue = dep_.node(merchant).merchant->drain_deposit_queue();
  ASSERT_EQ(queue.size(), 1u);
  ASSERT_TRUE(dep_.broker().deposit(merchant, queue[0], 3000).ok());

  crash_and_restore();

  // Re-depositing after the restart must still be refused.
  auto again = dep_.broker().deposit(merchant, queue[0], 4000);
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.refusal().reason, RefusalReason::kAlreadyDeposited);
  EXPECT_EQ(dep_.broker().account(merchant)->balance, 100);
}

TEST_F(BrokerRecoveryTest, RenewalDatabaseSurvives) {
  auto coin = withdraw(100, 1000);
  Timestamp when = coin.coin.bare.info.soft_expiry +
                   dep_.broker().config().deposit_grace_ms + 1000;
  ASSERT_TRUE(dep_.renew(*wallet_, coin, when).ok());
  crash_and_restore();
  auto second = dep_.renew(*wallet_, coin, when + 100);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.refusal().reason, RefusalReason::kDoubleSpent);
}

TEST_F(BrokerRecoveryTest, OpenSessionsAreDroppedSafely) {
  // A withdrawal in flight across the crash: the signer nonces are gone,
  // so the session must be refused — never answered from scratch (which
  // could let a blinded challenge be answered twice).
  auto offer = dep_.broker().start_withdrawal(100, 1000);
  ASSERT_TRUE(offer.ok());
  auto state = wallet_->begin_withdrawal(offer.value());
  crash_and_restore();
  auto response = dep_.broker().finish_withdrawal(state.session, state.e);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.refusal().reason, RefusalReason::kStaleRequest);
  // The client simply retries with a fresh session.
  auto coin = withdraw(100, 2000);
  EXPECT_EQ(coin.coin.bare.info.denomination, 100u);
}

TEST_F(BrokerRecoveryTest, FlagsAndFaultsSurvive) {
  auto coin = withdraw(100);
  auto witness_id = coin.coin.witnesses[0].merchant;
  dep_.node(witness_id).witness->set_faulty(true);
  std::vector<MerchantId> victims;
  for (const auto& id : dep_.merchant_ids())
    if (id != witness_id && victims.size() < 2) victims.push_back(id);
  ASSERT_TRUE(dep_.pay(*wallet_, coin, victims[0], 2000).accepted);
  ASSERT_TRUE(dep_.pay(*wallet_, coin, victims[1], 3000).accepted);
  dep_.deposit_all(victims[0], 4000);
  dep_.deposit_all(victims[1], 4000);
  ASSERT_TRUE(dep_.broker().account(witness_id)->flagged);

  crash_and_restore();
  EXPECT_TRUE(dep_.broker().account(witness_id)->flagged);
  ASSERT_EQ(dep_.broker().witness_faults().size(), 1u);
  // The flagged witness stays out of post-restart tables.
  const auto& table = dep_.broker().publish_witness_table(5000);
  EXPECT_FALSE(table.find(witness_id).has_value());
}

TEST_F(BrokerRecoveryTest, CorruptSnapshotsRejectedAtomically) {
  auto coin = withdraw(100);
  auto merchant = non_witness_merchant(coin);
  ASSERT_TRUE(dep_.pay(*wallet_, coin, merchant, 2000).accepted);
  dep_.deposit_all(merchant, 3000);
  auto snapshot = dep_.broker().snapshot_state();
  auto before = dep_.broker().snapshot_state();

  auto garbled = snapshot;
  garbled[5] ^= 0xff;  // inside the magic string
  EXPECT_THROW(dep_.broker().restore_state(garbled), wire::DecodeError);
  for (std::size_t cut : {0u, 10u, 60u}) {
    std::span<const std::uint8_t> prefix(snapshot.data(), cut);
    EXPECT_THROW(dep_.broker().restore_state(prefix), wire::DecodeError);
  }
  // Failed restores left the broker untouched.
  EXPECT_EQ(dep_.broker().snapshot_state(), before);
}

TEST_F(BrokerRecoveryTest, CrashPointMatrixLosesNoAcknowledgedOperation) {
  // The durable-log contract, enforced exhaustively: attach a LogStore,
  // drive a seeded workload, and for every acknowledged operation plant
  // the log exactly as a crash at that commit boundary would leave it —
  // recovery must reproduce the acknowledged state byte-for-byte.  Then
  // kill at every record boundary and at torn cuts inside the following
  // record: truncate-to-last-valid, never a crash, never half a record.
  store::MemVfs vfs;
  store::LogStore log(vfs, "broker.log");
  dep_.broker().attach_store(log);

  struct Ack {
    std::uint64_t offset;
    std::vector<std::uint8_t> snapshot;
  };
  std::vector<Ack> acks;
  auto mark = [&]() {
    acks.push_back({vfs.contents("broker.log").size(),
                    dep_.broker().snapshot_state()});
  };
  mark();  // genesis checkpoint

  // Seeded workload: withdrawals, a manual deposit (kept for the
  // exactly-once probe), deposit waves, an exchange, a renewal and a table
  // publication — every broker delta kind fires at least once.
  std::vector<WalletCoin> coins;
  for (int i = 0; i < 10; ++i) {
    coins.push_back(withdraw(100));
    mark();
  }
  const auto m0 = non_witness_merchant(coins[0]);
  ASSERT_TRUE(dep_.pay(*wallet_, coins[0], m0, 2000).accepted);
  auto queue = dep_.node(m0).merchant->drain_deposit_queue();
  ASSERT_FALSE(queue.empty());
  ASSERT_TRUE(dep_.broker().deposit(m0, queue[0], 2500).ok());
  mark();
  for (int i = 1; i < 6; ++i)
    ASSERT_TRUE(dep_.pay(*wallet_, coins[i], non_witness_merchant(coins[i]),
                         2000 + i)
                    .accepted);
  for (const auto& id : dep_.merchant_ids()) {
    dep_.deposit_all(id, 3000);
    mark();
  }
  ASSERT_TRUE(dep_.exchange(*wallet_, coins[6], {60, 40}, 4000).ok());
  mark();
  Timestamp when = coins[7].coin.bare.info.soft_expiry +
                   dep_.broker().config().deposit_grace_ms + 1000;
  ASSERT_TRUE(dep_.renew(*wallet_, coins[7], when).ok());
  mark();
  dep_.broker().publish_witness_table(5000);
  mark();

  const auto final_log = vfs.contents("broker.log");

  // Record boundaries straight from the length-prefixed frames.
  std::vector<std::uint64_t> bounds{0};
  for (std::size_t off = 0;
       off + store::kFrameHeaderBytes <= final_log.size();) {
    off += store::kFrameHeaderBytes + be32_at(final_log, off);
    ASSERT_LE(off, final_log.size());
    bounds.push_back(off);
  }
  ASSERT_EQ(bounds.back(), final_log.size());

  auto recover_at = [&](std::uint64_t cut) {
    store::MemVfs crashed;
    crashed.set_contents(
        "broker.log",
        std::vector<std::uint8_t>(
            final_log.begin(),
            final_log.begin() + static_cast<std::ptrdiff_t>(cut)));
    store::LogStore reopened(crashed, "broker.log");
    crypto::ChaChaRng rng("crash-matrix");
    Broker reborn(dep_.grp(), rng, dep_.broker().config());
    reborn.attach_store(reopened);
    return reborn.snapshot_state();
  };

  // 1. Zero lost acknowledged operations: every commit boundary recovers
  //    to the exact acknowledged state.
  for (std::size_t i = 0; i < acks.size(); ++i)
    EXPECT_EQ(recover_at(acks[i].offset), acks[i].snapshot) << "ack " << i;

  // 2. Kill at every record boundary and inside every following record:
  //    a torn tail recovers to the boundary state (records are atomic).
  for (std::size_t i = 0; i + 1 < bounds.size(); ++i) {
    auto at_boundary = recover_at(bounds[i]);
    const std::uint64_t next = bounds[i + 1];
    for (std::uint64_t cut :
         {bounds[i] + 1, (bounds[i] + next) / 2, next - 1}) {
      if (cut <= bounds[i] || cut >= next) continue;
      EXPECT_EQ(recover_at(cut), at_boundary) << "record " << i;
    }
  }

  // 3. Exactly-once detection across the reboot: the already-credited
  //    endorsement is refused, not paid twice, and balances are intact.
  {
    store::MemVfs last;
    last.set_contents("broker.log", final_log);
    store::LogStore reopened(last, "broker.log");
    crypto::ChaChaRng rng("crash-matrix-final");
    Broker reborn(dep_.grp(), rng, dep_.broker().config());
    reborn.attach_store(reopened);
    EXPECT_EQ(reborn.snapshot_state(), dep_.broker().snapshot_state());
    auto again = reborn.deposit(m0, queue[0], 9000);
    ASSERT_FALSE(again.ok());
    EXPECT_EQ(again.refusal().reason, RefusalReason::kAlreadyDeposited);
    EXPECT_EQ(reborn.account(m0)->balance, dep_.broker().account(m0)->balance);
  }

  if (HasFailure()) dump_store_artifact("broker", final_log, bounds);
}

}  // namespace
}  // namespace p2pcash::ecash
