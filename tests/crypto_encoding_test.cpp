// Hex, base64 and percent-encoding codecs.

#include "crypto/encoding.h"

#include <gtest/gtest.h>

#include "crypto/chacha.h"

namespace p2pcash::crypto {
namespace {

std::vector<std::uint8_t> str_bytes(std::string_view s) {
  return {s.begin(), s.end()};
}

TEST(Hex, KnownValues) {
  EXPECT_EQ(to_hex(str_bytes("\x00\xff\x10")), "");  // careful: \x00 ends C-string
  EXPECT_EQ(to_hex(std::vector<std::uint8_t>{0x00, 0xff, 0x10}), "00ff10");
  EXPECT_EQ(from_hex("00ff10"), (std::vector<std::uint8_t>{0x00, 0xff, 0x10}));
  EXPECT_EQ(from_hex("DEADbeef"),
            (std::vector<std::uint8_t>{0xde, 0xad, 0xbe, 0xef}));
}

TEST(Hex, Errors) {
  EXPECT_THROW(from_hex("abc"), std::invalid_argument);   // odd length
  EXPECT_THROW(from_hex("zz"), std::invalid_argument);    // bad digit
  EXPECT_TRUE(from_hex("").empty());
}

TEST(Base64, Rfc4648Vectors) {
  EXPECT_EQ(to_base64(str_bytes("")), "");
  EXPECT_EQ(to_base64(str_bytes("f")), "Zg==");
  EXPECT_EQ(to_base64(str_bytes("fo")), "Zm8=");
  EXPECT_EQ(to_base64(str_bytes("foo")), "Zm9v");
  EXPECT_EQ(to_base64(str_bytes("foob")), "Zm9vYg==");
  EXPECT_EQ(to_base64(str_bytes("fooba")), "Zm9vYmE=");
  EXPECT_EQ(to_base64(str_bytes("foobar")), "Zm9vYmFy");
}

TEST(Base64, DecodeVectors) {
  EXPECT_EQ(from_base64("Zm9vYmFy"), str_bytes("foobar"));
  EXPECT_EQ(from_base64("Zg=="), str_bytes("f"));
  EXPECT_EQ(from_base64(""), std::vector<std::uint8_t>{});
}

TEST(Base64, Errors) {
  EXPECT_THROW(from_base64("Zg"), std::invalid_argument);    // not mult of 4
  EXPECT_THROW(from_base64("Zg=a"), std::invalid_argument);  // data after pad
  EXPECT_THROW(from_base64("Z==="), std::invalid_argument);  // 3 pads
  EXPECT_THROW(from_base64("Zg!!"), std::invalid_argument);  // bad digit
  EXPECT_THROW(from_base64("Zg==Zg=="), std::invalid_argument);  // pad inside
}

TEST(Base64, RandomRoundTrip) {
  ChaChaRng rng("b64");
  for (std::size_t len = 0; len < 100; ++len) {
    std::vector<std::uint8_t> data(len);
    rng.fill(data);
    EXPECT_EQ(from_base64(to_base64(data)), data) << len;
  }
}

TEST(UriEscape, Unreserved) {
  EXPECT_EQ(uri_escape("AZaz09-._~"), "AZaz09-._~");
  EXPECT_EQ(uri_escape("a b"), "a%20b");
  EXPECT_EQ(uri_escape("x=y&z"), "x%3dy%26z");
  EXPECT_EQ(uri_escape("+/"), "%2b%2f");
}

TEST(UriEscape, RoundTrip) {
  ChaChaRng rng("uri");
  for (int i = 0; i < 50; ++i) {
    std::vector<std::uint8_t> raw(40);
    rng.fill(raw);
    std::string s(raw.begin(), raw.end());
    EXPECT_EQ(uri_unescape(uri_escape(s)), s);
  }
}

TEST(UriEscape, UnescapeErrors) {
  EXPECT_THROW(uri_unescape("%"), std::invalid_argument);
  EXPECT_THROW(uri_unescape("%2"), std::invalid_argument);
  EXPECT_THROW(uri_unescape("%zz"), std::invalid_argument);
  EXPECT_EQ(uri_unescape("ok%20ok"), "ok ok");
}

}  // namespace
}  // namespace p2pcash::crypto
