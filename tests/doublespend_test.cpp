// Double-spending: real-time prevention, proof extraction, faulty
// witnesses, and the broker's deposit-time dedup (Algorithm 3 cases).

#include <gtest/gtest.h>

#include "ecash_fixture.h"

namespace p2pcash::ecash {
namespace {

using testing::EcashTest;

class DoubleSpendTest : public EcashTest {};

TEST_F(DoubleSpendTest, SecondSpendBlockedInRealTime) {
  auto coin = withdraw(100);
  auto m1 = non_witness_merchant(coin);
  ASSERT_TRUE(dep_.pay(*wallet_, coin, m1, 2000).accepted);

  // Pick a second, different merchant.
  MerchantId m2;
  for (const auto& id : dep_.merchant_ids()) {
    if (id != m1) {
      m2 = id;
      break;
    }
  }
  auto result = dep_.pay(*wallet_, coin, m2, 3000);
  EXPECT_FALSE(result.accepted);
  ASSERT_TRUE(result.double_spend_proof.has_value());
  // The proof is publicly verifiable and opens this coin's commitments.
  EXPECT_TRUE(result.double_spend_proof->verify(dep_.grp()));
  EXPECT_EQ(result.double_spend_proof->coin_hash, coin.coin.bare.coin_hash());
  // The second merchant delivered nothing and blocked the fraud.
  EXPECT_EQ(dep_.node(m2).merchant->services_delivered(), 0u);
  EXPECT_EQ(dep_.node(m2).merchant->double_spends_blocked(), 1u);
}

TEST_F(DoubleSpendTest, ExtractedSecretsAreTheCoinSecrets) {
  auto coin = withdraw(100);
  auto m1 = non_witness_merchant(coin);
  ASSERT_TRUE(dep_.pay(*wallet_, coin, m1, 2000).accepted);
  MerchantId m2 = m1 == "m000" ? "m001" : "m000";
  auto result = dep_.pay(*wallet_, coin, m2, 3000);
  ASSERT_TRUE(result.double_spend_proof.has_value());
  const auto& secrets = result.double_spend_proof->secrets;
  EXPECT_EQ(secrets.of_a.e1, coin.secret.x1);
  EXPECT_EQ(secrets.of_a.e2, coin.secret.x2);
  EXPECT_EQ(secrets.of_b.e1, coin.secret.y1);
  EXPECT_EQ(secrets.of_b.e2, coin.secret.y2);
}

TEST_F(DoubleSpendTest, WitnessDropsTranscriptsAfterDetection) {
  auto coin = withdraw(100);
  auto m1 = non_witness_merchant(coin);
  ASSERT_TRUE(dep_.pay(*wallet_, coin, m1, 2000).accepted);
  MerchantId m2 = m1 == "m000" ? "m001" : "m000";
  (void)dep_.pay(*wallet_, coin, m2, 3000);
  auto& witness = *dep_.node(coin.coin.witnesses[0].merchant).witness;
  EXPECT_TRUE(witness.has_double_spend_record(coin.coin.bare.coin_hash()));
}

TEST_F(DoubleSpendTest, ThirdSpendAnsweredFromStoredProof) {
  auto coin = withdraw(100);
  auto ids = dep_.merchant_ids();
  ASSERT_TRUE(dep_.pay(*wallet_, coin, ids[0], 2000).accepted);
  EXPECT_FALSE(dep_.pay(*wallet_, coin, ids[1], 3000).accepted);
  auto third = dep_.pay(*wallet_, coin, ids[2], 4000);
  EXPECT_FALSE(third.accepted);
  ASSERT_TRUE(third.double_spend_proof.has_value());
  EXPECT_TRUE(third.double_spend_proof->verify(dep_.grp()));
}

TEST_F(DoubleSpendTest, SameMerchantSameCoinRejectedLocally) {
  auto coin = withdraw(100);
  auto m1 = non_witness_merchant(coin);
  ASSERT_TRUE(dep_.pay(*wallet_, coin, m1, 2000).accepted);
  // The merchant itself refuses a coin it has already accepted — no
  // witness round needed.
  auto result = dep_.pay(*wallet_, coin, m1, 3000);
  EXPECT_FALSE(result.accepted);
  ASSERT_TRUE(result.refusal.has_value());
  EXPECT_EQ(result.refusal->reason, RefusalReason::kDoubleSpent);
}

TEST_F(DoubleSpendTest, FaultyWitnessCaughtAtDeposit) {
  auto coin = withdraw(100);
  auto witness_id = coin.coin.witnesses[0].merchant;
  dep_.node(witness_id).witness->set_faulty(true);  // signs everything

  // Two different merchants both accept the double-spent coin.
  std::vector<MerchantId> victims;
  for (const auto& id : dep_.merchant_ids()) {
    if (id != witness_id && victims.size() < 2) victims.push_back(id);
  }
  ASSERT_TRUE(dep_.pay(*wallet_, coin, victims[0], 2000).accepted);
  ASSERT_TRUE(dep_.pay(*wallet_, coin, victims[1], 3000).accepted);

  // Both deposit. The first clears normally; the second is paid from the
  // witness's security deposit and the witness is flagged.
  auto s1 = dep_.deposit_all(victims[0], 5000);
  EXPECT_EQ(s1.credited, 100u);
  auto deposit_before =
      dep_.broker().account(witness_id)->deposit_remaining;
  auto s2 = dep_.deposit_all(victims[1], 6000);
  EXPECT_EQ(s2.credited, 100u);  // merchant is made whole
  const auto* witness_account = dep_.broker().account(witness_id);
  EXPECT_TRUE(witness_account->flagged);
  EXPECT_EQ(witness_account->deposit_remaining, deposit_before - 100u);
  ASSERT_EQ(dep_.broker().witness_faults().size(), 1u);
  EXPECT_EQ(dep_.broker().witness_faults()[0].witness, witness_id);
}

TEST_F(DoubleSpendTest, FlaggedWitnessExcludedFromNextTable) {
  auto coin = withdraw(100);
  auto witness_id = coin.coin.witnesses[0].merchant;
  dep_.node(witness_id).witness->set_faulty(true);
  std::vector<MerchantId> victims;
  for (const auto& id : dep_.merchant_ids()) {
    if (id != witness_id && victims.size() < 2) victims.push_back(id);
  }
  ASSERT_TRUE(dep_.pay(*wallet_, coin, victims[0], 2000).accepted);
  ASSERT_TRUE(dep_.pay(*wallet_, coin, victims[1], 3000).accepted);
  dep_.deposit_all(victims[0], 5000);
  dep_.deposit_all(victims[1], 5000);
  const auto& table2 = dep_.broker().publish_witness_table(6000);
  EXPECT_EQ(table2.version(), 2u);
  EXPECT_FALSE(table2.find(witness_id).has_value());
}

TEST_F(DoubleSpendTest, SameMerchantCannotDepositTwice) {
  auto coin = withdraw(100);
  auto m1 = non_witness_merchant(coin);
  ASSERT_TRUE(dep_.pay(*wallet_, coin, m1, 2000).accepted);
  auto queue = dep_.node(m1).merchant->drain_deposit_queue();
  ASSERT_EQ(queue.size(), 1u);
  auto r1 = dep_.broker().deposit(m1, queue[0], 5000);
  EXPECT_TRUE(r1.ok());
  auto r2 = dep_.broker().deposit(m1, queue[0], 6000);
  ASSERT_FALSE(r2.ok());
  EXPECT_EQ(r2.refusal().reason, RefusalReason::kAlreadyDeposited);
  EXPECT_EQ(dep_.broker().account(m1)->balance, 100);
}

TEST_F(DoubleSpendTest, HonestWitnessMeansNoWitnessFaults) {
  for (int i = 0; i < 5; ++i) {
    auto coin = withdraw(100);
    auto merchant = non_witness_merchant(coin);
    ASSERT_TRUE(dep_.pay(*wallet_, coin, merchant, 2000 + i).accepted);
    dep_.deposit_all(merchant, 5000);
  }
  EXPECT_TRUE(dep_.broker().witness_faults().empty());
}

class MassDoubleSpendTest : public EcashTest {};

TEST_F(MassDoubleSpendTest, NoDoubleSpendEverSucceedsWithHonestWitnesses) {
  // Property: across many attempts, exactly one spend per coin succeeds.
  crypto::ChaChaRng rng("mass");
  auto ids = dep_.merchant_ids();
  for (int round = 0; round < 6; ++round) {
    auto coin = withdraw(100, 1000 + round);
    int successes = 0;
    for (std::size_t attempt = 0; attempt < 4; ++attempt) {
      const auto& merchant = ids[(round + attempt * 3) % ids.size()];
      if (dep_.pay(*wallet_, coin, merchant, 2000 + attempt).accepted)
        ++successes;
    }
    EXPECT_EQ(successes, 1) << "round " << round;
  }
}

}  // namespace
}  // namespace p2pcash::ecash
