// Verification worker pool + striped witness hot path.  Run under
// -DP2PCASH_SANITIZE=thread this is the TSan proof that the witness's
// coin-hash-striped locking keeps check-then-sign atomic per coin while
// payments of different coins proceed in parallel, and that the batch
// entry point (one RLC multi-exp per wave) makes the same decisions as
// sequential sign_transcript calls.

#include "verify/worker_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <thread>
#include <vector>

#include "ecash_fixture.h"

namespace p2pcash::ecash {
namespace {

// ---------------------------------------------------------------------------
// WorkerPool semantics
// ---------------------------------------------------------------------------

TEST(WorkerPool, RunsEveryTaskAndDrainIsABarrier) {
  verify::WorkerPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i)
    pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
  pool.drain();
  EXPECT_EQ(done.load(), 100);
  // A drained pool accepts new waves.
  pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
  pool.drain();
  EXPECT_EQ(done.load(), 101);
}

TEST(WorkerPool, DrainWaitsForInFlightTasks) {
  verify::WorkerPool pool(2);
  std::atomic<bool> finished{false};
  pool.submit([&finished] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    finished.store(true, std::memory_order_release);
  });
  pool.drain();
  EXPECT_TRUE(finished.load(std::memory_order_acquire));
}

TEST(WorkerPool, DestructorRunsPendingTasks) {
  std::atomic<int> done{0};
  {
    verify::WorkerPool pool(1);
    for (int i = 0; i < 16; ++i)
      pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
  }
  EXPECT_EQ(done.load(), 16);
}

TEST(WorkerPool, ZeroThreadsClampedToOne) {
  verify::WorkerPool pool(0);
  EXPECT_EQ(pool.thread_count(), 1u);
  std::atomic<bool> ran{false};
  pool.submit([&ran] { ran.store(true); });
  pool.drain();
  EXPECT_TRUE(ran.load());
}

// ---------------------------------------------------------------------------
// Striped witness: batch entry point and concurrent hot path
// ---------------------------------------------------------------------------

class VerifyPoolTest : public ecash::testing::EcashTest {
 protected:
  struct Prepared {
    Wallet::PaymentIntent intent;
    WitnessCommitment commitment;
    PaymentTranscript transcript;
  };

  /// Steps 1-3 of a payment at the coin's slot-0 witness, unsubmitted.
  Prepared prepare(const WalletCoin& coin, const MerchantId& merchant,
                   Timestamp now) {
    Prepared p;
    p.intent = wallet_->prepare_payment(coin, merchant);
    auto commitment = witness_for(coin).request_commitment(p.intent.coin_hash,
                                                           p.intent.nonce, now);
    EXPECT_TRUE(commitment.ok());
    p.commitment = commitment.value();
    auto transcript =
        wallet_->build_transcript(coin, p.intent, {p.commitment}, now + 50);
    EXPECT_TRUE(transcript.ok());
    p.transcript = transcript.value();
    return p;
  }

  WitnessService& witness_for(const WalletCoin& coin) {
    return *dep_.node(coin.coin.witnesses[0].merchant).witness;
  }

  MerchantId witness_id(const WalletCoin& coin) {
    return coin.coin.witnesses[0].merchant;
  }
};

TEST_F(VerifyPoolTest, BatchSignEndorsesIndependentCoins) {
  // Six fresh coins, batched per witness: every payment must come back as
  // an endorsement, and a sequential retry of each transcript must get the
  // identical endorsement back (the batch recorded the spends).
  std::map<MerchantId, std::vector<PaymentTranscript>> waves;
  std::size_t total = 0;
  for (int i = 0; i < 6; ++i) {
    auto coin = withdraw(100, 1000);
    auto p = prepare(coin, non_witness_merchant(coin), 2000);
    waves[witness_id(coin)].push_back(p.transcript);
    ++total;
  }
  std::size_t endorsed = 0;
  for (auto& [id, transcripts] : waves) {
    auto& witness = *dep_.node(id).witness;
    auto results = witness.sign_transcript_batch(transcripts, 2100);
    ASSERT_EQ(results.size(), transcripts.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      ASSERT_TRUE(results[i].ok()) << results[i].refusal().detail;
      ASSERT_TRUE(std::holds_alternative<WitnessEndorsement>(
          results[i].value()));
      ++endorsed;
      auto retry = witness.sign_transcript(transcripts[i], 2100);
      ASSERT_TRUE(retry.ok());
      EXPECT_EQ(std::get<WitnessEndorsement>(retry.value()),
                std::get<WitnessEndorsement>(results[i].value()));
    }
  }
  EXPECT_EQ(endorsed, total);
}

TEST_F(VerifyPoolTest, ForgedProofInBatchRefusedWithoutPunishingOthers) {
  // Collect three coins assigned to the same witness, forge the middle
  // NIZK: the batch must refuse exactly that payment with kBadProof (named
  // by the bisection) and endorse the neighbours.
  std::map<MerchantId, std::vector<WalletCoin>> by_witness;
  MerchantId target;
  for (int i = 0; i < 60 && target.empty(); ++i) {
    auto coin = withdraw(100, 1000);
    auto& bucket = by_witness[witness_id(coin)];
    bucket.push_back(coin);
    if (bucket.size() == 3) target = witness_id(coin);
  }
  ASSERT_FALSE(target.empty()) << "no witness accumulated 3 coins";
  std::vector<PaymentTranscript> transcripts;
  for (const auto& coin : by_witness[target]) {
    auto p = prepare(coin, non_witness_merchant(coin), 2000);
    transcripts.push_back(p.transcript);
  }
  transcripts[1].resp.r1 =
      bn::mod(transcripts[1].resp.r1 + bn::BigInt{1}, dep_.grp().q());
  auto& witness = *dep_.node(target).witness;
  auto results = witness.sign_transcript_batch(transcripts, 2100);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].ok());
  ASSERT_FALSE(results[1].ok());
  EXPECT_EQ(results[1].refusal().reason, RefusalReason::kBadProof);
  EXPECT_TRUE(results[2].ok());
}

TEST_F(VerifyPoolTest, SameCoinTwiceInOneBatchResolvesInIndexOrder) {
  // Two transcripts of ONE coin (same commitment, different datetime, so
  // different challenges) inside one batch: index order decides — the
  // first is endorsed, the second is a provable double spend, exactly as
  // sequential calls would resolve them.
  auto coin = withdraw(100, 1000);
  auto p = prepare(coin, non_witness_merchant(coin), 2000);
  auto second =
      wallet_->build_transcript(coin, p.intent, {p.commitment}, 2075);
  ASSERT_TRUE(second.ok());
  std::vector<PaymentTranscript> wave{p.transcript, second.value()};
  auto& witness = witness_for(coin);
  auto results = witness.sign_transcript_batch(wave, 2100);
  ASSERT_EQ(results.size(), 2u);
  ASSERT_TRUE(results[0].ok());
  EXPECT_TRUE(std::holds_alternative<WitnessEndorsement>(results[0].value()));
  ASSERT_TRUE(results[1].ok());
  EXPECT_TRUE(std::holds_alternative<DoubleSpendProof>(results[1].value()));
  EXPECT_TRUE(witness.has_double_spend_record(coin.coin.bare.coin_hash()));
}

TEST_F(VerifyPoolTest, PooledSigningOfDisjointCoinsAllEndorse) {
  // The PR's hot path end to end: independent payments pipelined through
  // the worker pool against striped witnesses.  Different coins land on
  // different stripes, so the tasks genuinely interleave inside each
  // WitnessService; every payment must still endorse exactly once.
  constexpr int kPayments = 24;
  std::map<MerchantId, std::vector<PaymentTranscript>> waves;
  for (int i = 0; i < kPayments; ++i) {
    auto coin = withdraw(100, 1000);
    auto p = prepare(coin, non_witness_merchant(coin), 2000);
    waves[witness_id(coin)].push_back(p.transcript);
  }
  std::uint64_t signed_before = 0;
  for (const auto& [id, _] : waves)
    signed_before += dep_.node(id).witness->coins_signed();
  EXPECT_EQ(signed_before, 0u);

  verify::WorkerPool pool(8);
  std::atomic<int> endorsed{0};
  std::atomic<int> failures{0};
  for (auto& [id, transcripts] : waves) {
    WitnessService* witness = dep_.node(id).witness.get();
    for (const auto& transcript : transcripts) {
      pool.submit([witness, &transcript, &endorsed, &failures] {
        auto result = witness->sign_transcript(transcript, 2100);
        if (result.ok() &&
            std::holds_alternative<WitnessEndorsement>(result.value()))
          endorsed.fetch_add(1, std::memory_order_relaxed);
        else
          failures.fetch_add(1, std::memory_order_relaxed);
      });
    }
  }
  pool.drain();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(endorsed.load(), kPayments);
  std::uint64_t signed_after = 0;
  for (const auto& [id, _] : waves)
    signed_after += dep_.node(id).witness->coins_signed();
  EXPECT_EQ(signed_after, static_cast<std::uint64_t>(kPayments));
}

TEST_F(VerifyPoolTest, RacingSpendsOfOneCoinYieldOneEndorsementOneProof) {
  // Two transcripts of the same coin raced through the pool: whatever the
  // interleaving, the stripe's check-then-sign must admit exactly one
  // endorsement, and the loser must receive a publicly verifiable proof.
  auto coin = withdraw(100, 1000);
  auto p = prepare(coin, non_witness_merchant(coin), 2000);
  auto second =
      wallet_->build_transcript(coin, p.intent, {p.commitment}, 2075);
  ASSERT_TRUE(second.ok());
  std::vector<PaymentTranscript> racers{p.transcript, second.value()};
  auto& witness = witness_for(coin);

  verify::WorkerPool pool(2);
  std::atomic<int> endorsements{0};
  std::atomic<int> proofs{0};
  std::atomic<int> errors{0};
  for (const auto& transcript : racers) {
    pool.submit([&witness, &transcript, &endorsements, &proofs, &errors] {
      auto result = witness.sign_transcript(transcript, 2100);
      if (!result.ok()) {
        errors.fetch_add(1, std::memory_order_relaxed);
      } else if (std::holds_alternative<WitnessEndorsement>(result.value())) {
        endorsements.fetch_add(1, std::memory_order_relaxed);
      } else {
        proofs.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  pool.drain();
  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(endorsements.load(), 1);
  EXPECT_EQ(proofs.load(), 1);
  EXPECT_TRUE(witness.has_double_spend_record(coin.coin.bare.coin_hash()));
}

TEST_F(VerifyPoolTest, SnapshotWhileSigningStaysConsistent) {
  // Snapshots merge the stripes one lock at a time; taking them while the
  // pool is signing must neither race (TSan) nor corrupt state — a final
  // quiescent snapshot must restore onto a fresh service byte-for-byte.
  constexpr int kPayments = 12;
  std::map<MerchantId, std::vector<PaymentTranscript>> waves;
  MerchantId any_witness;
  for (int i = 0; i < kPayments; ++i) {
    auto coin = withdraw(100, 1000);
    auto p = prepare(coin, non_witness_merchant(coin), 2000);
    waves[witness_id(coin)].push_back(p.transcript);
    any_witness = witness_id(coin);
  }
  verify::WorkerPool pool(4);
  for (auto& [id, transcripts] : waves) {
    WitnessService* witness = dep_.node(id).witness.get();
    for (const auto& transcript : transcripts)
      pool.submit([witness, &transcript] {
        (void)witness->sign_transcript(transcript, 2100);
      });
  }
  WitnessService& observed = *dep_.node(any_witness).witness;
  for (int i = 0; i < 20; ++i) {
    (void)observed.snapshot_state();  // concurrent with the signing wave
    std::this_thread::yield();
  }
  pool.drain();
  auto quiescent = observed.snapshot_state();
  observed.restore_state(quiescent);
  EXPECT_EQ(observed.snapshot_state(), quiescent);
}

}  // namespace
}  // namespace p2pcash::ecash
