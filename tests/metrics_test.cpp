// Op counters (Table-1 infrastructure) and running statistics (Table-2).

#include <gtest/gtest.h>

#include "metrics/counters.h"
#include "metrics/stats.h"

namespace p2pcash::metrics {
namespace {

TEST(Counters, NoopWithoutScope) {
  count_exp();
  count_hash(5);
  EXPECT_EQ(active_counters(), nullptr);
}

TEST(Counters, ScopedCollection) {
  OpCounters ops;
  {
    ScopedOpCounting guard(ops);
    count_exp(3);
    count_hash();
    count_sig(2);
    count_ver();
  }
  EXPECT_EQ(ops.exp, 3u);
  EXPECT_EQ(ops.hash, 1u);
  EXPECT_EQ(ops.sig, 2u);
  EXPECT_EQ(ops.ver, 1u);
  count_exp();  // outside scope: ignored
  EXPECT_EQ(ops.exp, 3u);
}

TEST(Counters, ScopesNest) {
  OpCounters outer, inner;
  {
    ScopedOpCounting g1(outer);
    count_exp();
    {
      ScopedOpCounting g2(inner);
      count_exp(10);
    }
    count_exp();
  }
  EXPECT_EQ(outer.exp, 2u);
  EXPECT_EQ(inner.exp, 10u);
}

TEST(Counters, SuspendStopsCounting) {
  OpCounters ops;
  {
    ScopedOpCounting guard(ops);
    count_exp();
    {
      ScopedSuspendOpCounting suspend;
      count_exp(100);
      count_sig(100);
    }
    count_sig();
  }
  EXPECT_EQ(ops.exp, 1u);
  EXPECT_EQ(ops.sig, 1u);
}

TEST(Counters, ArithmeticAndFormatting) {
  OpCounters a{5, 4, 3, 2};
  OpCounters b{1, 1, 1, 1};
  a += b;
  EXPECT_EQ(a, (OpCounters{6, 5, 4, 3}));
  EXPECT_EQ(a - b, (OpCounters{5, 4, 3, 2}));
  EXPECT_EQ(a.to_string(), "exp=6 hash=5 sig=4 ver=3");
}

TEST(Stats, MeanAndStddev) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);  // sample stddev, n-1
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Stats, EmptyAndSingle) {
  RunningStats s;
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 3.5);
}

TEST(Stats, Percentiles) {
  RunningStats s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_NEAR(s.percentile(50), 50.5, 0.01);
  EXPECT_NEAR(s.percentile(99), 99.01, 0.01);
  EXPECT_THROW((void)s.percentile(101), std::invalid_argument);
}

TEST(Stats, PercentileCacheInvalidatedByAdd) {
  RunningStats s;
  s.add(1);
  EXPECT_DOUBLE_EQ(s.percentile(100), 1.0);
  s.add(10);
  EXPECT_DOUBLE_EQ(s.percentile(100), 10.0);
}

TEST(ByteCounter, Accumulates) {
  ByteCounter c;
  c.add(100);
  c.add(50);
  EXPECT_EQ(c.total(), 150u);
  EXPECT_EQ(c.messages(), 2u);
  c.reset();
  EXPECT_EQ(c.total(), 0u);
}

TEST(Counters, ThreadTotalsAccumulateEvenWhenSuspended) {
  reset_thread_op_totals();
  count_exp(2);  // no scope active: totals still advance
  {
    OpCounters ops;
    ScopedOpCounting guard(ops);
    count_hash(3);
    {
      ScopedSuspendOpCounting suspend;
      count_sig(5);  // invisible to the scope, visible to the totals
    }
  }
  const OpCounters& totals = thread_op_totals();
  EXPECT_EQ(totals.exp, 2u);
  EXPECT_EQ(totals.hash, 3u);
  EXPECT_EQ(totals.sig, 5u);
  reset_thread_op_totals();
  EXPECT_EQ(thread_op_totals(), OpCounters{});
}

TEST(ResilienceCounters, AccumulatesAndFormats) {
  ResilienceCounters a;
  EXPECT_EQ(a, ResilienceCounters{});
  a.retries = 3;
  a.failovers = 1;
  a.timeouts = 2;
  ResilienceCounters b;
  b.retries = 1;
  b.duplicates_suppressed = 4;
  b.breaker_trips = 1;
  b.late_replies_ignored = 5;
  a += b;
  EXPECT_EQ(a.retries, 4u);
  EXPECT_EQ(a.failovers, 1u);
  EXPECT_EQ(a.duplicates_suppressed, 4u);
  EXPECT_EQ(a.breaker_trips, 1u);
  EXPECT_EQ(a.timeouts, 2u);
  EXPECT_EQ(a.late_replies_ignored, 5u);
  EXPECT_EQ(a.to_string(),
            "retries=4 failovers=1 dup_suppressed=4 breaker_trips=1 "
            "timeouts=2 late_ignored=5");
}

TEST(ResilienceCounters, SnapshotDiffAndReset) {
  ResilienceCounters before;
  before.retries = 2;
  before.timeouts = 1;
  ResilienceCounters after = before;
  after.retries = 5;
  after.failovers = 3;
  after.timeouts = 1;
  const ResilienceCounters delta = after - before;
  EXPECT_EQ(delta.retries, 3u);
  EXPECT_EQ(delta.failovers, 3u);
  EXPECT_EQ(delta.timeouts, 0u);
  after.reset();
  EXPECT_EQ(after, ResilienceCounters{});
}

}  // namespace
}  // namespace p2pcash::metrics
