// Witness commitments (Algorithm 2 steps 1-2): single-flight rule, nonce
// binding, expiry, value reveal.

#include <gtest/gtest.h>

#include "ecash_fixture.h"

namespace p2pcash::ecash {
namespace {

using testing::EcashTest;

class CommitmentTest : public EcashTest {
 protected:
  WitnessService& witness_of(const WalletCoin& coin) {
    return *dep_.node(coin.coin.witnesses[0].merchant).witness;
  }
};

TEST_F(CommitmentTest, CommitmentIssuedAndWellFormed) {
  auto coin = withdraw();
  auto intent = wallet_->prepare_payment(coin, "m002");
  auto& witness = witness_of(coin);
  auto outcome =
      witness.request_commitment(intent.coin_hash, intent.nonce, 2000);
  ASSERT_TRUE(outcome.ok());
  const auto& commitment = outcome.value();
  EXPECT_EQ(commitment.coin_hash, intent.coin_hash);
  EXPECT_EQ(commitment.nonce, intent.nonce);
  EXPECT_EQ(commitment.expires, 2000 + witness.commitment_ttl());
  EXPECT_EQ(commitment.witness, coin.coin.witnesses[0].merchant);
  EXPECT_TRUE(sig::verify(dep_.grp(), coin.coin.witnesses[0].witness_key,
                          commitment.signed_payload(),
                          commitment.witness_sig));
}

TEST_F(CommitmentTest, OutstandingCommitmentBlocksOtherTransactions) {
  auto coin = withdraw();
  auto& witness = witness_of(coin);
  auto i1 = wallet_->prepare_payment(coin, "m002");
  auto i2 = wallet_->prepare_payment(coin, "m003");
  ASSERT_TRUE(witness.request_commitment(i1.coin_hash, i1.nonce, 2000).ok());
  // A different nonce (different merchant/salt) is refused while live.
  auto blocked = witness.request_commitment(i2.coin_hash, i2.nonce, 2500);
  ASSERT_FALSE(blocked.ok());
  EXPECT_EQ(blocked.refusal().reason, RefusalReason::kCommitmentOutstanding);
}

TEST_F(CommitmentTest, SameNonceMayReRequest) {
  auto coin = withdraw();
  auto& witness = witness_of(coin);
  auto intent = wallet_->prepare_payment(coin, "m002");
  ASSERT_TRUE(
      witness.request_commitment(intent.coin_hash, intent.nonce, 2000).ok());
  // Client retry with the same nonce: allowed (fresh t_e).
  auto retry =
      witness.request_commitment(intent.coin_hash, intent.nonce, 2500);
  EXPECT_TRUE(retry.ok());
  EXPECT_EQ(retry.value().expires, 2500 + witness.commitment_ttl());
}

TEST_F(CommitmentTest, ExpiryFreesTheCoin) {
  auto coin = withdraw();
  auto& witness = witness_of(coin);
  auto i1 = wallet_->prepare_payment(coin, "m002");
  auto i2 = wallet_->prepare_payment(coin, "m003");
  ASSERT_TRUE(witness.request_commitment(i1.coin_hash, i1.nonce, 2000).ok());
  Timestamp after_expiry = 2000 + witness.commitment_ttl() + 1;
  EXPECT_TRUE(
      witness.request_commitment(i2.coin_hash, i2.nonce, after_expiry).ok());
}

TEST_F(CommitmentTest, TranscriptWithoutCommitmentRefused) {
  auto coin = withdraw();
  auto& witness = witness_of(coin);
  auto intent = wallet_->prepare_payment(coin, "m002");
  // Build a transcript with a forged commitment (never issued).
  PaymentTranscript t;
  t.coin = coin.coin;
  t.merchant = "m002";
  t.datetime = 2100;
  t.salt = intent.salt;
  auto d = payment_challenge(dep_.grp(), t.coin, t.merchant, t.datetime);
  t.resp = nizk::respond(dep_.grp(), coin.secret, d);
  auto outcome = witness.sign_transcript(t, 2200);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.refusal().reason, RefusalReason::kStaleRequest);
}

TEST_F(CommitmentTest, NonceMismatchRefused) {
  // Commit for merchant A, then submit a transcript claiming merchant B:
  // nonce = h(salt || I_M) cannot match.
  auto coin = withdraw();
  auto& witness = witness_of(coin);
  auto intent = wallet_->prepare_payment(coin, "m002");
  ASSERT_TRUE(
      witness.request_commitment(intent.coin_hash, intent.nonce, 2000).ok());
  PaymentTranscript t;
  t.coin = coin.coin;
  t.merchant = "m003";  // not the committed merchant
  t.datetime = 2100;
  t.salt = intent.salt;
  auto d = payment_challenge(dep_.grp(), t.coin, t.merchant, t.datetime);
  t.resp = nizk::respond(dep_.grp(), coin.secret, d);
  auto outcome = witness.sign_transcript(t, 2200);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.refusal().reason, RefusalReason::kBadNonce);
}

TEST_F(CommitmentTest, ExpiredCommitmentRefusedAtSigning) {
  auto coin = withdraw();
  auto& witness = witness_of(coin);
  auto intent = wallet_->prepare_payment(coin, "m002");
  ASSERT_TRUE(
      witness.request_commitment(intent.coin_hash, intent.nonce, 2000).ok());
  PaymentTranscript t;
  t.coin = coin.coin;
  t.merchant = "m002";
  t.datetime = 2100;
  t.salt = intent.salt;
  auto d = payment_challenge(dep_.grp(), t.coin, t.merchant, t.datetime);
  t.resp = nizk::respond(dep_.grp(), coin.secret, d);
  Timestamp late = 2000 + witness.commitment_ttl() + 1;
  auto outcome = witness.sign_transcript(t, late);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.refusal().reason, RefusalReason::kStaleRequest);
}

TEST_F(CommitmentTest, FreshCoinCommitsToRandomValue) {
  auto coin = withdraw();
  auto& witness = witness_of(coin);
  auto intent = wallet_->prepare_payment(coin, "m002");
  auto commitment =
      witness.request_commitment(intent.coin_hash, intent.nonce, 2000);
  ASSERT_TRUE(commitment.ok());
  auto revealed = witness.reveal_committed_value(intent.coin_hash);
  ASSERT_TRUE(revealed.ok());
  EXPECT_EQ(revealed.value().kind, CommittedValue::Kind::kFresh);
  EXPECT_EQ(revealed.value().hash(), commitment.value().value_hash);
}

TEST_F(CommitmentTest, SpentCoinCommitsToPriorTranscript) {
  auto coin = withdraw();
  auto m1 = non_witness_merchant(coin);
  ASSERT_TRUE(dep_.pay(*wallet_, coin, m1, 2000).accepted);
  auto& witness = witness_of(coin);
  // After expiry of the consumed commitment, a new transaction's request
  // commits to evidence of the prior spend.
  Timestamp later = 2000 + witness.commitment_ttl() + 100;
  auto intent = wallet_->prepare_payment(coin, "m003");
  auto commitment =
      witness.request_commitment(intent.coin_hash, intent.nonce, later);
  ASSERT_TRUE(commitment.ok());
  auto revealed = witness.reveal_committed_value(intent.coin_hash);
  ASSERT_TRUE(revealed.ok());
  EXPECT_EQ(revealed.value().kind, CommittedValue::Kind::kPriorTranscript);
}

TEST_F(CommitmentTest, DoubleSpentCoinCommitsToExtractedSecrets) {
  auto coin = withdraw();
  auto ids = dep_.merchant_ids();
  ASSERT_TRUE(dep_.pay(*wallet_, coin, ids[0], 2000).accepted);
  EXPECT_FALSE(dep_.pay(*wallet_, coin, ids[1], 3000).accepted);
  auto& witness = witness_of(coin);
  Timestamp later = 3000 + witness.commitment_ttl() + 100;
  auto intent = wallet_->prepare_payment(coin, "m004");
  auto commitment =
      witness.request_commitment(intent.coin_hash, intent.nonce, later);
  ASSERT_TRUE(commitment.ok());
  auto revealed = witness.reveal_committed_value(intent.coin_hash);
  ASSERT_TRUE(revealed.ok());
  EXPECT_EQ(revealed.value().kind, CommittedValue::Kind::kExtracted);
}

TEST_F(CommitmentTest, CommittedValueSerializationRoundTrip) {
  crypto::ChaChaRng rng("cv-serial");
  auto fresh = CommittedValue::fresh(rng);
  auto bytes = wire::encode(fresh);
  EXPECT_EQ(wire::decode<CommittedValue>(bytes), fresh);
  wire::Writer w;
  w.put_u8(9);  // invalid kind
  w.put_bytes({});
  auto bad = w.take();
  wire::Reader r(bad);
  EXPECT_THROW((void)CommittedValue::decode(r), wire::DecodeError);
}

TEST_F(CommitmentTest, RetryOfIdenticalTranscriptReEndorsed) {
  // Network retries must be idempotent: the same transcript gets the
  // endorsement again instead of being treated as a double-spend.
  auto coin = withdraw();
  auto& witness = witness_of(coin);
  auto intent = wallet_->prepare_payment(coin, "m002");
  auto commitment =
      witness.request_commitment(intent.coin_hash, intent.nonce, 2000);
  ASSERT_TRUE(commitment.ok());
  auto transcript =
      wallet_->build_transcript(coin, intent, {commitment.value()}, 2100);
  ASSERT_TRUE(transcript.ok());
  auto first = witness.sign_transcript(transcript.value(), 2200);
  ASSERT_TRUE(first.ok());
  auto second = witness.sign_transcript(transcript.value(), 2300);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(std::get<WitnessEndorsement>(first.value()),
            std::get<WitnessEndorsement>(second.value()));
}

}  // namespace
}  // namespace p2pcash::ecash
