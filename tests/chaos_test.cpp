// chaos_test.cpp — seeded fault schedules through the full economy.
//
// Each run builds a SimWorld, withdraws coins in a calm window, then lets a
// seed-derived FaultPlan crash witnesses (with WAL-style recovery), corrupt
// links and split the network while payments — including a concurrent
// double-spend attempt — run with the resilient RPC pipeline.  Invariants
// checked after every schedule:
//
//   SAFETY   no coin is accepted twice; no witness signs two transcripts
//            (broker.witness_faults() stays empty, so no honest merchant
//            can lose money — every delivered service is credited exactly
//            once at deposit time);
//   CLEAN    every payment callback resolves, either accepted or with a
//            diagnostic;
//   LIVENESS after all faults clear, a fresh withdrawal and payment go
//            through, and every queued deposit reaches the broker.
//
// A violated invariant prints the seed plus the full fault schedule and
// appends both to $P2PCASH_CHAOS_ARTIFACT (default chaos_failures.txt) —
// the seed alone reproduces the run.
//
// Suites: ChaosFast* are the deterministic directed scenarios plus a small
// seed sweep (ctest label "chaos"); ChaosSweep covers 100 seeds (labels
// "chaos;slow").

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "actors/world.h"
#include "obs/trace.h"
#include "overlay/chord.h"

namespace p2pcash::actors {
namespace {

using simnet::SimTime;

struct ChaosRun {
  std::uint64_t seed = 0;
  std::vector<std::string> plan_log;
  std::vector<std::string> violations;
  metrics::ResilienceCounters totals;
  /// JSONL trace of the offending payments (meta record + spans/events),
  /// captured only when the run violated an invariant.
  std::string trace_jsonl;
};

void report_failure(const ChaosRun& run) {
  std::string text = "chaos seed " + std::to_string(run.seed) + " violated:\n";
  for (const auto& v : run.violations) text += "  " + v + "\n";
  text += "fault schedule:\n";
  for (const auto& line : run.plan_log) text += "  " + line + "\n";
  text += "counters: " + run.totals.to_string() + "\n";
  // Single-threaded artifact path at test teardown; no setenv anywhere.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  const char* env = std::getenv("P2PCASH_CHAOS_ARTIFACT");
  const std::string path = env ? env : "chaos_failures.txt";
  std::ofstream out(path, std::ios::app);
  out << text << "\n";
  if (!run.trace_jsonl.empty()) {
    // The payment's causal history rides along with the schedule so the
    // seed can be diagnosed without re-running it.
    const std::string trace_path = path + ".trace.jsonl";
    std::ofstream trace_out(trace_path, std::ios::app);
    trace_out << run.trace_jsonl;
    text += "trace: " + trace_path + "\n";
  }
  ADD_FAILURE() << text
                << "reproduce: run_chaos_schedule(" << run.seed << ")";
}

/// One full seeded chaos schedule; returns the observations instead of
/// asserting so the caller can attach the seed + schedule to any failure.
ChaosRun run_chaos_schedule(std::uint64_t seed) {
  ChaosRun run;
  run.seed = seed;
  auto check = [&](bool ok, const std::string& what) {
    if (!ok) run.violations.push_back(what);
  };

  auto& grp = group::SchnorrGroup::test_256();
  SimWorld::Options opt;
  opt.merchants = 4 + seed % 3;
  opt.seed = seed * 7919 + 1;
  opt.cost = simnet::free_cost();
  opt.broker.witness_n = static_cast<std::uint8_t>(1 + seed % 3);
  opt.broker.witness_k = static_cast<std::uint8_t>(
      opt.broker.witness_n == 3 ? 2 : opt.broker.witness_n);
  opt.trace = true;  // every payment's causal history, dumped on violation
  SimWorld world(grp, opt);

  // Three spender clients plus an accomplice that replays client 0's coin
  // (a coin is a bearer instrument: whoever holds the secrets can spend).
  std::vector<ClientActor*> clients;
  for (int i = 0; i < 3; ++i) clients.push_back(&world.add_client());
  ClientActor& accomplice = world.add_client();

  // Calm window: one coin per client, no faults yet, no retry timers.
  std::vector<ecash::WalletCoin> coins;
  for (ClientActor* client : clients) {
    std::optional<ecash::WalletCoin> coin;
    client->withdraw(100, [&](ecash::Outcome<ecash::WalletCoin> c) {
      if (c.ok()) coin = std::move(c).value();
    });
    world.sim().run();
    if (!coin) {
      run.violations.push_back("calm-window withdrawal failed");
      return run;
    }
    coins.push_back(std::move(*coin));
  }

  // Seed-derived fault schedule (times are relative to now).
  simnet::FaultPlan::ChaosOptions chaos;
  chaos.start_ms = 2'000;
  chaos.horizon_ms = 40'000;
  for (const auto& id : world.merchant_ids())
    chaos.crashable.push_back(world.merchant_node(id));
  if (seed % 4 == 0) chaos.crashable.push_back(world.directory().broker);
  chaos.nodes = world.all_nodes();
  chaos.crashes = 1 + seed % 3;
  chaos.link_faults = 3 + seed % 4;
  chaos.partitions = seed % 2;
  crypto::ChaChaRng chaos_rng(seed ^ 0xC4A05u);
  world.faults().randomize(chaos, chaos_rng);
  run.plan_log = world.faults().log();

  // Payments fired into the fault window; coin 0 is double-spent.
  const auto ids = world.merchant_ids();
  struct PayOutcome {
    bool done = false;
    bool accepted = false;
    std::string error;
    obs::TraceId trace_id = 0;
  };
  std::vector<PayOutcome> outcomes(clients.size() + 1);
  const SimTime pay_deadline = 20'000;
  for (std::size_t i = 0; i < clients.size(); ++i) {
    world.sim().schedule(2'000 + 1'500 * static_cast<SimTime>(i), [&, i] {
      clients[i]->pay(
          coins[i], ids[i % ids.size()],
          [&outcomes, i](ClientActor::PayResult r) {
            outcomes[i].done = true;
            outcomes[i].accepted = r.accepted;
            outcomes[i].trace_id = r.trace_id;
            if (r.error) outcomes[i].error = *r.error;
          },
          pay_deadline);
    });
  }
  const std::size_t last = clients.size();
  world.sim().schedule(2'050, [&] {
    accomplice.pay(
        coins[0], ids[1 % ids.size()],
        [&outcomes, last](ClientActor::PayResult r) {
          outcomes[last].done = true;
          outcomes[last].accepted = r.accepted;
          outcomes[last].trace_id = r.trace_id;
          if (r.error) outcomes[last].error = *r.error;
        },
        pay_deadline);
  });
  world.sim().run();

  // CLEAN: every payment resolved, accepted or with a diagnostic.  A
  // payment implicated in a violation has its trace id remembered so the
  // failure artifact can carry the causal history.
  std::vector<obs::TraceId> offending;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const std::size_t before = run.violations.size();
    check(outcomes[i].done,
          "payment " + std::to_string(i) + " never resolved");
    if (outcomes[i].done && !outcomes[i].accepted)
      check(!outcomes[i].error.empty(),
            "payment " + std::to_string(i) + " failed without diagnostic");
    if (run.violations.size() != before && outcomes[i].trace_id)
      offending.push_back(outcomes[i].trace_id);
  }
  // SAFETY: coin 0 was spent from two wallets at two merchants — at most
  // one may have been accepted.
  if (outcomes[0].accepted && outcomes[last].accepted) {
    run.violations.push_back("double spend: coin 0 accepted at two merchants");
    for (std::size_t i : {std::size_t{0}, last})
      if (outcomes[i].trace_id) offending.push_back(outcomes[i].trace_id);
  }

  // LIVENESS: all faults are cleared/healed by the horizon; a fresh client
  // must be able to withdraw and pay.
  ClientActor& late_client = world.add_client();
  std::optional<ecash::WalletCoin> fresh;
  late_client.withdraw(100,
                       [&](ecash::Outcome<ecash::WalletCoin> c) {
                         if (c.ok()) fresh = std::move(c).value();
                       },
                       /*deadline_ms=*/20'000);
  world.sim().run();
  check(fresh.has_value(), "post-heal withdrawal failed");
  if (fresh) {
    std::optional<ClientActor::PayResult> result;
    late_client.pay(*fresh, ids.back(),
                    [&](ClientActor::PayResult r) { result = std::move(r); },
                    /*timeout_ms=*/20'000);
    world.sim().run();
    check(result.has_value() && result->accepted,
          "post-heal payment failed: " +
              (result && result->error ? *result->error : "no result"));
    if (result && !result->accepted && result->trace_id)
      offending.push_back(result->trace_id);
  }

  // Deposits: every merchant flushes; the broker must credit each serviced
  // coin exactly once (kAlreadyDeposited retries are acks, not credits).
  for (const auto& id : world.merchant_ids())
    world.merchant_actor(id).flush_deposits();
  world.sim().run();
  std::uint64_t services = 0;
  for (const auto& id : world.merchant_ids()) {
    services += world.merchant(id).services_delivered();
    check(world.merchant(id).deposit_queue_size() == 0,
          "deposit queue not drained at " + id);
    check(world.merchant_actor(id).deposits_outstanding() == 0,
          "deposit unacknowledged at " + id);
  }
  check(world.broker().coins_deposited() == services,
        "credited deposits != services delivered (merchant lost money)");
  check(world.broker().witness_faults().empty(),
        "a witness signed two transcripts for one coin");

  run.totals = world.resilience_totals();
  if (!run.violations.empty()) {
    // Offending payments' traces if any were implicated directly; the
    // whole retained window for world-level violations (lost deposit,
    // undrained queue) where no single payment is to blame.
    std::string traces;
    for (obs::TraceId t : offending) traces += world.trace_sink().trace_jsonl(t);
    if (traces.empty()) traces = world.trace_sink().to_jsonl();
    run.trace_jsonl = "{\"kind\":\"meta\",\"seed\":" + std::to_string(seed) +
                      ",\"source\":\"chaos_test\",\"offending_traces\":" +
                      std::to_string(offending.size()) + "}\n" + traces;
  }
  return run;
}

// ---------------------------------------------------------------------------
// Directed deterministic scenarios (fast subset, ctest label "chaos")
// ---------------------------------------------------------------------------

SimWorld::Options directed_options(std::uint8_t witness_n,
                                   std::uint8_t witness_k) {
  SimWorld::Options opt;
  opt.merchants = 5;
  opt.seed = 4242;
  opt.cost = simnet::free_cost();
  opt.broker.witness_n = witness_n;
  opt.broker.witness_k = witness_k;
  return opt;
}

ecash::WalletCoin chaos_withdraw(SimWorld& world, ClientActor& client) {
  std::optional<ecash::WalletCoin> coin;
  client.withdraw(100, [&](ecash::Outcome<ecash::WalletCoin> c) {
    ASSERT_TRUE(c.ok()) << c.refusal().detail;
    coin = std::move(c).value();
  });
  world.sim().run();
  EXPECT_TRUE(coin.has_value());
  return std::move(*coin);
}

// The PR's acceptance scenario: 2% ambient loss plus the coin's primary
// witness crashing as the payment starts.  The payment must still succeed,
// via retry and failover to the next witness in chord order, with the
// counters showing what happened.
TEST(ChaosFast, LossyWanWithWitnessCrashStillSucceeds) {
  auto& grp = group::SchnorrGroup::test_256();
  SimWorld world(grp, directed_options(/*witness_n=*/2, /*witness_k=*/1));
  auto& client = world.add_client();
  auto coin = chaos_withdraw(world, client);
  world.net().set_drop_rate(0.02);

  // Crash the primary witness just before the commit request can reach it;
  // it recovers 15 s later.  "Primary" means first in the client's engage
  // order: a chord successor-list walk from the coin's witness point.
  const bn::BigInt key = coin.coin.bare.witness_point(0);
  std::vector<bn::BigInt> points;
  for (const auto& entry : coin.coin.witnesses) points.push_back(entry.lo);
  const auto order = overlay::failover_order(key, points);
  const auto primary = coin.coin.witnesses[order.front()].merchant;
  world.crash_merchant(primary, /*at=*/10, /*restart_at=*/15'000);
  ecash::MerchantId target;
  for (const auto& id : world.merchant_ids()) {
    bool is_witness = false;
    for (const auto& w : coin.coin.witnesses)
      if (w.merchant == id) is_witness = true;
    if (!is_witness) {
      target = id;
      break;
    }
  }
  std::optional<ClientActor::PayResult> result;
  world.sim().schedule(50, [&] {
    client.pay(coin, target,
               [&](ClientActor::PayResult r) { result = std::move(r); },
               /*timeout_ms=*/30'000);
  });
  world.sim().run();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->accepted) << (result->error ? *result->error : "");
  // The payment survived by engaging the replica witness.
  const auto& counters = client.resilience();
  EXPECT_GE(counters.failovers, 1u);
  EXPECT_EQ(world.merchant(target).services_delivered(), 1u);
}

// Witness crashes after committing but before countersigning: the restore
// must bring the commitment back (synchronous WAL) so the retried
// transcript completes instead of double-granting or stalling.
TEST(ChaosFast, WitnessRestartMidSignPreservesCommitment) {
  auto& grp = group::SchnorrGroup::test_256();
  SimWorld world(grp, directed_options(1, 1));
  auto& client = world.add_client();
  auto coin = chaos_withdraw(world, client);
  const auto witness_id = coin.coin.witnesses[0].merchant;
  ecash::MerchantId target;
  for (const auto& id : world.merchant_ids()) {
    if (id != witness_id) {
      target = id;
      break;
    }
  }
  // Commit round completes in ~100 ms; crash at 150 ms hits the window
  // between the commitment grant and the merchant's sign request.
  std::optional<ClientActor::PayResult> result;
  client.pay(coin, target,
             [&](ClientActor::PayResult r) { result = std::move(r); },
             /*timeout_ms=*/30'000);
  world.crash_merchant(witness_id, /*at=*/150, /*restart_at=*/5'000);
  world.sim().run();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->accepted) << (result->error ? *result->error : "");
  // The client had to retransmit the transcript; the merchant re-drove the
  // witness idempotently.
  EXPECT_GE(client.resilience().retries +
                world.merchant_actor(target).resilience().duplicates_suppressed,
            1u);
}

// The hard guarantee across a crash: a coin spent before the witness went
// down is still unspendable after it comes back.
TEST(ChaosFast, DoubleSpendBlockedAcrossWitnessCrash) {
  auto& grp = group::SchnorrGroup::test_256();
  SimWorld world(grp, directed_options(1, 1));
  auto& honest = world.add_client();
  auto& thief = world.add_client();
  auto coin = chaos_withdraw(world, honest);
  const auto witness_id = coin.coin.witnesses[0].merchant;
  auto ids = world.merchant_ids();
  std::optional<ClientActor::PayResult> first;
  honest.pay(coin, ids[0],
             [&](ClientActor::PayResult r) { first = std::move(r); });
  world.sim().run();
  ASSERT_TRUE(first && first->accepted);

  // Crash and recover the witness, then replay the spent coin elsewhere.
  world.crash_merchant(witness_id, /*at=*/100, /*restart_at=*/2'000);
  world.sim().run();
  std::optional<ClientActor::PayResult> second;
  thief.pay(coin, ids[1],
            [&](ClientActor::PayResult r) { second = std::move(r); },
            /*timeout_ms=*/15'000);
  world.sim().run();
  ASSERT_TRUE(second.has_value());
  EXPECT_FALSE(second->accepted);
  // The restored witness answers from its durable spent record: either the
  // self-incriminating proof or a commitment refusal, never a grant.
  if (second->double_spend_proof) {
    EXPECT_TRUE(second->double_spend_proof->verify(grp));
  } else {
    ASSERT_TRUE(second->error.has_value());
  }
}

// Durable-store mode: the crash no longer restores a clean snapshot — it
// cuts the victim's log at a seed-chosen unsynced byte (kill-at-any-byte)
// and recovery must truncate the torn tail and replay.  The hard guarantee
// is unchanged: a coin spent before the crash stays unspendable after it.
TEST(ChaosFast, DurableWitnessCrashStillBlocksDoubleSpend) {
  auto& grp = group::SchnorrGroup::test_256();
  auto opt = directed_options(1, 1);
  opt.durable_stores = true;
  SimWorld world(grp, opt);
  auto& honest = world.add_client();
  auto& thief = world.add_client();
  auto coin = chaos_withdraw(world, honest);
  const auto witness_id = coin.coin.witnesses[0].merchant;
  auto ids = world.merchant_ids();
  std::optional<ClientActor::PayResult> first;
  honest.pay(coin, ids[0],
             [&](ClientActor::PayResult r) { first = std::move(r); });
  world.sim().run();
  ASSERT_TRUE(first && first->accepted);
  // The committed spend is on the witness's disk, not just in memory.
  EXPECT_FALSE(
      world.store_vfs().contents("witness-" + witness_id + ".log").empty());

  world.crash_merchant(witness_id, /*at=*/100, /*restart_at=*/2'000);
  world.sim().run();
  std::optional<ClientActor::PayResult> second;
  thief.pay(coin, ids[1],
            [&](ClientActor::PayResult r) { second = std::move(r); },
            /*timeout_ms=*/15'000);
  world.sim().run();
  ASSERT_TRUE(second.has_value());
  EXPECT_FALSE(second->accepted);
  if (second->double_spend_proof) {
    EXPECT_TRUE(second->double_spend_proof->verify(grp));
  } else {
    ASSERT_TRUE(second->error.has_value());
  }
}

// Durable mid-sign restart: the crash tears the log mid-record (whatever
// byte the seed picks), recovery truncates to the last commit, and the
// retried transcript still completes exactly once.
TEST(ChaosFast, DurableWitnessRestartMidSignStillCompletes) {
  auto& grp = group::SchnorrGroup::test_256();
  auto opt = directed_options(1, 1);
  opt.durable_stores = true;
  SimWorld world(grp, opt);
  auto& client = world.add_client();
  auto coin = chaos_withdraw(world, client);
  const auto witness_id = coin.coin.witnesses[0].merchant;
  ecash::MerchantId target;
  for (const auto& id : world.merchant_ids()) {
    if (id != witness_id) {
      target = id;
      break;
    }
  }
  std::optional<ClientActor::PayResult> result;
  client.pay(coin, target,
             [&](ClientActor::PayResult r) { result = std::move(r); },
             /*timeout_ms=*/30'000);
  world.crash_merchant(witness_id, /*at=*/150, /*restart_at=*/5'000);
  world.sim().run();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->accepted) << (result->error ? *result->error : "");
  EXPECT_GE(client.resilience().retries +
                world.merchant_actor(target).resilience().duplicates_suppressed,
            1u);
}

// A partition separating the client from everyone else must only delay the
// payment: retries carry it once the partition heals.
TEST(ChaosFast, PartitionHealRestoresLiveness) {
  auto& grp = group::SchnorrGroup::test_256();
  SimWorld world(grp, directed_options(1, 1));
  auto& client = world.add_client();
  auto coin = chaos_withdraw(world, client);
  const auto witness_id = coin.coin.witnesses[0].merchant;
  ecash::MerchantId target;
  for (const auto& id : world.merchant_ids()) {
    if (id != witness_id) {
      target = id;
      break;
    }
  }
  std::vector<simnet::NodeId> others;
  for (simnet::NodeId node : world.all_nodes())
    if (node != client.id()) others.push_back(node);
  world.faults().schedule_partition("client-cut", {{client.id()}, others},
                                    /*at=*/100, /*heal_at=*/5'000);
  std::optional<ClientActor::PayResult> result;
  world.sim().schedule(200, [&] {
    client.pay(coin, target,
               [&](ClientActor::PayResult r) { result = std::move(r); },
               /*timeout_ms=*/30'000);
  });
  world.sim().run();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->accepted) << (result->error ? *result->error : "");
  EXPECT_GE(client.resilience().retries, 1u);
  EXPECT_GT(result->elapsed_ms, 4'800);  // could not finish inside the cut
}

// ---------------------------------------------------------------------------
// Seed sweeps
// ---------------------------------------------------------------------------

class ChaosFastSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosFastSweep, SeededScheduleHoldsInvariants) {
  auto run = run_chaos_schedule(GetParam());
  if (!run.violations.empty()) report_failure(run);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosFastSweep,
                         ::testing::Range<std::uint64_t>(1'000, 1'008));

class ChaosSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosSweep, SeededScheduleHoldsInvariants) {
  auto run = run_chaos_schedule(GetParam());
  if (!run.violations.empty()) report_failure(run);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosSweep,
                         ::testing::Range<std::uint64_t>(0, 100));

}  // namespace
}  // namespace p2pcash::actors
