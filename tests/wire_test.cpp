// Binary codec and URI form.

#include "wire/codec.h"

#include <gtest/gtest.h>

#include "wire/framing.h"
#include "wire/uri_form.h"

namespace p2pcash::wire {
namespace {

using bn::BigInt;

TEST(Codec, ScalarRoundTrip) {
  Writer w;
  w.put_u8(0xab);
  w.put_u32(0xdeadbeef);
  w.put_u64(0x0123456789abcdefull);
  w.put_i64(-42);
  auto buf = w.take();
  Reader r(buf);
  EXPECT_EQ(r.get_u8(), 0xab);
  EXPECT_EQ(r.get_u32(), 0xdeadbeefu);
  EXPECT_EQ(r.get_u64(), 0x0123456789abcdefull);
  EXPECT_EQ(r.get_i64(), -42);
  EXPECT_TRUE(r.at_end());
}

TEST(Codec, BytesStringBigIntRoundTrip) {
  Writer w;
  w.put_bytes(std::vector<std::uint8_t>{1, 2, 3});
  w.put_string("hello");
  w.put_bigint(BigInt::from_hex("deadbeefcafe"));
  w.put_bytes({});
  auto buf = w.take();
  Reader r(buf);
  EXPECT_EQ(r.get_bytes(), (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_EQ(r.get_string(), "hello");
  EXPECT_EQ(r.get_bigint().to_hex(), "deadbeefcafe");
  EXPECT_TRUE(r.get_bytes().empty());
  r.expect_end();
}

TEST(Codec, NegativeBigIntRejected) {
  Writer w;
  EXPECT_THROW(w.put_bigint(BigInt{-1}), std::domain_error);
}

TEST(Codec, TruncationDetected) {
  Writer w;
  w.put_u32(7);
  w.put_bytes(std::vector<std::uint8_t>{1, 2, 3, 4, 5});
  auto buf = w.take();
  for (std::size_t cut = 0; cut < buf.size(); ++cut) {
    std::span<const std::uint8_t> prefix(buf.data(), cut);
    Reader r(prefix);
    EXPECT_THROW(
        {
          (void)r.get_u32();
          (void)r.get_bytes();
        },
        DecodeError)
        << "cut=" << cut;
  }
}

TEST(Codec, TrailingBytesDetected) {
  Writer w;
  w.put_u8(1);
  w.put_u8(2);
  auto buf = w.take();
  Reader r(buf);
  (void)r.get_u8();
  EXPECT_THROW(r.expect_end(), DecodeError);
  EXPECT_EQ(r.remaining(), 1u);
}

TEST(Codec, LengthLiesDetected) {
  // A length prefix exceeding the buffer must throw, not over-read.
  std::vector<std::uint8_t> evil = {0xff, 0xff, 0xff, 0xff, 0x01};
  Reader r(evil);
  EXPECT_THROW((void)r.get_bytes(), DecodeError);
}

TEST(Codec, AdversarialLengthPrefixesCannotWrapBoundsCheck) {
  // Reader::need must compare the request against the bytes *remaining*,
  // never compute pos_ + n: with n near SIZE_MAX the sum wraps and an
  // overflowing check would accept the read.  Exercise every u32 length
  // the wire format can express, at both a fresh and an advanced cursor.
  for (std::uint32_t len : {0xffffffffu, 0x80000000u, 0x7fffffffu, 0x100u}) {
    std::vector<std::uint8_t> evil = {
        0xaa,  // consumed first so pos_ > 0
        static_cast<std::uint8_t>(len >> 24), static_cast<std::uint8_t>(len >> 16),
        static_cast<std::uint8_t>(len >> 8),  static_cast<std::uint8_t>(len),
        0x01, 0x02};
    Reader r(evil);
    EXPECT_EQ(r.get_u8(), 0xaa);
    EXPECT_THROW((void)r.get_bytes(), DecodeError) << "len=" << len;
    // The failed read must not have advanced the cursor past the buffer.
    EXPECT_LE(r.remaining(), evil.size());
  }
  // Same lengths against string and bigint payload readers.
  std::vector<std::uint8_t> evil = {0xff, 0xff, 0xff, 0xfe};
  {
    Reader r(evil);
    EXPECT_THROW((void)r.get_string(), DecodeError);
  }
  {
    Reader r(evil);
    EXPECT_THROW((void)r.get_bigint(), DecodeError);
  }
}

TEST(Codec, ZeroBigIntRoundTripsCanonically) {
  // BigInt zero serializes as a zero-length magnitude — the only accepted
  // encoding.  Golden bytes: just the u32 length prefix 0.
  Writer w;
  w.put_bigint(BigInt{0});
  auto buf = w.take();
  EXPECT_EQ(buf, (std::vector<std::uint8_t>{0, 0, 0, 0}));
  Reader r(buf);
  BigInt back = r.get_bigint();
  EXPECT_TRUE(back.is_zero());
  EXPECT_EQ(back, BigInt{0});
  r.expect_end();
  // from_bytes_be normalizes: an empty magnitude and explicit 0x00 bytes
  // both decode to canonical zero (empty limb vector).
  EXPECT_TRUE(BigInt::from_bytes_be({}).is_zero());
  EXPECT_TRUE(
      BigInt::from_bytes_be(std::vector<std::uint8_t>{0x00, 0x00}).is_zero());
  EXPECT_TRUE(BigInt::from_bytes_be({}).to_bytes_be().empty());
}

TEST(UriForm, RenderKnown) {
  UriForm form;
  form.add("op", "pay").add("coin", "a b&c");
  EXPECT_EQ(form.render(), "op=pay&coin=a%20b%26c");
}

TEST(UriForm, ParseRoundTrip) {
  UriForm form;
  form.add("op", "withdraw")
      .add_u64("denom", 100)
      .add_bigint("e", BigInt::from_hex("1234abcd"))
      .add_bytes("salt", std::vector<std::uint8_t>{0xff, 0x00, 0x10});
  auto parsed = UriForm::parse(form.render());
  EXPECT_EQ(parsed.get("op"), "withdraw");
  EXPECT_EQ(parsed.get_u64("denom"), 100u);
  EXPECT_EQ(parsed.get_bigint("e"), BigInt::from_hex("1234abcd"));
  EXPECT_EQ(parsed.get_bytes("salt"),
            (std::vector<std::uint8_t>{0xff, 0x00, 0x10}));
  EXPECT_FALSE(parsed.get("missing").has_value());
}

TEST(UriForm, ParseErrors) {
  EXPECT_THROW(UriForm::parse("novalue"), DecodeError);
  EXPECT_THROW(UriForm::parse("a=%2"), DecodeError);
  EXPECT_TRUE(UriForm::parse("").entries().empty());
}

TEST(UriForm, BadTypedValuesReturnNullopt) {
  auto form = UriForm::parse("n=notanumber&b=---");
  EXPECT_FALSE(form.get_u64("n").has_value());
  EXPECT_FALSE(form.get_bytes("b").has_value());
}

TEST(UriForm, RenderedSizeIsTextOverhead) {
  // The URI rendering must be strictly larger than the binary payload it
  // carries — this is the overhead Table 2's byte counts include.
  std::vector<std::uint8_t> payload(300);
  for (std::size_t i = 0; i < payload.size(); ++i)
    payload[i] = static_cast<std::uint8_t>(i);
  UriForm form;
  form.add_bytes("data", payload);
  EXPECT_GT(form.rendered_size(), payload.size());
}

// ---------------------------------------------------------------------------
// Stream framing (FrameDecoder): the TCP transport's message boundaries.
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> frame_of(const std::vector<std::uint8_t>& payload,
                                   std::size_t max_frame =
                                       kDefaultMaxFrameBytes) {
  std::vector<std::uint8_t> out;
  append_frame(out, payload, max_frame);
  return out;
}

TEST(Framing, SingleFrameRoundTrip) {
  FrameDecoder dec;
  const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5};
  dec.feed(frame_of(payload));
  auto got = dec.next();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, payload);
  EXPECT_FALSE(dec.next().has_value());
  EXPECT_EQ(dec.buffered(), 0u);
}

TEST(Framing, EmptyPayloadIsAValidFrame) {
  FrameDecoder dec;
  dec.feed(frame_of({}));
  auto got = dec.next();
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(got->empty());
}

TEST(Framing, ByteAtATimeReassembly) {
  // A TCP read can deliver any fragmentation: the pathological case is one
  // byte per read, with the length prefix itself split across reads.
  FrameDecoder dec;
  std::vector<std::uint8_t> stream;
  append_frame(stream, std::vector<std::uint8_t>{10, 20});
  append_frame(stream, std::vector<std::uint8_t>{});
  append_frame(stream, std::vector<std::uint8_t>{30, 40, 50});
  std::vector<std::vector<std::uint8_t>> got;
  for (std::uint8_t byte : stream) {
    dec.feed(std::span<const std::uint8_t>(&byte, 1));
    while (auto frame = dec.next()) got.push_back(*frame);
  }
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], (std::vector<std::uint8_t>{10, 20}));
  EXPECT_TRUE(got[1].empty());
  EXPECT_EQ(got[2], (std::vector<std::uint8_t>{30, 40, 50}));
  EXPECT_EQ(dec.buffered(), 0u);
}

TEST(Framing, ManyFramesInOneFeed) {
  FrameDecoder dec;
  std::vector<std::uint8_t> stream;
  for (std::uint8_t i = 0; i < 50; ++i)
    append_frame(stream, std::vector<std::uint8_t>(i, i));
  dec.feed(stream);
  EXPECT_EQ(dec.ready(), 50u);
  for (std::uint8_t i = 0; i < 50; ++i) {
    auto frame = dec.next();
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(*frame, std::vector<std::uint8_t>(i, i));
  }
}

TEST(Framing, PartialFrameWaitsForMoreBytes) {
  FrameDecoder dec;
  const auto full = frame_of({1, 2, 3, 4, 5, 6, 7, 8});
  dec.feed(std::span<const std::uint8_t>(full.data(), 6));
  EXPECT_FALSE(dec.next().has_value());
  EXPECT_EQ(dec.buffered(), 6u);
  dec.feed(std::span<const std::uint8_t>(full.data() + 6, full.size() - 6));
  EXPECT_TRUE(dec.next().has_value());
}

TEST(Framing, OversizedHeaderPoisonsTheStream) {
  // The length prefix is rejected on sight — before any payload is
  // buffered — and the decoder refuses everything afterwards (the stream
  // has no recoverable frame boundary).
  FrameDecoder dec(/*max_frame=*/16);
  const std::vector<std::uint8_t> evil = {0x00, 0x00, 0x00, 0x11};  // 17
  EXPECT_THROW(dec.feed(evil), DecodeError);
  EXPECT_EQ(dec.buffered(), 0u);
  EXPECT_THROW(dec.feed(frame_of({1}, 16)), DecodeError);
}

TEST(Framing, MaxFrameBoundaryExact) {
  FrameDecoder dec(/*max_frame=*/8);
  dec.feed(frame_of(std::vector<std::uint8_t>(8, 0xaa), 8));
  auto got = dec.next();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->size(), 8u);
}

TEST(Framing, SenderRefusesOversizedPayload) {
  std::vector<std::uint8_t> out;
  EXPECT_THROW(append_frame(out, std::vector<std::uint8_t>(9, 0), 8),
               DecodeError);
}

// ---------------------------------------------------------------------------
// Trace envelope: the optional 16-byte trace context between the length
// prefix and the payload, flagged by the header's top bit.  This is how a
// payment traced on one node keeps its span tree across a real TCP hop.
// ---------------------------------------------------------------------------

TEST(Framing, TracedFrameRoundTrip) {
  FrameDecoder dec;
  std::vector<std::uint8_t> stream;
  const std::vector<std::uint8_t> payload = {9, 8, 7};
  const TraceEnvelope ctx{0x0123456789abcdefull, 0xfedcba9876543210ull};
  append_frame(stream, payload, ctx);
  // Wire layout: flagged length prefix + 16 envelope bytes + payload.
  ASSERT_EQ(stream.size(), 4u + kTraceEnvelopeBytes + payload.size());
  EXPECT_EQ(stream[0] & 0x80u, 0x80u);
  dec.feed(stream);
  auto frame = dec.next_frame();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->payload, payload);
  EXPECT_TRUE(frame->trace.valid());
  EXPECT_EQ(frame->trace, ctx);
  EXPECT_EQ(dec.buffered(), 0u);
}

TEST(Framing, UntracedFramesAreByteIdenticalToLegacyFormat) {
  // An invalid (zero) envelope must leave the encoding untouched: the
  // sim-path golden traces and any pre-envelope peer rely on this.
  std::vector<std::uint8_t> legacy, via_envelope;
  const std::vector<std::uint8_t> payload = {1, 2, 3, 4};
  append_frame(legacy, payload);
  append_frame(via_envelope, payload, TraceEnvelope{});
  EXPECT_EQ(legacy, via_envelope);
  EXPECT_EQ(legacy.size(), 4u + payload.size());
  EXPECT_EQ(legacy[0] & 0x80u, 0u);
}

TEST(Framing, InterleavedTracedAndPlainFrames) {
  FrameDecoder dec;
  std::vector<std::uint8_t> stream;
  append_frame(stream, std::vector<std::uint8_t>{1}, TraceEnvelope{10, 11});
  append_frame(stream, std::vector<std::uint8_t>{2});
  append_frame(stream, std::vector<std::uint8_t>{3}, TraceEnvelope{20, 21});
  dec.feed(stream);
  auto a = dec.next_frame();
  auto b = dec.next_frame();
  auto c = dec.next_frame();
  ASSERT_TRUE(a && b && c);
  EXPECT_EQ(a->trace, (TraceEnvelope{10, 11}));
  EXPECT_FALSE(b->trace.valid());
  EXPECT_EQ(c->trace, (TraceEnvelope{20, 21}));
  EXPECT_EQ(a->payload, (std::vector<std::uint8_t>{1}));
  EXPECT_EQ(b->payload, (std::vector<std::uint8_t>{2}));
  EXPECT_EQ(c->payload, (std::vector<std::uint8_t>{3}));
}

TEST(Framing, TracedFrameByteAtATimeReassembly) {
  // The envelope can split across reads anywhere, including inside the
  // 16 trace bytes.
  FrameDecoder dec;
  std::vector<std::uint8_t> stream;
  append_frame(stream, std::vector<std::uint8_t>{42, 43},
               TraceEnvelope{7, 9});
  std::vector<Frame> got;
  for (std::uint8_t byte : stream) {
    dec.feed(std::span<const std::uint8_t>(&byte, 1));
    while (auto frame = dec.next_frame()) got.push_back(*frame);
  }
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].payload, (std::vector<std::uint8_t>{42, 43}));
  EXPECT_EQ(got[0].trace, (TraceEnvelope{7, 9}));
}

TEST(Framing, ZeroLengthTracedFrameDecodes) {
  // Header 0x80000000 is a legal traced frame with an empty payload (the
  // flag bit is NOT a 2 GiB length claim) — the decoder waits for the
  // envelope bytes instead of poisoning.
  FrameDecoder dec;
  dec.feed(std::vector<std::uint8_t>{0x80, 0x00, 0x00, 0x00});
  EXPECT_FALSE(dec.next_frame().has_value());
  EXPECT_EQ(dec.buffered(), 4u);
  std::vector<std::uint8_t> envelope(kTraceEnvelopeBytes, 0);
  envelope[7] = 1;  // trace id 1
  dec.feed(envelope);
  auto frame = dec.next_frame();
  ASSERT_TRUE(frame.has_value());
  EXPECT_TRUE(frame->payload.empty());
  EXPECT_EQ(frame->trace.trace, 1u);
}

TEST(Framing, OversizedTracedHeaderPoisonsTheStream) {
  // The flag bit is masked off before the max-frame check: a traced
  // header claiming more than max_frame poisons exactly like a plain one.
  FrameDecoder dec(/*max_frame=*/16);
  const std::vector<std::uint8_t> evil = {0x80, 0x00, 0x00, 0x11};  // 17
  EXPECT_THROW(dec.feed(evil), DecodeError);
  EXPECT_EQ(dec.buffered(), 0u);
  EXPECT_THROW(dec.feed(frame_of({1}, 16)), DecodeError);
}

TEST(Framing, LegacyNextDropsTheEnvelope) {
  // next() predates the envelope; callers that only want payload bytes
  // still get them, trace context silently discarded.
  FrameDecoder dec;
  std::vector<std::uint8_t> stream;
  append_frame(stream, std::vector<std::uint8_t>{5, 6}, TraceEnvelope{3, 4});
  dec.feed(stream);
  auto payload = dec.next();
  ASSERT_TRUE(payload.has_value());
  EXPECT_EQ(*payload, (std::vector<std::uint8_t>{5, 6}));
}

TEST(Framing, MaxFrameAboveFlagBitIsACallerBug) {
  // The top header bit is reserved for the trace flag, so a max_frame at
  // or above 2^31 could alias a length onto the flag — constructor
  // refuses it outright (invalid_argument: a caller bug, not wire data).
  EXPECT_THROW(FrameDecoder dec(kTraceFlagBit), std::invalid_argument);
  std::vector<std::uint8_t> out;
  EXPECT_THROW(append_frame(out, std::vector<std::uint8_t>{1},
                            TraceEnvelope{1, 1}, kTraceFlagBit),
               std::invalid_argument);
}

}  // namespace
}  // namespace p2pcash::wire
