// Binary codec and URI form.

#include "wire/codec.h"

#include <gtest/gtest.h>

#include "wire/uri_form.h"

namespace p2pcash::wire {
namespace {

using bn::BigInt;

TEST(Codec, ScalarRoundTrip) {
  Writer w;
  w.put_u8(0xab);
  w.put_u32(0xdeadbeef);
  w.put_u64(0x0123456789abcdefull);
  w.put_i64(-42);
  auto buf = w.take();
  Reader r(buf);
  EXPECT_EQ(r.get_u8(), 0xab);
  EXPECT_EQ(r.get_u32(), 0xdeadbeefu);
  EXPECT_EQ(r.get_u64(), 0x0123456789abcdefull);
  EXPECT_EQ(r.get_i64(), -42);
  EXPECT_TRUE(r.at_end());
}

TEST(Codec, BytesStringBigIntRoundTrip) {
  Writer w;
  w.put_bytes(std::vector<std::uint8_t>{1, 2, 3});
  w.put_string("hello");
  w.put_bigint(BigInt::from_hex("deadbeefcafe"));
  w.put_bytes({});
  auto buf = w.take();
  Reader r(buf);
  EXPECT_EQ(r.get_bytes(), (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_EQ(r.get_string(), "hello");
  EXPECT_EQ(r.get_bigint().to_hex(), "deadbeefcafe");
  EXPECT_TRUE(r.get_bytes().empty());
  r.expect_end();
}

TEST(Codec, NegativeBigIntRejected) {
  Writer w;
  EXPECT_THROW(w.put_bigint(BigInt{-1}), std::domain_error);
}

TEST(Codec, TruncationDetected) {
  Writer w;
  w.put_u32(7);
  w.put_bytes(std::vector<std::uint8_t>{1, 2, 3, 4, 5});
  auto buf = w.take();
  for (std::size_t cut = 0; cut < buf.size(); ++cut) {
    std::span<const std::uint8_t> prefix(buf.data(), cut);
    Reader r(prefix);
    EXPECT_THROW(
        {
          (void)r.get_u32();
          (void)r.get_bytes();
        },
        DecodeError)
        << "cut=" << cut;
  }
}

TEST(Codec, TrailingBytesDetected) {
  Writer w;
  w.put_u8(1);
  w.put_u8(2);
  auto buf = w.take();
  Reader r(buf);
  (void)r.get_u8();
  EXPECT_THROW(r.expect_end(), DecodeError);
  EXPECT_EQ(r.remaining(), 1u);
}

TEST(Codec, LengthLiesDetected) {
  // A length prefix exceeding the buffer must throw, not over-read.
  std::vector<std::uint8_t> evil = {0xff, 0xff, 0xff, 0xff, 0x01};
  Reader r(evil);
  EXPECT_THROW((void)r.get_bytes(), DecodeError);
}

TEST(Codec, AdversarialLengthPrefixesCannotWrapBoundsCheck) {
  // Reader::need must compare the request against the bytes *remaining*,
  // never compute pos_ + n: with n near SIZE_MAX the sum wraps and an
  // overflowing check would accept the read.  Exercise every u32 length
  // the wire format can express, at both a fresh and an advanced cursor.
  for (std::uint32_t len : {0xffffffffu, 0x80000000u, 0x7fffffffu, 0x100u}) {
    std::vector<std::uint8_t> evil = {
        0xaa,  // consumed first so pos_ > 0
        static_cast<std::uint8_t>(len >> 24), static_cast<std::uint8_t>(len >> 16),
        static_cast<std::uint8_t>(len >> 8),  static_cast<std::uint8_t>(len),
        0x01, 0x02};
    Reader r(evil);
    EXPECT_EQ(r.get_u8(), 0xaa);
    EXPECT_THROW((void)r.get_bytes(), DecodeError) << "len=" << len;
    // The failed read must not have advanced the cursor past the buffer.
    EXPECT_LE(r.remaining(), evil.size());
  }
  // Same lengths against string and bigint payload readers.
  std::vector<std::uint8_t> evil = {0xff, 0xff, 0xff, 0xfe};
  {
    Reader r(evil);
    EXPECT_THROW((void)r.get_string(), DecodeError);
  }
  {
    Reader r(evil);
    EXPECT_THROW((void)r.get_bigint(), DecodeError);
  }
}

TEST(Codec, ZeroBigIntRoundTripsCanonically) {
  // BigInt zero serializes as a zero-length magnitude — the only accepted
  // encoding.  Golden bytes: just the u32 length prefix 0.
  Writer w;
  w.put_bigint(BigInt{0});
  auto buf = w.take();
  EXPECT_EQ(buf, (std::vector<std::uint8_t>{0, 0, 0, 0}));
  Reader r(buf);
  BigInt back = r.get_bigint();
  EXPECT_TRUE(back.is_zero());
  EXPECT_EQ(back, BigInt{0});
  r.expect_end();
  // from_bytes_be normalizes: an empty magnitude and explicit 0x00 bytes
  // both decode to canonical zero (empty limb vector).
  EXPECT_TRUE(BigInt::from_bytes_be({}).is_zero());
  EXPECT_TRUE(
      BigInt::from_bytes_be(std::vector<std::uint8_t>{0x00, 0x00}).is_zero());
  EXPECT_TRUE(BigInt::from_bytes_be({}).to_bytes_be().empty());
}

TEST(UriForm, RenderKnown) {
  UriForm form;
  form.add("op", "pay").add("coin", "a b&c");
  EXPECT_EQ(form.render(), "op=pay&coin=a%20b%26c");
}

TEST(UriForm, ParseRoundTrip) {
  UriForm form;
  form.add("op", "withdraw")
      .add_u64("denom", 100)
      .add_bigint("e", BigInt::from_hex("1234abcd"))
      .add_bytes("salt", std::vector<std::uint8_t>{0xff, 0x00, 0x10});
  auto parsed = UriForm::parse(form.render());
  EXPECT_EQ(parsed.get("op"), "withdraw");
  EXPECT_EQ(parsed.get_u64("denom"), 100u);
  EXPECT_EQ(parsed.get_bigint("e"), BigInt::from_hex("1234abcd"));
  EXPECT_EQ(parsed.get_bytes("salt"),
            (std::vector<std::uint8_t>{0xff, 0x00, 0x10}));
  EXPECT_FALSE(parsed.get("missing").has_value());
}

TEST(UriForm, ParseErrors) {
  EXPECT_THROW(UriForm::parse("novalue"), DecodeError);
  EXPECT_THROW(UriForm::parse("a=%2"), DecodeError);
  EXPECT_TRUE(UriForm::parse("").entries().empty());
}

TEST(UriForm, BadTypedValuesReturnNullopt) {
  auto form = UriForm::parse("n=notanumber&b=---");
  EXPECT_FALSE(form.get_u64("n").has_value());
  EXPECT_FALSE(form.get_bytes("b").has_value());
}

TEST(UriForm, RenderedSizeIsTextOverhead) {
  // The URI rendering must be strictly larger than the binary payload it
  // carries — this is the overhead Table 2's byte counts include.
  std::vector<std::uint8_t> payload(300);
  for (std::size_t i = 0; i < payload.size(); ++i)
    payload[i] = static_cast<std::uint8_t>(i);
  UriForm form;
  form.add_bytes("data", payload);
  EXPECT_GT(form.rendered_size(), payload.size());
}

}  // namespace
}  // namespace p2pcash::wire
