// Concurrency stress: thread-local metrics isolation, concurrent broker
// withdrawals/deposits, and racing spends against one witness.  Run under
// -DP2PCASH_SANITIZE=thread this is the TSan proof that the broker's and
// witness's internal locking makes their check-then-record sequences atomic.

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "crypto/chacha.h"
#include "group/schnorr_group.h"
#include "ecash/broker.h"
#include "ecash/wallet.h"
#include "ecash/witness.h"
#include "metrics/counters.h"

namespace p2pcash::ecash {
namespace {

using bn::BigInt;

TEST(MetricsConcurrencyTest, ThreadLocalCountersAreIsolated) {
  constexpr int kThreads = 8;
  constexpr std::uint64_t kIters = 10'000;
  std::vector<metrics::OpCounters> counters(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counters, t] {
      metrics::ScopedOpCounting scope(counters[static_cast<std::size_t>(t)]);
      for (std::uint64_t i = 0; i < kIters; ++i) {
        metrics::count_exp();
        metrics::count_hash(2);
        if (i % 2 == 0) {
          // Suspension nests and must only affect this thread.
          metrics::ScopedSuspendOpCounting suspend;
          metrics::count_sig();
        } else {
          metrics::count_sig();
        }
        metrics::count_ver();
      }
    });
  }
  for (auto& th : threads) th.join();
  for (const auto& c : counters) {
    EXPECT_EQ(c.exp, kIters);
    EXPECT_EQ(c.hash, 2 * kIters);
    EXPECT_EQ(c.sig, kIters / 2);  // the suspended half was not counted
    EXPECT_EQ(c.ver, kIters);
  }
}

/// Broker plus per-merchant witness services over the fast test group,
/// built single-threaded; the threads in each test hammer the shared
/// broker/witness objects.
class EcashConcurrencyTest : public ::testing::Test {
 protected:
  static constexpr int kMerchants = 4;
  static constexpr Timestamp kNow = 1000;

  EcashConcurrencyTest()
      : grp_(group::SchnorrGroup::test_256()),
        broker_rng_("concurrency/broker"),
        broker_(grp_, broker_rng_) {
    for (int i = 0; i < kMerchants; ++i) {
      MerchantId id = "m";  // built by append: GCC 12 -Wrestrict quirk
      id += std::to_string(i);
      auto rng = std::make_unique<crypto::ChaChaRng>("concurrency/" + id);
      auto key = sig::KeyPair::generate(grp_, *rng);
      broker_.register_merchant(id, key.public_key(), /*deposit=*/10'000);
      witnesses_.emplace(
          id, std::make_unique<WitnessService>(grp_, broker_.identity_key(),
                                               id, key, *rng));
      witness_rngs_.push_back(std::move(rng));
    }
    broker_.publish_witness_table(kNow);
  }

  std::unique_ptr<Wallet> make_wallet(bn::Rng& rng) {
    return std::make_unique<Wallet>(grp_, broker_.coin_key(),
                                    broker_.identity_key(), rng);
  }

  /// Full withdrawal against the shared broker (safe to call from any
  /// thread as long as `wallet`/`rng` are thread-private).
  Outcome<WalletCoin> withdraw(Wallet& wallet, Cents denomination) {
    auto offer = broker_.start_withdrawal(denomination, kNow);
    if (!offer) return offer.refusal();
    auto wd = wallet.begin_withdrawal(offer.value());
    auto resp = broker_.finish_withdrawal(wd.session, wd.e);
    if (!resp) return resp.refusal();
    return wallet.complete_withdrawal(wd, resp.value(),
                                      broker_.current_table());
  }

  WitnessService& witness_for(const WalletCoin& coin) {
    return *witnesses_.at(coin.coin.witnesses.at(0).merchant);
  }

  group::SchnorrGroup grp_;
  crypto::ChaChaRng broker_rng_;
  Broker broker_;
  std::map<MerchantId, std::unique_ptr<WitnessService>> witnesses_;
  std::vector<std::unique_ptr<crypto::ChaChaRng>> witness_rngs_;
};

TEST_F(EcashConcurrencyTest, ConcurrentWithdrawalsAllComplete) {
  constexpr int kThreads = 4;
  constexpr int kCoinsPerThread = 3;
  std::atomic<int> completed{0};
  std::atomic<int> failed{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([this, t, &completed, &failed] {
      crypto::ChaChaRng rng("withdrawer/" + std::to_string(t));
      auto wallet = make_wallet(rng);
      for (int i = 0; i < kCoinsPerThread; ++i) {
        auto coin = withdraw(*wallet, 100);
        if (coin.ok())
          completed.fetch_add(1, std::memory_order_relaxed);
        else
          failed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failed.load(), 0);
  EXPECT_EQ(completed.load(), kThreads * kCoinsPerThread);
  EXPECT_EQ(broker_.coins_issued(),
            static_cast<std::uint64_t>(kThreads * kCoinsPerThread));
  EXPECT_EQ(broker_.fiat_collected(), 100 * kThreads * kCoinsPerThread);
}

TEST_F(EcashConcurrencyTest, ConcurrentPaymentsAndDepositsClear) {
  constexpr int kThreads = 4;
  std::atomic<int> deposited{0};
  std::atomic<int> failed{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([this, t, &deposited, &failed] {
      crypto::ChaChaRng rng("payer/" + std::to_string(t));
      auto wallet = make_wallet(rng);
      // Every thread pays merchant m<t>, who then deposits — all four
      // stages (withdraw, commit, sign, deposit) run concurrently against
      // the shared broker and witness services.
      MerchantId payee = "m";
      payee += std::to_string(t % kMerchants);
      auto coin = withdraw(*wallet, 100);
      if (!coin.ok()) {
        failed.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      auto intent = wallet->prepare_payment(coin.value(), payee);
      auto& witness = witness_for(coin.value());
      auto commitment =
          witness.request_commitment(intent.coin_hash, intent.nonce, kNow);
      if (!commitment.ok()) {
        failed.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      auto transcript = wallet->build_transcript(
          coin.value(), intent, {commitment.value()}, kNow + 1);
      if (!transcript.ok()) {
        failed.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      auto signed_result = witness.sign_transcript(transcript.value(), kNow + 1);
      if (!signed_result.ok() ||
          !std::holds_alternative<WitnessEndorsement>(signed_result.value())) {
        failed.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      SignedTranscript st{
          transcript.value(),
          {std::get<WitnessEndorsement>(signed_result.value())}};
      auto receipt = broker_.deposit(payee, st, kNow + 2);
      if (receipt.ok())
        deposited.fetch_add(1, std::memory_order_relaxed);
      else
        failed.fetch_add(1, std::memory_order_relaxed);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failed.load(), 0);
  EXPECT_EQ(deposited.load(), kThreads);
  EXPECT_EQ(broker_.coins_deposited(), static_cast<std::uint64_t>(kThreads));
}

TEST_F(EcashConcurrencyTest, RacingSpendsYieldOneEndorsementOneProof) {
  // Withdraw one coin, then race two spenders at different merchants
  // against the same witness.  The witness's one-live-commitment rule
  // makes the loser retry until the winner's spend consumes the
  // commitment; its own spend must then come back as a DoubleSpendProof.
  crypto::ChaChaRng rng("race/setup");
  auto wallet = make_wallet(rng);
  auto coin = withdraw(*wallet, 100);
  ASSERT_TRUE(coin.ok());
  auto& witness = witness_for(coin.value());

  std::atomic<int> endorsements{0};
  std::atomic<int> proofs{0};
  std::atomic<int> errors{0};
  auto spend_at = [&](const MerchantId& payee, Timestamp when) {
    crypto::ChaChaRng thread_rng("race/" + payee);
    auto thread_wallet = make_wallet(thread_rng);
    auto intent = thread_wallet->prepare_payment(coin.value(), payee);
    Outcome<WitnessCommitment> commitment =
        Refusal{RefusalReason::kInternal, "never requested"};
    for (int attempt = 0; attempt < 100'000; ++attempt) {
      commitment =
          witness.request_commitment(intent.coin_hash, intent.nonce, when);
      if (commitment.ok()) break;
      if (commitment.refusal().reason != RefusalReason::kCommitmentOutstanding) {
        errors.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      std::this_thread::yield();
    }
    if (!commitment.ok()) {  // the other spender never released it
      errors.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    auto transcript = thread_wallet->build_transcript(
        coin.value(), intent, {commitment.value()}, when);
    if (!transcript.ok()) {
      errors.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    auto result = witness.sign_transcript(transcript.value(), when);
    if (!result.ok()) {
      errors.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (std::holds_alternative<WitnessEndorsement>(result.value()))
      endorsements.fetch_add(1, std::memory_order_relaxed);
    else
      proofs.fetch_add(1, std::memory_order_relaxed);
  };
  // Distinct merchants and times give the two spends distinct challenges,
  // so the second one is a provable double spend, not an idempotent retry.
  std::thread first(spend_at, "m0", kNow + 10);
  std::thread second(spend_at, "m1", kNow + 20);
  first.join();
  second.join();

  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(endorsements.load(), 1);
  EXPECT_EQ(proofs.load(), 1);
  EXPECT_TRUE(
      witness.has_double_spend_record(coin.value().coin.bare.coin_hash()));
}

TEST_F(EcashConcurrencyTest, TableReferencesSurviveConcurrentPublication) {
  // current_table() hands out references; publishing new versions from
  // another thread must not invalidate them (tables_ is a deque).
  const WitnessTable& v1 = broker_.current_table();
  const std::uint32_t v1_version = v1.version();
  std::thread publisher([this] {
    for (int i = 0; i < 8; ++i) broker_.publish_witness_table(kNow + i);
  });
  std::thread reader([this, &v1, v1_version] {
    for (int i = 0; i < 200; ++i) {
      EXPECT_EQ(v1.version(), v1_version);
      EXPECT_GE(broker_.current_table().version(), v1_version);
    }
  });
  publisher.join();
  reader.join();
  EXPECT_EQ(broker_.table(v1_version), &v1);
}

// ---------------------------------------------------------------------------
// SchnorrGroup lazy-cache races (regression for the const-method caches)
// ---------------------------------------------------------------------------

// Threads hammer exp() with more recurring bases than the promotion cache
// holds (forcing concurrent promote + evict churn) and hash_to_group()
// with more inputs than the memo holds, while other threads read
// fixed_base_memory_bytes().  Every result is checked against a reference
// computed with the fast path disabled (the disable flag is thread-local,
// so workers still exercise the cached path).  Under TSan this pins the
// internal locking of the mutable caches behind the const API; under any
// build it pins the promote-outside-the-lock rework: a lost or duplicated
// table install returns a *wrong table* for a base, which the reference
// comparison catches.
TEST(GroupCacheConcurrencyTest, PromotionEvictionAndMemoChurnStayCorrect) {
  // Fresh group instance (same parameters as test_256) so this test churns
  // a private cache instead of polluting the shared singleton's.
  const group::SchnorrGroup& shared = group::SchnorrGroup::test_256();
  crypto::ChaChaRng rng("concurrency/group-cache");
  const group::SchnorrGroup grp = group::SchnorrGroup::from_params(
      shared.p(), shared.q(), shared.g(), shared.g1(), shared.g2(), rng);

  // More recurring bases than the promotion cache bound (64) and more
  // hash inputs than the memo bound (128), so eviction runs concurrently
  // with promotion and lookup.
  constexpr std::size_t kBases = 70;
  constexpr std::size_t kHashInputs = 140;
  constexpr std::size_t kExponents = 4;
  constexpr int kThreads = 8;
  constexpr std::size_t kIters = 400;

  std::vector<BigInt> bases, exponents, base_refs;
  bases.reserve(kBases);
  exponents.reserve(kExponents);
  for (std::size_t i = 0; i < kBases; ++i)
    bases.push_back(grp.exp_g(grp.random_scalar(rng)));
  for (std::size_t i = 0; i < kExponents; ++i)
    exponents.push_back(grp.random_scalar(rng));

  std::vector<std::vector<std::uint8_t>> hash_inputs(kHashInputs);
  for (std::size_t i = 0; i < kHashInputs; ++i)
    hash_inputs[i] = {static_cast<std::uint8_t>(i),
                      static_cast<std::uint8_t>(i >> 8), 0xAB};

  // References via the plain ladder / fresh hash (no caches involved).
  base_refs.reserve(kBases * kExponents);
  std::vector<BigInt> hash_refs;
  hash_refs.reserve(kHashInputs);
  {
    group::ScopedDisableFastExp plain;
    for (std::size_t b = 0; b < kBases; ++b)
      for (std::size_t e = 0; e < kExponents; ++e)
        base_refs.push_back(grp.exp(bases[b], exponents[e]));
    for (const auto& in : hash_inputs) hash_refs.push_back(grp.hash_to_group(in));
  }

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t i = 0; i < kIters; ++i) {
        // Stagger starting offsets so threads collide on *different* bases
        // simultaneously (promotion of one base races eviction of another).
        const std::size_t b =
            (static_cast<std::size_t>(t) * 17 + i) % kBases;
        const std::size_t e = i % kExponents;
        if (grp.exp(bases[b], exponents[e]) != base_refs[b * kExponents + e])
          mismatches.fetch_add(1, std::memory_order_relaxed);
        const std::size_t h =
            (static_cast<std::size_t>(t) * 31 + i) % kHashInputs;
        if (grp.hash_to_group(hash_inputs[h]) != hash_refs[h])
          mismatches.fetch_add(1, std::memory_order_relaxed);
        if (i % 64 == 0) (void)grp.fixed_base_memory_bytes();
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(mismatches.load(), 0);
  // The generator tables plus promoted entries must be accounted for.
  EXPECT_GT(grp.fixed_base_memory_bytes(), 0u);
}

}  // namespace
}  // namespace p2pcash::ecash
