// The resilient RPC layer: retry policy, circuit breaker, idempotent
// re-requests at every role (witness transfer links, broker withdrawals and
// deposits, merchant crash recovery) and the deposit retry loop over the
// network.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "actors/retry.h"
#include "actors/world.h"
#include "ecash_fixture.h"

namespace p2pcash {
namespace {

using actors::ClientActor;
using actors::PeerHealth;
using actors::RetryPolicy;
using actors::SimWorld;

// ---------------------------------------------------------------------------
// RetryPolicy
// ---------------------------------------------------------------------------

TEST(RetryPolicy, FirstBackoffIsExactlyTheBase) {
  RetryPolicy policy;
  crypto::ChaChaRng rng("backoff");
  // prev=0 collapses uniform(base, max(base, 0)) to the base itself.
  EXPECT_DOUBLE_EQ(policy.next_backoff(0, rng), policy.backoff_base_ms);
}

TEST(RetryPolicy, DecorrelatedJitterStaysInBounds) {
  RetryPolicy policy;
  crypto::ChaChaRng rng("backoff2");
  for (int i = 0; i < 200; ++i) {
    const auto b = policy.next_backoff(1'000, rng);
    EXPECT_GE(b, policy.backoff_base_ms);
    EXPECT_LE(b, 3'000.0);
  }
}

TEST(RetryPolicy, BackoffIsCapped) {
  RetryPolicy policy;
  crypto::ChaChaRng rng("backoff3");
  for (int i = 0; i < 50; ++i) {
    EXPECT_LE(policy.next_backoff(1'000'000, rng), policy.backoff_cap_ms);
  }
}

TEST(RetryPolicy, BackoffStaysFiniteForPathologicalPrev) {
  // Regression: prev_ms must be clamped to the cap BEFORE the 3x multiply.
  // SimTime is a double, so 3 * DBL_MAX (or 3 * inf from a caller feeding
  // accumulated sim time) is non-finite; the sampled backoff must still be
  // a finite value in [base, cap].
  RetryPolicy policy;
  crypto::ChaChaRng rng("backoff4");
  for (const double prev : {std::numeric_limits<double>::max(),
                            std::numeric_limits<double>::infinity(),
                            policy.backoff_cap_ms * 1e12}) {
    for (int i = 0; i < 20; ++i) {
      const auto b = policy.next_backoff(prev, rng);
      ASSERT_TRUE(std::isfinite(b)) << "prev=" << prev;
      ASSERT_GE(b, policy.backoff_base_ms);
      ASSERT_LE(b, policy.backoff_cap_ms);
    }
  }
}

// ---------------------------------------------------------------------------
// PeerHealth (circuit breaker)
// ---------------------------------------------------------------------------

TEST(PeerHealth, StaysClosedUnderThresholdAndSuccessResets) {
  PeerHealth health(PeerHealth::Config{.failure_threshold = 3,
                                       .open_ms = 1'000});
  EXPECT_FALSE(health.record_failure(7, 0));
  EXPECT_FALSE(health.record_failure(7, 10));
  EXPECT_TRUE(health.allow(7, 20));
  health.record_success(7);
  // Counter reset: two more failures still do not trip.
  EXPECT_FALSE(health.record_failure(7, 30));
  EXPECT_FALSE(health.record_failure(7, 40));
  EXPECT_TRUE(health.allow(7, 50));
  EXPECT_EQ(health.trips(), 0u);
}

TEST(PeerHealth, TripsAtConsecutiveFailuresAndBlocks) {
  PeerHealth health(PeerHealth::Config{.failure_threshold = 3,
                                       .open_ms = 1'000});
  health.record_failure(7, 0);
  health.record_failure(7, 10);
  EXPECT_TRUE(health.record_failure(7, 20));  // the tripping transition
  EXPECT_TRUE(health.is_open(7, 100));
  EXPECT_FALSE(health.allow(7, 100));   // open window
  EXPECT_TRUE(health.allow(8, 100));    // per-peer: others unaffected
  EXPECT_EQ(health.trips(), 1u);
}

TEST(PeerHealth, HalfOpenAdmitsOneProbeThenClosesOnSuccess) {
  PeerHealth health(PeerHealth::Config{.failure_threshold = 1,
                                       .open_ms = 1'000});
  EXPECT_TRUE(health.record_failure(7, 0));
  EXPECT_FALSE(health.allow(7, 500));
  EXPECT_TRUE(health.allow(7, 1'500));   // the single half-open probe
  EXPECT_FALSE(health.allow(7, 1'600));  // no second concurrent probe
  health.record_success(7);
  EXPECT_TRUE(health.allow(7, 1'700));
  EXPECT_FALSE(health.is_open(7, 1'700));
}

TEST(PeerHealth, FailedProbeReopensAndCountsASecondTrip) {
  PeerHealth health(PeerHealth::Config{.failure_threshold = 1,
                                       .open_ms = 1'000});
  EXPECT_TRUE(health.record_failure(7, 0));
  EXPECT_TRUE(health.allow(7, 1'200));          // probe admitted
  EXPECT_TRUE(health.record_failure(7, 1'250)); // probe failed: re-trip
  EXPECT_FALSE(health.allow(7, 2'000));         // new open window from 1250
  EXPECT_TRUE(health.allow(7, 2'300));          // 1250 + 1000 elapsed
  EXPECT_EQ(health.trips(), 2u);
}

// ---------------------------------------------------------------------------
// Idempotent re-requests at the protocol layer
// ---------------------------------------------------------------------------

class ResilienceEcashTest : public ecash::testing::EcashTest {};

TEST_F(ResilienceEcashTest, MerchantDropPendingAllowsCleanClientRetry) {
  using namespace ecash;
  auto coin = withdraw();
  auto merchant_id = non_witness_merchant(coin);
  Merchant& merchant = *dep_.node(merchant_id).merchant;

  auto intent = wallet_->prepare_payment(coin, merchant_id);
  std::vector<WitnessCommitment> commitments;
  for (const auto& entry : coin.coin.witnesses) {
    auto c = dep_.node(entry.merchant)
                 .witness->request_commitment(intent.coin_hash, intent.nonce,
                                              2'000);
    ASSERT_TRUE(c.ok()) << c.refusal().detail;
    commitments.push_back(std::move(c).value());
  }
  auto transcript = wallet_->build_transcript(coin, intent, commitments, 2'000);
  ASSERT_TRUE(transcript.ok());

  ASSERT_TRUE(
      merchant.receive_payment(transcript.value(), commitments, 2'000).ok());
  EXPECT_NE(merchant.pending(intent.coin_hash), nullptr);

  // Crash recovery drops the half-done payment but keeps everything else.
  EXPECT_EQ(merchant.drop_pending(), 1u);
  EXPECT_EQ(merchant.pending(intent.coin_hash), nullptr);
  EXPECT_EQ(merchant.drop_pending(), 0u);
  EXPECT_EQ(merchant.deposit_queue_size(), 0u);
  EXPECT_EQ(merchant.services_delivered(), 0u);
  EXPECT_FALSE(merchant.already_serviced(intent.coin_hash));

  // The client retries the identical transcript from scratch and the
  // payment completes: the witness re-validates and endorses.
  ASSERT_TRUE(
      merchant.receive_payment(transcript.value(), commitments, 2'100).ok());
  for (const auto& entry : coin.coin.witnesses) {
    auto signed_result = dep_.node(entry.merchant)
                             .witness->sign_transcript(transcript.value(),
                                                       2'100);
    ASSERT_TRUE(signed_result.ok()) << signed_result.refusal().detail;
    auto* endorsement =
        std::get_if<WitnessEndorsement>(&signed_result.value());
    ASSERT_NE(endorsement, nullptr);
    auto done = merchant.add_endorsement(intent.coin_hash, *endorsement);
    ASSERT_TRUE(done.ok()) << done.refusal().detail;
  }
  EXPECT_EQ(merchant.services_delivered(), 1u);
  EXPECT_TRUE(merchant.already_serviced(intent.coin_hash));
}

TEST_F(ResilienceEcashTest, WitnessReissuesTransferLinkUnderRetryStorm) {
  using namespace ecash;
  auto coin = withdraw();
  WitnessService& witness =
      *dep_.node(coin.coin.witnesses[0].merchant).witness;
  auto bob = dep_.make_wallet();

  auto intent = bob->prepare_receive();
  auto response =
      wallet_->respond_transfer(coin, intent.comm.a, intent.comm.b, 2'000);
  auto first = witness.sign_transfer(coin.coin, intent.comm.a, intent.comm.b,
                                     response, 2'000, 2'000);
  ASSERT_TRUE(first.ok()) << first.refusal().detail;
  auto* link = std::get_if<TransferLink>(&first.value());
  ASSERT_NE(link, nullptr);

  // A retry storm replays the identical request: every reply must be the
  // recorded link, byte for byte, and none may be misread as a double
  // transfer (the witness.cpp identical-re-request path).
  for (int i = 0; i < 10; ++i) {
    auto again = witness.sign_transfer(coin.coin, intent.comm.a,
                                       intent.comm.b, response, 2'000,
                                       2'000 + i);
    ASSERT_TRUE(again.ok()) << again.refusal().detail;
    auto* relink = std::get_if<TransferLink>(&again.value());
    ASSERT_NE(relink, nullptr);
    EXPECT_EQ(*relink, *link);
  }
  EXPECT_FALSE(witness.has_double_spend_record(coin.coin.bare.coin_hash()));
  EXPECT_TRUE(witness.stale_owner_evidence().empty());

  // The re-issued link is still spendable by the recipient.
  auto received = bob->accept_transfer(coin.coin, *link, intent);
  ASSERT_TRUE(received.ok()) << received.refusal().detail;
}

// ---------------------------------------------------------------------------
// Resilient RPC over the simulated network
// ---------------------------------------------------------------------------

SimWorld::Options net_options() {
  SimWorld::Options opt;
  opt.merchants = 6;
  opt.seed = 99;
  opt.cost = simnet::free_cost();
  return opt;
}

TEST(Resilience, WithdrawRetriesThroughLossyBrokerLink) {
  auto& grp = group::SchnorrGroup::test_256();
  SimWorld world(grp, net_options());
  auto& client = world.add_client();
  // Everything the broker says is lost for the first 3 seconds; the client
  // must re-drive the withdrawal with the same request bytes.
  world.faults().schedule_link_fault(world.directory().broker, client.id(),
                                     simnet::LinkFault{.drop = 1.0},
                                     /*at=*/0, /*clear_at=*/3'000);
  int callbacks = 0;
  std::optional<ecash::WalletCoin> coin;
  client.withdraw(100,
                  [&](ecash::Outcome<ecash::WalletCoin> c) {
                    ++callbacks;
                    ASSERT_TRUE(c.ok()) << c.refusal().detail;
                    coin = std::move(c).value();
                  },
                  /*deadline_ms=*/30'000);
  world.sim().run();
  EXPECT_EQ(callbacks, 1);
  ASSERT_TRUE(coin.has_value());
  EXPECT_EQ(coin->coin.bare.info.denomination, 100u);
  EXPECT_GE(client.resilience().retries, 1u);
  EXPECT_EQ(world.broker().coins_issued(), 1u);
}

TEST(Resilience, DuplicatedBrokerRepliesAreSuppressed) {
  auto& grp = group::SchnorrGroup::test_256();
  SimWorld world(grp, net_options());
  auto& client = world.add_client();
  world.net().set_link_fault(world.directory().broker, client.id(),
                             simnet::LinkFault{.duplicate = 1.0});
  int callbacks = 0;
  std::optional<ecash::WalletCoin> coin;
  client.withdraw(100, [&](ecash::Outcome<ecash::WalletCoin> c) {
    ++callbacks;
    ASSERT_TRUE(c.ok()) << c.refusal().detail;
    coin = std::move(c).value();
  });
  world.sim().run();
  EXPECT_EQ(callbacks, 1);
  ASSERT_TRUE(coin.has_value());
  // Both the duplicated offer and the duplicated response were ignored.
  EXPECT_EQ(client.resilience().late_replies_ignored, 2u);
  EXPECT_EQ(world.broker().coins_issued(), 1u);
}

class DepositRetryTest : public ::testing::Test {
 protected:
  DepositRetryTest()
      : world_(group::SchnorrGroup::test_256(), net_options()),
        client_(world_.add_client()) {}

  /// Withdraws and completes one payment at a non-witness merchant so its
  /// deposit queue holds exactly one endorsed transcript.
  ecash::MerchantId complete_one_payment() {
    std::optional<ecash::WalletCoin> coin;
    client_.withdraw(100, [&](ecash::Outcome<ecash::WalletCoin> c) {
      EXPECT_TRUE(c.ok());
      coin = std::move(c).value();
    });
    world_.sim().run();
    EXPECT_TRUE(coin.has_value());
    auto witness_id = coin->coin.witnesses[0].merchant;
    ecash::MerchantId target;
    for (const auto& id : world_.merchant_ids()) {
      if (id != witness_id) {
        target = id;
        break;
      }
    }
    std::optional<ClientActor::PayResult> result;
    client_.pay(*coin, target,
                [&](ClientActor::PayResult r) { result = std::move(r); });
    world_.sim().run();
    EXPECT_TRUE(result && result->accepted);
    EXPECT_EQ(world_.merchant(target).deposit_queue_size(), 1u);
    return target;
  }

  SimWorld world_;
  ClientActor& client_;
};

TEST_F(DepositRetryTest, LostReceiptsRetryUntilAlreadyDepositedAck) {
  auto target = complete_one_payment();
  auto& actor = world_.merchant_actor(target);
  // Every broker -> merchant receipt is lost for 5 s after the flush: the
  // first submit lands (the broker credits it) but the merchant cannot know
  // and must retry; the broker's kAlreadyDeposited then acts as the ack.
  world_.net().set_link_fault(world_.directory().broker,
                              world_.merchant_node(target),
                              simnet::LinkFault{.drop = 1.0});
  world_.sim().schedule(5'000, [&] {
    world_.net().clear_link_fault(world_.directory().broker,
                                  world_.merchant_node(target));
  });
  actor.flush_deposits();
  EXPECT_EQ(actor.deposits_outstanding(), 1u);
  world_.sim().run();
  EXPECT_EQ(actor.deposits_outstanding(), 0u);
  EXPECT_EQ(world_.broker().coins_deposited(), 1u);  // credited exactly once
  EXPECT_GE(actor.resilience().retries, 2u);
  EXPECT_GE(actor.resilience().duplicates_suppressed, 1u);
}

TEST_F(DepositRetryTest, BrokerOutageExhaustsThenLaterFlushSucceeds) {
  auto target = complete_one_payment();
  auto& actor = world_.merchant_actor(target);
  world_.net().set_down(world_.directory().broker, true);
  actor.flush_deposits();
  world_.sim().run();
  // Retries exhausted, the transcript is retained for a later flush.
  EXPECT_EQ(actor.deposits_outstanding(), 1u);
  EXPECT_GE(actor.resilience().timeouts, 1u);
  EXPECT_EQ(world_.broker().coins_deposited(), 0u);

  world_.net().set_down(world_.directory().broker, false);
  actor.flush_deposits();
  world_.sim().run();
  EXPECT_EQ(actor.deposits_outstanding(), 0u);
  EXPECT_EQ(world_.broker().coins_deposited(), 1u);
}

}  // namespace
}  // namespace p2pcash
