// Fixed-base / multi-exponentiation fast paths: agreement with the plain
// Montgomery ladder, edge cases, and Table 1 op-count invariance.
//
// The fast paths (fixed-base windowing for g/g1/g2 and promoted recurring
// bases, Straus interleaving for everything else) are pure optimizations:
// every test here asserts that enabling them changes neither results nor
// metrics, only wall-clock.

#include "bn/multi_exp.h"

#include <gtest/gtest.h>

#include "blindsig/abe_okamoto.h"
#include "crypto/chacha.h"
#include "group/schnorr_group.h"
#include "metrics/counters.h"
#include "nizk/representation.h"
#include "sig/schnorr_sig.h"
#include "wire/codec.h"

namespace p2pcash {
namespace {

using bn::BigInt;
using group::SchnorrGroup;
using group::ScopedDisableFastExp;

std::vector<const SchnorrGroup*> all_groups() {
  return {&SchnorrGroup::test_256(), &SchnorrGroup::test_512(),
          &SchnorrGroup::production_1024()};
}

TEST(MultiExp, FastExpAgreesWithPlainLadderOn500RandomDraws) {
  // 500 (base, exponent) draws across the three embedded groups.  The
  // bases are arbitrary residues (not necessarily subgroup elements), the
  // exponents deliberately overshoot |q| so reduction is exercised too.
  crypto::ChaChaRng rng("multi-exp/agreement");
  std::size_t draws_total = 0;
  for (const SchnorrGroup* grp : all_groups()) {
    for (int i = 0; i < 500 / 3 + 1; ++i) {
      BigInt base = bn::random_below(rng, grp->p() - BigInt{1}) + BigInt{1};
      BigInt e = bn::random_bits(rng, 8 + (static_cast<std::size_t>(i) % 192));
      BigInt fast = grp->exp(base, e);
      BigInt plain;
      {
        ScopedDisableFastExp off;
        plain = grp->exp(base, e);
      }
      ASSERT_EQ(fast, plain) << "group |p|=" << grp->p().bit_length()
                             << " draw " << i;
      ++draws_total;
    }
  }
  EXPECT_GE(draws_total, 500u);
}

TEST(MultiExp, GeneratorFixedBasePathsAgreeWithPlain) {
  crypto::ChaChaRng rng("multi-exp/generators");
  for (const SchnorrGroup* grp : all_groups()) {
    for (const BigInt* base : {&grp->g(), &grp->g1(), &grp->g2()}) {
      BigInt e = grp->random_scalar(rng);
      BigInt fast = grp->exp(*base, e);
      ScopedDisableFastExp off;
      EXPECT_EQ(fast, grp->exp(*base, e));
    }
  }
}

TEST(MultiExp, RecurringBaseGetsPromotedAndStaysCorrect) {
  // A non-generator base seen repeatedly is promoted to a fixed-base table
  // after a few sightings; the answer must be identical before, at, and
  // after the promotion threshold.
  const SchnorrGroup& grp = SchnorrGroup::test_256();
  crypto::ChaChaRng rng("multi-exp/promotion");
  BigInt base = grp.exp_g(grp.random_scalar(rng));  // stable recurring base
  for (int i = 0; i < 10; ++i) {
    BigInt e = grp.random_scalar(rng);
    BigInt fast = grp.exp(base, e);
    ScopedDisableFastExp off;
    ASSERT_EQ(fast, grp.exp(base, e)) << "sighting " << i;
  }
}

TEST(MultiExp, Exp2AgreesWithSeparateExps) {
  crypto::ChaChaRng rng("multi-exp/exp2");
  for (const SchnorrGroup* grp : all_groups()) {
    for (int i = 0; i < 20; ++i) {
      // Mix of fixed (generator) and loose (random) bases.
      BigInt loose = bn::random_below(rng, grp->p() - BigInt{1}) + BigInt{1};
      BigInt e1 = grp->random_scalar(rng);
      BigInt e2 = grp->random_scalar(rng);
      BigInt fused = grp->exp2(grp->g1(), e1, loose, e2);
      ScopedDisableFastExp off;
      EXPECT_EQ(fused, grp->mul(grp->exp(grp->g1(), e1), grp->exp(loose, e2)));
    }
  }
}

TEST(MultiExp, MultiExpAgreesWithProductOfExps) {
  crypto::ChaChaRng rng("multi-exp/straus");
  const SchnorrGroup& grp = SchnorrGroup::test_512();
  for (std::size_t k = 1; k <= 5; ++k) {
    std::vector<BigInt> bases, exps;
    for (std::size_t i = 0; i < k; ++i) {
      bases.push_back(bn::random_below(rng, grp.p() - BigInt{1}) + BigInt{1});
      exps.push_back(grp.random_scalar(rng));
    }
    BigInt fused = grp.multi_exp(bases, exps);
    ScopedDisableFastExp off;
    BigInt expected{1};
    for (std::size_t i = 0; i < k; ++i)
      expected = grp.mul(expected, grp.exp(bases[i], exps[i]));
    EXPECT_EQ(fused, expected) << "k=" << k;
  }
}

TEST(MultiExp, EdgeCaseExponentsAndBases) {
  const SchnorrGroup& grp = SchnorrGroup::test_256();
  crypto::ChaChaRng rng("multi-exp/edges");
  BigInt base = bn::random_below(rng, grp.p() - BigInt{1}) + BigInt{1};
  // e = 0 -> 1, for fixed and loose bases alike.
  EXPECT_EQ(grp.exp(grp.g(), BigInt{0}), BigInt{1});
  EXPECT_EQ(grp.exp(base, BigInt{0}), BigInt{1});
  // e = 1 -> base (bases below p are already reduced).
  EXPECT_EQ(grp.exp(grp.g(), BigInt{1}), grp.g());
  EXPECT_EQ(grp.exp(base, BigInt{1}), base);
  // e = q reduces to 0 in the exponent group.
  EXPECT_EQ(grp.exp(grp.g(), grp.q()), BigInt{1});
  // e = q - 1 = -1: g^(q-1) * g = 1.
  BigInt qm1 = grp.exp(grp.g(), grp.q() - BigInt{1});
  EXPECT_EQ(grp.mul(qm1, grp.g()), BigInt{1});
  // Negative exponents reduce mod q: e and e + q agree.
  BigInt e = grp.random_scalar(rng);
  EXPECT_EQ(grp.exp(grp.g(), e - grp.q()), grp.exp(grp.g(), e));
  // base = 1 -> 1 under every exponent.
  EXPECT_EQ(grp.exp(BigInt{1}, e), BigInt{1});
  // exp2 with both exponents zero.
  EXPECT_EQ(grp.exp2(grp.g1(), BigInt{0}, grp.g2(), BigInt{0}), BigInt{1});
  // multi_exp size mismatch throws.
  std::vector<BigInt> two{grp.g(), grp.g1()}, one{e};
  EXPECT_THROW((void)grp.multi_exp(two, one), std::invalid_argument);
}

TEST(MultiExp, MontgomeryLayerFallsBackWhenTableTooSmall) {
  // exp_fixed must detect an exponent wider than the table and fall back
  // to the plain ladder instead of reading out of bounds.
  const SchnorrGroup& grp = SchnorrGroup::test_256();
  bn::MontgomeryCtx ctx(grp.p());
  crypto::ChaChaRng rng("multi-exp/fallback");
  BigInt base = bn::random_below(rng, grp.p() - BigInt{1}) + BigInt{1};
  bn::FixedBaseTable small = ctx.precompute_base(base, 32, 4);
  BigInt wide = bn::random_bits(rng, 200);
  EXPECT_FALSE(small.covers(wide.bit_length()));
  EXPECT_EQ(ctx.exp_fixed(small, wide), ctx.exp(base, wide));
  BigInt narrow = bn::random_bits(rng, 31);
  EXPECT_TRUE(small.covers(narrow.bit_length()));
  EXPECT_EQ(ctx.exp_fixed(small, narrow), ctx.exp(base, narrow));
}

TEST(MultiExp, TableMemoryIsReportedAfterUse) {
  const SchnorrGroup& grp = SchnorrGroup::test_512();
  crypto::ChaChaRng rng("multi-exp/memory");
  (void)grp.exp_g(grp.random_scalar(rng));  // forces generator tables
  // 3 generator tables, 40 windows x 15 entries x 64 bytes each = ~115 KB.
  std::size_t bytes = grp.fixed_base_memory_bytes();
  EXPECT_GT(bytes, 3u * 40u * 15u * 32u);
  EXPECT_LT(bytes, 3u * 40u * 15u * 128u);
}

TEST(MultiExp, DegenerateBatchInputs) {
  // Degenerate shapes the batch verifier feeds multi_exp must match the
  // plain ladder exactly: zero exponents, identity bases, and mixes of
  // both must contribute nothing to the product.
  const SchnorrGroup& grp = SchnorrGroup::test_256();
  crypto::ChaChaRng rng("multi-exp/degenerate");
  BigInt base = bn::random_below(rng, grp.p() - BigInt{1}) + BigInt{1};
  BigInt e = grp.random_scalar(rng);
  // Empty batch -> 1.
  EXPECT_EQ(grp.multi_exp({}, {}), BigInt{1});
  // All-zero exponents -> 1 regardless of bases.
  std::vector<BigInt> bases{base, grp.g1(), grp.g2()};
  std::vector<BigInt> zeros{BigInt{0}, BigInt{0}, BigInt{0}};
  EXPECT_EQ(grp.multi_exp(bases, zeros), BigInt{1});
  // Identity bases contribute nothing under any exponent.
  std::vector<BigInt> ones{BigInt{1}, BigInt{1}};
  std::vector<BigInt> exps{e, grp.random_scalar(rng)};
  EXPECT_EQ(grp.multi_exp(ones, exps), BigInt{1});
  // A mix: only the live term shows through.
  std::vector<BigInt> mixed_bases{BigInt{1}, base, grp.g1()};
  std::vector<BigInt> mixed_exps{e, e, BigInt{0}};
  EXPECT_EQ(grp.multi_exp(mixed_bases, mixed_exps), grp.exp(base, e));
}

TEST(MultiExp, SingleElementBatchMatchesPlainLadderExactly) {
  // A batch of one must produce byte-for-byte the plain ladder's result
  // (same canonical residue) for loose bases, generators and edge
  // exponents alike.
  const SchnorrGroup& grp = SchnorrGroup::test_512();
  crypto::ChaChaRng rng("multi-exp/single");
  auto canonical = [](const BigInt& v) {
    wire::Writer w;
    w.put_bigint(v);
    return w.take();
  };
  for (int i = 0; i < 10; ++i) {
    BigInt base = bn::random_below(rng, grp.p() - BigInt{1}) + BigInt{1};
    BigInt e = i == 0 ? BigInt{0} : grp.random_scalar(rng);
    BigInt batched = grp.multi_exp({&base, 1}, {&e, 1});
    ScopedDisableFastExp off;
    BigInt plain = grp.exp(base, e);
    ASSERT_EQ(canonical(batched), canonical(plain)) << "draw " << i;
  }
}

TEST(MultiExp, PippengerPathAgreesWithProductOfExps) {
  // 150 bases crosses the bucket-method threshold (128); the result must
  // still agree with the naive product, including zero exponents and
  // identity bases sprinkled in.
  const SchnorrGroup& grp = SchnorrGroup::test_256();
  crypto::ChaChaRng rng("multi-exp/pippenger");
  std::vector<BigInt> bases, exps;
  for (std::size_t i = 0; i < 150; ++i) {
    if (i % 31 == 0) {
      bases.push_back(BigInt{1});
      exps.push_back(grp.random_scalar(rng));
    } else if (i % 17 == 0) {
      bases.push_back(bn::random_below(rng, grp.p() - BigInt{1}) + BigInt{1});
      exps.push_back(BigInt{0});
    } else {
      bases.push_back(bn::random_below(rng, grp.p() - BigInt{1}) + BigInt{1});
      exps.push_back(grp.random_scalar(rng));
    }
  }
  BigInt fused = grp.multi_exp(bases, exps);
  ScopedDisableFastExp off;
  BigInt expected{1};
  for (std::size_t i = 0; i < bases.size(); ++i)
    expected = grp.mul(expected, grp.exp(bases[i], exps[i]));
  EXPECT_EQ(fused, expected);
}

// --- Table 1 invariance: fast paths must not move any op count ----------

metrics::OpCounters run_protocol_ops(const SchnorrGroup& grp,
                                     std::string_view seed) {
  crypto::ChaChaRng rng(seed);
  metrics::OpCounters ops;
  metrics::ScopedOpCounting guard(ops);

  // NIZK representation proof round trip (3 + 2 Exp verify paths).
  auto secret = nizk::CoinSecret::random(grp, rng);
  auto comm = nizk::commit(grp, secret);
  BigInt d = grp.random_scalar(rng);
  auto resp = nizk::respond(grp, secret, d);
  EXPECT_TRUE(nizk::verify_response(grp, comm, d, resp));

  // Schnorr signature sign + verify.
  auto kp = sig::KeyPair::generate(grp, rng);
  std::vector<std::uint8_t> msg{1, 2, 3};
  auto signature = kp.sign(msg, rng);
  EXPECT_TRUE(sig::verify(grp, kp.public_key(), msg, signature));

  // Abe–Okamoto blind signature issue + verify.
  BigInt x = grp.random_scalar(rng);
  blindsig::BlindSigner signer(grp, x);
  std::vector<std::uint8_t> info{9, 9};
  auto session = signer.start(info, rng);
  blindsig::BlindRequester requester(grp, signer.public_y(), info, msg);
  BigInt e = requester.challenge(session.first, rng);
  auto sresp = signer.respond(session, e);
  auto bsig = requester.unblind(sresp);
  EXPECT_TRUE(blindsig::verify(grp, signer.public_y(), info, msg, bsig));
  EXPECT_TRUE(blindsig::verify_with_secret(grp, x, info, msg, bsig));

  return ops;
}

TEST(MultiExp, OpCountersIdenticalWithFastPathsOnAndOff) {
  // The same deterministic protocol run must report identical Exp/Hash/
  // Sig/Ver counts whether exponentiations are served by tables, Straus
  // ladders, or the plain ladder: Table 1 counts logical ops, not
  // implementation details.
  const SchnorrGroup& grp = SchnorrGroup::test_256();
  metrics::OpCounters fast = run_protocol_ops(grp, "multi-exp/invariance");
  metrics::OpCounters plain;
  {
    ScopedDisableFastExp off;
    plain = run_protocol_ops(grp, "multi-exp/invariance");
  }
  EXPECT_EQ(fast, plain);
  EXPECT_GT(fast.exp, 0u);
  EXPECT_GT(fast.hash, 0u);
  EXPECT_EQ(fast.sig, 1u);
  EXPECT_EQ(fast.ver, 1u);
}

}  // namespace
}  // namespace p2pcash
