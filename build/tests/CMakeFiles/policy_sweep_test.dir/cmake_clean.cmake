file(REMOVE_RECURSE
  "CMakeFiles/policy_sweep_test.dir/policy_sweep_test.cpp.o"
  "CMakeFiles/policy_sweep_test.dir/policy_sweep_test.cpp.o.d"
  "policy_sweep_test"
  "policy_sweep_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
