# Empty dependencies file for policy_sweep_test.
# This may be replaced when dependencies are built.
