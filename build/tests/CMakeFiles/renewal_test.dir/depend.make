# Empty dependencies file for renewal_test.
# This may be replaced when dependencies are built.
