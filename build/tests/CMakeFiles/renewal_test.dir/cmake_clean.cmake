file(REMOVE_RECURSE
  "CMakeFiles/renewal_test.dir/renewal_test.cpp.o"
  "CMakeFiles/renewal_test.dir/renewal_test.cpp.o.d"
  "renewal_test"
  "renewal_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/renewal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
