# Empty compiler generated dependencies file for commitment_test.
# This may be replaced when dependencies are built.
