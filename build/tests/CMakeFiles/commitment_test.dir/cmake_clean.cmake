file(REMOVE_RECURSE
  "CMakeFiles/commitment_test.dir/commitment_test.cpp.o"
  "CMakeFiles/commitment_test.dir/commitment_test.cpp.o.d"
  "commitment_test"
  "commitment_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/commitment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
