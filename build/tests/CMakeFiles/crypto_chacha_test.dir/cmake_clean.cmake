file(REMOVE_RECURSE
  "CMakeFiles/crypto_chacha_test.dir/crypto_chacha_test.cpp.o"
  "CMakeFiles/crypto_chacha_test.dir/crypto_chacha_test.cpp.o.d"
  "crypto_chacha_test"
  "crypto_chacha_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crypto_chacha_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
