file(REMOVE_RECURSE
  "CMakeFiles/bn_bigint_test.dir/bn_bigint_test.cpp.o"
  "CMakeFiles/bn_bigint_test.dir/bn_bigint_test.cpp.o.d"
  "bn_bigint_test"
  "bn_bigint_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bn_bigint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
