# Empty compiler generated dependencies file for bn_bigint_test.
# This may be replaced when dependencies are built.
