# Empty dependencies file for bn_modular_test.
# This may be replaced when dependencies are built.
