file(REMOVE_RECURSE
  "CMakeFiles/bn_modular_test.dir/bn_modular_test.cpp.o"
  "CMakeFiles/bn_modular_test.dir/bn_modular_test.cpp.o.d"
  "bn_modular_test"
  "bn_modular_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bn_modular_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
