file(REMOVE_RECURSE
  "CMakeFiles/bn_prime_test.dir/bn_prime_test.cpp.o"
  "CMakeFiles/bn_prime_test.dir/bn_prime_test.cpp.o.d"
  "bn_prime_test"
  "bn_prime_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bn_prime_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
