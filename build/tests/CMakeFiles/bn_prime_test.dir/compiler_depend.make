# Empty compiler generated dependencies file for bn_prime_test.
# This may be replaced when dependencies are built.
