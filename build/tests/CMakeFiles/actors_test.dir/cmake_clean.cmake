file(REMOVE_RECURSE
  "CMakeFiles/actors_test.dir/actors_test.cpp.o"
  "CMakeFiles/actors_test.dir/actors_test.cpp.o.d"
  "actors_test"
  "actors_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/actors_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
