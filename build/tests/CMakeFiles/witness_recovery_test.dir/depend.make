# Empty dependencies file for witness_recovery_test.
# This may be replaced when dependencies are built.
