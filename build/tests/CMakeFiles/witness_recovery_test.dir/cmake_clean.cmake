file(REMOVE_RECURSE
  "CMakeFiles/witness_recovery_test.dir/witness_recovery_test.cpp.o"
  "CMakeFiles/witness_recovery_test.dir/witness_recovery_test.cpp.o.d"
  "witness_recovery_test"
  "witness_recovery_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/witness_recovery_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
