file(REMOVE_RECURSE
  "CMakeFiles/broker_recovery_test.dir/broker_recovery_test.cpp.o"
  "CMakeFiles/broker_recovery_test.dir/broker_recovery_test.cpp.o.d"
  "broker_recovery_test"
  "broker_recovery_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/broker_recovery_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
