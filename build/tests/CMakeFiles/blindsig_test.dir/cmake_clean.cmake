file(REMOVE_RECURSE
  "CMakeFiles/blindsig_test.dir/blindsig_test.cpp.o"
  "CMakeFiles/blindsig_test.dir/blindsig_test.cpp.o.d"
  "blindsig_test"
  "blindsig_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blindsig_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
