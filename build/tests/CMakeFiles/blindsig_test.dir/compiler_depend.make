# Empty compiler generated dependencies file for blindsig_test.
# This may be replaced when dependencies are built.
