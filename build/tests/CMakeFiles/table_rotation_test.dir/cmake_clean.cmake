file(REMOVE_RECURSE
  "CMakeFiles/table_rotation_test.dir/table_rotation_test.cpp.o"
  "CMakeFiles/table_rotation_test.dir/table_rotation_test.cpp.o.d"
  "table_rotation_test"
  "table_rotation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_rotation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
