# Empty dependencies file for table_rotation_test.
# This may be replaced when dependencies are built.
