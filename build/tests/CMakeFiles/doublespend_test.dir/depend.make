# Empty dependencies file for doublespend_test.
# This may be replaced when dependencies are built.
