file(REMOVE_RECURSE
  "CMakeFiles/doublespend_test.dir/doublespend_test.cpp.o"
  "CMakeFiles/doublespend_test.dir/doublespend_test.cpp.o.d"
  "doublespend_test"
  "doublespend_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/doublespend_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
