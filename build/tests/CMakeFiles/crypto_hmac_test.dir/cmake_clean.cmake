file(REMOVE_RECURSE
  "CMakeFiles/crypto_hmac_test.dir/crypto_hmac_test.cpp.o"
  "CMakeFiles/crypto_hmac_test.dir/crypto_hmac_test.cpp.o.d"
  "crypto_hmac_test"
  "crypto_hmac_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crypto_hmac_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
