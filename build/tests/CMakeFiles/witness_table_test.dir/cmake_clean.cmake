file(REMOVE_RECURSE
  "CMakeFiles/witness_table_test.dir/witness_table_test.cpp.o"
  "CMakeFiles/witness_table_test.dir/witness_table_test.cpp.o.d"
  "witness_table_test"
  "witness_table_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/witness_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
