# Empty dependencies file for witness_table_test.
# This may be replaced when dependencies are built.
