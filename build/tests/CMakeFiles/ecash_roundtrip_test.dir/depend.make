# Empty dependencies file for ecash_roundtrip_test.
# This may be replaced when dependencies are built.
