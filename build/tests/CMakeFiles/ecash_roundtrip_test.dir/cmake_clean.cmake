file(REMOVE_RECURSE
  "CMakeFiles/ecash_roundtrip_test.dir/ecash_roundtrip_test.cpp.o"
  "CMakeFiles/ecash_roundtrip_test.dir/ecash_roundtrip_test.cpp.o.d"
  "ecash_roundtrip_test"
  "ecash_roundtrip_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecash_roundtrip_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
