# Empty compiler generated dependencies file for economy_test.
# This may be replaced when dependencies are built.
