file(REMOVE_RECURSE
  "CMakeFiles/economy_test.dir/economy_test.cpp.o"
  "CMakeFiles/economy_test.dir/economy_test.cpp.o.d"
  "economy_test"
  "economy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/economy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
