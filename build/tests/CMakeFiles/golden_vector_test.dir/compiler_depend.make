# Empty compiler generated dependencies file for golden_vector_test.
# This may be replaced when dependencies are built.
