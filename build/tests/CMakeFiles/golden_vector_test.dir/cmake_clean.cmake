file(REMOVE_RECURSE
  "CMakeFiles/golden_vector_test.dir/golden_vector_test.cpp.o"
  "CMakeFiles/golden_vector_test.dir/golden_vector_test.cpp.o.d"
  "golden_vector_test"
  "golden_vector_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/golden_vector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
