file(REMOVE_RECURSE
  "CMakeFiles/p2pcash_simnet.dir/models.cpp.o"
  "CMakeFiles/p2pcash_simnet.dir/models.cpp.o.d"
  "CMakeFiles/p2pcash_simnet.dir/net.cpp.o"
  "CMakeFiles/p2pcash_simnet.dir/net.cpp.o.d"
  "CMakeFiles/p2pcash_simnet.dir/sim.cpp.o"
  "CMakeFiles/p2pcash_simnet.dir/sim.cpp.o.d"
  "libp2pcash_simnet.a"
  "libp2pcash_simnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2pcash_simnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
