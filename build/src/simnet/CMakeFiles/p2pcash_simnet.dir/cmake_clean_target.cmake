file(REMOVE_RECURSE
  "libp2pcash_simnet.a"
)
