# Empty compiler generated dependencies file for p2pcash_simnet.
# This may be replaced when dependencies are built.
