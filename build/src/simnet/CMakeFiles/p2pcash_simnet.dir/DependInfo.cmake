
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simnet/models.cpp" "src/simnet/CMakeFiles/p2pcash_simnet.dir/models.cpp.o" "gcc" "src/simnet/CMakeFiles/p2pcash_simnet.dir/models.cpp.o.d"
  "/root/repo/src/simnet/net.cpp" "src/simnet/CMakeFiles/p2pcash_simnet.dir/net.cpp.o" "gcc" "src/simnet/CMakeFiles/p2pcash_simnet.dir/net.cpp.o.d"
  "/root/repo/src/simnet/sim.cpp" "src/simnet/CMakeFiles/p2pcash_simnet.dir/sim.cpp.o" "gcc" "src/simnet/CMakeFiles/p2pcash_simnet.dir/sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bn/CMakeFiles/p2pcash_bn.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/p2pcash_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/p2pcash_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/p2pcash_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
