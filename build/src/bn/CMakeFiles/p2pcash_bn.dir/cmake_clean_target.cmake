file(REMOVE_RECURSE
  "libp2pcash_bn.a"
)
