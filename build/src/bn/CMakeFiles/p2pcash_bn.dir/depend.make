# Empty dependencies file for p2pcash_bn.
# This may be replaced when dependencies are built.
