
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bn/bigint.cpp" "src/bn/CMakeFiles/p2pcash_bn.dir/bigint.cpp.o" "gcc" "src/bn/CMakeFiles/p2pcash_bn.dir/bigint.cpp.o.d"
  "/root/repo/src/bn/montgomery.cpp" "src/bn/CMakeFiles/p2pcash_bn.dir/montgomery.cpp.o" "gcc" "src/bn/CMakeFiles/p2pcash_bn.dir/montgomery.cpp.o.d"
  "/root/repo/src/bn/prime.cpp" "src/bn/CMakeFiles/p2pcash_bn.dir/prime.cpp.o" "gcc" "src/bn/CMakeFiles/p2pcash_bn.dir/prime.cpp.o.d"
  "/root/repo/src/bn/rng.cpp" "src/bn/CMakeFiles/p2pcash_bn.dir/rng.cpp.o" "gcc" "src/bn/CMakeFiles/p2pcash_bn.dir/rng.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
