file(REMOVE_RECURSE
  "CMakeFiles/p2pcash_bn.dir/bigint.cpp.o"
  "CMakeFiles/p2pcash_bn.dir/bigint.cpp.o.d"
  "CMakeFiles/p2pcash_bn.dir/montgomery.cpp.o"
  "CMakeFiles/p2pcash_bn.dir/montgomery.cpp.o.d"
  "CMakeFiles/p2pcash_bn.dir/prime.cpp.o"
  "CMakeFiles/p2pcash_bn.dir/prime.cpp.o.d"
  "CMakeFiles/p2pcash_bn.dir/rng.cpp.o"
  "CMakeFiles/p2pcash_bn.dir/rng.cpp.o.d"
  "libp2pcash_bn.a"
  "libp2pcash_bn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2pcash_bn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
