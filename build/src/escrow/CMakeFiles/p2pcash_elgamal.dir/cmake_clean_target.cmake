file(REMOVE_RECURSE
  "libp2pcash_elgamal.a"
)
