file(REMOVE_RECURSE
  "CMakeFiles/p2pcash_elgamal.dir/elgamal.cpp.o"
  "CMakeFiles/p2pcash_elgamal.dir/elgamal.cpp.o.d"
  "libp2pcash_elgamal.a"
  "libp2pcash_elgamal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2pcash_elgamal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
