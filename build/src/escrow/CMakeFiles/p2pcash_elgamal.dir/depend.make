# Empty dependencies file for p2pcash_elgamal.
# This may be replaced when dependencies are built.
