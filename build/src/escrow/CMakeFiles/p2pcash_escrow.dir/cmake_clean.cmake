file(REMOVE_RECURSE
  "CMakeFiles/p2pcash_escrow.dir/escrow.cpp.o"
  "CMakeFiles/p2pcash_escrow.dir/escrow.cpp.o.d"
  "libp2pcash_escrow.a"
  "libp2pcash_escrow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2pcash_escrow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
