file(REMOVE_RECURSE
  "libp2pcash_escrow.a"
)
