# Empty dependencies file for p2pcash_escrow.
# This may be replaced when dependencies are built.
