# CMake generated Testfile for 
# Source directory: /root/repo/src/escrow
# Build directory: /root/repo/build/src/escrow
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
