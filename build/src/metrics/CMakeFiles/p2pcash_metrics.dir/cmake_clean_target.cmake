file(REMOVE_RECURSE
  "libp2pcash_metrics.a"
)
