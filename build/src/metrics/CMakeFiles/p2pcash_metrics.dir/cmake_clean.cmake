file(REMOVE_RECURSE
  "CMakeFiles/p2pcash_metrics.dir/counters.cpp.o"
  "CMakeFiles/p2pcash_metrics.dir/counters.cpp.o.d"
  "CMakeFiles/p2pcash_metrics.dir/stats.cpp.o"
  "CMakeFiles/p2pcash_metrics.dir/stats.cpp.o.d"
  "libp2pcash_metrics.a"
  "libp2pcash_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2pcash_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
