# Empty dependencies file for p2pcash_metrics.
# This may be replaced when dependencies are built.
