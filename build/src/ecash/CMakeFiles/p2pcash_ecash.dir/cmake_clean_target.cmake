file(REMOVE_RECURSE
  "libp2pcash_ecash.a"
)
