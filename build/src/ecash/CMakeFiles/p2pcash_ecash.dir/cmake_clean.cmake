file(REMOVE_RECURSE
  "CMakeFiles/p2pcash_ecash.dir/arbiter.cpp.o"
  "CMakeFiles/p2pcash_ecash.dir/arbiter.cpp.o.d"
  "CMakeFiles/p2pcash_ecash.dir/broker.cpp.o"
  "CMakeFiles/p2pcash_ecash.dir/broker.cpp.o.d"
  "CMakeFiles/p2pcash_ecash.dir/coin.cpp.o"
  "CMakeFiles/p2pcash_ecash.dir/coin.cpp.o.d"
  "CMakeFiles/p2pcash_ecash.dir/common.cpp.o"
  "CMakeFiles/p2pcash_ecash.dir/common.cpp.o.d"
  "CMakeFiles/p2pcash_ecash.dir/deployment.cpp.o"
  "CMakeFiles/p2pcash_ecash.dir/deployment.cpp.o.d"
  "CMakeFiles/p2pcash_ecash.dir/merchant.cpp.o"
  "CMakeFiles/p2pcash_ecash.dir/merchant.cpp.o.d"
  "CMakeFiles/p2pcash_ecash.dir/transcript.cpp.o"
  "CMakeFiles/p2pcash_ecash.dir/transcript.cpp.o.d"
  "CMakeFiles/p2pcash_ecash.dir/wallet.cpp.o"
  "CMakeFiles/p2pcash_ecash.dir/wallet.cpp.o.d"
  "CMakeFiles/p2pcash_ecash.dir/witness.cpp.o"
  "CMakeFiles/p2pcash_ecash.dir/witness.cpp.o.d"
  "CMakeFiles/p2pcash_ecash.dir/witness_table.cpp.o"
  "CMakeFiles/p2pcash_ecash.dir/witness_table.cpp.o.d"
  "libp2pcash_ecash.a"
  "libp2pcash_ecash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2pcash_ecash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
