# Empty compiler generated dependencies file for p2pcash_ecash.
# This may be replaced when dependencies are built.
