
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ecash/arbiter.cpp" "src/ecash/CMakeFiles/p2pcash_ecash.dir/arbiter.cpp.o" "gcc" "src/ecash/CMakeFiles/p2pcash_ecash.dir/arbiter.cpp.o.d"
  "/root/repo/src/ecash/broker.cpp" "src/ecash/CMakeFiles/p2pcash_ecash.dir/broker.cpp.o" "gcc" "src/ecash/CMakeFiles/p2pcash_ecash.dir/broker.cpp.o.d"
  "/root/repo/src/ecash/coin.cpp" "src/ecash/CMakeFiles/p2pcash_ecash.dir/coin.cpp.o" "gcc" "src/ecash/CMakeFiles/p2pcash_ecash.dir/coin.cpp.o.d"
  "/root/repo/src/ecash/common.cpp" "src/ecash/CMakeFiles/p2pcash_ecash.dir/common.cpp.o" "gcc" "src/ecash/CMakeFiles/p2pcash_ecash.dir/common.cpp.o.d"
  "/root/repo/src/ecash/deployment.cpp" "src/ecash/CMakeFiles/p2pcash_ecash.dir/deployment.cpp.o" "gcc" "src/ecash/CMakeFiles/p2pcash_ecash.dir/deployment.cpp.o.d"
  "/root/repo/src/ecash/merchant.cpp" "src/ecash/CMakeFiles/p2pcash_ecash.dir/merchant.cpp.o" "gcc" "src/ecash/CMakeFiles/p2pcash_ecash.dir/merchant.cpp.o.d"
  "/root/repo/src/ecash/transcript.cpp" "src/ecash/CMakeFiles/p2pcash_ecash.dir/transcript.cpp.o" "gcc" "src/ecash/CMakeFiles/p2pcash_ecash.dir/transcript.cpp.o.d"
  "/root/repo/src/ecash/wallet.cpp" "src/ecash/CMakeFiles/p2pcash_ecash.dir/wallet.cpp.o" "gcc" "src/ecash/CMakeFiles/p2pcash_ecash.dir/wallet.cpp.o.d"
  "/root/repo/src/ecash/witness.cpp" "src/ecash/CMakeFiles/p2pcash_ecash.dir/witness.cpp.o" "gcc" "src/ecash/CMakeFiles/p2pcash_ecash.dir/witness.cpp.o.d"
  "/root/repo/src/ecash/witness_table.cpp" "src/ecash/CMakeFiles/p2pcash_ecash.dir/witness_table.cpp.o" "gcc" "src/ecash/CMakeFiles/p2pcash_ecash.dir/witness_table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/escrow/CMakeFiles/p2pcash_elgamal.dir/DependInfo.cmake"
  "/root/repo/build/src/blindsig/CMakeFiles/p2pcash_blindsig.dir/DependInfo.cmake"
  "/root/repo/build/src/nizk/CMakeFiles/p2pcash_nizk.dir/DependInfo.cmake"
  "/root/repo/build/src/sig/CMakeFiles/p2pcash_sig.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/p2pcash_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/p2pcash_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/group/CMakeFiles/p2pcash_group.dir/DependInfo.cmake"
  "/root/repo/build/src/bn/CMakeFiles/p2pcash_bn.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/p2pcash_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
