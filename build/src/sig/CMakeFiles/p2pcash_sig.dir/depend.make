# Empty dependencies file for p2pcash_sig.
# This may be replaced when dependencies are built.
