file(REMOVE_RECURSE
  "libp2pcash_sig.a"
)
