file(REMOVE_RECURSE
  "CMakeFiles/p2pcash_sig.dir/schnorr_sig.cpp.o"
  "CMakeFiles/p2pcash_sig.dir/schnorr_sig.cpp.o.d"
  "libp2pcash_sig.a"
  "libp2pcash_sig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2pcash_sig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
