file(REMOVE_RECURSE
  "libp2pcash_overlay.a"
)
