# Empty dependencies file for p2pcash_overlay.
# This may be replaced when dependencies are built.
