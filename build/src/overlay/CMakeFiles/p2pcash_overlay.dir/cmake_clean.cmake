file(REMOVE_RECURSE
  "CMakeFiles/p2pcash_overlay.dir/chord.cpp.o"
  "CMakeFiles/p2pcash_overlay.dir/chord.cpp.o.d"
  "libp2pcash_overlay.a"
  "libp2pcash_overlay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2pcash_overlay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
