file(REMOVE_RECURSE
  "libp2pcash_wire.a"
)
