# Empty dependencies file for p2pcash_wire.
# This may be replaced when dependencies are built.
