file(REMOVE_RECURSE
  "CMakeFiles/p2pcash_wire.dir/codec.cpp.o"
  "CMakeFiles/p2pcash_wire.dir/codec.cpp.o.d"
  "CMakeFiles/p2pcash_wire.dir/uri_form.cpp.o"
  "CMakeFiles/p2pcash_wire.dir/uri_form.cpp.o.d"
  "libp2pcash_wire.a"
  "libp2pcash_wire.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2pcash_wire.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
