file(REMOVE_RECURSE
  "CMakeFiles/p2pcash_crypto.dir/chacha.cpp.o"
  "CMakeFiles/p2pcash_crypto.dir/chacha.cpp.o.d"
  "CMakeFiles/p2pcash_crypto.dir/encoding.cpp.o"
  "CMakeFiles/p2pcash_crypto.dir/encoding.cpp.o.d"
  "CMakeFiles/p2pcash_crypto.dir/hmac.cpp.o"
  "CMakeFiles/p2pcash_crypto.dir/hmac.cpp.o.d"
  "CMakeFiles/p2pcash_crypto.dir/sha256.cpp.o"
  "CMakeFiles/p2pcash_crypto.dir/sha256.cpp.o.d"
  "libp2pcash_crypto.a"
  "libp2pcash_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2pcash_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
