# Empty dependencies file for p2pcash_crypto.
# This may be replaced when dependencies are built.
