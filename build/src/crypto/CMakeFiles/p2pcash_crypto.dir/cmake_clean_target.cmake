file(REMOVE_RECURSE
  "libp2pcash_crypto.a"
)
