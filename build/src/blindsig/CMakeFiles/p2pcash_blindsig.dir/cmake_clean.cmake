file(REMOVE_RECURSE
  "CMakeFiles/p2pcash_blindsig.dir/abe_okamoto.cpp.o"
  "CMakeFiles/p2pcash_blindsig.dir/abe_okamoto.cpp.o.d"
  "libp2pcash_blindsig.a"
  "libp2pcash_blindsig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2pcash_blindsig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
