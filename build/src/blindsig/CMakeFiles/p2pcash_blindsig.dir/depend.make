# Empty dependencies file for p2pcash_blindsig.
# This may be replaced when dependencies are built.
