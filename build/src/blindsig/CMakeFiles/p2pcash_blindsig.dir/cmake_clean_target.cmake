file(REMOVE_RECURSE
  "libp2pcash_blindsig.a"
)
