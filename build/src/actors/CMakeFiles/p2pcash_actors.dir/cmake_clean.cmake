file(REMOVE_RECURSE
  "CMakeFiles/p2pcash_actors.dir/actors.cpp.o"
  "CMakeFiles/p2pcash_actors.dir/actors.cpp.o.d"
  "CMakeFiles/p2pcash_actors.dir/world.cpp.o"
  "CMakeFiles/p2pcash_actors.dir/world.cpp.o.d"
  "libp2pcash_actors.a"
  "libp2pcash_actors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2pcash_actors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
