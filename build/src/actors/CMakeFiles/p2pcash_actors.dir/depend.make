# Empty dependencies file for p2pcash_actors.
# This may be replaced when dependencies are built.
