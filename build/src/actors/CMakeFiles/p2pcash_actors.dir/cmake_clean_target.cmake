file(REMOVE_RECURSE
  "libp2pcash_actors.a"
)
