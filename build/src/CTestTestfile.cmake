# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("bn")
subdirs("crypto")
subdirs("metrics")
subdirs("group")
subdirs("sig")
subdirs("blindsig")
subdirs("nizk")
subdirs("wire")
subdirs("ecash")
subdirs("simnet")
subdirs("actors")
subdirs("overlay")
subdirs("baseline")
subdirs("escrow")
