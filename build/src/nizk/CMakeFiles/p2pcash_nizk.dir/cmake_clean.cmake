file(REMOVE_RECURSE
  "CMakeFiles/p2pcash_nizk.dir/representation.cpp.o"
  "CMakeFiles/p2pcash_nizk.dir/representation.cpp.o.d"
  "libp2pcash_nizk.a"
  "libp2pcash_nizk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2pcash_nizk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
