file(REMOVE_RECURSE
  "libp2pcash_nizk.a"
)
