
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nizk/representation.cpp" "src/nizk/CMakeFiles/p2pcash_nizk.dir/representation.cpp.o" "gcc" "src/nizk/CMakeFiles/p2pcash_nizk.dir/representation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/group/CMakeFiles/p2pcash_group.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/p2pcash_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/bn/CMakeFiles/p2pcash_bn.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/p2pcash_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
