# Empty dependencies file for p2pcash_nizk.
# This may be replaced when dependencies are built.
