file(REMOVE_RECURSE
  "CMakeFiles/p2pcash_baseline.dir/dht_registry.cpp.o"
  "CMakeFiles/p2pcash_baseline.dir/dht_registry.cpp.o.d"
  "CMakeFiles/p2pcash_baseline.dir/offline_detection.cpp.o"
  "CMakeFiles/p2pcash_baseline.dir/offline_detection.cpp.o.d"
  "CMakeFiles/p2pcash_baseline.dir/online_clearing.cpp.o"
  "CMakeFiles/p2pcash_baseline.dir/online_clearing.cpp.o.d"
  "libp2pcash_baseline.a"
  "libp2pcash_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2pcash_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
