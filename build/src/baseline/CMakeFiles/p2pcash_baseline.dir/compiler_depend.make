# Empty compiler generated dependencies file for p2pcash_baseline.
# This may be replaced when dependencies are built.
