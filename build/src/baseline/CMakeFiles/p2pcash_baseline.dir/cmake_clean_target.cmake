file(REMOVE_RECURSE
  "libp2pcash_baseline.a"
)
