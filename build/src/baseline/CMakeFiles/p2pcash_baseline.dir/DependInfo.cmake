
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/dht_registry.cpp" "src/baseline/CMakeFiles/p2pcash_baseline.dir/dht_registry.cpp.o" "gcc" "src/baseline/CMakeFiles/p2pcash_baseline.dir/dht_registry.cpp.o.d"
  "/root/repo/src/baseline/offline_detection.cpp" "src/baseline/CMakeFiles/p2pcash_baseline.dir/offline_detection.cpp.o" "gcc" "src/baseline/CMakeFiles/p2pcash_baseline.dir/offline_detection.cpp.o.d"
  "/root/repo/src/baseline/online_clearing.cpp" "src/baseline/CMakeFiles/p2pcash_baseline.dir/online_clearing.cpp.o" "gcc" "src/baseline/CMakeFiles/p2pcash_baseline.dir/online_clearing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/overlay/CMakeFiles/p2pcash_overlay.dir/DependInfo.cmake"
  "/root/repo/build/src/ecash/CMakeFiles/p2pcash_ecash.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/p2pcash_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/escrow/CMakeFiles/p2pcash_elgamal.dir/DependInfo.cmake"
  "/root/repo/build/src/blindsig/CMakeFiles/p2pcash_blindsig.dir/DependInfo.cmake"
  "/root/repo/build/src/nizk/CMakeFiles/p2pcash_nizk.dir/DependInfo.cmake"
  "/root/repo/build/src/sig/CMakeFiles/p2pcash_sig.dir/DependInfo.cmake"
  "/root/repo/build/src/group/CMakeFiles/p2pcash_group.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/p2pcash_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/p2pcash_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/bn/CMakeFiles/p2pcash_bn.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/p2pcash_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
