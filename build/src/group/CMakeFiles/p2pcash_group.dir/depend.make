# Empty dependencies file for p2pcash_group.
# This may be replaced when dependencies are built.
