file(REMOVE_RECURSE
  "CMakeFiles/p2pcash_group.dir/schnorr_group.cpp.o"
  "CMakeFiles/p2pcash_group.dir/schnorr_group.cpp.o.d"
  "libp2pcash_group.a"
  "libp2pcash_group.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2pcash_group.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
