file(REMOVE_RECURSE
  "libp2pcash_group.a"
)
