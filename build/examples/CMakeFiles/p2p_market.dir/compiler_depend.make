# Empty compiler generated dependencies file for p2p_market.
# This may be replaced when dependencies are built.
