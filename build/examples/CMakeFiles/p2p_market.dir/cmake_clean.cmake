file(REMOVE_RECURSE
  "CMakeFiles/p2p_market.dir/p2p_market.cpp.o"
  "CMakeFiles/p2p_market.dir/p2p_market.cpp.o.d"
  "p2p_market"
  "p2p_market.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2p_market.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
