# Empty compiler generated dependencies file for witness_failover.
# This may be replaced when dependencies are built.
