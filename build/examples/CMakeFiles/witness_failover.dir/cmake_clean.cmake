file(REMOVE_RECURSE
  "CMakeFiles/witness_failover.dir/witness_failover.cpp.o"
  "CMakeFiles/witness_failover.dir/witness_failover.cpp.o.d"
  "witness_failover"
  "witness_failover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/witness_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
