file(REMOVE_RECURSE
  "CMakeFiles/vendor_shop.dir/vendor_shop.cpp.o"
  "CMakeFiles/vendor_shop.dir/vendor_shop.cpp.o.d"
  "vendor_shop"
  "vendor_shop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vendor_shop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
