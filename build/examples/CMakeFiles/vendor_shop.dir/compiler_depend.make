# Empty compiler generated dependencies file for vendor_shop.
# This may be replaced when dependencies are built.
