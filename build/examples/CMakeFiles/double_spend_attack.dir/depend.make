# Empty dependencies file for double_spend_attack.
# This may be replaced when dependencies are built.
