file(REMOVE_RECURSE
  "CMakeFiles/double_spend_attack.dir/double_spend_attack.cpp.o"
  "CMakeFiles/double_spend_attack.dir/double_spend_attack.cpp.o.d"
  "double_spend_attack"
  "double_spend_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/double_spend_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
