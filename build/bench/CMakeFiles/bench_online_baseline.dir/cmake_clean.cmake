file(REMOVE_RECURSE
  "CMakeFiles/bench_online_baseline.dir/bench_online_baseline.cpp.o"
  "CMakeFiles/bench_online_baseline.dir/bench_online_baseline.cpp.o.d"
  "bench_online_baseline"
  "bench_online_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_online_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
