# Empty compiler generated dependencies file for bench_online_baseline.
# This may be replaced when dependencies are built.
