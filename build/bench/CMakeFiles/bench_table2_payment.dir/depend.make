# Empty dependencies file for bench_table2_payment.
# This may be replaced when dependencies are built.
