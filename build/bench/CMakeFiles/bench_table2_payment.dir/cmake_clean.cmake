file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_payment.dir/bench_table2_payment.cpp.o"
  "CMakeFiles/bench_table2_payment.dir/bench_table2_payment.cpp.o.d"
  "bench_table2_payment"
  "bench_table2_payment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_payment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
