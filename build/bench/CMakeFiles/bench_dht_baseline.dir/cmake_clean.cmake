file(REMOVE_RECURSE
  "CMakeFiles/bench_dht_baseline.dir/bench_dht_baseline.cpp.o"
  "CMakeFiles/bench_dht_baseline.dir/bench_dht_baseline.cpp.o.d"
  "bench_dht_baseline"
  "bench_dht_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dht_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
