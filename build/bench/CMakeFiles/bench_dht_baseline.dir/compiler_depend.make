# Empty compiler generated dependencies file for bench_dht_baseline.
# This may be replaced when dependencies are built.
