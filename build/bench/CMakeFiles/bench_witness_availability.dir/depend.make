# Empty dependencies file for bench_witness_availability.
# This may be replaced when dependencies are built.
