file(REMOVE_RECURSE
  "CMakeFiles/bench_witness_availability.dir/bench_witness_availability.cpp.o"
  "CMakeFiles/bench_witness_availability.dir/bench_witness_availability.cpp.o.d"
  "bench_witness_availability"
  "bench_witness_availability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_witness_availability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
