# Empty compiler generated dependencies file for bench_offline_baseline.
# This may be replaced when dependencies are built.
