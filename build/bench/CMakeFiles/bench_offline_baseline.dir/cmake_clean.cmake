file(REMOVE_RECURSE
  "CMakeFiles/bench_offline_baseline.dir/bench_offline_baseline.cpp.o"
  "CMakeFiles/bench_offline_baseline.dir/bench_offline_baseline.cpp.o.d"
  "bench_offline_baseline"
  "bench_offline_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_offline_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
