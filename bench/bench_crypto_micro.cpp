// µ — microbenchmarks of the cryptographic substrate at the paper's
// parameter sizes (1024-bit p, 160-bit q), via google-benchmark.
//
// Calibrates the §7 complexity claims: "RSA signature ... 4.8ms using
// OpenSSL (on a P4 3.2 GHz)" and "aggregated computational complexity per
// transaction ... 30 ms or less when implemented in OpenSSL".

// Custom main: `--quick` runs a short manual timing pass only (CI smoke);
// without it the full google-benchmark suite runs too.  Either way the
// manual pass writes a machine-readable baseline (default BENCH_crypto.json,
// override with --json=PATH — schema in EXPERIMENTS.md).

#include <benchmark/benchmark.h>

#include <chrono>
#include <functional>

#include "bench_util.h"
#include "group/schnorr_group.h"
#include "blindsig/abe_okamoto.h"
#include "crypto/chacha.h"
#include "crypto/sha256.h"
#include "ecash/coin.h"
#include "ecash/deployment.h"
#include "nizk/representation.h"
#include "sig/schnorr_sig.h"

using namespace p2pcash;

namespace {

const group::SchnorrGroup& grp1024() {
  return group::SchnorrGroup::production_1024();
}

void BM_Sha256_1KiB(benchmark::State& state) {
  std::vector<std::uint8_t> data(1024, 0xa5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha256::hash(data));
  }
}
BENCHMARK(BM_Sha256_1KiB);

void BM_ModExp_1024p_160e(benchmark::State& state) {
  // Fixed-base path: g is a generator, served from its precomputed table.
  crypto::ChaChaRng rng("bm-exp");
  const auto& g = grp1024();
  auto e = g.random_scalar(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.exp_g(e));
  }
}
BENCHMARK(BM_ModExp_1024p_160e);

void BM_ModExp_1024p_160e_PlainLadder(benchmark::State& state) {
  // The pre-fast-path cost: same exponentiation, tables disabled.
  crypto::ChaChaRng rng("bm-exp");
  const auto& g = grp1024();
  auto e = g.random_scalar(rng);
  group::ScopedDisableFastExp off;
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.exp_g(e));
  }
}
BENCHMARK(BM_ModExp_1024p_160e_PlainLadder);

void BM_Exp2_FixedBases_1024p(benchmark::State& state) {
  // g1^a * g2^b with both bases precomputed (NIZK verifier shape).
  crypto::ChaChaRng rng("bm-exp2");
  const auto& g = grp1024();
  auto a = g.random_scalar(rng);
  auto b = g.random_scalar(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.exp2(g.g1(), a, g.g2(), b));
  }
}
BENCHMARK(BM_Exp2_FixedBases_1024p);

void BM_Exp2_StrausLoose_1024p(benchmark::State& state) {
  // u^a * v^b with one-shot bases, straight at the Montgomery layer so the
  // group's recurring-base cache cannot promote them mid-benchmark:
  // pure Straus interleaving, shared squarings.
  crypto::ChaChaRng rng("bm-straus");
  const auto& g = grp1024();
  bn::MontgomeryCtx ctx(g.p());
  std::vector<bn::BigInt> exps = {g.random_scalar(rng), g.random_scalar(rng)};
  std::vector<bn::BigInt> bases = {
      bn::random_below(rng, g.p() - bn::BigInt{1}) + bn::BigInt{1},
      bn::random_below(rng, g.p() - bn::BigInt{1}) + bn::BigInt{1}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.multi_exp(bases, exps));
  }
}
BENCHMARK(BM_Exp2_StrausLoose_1024p);

void BM_ModExp_512p_160e(benchmark::State& state) {
  crypto::ChaChaRng rng("bm-exp512");
  const auto& g = group::SchnorrGroup::test_512();
  auto e = g.random_scalar(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.exp_g(e));
  }
}
BENCHMARK(BM_ModExp_512p_160e);

void BM_SchnorrSign(benchmark::State& state) {
  crypto::ChaChaRng rng("bm-sign");
  auto key = sig::KeyPair::generate(grp1024(), rng);
  std::vector<std::uint8_t> msg(256, 0x42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(key.sign(msg, rng));
  }
}
BENCHMARK(BM_SchnorrSign);

void BM_SchnorrVerify(benchmark::State& state) {
  crypto::ChaChaRng rng("bm-verify");
  auto key = sig::KeyPair::generate(grp1024(), rng);
  std::vector<std::uint8_t> msg(256, 0x42);
  auto signature = key.sign(msg, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sig::verify(grp1024(), key.public_key(), msg, signature));
  }
}
BENCHMARK(BM_SchnorrVerify);

void BM_BlindSig_FullIssue(benchmark::State& state) {
  crypto::ChaChaRng rng("bm-blind");
  const auto& g = grp1024();
  blindsig::BlindSigner signer(g, g.random_scalar(rng));
  std::vector<std::uint8_t> info = {1, 2, 3};
  std::vector<std::uint8_t> msg = {4, 5, 6};
  for (auto _ : state) {
    blindsig::BlindRequester requester(g, signer.public_y(), info, msg);
    auto session = signer.start(info, rng);
    auto e = requester.challenge(session.first, rng);
    auto response = signer.respond(session, e);
    benchmark::DoNotOptimize(requester.unblind(response));
  }
}
BENCHMARK(BM_BlindSig_FullIssue);

void BM_CoinVerify(benchmark::State& state) {
  // The merchant's hot path: full public coin verification.
  const auto& g = grp1024();
  ecash::Deployment dep(g, 4, /*seed=*/5);
  auto wallet = dep.make_wallet();
  auto coin = dep.withdraw(*wallet, 100, 1000).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ecash::verify_coin(g, dep.broker().coin_key(), coin.coin, 2000));
  }
}
BENCHMARK(BM_CoinVerify);

void BM_NizkRespond(benchmark::State& state) {
  crypto::ChaChaRng rng("bm-nizk");
  const auto& g = grp1024();
  auto secret = nizk::CoinSecret::random(g, rng);
  auto d = g.random_scalar(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nizk::respond(g, secret, d));
  }
}
BENCHMARK(BM_NizkRespond);

void BM_NizkVerify(benchmark::State& state) {
  crypto::ChaChaRng rng("bm-nizkv");
  const auto& g = grp1024();
  auto secret = nizk::CoinSecret::random(g, rng);
  auto comm = nizk::commit(g, secret);
  auto d = g.random_scalar(rng);
  auto resp = nizk::respond(g, secret, d);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nizk::verify_response(g, comm, d, resp));
  }
}
BENCHMARK(BM_NizkVerify);

void BM_DoubleSpendExtract(benchmark::State& state) {
  crypto::ChaChaRng rng("bm-extract");
  const auto& g = grp1024();
  auto secret = nizk::CoinSecret::random(g, rng);
  auto d1 = g.random_scalar(rng);
  auto d2 = g.random_scalar(rng);
  nizk::ChallengeResponse cr1{d1, nizk::respond(g, secret, d1)};
  nizk::ChallengeResponse cr2{d2, nizk::respond(g, secret, d2)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(nizk::extract(g, cr1, cr2));
  }
}
BENCHMARK(BM_DoubleSpendExtract);

// --- manual timing pass for the JSON baseline ---------------------------

double time_op_us(int iters, const std::function<void()>& op) {
  op();  // warm-up: builds lazy tables, touches caches
  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) op();
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(t1 - t0).count() / iters;
}

void write_baseline(const std::string& path, bool quick) {
  const int iters = quick ? 20 : 200;
  const auto& g = grp1024();
  crypto::ChaChaRng rng("bench-crypto-json");
  auto e1 = g.random_scalar(rng);
  auto e2 = g.random_scalar(rng);

  double exp_fixed_us =
      time_op_us(iters, [&] { benchmark::DoNotOptimize(g.exp_g(e1)); });
  double exp_plain_us = time_op_us(iters, [&] {
    group::ScopedDisableFastExp off;
    benchmark::DoNotOptimize(g.exp_g(e1));
  });
  double exp2_fixed_us = time_op_us(iters, [&] {
    benchmark::DoNotOptimize(g.exp2(g.g1(), e1, g.g2(), e2));
  });
  double exp2_plain_us = time_op_us(iters, [&] {
    group::ScopedDisableFastExp off;
    benchmark::DoNotOptimize(g.exp2(g.g1(), e1, g.g2(), e2));
  });

  auto key = sig::KeyPair::generate(g, rng);
  std::vector<std::uint8_t> msg(256, 0x42);
  auto signature = key.sign(msg, rng);
  double sig_verify_fast_us = time_op_us(iters / 2 + 1, [&] {
    benchmark::DoNotOptimize(sig::verify(g, key.public_key(), msg, signature));
  });
  double sig_verify_plain_us = time_op_us(iters / 2 + 1, [&] {
    group::ScopedDisableFastExp off;
    benchmark::DoNotOptimize(sig::verify(g, key.public_key(), msg, signature));
  });

  auto secret = nizk::CoinSecret::random(g, rng);
  auto comm = nizk::commit(g, secret);
  auto d = g.random_scalar(rng);
  auto resp = nizk::respond(g, secret, d);
  double nizk_verify_fast_us = time_op_us(iters / 2 + 1, [&] {
    benchmark::DoNotOptimize(nizk::verify_response(g, comm, d, resp));
  });
  double nizk_verify_plain_us = time_op_us(iters / 2 + 1, [&] {
    group::ScopedDisableFastExp off;
    benchmark::DoNotOptimize(nizk::verify_response(g, comm, d, resp));
  });

  std::printf("\nmanual baseline pass (%d iters, production_1024):\n", iters);
  std::printf("  exp g^e        fast %8.1f us   plain %8.1f us   %.2fx\n",
              exp_fixed_us, exp_plain_us, exp_plain_us / exp_fixed_us);
  std::printf("  exp2 g1,g2     fast %8.1f us   plain %8.1f us   %.2fx\n",
              exp2_fixed_us, exp2_plain_us, exp2_plain_us / exp2_fixed_us);
  std::printf("  sig verify     fast %8.1f us   plain %8.1f us   %.2fx\n",
              sig_verify_fast_us, sig_verify_plain_us,
              sig_verify_plain_us / sig_verify_fast_us);
  std::printf("  nizk verify    fast %8.1f us   plain %8.1f us   %.2fx\n",
              nizk_verify_fast_us, nizk_verify_plain_us,
              nizk_verify_plain_us / nizk_verify_fast_us);

  bench::JsonWriter json;
  json.field("bench", std::string("crypto"))
      .field("schema_version", 1)
      .field("group", std::string("production_1024"))
      .field("quick", std::string(quick ? "true" : "false"))
      .field("iterations", iters);
  auto pair = [&json](const std::string& name, double fast, double plain) {
    json.begin_object(name)
        .field("fast_us", fast)
        .field("plain_us", plain)
        .field("speedup", plain / fast)
        .end_object();
  };
  pair("exp_fixed_base", exp_fixed_us, exp_plain_us);
  pair("exp2_fixed_bases", exp2_fixed_us, exp2_plain_us);
  pair("schnorr_verify", sig_verify_fast_us, sig_verify_plain_us);
  pair("nizk_verify", nizk_verify_fast_us, nizk_verify_plain_us);
  json.field("fixed_base_table_bytes",
             static_cast<std::uint64_t>(g.fixed_base_memory_bytes()));
  json.write_file(path);
}

}  // namespace

int main(int argc, char** argv) {
  auto args = bench::BenchArgs::parse(argc - 1, argv + 1, "BENCH_crypto.json");
  write_baseline(args.json_path, args.quick);
  if (args.quick) return 0;  // CI smoke: skip the full google-benchmark run
  std::vector<char*> gb_argv;
  gb_argv.push_back(argv[0]);
  for (char* a : args.passthrough) gb_argv.push_back(a);
  int gb_argc = static_cast<int>(gb_argv.size());
  benchmark::Initialize(&gb_argc, gb_argv.data());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
