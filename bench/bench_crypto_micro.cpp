// µ — microbenchmarks of the cryptographic substrate at the paper's
// parameter sizes (1024-bit p, 160-bit q), via google-benchmark.
//
// Calibrates the §7 complexity claims: "RSA signature ... 4.8ms using
// OpenSSL (on a P4 3.2 GHz)" and "aggregated computational complexity per
// transaction ... 30 ms or less when implemented in OpenSSL".

#include <benchmark/benchmark.h>

#include "blindsig/abe_okamoto.h"
#include "crypto/chacha.h"
#include "crypto/sha256.h"
#include "ecash/coin.h"
#include "ecash/deployment.h"
#include "nizk/representation.h"
#include "sig/schnorr_sig.h"

using namespace p2pcash;

namespace {

const group::SchnorrGroup& grp1024() {
  return group::SchnorrGroup::production_1024();
}

void BM_Sha256_1KiB(benchmark::State& state) {
  std::vector<std::uint8_t> data(1024, 0xa5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha256::hash(data));
  }
}
BENCHMARK(BM_Sha256_1KiB);

void BM_ModExp_1024p_160e(benchmark::State& state) {
  crypto::ChaChaRng rng("bm-exp");
  const auto& g = grp1024();
  auto e = g.random_scalar(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.exp_g(e));
  }
}
BENCHMARK(BM_ModExp_1024p_160e);

void BM_ModExp_512p_160e(benchmark::State& state) {
  crypto::ChaChaRng rng("bm-exp512");
  const auto& g = group::SchnorrGroup::test_512();
  auto e = g.random_scalar(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.exp_g(e));
  }
}
BENCHMARK(BM_ModExp_512p_160e);

void BM_SchnorrSign(benchmark::State& state) {
  crypto::ChaChaRng rng("bm-sign");
  auto key = sig::KeyPair::generate(grp1024(), rng);
  std::vector<std::uint8_t> msg(256, 0x42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(key.sign(msg, rng));
  }
}
BENCHMARK(BM_SchnorrSign);

void BM_SchnorrVerify(benchmark::State& state) {
  crypto::ChaChaRng rng("bm-verify");
  auto key = sig::KeyPair::generate(grp1024(), rng);
  std::vector<std::uint8_t> msg(256, 0x42);
  auto signature = key.sign(msg, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sig::verify(grp1024(), key.public_key(), msg, signature));
  }
}
BENCHMARK(BM_SchnorrVerify);

void BM_BlindSig_FullIssue(benchmark::State& state) {
  crypto::ChaChaRng rng("bm-blind");
  const auto& g = grp1024();
  blindsig::BlindSigner signer(g, g.random_scalar(rng));
  std::vector<std::uint8_t> info = {1, 2, 3};
  std::vector<std::uint8_t> msg = {4, 5, 6};
  for (auto _ : state) {
    blindsig::BlindRequester requester(g, signer.public_y(), info, msg);
    auto session = signer.start(info, rng);
    auto e = requester.challenge(session.first, rng);
    auto response = signer.respond(session, e);
    benchmark::DoNotOptimize(requester.unblind(response));
  }
}
BENCHMARK(BM_BlindSig_FullIssue);

void BM_CoinVerify(benchmark::State& state) {
  // The merchant's hot path: full public coin verification.
  const auto& g = grp1024();
  ecash::Deployment dep(g, 4, /*seed=*/5);
  auto wallet = dep.make_wallet();
  auto coin = dep.withdraw(*wallet, 100, 1000).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ecash::verify_coin(g, dep.broker().coin_key(), coin.coin, 2000));
  }
}
BENCHMARK(BM_CoinVerify);

void BM_NizkRespond(benchmark::State& state) {
  crypto::ChaChaRng rng("bm-nizk");
  const auto& g = grp1024();
  auto secret = nizk::CoinSecret::random(g, rng);
  auto d = g.random_scalar(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nizk::respond(g, secret, d));
  }
}
BENCHMARK(BM_NizkRespond);

void BM_NizkVerify(benchmark::State& state) {
  crypto::ChaChaRng rng("bm-nizkv");
  const auto& g = grp1024();
  auto secret = nizk::CoinSecret::random(g, rng);
  auto comm = nizk::commit(g, secret);
  auto d = g.random_scalar(rng);
  auto resp = nizk::respond(g, secret, d);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nizk::verify_response(g, comm, d, resp));
  }
}
BENCHMARK(BM_NizkVerify);

void BM_DoubleSpendExtract(benchmark::State& state) {
  crypto::ChaChaRng rng("bm-extract");
  const auto& g = grp1024();
  auto secret = nizk::CoinSecret::random(g, rng);
  auto d1 = g.random_scalar(rng);
  auto d2 = g.random_scalar(rng);
  nizk::ChallengeResponse cr1{d1, nizk::respond(g, secret, d1)};
  nizk::ChallengeResponse cr2{d2, nizk::respond(g, secret, d2)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(nizk::extract(g, cr1, cr2));
  }
}
BENCHMARK(BM_DoubleSpendExtract);

}  // namespace

BENCHMARK_MAIN();
