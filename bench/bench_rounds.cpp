// R — protocol round counts (§7 complexity analysis): "withdrawal and
// renewal ... two rounds of message exchange", "payment requires 3 rounds
// (2 for payment, and 1 for commitment)", "deposit ... one message".
//
// Measured by counting actual messages on the simulated network.

#include <cstdio>

#include "actors/world.h"
#include "bench_util.h"

using namespace p2pcash;
using namespace p2pcash::actors;

int main() {
  const auto& grp = group::SchnorrGroup::test_512();
  SimWorld::Options opt;
  opt.merchants = 6;
  opt.seed = 9;
  opt.cost = simnet::free_cost();
  SimWorld world(grp, opt);
  auto& client = world.add_client();
  const auto client_node = static_cast<simnet::NodeId>(1 + opt.merchants);

  bench::header("R", "message rounds per protocol (measured on the wire)");

  auto total_messages = [&](auto&& op) {
    std::uint64_t before = 0, after = 0;
    for (simnet::NodeId n = 0; n <= client_node; ++n)
      before += world.net().messages_sent(n);
    op();
    world.sim().run();
    for (simnet::NodeId n = 0; n <= client_node; ++n)
      after += world.net().messages_sent(n);
    return after - before;
  };

  std::optional<ecash::WalletCoin> coin;
  auto withdrawal_msgs = total_messages([&] {
    client.withdraw(100, [&](ecash::Outcome<ecash::WalletCoin> c) {
      if (c) coin = std::move(c).value();
    });
  });
  std::printf("  withdrawal : %2llu messages = %llu round trips (paper: 2 rounds)\n",
              static_cast<unsigned long long>(withdrawal_msgs),
              static_cast<unsigned long long>(withdrawal_msgs) / 2);

  ecash::MerchantId target;
  for (const auto& id : world.merchant_ids()) {
    if (coin && id != coin->coin.witnesses[0].merchant) {
      target = id;
      break;
    }
  }
  auto payment_msgs = total_messages([&] {
    client.pay(*coin, target, [](ClientActor::PayResult) {});
  });
  std::printf("  payment    : %2llu messages = %llu round trips (paper: 3 rounds:"
              " 1 commit + 2 payment)\n",
              static_cast<unsigned long long>(payment_msgs),
              static_cast<unsigned long long>(payment_msgs) / 2);

  auto deposit_msgs = total_messages([&] {
    auto queue = world.merchant(target).drain_deposit_queue();
    wire::Writer w;
    queue.front().encode(w);
    world.net().send(simnet::Message{world.merchant_node(target),
                                     world.directory().broker,
                                     "deposit.submit", w.take(), {}});
  });
  std::printf("  deposit    : %2llu message(s) one-way + receipt (paper: "
              "one-sided, 1 message)\n",
              static_cast<unsigned long long>(deposit_msgs) - 1);
  bench::note("");
  bench::note("note: our broker acks deposits with a receipt; the paper's");
  bench::note("deposit is fire-and-forget. The merchant-side cost is 1 send.");
  return 0;
}
