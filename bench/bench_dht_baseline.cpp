// A2 — hard vs probabilistic guarantees: the witness scheme against the
// DHT spent-coin database (WhoPay / Hoepman, paper §2).
//
// For each fraction f of compromised peers, an attacker double-spends 1000
// coins.  The DHT baseline accepts a double-spend whenever every replica
// that should remember the coin is compromised (and optionally when a
// malicious hop derails the lookup).  The witness scheme's acceptance
// count is measured with the real protocol — and is structurally zero:
// cheating witnesses don't let the attacker win, they shift liability to
// the witness's security deposit (the merchant is still paid).

#include <cstdio>

#include "baseline/dht_registry.h"
#include "bench_util.h"
#include "crypto/chacha.h"
#include "ecash/deployment.h"

using namespace p2pcash;

namespace {

int dht_accepted(double fraction, std::size_t replicas, bool misroute,
                 int coins) {
  crypto::ChaChaRng rng("a2-dht-" + std::to_string(fraction) +
                        std::to_string(replicas) + std::to_string(misroute));
  baseline::DhtSpentRegistry dht({.nodes = 128,
                                  .replicas = replicas,
                                  .malicious_fraction = fraction,
                                  .malicious_misroute = misroute},
                                 rng);
  int accepted = 0;
  for (int i = 0; i < coins; ++i) {
    auto coin = bn::random_bits(rng, overlay::kIdBits);
    (void)dht.check_and_record(coin);                       // first spend
    if (!dht.check_and_record(coin).seen_before) ++accepted;  // double spend
  }
  return accepted;
}

/// Real witness-scheme run: `coins` double-spend attempts with fraction f
/// of merchants running *faulty* witnesses that sign everything.
struct WitnessResult {
  int services_stolen = 0;   // double services obtained AND unpaid-for
  int merchant_losses = 0;   // merchants left uncompensated
};
WitnessResult witness_accepted(double fraction, int coins) {
  const auto& grp = group::SchnorrGroup::test_256();
  ecash::Deployment dep(grp, 16, /*seed=*/31337);
  auto wallet = dep.make_wallet();
  crypto::ChaChaRng rng("a2-wit-" + std::to_string(fraction));
  auto ids = dep.merchant_ids();
  // Compromise a fraction of witnesses.
  for (const auto& id : ids) {
    double u = static_cast<double>(rng.next_u64() >> 11) * 0x1.0p-53;
    if (u < fraction) dep.node(id).witness->set_faulty(true);
  }
  WitnessResult result;
  for (int i = 0; i < coins; ++i) {
    auto coin = dep.withdraw(*wallet, 100, 1000 + i);
    if (!coin) continue;
    auto first = dep.pay(*wallet, coin.value(), ids[i % ids.size()], 2000 + i);
    auto second =
        dep.pay(*wallet, coin.value(), ids[(i + 7) % ids.size()], 2100 + i);
    if (first.accepted && second.accepted) ++result.services_stolen;
  }
  // Deposit everything; count merchants left unpaid.
  for (const auto& id : ids) (void)dep.deposit_all(id, 50'000);
  // Every accepted payment should have been credited (possibly from the
  // witness deposit).  Count shortfalls.
  std::int64_t credited = 0;
  for (const auto& id : ids) credited += dep.broker().account(id)->balance;
  std::int64_t owed = 0;
  for (const auto& id : ids)
    owed += 100 * static_cast<std::int64_t>(
                      dep.node(id).merchant->services_delivered());
  result.merchant_losses = static_cast<int>((owed - credited) / 100);
  return result;
}

}  // namespace

int main() {
  const int kCoins = 1000;
  bench::header("A2", "double-spends accepted per 1000 attempts vs fraction "
                      "of compromised peers");
  std::printf("  %-10s | %-12s | %-12s | %-14s | %-20s\n", "f malicious",
              "DHT r=1", "DHT r=3", "DHT r=3+route", "witness scheme");
  std::printf("  -----------|--------------|--------------|----------------|---------------------\n");
  for (double f : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5}) {
    int d1 = dht_accepted(f, 1, false, kCoins);
    int d3 = dht_accepted(f, 3, false, kCoins);
    int d3r = dht_accepted(f, 3, true, kCoins);
    auto wit = witness_accepted(f, 100);  // real crypto: fewer, scaled
    std::printf("  %9.2f  | %12d | %12d | %14d | %3d services stolen,"
                " %d merchants unpaid\n",
                f, d1, d3, d3r, wit.services_stolen, wit.merchant_losses);
  }
  bench::note("");
  bench::note("(witness column runs the full protocol on 100 coins/point)");
  bench::note("shape matches §2's argument: the DHT database degrades as");
  bench::note("~f^r (worse with routing attacks), while the witness scheme");
  bench::note("lets services be double-obtained only through witnesses who");
  bench::note("then pay for them — merchants never lose, so the guarantee");
  bench::note("is economic-hard, not probabilistic.");
  return 0;
}
