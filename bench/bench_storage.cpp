// S — durable coin-state store: append/commit throughput on the in-memory
// and POSIX backends, group-commit fsync batching under concurrent
// committers, crash-recovery scan rate, and the mmap table-file lookup
// against the decoded WitnessTable (schema in EXPERIMENTS.md; baseline
// BENCH_storage.json, override with --json=PATH, --quick for CI smoke).

#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "crypto/chacha.h"
#include "ecash/deployment.h"
#include "ecash/witness_table.h"
#include "store/log_store.h"
#include "store/table_file.h"
#include "store/vfs.h"

using namespace p2pcash;
using namespace p2pcash::store;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct AppendResult {
  std::uint64_t records = 0;
  std::uint64_t bytes = 0;
  std::uint64_t fsyncs = 0;
  double seconds = 0;
  double records_per_s() const {
    return seconds > 0 ? static_cast<double>(records) / seconds : 0;
  }
  double mb_per_s() const {
    return seconds > 0
               ? static_cast<double>(bytes) / seconds / (1024.0 * 1024.0)
               : 0;
  }
};

/// Appends `n` deltas of `delta_bytes` each, committing every
/// `batch` appends — the synchronous-WAL workload the broker and witness
/// services drive through Store::append/commit.
AppendResult run_append(Vfs& vfs, const std::string& name, int n,
                        std::size_t delta_bytes, int batch) {
  LogStore log(vfs, name);
  std::vector<std::uint8_t> delta(delta_bytes, 0x5a);
  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < n; ++i) {
    delta[0] = static_cast<std::uint8_t>(i);
    log.append(delta);
    if ((i + 1) % batch == 0) log.commit();
  }
  log.commit();
  AppendResult r;
  r.seconds = seconds_since(t0);
  r.records = log.stats().appended_records;
  r.bytes = log.stats().appended_bytes;
  r.fsyncs = log.stats().fsyncs;
  return r;
}

void print_append(const std::string& tag, int batch, const AppendResult& r) {
  std::printf("  %-14s | batch %3d | %8.0f rec/s | %7.1f MB/s | %6llu fsyncs\n",
              tag.c_str(), batch, r.records_per_s(), r.mb_per_s(),
              static_cast<unsigned long long>(r.fsyncs));
}

void json_append(bench::JsonWriter& json, const std::string& key,
                 const AppendResult& r) {
  json.begin_object(key)
      .field("records", r.records)
      .field("bytes", r.bytes)
      .field("fsyncs", r.fsyncs)
      .field("seconds", r.seconds)
      .field("records_per_s", r.records_per_s())
      .field("mb_per_s", r.mb_per_s())
      .end_object();
}

}  // namespace

int main(int argc, char** argv) {
  auto args = bench::BenchArgs::parse(argc, argv, "BENCH_storage.json");
  const int n = args.quick ? 2'000 : 50'000;
  const std::size_t delta_bytes = 128;

  bench::header("S", "durable coin-state store: log, recovery, table file");
  bench::JsonWriter json;
  json.field("bench", std::string("storage"))
      .field("schema_version", 1)
      .field("quick", args.quick ? 1 : 0)
      .field("delta_bytes", std::uint64_t{delta_bytes})
      .field("records", std::uint64_t(n));

  // -- 1. Append/commit throughput, MemVfs vs PosixVfs ----------------------
  std::printf("  append+commit throughput (%d x %zu-byte deltas)\n", n,
              delta_bytes);
  json.begin_object("append");
  {
    MemVfs mem;
    for (int batch : {1, 8, 64}) {
      auto r = run_append(mem, "bench-" + std::to_string(batch) + ".log", n,
                          delta_bytes, batch);
      print_append("MemVfs", batch, r);
      json_append(json, "mem_batch_" + std::to_string(batch), r);
    }
  }
  {
    PosixVfs posix("/tmp/p2pcash_bench_storage");
    for (int batch : {1, 8, 64}) {
      const std::string name = "bench-" + std::to_string(batch) + ".log";
      if (posix.exists(name)) posix.remove(name);
      auto r = run_append(posix, name, n, delta_bytes, batch);
      print_append("PosixVfs", batch, r);
      json_append(json, "posix_batch_" + std::to_string(batch), r);
      posix.remove(name);
    }
  }
  json.end_object();

  // -- 2. Group commit under concurrent committers ---------------------------
  // Each thread appends then commits, like independent service calls; the
  // store's group-commit window lets one fsync acknowledge many commits.
  {
    MemVfs mem;
    LogStore log(mem, "group.log");
    const int threads = 8;
    const int per_thread = args.quick ? 200 : 2'000;
    auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t)
      pool.emplace_back([&, t] {
        std::vector<std::uint8_t> delta(delta_bytes,
                                        static_cast<std::uint8_t>(t));
        for (int i = 0; i < per_thread; ++i) {
          log.append(delta);
          log.commit();
        }
      });
    for (auto& th : pool) th.join();
    const double secs = seconds_since(t0);
    const auto stats = log.stats();
    const double batching =
        stats.fsyncs > 0 ? double(stats.commits) / double(stats.fsyncs) : 0;
    std::printf("  group commit: %d threads x %d commits -> %llu fsyncs "
                "(%.1f commits/fsync)\n",
                threads, per_thread,
                static_cast<unsigned long long>(stats.fsyncs), batching);
    json.begin_object("group_commit")
        .field("threads", threads)
        .field("commits", stats.commits)
        .field("fsyncs", stats.fsyncs)
        .field("commits_per_fsync", batching)
        .field("seconds", secs)
        .end_object();
  }

  // -- 3. Crash-recovery scan rate ------------------------------------------
  // Reopen a log of n deltas: CRC-check, frame and replay every record.
  {
    MemVfs mem;
    std::uint64_t log_bytes = 0;
    {
      LogStore writer(mem, "recover.log");
      writer.checkpoint(std::vector<std::uint8_t>(1024, 0x11));
      std::vector<std::uint8_t> delta(delta_bytes, 0x22);
      for (int i = 0; i < n; ++i) writer.append(delta);
      writer.commit();
      log_bytes = writer.size_bytes();
    }
    auto t0 = std::chrono::steady_clock::now();
    LogStore reopened(mem, "recover.log");
    auto recovered = reopened.recover();
    const double secs = seconds_since(t0);
    const double rec_per_s = secs > 0 ? n / secs : 0;
    const double mb_per_s =
        secs > 0 ? static_cast<double>(log_bytes) / secs / (1024.0 * 1024.0)
                 : 0;
    std::printf("  recovery: %zu deltas (%llu bytes) in %.3f s "
                "-> %8.0f rec/s, %7.1f MB/s\n",
                recovered.deltas.size(),
                static_cast<unsigned long long>(log_bytes), secs, rec_per_s,
                mb_per_s);
    json.begin_object("recovery")
        .field("records", std::uint64_t(recovered.deltas.size()))
        .field("bytes", log_bytes)
        .field("seconds", secs)
        .field("records_per_s", rec_per_s)
        .field("mb_per_s", mb_per_s)
        .end_object();
  }

  // -- 4. Table-file lookup vs decoded WitnessTable --------------------------
  // The reader path PR 9 adds: one O(log n) predecessor search on the mmap
  // image, decoding a single entry, against the fully-decoded std::vector
  // table both share semantics with (golden test in store_test.cpp).
  {
    const auto& grp = group::SchnorrGroup::test_256();
    ecash::Deployment dep(grp, 8, /*seed=*/77);
    const auto bytes = dep.broker().export_table_file(1);
    TableFileView view(bytes);
    const auto& table = dep.broker().current_table();

    const int lookups = args.quick ? 2'000 : 50'000;
    crypto::ChaChaRng rng("bench-storage-points");
    std::vector<bn::BigInt> points;
    points.reserve(static_cast<std::size_t>(lookups));
    for (int i = 0; i < lookups; ++i) {
      std::vector<std::uint8_t> raw(ecash::kRangeBits / 8);
      rng.fill(raw);
      points.push_back(bn::BigInt::from_bytes_be(raw));
    }

    auto t0 = std::chrono::steady_clock::now();
    std::size_t hits_file = 0;
    for (const auto& p : points)
      hits_file += ecash::WitnessTable::lookup_table_file(view, p).has_value();
    const double file_ns = seconds_since(t0) * 1e9 / lookups;

    t0 = std::chrono::steady_clock::now();
    std::size_t hits_table = 0;
    for (const auto& p : points) hits_table += table.lookup(p).has_value();
    const double table_ns = seconds_since(t0) * 1e9 / lookups;

    if (hits_file != hits_table) {
      std::fprintf(stderr, "bench: lookup disagreement (%zu vs %zu)\n",
                   hits_file, hits_table);
      return 1;
    }
    std::printf("  table lookup: %zu entries, %d points -> "
                "%7.0f ns (file) vs %7.0f ns (decoded)\n",
                static_cast<std::size_t>(view.entry_count()), lookups,
                file_ns, table_ns);
    json.begin_object("table_lookup")
        .field("entries", std::uint64_t(view.entry_count()))
        .field("points", std::uint64_t(lookups))
        .field("ns_per_lookup_file", file_ns)
        .field("ns_per_lookup_decoded", table_ns)
        .end_object();
  }

  json.write_file(args.json_path);
  return 0;
}
