// A1 — ablation: witness availability.
//
// The design discussion in §4 proposes k-of-n witness assignment ("use,
// say, three witnesses per coin and require any two of them to sign") to
// tolerate unavailable witnesses.  This bench sweeps the probability that
// any given merchant machine is offline and reports the payment success
// rate under 1-of-1 vs 2-of-3 witness policies, plus the coin-renewal
// fallback that rescues coins whose witnesses stayed dark.

#include <cstdio>

#include "bench_util.h"
#include "crypto/chacha.h"
#include "ecash/deployment.h"

using namespace p2pcash;
using namespace p2pcash::ecash;

namespace {

struct Point {
  double offline_prob;
  int attempts = 0;
  int successes = 0;
};

Point run(double offline_prob, std::uint8_t n, std::uint8_t k,
          int coins) {
  const auto& grp = group::SchnorrGroup::test_256();
  Broker::Config config;
  config.witness_n = n;
  config.witness_k = k;
  Deployment dep(grp, 24, /*seed=*/111 + static_cast<std::uint64_t>(
                                             offline_prob * 1000),
                 config);
  auto wallet = dep.make_wallet();
  crypto::ChaChaRng fault_rng("faults-" + std::to_string(offline_prob) +
                              std::to_string(n));
  Point point{offline_prob};

  auto ids = dep.merchant_ids();
  for (int i = 0; i < coins; ++i) {
    auto coin = dep.withdraw(*wallet, 100, 1000 + i);
    if (!coin) continue;
    // Sample tonight's outages.
    for (const auto& id : ids) {
      double u = static_cast<double>(fault_rng.next_u64() >> 11) * 0x1.0p-53;
      dep.set_offline(id, u < offline_prob);
    }
    // Pay at the first online merchant that is not a witness.
    MerchantId target;
    for (const auto& id : ids) {
      bool witness = false;
      for (const auto& w : coin.value().coin.witnesses)
        if (w.merchant == id) witness = true;
      if (!witness && !dep.is_offline(id)) {
        target = id;
        break;
      }
    }
    if (target.empty()) continue;  // everything is down; not a witness issue
    ++point.attempts;
    if (dep.pay(*wallet, coin.value(), target, 2000 + i).accepted)
      ++point.successes;
  }
  return point;
}

}  // namespace

int main() {
  bench::header("A1", "payment success vs witness availability: 1-of-1 vs "
                      "2-of-3 witnesses (24 merchants, 60 coins/point)");
  std::printf("  %-18s | %-22s | %-22s\n", "P(machine offline)",
              "1-of-1 success rate", "2-of-3 success rate");
  std::printf("  -------------------|------------------------|-----------------------\n");
  for (double p : {0.0, 0.05, 0.1, 0.2, 0.3, 0.5}) {
    auto single = run(p, 1, 1, 60);
    auto multi = run(p, 3, 2, 60);
    std::printf("  %17.2f  | %6.1f%%  (%3d/%3d)     | %6.1f%%  (%3d/%3d)\n", p,
                100.0 * single.successes / std::max(1, single.attempts),
                single.successes, single.attempts,
                100.0 * multi.successes / std::max(1, multi.attempts),
                multi.successes, multi.attempts);
  }
  bench::note("");
  bench::note("expected shape: 1-of-1 availability tracks (1 - p); 2-of-3");
  bench::note("stays near 100% until p is large (needs 2 of 3 machines up).");
  bench::note("coins stranded by dead witnesses are not lost: the renewal");
  bench::note("protocol (renewal_test, bench_table1 renewal rows) exchanges");
  bench::note("them after the soft expiry — the paper's recovery story.");
  return 0;
}
