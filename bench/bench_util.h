// Shared helpers for the benchmark/reproduction harnesses: console
// headers plus a dependency-free JSON writer for machine-readable
// baselines (BENCH_*.json — schema documented in EXPERIMENTS.md).

#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace p2pcash::bench {

inline void header(const std::string& id, const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", id.c_str(), title.c_str());
  std::printf("================================================================\n");
}

inline void note(const std::string& text) {
  std::printf("  %s\n", text.c_str());
}

/// Minimal ordered-key JSON emitter.  Supports exactly what the bench
/// baselines need: nested objects, string/number fields.  Keys are
/// emitted in insertion order so diffs between runs stay readable.
class JsonWriter {
 public:
  JsonWriter() { open_scope('{'); }

  JsonWriter& field(const std::string& key, const std::string& value) {
    emit_key(key);
    out_ += '"';
    escape_into(value);
    out_ += '"';
    return *this;
  }

  JsonWriter& field(const std::string& key, double value) {
    emit_key(key);
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.6g", value);
    out_ += buf;
    return *this;
  }

  JsonWriter& field(const std::string& key, std::uint64_t value) {
    emit_key(key);
    out_ += std::to_string(value);
    return *this;
  }

  JsonWriter& field(const std::string& key, int value) {
    emit_key(key);
    out_ += std::to_string(value);
    return *this;
  }

  JsonWriter& begin_object(const std::string& key) {
    emit_key(key);
    open_scope('{');
    return *this;
  }

  JsonWriter& end_object() {
    indent_.resize(indent_.size() - 2);
    out_ += '\n';
    out_ += indent_;
    out_ += '}';
    comma_.pop_back();
    return *this;
  }

  /// Closes the root object and returns the document.  The writer is
  /// spent afterwards.
  std::string finish() {
    while (!comma_.empty()) end_object();
    out_ += '\n';
    return std::move(out_);
  }

  /// Writes `finish()` to `path`; returns false (and prints) on failure.
  bool write_file(const std::string& path) {
    std::string doc = finish();
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (!f) {
      std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
      return false;
    }
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
    std::printf("  wrote %s (%zu bytes)\n", path.c_str(), doc.size());
    return true;
  }

 private:
  void open_scope(char brace) {
    out_ += brace;
    comma_.push_back(false);
    indent_ += "  ";
  }

  void emit_key(const std::string& key) {
    if (comma_.back()) out_ += ',';
    comma_.back() = true;
    out_ += '\n';
    out_ += indent_;
    out_ += '"';
    escape_into(key);
    out_ += "\": ";
  }

  void escape_into(const std::string& s) {
    for (char c : s) {
      if (c == '"' || c == '\\') {
        out_ += '\\';
        out_ += c;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        char buf[8];
        std::snprintf(buf, sizeof buf, "\\u%04x", c);
        out_ += buf;
      } else {
        out_ += c;
      }
    }
  }

  std::string out_;
  std::string indent_;
  std::vector<bool> comma_;
};

/// Parses the flags shared by the bench binaries: `--quick` (smoke-test
/// iteration counts for CI) and `--json=PATH` (override the default
/// baseline output path).  Unrecognized arguments are left for the
/// caller (bench_crypto_micro forwards them to google-benchmark).
struct BenchArgs {
  bool quick = false;
  std::string json_path;
  std::vector<char*> passthrough;

  static BenchArgs parse(int argc, char** argv, std::string default_json) {
    BenchArgs args;
    args.json_path = std::move(default_json);
    for (int i = 0; i < argc; ++i) {
      std::string a = argv[i];
      if (a == "--quick") {
        args.quick = true;
      } else if (a.rfind("--json=", 0) == 0) {
        args.json_path = a.substr(7);
      } else {
        args.passthrough.push_back(argv[i]);
      }
    }
    return args;
  }
};

}  // namespace p2pcash::bench
