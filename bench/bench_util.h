// Shared helpers for the benchmark/reproduction harnesses: console
// headers plus the shared JSON writer for machine-readable baselines
// (BENCH_*.json — schema documented in EXPERIMENTS.md).

#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "obs/json_writer.h"

namespace p2pcash::bench {

inline void header(const std::string& id, const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", id.c_str(), title.c_str());
  std::printf("================================================================\n");
}

inline void note(const std::string& text) {
  std::printf("  %s\n", text.c_str());
}

/// The bench baselines use the shared observability JSON emitter — one
/// serializer so every machine-readable artifact (BENCH_*.json,
/// METRICS_*.json) has the same shape, escaping and "%.6g" number
/// formatting.
using JsonWriter = obs::JsonWriter;

/// Parses the flags shared by the bench binaries: `--quick` (smoke-test
/// iteration counts for CI), `--json=PATH` (override the default
/// baseline output path) and `--trace` (record per-payment traces and
/// export TRACE_/METRICS_ artifacts).  Unrecognized arguments are left
/// for the caller (bench_crypto_micro forwards them to
/// google-benchmark).
struct BenchArgs {
  bool quick = false;
  bool trace = false;
  std::string json_path;
  std::vector<char*> passthrough;

  static BenchArgs parse(int argc, char** argv, std::string default_json) {
    BenchArgs args;
    args.json_path = std::move(default_json);
    for (int i = 0; i < argc; ++i) {
      std::string a = argv[i];
      if (a == "--quick") {
        args.quick = true;
      } else if (a == "--trace") {
        args.trace = true;
      } else if (a.rfind("--json=", 0) == 0) {
        args.json_path = a.substr(7);
      } else {
        args.passthrough.push_back(argv[i]);
      }
    }
    return args;
  }
};

}  // namespace p2pcash::bench
