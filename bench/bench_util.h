// Shared helpers for the benchmark/reproduction harnesses.

#pragma once

#include <cstdio>
#include <string>

namespace p2pcash::bench {

inline void header(const std::string& id, const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", id.c_str(), title.c_str());
  std::printf("================================================================\n");
}

inline void note(const std::string& text) {
  std::printf("  %s\n", text.c_str());
}

}  // namespace p2pcash::bench
