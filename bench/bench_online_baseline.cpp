// A3 — the on-line clearing baseline (Chaum '82): broker load and the
// single point of failure, vs the witness scheme's per-merchant load.
//
// The paper's introduction rejects an on-line trusted party because it
// "creates a single point of failure, and creates administrative and
// equipment expenses (especially during peak hours)".  Quantified here:
//   (a) clearing latency vs offered load at one broker (M/D/1 queue),
//   (b) outage behaviour,
//   (c) the same aggregate load spread over N witness merchants.

#include <cstdio>

#include "baseline/online_clearing.h"
#include "bench_util.h"
#include "crypto/chacha.h"

using namespace p2pcash;
using baseline::OnlineClearingBroker;

int main() {
  crypto::ChaChaRng rng("a3");
  OnlineClearingBroker::Options opt;
  opt.service_ms = 10;  // one coin check+record

  bench::header("A3", "online-clearing broker: latency vs offered load "
                      "(service 10 ms -> capacity 100/s)");
  std::printf("  %-14s | %-12s | %-12s | %-12s | %s\n", "load (pay/s)",
              "mean ms", "p99 ms", "max ms", "broker util");
  std::printf("  ---------------|--------------|--------------|--------------|------------\n");
  for (double rate : {5.0, 20.0, 50.0, 80.0, 90.0, 95.0, 99.0}) {
    auto stats = OnlineClearingBroker::simulate(opt, 5000, rate, rng);
    std::printf("  %13.0f  | %12.1f | %12.1f | %12.1f | %9.0f%%\n", rate,
                stats.latency_ms.mean(), stats.latency_ms.percentile(99),
                stats.latency_ms.max(), 100 * stats.broker_utilization);
  }
  bench::note("");
  bench::note("latency explodes approaching the broker's capacity — the");
  bench::note("\"peak hours\" provisioning problem.");

  bench::header("A3b", "broker outage: 30 s downtime during a 20/s run");
  auto outage = OnlineClearingBroker::simulate(opt, 4000, 20.0, rng,
                                               /*outage_start=*/30'000,
                                               /*outage_end=*/60'000);
  std::printf("  payments failed during outage : %llu of 4000 (%.0f%%)\n",
              static_cast<unsigned long long>(outage.failed_outage),
              100.0 * static_cast<double>(outage.failed_outage) / 4000.0);
  bench::note("every payment in the window died: single point of failure.");

  bench::header("A3c", "witness scheme: the same checking load, spread over "
                       "the merchant network");
  std::printf("  %-12s | %-24s | %s\n", "#merchants",
              "per-witness load (pay/s)", "headroom vs 100/s capacity");
  std::printf("  -------------|--------------------------|---------------------------\n");
  const double aggregate = 95.0;  // the load that melted the single broker
  for (int merchants : {1, 4, 16, 64, 256, 1024}) {
    double per = aggregate / merchants;
    std::printf("  %11d  | %24.2f | %25.0fx\n", merchants, per, 100.0 / per);
  }
  bench::note("");
  bench::note("witness assignment is uniform over h(bare coin), so load");
  bench::note("scales down 1/N with the merchant network — and a witness");
  bench::note("outage strands only its own coins (see A1), not the system.");
  return 0;
}
