// T2 / T2b / AD — regenerates Table 2: "Wall-clock runtime and bandwidth
// for payment protocol over 100 trials".
//
// Testbed reproduction: discrete-event network with the paper's PlanetLab
// WAN (50–100 ms RTT), URL-encoded wire format, and the Python-2007
// compute-cost model (the prototype's ~250 ms/signature bignum stack).
// T2b re-runs the same 100 trials with the OpenSSL cost model and the
// binary wire format — the deployment the paper projects in §7.
// AD prints the paper's advertisement-page comparison.

#include <cstdio>

#include "actors/world.h"
#include "bench_util.h"
#include "metrics/stats.h"

using namespace p2pcash;
using namespace p2pcash::actors;

namespace {

struct TrialResults {
  metrics::RunningStats latency_ms;
  metrics::RunningStats client_bytes;
  metrics::RunningStats merchant_bytes;
  metrics::RunningStats witness_bytes;
};

TrialResults run_trials(const group::SchnorrGroup& grp,
                        simnet::CostModel cost, simnet::WireFormat wire,
                        int trials) {
  SimWorld::Options opt;
  opt.merchants = 8;
  opt.seed = 42;
  opt.cost = cost;
  opt.wire = wire;
  opt.latency_lo = 25;  // paper: 50-100 ms RTT
  opt.latency_hi = 50;
  SimWorld world(grp, opt);
  auto& client = world.add_client();
  const auto client_node = static_cast<simnet::NodeId>(1 + opt.merchants);

  TrialResults results;
  for (int trial = 0; trial < trials; ++trial) {
    std::optional<ecash::WalletCoin> coin;
    client.withdraw(100, [&](ecash::Outcome<ecash::WalletCoin> c) {
      if (c) coin = std::move(c).value();
    });
    world.sim().run();
    if (!coin) continue;
    // Pay at a merchant that is never the coin's witness, so the trial
    // includes the full client->witness->merchant->witness round structure
    // (the paper placed client/witness/merchant on three different hosts).
    ecash::MerchantId target;
    for (const auto& id : world.merchant_ids()) {
      if (id != coin->coin.witnesses[0].merchant) {
        target = id;
        break;
      }
    }
    world.net().reset_byte_counts();
    std::optional<ClientActor::PayResult> result;
    client.pay(*coin, target, [&](ClientActor::PayResult r) { result = r; });
    world.sim().run();
    if (!result || !result->accepted) continue;
    results.latency_ms.add(result->elapsed_ms);
    results.client_bytes.add(
        static_cast<double>(world.net().bytes_sent(client_node)));
    results.merchant_bytes.add(
        static_cast<double>(world.net().bytes_sent(world.merchant_node(target))));
    results.witness_bytes.add(static_cast<double>(world.net().bytes_sent(
        world.merchant_node(coin->coin.witnesses[0].merchant))));
  }
  return results;
}

void print_results(const TrialResults& r) {
  std::printf("  trials (accepted payments)    : %zu\n", r.latency_ms.count());
  std::printf("  client total time   mean      : %7.0f ms   (paper: 1789 ms)\n",
              r.latency_ms.mean());
  std::printf("  client total time   stddev    : %7.0f ms   (paper:  324 ms)\n",
              r.latency_ms.stddev());
  std::printf("  client bytes transmitted mean : %7.0f B    (paper: ~1.6 KB)\n",
              r.client_bytes.mean());
  std::printf("  merchant bytes transmitted    : %7.0f B    (paper: ~4 KB order)\n",
              r.merchant_bytes.mean());
  std::printf("  witness bytes transmitted     : %7.0f B    (paper: ~4 KB order)\n",
              r.witness_bytes.mean());
  std::printf("  latency p50 / p99             : %.0f / %.0f ms\n",
              r.latency_ms.percentile(50), r.latency_ms.percentile(99));
}

}  // namespace

int main() {
  const auto& grp = group::SchnorrGroup::production_1024();

  bench::header("T2",
                "Table 2: payment wall-clock & bandwidth, 100 trials "
                "(PlanetLab WAN, Python-2007 crypto, URL encoding)");
  auto python = run_trials(grp, simnet::python2007_cost(),
                           simnet::WireFormat::kUri, 100);
  print_results(python);

  bench::header("T2b",
                "same 100 trials, OpenSSL-speed crypto + binary wire "
                "(the deployment §7 projects)");
  auto openssl = run_trials(grp, simnet::openssl_cost(),
                            simnet::WireFormat::kBinary, 100);
  print_results(openssl);
  std::printf("  compute share dropped from ~%.0f%% to ~%.0f%% of latency\n",
              100.0 * (python.latency_ms.mean() - 6 * 37.5) /
                  python.latency_ms.mean(),
              100.0 * (openssl.latency_ms.mean() - 6 * 37.5) /
                  openssl.latency_ms.mean());

  bench::header("AD", "comparison vs. ad-supported page (paper §7 survey)");
  std::printf("  payment client traffic (T2)    : %6.0f B\n",
              python.client_bytes.mean());
  std::printf("  CNN.com two-ad payload (paper) :  37.13 KB  (38021 B)\n");
  std::printf("  -> payment is %.0fx cheaper than serving the ads\n",
              38021.0 / python.client_bytes.mean());
  std::printf("  payment latency (T2)           : %6.0f ms\n",
              python.latency_ms.mean());
  std::printf("  text-only page render (paper)  :    900 ms\n");
  bench::note("conclusion matches the paper: network-wise the mini-payment");
  bench::note("is far cheaper than the advertising it replaces; wall-clock");
  bench::note("is ~2x a bare text page with Python crypto and well under it");
  bench::note("with OpenSSL-speed crypto.");
  return 0;
}
