// T2 / T2b / AD — regenerates Table 2: "Wall-clock runtime and bandwidth
// for payment protocol over 100 trials".
//
// Testbed reproduction: discrete-event network with the paper's PlanetLab
// WAN (50–100 ms RTT), URL-encoded wire format, and the Python-2007
// compute-cost model (the prototype's ~250 ms/signature bignum stack).
// T2b re-runs the same 100 trials with the OpenSSL cost model and the
// binary wire format — the deployment the paper projects in §7.
// AD prints the paper's advertisement-page comparison.

// Run with --quick for CI smoke iteration counts; the measured numbers are
// also written as a machine-readable baseline (default BENCH_payment.json,
// override with --json=PATH — schema in EXPERIMENTS.md).

#include <chrono>
#include <cstdio>

#include "actors/world.h"
#include "bench_util.h"
#include "ecash/deployment.h"
#include "ecash/transcript.h"
#include "metrics/stats.h"
#include "overlay/chord.h"

using namespace p2pcash;
using namespace p2pcash::actors;

namespace {

struct TrialResults {
  metrics::RunningStats latency_ms;
  metrics::RunningStats client_bytes;
  metrics::RunningStats merchant_bytes;
  metrics::RunningStats witness_bytes;
};

TrialResults run_trials(const group::SchnorrGroup& grp,
                        simnet::CostModel cost, simnet::WireFormat wire,
                        int trials) {
  SimWorld::Options opt;
  opt.merchants = 8;
  opt.seed = 42;
  opt.cost = cost;
  opt.wire = wire;
  opt.latency_lo = 25;  // paper: 50-100 ms RTT
  opt.latency_hi = 50;
  SimWorld world(grp, opt);
  auto& client = world.add_client();
  const auto client_node = static_cast<simnet::NodeId>(1 + opt.merchants);

  TrialResults results;
  for (int trial = 0; trial < trials; ++trial) {
    std::optional<ecash::WalletCoin> coin;
    client.withdraw(100, [&](ecash::Outcome<ecash::WalletCoin> c) {
      if (c) coin = std::move(c).value();
    });
    world.sim().run();
    if (!coin) continue;
    // Pay at a merchant that is never the coin's witness, so the trial
    // includes the full client->witness->merchant->witness round structure
    // (the paper placed client/witness/merchant on three different hosts).
    ecash::MerchantId target;
    for (const auto& id : world.merchant_ids()) {
      if (id != coin->coin.witnesses[0].merchant) {
        target = id;
        break;
      }
    }
    world.net().reset_byte_counts();
    std::optional<ClientActor::PayResult> result;
    client.pay(*coin, target, [&](ClientActor::PayResult r) { result = r; });
    world.sim().run();
    if (!result || !result->accepted) continue;
    results.latency_ms.add(result->elapsed_ms);
    results.client_bytes.add(
        static_cast<double>(world.net().bytes_sent(client_node)));
    results.merchant_bytes.add(
        static_cast<double>(world.net().bytes_sent(world.merchant_node(target))));
    results.witness_bytes.add(static_cast<double>(world.net().bytes_sent(
        world.merchant_node(coin->coin.witnesses[0].merchant))));
  }
  return results;
}

void print_results(const TrialResults& r) {
  std::printf("  trials (accepted payments)    : %zu\n", r.latency_ms.count());
  std::printf("  client total time   mean      : %7.0f ms   (paper: 1789 ms)\n",
              r.latency_ms.mean());
  std::printf("  client total time   stddev    : %7.0f ms   (paper:  324 ms)\n",
              r.latency_ms.stddev());
  std::printf("  client bytes transmitted mean : %7.0f B    (paper: ~1.6 KB)\n",
              r.client_bytes.mean());
  std::printf("  merchant bytes transmitted    : %7.0f B    (paper: ~4 KB order)\n",
              r.merchant_bytes.mean());
  std::printf("  witness bytes transmitted     : %7.0f B    (paper: ~4 KB order)\n",
              r.witness_bytes.mean());
  std::printf("  latency p50 / p99             : %.0f / %.0f ms\n",
              r.latency_ms.percentile(50), r.latency_ms.percentile(99));
}

/// Wall-clock of the merchant's payment-verify hot path (full coin check
/// plus the transcript NIZK) with the fixed-base/multi-exp fast paths on
/// vs. forced off.  This is the number the fast-exp layer exists for.
struct PaymentVerifyMicro {
  double fast_us = 0;
  double plain_us = 0;
  int iterations = 0;

  double speedup() const { return plain_us > 0 ? plain_us / fast_us : 0; }
};

PaymentVerifyMicro run_payment_verify_micro(const group::SchnorrGroup& grp,
                                            int iterations) {
  ecash::Deployment dep(grp, 4, /*seed=*/7);
  auto wallet = dep.make_wallet();
  auto coin = dep.withdraw(*wallet, 100, 1000).value();
  // Build a real transcript the way the payment protocol does.
  ecash::MerchantId target;
  for (const auto& id : dep.merchant_ids()) {
    if (id != coin.coin.witnesses[0].merchant) {
      target = id;
      break;
    }
  }
  auto intent = wallet->prepare_payment(coin, target);
  auto commitment = dep.node(coin.coin.witnesses[0].merchant)
                        .witness->request_commitment(intent.coin_hash,
                                                     intent.nonce, 2000);
  auto transcript =
      wallet->build_transcript(coin, intent, {commitment.value()}, 2100)
          .value();
  const auto broker_key = dep.broker().coin_key();

  auto verify_once = [&] {
    bool ok = ecash::verify_coin(grp, broker_key, coin.coin, 2000).ok() &&
              ecash::verify_transcript_proof(grp, transcript);
    if (!ok) std::abort();  // a broken verify would invalidate the timing
  };
  auto time_us = [&](int iters) {
    auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) verify_once();
    auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::micro>(t1 - t0).count() /
           iters;
  };

  PaymentVerifyMicro r;
  r.iterations = iterations;
  // Warm-up builds the generator tables and promotes the recurring bases
  // (broker key y, z = F(info)) — steady-state merchant behaviour.
  verify_once();
  verify_once();
  verify_once();
  r.fast_us = time_us(iterations);
  {
    group::ScopedDisableFastExp off;
    r.plain_us = time_us(iterations);
  }
  return r;
}

// CH — payments on a lossy WAN (2% ambient loss on every link) where every
// third trial also crashes the coin's primary witness mid-payment.  The
// resilient pipeline (retry with decorrelated-jitter backoff + chord-order
// witness failover) must carry every payment through; the cost shows up as
// a latency tail, not as failures.
struct ChaosBenchResults {
  metrics::RunningStats latency_ms;
  int attempted = 0;
  int accepted = 0;
  metrics::ResilienceCounters totals;
};

ChaosBenchResults run_chaos_trials(const group::SchnorrGroup& grp,
                                   int trials) {
  SimWorld::Options opt;
  opt.merchants = 8;
  opt.seed = 4242;
  opt.cost = simnet::openssl_cost();
  opt.wire = simnet::WireFormat::kBinary;
  opt.latency_lo = 25;
  opt.latency_hi = 50;
  opt.broker.witness_n = 2;  // a replica to fail over to
  opt.broker.witness_k = 1;
  SimWorld world(grp, opt);
  auto& client = world.add_client();
  world.net().set_drop_rate(0.02);

  ChaosBenchResults results;
  for (int trial = 0; trial < trials; ++trial) {
    std::optional<ecash::WalletCoin> coin;
    client.withdraw(100,
                    [&](ecash::Outcome<ecash::WalletCoin> c) {
                      if (c) coin = std::move(c).value();
                    },
                    /*deadline_ms=*/60'000);
    world.sim().run();
    if (!coin) continue;
    ecash::MerchantId target;
    for (const auto& id : world.merchant_ids()) {
      bool is_witness = false;
      for (const auto& w : coin->coin.witnesses)
        if (w.merchant == id) is_witness = true;
      if (!is_witness) {
        target = id;
        break;
      }
    }
    if (trial % 3 == 0) {
      // Flap the primary witness (first in the client's chord-order engage
      // sequence) across the payment window; it recovers after 8 s.
      const bn::BigInt key = coin->coin.bare.witness_point(0);
      std::vector<bn::BigInt> points;
      for (const auto& entry : coin->coin.witnesses)
        points.push_back(entry.lo);
      const auto order = overlay::failover_order(key, points);
      world.crash_merchant(coin->coin.witnesses[order.front()].merchant,
                           /*at=*/10, /*restart_at=*/8'000);
    }
    ++results.attempted;
    std::optional<ClientActor::PayResult> result;
    world.sim().schedule(50, [&] {
      client.pay(*coin, target,
                 [&](ClientActor::PayResult r) { result = r; },
                 /*timeout_ms=*/60'000);
    });
    world.sim().run();
    if (!result || !result->accepted) continue;
    ++results.accepted;
    results.latency_ms.add(result->elapsed_ms);
  }
  results.totals = world.resilience_totals();
  return results;
}

/// Places a sibling artifact (BENCH_chaos.json, TRACE_payment.jsonl, …)
/// next to the main baseline file.
std::string sibling_path(const std::string& json_path,
                         const std::string& name) {
  auto slash = json_path.find_last_of('/');
  if (slash == std::string::npos) return name;
  return json_path.substr(0, slash + 1) + name;
}

// TR — the T2b deployment re-run with the tracer on: every protocol phase
// of every payment is spanned (withdraw → assign_witness → payment_commit
// → witness_sign → deposit → reconcile), per-phase latency histograms are
// accumulated in the world's metrics registry, and three artifacts are
// written next to the JSON baseline:
//   TRACE_payment.jsonl   — the raw span/event records (tools/trace_lint.py
//                           validates, tools/trace2timeline.py renders);
//   METRICS_payment.prom  — Prometheus text exposition dump;
//   METRICS_payment.json  — the same registry as JSON.
// The trace layer consumes no RNG and adds no wire bytes, so these trials
// replay the exact schedule T2b measured.  Two runs of the same seed
// produce byte-identical JSONL (the determinism check in CI).
void run_traced_section(const group::SchnorrGroup& grp, int trials,
                        const std::string& json_path) {
  SimWorld::Options opt;
  opt.merchants = 8;
  opt.seed = 42;
  opt.cost = simnet::openssl_cost();
  opt.wire = simnet::WireFormat::kBinary;
  opt.latency_lo = 25;
  opt.latency_hi = 50;
  opt.trace = true;
  SimWorld world(grp, opt);
  auto& client = world.add_client();

  int accepted = 0;
  for (int trial = 0; trial < trials; ++trial) {
    std::optional<ecash::WalletCoin> coin;
    client.withdraw(100, [&](ecash::Outcome<ecash::WalletCoin> c) {
      if (c) coin = std::move(c).value();
    });
    world.sim().run();
    if (!coin) continue;
    ecash::MerchantId target;
    for (const auto& id : world.merchant_ids()) {
      if (id != coin->coin.witnesses[0].merchant) {
        target = id;
        break;
      }
    }
    std::optional<ClientActor::PayResult> result;
    client.pay(*coin, target, [&](ClientActor::PayResult r) { result = r; });
    world.sim().run();
    // Settle the merchant's endorsed transcript so each trace also covers
    // the deposit leg and the broker's reconcile handler.
    world.merchant_actor(target).flush_deposits();
    world.sim().run();
    if (result && result->accepted) ++accepted;
  }

  std::printf("  traced trials accepted        : %d / %d\n", accepted,
              trials);
  std::printf("  spans / events recorded       : %llu / %llu\n",
              static_cast<unsigned long long>(world.trace_sink().span_count()),
              static_cast<unsigned long long>(
                  world.trace_sink().event_count()));
  std::printf("  per-phase latency (ms)        :   count    p50    p95    p99\n");
  for (const auto& name : world.metrics().histogram_names()) {
    if (name.rfind("span_", 0) != 0) continue;
    const auto* h = world.metrics().find_histogram(name);
    const std::string phase =
        name.substr(5, name.size() - 5 - 3);  // strip span_ / _ms
    std::printf("    %-26s  : %7llu %6.0f %6.0f %6.0f\n", phase.c_str(),
                static_cast<unsigned long long>(h->count()),
                h->percentile(50), h->percentile(95), h->percentile(99));
  }

  world.trace_sink().write_jsonl(
      sibling_path(json_path, "TRACE_payment.jsonl"));
  const std::string prom = world.metrics().prometheus_text();
  const std::string prom_path =
      sibling_path(json_path, "METRICS_payment.prom");
  if (std::FILE* f = std::fopen(prom_path.c_str(), "wb")) {
    std::fwrite(prom.data(), 1, prom.size(), f);
    std::fclose(f);
    std::printf("  wrote %s (%zu bytes)\n", prom_path.c_str(), prom.size());
  } else {
    std::fprintf(stderr, "bench: cannot write %s\n", prom_path.c_str());
  }
  const std::string mjson = world.metrics().json_text();
  const std::string mjson_path =
      sibling_path(json_path, "METRICS_payment.json");
  if (std::FILE* f = std::fopen(mjson_path.c_str(), "wb")) {
    std::fwrite(mjson.data(), 1, mjson.size(), f);
    std::fclose(f);
    std::printf("  wrote %s (%zu bytes)\n", mjson_path.c_str(), mjson.size());
  } else {
    std::fprintf(stderr, "bench: cannot write %s\n", mjson_path.c_str());
  }
}

void add_trial_results(bench::JsonWriter& json, const std::string& key,
                       const TrialResults& r) {
  json.begin_object(key)
      .field("trials", static_cast<std::uint64_t>(r.latency_ms.count()))
      .field("latency_ms_mean", r.latency_ms.mean())
      .field("latency_ms_stddev", r.latency_ms.stddev())
      .field("latency_ms_p50", r.latency_ms.percentile(50))
      .field("latency_ms_p99", r.latency_ms.percentile(99))
      .field("client_bytes_mean", r.client_bytes.mean())
      .field("merchant_bytes_mean", r.merchant_bytes.mean())
      .field("witness_bytes_mean", r.witness_bytes.mean())
      .end_object();
}

}  // namespace

int main(int argc, char** argv) {
  auto args = bench::BenchArgs::parse(argc - 1, argv + 1,
                                      "BENCH_payment.json");
  const int trials = args.quick ? 10 : 100;
  const int micro_iters = args.quick ? 10 : 50;
  const auto& grp = group::SchnorrGroup::production_1024();

  bench::header("T2",
                "Table 2: payment wall-clock & bandwidth, 100 trials "
                "(PlanetLab WAN, Python-2007 crypto, URL encoding)");
  auto python = run_trials(grp, simnet::python2007_cost(),
                           simnet::WireFormat::kUri, trials);
  print_results(python);

  bench::header("T2b",
                "same 100 trials, OpenSSL-speed crypto + binary wire "
                "(the deployment §7 projects)");
  auto openssl = run_trials(grp, simnet::openssl_cost(),
                            simnet::WireFormat::kBinary, trials);
  print_results(openssl);
  std::printf("  compute share dropped from ~%.0f%% to ~%.0f%% of latency\n",
              100.0 * (python.latency_ms.mean() - 6 * 37.5) /
                  python.latency_ms.mean(),
              100.0 * (openssl.latency_ms.mean() - 6 * 37.5) /
                  openssl.latency_ms.mean());

  bench::header("AD", "comparison vs. ad-supported page (paper §7 survey)");
  std::printf("  payment client traffic (T2)    : %6.0f B\n",
              python.client_bytes.mean());
  std::printf("  CNN.com two-ad payload (paper) :  37.13 KB  (38021 B)\n");
  std::printf("  -> payment is %.0fx cheaper than serving the ads\n",
              38021.0 / python.client_bytes.mean());
  std::printf("  payment latency (T2)           : %6.0f ms\n",
              python.latency_ms.mean());
  std::printf("  text-only page render (paper)  :    900 ms\n");
  bench::note("conclusion matches the paper: network-wise the mini-payment");
  bench::note("is far cheaper than the advertising it replaces; wall-clock");
  bench::note("is ~2x a bare text page with Python crypto and well under it");
  bench::note("with OpenSSL-speed crypto.");

  bench::header("PV",
                "payment-verify micro: merchant coin+NIZK verification, "
                "fast exponentiation paths vs plain ladder");
  auto micro = run_payment_verify_micro(grp, micro_iters);
  std::printf("  fast paths  (tables + Straus) : %8.0f us/verify\n",
              micro.fast_us);
  std::printf("  plain ladder (pre-PR cost)    : %8.0f us/verify\n",
              micro.plain_us);
  std::printf("  speedup                       : %8.2fx\n", micro.speedup());
  std::printf("  fixed-base table memory       : %8zu bytes\n",
              grp.fixed_base_memory_bytes());

  bench::header("CH",
                "lossy WAN chaos: 2% drop on every link, primary-witness "
                "crash every 3rd trial, retries + failover enabled");
  auto chaos = run_chaos_trials(grp, trials);
  std::printf("  payments attempted / accepted : %d / %d\n", chaos.attempted,
              chaos.accepted);
  std::printf("  latency p50 / p99             : %.0f / %.0f ms\n",
              chaos.latency_ms.percentile(50),
              chaos.latency_ms.percentile(99));
  std::printf("  resilience                    : %s\n",
              chaos.totals.to_string().c_str());
  bench::note("loss and witness crashes cost a latency tail (backoff is");
  bench::note("250 ms-based), never a failed payment.");

  bench::JsonWriter json;
  json.field("bench", std::string("payment"))
      .field("schema_version", 1)
      .field("group", std::string("production_1024"))
      .field("quick", std::string(args.quick ? "true" : "false"));
  add_trial_results(json, "table2_python2007_uri", python);
  add_trial_results(json, "table2_openssl_binary", openssl);
  json.begin_object("payment_verify")
      .field("iterations", micro.iterations)
      .field("fast_us", micro.fast_us)
      .field("plain_us", micro.plain_us)
      .field("speedup", micro.speedup())
      .field("table_memory_bytes",
             static_cast<std::uint64_t>(grp.fixed_base_memory_bytes()))
      .end_object();
  json.write_file(args.json_path);

  bench::JsonWriter chaos_json;
  chaos_json.field("bench", std::string("payment_chaos"))
      .field("schema_version", 1)
      .field("group", std::string("production_1024"))
      .field("quick", std::string(args.quick ? "true" : "false"));
  chaos_json.begin_object("lossy_wan")
      .field("drop_rate", 0.02)
      .field("witness_n", 2)
      .field("witness_k", 1)
      .field("attempted", chaos.attempted)
      .field("accepted", chaos.accepted)
      .field("latency_ms_p50", chaos.latency_ms.percentile(50))
      .field("latency_ms_p99", chaos.latency_ms.percentile(99))
      .field("retries", static_cast<std::uint64_t>(chaos.totals.retries))
      .field("failovers", static_cast<std::uint64_t>(chaos.totals.failovers))
      .field("duplicates_suppressed",
             static_cast<std::uint64_t>(chaos.totals.duplicates_suppressed))
      .field("breaker_trips",
             static_cast<std::uint64_t>(chaos.totals.breaker_trips))
      .field("timeouts", static_cast<std::uint64_t>(chaos.totals.timeouts))
      .field("late_replies_ignored",
             static_cast<std::uint64_t>(chaos.totals.late_replies_ignored))
      .end_object();
  chaos_json.write_file(sibling_path(args.json_path, "BENCH_chaos.json"));

  if (args.trace) {
    bench::header("TR",
                  "per-payment tracing: T2b deployment with spans on every "
                  "protocol phase (exports TRACE_/METRICS_ artifacts)");
    run_traced_section(grp, trials, args.json_path);
  }
  return 0;
}
