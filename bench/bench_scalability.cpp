// S — scalability: §8 claims "the scheme could easily handle web-based
// mini-payments for many merchants".  Measured here:
//   (a) end-to-end payment throughput of the in-memory pipeline vs the
//       number of merchants (the witness role parallelizes),
//   (b) witness-load distribution across merchants (uniform hashing), and
//       its response to the broker's weight lever,
//   (c) broker state growth per deposited coin.

#include <chrono>
#include <cstdio>
#include <map>

#include "bench_util.h"
#include "ecash/deployment.h"
#include "metrics/stats.h"

using namespace p2pcash;
using namespace p2pcash::ecash;

namespace {

double payments_per_second(std::size_t merchants, int coins) {
  const auto& grp = group::SchnorrGroup::test_512();
  Deployment dep(grp, merchants, /*seed=*/7);
  auto wallet = dep.make_wallet();
  auto ids = dep.merchant_ids();
  // Pre-withdraw coins so we time the payment path only.
  std::vector<WalletCoin> coins_vec;
  for (int i = 0; i < coins; ++i)
    coins_vec.push_back(dep.withdraw(*wallet, 100, 1000).value());
  auto t0 = std::chrono::steady_clock::now();
  int accepted = 0;
  for (int i = 0; i < coins; ++i) {
    if (dep.pay(*wallet, coins_vec[static_cast<std::size_t>(i)],
                ids[static_cast<std::size_t>(i) % ids.size()], 2000 + i)
            .accepted)
      ++accepted;
  }
  auto t1 = std::chrono::steady_clock::now();
  double secs = std::chrono::duration<double>(t1 - t0).count();
  return accepted / secs;
}

}  // namespace

int main() {
  bench::header("S", "payment pipeline throughput vs merchant count "
                     "(512-bit group, single host, 60 payments/point)");
  std::printf("  %-12s | %s\n", "#merchants", "payments/s (all roles on one core)");
  std::printf("  -------------|------------------------------------\n");
  for (std::size_t n : {2u, 8u, 32u, 128u}) {
    std::printf("  %11zu  | %8.1f\n", n, payments_per_second(n, 60));
  }
  bench::note("flat in N: per-payment work involves one merchant and one");
  bench::note("witness regardless of network size.  In deployment the");
  bench::note("witness work is spread across N machines (see A3c).");

  bench::header("Sb", "witness-load distribution over 600 coins "
                      "(16 merchants; one weighted 8x)");
  {
    const auto& grp = group::SchnorrGroup::test_256();
    Deployment dep(grp, 16, /*seed=*/55);
    dep.broker().set_weight("m003", 8);
    dep.broker().publish_witness_table(2000);  // v2 with the new weights
    auto wallet = dep.make_wallet();
    std::map<MerchantId, int> load;
    for (int i = 0; i < 600; ++i) {
      auto coin = dep.withdraw(*wallet, 100, 3000 + i);
      if (coin) load[coin.value().coin.witnesses[0].merchant]++;
    }
    metrics::RunningStats others;
    for (const auto& [id, count] : load) {
      if (id != "m003") others.add(count);
    }
    std::printf("  weighted merchant m003 witnessed : %d coins\n",
                load["m003"]);
    std::printf("  other merchants (mean over 15)   : %.1f coins\n",
                others.mean());
    std::printf("  observed weight ratio            : %.1fx (configured: 8x)\n",
                load["m003"] / std::max(1.0, others.mean()));
    bench::note("the broker's range-size lever works: hard-working");
    bench::note("witnesses get proportionally more coins (paper §4).");
  }

  bench::header("Sc", "broker state per deposited coin");
  {
    const auto& grp = group::SchnorrGroup::test_256();
    Deployment dep(grp, 8, /*seed=*/66);
    auto wallet = dep.make_wallet();
    auto coin = dep.withdraw(*wallet, 100, 1000).value();
    MerchantId target;
    for (const auto& id : dep.merchant_ids())
      if (id != coin.coin.witnesses[0].merchant) {
        target = id;
        break;
      }
    (void)dep.pay(*wallet, coin, target, 2000);
    auto queue = dep.node(target).merchant->drain_deposit_queue();
    std::printf("  signed transcript (binary)       : %zu bytes\n",
                wire::encode(queue.front()).size());
    bench::note("stored until the coin's hard expiry, then discarded — the");
    bench::note("spent-coin database is bounded by coins in flight, not by");
    bench::note("history (paper: store 'until the coins become uncashable').");
  }
  return 0;
}
