// S — scalability: §8 claims "the scheme could easily handle web-based
// mini-payments for many merchants".  Measured here:
//   (a) end-to-end payment throughput of the in-memory pipeline vs the
//       number of merchants (the witness role parallelizes),
//   (b) witness-load distribution across merchants (uniform hashing), and
//       its response to the broker's weight lever,
//   (c) broker state growth per deposited coin,
//   (d) witness-side signing throughput vs worker threads and NIZK batch
//       size (striped WitnessService + RLC batch verification), exported
//       to BENCH_throughput.json,
//   (e) REAL-transport payment throughput: the full actor stack over
//       loopback TCP sockets (NodeRuntime), payments/sec vs worker
//       threads x concurrent payment lanes — the number the simulated
//       pipeline cannot produce, since with W workers W payments are
//       genuinely in flight on W cores.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "actors/runtime.h"
#include "bench_util.h"
#include "ecash/deployment.h"
#include "metrics/stats.h"
#include "verify/worker_pool.h"

using namespace p2pcash;
using namespace p2pcash::ecash;

namespace {

double payments_per_second(std::size_t merchants, int coins) {
  const auto& grp = group::SchnorrGroup::test_512();
  Deployment dep(grp, merchants, /*seed=*/7);
  auto wallet = dep.make_wallet();
  auto ids = dep.merchant_ids();
  // Pre-withdraw coins so we time the payment path only.
  std::vector<WalletCoin> coins_vec;
  for (int i = 0; i < coins; ++i)
    coins_vec.push_back(dep.withdraw(*wallet, 100, 1000).value());
  auto t0 = std::chrono::steady_clock::now();
  int accepted = 0;
  for (int i = 0; i < coins; ++i) {
    if (dep.pay(*wallet, coins_vec[static_cast<std::size_t>(i)],
                ids[static_cast<std::size_t>(i) % ids.size()], 2000 + i)
            .accepted)
      ++accepted;
  }
  auto t1 = std::chrono::steady_clock::now();
  double secs = std::chrono::duration<double>(t1 - t0).count();
  return accepted / secs;
}

struct ThroughputResult {
  double seconds = 0;
  double payments_per_sec = 0;
  int payments_done = 0;
};

// The witness hot path in isolation: prepare n payments (withdraw, intent,
// commitments, transcript — untimed), then time only the witness side —
// per-witness transcript batches signed through a WorkerPool.  A transcript
// signs exactly once (a retry is answered from the spent record, which
// would fake a speedup), so every config gets a fresh deployment with the
// same seed.
ThroughputResult signing_throughput(const group::SchnorrGroup& grp,
                                    std::size_t threads,
                                    std::size_t batch_size, int n_payments) {
  Deployment dep(grp, 8, /*seed=*/11);
  auto wallet = dep.make_wallet();
  auto ids = dep.merchant_ids();
  std::map<MerchantId, std::vector<PaymentTranscript>> per_witness;
  std::size_t witness_k = 1;
  for (int i = 0; i < n_payments; ++i) {
    auto coin = dep.withdraw(*wallet, 100, 1000).value();
    witness_k = coin.coin.bare.info.witness_k;
    auto intent = wallet->prepare_payment(
        coin, ids[static_cast<std::size_t>(i) % ids.size()]);
    std::vector<WitnessCommitment> commitments;
    for (const auto& entry : coin.coin.witnesses) {
      if (commitments.size() >= witness_k) break;
      bool already = false;
      for (const auto& c : commitments)
        if (c.witness == entry.merchant) already = true;
      if (already) continue;
      auto outcome = dep.node(entry.merchant)
                         .witness->request_commitment(intent.coin_hash,
                                                      intent.nonce, 2000);
      if (outcome) commitments.push_back(std::move(outcome).value());
    }
    auto transcript = wallet->build_transcript(coin, intent, commitments, 2000);
    for (const auto& c : commitments)
      per_witness[c.witness].push_back(transcript.value());
  }

  verify::WorkerPool pool(threads);
  std::atomic<int> endorsed{0};
  auto t0 = std::chrono::steady_clock::now();
  for (auto& [id, transcripts] : per_witness) {
    WitnessService* witness = dep.node(id).witness.get();
    for (std::size_t off = 0; off < transcripts.size(); off += batch_size) {
      std::span<const PaymentTranscript> chunk(
          transcripts.data() + off,
          std::min(batch_size, transcripts.size() - off));
      pool.submit([witness, chunk, &endorsed] {
        auto results = witness->sign_transcript_batch(chunk, 2500);
        for (auto& r : results) {
          if (r && std::holds_alternative<WitnessEndorsement>(r.value()))
            endorsed.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
  }
  pool.drain();
  auto t1 = std::chrono::steady_clock::now();

  ThroughputResult out;
  out.seconds = std::chrono::duration<double>(t1 - t0).count();
  // A payment is done once all witness_k of its witnesses countersigned.
  out.payments_done =
      endorsed.load() / static_cast<int>(std::max<std::size_t>(1, witness_k));
  out.payments_per_sec = out.payments_done / out.seconds;
  return out;
}

/// One protocol phase's wall-clock latency distribution, read from the
/// runtime's span_<phase>_ms histograms after the timed section.
struct PhaseStats {
  double p50 = 0, p95 = 0, p99 = 0;
  std::uint64_t count = 0;
};

/// Everything Sr captures beyond raw throughput: per-phase latency, the
/// /metrics body scraped from the LIVE obs server mid-run (proving the
/// endpoint serves while payments flow), and the trace export.
struct ObsCapture {
  std::vector<std::pair<std::string, PhaseStats>> phases;
  std::string live_prom;  ///< scraped over HTTP from the running node
  std::string trace_jsonl;
  bool scraped_live = false;
};

/// Minimal blocking HTTP/1.0 GET against the node's own obs server;
/// returns the response body ("" on any failure).
std::string self_scrape(std::uint16_t port, const std::string& target) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  std::string raw;
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0) {
    const std::string req = "GET " + target + " HTTP/1.0\r\n\r\n";
    (void)::send(fd, req.data(), req.size(), 0);
    char buf[4096];
    ssize_t n;
    while ((n = ::recv(fd, buf, sizeof buf, 0)) > 0)
      raw.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  const auto header_end = raw.find("\r\n\r\n");
  return header_end == std::string::npos ? std::string{}
                                         : raw.substr(header_end + 4);
}

// End-to-end payments over real loopback TCP: a NodeRuntime (broker + 8
// merchant machines + `lanes` clients) on one TcpNet with `threads` strand
// workers.  Coins are pre-withdrawn untimed; the timed section runs every
// lane's payments concurrently, each lane a blocking driver thread feeding
// its own client actor.  Every protocol message crosses a kernel socket.
// With `capture`, the node also serves its obs endpoint for the duration
// and the phase histograms / live scrape are collected before teardown.
ThroughputResult real_transport_throughput(const group::SchnorrGroup& grp,
                                           std::size_t threads,
                                           std::size_t lanes,
                                           int n_payments,
                                           ObsCapture* capture = nullptr) {
  actors::NodeRuntime::Options opt;
  opt.merchants = 8;
  opt.worker_threads = threads;
  opt.seed = 11;
  actors::NodeRuntime rt(grp, opt);
  std::vector<actors::ClientActor*> clients;
  for (std::size_t i = 0; i < lanes; ++i) clients.push_back(&rt.add_client());
  rt.start();
  const std::uint16_t obs_port = capture ? rt.start_obs_server(0) : 0;
  auto ids = rt.merchant_ids();

  std::vector<std::vector<WalletCoin>> coins(lanes);
  for (int i = 0; i < n_payments; ++i) {
    auto outcome =
        rt.withdraw(*clients[static_cast<std::size_t>(i) % lanes], 100);
    coins[static_cast<std::size_t>(i) % lanes].push_back(
        std::move(outcome).value());
  }

  std::atomic<int> accepted{0};
  auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> drivers;
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    drivers.emplace_back([&, lane] {
      std::size_t m = lane;  // spread lanes across merchants
      for (const auto& coin : coins[lane]) {
        auto r = rt.pay(*clients[lane], coin, ids[m++ % ids.size()],
                        /*timeout_ms=*/30'000);
        if (r.accepted) accepted.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : drivers) t.join();
  auto t1 = std::chrono::steady_clock::now();
  if (capture) {
    // Scrape the LIVE node before teardown — the same bytes an external
    // Prometheus would see — then read the phase histograms directly.
    capture->live_prom = self_scrape(obs_port, "/metrics");
    capture->scraped_live = !capture->live_prom.empty();
    for (const char* phase :
         {"withdraw", "assign_witness", "payment_commit", "witness_sign",
          "payment"}) {
      const auto* h =
          rt.metrics().find_histogram("span_" + std::string(phase) + "_ms");
      PhaseStats stats;
      if (h) {
        stats.p50 = h->percentile(50);
        stats.p95 = h->percentile(95);
        stats.p99 = h->percentile(99);
        stats.count = h->count();
      }
      capture->phases.emplace_back(phase, stats);
    }
    capture->trace_jsonl = rt.trace_sink().to_jsonl();
  }
  rt.stop();

  ThroughputResult out;
  out.seconds = std::chrono::duration<double>(t1 - t0).count();
  out.payments_done = accepted.load();
  out.payments_per_sec = out.payments_done / out.seconds;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  auto args =
      bench::BenchArgs::parse(argc, argv, "BENCH_throughput.json");
  bench::header("S", "payment pipeline throughput vs merchant count "
                     "(512-bit group, single host, 60 payments/point)");
  std::printf("  %-12s | %s\n", "#merchants", "payments/s (all roles on one core)");
  std::printf("  -------------|------------------------------------\n");
  for (std::size_t n : {2u, 8u, 32u, 128u}) {
    std::printf("  %11zu  | %8.1f\n", n, payments_per_second(n, 60));
  }
  bench::note("flat in N: per-payment work involves one merchant and one");
  bench::note("witness regardless of network size.  In deployment the");
  bench::note("witness work is spread across N machines (see A3c).");

  bench::header("Sb", "witness-load distribution over 600 coins "
                      "(16 merchants; one weighted 8x)");
  {
    const auto& grp = group::SchnorrGroup::test_256();
    Deployment dep(grp, 16, /*seed=*/55);
    dep.broker().set_weight("m003", 8);
    dep.broker().publish_witness_table(2000);  // v2 with the new weights
    auto wallet = dep.make_wallet();
    std::map<MerchantId, int> load;
    for (int i = 0; i < 600; ++i) {
      auto coin = dep.withdraw(*wallet, 100, 3000 + i);
      if (coin) load[coin.value().coin.witnesses[0].merchant]++;
    }
    metrics::RunningStats others;
    for (const auto& [id, count] : load) {
      if (id != "m003") others.add(count);
    }
    std::printf("  weighted merchant m003 witnessed : %d coins\n",
                load["m003"]);
    std::printf("  other merchants (mean over 15)   : %.1f coins\n",
                others.mean());
    std::printf("  observed weight ratio            : %.1fx (configured: 8x)\n",
                load["m003"] / std::max(1.0, others.mean()));
    bench::note("the broker's range-size lever works: hard-working");
    bench::note("witnesses get proportionally more coins (paper §4).");
  }

  bench::header("Sc", "broker state per deposited coin");
  {
    const auto& grp = group::SchnorrGroup::test_256();
    Deployment dep(grp, 8, /*seed=*/66);
    auto wallet = dep.make_wallet();
    auto coin = dep.withdraw(*wallet, 100, 1000).value();
    MerchantId target;
    for (const auto& id : dep.merchant_ids())
      if (id != coin.coin.witnesses[0].merchant) {
        target = id;
        break;
      }
    (void)dep.pay(*wallet, coin, target, 2000);
    auto queue = dep.node(target).merchant->drain_deposit_queue();
    std::printf("  signed transcript (binary)       : %zu bytes\n",
                wire::encode(queue.front()).size());
    bench::note("stored until the coin's hard expiry, then discarded — the");
    bench::note("spent-coin database is bounded by coins in flight, not by");
    bench::note("history (paper: store 'until the coins become uncashable').");
  }

  // One JSON artifact covers the two threaded sections (St: witness
  // signing hot path; Sr: end-to-end payments over real TCP).  Every
  // per-thread-count row records the host's hardware_threads next to the
  // measurement and flags oversubscription, so a speedup read off a small
  // CI box is never mistaken for the multicore number.
  const auto hw_threads =
      static_cast<std::uint64_t>(std::thread::hardware_concurrency());
  bench::JsonWriter json;
  json.field("bench", std::string("scalability_throughput"));
  json.field("schema", 2);
  json.field("group_bits", 512);
  json.field("hardware_threads", hw_threads);
  json.field("quick", args.quick ? 1 : 0);

  bench::header("St", "witness signing throughput vs worker threads and "
                      "NIZK batch size (512-bit group)");
  {
    const auto& grp = group::SchnorrGroup::test_512();
    const int n = args.quick ? 24 : 96;
    struct Config {
      std::size_t threads;
      std::size_t batch;
    };
    const std::vector<Config> configs = {{1, 1},  {1, 16}, {2, 16},
                                         {4, 16}, {8, 16}, {8, 64}};
    std::printf("  %-8s | %-10s | %-9s | %-12s | %s\n", "threads",
                "batch_size", "seconds", "payments/s", "speedup");
    std::printf("  ---------|------------|-----------|--------------|--------\n");
    json.field("payments_per_config", n);
    json.begin_object("configs");
    double baseline = 0;
    for (const Config& c : configs) {
      auto r = signing_throughput(grp, c.threads, c.batch, n);
      if (baseline == 0) baseline = r.payments_per_sec;
      const double speedup = r.payments_per_sec / baseline;
      std::printf("  %7zu  | %9zu  | %8.3f  | %11.1f  | %5.2fx\n", c.threads,
                  c.batch, r.seconds, r.payments_per_sec, speedup);
      json.begin_object("t" + std::to_string(c.threads) + "_b" +
                        std::to_string(c.batch));
      json.field("threads", static_cast<std::uint64_t>(c.threads));
      json.field("batch_size", static_cast<std::uint64_t>(c.batch));
      json.field("seconds", r.seconds);
      json.field("payments_done", r.payments_done);
      json.field("payments_per_sec", r.payments_per_sec);
      json.field("speedup_vs_t1_b1", speedup);
      json.field("hardware_threads", hw_threads);
      json.field("oversubscribed", c.threads > hw_threads ? 1 : 0);
      json.end_object();
    }
    json.end_object();
    bench::note("batch>=16 amortizes the NIZK check into one RLC multi-exp");
    bench::note("(2n+2 Exp instead of 3n); batch 64 crosses into Pippenger");
    bench::note("buckets.  Thread scaling is bounded by the host's cores —");
    bench::note("see hardware_threads in the JSON before reading speedups.");
  }

  bench::header("Sr", "REAL-transport payment throughput: full actor stack "
                      "over loopback TCP vs worker threads x payment lanes "
                      "(512-bit group)");
  {
    const auto& grp = group::SchnorrGroup::test_512();
    const int n = args.quick ? 16 : 64;
    struct Config {
      std::size_t threads;
      std::size_t lanes;
    };
    const std::vector<Config> configs = {{1, 1}, {1, 4}, {2, 4}, {4, 8}};
    std::printf("  %-8s | %-6s | %-9s | %-12s | %s\n", "threads", "lanes",
                "seconds", "payments/s", "speedup");
    std::printf("  ---------|--------|-----------|--------------|--------\n");
    json.field("real_transport_payments_per_config", n);
    json.begin_object("real_transport");
    double baseline = 0;
    ObsCapture capture;
    for (const Config& c : configs) {
      // The last (largest) config runs with the obs server live and the
      // phase histograms captured — one scrape of the busiest node.
      const bool observed = &c == &configs.back();
      auto r = real_transport_throughput(grp, c.threads, c.lanes, n,
                                         observed ? &capture : nullptr);
      if (baseline == 0) baseline = r.payments_per_sec;
      const double speedup = r.payments_per_sec / baseline;
      std::printf("  %7zu  | %5zu  | %8.3f  | %11.1f  | %5.2fx\n", c.threads,
                  c.lanes, r.seconds, r.payments_per_sec, speedup);
      json.begin_object("t" + std::to_string(c.threads) + "_l" +
                        std::to_string(c.lanes));
      json.field("threads", static_cast<std::uint64_t>(c.threads));
      json.field("lanes", static_cast<std::uint64_t>(c.lanes));
      json.field("seconds", r.seconds);
      json.field("payments_done", r.payments_done);
      json.field("payments_per_sec", r.payments_per_sec);
      json.field("speedup_vs_t1_l1", speedup);
      json.field("hardware_threads", hw_threads);
      json.field("oversubscribed", c.threads > hw_threads ? 1 : 0);
      json.end_object();
    }
    json.end_object();
    bench::note("every protocol message crosses a kernel TCP socket; each");
    bench::note("worker thread runs whole payments' crypto concurrently.");
    bench::note("The t4-vs-t1 speedup is only meaningful on hosts with");
    bench::note(">= 4 hardware_threads — oversubscribed rows measure");
    bench::note("scheduling overhead, not scaling.");

    std::printf("\n  per-phase wall-clock latency, largest config "
                "(t%zu_l%zu, ms):\n",
                configs.back().threads, configs.back().lanes);
    std::printf("  %-16s | %-8s | %-8s | %-8s | %s\n", "phase", "p50", "p95",
                "p99", "count");
    std::printf("  -----------------|----------|----------|----------|------\n");
    json.begin_object("phase_latency_ms");
    for (const auto& [phase, stats] : capture.phases) {
      std::printf("  %-16s | %8.3f | %8.3f | %8.3f | %5llu\n", phase.c_str(),
                  stats.p50, stats.p95, stats.p99,
                  static_cast<unsigned long long>(stats.count));
      json.begin_object(phase);
      json.field("p50", stats.p50);
      json.field("p95", stats.p95);
      json.field("p99", stats.p99);
      json.field("count", stats.count);
      json.end_object();
    }
    json.end_object();
    json.field("live_scrape_ok", capture.scraped_live ? 1 : 0);
    if (capture.scraped_live) {
      std::ofstream("METRICS_scalability.prom") << capture.live_prom;
      bench::note("live /metrics scrape saved to METRICS_scalability.prom");
    } else {
      bench::note("WARNING: live /metrics scrape failed — no snapshot saved");
    }
    std::ofstream("TRACE_scalability.jsonl") << capture.trace_jsonl;
    bench::note("wall-clock trace export saved to TRACE_scalability.jsonl");
  }

  json.write_file(args.json_path);
  return 0;
}
