// A4 — the off-line detect-at-deposit baseline (Brands / Chaum-Fiat-Naor):
// how much fraud a double-spender commits before the first deposit lands,
// as a function of merchant deposit delay.  Uses real coins, real NIZK
// transcripts, real extraction — only the witness is bypassed.
//
// This is the paper's core motivation: without real-time detection,
// "the danger of large groups doing concurrent double-spending using the
// same coin is non-trivial", and someone must eat the loss — which is why
// those schemes need client accounts and security deposits.

#include <cstdio>

#include "baseline/offline_detection.h"
#include "bench_util.h"
#include "crypto/chacha.h"

using namespace p2pcash;
using baseline::OfflineDetection;

int main() {
  const auto& grp = group::SchnorrGroup::test_512();
  bench::header("A4", "off-line detection: fraud per coin vs deposit delay "
                      "(attacker spends 1 coin/s at up to 200 merchants)");
  std::printf("  %-18s | %-18s | %-16s | %s\n", "deposit delay",
              "fraudulent spends", "detection delay", "secrets extracted");
  std::printf("  -------------------|--------------------|------------------|------------------\n");
  struct DelayCase {
    const char* label;
    double ms;
  };
  for (auto [label, ms] : {DelayCase{"5 s", 5'000.0},
                           DelayCase{"30 s", 30'000.0},
                           DelayCase{"5 min", 300'000.0},
                           DelayCase{"1 hour", 3'600'000.0},
                           DelayCase{"1 day", 86'400'000.0}}) {
    crypto::ChaChaRng rng(std::string("a4-") + label);
    OfflineDetection::Options opt;
    opt.deposit_interval_ms = ms;
    opt.spend_rate_per_s = 1.0;
    opt.merchants = 200;
    auto stats = OfflineDetection::simulate(grp, opt, rng);
    char delay[32];
    if (stats.detected_at_deposit) {
      std::snprintf(delay, sizeof delay, "%13.0f ms", stats.detection_delay_ms);
    } else {
      std::snprintf(delay, sizeof delay, "%16s", "after attack");
    }
    std::printf("  %-18s | %14llu     | %s | %s\n", label,
                static_cast<unsigned long long>(stats.fraudulent_spends),
                delay,
                stats.secrets_extracted ? "yes" : "n/a (never two deposits)");
  }
  bench::note("");
  bench::note("every row's fraud (minus the one legitimate spend) is pure");
  bench::note("loss that some party must cover.  The witness scheme holds");
  bench::note("this at zero regardless of deposit cadence (doublespend_test,");
  bench::note("bench A2) — its detection delay is one witness RTT.");
  return 0;
}
