// X — transferability extension: "transferred cash grows in size"
// (Chaum–Pedersen, cited as [14] in the paper's related work).  Measures
// coin size, verification cost and hand-off latency as a coin hops between
// peers, plus the witness-side state growth.

#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "ecash/deployment.h"
#include "metrics/counters.h"

using namespace p2pcash;
using namespace p2pcash::ecash;

int main() {
  const auto& grp = group::SchnorrGroup::production_1024();
  Deployment dep(grp, 8, /*seed=*/77);
  auto alice = dep.make_wallet();

  bench::header("X", "transferable coins: cost growth per hop "
                     "(1024-bit group)");
  std::printf("  %-6s | %-12s | %-22s | %-14s\n", "hops", "coin bytes",
              "verify cost (Exp/Hash/Ver)", "hand-off time");
  std::printf("  -------|--------------|------------------------|---------------\n");

  auto coin = dep.withdraw(*alice, 100, 1000).value();
  std::vector<std::unique_ptr<Wallet>> peers;
  WalletCoin current = coin;
  Wallet* holder = alice.get();
  for (int hop = 0; hop <= 8; ++hop) {
    // Measure verification cost of the coin as it stands.
    metrics::OpCounters ops;
    {
      metrics::ScopedOpCounting guard(ops);
      auto ok = verify_coin(grp, dep.broker().coin_key(), current.coin, 2000);
      if (!ok) {
        std::printf("  verification failed at hop %d: %s\n", hop,
                    ok.refusal().detail.c_str());
        return 1;
      }
    }
    std::printf("  %5d  | %12zu | %8llu/%4llu/%3llu       |", hop,
                wire::encode(current.coin).size(),
                static_cast<unsigned long long>(ops.exp),
                static_cast<unsigned long long>(ops.hash),
                static_cast<unsigned long long>(ops.ver));
    if (hop == 8) {
      std::printf("       —\n");
      break;
    }
    // Hand the coin to a fresh peer, timing the full transfer protocol.
    peers.push_back(dep.make_wallet());
    auto t0 = std::chrono::steady_clock::now();
    auto result =
        dep.transfer(*holder, current, *peers.back(), 2000 + hop);
    auto t1 = std::chrono::steady_clock::now();
    if (!result.received) {
      std::printf("  transfer failed at hop %d\n", hop);
      return 1;
    }
    std::printf(" %9.1f ms\n",
                std::chrono::duration<double, std::milli>(t1 - t0).count());
    current = *result.received;
    holder = peers.back().get();
  }
  bench::note("");
  bench::note("linear growth in size and verification cost per hop — the");
  bench::note("[14] result reproduced.  The final holder deposits at face");
  bench::note("value; the witness stores one chain per transferred coin.");

  // Sanity: the final holder can actually spend it.
  MerchantId target;
  for (const auto& id : dep.merchant_ids()) {
    bool w = false;
    for (const auto& e : current.coin.witnesses)
      if (e.merchant == id) w = true;
    if (!w) {
      target = id;
      break;
    }
  }
  auto spend = dep.pay(*holder, current, target, 9000);
  std::printf("\n  final spend after 8 hops: %s\n",
              spend.accepted ? "accepted" : "REFUSED");
  auto summary = dep.deposit_all(target, 10'000);
  std::printf("  deposited at face value: %u cents\n", summary.credited);
  return spend.accepted ? 0 : 1;
}
