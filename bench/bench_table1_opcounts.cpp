// T1 / T1b — regenerates Table 1: "Number of cryptographic operations"
// per protocol and role (Exp / Hash / Sig / Ver), measured by running the
// real protocols with the metrics layer attached, side by side with the
// paper's reported numbers.  Also prints the §7 double-spending deltas.
//
// Run on the production-size group (1024-bit p, 160-bit q) — op counts are
// size-independent, but this proves the full-size path executes.

#include <cstdio>

#include "bench_util.h"
#include "ecash/deployment.h"
#include "metrics/counters.h"

using namespace p2pcash;
using namespace p2pcash::ecash;
using metrics::OpCounters;
using metrics::ScopedOpCounting;

namespace {

struct Row {
  const char* protocol;
  const char* role;
  OpCounters measured;
  OpCounters paper;
};

void print_rows(const std::vector<Row>& rows) {
  std::printf("  %-12s %-9s | %13s | %13s | %s\n", "Protocol", "Role",
              "measured", "paper", "match");
  std::printf("  %-12s %-9s | %4s %4s %3s %3s | %4s %4s %3s %3s |\n", "", "",
              "Exp", "Hsh", "Sig", "Ver", "Exp", "Hsh", "Sig", "Ver");
  std::printf("  ------------------------------------------------------------------\n");
  for (const auto& row : rows) {
    bool match = row.measured == row.paper;
    std::printf("  %-12s %-9s | %4llu %4llu %3llu %3llu | %4llu %4llu %3llu "
                "%3llu | %s\n",
                row.protocol, row.role,
                static_cast<unsigned long long>(row.measured.exp),
                static_cast<unsigned long long>(row.measured.hash),
                static_cast<unsigned long long>(row.measured.sig),
                static_cast<unsigned long long>(row.measured.ver),
                static_cast<unsigned long long>(row.paper.exp),
                static_cast<unsigned long long>(row.paper.hash),
                static_cast<unsigned long long>(row.paper.sig),
                static_cast<unsigned long long>(row.paper.ver),
                match ? "yes" : "note[*]");
  }
}

}  // namespace

int main() {
  bench::header("T1", "Table 1: cryptographic operations per protocol/role");

  const auto& grp = group::SchnorrGroup::production_1024();
  Deployment dep(grp, 8, /*seed=*/2024);
  auto wallet = dep.make_wallet();
  std::vector<Row> rows;

  // ---- Withdrawal ----
  {
    OpCounters client, broker;
    Broker::WithdrawalOffer offer;
    {
      ScopedOpCounting guard(broker);
      offer = dep.broker().start_withdrawal(100, 1000).value();
    }
    Wallet::Withdrawal state = [&] {
      ScopedOpCounting guard(client);
      return wallet->begin_withdrawal(offer);
    }();
    blindsig::SignerResponse response;
    {
      ScopedOpCounting guard(broker);
      response = dep.broker().finish_withdrawal(state.session, state.e).value();
    }
    {
      ScopedOpCounting guard(client);
      auto coin = wallet->complete_withdrawal(state, response,
                                              dep.broker().current_table());
      if (coin) wallet->add_coin(std::move(coin).value());
    }
    rows.push_back({"Withdrawal", "Client", client, {12, 4, 0, 1}});
    rows.push_back({"Withdrawal", "Broker", broker, {3, 1, 0, 0}});
  }

  // ---- Payment (no double spending) ----
  auto coin = dep.withdraw(*wallet, 100, 1000).value();
  MerchantId target;
  for (const auto& id : dep.merchant_ids()) {
    if (id != coin.coin.witnesses[0].merchant) {
      target = id;
      break;
    }
  }
  SignedTranscript deposit_material;
  {
    OpCounters client, witness, merchant;
    auto& w = *dep.node(coin.coin.witnesses[0].merchant).witness;
    auto& m = *dep.node(target).merchant;
    Wallet::PaymentIntent intent;
    {
      ScopedOpCounting guard(client);
      intent = wallet->prepare_payment(coin, target);
    }
    WitnessCommitment commitment = [&] {
      ScopedOpCounting guard(witness);
      return w.request_commitment(intent.coin_hash, intent.nonce, 2000)
          .value();
    }();
    PaymentTranscript transcript = [&] {
      ScopedOpCounting guard(client);
      return wallet->build_transcript(coin, intent, {commitment}, 2010)
          .value();
    }();
    {
      ScopedOpCounting guard(merchant);
      (void)m.receive_payment(transcript, {commitment}, 2020);
    }
    SignResult sign = [&] {
      ScopedOpCounting guard(witness);
      return w.sign_transcript(transcript, 2030).value();
    }();
    {
      ScopedOpCounting guard(merchant);
      (void)m.add_endorsement(intent.coin_hash,
                              std::get<WitnessEndorsement>(sign));
    }
    deposit_material = m.drain_deposit_queue().front();
    rows.push_back({"Payment", "Client", client, {0, 3, 0, 1}});
    rows.push_back({"Payment", "Witness", witness, {7, 6, 2, 1}});
    rows.push_back({"Payment", "Merchant", merchant, {7, 6, 0, 3}});
  }

  // ---- Deposit ----
  {
    OpCounters merchant, broker;
    {
      ScopedOpCounting guard(merchant);
      (void)wire::encode(deposit_material);  // the merchant only transmits
    }
    {
      ScopedOpCounting guard(broker);
      (void)dep.broker().deposit(target, deposit_material, 5000);
    }
    rows.push_back({"Deposit", "Merchant", merchant, {0, 0, 0, 0}});
    rows.push_back({"Deposit", "Broker", broker, {6, 4, 0, 1}});
  }

  // ---- Coin renewal ----
  {
    auto old_coin = dep.withdraw(*wallet, 100, 1000).value();
    Timestamp when = old_coin.coin.bare.info.soft_expiry +
                     dep.broker().config().deposit_grace_ms + 1000;
    OpCounters client, broker;
    Broker::RenewalOffer offer;
    {
      ScopedOpCounting guard(broker);
      offer = dep.broker().start_renewal(100, when).value();
    }
    bn::BigInt challenge;
    {
      ScopedOpCounting guard(client);  // client computes d* itself
      challenge = dep.broker().renewal_challenge(old_coin.coin, when);
    }
    Wallet::Renewal state = [&] {
      ScopedOpCounting guard(client);
      return wallet->begin_renewal(old_coin, offer, challenge, when);
    }();
    blindsig::SignerResponse response = [&] {
      ScopedOpCounting guard(broker);
      return dep.broker()
          .finish_renewal(state.session, state.e, old_coin.coin,
                          state.old_proof, state.datetime, when)
          .value();
    }();
    {
      ScopedOpCounting guard(client);
      (void)wallet->complete_renewal(state, response,
                                     dep.broker().current_table());
    }
    rows.push_back({"Coin Renewal", "Client", client, {12, 5, 0, 1}});
    rows.push_back({"Coin Renewal", "Broker", broker, {9, 4, 0, 0}});
  }

  print_rows(rows);
  bench::note("");
  bench::note("[*] renewal broker: +1 Hash — we re-hash the bare coin to key");
  bench::note("    the renewal database; the paper's count omits this lookup.");

  // ---- T1b: double-spending deltas (§7 text) ----
  bench::header("T1b", "op-count deltas when a coin is double-spent (§7)");
  {
    auto ds_coin = dep.withdraw(*wallet, 100, 1000).value();
    auto& w = *dep.node(ds_coin.coin.witnesses[0].merchant).witness;
    MerchantId m1, m2;
    for (const auto& id : dep.merchant_ids()) {
      if (id == ds_coin.coin.witnesses[0].merchant) continue;
      if (m1.empty())
        m1 = id;
      else if (m2.empty())
        m2 = id;
    }
    (void)dep.pay(*wallet, ds_coin, m1, 2000);
    Timestamp later = 2000 + w.commitment_ttl() + 100;
    auto intent = wallet->prepare_payment(ds_coin, m2);
    auto commitment =
        w.request_commitment(intent.coin_hash, intent.nonce, later).value();
    auto transcript =
        wallet->build_transcript(ds_coin, intent, {commitment}, later + 10)
            .value();
    auto& m = *dep.node(m2).merchant;
    (void)m.receive_payment(transcript, {commitment}, later + 20);
    OpCounters witness_ops;
    SignResult sign = [&] {
      ScopedOpCounting guard(witness_ops);
      return w.sign_transcript(transcript, later + 30).value();
    }();
    OpCounters merchant_ops;
    {
      ScopedOpCounting guard(merchant_ops);
      (void)m.handle_double_spend(intent.coin_hash,
                                  std::get<DoubleSpendProof>(sign));
    }
    std::printf("  witness extraction + proof : %s\n",
                witness_ops.to_string().c_str());
    std::printf("  merchant proof verification: %s\n",
                merchant_ops.to_string().c_str());
    bench::note("paper: merchant does 2 extra Exp and 1 Ver less; witness at");
    bench::note("most 2 Exp.  We verify BOTH representations at the merchant");
    bench::note("(4 Exp, 0 Ver) and extract with pure Z_q arithmetic at the");
    bench::note("witness (0 Exp) — same shape, stricter checking.");
  }
  return 0;
}
