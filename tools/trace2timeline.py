#!/usr/bin/env python3
"""Renders a JSONL trace (see src/obs/trace.h) as per-payment timelines.

Usage:
  tools/trace2timeline.py TRACE_payment.jsonl [--out FILE] [--trace ID]

For every trace id in the file, prints the span tree with start/duration
and a proportional bar, interleaving events at their timestamps:

  trace 2  (payment, 235.4 ms)
    [  159.2 ms +   0.0 ms] assign_witness        node 9  |
    [  159.3 ms +  88.3 ms] payment_commit        node 9  |#####     |
      ev 190.1 ms rpc.retry  re-requesting commitment ...

Spans whose parent span is missing from the file (ring-buffer eviction)
are attached to the trace root and marked "(orphan)".
"""

import json
import sys


def load(path):
    spans, events, metas = [], [], []
    with open(path, encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            kind = record.get("kind")
            if kind == "span":
                spans.append(record)
            elif kind == "event":
                events.append(record)
            elif kind == "meta":
                metas.append(record)
    return spans, events, metas


def render_trace(trace_id, spans, events, out):
    by_id = {s["span"]: s for s in spans}
    children = {}
    roots = []
    for s in spans:
        parent = s.get("parent", 0)
        if parent and parent in by_id:
            children.setdefault(parent, []).append(s)
        else:
            roots.append(s)
    roots.sort(key=lambda s: (s["start_ms"], s["span"]))
    for kids in children.values():
        kids.sort(key=lambda s: (s["start_ms"], s["span"]))
    events_by_span = {}
    for e in events:
        events_by_span.setdefault(e["span"], []).append(e)
    for evs in events_by_span.values():
        evs.sort(key=lambda e: e["t_ms"])

    t0 = min(s["start_ms"] for s in spans)
    t1 = max(s["end_ms"] for s in spans)
    total = max(t1 - t0, 1e-9)
    root_names = ", ".join(r["name"] for r in roots) or "?"
    out.write(f"trace {trace_id}  ({root_names}, {t1 - t0:.1f} ms)\n")

    bar_width = 30

    def bar(s):
        lead = int(bar_width * (s["start_ms"] - t0) / total)
        span_len = int(bar_width * (s["end_ms"] - s["start_ms"]) / total)
        fill = max(span_len, 1) if s["end_ms"] > s["start_ms"] else 1
        fill = min(fill, bar_width - lead) if lead < bar_width else 0
        return "|" + " " * lead + "#" * fill + \
               " " * (bar_width - lead - fill) + "|"

    def emit(s, depth, orphan=False):
        indent = "  " * (depth + 1)
        dur = s["end_ms"] - s["start_ms"]
        mark = " (orphan)" if orphan else ""
        status = "" if s["status"] == "ok" else f"  !{s['status']}"
        out.write(
            f"{indent}[{s['start_ms']:9.1f} ms +{dur:8.1f} ms] "
            f"{s['name']:<22} node {s['node']:<3} {bar(s)}{status}{mark}\n"
        )
        for e in events_by_span.get(s["span"], []):
            detail = f"  {e['detail']}" if e.get("detail") else ""
            out.write(
                f"{indent}  ev {e['t_ms']:9.1f} ms {e['name']}{detail}\n"
            )
        for child in children.get(s["span"], []):
            emit(child, depth + 1)

    for root in roots:
        orphan = bool(root.get("parent", 0)) and \
            root["parent"] not in by_id
        emit(root, 0, orphan=orphan)


def main(argv):
    path = None
    out_path = None
    only_trace = None
    i = 0
    while i < len(argv):
        arg = argv[i]
        if arg == "--out":
            i += 1
            out_path = argv[i]
        elif arg.startswith("--out="):
            out_path = arg.split("=", 1)[1]
        elif arg == "--trace":
            i += 1
            only_trace = int(argv[i])
        elif arg.startswith("--trace="):
            only_trace = int(arg.split("=", 1)[1])
        elif arg.startswith("-"):
            print(f"trace2timeline: unknown flag {arg}", file=sys.stderr)
            return 2
        elif path is None:
            path = arg
        else:
            print("trace2timeline: exactly one input file", file=sys.stderr)
            return 2
        i += 1
    if path is None:
        print(__doc__.strip(), file=sys.stderr)
        return 2

    spans, events, metas = load(path)
    out = open(out_path, "w", encoding="utf-8") if out_path else sys.stdout
    try:
        for meta in metas:
            pairs = " ".join(
                f"{k}={v}" for k, v in sorted(meta.items()) if k != "kind"
            )
            out.write(f"meta {pairs}\n")
        trace_ids = sorted({s["trace"] for s in spans})
        if only_trace is not None:
            trace_ids = [t for t in trace_ids if t == only_trace]
        for trace_id in trace_ids:
            render_trace(
                trace_id,
                [s for s in spans if s["trace"] == trace_id],
                [e for e in events if e["trace"] == trace_id],
                out,
            )
        if not trace_ids:
            out.write("(no spans)\n")
    finally:
        if out_path:
            out.close()
            print(f"trace2timeline: wrote {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
