// ct_lint self-test fixture: MUST be flagged (secret-dependent branch and
// a variable-time comparison).  Never compiled; never included from src/.
#pragma once

namespace ct_lint_fixture {

struct BadSigner {
  unsigned long long x_ = 0;  // ct-secret: x_

  bool leaks_via_branch() const {
    if (x_ > 100) return true;
    return false;
  }

  bool leaks_via_compare(unsigned long long guess) const {
    return x_ == guess;
  }
};

}  // namespace ct_lint_fixture
