// ct_lint self-test fixture: same shapes as bad_secret_branch.h but every
// finding carries a reviewed ct-ok annotation — MUST lint clean.
// Never compiled; never included from src/.
#pragma once

namespace ct_lint_fixture {

struct RevealedSigner {
  unsigned long long k_ = 0;  // ct-secret: k_

  bool public_after_reveal(unsigned long long published) const {
    return k_ == published;  // ct-ok: k_ is published by the reveal phase
  }
};

}  // namespace ct_lint_fixture
