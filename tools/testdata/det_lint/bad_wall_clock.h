// det_lint self-test fixture: MUST be flagged twice (chrono clock + time()).
// Never compiled; never included from src/.
#pragma once

#include <chrono>
#include <ctime>

namespace det_lint_fixture {

inline long bad_now_ms() {
  const auto t = std::chrono::steady_clock::now();
  return t.time_since_epoch().count();
}

inline long bad_unix_time() { return static_cast<long>(time(nullptr)); }

}  // namespace det_lint_fixture
