// det_lint self-test fixture: MUST be flagged (std::random_device).
// Never compiled; never included from src/.
#pragma once

#include <random>

namespace det_lint_fixture {

inline unsigned bad_seed() {
  std::random_device rd;
  return rd();
}

}  // namespace det_lint_fixture
