// det_lint self-test fixture: MUST be flagged (unordered-container state
// whose iteration order would leak into exported bytes).
// Never compiled; never included from src/.
#pragma once

#include <string>
#include <unordered_map>

namespace det_lint_fixture {

struct BadExporter {
  std::unordered_map<std::string, double> values;

  std::string dump() const {
    std::string out;
    for (const auto& [k, v] : values) out += k + "=" + std::to_string(v) + "\n";
    return out;
  }
};

}  // namespace det_lint_fixture
