// det_lint self-test fixture: contains banned patterns, every one carries
// an allow annotation — MUST lint clean.
// Never compiled; never included from src/.
#pragma once

#include <cstdlib>

namespace det_lint_fixture {

inline const char* reviewed_env_read() {
  return getenv("P2PCASH_FIXTURE");  // det_lint: allow: value never reaches replayed state
}

}  // namespace det_lint_fixture
