// det_lint self-test fixture: deterministic code in the house style —
// MUST lint clean.  Mentions of banned names inside comments ("use the
// seeded rng, not std::random_device") and strings must not trip the
// checker.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace det_lint_fixture {

// Good: seeded counter, ordered map, sim-time parameter.
struct CleanExporter {
  std::map<std::string, std::uint64_t> values;  // not std::unordered_map

  void record(const std::string& key, std::uint64_t sim_time_ms) {
    values[key] = sim_time_ms;
  }

  const char* describe() const {
    return "deterministic (no rand(), no system_clock reads)";
  }
};

}  // namespace det_lint_fixture
