#!/usr/bin/env python3
"""det_lint.py — determinism static check for seed-replay code.

The simulation stack guarantees that one chaos seed replays to
byte-identical traces, metrics dumps and Table-2 numbers (pinned by
chaos_test / obs_test / simnet_test).  That guarantee dies the moment
simnet-reachable code reads a nondeterminism source, so this checker bans
them outright in the scoped directories (regex+context, AST-free, same
style as ct_lint.py):

  * C/C++ randomness not derived from the seeded bn::Rng —
    rand/srand/random_device/mt19937/default_random_engine and friends;
  * wall-clock reads — std::chrono::{system,steady,high_resolution}_clock,
    time(), clock(), gettimeofday, clock_gettime (sim code must use the
    sim clock, obs code is stamped with sim-time by its callers; the one
    reviewed exception is the obs::WallClock seam in src/obs/clock.h,
    whose steady_clock reads carry `det_lint: allow` tags — it exists so
    the SAME Tracer type can run on wall time under TcpNet, and it is
    never constructed on a replay path);
  * process environment — getenv (config must flow through explicit
    parameters so two runs of one binary cannot diverge);
  * unordered associative containers — std::unordered_map/set iteration
    order is unspecified, and in export/trace code that order leaks
    straight into output bytes.  The house style is std::map/std::set.

A finding on a line ending in `// det_lint: allow` (optionally with a
reason: `// det_lint: allow: probe jitter is outside the replayed state`)
is suppressed; suppressions are for reviewed lines where the value
provably never reaches wire/trace/JSON output.  The escape-hatch policy
lives in docs/STATIC_ANALYSIS.md.

Usage:
  tools/det_lint.py              lint the tree (exit 0 clean, 1 findings)
  tools/det_lint.py --self-test  verify the checker against the planted
                                 fixtures in tools/testdata/det_lint/

Exit status: 0 = clean / self-test pass, 1 = findings, 2 = internal error.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

# Directories where seed-replay determinism is a tested guarantee: the
# simulation core, everything that runs inside it, and the observability
# stack whose dumps are byte-compared across replays.  src/sync is
# included because lock-order violation reports feed test assertions.
DET_DIRS = ("src/simnet", "src/actors", "src/overlay", "src/obs",
            "src/sync")

# Directories explicitly OUTSIDE the determinism guarantee.  This is the
# escape hatch for code whose whole point is the real world:
#   * src/transport — the real TCP transport runs on the wall clock and
#     kernel sockets BY DESIGN; its determinism story is the SimnetTransport
#     shim (actors over simnet stay seed-replayable, pinned by chaos_test).
#     Nothing in src/transport may be reached from a simnet replay path —
#     SimWorld never constructs a TcpNet.
#   * everything else here is pure computation (crypto, codec, services)
#     or test/bench scaffolding that the replay tests don't byte-compare.
# Every immediate subdirectory of src/ must appear in DET_DIRS or
# EXEMPT_DIRS — an unclassified module is an error, so new code cannot
# silently dodge the determinism decision (same policy as ct_lint's
# module manifest).
EXEMPT_DIRS = ("src/bn", "src/crypto", "src/metrics", "src/group",
               "src/sig", "src/blindsig", "src/nizk", "src/wire",
               "src/ecash", "src/verify", "src/transport", "src/baseline",
               "src/escrow",
               # src/store talks to the real filesystem (PosixVfs, mmap)
               # and measures wall-clock fsync latency by design, like
               # src/transport.  Simulation determinism is preserved by
               # MemVfs + the golden store/no-store equivalence test.
               "src/store")

ALLOW_RE = re.compile(r"//\s*det_lint:\s*allow(?::|\b)")

# (pattern, message).  Patterns run against comment/string-stripped code.
BANNED = [
    (re.compile(r"\b(?:std::)?s?rand\s*\("),
     "rand()/srand() is unseeded global state; use the caller's bn::Rng"),
    (re.compile(r"\brandom_device\b"),
     "std::random_device is nondeterministic by design; use the seeded "
     "bn::Rng"),
    (re.compile(r"\b(?:mt19937(?:_64)?|default_random_engine|minstd_rand0?"
                r"|ranlux(?:24|48)(?:_base)?|knuth_b)\b"),
     "std <random> engines bypass the seed-replay RNG; use bn::Rng"),
    (re.compile(r"\b(?:system_clock|steady_clock|high_resolution_clock)\b"),
     "wall-clock reads diverge across replays; use the sim clock"),
    (re.compile(r"\btime\s*\(\s*(?:NULL|nullptr|0|&|\))"),
     "time() reads the wall clock; use the sim clock"),
    (re.compile(r"\b(?:gettimeofday|clock_gettime|timespec_get)\s*\("),
     "wall-clock reads diverge across replays; use the sim clock"),
    (re.compile(r"\bgetenv\s*\("),
     "environment reads make two runs of one binary diverge; pass "
     "configuration explicitly"),
    (re.compile(r"\bunordered_(?:map|set|multimap|multiset)\b"),
     "unordered-container iteration order is unspecified and leaks into "
     "trace/JSON/wire bytes; use std::map/std::set"),
]


def strip_comments_and_strings(line: str) -> str:
    """Removes // comments and string/char literal contents (crude but
    sufficient for this codebase's formatting)."""
    line = re.sub(r'"(?:[^"\\]|\\.)*"', '""', line)
    line = re.sub(r"'(?:[^'\\]|\\.)*'", "''", line)
    return line.split("//")[0]


def check_file(path: Path, repo_root: Path) -> list[str]:
    findings: list[str] = []
    rel = path.relative_to(repo_root).as_posix()
    for lineno, raw in enumerate(path.read_text(encoding="utf-8").splitlines(),
                                 start=1):
        if ALLOW_RE.search(raw):
            continue
        code = strip_comments_and_strings(raw)
        if not code.strip():
            continue
        for pattern, message in BANNED:
            m = pattern.search(code)
            if m:
                findings.append(
                    f"{rel}:{lineno}: '{m.group(0).strip()}': {message} "
                    f"(or mark '// det_lint: allow: <reason>')")
    return findings


def lint_paths(paths: list[Path], repo_root: Path) -> list[str]:
    findings: list[str] = []
    for path in sorted(paths):
        findings.extend(check_file(path, repo_root))
    return findings


def check_manifest(repo_root: Path) -> list[str]:
    """Every immediate subdirectory of src/ must be classified as
    determinism-scoped or exempt; an unclassified module means nobody
    decided whether the seed-replay guarantee applies to it."""
    src = repo_root / "src"
    known = {Path(d).name for d in DET_DIRS + EXEMPT_DIRS}
    return sorted(f"src/{p.name}" for p in src.iterdir()
                  if p.is_dir() and p.name not in known)


def lint_tree(repo_root: Path) -> int:
    unclassified = check_manifest(repo_root)
    if unclassified:
        for d in unclassified:
            print(f"det_lint.py: {d} is not classified in DET_DIRS or "
                  f"EXEMPT_DIRS; add it to the scope manifest",
                  file=sys.stderr)
        return 2
    files: list[Path] = []
    for d in DET_DIRS:
        base = repo_root / d
        if not base.is_dir():
            print(f"det_lint.py: scoped directory {d} missing",
                  file=sys.stderr)
            return 2
        files.extend(p for p in base.rglob("*")
                     if p.suffix in (".h", ".cpp"))
    findings = lint_paths(files, repo_root)
    if findings:
        for f in findings:
            print(f)
        print(f"\ndet_lint.py: {len(findings)} finding(s) in "
              f"{len(files)} files", file=sys.stderr)
        return 1
    print(f"det_lint.py: clean ({len(files)} files in "
          f"{len(DET_DIRS)} scoped dirs)")
    return 0


def self_test(repo_root: Path) -> int:
    """Verifies the checker still catches what it claims to catch, against
    planted fixtures.  Ctest runs this so a lint regression (a pattern
    edit that silently stops matching) fails the build, not a code review.
    """
    fixture_dir = repo_root / "tools" / "testdata" / "det_lint"
    cases = [
        # (fixture, min_findings, must_mention)
        ("bad_random_device.h", 1, "random_device"),
        ("bad_wall_clock.h", 2, "sim clock"),
        ("bad_unordered_export.h", 1, "unordered"),
        ("allowed.h", 0, None),
        ("clean.h", 0, None),
    ]
    failures: list[str] = []
    for name, min_findings, must_mention in cases:
        path = fixture_dir / name
        if not path.is_file():
            failures.append(f"fixture missing: {path}")
            continue
        findings = check_file(path, repo_root)
        if len(findings) < min_findings:
            failures.append(
                f"{name}: expected >= {min_findings} finding(s), got "
                f"{len(findings)}")
        if min_findings == 0 and findings:
            failures.append(f"{name}: expected clean, got: {findings}")
        if must_mention and not any(must_mention in f for f in findings):
            failures.append(
                f"{name}: no finding mentions '{must_mention}': {findings}")
    if failures:
        for f in failures:
            print(f"det_lint.py self-test FAIL: {f}", file=sys.stderr)
        return 1
    print(f"det_lint.py: self-test OK ({len(cases)} fixtures)")
    return 0


def main() -> int:
    repo_root = Path(__file__).resolve().parent.parent
    if "--self-test" in sys.argv[1:]:
        return self_test(repo_root)
    if len(sys.argv) > 1:
        print(f"usage: {sys.argv[0]} [--self-test]", file=sys.stderr)
        return 2
    return lint_tree(repo_root)


if __name__ == "__main__":
    sys.exit(main())
