#!/usr/bin/env python3
"""Diff two Prometheus text-format scrapes from the obs layer.

Usage:
  tools/metrics_diff.py BEFORE.prom AFTER.prom [options]
  tools/metrics_diff.py --self-test

Parses both files as the subset of the Prometheus exposition format that
obs::MetricsRegistry::prometheus_text emits — "# HELP/# TYPE" comment
lines and "name value" sample lines — and reports, sorted by name:

  * metrics present only in AFTER  (added)
  * metrics present only in BEFORE (removed)
  * metrics whose value changed    (with the numeric delta)

Options:
  --ignore-regex RE     drop metrics whose name matches RE (repeatable);
                        typical use: timing histograms that never compare
                        equal across runs (e.g. '_ms(_bucket|_sum)?$').
  --fail-on-decrease    exit 1 if any *_total counter decreased — counters
                        are monotone, so a decrease in a later scrape of
                        the same process is an instrumentation bug.
  --self-test           run the embedded fixtures and exit.

Exit status: 0 no (failing) differences, 1 differences / decrease found,
2 usage or IO errors.  Without --fail-on-decrease the diff is purely
informational and exits 0 unless a file cannot be parsed.
"""

import io
import re
import sys


def parse(path, text, errors):
    """Returns {name: value} for every sample line."""
    samples = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) != 2:
            errors.append(f"{path}:{lineno}: expected 'name value'")
            continue
        name, raw = parts
        try:
            value = float(raw)
        except ValueError:
            errors.append(f"{path}:{lineno}: bad value {raw!r}")
            continue
        if name in samples:
            errors.append(f"{path}:{lineno}: duplicate metric {name}")
        samples[name] = value
    return samples


def fmt(value):
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.6g}"


def diff(before, after, ignore_patterns, fail_on_decrease,
         out=sys.stdout):
    def kept(name):
        return not any(p.search(name) for p in ignore_patterns)

    added = sorted(n for n in after if n not in before and kept(n))
    removed = sorted(n for n in before if n not in after and kept(n))
    changed = sorted(
        n for n in before
        if n in after and before[n] != after[n] and kept(n)
    )

    for name in added:
        print(f"+ {name} {fmt(after[name])}", file=out)
    for name in removed:
        print(f"- {name} {fmt(before[name])}", file=out)
    decreases = []
    for name in changed:
        delta = after[name] - before[name]
        sign = "+" if delta >= 0 else ""
        print(
            f"~ {name} {fmt(before[name])} -> {fmt(after[name])} "
            f"({sign}{fmt(delta)})",
            file=out,
        )
        if name.endswith("_total") and delta < 0:
            decreases.append(name)

    total = len(added) + len(removed) + len(changed)
    print(
        f"metrics_diff: {len(added)} added, {len(removed)} removed, "
        f"{len(changed)} changed",
        file=out,
    )
    if fail_on_decrease and decreases:
        for name in decreases:
            print(
                f"metrics_diff: counter {name} decreased "
                f"({fmt(before[name])} -> {fmt(after[name])})",
                file=out,
            )
        return 1
    if fail_on_decrease:
        return 0
    return 1 if total else 0


def run(before_path, after_path, ignore_patterns, fail_on_decrease):
    errors = []
    texts = []
    for path in (before_path, after_path):
        try:
            with open(path, encoding="utf-8") as f:
                texts.append(f.read())
        except OSError as e:
            print(f"metrics_diff: {e}", file=sys.stderr)
            return 2
    before = parse(before_path, texts[0], errors)
    after = parse(after_path, texts[1], errors)
    if errors:
        for e in errors[:20]:
            print(f"metrics_diff: {e}", file=sys.stderr)
        return 2
    return diff(before, after, ignore_patterns, fail_on_decrease)


# --- self-test fixtures ----------------------------------------------------

BEFORE_FIXTURE = """\
# HELP payments_total Completed payments.
# TYPE payments_total counter
payments_total 10
transport_reconnects_total 2
queue_depth 5
latency_ms_sum 12.5
"""

AFTER_FIXTURE = """\
payments_total 15
transport_reconnects_total 2
queue_depth 3
latency_ms_sum 99.25
deposits_total 4
"""

DECREASE_FIXTURE = """\
payments_total 7
transport_reconnects_total 2
queue_depth 3
latency_ms_sum 99.25
"""


def self_test():
    failures = 0

    def check(desc, before_text, after_text, ignore, fail_on_decrease,
              expected_exit, expect_in_output=(), expect_not_in=()):
        nonlocal failures
        errors = []
        before = parse("<before>", before_text, errors)
        after = parse("<after>", after_text, errors)
        out = io.StringIO()
        got = diff(before, after, [re.compile(p) for p in ignore],
                   fail_on_decrease, out=out)
        text = out.getvalue()
        ok = got == expected_exit and not errors
        for needle in expect_in_output:
            ok = ok and needle in text
        for needle in expect_not_in:
            ok = ok and needle not in text
        if not ok:
            failures += 1
            print(
                f"metrics_diff: self-test FAILED: {desc}: "
                f"exit {got} (wanted {expected_exit})",
                file=sys.stderr,
            )
            sys.stderr.write(text)

    check(
        "added/removed/changed reported sorted with deltas",
        BEFORE_FIXTURE, AFTER_FIXTURE, [], False, 1,
        expect_in_output=[
            "+ deposits_total 4",
            "~ payments_total 10 -> 15 (+5)",
            "~ queue_depth 5 -> 3 (-2)",
            "3 changed",
        ],
    )
    check(
        "identical scrapes exit 0",
        BEFORE_FIXTURE, BEFORE_FIXTURE, [], False, 0,
        expect_in_output=["0 added, 0 removed, 0 changed"],
    )
    check(
        "--ignore-regex drops noisy histograms",
        BEFORE_FIXTURE, AFTER_FIXTURE, [r"_ms(_bucket|_sum|_count)?$"],
        False, 1,
        expect_not_in=["latency_ms_sum"],
    )
    check(
        "--fail-on-decrease flags a shrinking counter",
        BEFORE_FIXTURE, DECREASE_FIXTURE, [], True, 1,
        expect_in_output=["counter payments_total decreased"],
    )
    check(
        "--fail-on-decrease ignores gauge decreases",
        BEFORE_FIXTURE, AFTER_FIXTURE, [], True, 0,
    )

    errors = []
    parse("<bad>", "oops\nname 1 2\nname nan-ish-garbage-x\n", errors)
    if len(errors) != 3:
        failures += 1
        print(
            f"metrics_diff: self-test FAILED: parser errors: {errors}",
            file=sys.stderr,
        )

    total = 6
    status = "FAIL" if failures else "ok"
    print(f"metrics_diff: self-test: {total - failures}/{total} [{status}]")
    return 1 if failures else 0


def main(argv):
    paths = []
    ignore_patterns = []
    fail_on_decrease = False
    i = 0
    while i < len(argv):
        arg = argv[i]
        if arg == "--self-test":
            return self_test()
        elif arg == "--fail-on-decrease":
            fail_on_decrease = True
        elif arg == "--ignore-regex":
            i += 1
            if i >= len(argv):
                print("metrics_diff: --ignore-regex needs a value",
                      file=sys.stderr)
                return 2
            ignore_patterns.append(re.compile(argv[i]))
        elif arg.startswith("--ignore-regex="):
            ignore_patterns.append(re.compile(arg.split("=", 1)[1]))
        elif arg.startswith("-"):
            print(f"metrics_diff: unknown flag {arg}", file=sys.stderr)
            return 2
        else:
            paths.append(arg)
        i += 1
    if len(paths) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    return run(paths[0], paths[1], ignore_patterns, fail_on_decrease)


if __name__ == "__main__":
    try:
        sys.exit(main(sys.argv[1:]))
    except BrokenPipeError:  # e.g. `metrics_diff ... | head`
        sys.exit(0)
