#!/usr/bin/env python3
"""ct_lint.py — secret-hygiene static check for the crypto core.

Declarations of secret material are annotated in-source:

    bn::BigInt x_;  // ct-secret: x_

The annotation puts the named tokens in scope for the annotating file and
its paired header/source (foo.h <-> foo.cpp).  Within that scope this
checker flags patterns that leak secrets through timing:

  * a secret token inside an if/while/for/switch condition or ternary
    (secret-dependent branching),
  * a secret token on either side of == or != (variable-time comparison),
  * in designated crypto directories, any call to memcmp/strcmp/strncmp
    (use crypto::constant_time_equal) — regardless of annotations.

A finding on a line ending in `// ct-ok` (optionally with a reason:
`// ct-ok: public after reveal`) is suppressed; suppressions are for
reviewed lines where the compared value is public by protocol design.

Only src/ is linted: tests deliberately compare extracted secrets
field-wise (double-spend extraction IS the paper's point).  Every
immediate subdirectory of src/ must appear in the module manifest below
(CRYPTO_DIRS or NONCRYPTO_DIRS) — adding a module without classifying it
is an error (exit 2), so new code cannot silently dodge the memcmp ban.

Usage:
  tools/ct_lint.py              lint the tree (exit 0 clean, 1 findings)
  tools/ct_lint.py --self-test  verify the checker against the planted
                                fixtures in tools/testdata/ct_lint/

Exit status: 0 = clean / self-test pass, 1 = findings, 2 = usage/internal
error (including an unclassified src/ module).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

# Directories whose code handles secret scalars / keys; memcmp-style calls
# are banned here outright.
CRYPTO_DIRS = ("src/crypto", "src/bn", "src/blindsig", "src/nizk",
               "src/sig", "src/escrow")

# Directories linted for annotated secrets only (no blanket memcmp ban):
# they hold protocol/infrastructure code where byte comparisons are on
# public data.  Listed explicitly so the manifest check below catches any
# new src/ module that nobody classified.
NONCRYPTO_DIRS = ("src/group", "src/ecash", "src/simnet", "src/actors",
                  "src/verify", "src/transport",
                  "src/overlay", "src/obs", "src/sync", "src/wire",
                  "src/baseline", "src/metrics",
                  # src/store handles integrity (CRC32C framing), not
                  # secrets: log payloads are the services' own snapshots
                  # and timing there leaks nothing an observer of the
                  # disk couldn't read directly.
                  "src/store")

ANNOTATION_RE = re.compile(r"//\s*ct-secret:\s*(?P<names>[A-Za-z0-9_,\s]+)")
CT_OK_RE = re.compile(r"//\s*ct-ok(?::|\b)")
BANNED_CALL_RE = re.compile(r"\b(memcmp|strcmp|strncmp)\s*\(")
CONDITION_RE = re.compile(r"\b(?:if|while|switch)\s*\((?P<cond>.*)")
FOR_RE = re.compile(r"\bfor\s*\((?P<init>[^;]*);(?P<cond>[^;]*);")


def strip_comments_and_strings(line: str) -> str:
    """Removes // comments and string/char literal contents (crude but
    sufficient for this codebase's formatting)."""
    line = re.sub(r'"(?:[^"\\]|\\.)*"', '""', line)
    line = re.sub(r"'(?:[^'\\]|\\.)*'", "''", line)
    return line.split("//")[0]


def token_re(name: str) -> re.Pattern[str]:
    return re.compile(rf"\b{re.escape(name)}\b")


def collect_annotations(files: list[Path]) -> dict[Path, set[str]]:
    """Maps each file to the secret tokens in scope for it (its own
    annotations plus its paired header/source's)."""
    own: dict[Path, set[str]] = {}
    for path in files:
        names: set[str] = set()
        for line in path.read_text(encoding="utf-8").splitlines():
            m = ANNOTATION_RE.search(line)
            if m:
                names.update(n.strip() for n in m.group("names").split(",")
                             if n.strip())
        own[path] = names

    scoped: dict[Path, set[str]] = {}
    for path in files:
        names = set(own[path])
        partner_suffix = {".h": ".cpp", ".cpp": ".h"}.get(path.suffix)
        if partner_suffix:
            partner = path.with_suffix(partner_suffix)
            names.update(own.get(partner, set()))
        scoped[path] = names
    return scoped


def check_file(path: Path, secrets: set[str], repo_root: Path) -> list[str]:
    findings: list[str] = []
    rel = path.relative_to(repo_root).as_posix()
    in_crypto_dir = rel.startswith(CRYPTO_DIRS)
    secret_res = [(name, token_re(name)) for name in sorted(secrets)]

    for lineno, raw in enumerate(path.read_text(encoding="utf-8").splitlines(),
                                 start=1):
        if CT_OK_RE.search(raw):
            continue
        code = strip_comments_and_strings(raw)
        if not code.strip():
            continue

        if in_crypto_dir:
            m = BANNED_CALL_RE.search(code)
            if m:
                findings.append(
                    f"{rel}:{lineno}: {m.group(1)}() is variable-time; "
                    f"use crypto::constant_time_equal")

        for name, pattern in secret_res:
            if not pattern.search(code):
                continue
            # Secret in a branch condition.
            cond = CONDITION_RE.search(code)
            if cond and pattern.search(cond.group("cond")):
                findings.append(
                    f"{rel}:{lineno}: secret '{name}' used in a branch "
                    f"condition (timing leak); mark '// ct-ok: <reason>' "
                    f"if the value is public here")
                continue
            forcond = FOR_RE.search(code)
            if forcond and pattern.search(forcond.group("cond")):
                findings.append(
                    f"{rel}:{lineno}: secret '{name}' bounds a loop "
                    f"(timing leak)")
                continue
            # Secret compared with == / !=.
            for cmp in re.finditer(r"[^=!<>]==[^=]|!=[^=]", code):
                window = code[max(0, cmp.start() - 40):cmp.end() + 40]
                if pattern.search(window):
                    findings.append(
                        f"{rel}:{lineno}: secret '{name}' in a "
                        f"variable-time ==/!= comparison; use "
                        f"crypto::constant_time_equal or mark "
                        f"'// ct-ok: <reason>'")
                    break
    return findings


def check_manifest(src: Path) -> list[str]:
    """Every immediate subdirectory of src/ must be classified as crypto or
    non-crypto; an unclassified module means nobody decided whether the
    memcmp ban applies to it."""
    known = {Path(d).name for d in CRYPTO_DIRS + NONCRYPTO_DIRS}
    return sorted(f"src/{p.name}" for p in src.iterdir()
                  if p.is_dir() and p.name not in known)


def self_test(repo_root: Path) -> int:
    """Verifies the checker still catches what it claims to catch, against
    planted fixtures.  Ctest runs this so a lint regression fails the
    build, not a code review."""
    fixture_dir = repo_root / "tools" / "testdata" / "ct_lint"
    files = sorted(p for p in fixture_dir.glob("*")
                   if p.suffix in (".h", ".cpp"))
    scoped = collect_annotations(files)
    cases = [
        # (fixture, min_findings, must_mention)
        ("bad_secret_branch.h", 2, "branch condition"),
        ("suppressed.h", 0, None),
    ]
    failures: list[str] = []
    for name, min_findings, must_mention in cases:
        path = fixture_dir / name
        if not path.is_file():
            failures.append(f"fixture missing: {path}")
            continue
        findings = check_file(path, scoped[path], repo_root)
        if len(findings) < min_findings:
            failures.append(
                f"{name}: expected >= {min_findings} finding(s), got "
                f"{len(findings)}")
        if min_findings == 0 and findings:
            failures.append(f"{name}: expected clean, got: {findings}")
        if must_mention and not any(must_mention in f for f in findings):
            failures.append(
                f"{name}: no finding mentions '{must_mention}': {findings}")
    if failures:
        for f in failures:
            print(f"ct_lint.py self-test FAIL: {f}", file=sys.stderr)
        return 1
    print(f"ct_lint.py: self-test OK ({len(cases)} fixtures)")
    return 0


def main() -> int:
    repo_root = Path(__file__).resolve().parent.parent
    if "--self-test" in sys.argv[1:]:
        return self_test(repo_root)
    if len(sys.argv) > 1:
        print(f"usage: {sys.argv[0]} [--self-test]", file=sys.stderr)
        return 2
    src = repo_root / "src"
    if not src.is_dir():
        print("ct_lint.py: no src/ directory found", file=sys.stderr)
        return 2
    unclassified = check_manifest(src)
    if unclassified:
        for d in unclassified:
            print(f"ct_lint.py: {d} is not classified in CRYPTO_DIRS or "
                  f"NONCRYPTO_DIRS; add it to the module manifest",
                  file=sys.stderr)
        return 2
    files = sorted(p for p in src.rglob("*") if p.suffix in (".h", ".cpp"))
    scoped = collect_annotations(files)

    all_findings: list[str] = []
    for path in files:
        all_findings.extend(check_file(path, scoped[path], repo_root))

    n_annotated = sum(1 for names in scoped.values() if names)
    if all_findings:
        for f in all_findings:
            print(f)
        print(f"\nct_lint.py: {len(all_findings)} finding(s) in "
              f"{len(files)} files", file=sys.stderr)
        return 1
    print(f"ct_lint.py: clean ({len(files)} files, "
          f"{n_annotated} with secrets in scope)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
