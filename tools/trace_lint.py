#!/usr/bin/env python3
"""Schema check for the JSONL traces written by the obs layer.

Usage:
  tools/trace_lint.py TRACE_payment.jsonl [--require-phases a,b,c]

Validates every line against the record schemas emitted by
src/obs/trace.cpp and enforces the cross-record invariants a consumer
(trace2timeline.py, the chaos-artifact dump) relies on:

  * every record is a JSON object with a known "kind" (span / event / meta);
  * spans carry trace/span/parent ids, a name, a node, start_ms <= end_ms
    and a non-empty status;
  * events carry trace/span ids, a timestamp and a name;
  * span ids are unique across the file;
  * every record's trace id is positive (0 means "untraced" and must never
    be exported).

With --require-phases, additionally checks that at least one span exists
for each named phase — the end-to-end "the trace covers every protocol
phase" acceptance gate in CI.

Exit status: 0 clean, 1 validation errors, 2 usage/IO errors.
"""

import json
import sys

SPAN_FIELDS = {
    "kind": str,
    "trace": int,
    "span": int,
    "parent": int,
    "name": str,
    "node": int,
    "start_ms": (int, float),
    "end_ms": (int, float),
    "status": str,
}
EVENT_FIELDS = {
    "kind": str,
    "trace": int,
    "span": int,
    "t_ms": (int, float),
    "name": str,
    "detail": str,
}


def check_fields(record, schema, lineno, errors):
    for key, types in schema.items():
        if key not in record:
            errors.append(f"line {lineno}: missing field '{key}'")
            continue
        if not isinstance(record[key], types):
            errors.append(
                f"line {lineno}: field '{key}' has type "
                f"{type(record[key]).__name__}"
            )
    for key in record:
        if key not in schema:
            errors.append(f"line {lineno}: unknown field '{key}'")


def lint(path, require_phases):
    errors = []
    seen_span_ids = set()
    phases_seen = set()
    spans = events = 0

    try:
        with open(path, encoding="utf-8") as f:
            lines = f.read().splitlines()
    except OSError as e:
        print(f"trace_lint: {e}", file=sys.stderr)
        return 2

    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            errors.append(f"line {lineno}: blank line")
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as e:
            errors.append(f"line {lineno}: invalid JSON ({e})")
            continue
        if not isinstance(record, dict):
            errors.append(f"line {lineno}: not a JSON object")
            continue
        kind = record.get("kind")
        if kind == "span":
            spans += 1
            check_fields(record, SPAN_FIELDS, lineno, errors)
            if isinstance(record.get("span"), int):
                if record["span"] in seen_span_ids:
                    errors.append(
                        f"line {lineno}: duplicate span id {record['span']}"
                    )
                seen_span_ids.add(record["span"])
            if isinstance(record.get("start_ms"), (int, float)) and isinstance(
                record.get("end_ms"), (int, float)
            ):
                if record["end_ms"] < record["start_ms"]:
                    errors.append(f"line {lineno}: end_ms < start_ms")
            if record.get("status") == "":
                errors.append(f"line {lineno}: empty status")
            if isinstance(record.get("name"), str):
                phases_seen.add(record["name"])
        elif kind == "event":
            events += 1
            check_fields(record, EVENT_FIELDS, lineno, errors)
        elif kind == "meta":
            # Free-form context record (seed, schedule name) prepended by
            # the chaos-artifact dump; only the kind tag is mandatory.
            pass
        else:
            errors.append(f"line {lineno}: unknown kind {kind!r}")
            continue
        trace = record.get("trace")
        if kind != "meta" and isinstance(trace, int) and trace <= 0:
            errors.append(f"line {lineno}: non-positive trace id {trace}")

    for phase in require_phases:
        if phase not in phases_seen:
            errors.append(f"required phase '{phase}' has no span")

    for err in errors[:50]:
        print(f"trace_lint: {path}: {err}", file=sys.stderr)
    if len(errors) > 50:
        print(
            f"trace_lint: {path}: ... and {len(errors) - 50} more",
            file=sys.stderr,
        )
    status = "FAIL" if errors else "ok"
    print(
        f"trace_lint: {path}: {spans} spans, {events} events, "
        f"{len(errors)} error(s) [{status}]"
    )
    return 1 if errors else 0


def main(argv):
    path = None
    require_phases = []
    i = 0
    while i < len(argv):
        arg = argv[i]
        if arg == "--require-phases":
            i += 1
            if i >= len(argv):
                print("trace_lint: --require-phases needs a value",
                      file=sys.stderr)
                return 2
            require_phases += [p for p in argv[i].split(",") if p]
        elif arg.startswith("--require-phases="):
            require_phases += [
                p for p in arg.split("=", 1)[1].split(",") if p
            ]
        elif arg.startswith("-"):
            print(f"trace_lint: unknown flag {arg}", file=sys.stderr)
            return 2
        elif path is None:
            path = arg
        else:
            print("trace_lint: exactly one input file", file=sys.stderr)
            return 2
        i += 1
    if path is None:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    return lint(path, require_phases)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
