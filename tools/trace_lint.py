#!/usr/bin/env python3
"""Schema check for the JSONL traces written by the obs layer.

Usage:
  tools/trace_lint.py TRACE_payment.jsonl [--require-phases a,b,c] [--stitch]
  tools/trace_lint.py --self-test

Validates every line against the record schemas emitted by
src/obs/trace.cpp and enforces the cross-record invariants a consumer
(trace2timeline.py, the chaos-artifact dump) relies on:

  * every record is a JSON object with a known "kind" (span / event / meta);
  * spans carry trace/span/parent ids, a name, a node, start_ms <= end_ms
    and a non-empty status;
  * events carry trace/span ids, a timestamp and a name;
  * span ids are unique across the file;
  * every record's trace id is positive (0 means "untraced" and must never
    be exported);
  * meta records may carry free-form context, but the well-known fields
    written by TraceSink::set_meta are type-checked when present:
    "transport" must be a string, "hardware_threads" a non-negative int.

With --require-phases, additionally checks that at least one span exists
for each named phase — the end-to-end "the trace covers every protocol
phase" acceptance gate in CI.

With --stitch, additionally checks the cross-node parent/child structure
that wall-clock traces over real TCP must satisfy (the wire trace
envelope restores parent context on the receiving node):

  * every span with parent != 0 has its parent span in the same file;
  * parent and child agree on the trace id;
  * a child never starts measurably before its parent
    (child.start_ms >= parent.start_ms - epsilon; --stitch-epsilon-ms,
    default 1.0, absorbs cross-thread clock reads on the same host).

--self-test runs the linter against embedded known-good and known-bad
fixtures and exits 0 only if every fixture produces the expected verdict.

Exit status: 0 clean, 1 validation errors, 2 usage/IO errors.
"""

import io
import json
import sys

SPAN_FIELDS = {
    "kind": str,
    "trace": int,
    "span": int,
    "parent": int,
    "name": str,
    "node": int,
    "start_ms": (int, float),
    "end_ms": (int, float),
    "status": str,
}
EVENT_FIELDS = {
    "kind": str,
    "trace": int,
    "span": int,
    "t_ms": (int, float),
    "name": str,
    "detail": str,
}
# Fields TraceSink::set_meta emits.  Meta records stay open-ended (the
# chaos-artifact dump adds seed/schedule keys), but when these appear
# they must have the documented types.
META_KNOWN_FIELDS = {
    "transport": str,
    "hardware_threads": int,
}


def check_fields(record, schema, lineno, errors):
    for key, types in schema.items():
        if key not in record:
            errors.append(f"line {lineno}: missing field '{key}'")
            continue
        if not isinstance(record[key], types):
            errors.append(
                f"line {lineno}: field '{key}' has type "
                f"{type(record[key]).__name__}"
            )
    for key in record:
        if key not in schema:
            errors.append(f"line {lineno}: unknown field '{key}'")


def check_stitching(span_records, epsilon_ms, errors):
    """Parent/child structure checks over the whole file (--stitch)."""
    by_id = {}
    for lineno, record in span_records:
        span_id = record.get("span")
        if isinstance(span_id, int):
            by_id[span_id] = (lineno, record)
    for lineno, record in span_records:
        parent = record.get("parent")
        if not isinstance(parent, int) or parent == 0:
            continue
        if parent not in by_id:
            errors.append(
                f"line {lineno}: orphan span {record.get('span')} "
                f"('{record.get('name')}'): parent {parent} not in file"
            )
            continue
        _, parent_rec = by_id[parent]
        if parent_rec.get("trace") != record.get("trace"):
            errors.append(
                f"line {lineno}: span {record.get('span')} trace id "
                f"{record.get('trace')} != parent's {parent_rec.get('trace')}"
            )
        child_start = record.get("start_ms")
        parent_start = parent_rec.get("start_ms")
        if isinstance(child_start, (int, float)) and isinstance(
            parent_start, (int, float)
        ):
            if child_start < parent_start - epsilon_ms:
                errors.append(
                    f"line {lineno}: span {record.get('span')} starts "
                    f"{parent_start - child_start:.3f}ms before its parent"
                )


def lint_lines(path, lines, require_phases, stitch, epsilon_ms,
               out=sys.stdout, err=sys.stderr):
    errors = []
    seen_span_ids = set()
    phases_seen = set()
    span_records = []
    spans = events = 0

    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            errors.append(f"line {lineno}: blank line")
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as e:
            errors.append(f"line {lineno}: invalid JSON ({e})")
            continue
        if not isinstance(record, dict):
            errors.append(f"line {lineno}: not a JSON object")
            continue
        kind = record.get("kind")
        if kind == "span":
            spans += 1
            check_fields(record, SPAN_FIELDS, lineno, errors)
            span_records.append((lineno, record))
            if isinstance(record.get("span"), int):
                if record["span"] in seen_span_ids:
                    errors.append(
                        f"line {lineno}: duplicate span id {record['span']}"
                    )
                seen_span_ids.add(record["span"])
            if isinstance(record.get("start_ms"), (int, float)) and isinstance(
                record.get("end_ms"), (int, float)
            ):
                if record["end_ms"] < record["start_ms"]:
                    errors.append(f"line {lineno}: end_ms < start_ms")
            if record.get("status") == "":
                errors.append(f"line {lineno}: empty status")
            if isinstance(record.get("name"), str):
                phases_seen.add(record["name"])
        elif kind == "event":
            events += 1
            check_fields(record, EVENT_FIELDS, lineno, errors)
        elif kind == "meta":
            # Free-form context record (seed, schedule name, transport
            # kind).  Only the kind tag is mandatory, but the well-known
            # fields must have the documented types when present.
            for key, types in META_KNOWN_FIELDS.items():
                if key in record and not isinstance(record[key], types):
                    errors.append(
                        f"line {lineno}: meta field '{key}' has type "
                        f"{type(record[key]).__name__}"
                    )
            if isinstance(record.get("hardware_threads"), int):
                if record["hardware_threads"] < 0:
                    errors.append(
                        f"line {lineno}: negative hardware_threads"
                    )
        else:
            errors.append(f"line {lineno}: unknown kind {kind!r}")
            continue
        trace = record.get("trace")
        if kind != "meta" and isinstance(trace, int) and trace <= 0:
            errors.append(f"line {lineno}: non-positive trace id {trace}")

    if stitch:
        check_stitching(span_records, epsilon_ms, errors)

    for phase in require_phases:
        if phase not in phases_seen:
            errors.append(f"required phase '{phase}' has no span")

    for e in errors[:50]:
        print(f"trace_lint: {path}: {e}", file=err)
    if len(errors) > 50:
        print(
            f"trace_lint: {path}: ... and {len(errors) - 50} more",
            file=err,
        )
    status = "FAIL" if errors else "ok"
    print(
        f"trace_lint: {path}: {spans} spans, {events} events, "
        f"{len(errors)} error(s) [{status}]",
        file=out,
    )
    return 1 if errors else 0


def lint(path, require_phases, stitch, epsilon_ms):
    try:
        with open(path, encoding="utf-8") as f:
            lines = f.read().splitlines()
    except OSError as e:
        print(f"trace_lint: {e}", file=sys.stderr)
        return 2
    return lint_lines(path, lines, require_phases, stitch, epsilon_ms)


# --- self-test fixtures ----------------------------------------------------

def _span(trace=1, span=1, parent=0, name="payment", node=0,
          start=0.0, end=1.0, status="ok"):
    return json.dumps({
        "kind": "span", "trace": trace, "span": span, "parent": parent,
        "name": name, "node": node, "start_ms": start, "end_ms": end,
        "status": status,
    })


SELF_TESTS = [
    # (description, lines, flags, expected exit)
    (
        "clean sim trace with meta",
        [
            '{"kind":"meta","transport":"sim","hardware_threads":8}',
            _span(span=1, name="withdraw"),
            _span(span=2, parent=1, name="assign_witness", start=0.1),
            '{"kind":"event","trace":1,"span":1,"t_ms":0.5,'
            '"name":"rpc.retry","detail":"x"}',
        ],
        {"stitch": True},
        0,
    ),
    (
        "stitched tcp trace covering phases",
        [
            '{"kind":"meta","transport":"tcp","hardware_threads":4}',
            _span(span=1, name="payment", start=0.0, end=9.0),
            _span(span=2, parent=1, name="payment_commit", node=1,
                  start=1.0, end=4.0),
            _span(span=3, parent=2, name="witness_commit", node=2,
                  start=1.5, end=3.0),
        ],
        {"stitch": True,
         "require_phases": ["payment", "payment_commit", "witness_commit"]},
        0,
    ),
    (
        "orphan server span fails --stitch",
        [
            _span(span=1, name="payment"),
            _span(span=7, parent=99, name="witness_commit", node=2),
        ],
        {"stitch": True},
        1,
    ),
    (
        "orphan passes without --stitch (schema-only mode)",
        [
            _span(span=1, name="payment"),
            _span(span=7, parent=99, name="witness_commit", node=2),
        ],
        {},
        0,
    ),
    (
        "child starting before parent fails --stitch",
        [
            _span(span=1, name="payment", start=10.0, end=20.0),
            _span(span=2, parent=1, name="payment_commit",
                  start=2.0, end=12.0),
        ],
        {"stitch": True},
        1,
    ),
    (
        "child within epsilon of parent start is ok",
        [
            _span(span=1, name="payment", start=10.0, end=20.0),
            _span(span=2, parent=1, name="payment_commit",
                  start=9.5, end=12.0),
        ],
        {"stitch": True},
        0,
    ),
    (
        "trace id mismatch across parent link fails --stitch",
        [
            _span(trace=1, span=1, name="payment"),
            _span(trace=2, span=2, parent=1, name="payment_commit"),
        ],
        {"stitch": True},
        1,
    ),
    (
        "meta with wrong transport type fails",
        ['{"kind":"meta","transport":7}', _span()],
        {},
        1,
    ),
    (
        "meta with wrong hardware_threads type fails",
        ['{"kind":"meta","transport":"tcp","hardware_threads":"8"}', _span()],
        {},
        1,
    ),
    (
        "free-form meta keys stay allowed",
        ['{"kind":"meta","seed":1234,"schedule":"chaos-a"}', _span()],
        {},
        0,
    ),
    (
        "missing required phase fails",
        [_span(name="withdraw")],
        {"require_phases": ["deposit"]},
        1,
    ),
    (
        "duplicate span id fails",
        [_span(span=5), _span(span=5, start=2.0, end=3.0)],
        {},
        1,
    ),
    (
        "end before start fails",
        [_span(start=5.0, end=1.0)],
        {},
        1,
    ),
    (
        "zero trace id fails",
        [_span(trace=0)],
        {},
        1,
    ),
]


def self_test():
    failures = 0
    for desc, lines, flags, expected in SELF_TESTS:
        out, err = io.StringIO(), io.StringIO()
        got = lint_lines(
            f"<self-test: {desc}>", lines,
            flags.get("require_phases", []),
            flags.get("stitch", False),
            flags.get("epsilon_ms", 1.0),
            out=out, err=err,
        )
        if got != expected:
            failures += 1
            print(
                f"trace_lint: self-test FAILED: {desc}: "
                f"expected exit {expected}, got {got}",
                file=sys.stderr,
            )
            sys.stderr.write(err.getvalue())
    total = len(SELF_TESTS)
    status = "FAIL" if failures else "ok"
    print(f"trace_lint: self-test: {total - failures}/{total} [{status}]")
    return 1 if failures else 0


def main(argv):
    path = None
    require_phases = []
    stitch = False
    epsilon_ms = 1.0
    i = 0
    while i < len(argv):
        arg = argv[i]
        if arg == "--self-test":
            return self_test()
        elif arg == "--stitch":
            stitch = True
        elif arg == "--require-phases":
            i += 1
            if i >= len(argv):
                print("trace_lint: --require-phases needs a value",
                      file=sys.stderr)
                return 2
            require_phases += [p for p in argv[i].split(",") if p]
        elif arg.startswith("--require-phases="):
            require_phases += [
                p for p in arg.split("=", 1)[1].split(",") if p
            ]
        elif arg == "--stitch-epsilon-ms":
            i += 1
            if i >= len(argv):
                print("trace_lint: --stitch-epsilon-ms needs a value",
                      file=sys.stderr)
                return 2
            epsilon_ms = float(argv[i])
        elif arg.startswith("--stitch-epsilon-ms="):
            epsilon_ms = float(arg.split("=", 1)[1])
        elif arg.startswith("-"):
            print(f"trace_lint: unknown flag {arg}", file=sys.stderr)
            return 2
        elif path is None:
            path = arg
        else:
            print("trace_lint: exactly one input file", file=sys.stderr)
            return 2
        i += 1
    if path is None:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    return lint(path, require_phases, stitch, epsilon_ms)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
