#!/usr/bin/env bash
# lint.sh — static-analysis gate for the p2pcash tree.
#
# Runs, in order (any failure fails the script):
#   1. ct_lint.py  — secret-hygiene check (self-test, then the tree);
#   2. det_lint.py — determinism check for simnet-reachable + obs/sync
#                    code (self-test, then the tree);
#   3. clang-tidy over first-party sources when it is available; otherwise
#      a strict-warning build (-DP2PCASH_WERROR=ON), which promotes the
#      escalated warning set (-Wconversion -Wshadow -Wold-style-cast ...)
#      to errors under plain GCC/Clang.  When the compiler is clang, that
#      build also runs the -Wthread-safety capability analysis
#      (P2PCASH_THREAD_SAFETY, on by default for clang).
#
# Usage: tools/lint.sh [build-dir]
#   build-dir: compile-commands / fallback-build directory
#              (default: build-lint)

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build-lint}"
jobs="$(nproc 2>/dev/null || echo 4)"

cd "$repo_root"

echo "== lint.sh: ct_lint.py (secret hygiene)"
python3 tools/ct_lint.py --self-test
python3 tools/ct_lint.py

echo "== lint.sh: det_lint.py (seed-replay determinism)"
python3 tools/det_lint.py --self-test
python3 tools/det_lint.py

if command -v clang-tidy >/dev/null 2>&1; then
  echo "== lint.sh: clang-tidy $(clang-tidy --version | grep -o 'version [0-9.]*') over src/ tests/ bench/ examples/"
  cmake -B "$build_dir" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  mapfile -t sources < <(git ls-files 'src/*.cpp' 'tests/*.cpp' 'bench/*.cpp' 'examples/*.cpp')
  if command -v run-clang-tidy >/dev/null 2>&1; then
    run-clang-tidy -quiet -p "$build_dir" -j "$jobs" "${sources[@]}"
  else
    clang-tidy -quiet -p "$build_dir" "${sources[@]}"
  fi
  echo "== lint.sh: clang-tidy clean"
else
  echo "== lint.sh: clang-tidy not found; falling back to -Werror build with the escalated warning set"
  cmake -B "$build_dir" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DP2PCASH_WERROR=ON >/dev/null
  cmake --build "$build_dir" -j "$jobs" >/dev/null
  echo "== lint.sh: strict-warning build clean"
fi

echo "== lint.sh: OK"
