#include "verify/worker_pool.h"

#include <algorithm>
#include <utility>

namespace p2pcash::verify {

WorkerPool::WorkerPool(std::size_t threads) {
  const std::size_t n = std::max<std::size_t>(1, threads);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

WorkerPool::~WorkerPool() {
  {
    sync::MutexLock lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void WorkerPool::submit(Task task) {
  {
    sync::MutexLock lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void WorkerPool::drain() {
  sync::MutexLock lock(mu_);
  while (!queue_.empty() || in_flight_ != 0) idle_cv_.wait(mu_);
}

void WorkerPool::worker_loop() {
  for (;;) {
    Task task;
    {
      sync::MutexLock lock(mu_);
      while (!stopping_ && queue_.empty()) work_cv_.wait(mu_);
      if (queue_.empty()) return;  // stopping_ and nothing left to run
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();  // queue lock released: the task may take service locks freely
    bool now_idle;
    {
      sync::MutexLock lock(mu_);
      --in_flight_;
      now_idle = queue_.empty() && in_flight_ == 0;
    }
    if (now_idle) idle_cv_.notify_all();
  }
}

}  // namespace p2pcash::verify
