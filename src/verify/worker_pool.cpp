#include "verify/worker_pool.h"

#include <algorithm>
#include <utility>

#include "obs/metrics_registry.h"

namespace p2pcash::verify {

WorkerPool::WorkerPool(std::size_t threads) {
  const std::size_t n = std::max<std::size_t>(1, threads);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

WorkerPool::~WorkerPool() {
  {
    sync::MutexLock lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void WorkerPool::instrument(obs::MetricsRegistry& registry,
                            const std::string& prefix,
                            std::function<double()> clock) {
  // References into the registry's node-based maps are stable for its
  // lifetime, so caching the histograms keeps the hot path free of map
  // lookups and string concatenation.
  clock_ = std::move(clock);
  queue_delay_ms_ = &registry.histogram(prefix + "queue_delay_ms");
  drain_batch_ = &registry.histogram(prefix + "drain_batch");
}

void WorkerPool::submit(Task task) {
  QueuedTask qt;
  qt.fn = std::move(task);
  if (clock_) qt.enqueued_ms = clock_();
  {
    sync::MutexLock lock(mu_);
    queue_.push_back(std::move(qt));
  }
  work_cv_.notify_one();
}

void WorkerPool::drain() {
  sync::MutexLock lock(mu_);
  while (!queue_.empty() || in_flight_ != 0) idle_cv_.wait(mu_);
}

void WorkerPool::worker_loop() {
  // A "drain batch" is the run of tasks this worker executes without ever
  // blocking on the condvar: the batch the queue naturally formed while
  // the worker was busy.  Large batches mean the pool is the bottleneck;
  // batches of 1 mean it is keeping up.
  std::size_t batch = 0;
  for (;;) {
    if (batch > 0 && drain_batch_) {
      // The queue looked empty on the last pass: the batch is over.
      // Peek without holding the histogram's lock under ours (MutexLock
      // is strictly scoped, so this is its own critical section).
      bool dry;
      {
        sync::MutexLock lock(mu_);
        dry = queue_.empty() && !stopping_;
      }
      if (dry) {
        drain_batch_->record(static_cast<double>(batch));
        batch = 0;
      }
    }
    QueuedTask task;
    {
      sync::MutexLock lock(mu_);
      while (!stopping_ && queue_.empty()) work_cv_.wait(mu_);
      if (queue_.empty()) return;  // stopping_ and nothing left to run
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    if (queue_delay_ms_ && clock_)
      queue_delay_ms_->record(clock_() - task.enqueued_ms);
    ++batch;
    task.fn();  // queue lock released: the task may take service locks freely
    bool now_idle;
    {
      sync::MutexLock lock(mu_);
      --in_flight_;
      now_idle = queue_.empty() && in_flight_ == 0;
    }
    if (now_idle) idle_cv_.notify_all();
  }
}

}  // namespace p2pcash::verify
