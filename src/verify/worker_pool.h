// worker_pool.h — a fixed-size verification worker pool.
//
// The witness hot path is embarrassingly parallel: independent payments
// touch disjoint coins, and the striped WitnessService (src/ecash/witness)
// lets concurrent sign_transcript calls proceed as long as they land on
// different stripes.  This pool is the pipeline in front of it: callers
// partition payments into batches (so the NIZK batch verifier amortizes
// the multi-exp) and submit one task per batch; `drain()` is the barrier
// at the end of a wave.
//
// Lock discipline: the queue mutex sits ABOVE the service level (kPool)
// because tasks always run with it released — a worker dequeues under the
// lock, drops it, then executes.  Submitting from inside a task or while
// holding a service lock would be flagged by the lock-order checker, which
// is intentional: both are liveness hazards (a full queue would deadlock
// against its own workers).

#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "sync/annotated.h"

namespace p2pcash::obs {
class Histogram;
class MetricsRegistry;
}  // namespace p2pcash::obs

namespace p2pcash::verify {

class WorkerPool {
 public:
  using Task = std::function<void()>;

  /// Spawns `threads` workers (at least 1).
  explicit WorkerPool(std::size_t threads);
  /// Drains outstanding work, then joins the workers.
  ~WorkerPool();
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Enqueues a task.  Tasks run in submission order per worker pickup,
  /// with no ordering guarantee across workers.
  void submit(Task task);

  /// Blocks until every submitted task has finished executing (queue empty
  /// AND no task in flight).  New submissions during a drain extend it.
  void drain();

  /// Wires the pool's dark corners into a metrics registry:
  ///   <prefix>queue_delay_ms   histogram — submit-to-dequeue latency
  ///   <prefix>drain_batch      histogram — consecutive tasks one worker
  ///                            ran without blocking (the natural batch
  ///                            the queue formed under load)
  /// `clock` stamps submissions (same seam as obs::Tracer — wall-clock
  /// under TcpNet, sim-time in tests).  Call BEFORE the first submit();
  /// the histograms are recorded with the pool lock released, so no lock
  /// ordering is introduced beyond kPool → (registry internals).
  void instrument(obs::MetricsRegistry& registry, const std::string& prefix,
                  std::function<double()> clock);

 private:
  void worker_loop();

  mutable sync::Mutex mu_{"verify.worker_pool", sync::level::kPool};
  sync::CondVar work_cv_;   // signalled on submit and shutdown
  sync::CondVar idle_cv_;   // signalled when a task retires
  struct QueuedTask {
    Task fn;
    double enqueued_ms = 0;  ///< clock at submit (0 when uninstrumented)
  };
  std::deque<QueuedTask> queue_ P2P_GUARDED_BY(mu_);
  std::size_t in_flight_ P2P_GUARDED_BY(mu_) = 0;
  bool stopping_ P2P_GUARDED_BY(mu_) = false;
  // Instrumentation seams; set once by instrument() before any submit,
  // then read-only (workers read them without the lock).
  std::function<double()> clock_;
  obs::Histogram* queue_delay_ms_ = nullptr;
  obs::Histogram* drain_batch_ = nullptr;
  std::vector<std::thread> workers_;
};

}  // namespace p2pcash::verify
