#include "sig/schnorr_sig.h"

#include "crypto/sha256.h"
#include "metrics/counters.h"

namespace p2pcash::sig {

using bn::BigInt;

namespace detail {

BigInt challenge_hash(const group::SchnorrGroup& grp, const BigInt& r_point,
                      const BigInt& y,
                      const std::vector<std::uint8_t>& message) {
  crypto::Sha256 h;
  h.update(std::string_view("p2pcash/schnorr-sig/v1"));
  auto put = [&h](const std::vector<std::uint8_t>& bytes) {
    std::uint8_t len_be[4] = {static_cast<std::uint8_t>(bytes.size() >> 24),
                              static_cast<std::uint8_t>(bytes.size() >> 16),
                              static_cast<std::uint8_t>(bytes.size() >> 8),
                              static_cast<std::uint8_t>(bytes.size())};
    h.update(std::span<const std::uint8_t>(len_be, 4));
    h.update(bytes);
  };
  put(r_point.to_bytes_be());
  put(y.to_bytes_be());
  put(message);
  auto digest = h.finalize();
  return bn::mod(BigInt::from_bytes_be(digest), grp.q());
}

}  // namespace detail

using detail::challenge_hash;

std::string PublicKey::fingerprint() const {
  auto digest = crypto::Sha256::hash(y.to_bytes_be());
  return crypto::digest_to_hex(digest).substr(0, 16);
}

KeyPair KeyPair::generate(const group::SchnorrGroup& grp, bn::Rng& rng) {
  BigInt x = grp.random_scalar(rng);
  return from_secret(grp, x);
}

KeyPair KeyPair::from_secret(const group::SchnorrGroup& grp,
                             const bn::BigInt& x) {
  metrics::ScopedSuspendOpCounting suspend;
  PublicKey pub{grp.exp_g(x)};
  return KeyPair(grp, x, std::move(pub));
}

Signature KeyPair::sign(const std::vector<std::uint8_t>& message,
                        bn::Rng& rng) const {
  metrics::count_sig();
  metrics::ScopedSuspendOpCounting suspend;
  BigInt k = grp_.random_scalar(rng);
  BigInt r_point = grp_.exp_g(k);
  BigInt e = challenge_hash(grp_, r_point, pub_.y, message);
  BigInt s = bn::mod(k + e * x_, grp_.q());
  k.wipe();  // a leaked nonce recovers x from s = k + e*x
  return Signature{std::move(e), std::move(s)};
}

bool verify(const group::SchnorrGroup& grp, const PublicKey& pk,
            const std::vector<std::uint8_t>& message, const Signature& sig) {
  metrics::count_ver();
  metrics::ScopedSuspendOpCounting suspend;
  if (sig.e.is_negative() || sig.e >= grp.q()) return false;
  if (sig.s.is_negative() || sig.s >= grp.q()) return false;
  if (!grp.is_element(pk.y)) return false;
  // R' = g^s * y^{-e} = g^s * y^{q-e}
  BigInt r_point = grp.exp2(grp.g(), sig.s, pk.y,
                            bn::mod_sub(BigInt{0}, sig.e, grp.q()));
  return challenge_hash(grp, r_point, pk.y, message) == sig.e;
}

}  // namespace p2pcash::sig
