#include "sig/batch_verify.h"

#include <map>

#include "metrics/counters.h"

namespace p2pcash::sig {

using bn::BigInt;

BatchResult batch_verify(const group::SchnorrGroup& grp,
                         std::span<const BatchItem> items) {
  metrics::count_ver(items.size());
  metrics::ScopedSuspendOpCounting suspend;
  BatchResult out;
  // One subgroup-membership exponentiation per DISTINCT key, not per item.
  std::map<BigInt, bool> member;
  for (std::size_t i = 0; i < items.size(); ++i) {
    const BatchItem& it = items[i];
    bool good = !it.sig.e.is_negative() && it.sig.e < grp.q() &&
                !it.sig.s.is_negative() && it.sig.s < grp.q();
    if (good) {
      auto [cached, inserted] = member.try_emplace(it.pk.y, false);
      if (inserted) cached->second = grp.is_element(it.pk.y);
      good = cached->second;
    }
    if (good) {
      // R' = g^s · y^{q-e}; the hash equation pins each item individually.
      BigInt r_point =
          grp.exp2(grp.g(), it.sig.s, it.pk.y,
                   bn::mod_sub(BigInt{0}, it.sig.e, grp.q()));
      good = detail::challenge_hash(grp, r_point, it.pk.y, it.message) ==
             it.sig.e;
    }
    if (!good) out.bad_indices.push_back(i);
  }
  out.ok = out.bad_indices.empty();
  return out;
}

}  // namespace p2pcash::sig
