// batch_verify.h — amortized batch verification for Schnorr signatures.
//
// The (e, s) hash-form Schnorr used here admits NO sound random-linear-
// combination batch: the verifier must recompute R' = g^s · y^{-e} for
// each signature *individually* to feed the challenge hash
// e == H(R' || y || m), and a hash equation is not a group equation that
// random combiners can collapse.  (Transmitting R instead of e would make
// signatures RLC-batchable at the cost of one extra group element each —
// see DESIGN.md §6 for why we keep the compact form.)
//
// What a batch CAN amortize:
//   * the subgroup-membership check on the public key — a full |q|-bit
//     exponentiation per verify — is deduplicated across items sharing a
//     key (the common case: one broker key across a table of entries, one
//     witness key across a batch of endorsements);
//   * the per-key fixed-base machinery in group::SchnorrGroup warms once
//     and serves every item.
// Each signature still pays its own 2-term multi-exp and hash, and every
// failure is named directly (items are independent, so "bisection" is
// exact: the offending indices fall out of the per-item checks).
//
// Accept/reject is bit-compatible with calling sig::verify per item.

#pragma once

#include <span>
#include <vector>

#include "sig/schnorr_sig.h"

namespace p2pcash::sig {

/// One signature to check.
struct BatchItem {
  PublicKey pk;
  std::vector<std::uint8_t> message;
  Signature sig;
};

/// `ok` iff every signature verifies; otherwise `bad_indices` names every
/// offending item (ascending).
struct BatchResult {
  bool ok = true;
  std::vector<std::size_t> bad_indices;
};

/// Verifies all items, deduplicating the per-key subgroup-membership
/// exponentiation.  Counts one Ver per item (Table-1 accounting is per
/// logical verification, as with the fast-exp layer).
BatchResult batch_verify(const group::SchnorrGroup& grp,
                         std::span<const BatchItem> items);

}  // namespace p2pcash::sig
