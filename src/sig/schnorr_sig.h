// schnorr_sig.h — plain Schnorr signatures over the shared group.
//
// These are the "ordinary" signatures of the paper: Sig_B on witness-range
// assignments, Sig_{M_C} on witness commitments and payment transcripts.
// (The *coins* use the partially blind Abe–Okamoto signature in blindsig/.)
//
// Scheme (Schnorr, EdDSA-shaped): sk = x in Z_q, pk = y = g^x.
//   Sign(m):  k <- Z_q*, R = g^k, e = H(R || y || m), s = k + e*x mod q.
//   Verify:   R' = g^s * y^{-e}; accept iff e == H(R' || y || m).
// Signature = (e, s): 2 scalars, compact and malleability-free.
//
// Table-1 accounting: sign() counts 1 Sig, verify() counts 1 Ver; their
// internal exponentiations/hashes are suppressed (the paper counts plain
// signatures as whole units).

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bn/bigint.h"
#include "bn/rng.h"
#include "group/schnorr_group.h"

namespace p2pcash::sig {

/// A Schnorr signature: challenge e and response s, both in Z_q.
struct Signature {
  bn::BigInt e;
  bn::BigInt s;

  friend bool operator==(const Signature&, const Signature&) = default;
};

/// Public verification key.
struct PublicKey {
  bn::BigInt y;

  /// Stable identifier: hex SHA-256 fingerprint of the key bytes.
  std::string fingerprint() const;

  friend bool operator==(const PublicKey&, const PublicKey&) = default;
};

/// Signing key pair.
class KeyPair {
 public:
  /// Generates a fresh key: x uniform in [1, q), y = g^x.
  static KeyPair generate(const group::SchnorrGroup& grp, bn::Rng& rng);
  /// Reconstructs from a known secret (tests / deterministic setups).
  static KeyPair from_secret(const group::SchnorrGroup& grp,
                             const bn::BigInt& x);

  /// Wipes the signing key x.
  ~KeyPair() { x_.wipe(); }
  KeyPair(const KeyPair&) = default;
  KeyPair& operator=(const KeyPair&) = default;
  KeyPair(KeyPair&&) noexcept = default;
  KeyPair& operator=(KeyPair&&) noexcept = default;

  const PublicKey& public_key() const { return pub_; }
  const bn::BigInt& secret() const { return x_; }

  /// Signs an arbitrary byte string.
  Signature sign(const std::vector<std::uint8_t>& message,
                 bn::Rng& rng) const;

 private:
  KeyPair(group::SchnorrGroup grp, bn::BigInt x, PublicKey pub)
      : grp_(std::move(grp)), x_(std::move(x)), pub_(std::move(pub)) {}

  group::SchnorrGroup grp_;
  bn::BigInt x_;  // ct-secret: x_
  PublicKey pub_;
};

/// Verifies `sig` on `message` under `pk`. Counts one Ver.
bool verify(const group::SchnorrGroup& grp, const PublicKey& pk,
            const std::vector<std::uint8_t>& message, const Signature& sig);

namespace detail {
/// e = H(R || y || m) — shared by verify() and the batch verifier so the
/// two paths cannot drift.  Not part of the signing API.
bn::BigInt challenge_hash(const group::SchnorrGroup& grp,
                          const bn::BigInt& r_point, const bn::BigInt& y,
                          const std::vector<std::uint8_t>& message);
}  // namespace detail

}  // namespace p2pcash::sig
