#include "transport/tcp_net.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <string>
#include <utility>

#include "obs/flight_recorder.h"
#include "obs/metrics_registry.h"
#include "wire/codec.h"

namespace p2pcash::transport {

namespace {

/// How many queued frame bytes flush_writes moves into the io staging
/// buffer per refill: bounds the time the conn-registry lock is held and
/// the memory outside the accounted queue.
constexpr std::size_t kWriteChunk = 256 * 1024;

/// Tasks one strand drain runs before re-submitting itself, so one hot
/// endpoint cannot starve the other strands sharing the worker pool.
constexpr std::size_t kStrandBatch = 64;

[[noreturn]] void throw_errno(const char* what) {
  throw std::runtime_error(std::string(what) + ": " + std::strerror(errno));
}

}  // namespace

std::vector<std::uint8_t> encode_envelope(const Message& msg) {
  wire::Writer w;
  w.put_u32(msg.from);
  w.put_u32(msg.to);
  w.put_string(msg.type);
  w.put_bytes(msg.payload);
  return w.take();
}

Message decode_envelope(std::span<const std::uint8_t> bytes) {
  wire::Reader r(bytes);
  Message msg;
  msg.from = r.get_u32();
  msg.to = r.get_u32();
  msg.type = r.get_string();
  msg.payload = r.get_bytes();
  r.expect_end();
  return msg;
}

// ---------------------------------------------------------------------------
// Internal structures
// ---------------------------------------------------------------------------

struct TcpNet::Endpoint {
  NodeId id = 0;
  simnet::Node* node = nullptr;
  std::unique_ptr<crypto::ChaChaRng> rng;  // strand-confined

  // io-thread-only listener state.  `port` is written once at attach()
  // (before the io thread exists) and read-only afterwards.
  int listen_fd = -1;
  std::uint16_t port = 0;
  bool down_io = false;

  // Strand mailbox.
  sync::Mutex mb_mu{"transport.mailbox", sync::level::kMailbox};
  std::deque<std::function<void()>> mailbox P2P_GUARDED_BY(mb_mu);
  bool drain_scheduled P2P_GUARDED_BY(mb_mu) = false;

  // Lock-free mirrors for the inbound flow-control handshake between the
  // io thread (pause) and the draining worker (resume request).
  std::atomic<std::size_t> depth{0};
  std::atomic<bool> paused{false};
  std::atomic<bool> resume_request{false};
};

struct TcpNet::OutConn {
  // One directed (from, to) connection; dialed lazily on first send.
  NodeId from = 0;
  NodeId to = 0;

  // Guarded by TcpNet::mu_ (nested structs cannot name the outer instance
  // mutex in annotations; ownership is by convention, enforced in review):
  // queue, queued_bytes, dirty.
  std::deque<std::vector<std::uint8_t>> queue;
  std::size_t queued_bytes = 0;
  bool dirty = false;
  /// Per-connection queue-depth gauge, resolved once under mu_ when the
  /// conn is created (registry level < kTransport: legal descent) and
  /// then updated lock-free wherever queued_bytes changes.
  obs::Gauge* queue_gauge = nullptr;

  // io-thread-only.
  enum class State { kIdle, kConnecting, kEstablished, kBackoff };
  State state = State::kIdle;
  int fd = -1;
  bool want_write = false;
  std::vector<std::uint8_t> io_buf;  ///< staged bytes being written
  std::size_t io_off = 0;
  simnet::SimTime prev_backoff = 0;
  std::size_t attempts = 0;
};

struct TcpNet::InConn {
  // io-thread-only: an accepted connection delivering frames to `dst`.
  int fd = -1;
  NodeId dst = 0;
  bool paused = false;
  wire::FrameDecoder decoder;

  InConn(int fd_in, NodeId dst_in, std::size_t max_frame)
      : fd(fd_in), dst(dst_in), decoder(max_frame) {}
};

struct TcpNet::Timer {
  double due_ms = 0;
  std::uint64_t seq = 0;
  NodeId node = 0;
  bool io_internal = false;  ///< run on the io thread (reconnect pacing)
  std::function<void()> fn;
};

/// std:: heap primitives build max-heaps; invert to a (due, seq) min-heap.
bool TcpNet::timer_later(const Timer& a, const Timer& b) {
  if (a.due_ms != b.due_ms) return a.due_ms > b.due_ms;
  return a.seq > b.seq;
}

struct TcpNet::AtomicStats {
  std::atomic<std::uint64_t> messages_sent{0};
  std::atomic<std::uint64_t> bytes_sent{0};
  std::atomic<std::uint64_t> messages_received{0};
  std::atomic<std::uint64_t> bytes_received{0};
  std::atomic<std::uint64_t> backpressure_drops{0};
  std::atomic<std::uint64_t> dropped_on_disconnect{0};
  std::atomic<std::uint64_t> connects{0};
  std::atomic<std::uint64_t> connect_failures{0};
  std::atomic<std::uint64_t> disconnects{0};
  std::atomic<std::uint64_t> breaker_deferrals{0};
  std::atomic<std::uint64_t> decode_errors{0};
  std::atomic<std::uint64_t> reads_paused{0};
  std::atomic<std::uint64_t> timers_fired{0};
  /// Current total outbound backlog across every connection (a gauge,
  /// not a monotonic stat): kept as a relaxed atomic so the metrics
  /// collector can read it WITHOUT taking mu_ — collectors run under the
  /// registry lock (level kRegistry) and must never climb to kTransport.
  std::atomic<std::uint64_t> queued_bytes_now{0};
};

// ---------------------------------------------------------------------------
// Construction / teardown
// ---------------------------------------------------------------------------

TcpNet::TcpNet(Options options)
    : options_(options),
      epoch_(std::chrono::steady_clock::now()),
      health_(options.breaker),
      io_rng_(options.seed ^ 0x74637069'6f726e67ULL),  // "tcpiorng"
      stats_(std::make_unique<AtomicStats>()) {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) throw_errno("epoll_create1");
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd_ < 0) throw_errno("eventfd");
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) < 0)
    throw_errno("epoll_ctl(wake)");
  setup_observability();
}

void TcpNet::setup_observability() {
  if (options_.tracer) {
    tracer_ = options_.tracer;
  } else {
    // Own a wall-clock tracer so Transport::tracer() is never null.  The
    // clock is TcpNet::now() — the same epoch the timer heap uses — so
    // span timestamps line up with timer deadlines in one timescale.
    owned_sink_ = std::make_unique<obs::TraceSink>();
    owned_sink_->set_meta(
        {"tcp", static_cast<std::uint32_t>(std::thread::hardware_concurrency())});
    owned_tracer_ = std::make_unique<obs::Tracer>(
        [this] { return now(); }, owned_sink_.get(), options_.metrics);
    tracer_ = owned_tracer_.get();
  }
  if (!options_.metrics) return;
  obs::MetricsRegistry& reg = *options_.metrics;
  io_busy_ms_ = &reg.histogram("transport_io_loop_busy_ms");
  timer_delay_ms_ = &reg.histogram("transport_timer_delay_ms");
  strand_batch_ = &reg.histogram("transport_strand_batch");
  queued_bytes_gauge_ = &reg.gauge("transport_outbound_queued_bytes");
  // Counters are mirrored from the lock-free AtomicStats: the collector
  // runs with the registry lock held and may not take mu_ (kTransport
  // ranks far above kRegistry), so everything it reads is an atomic.
  reg.register_collector([this] {
    using obs::Sample;
    const AtomicStats& a = *stats_;
    auto counter = [](const char* name,
                      const std::atomic<std::uint64_t>& v) {
      return Sample{name, static_cast<double>(v.load(std::memory_order_relaxed)),
                    Sample::Type::kCounter};
    };
    std::vector<Sample> out{
        counter("transport_messages_sent_total", a.messages_sent),
        counter("transport_bytes_sent_total", a.bytes_sent),
        counter("transport_messages_received_total", a.messages_received),
        counter("transport_bytes_received_total", a.bytes_received),
        counter("transport_backpressure_drops_total", a.backpressure_drops),
        counter("transport_dropped_on_disconnect_total",
                a.dropped_on_disconnect),
        counter("transport_connects_total", a.connects),
        counter("transport_connect_failures_total", a.connect_failures),
        counter("transport_disconnects_total", a.disconnects),
        counter("transport_breaker_deferrals_total", a.breaker_deferrals),
        counter("transport_decode_errors_total", a.decode_errors),
        counter("transport_reads_paused_total", a.reads_paused),
        counter("transport_timers_fired_total", a.timers_fired),
    };
    for (const auto& ep : endpoints_) {
      out.push_back(Sample{
          "transport_mailbox_depth_node_" + std::to_string(ep->id),
          static_cast<double>(ep->depth.load(std::memory_order_relaxed)),
          Sample::Type::kGauge});
    }
    return out;
  });
}

void TcpNet::flight_note(std::string_view name, std::string_view detail) {
  if (options_.flight) options_.flight->record(name, detail);
}

TcpNet::~TcpNet() {
  stop();
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

NodeId TcpNet::attach(simnet::Node& node) {
  if (running_.load(std::memory_order_acquire))
    throw std::logic_error("TcpNet::attach: endpoints are fixed at start()");
  auto ep = std::make_unique<Endpoint>();
  ep->id = static_cast<NodeId>(endpoints_.size());
  ep->node = &node;
  ep->rng = std::make_unique<crypto::ChaChaRng>(options_.seed * 1000003ULL +
                                                ep->id);
  node.id_ = ep->id;
  open_listener(*ep);
  endpoints_.push_back(std::move(ep));
  return endpoints_.back()->id;
}

void TcpNet::open_listener(Endpoint& ep) {
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) throw_errno("socket(listen)");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(ep.port);  // 0 on first bind: kernel picks
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    throw_errno("bind(127.0.0.1)");
  }
  if (::listen(fd, SOMAXCONN) < 0) {
    ::close(fd);
    throw_errno("listen");
  }
  if (ep.port == 0) {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
      ::close(fd);
      throw_errno("getsockname");
    }
    ep.port = ntohs(bound.sin_port);
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
    ::close(fd);
    throw_errno("epoll_ctl(listen)");
  }
  ep.listen_fd = fd;
  listen_fds_[fd] = &ep;
}

void TcpNet::start() {
  if (running_.load(std::memory_order_acquire)) return;
  stopping_.store(false, std::memory_order_release);
  pool_ = std::make_unique<verify::WorkerPool>(
      std::max<std::size_t>(1, options_.worker_threads));
  if (options_.metrics)
    pool_->instrument(*options_.metrics, "transport_pool_",
                      [this] { return now(); });
  running_.store(true, std::memory_order_release);
  io_thread_ = std::thread([this] { io_loop(); });
  // Kick strands for anything post()ed or scheduled before start.
  for (auto& ep : endpoints_) {
    bool kick = false;
    {
      sync::MutexLock lock(ep->mb_mu);
      if (!ep->mailbox.empty() && !ep->drain_scheduled) {
        ep->drain_scheduled = true;
        kick = true;
      }
    }
    if (kick) submit_drain(*ep);
  }
  io_wake();
}

void TcpNet::stop() {
  if (!running_.load(std::memory_order_acquire) && !io_thread_.joinable())
    return;
  stopping_.store(true, std::memory_order_release);
  io_wake();
  if (io_thread_.joinable()) io_thread_.join();
  // WorkerPool's destructor drains the remaining strand tasks, then joins.
  // No new messages can arrive (sockets closed) and sends are dropped, so
  // the mailboxes go quiet and the drain terminates.
  pool_.reset();
  running_.store(false, std::memory_order_release);
}

// ---------------------------------------------------------------------------
// Public API (any thread)
// ---------------------------------------------------------------------------

SimTime TcpNet::now() const {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void TcpNet::send(Message msg) {
  if (stopping_.load(std::memory_order_acquire)) return;
  if (msg.from >= endpoints_.size() || msg.to >= endpoints_.size())
    throw std::logic_error("TcpNet::send: unknown endpoint id");
  std::vector<std::uint8_t> frame;
  const auto envelope = encode_envelope(msg);
  // A traced message carries its context in the frame's wire envelope, so
  // the receiving node can stitch its server span under the sender's.
  const wire::TraceEnvelope wire_trace{msg.trace.trace, msg.trace.span};
  try {
    wire::append_frame(frame, envelope, wire_trace, options_.max_frame_bytes);
  } catch (const wire::DecodeError&) {
    // Oversized message: the peer's decoder would kill the connection.
    // Refusing here keeps the failure on the sender that caused it.
    stats_->backpressure_drops.fetch_add(1, std::memory_order_relaxed);
    if (msg.trace.valid())
      tracer_->event(msg.trace, "net.oversized_drop", msg.type);
    return;
  }
  bool wake = false;
  const std::size_t frame_bytes = frame.size();
  bool dropped = false;
  {
    sync::MutexLock lock(mu_);
    auto& slot = conns_[{msg.from, msg.to}];
    if (!slot) {
      slot = std::make_unique<OutConn>();
      slot->from = msg.from;
      slot->to = msg.to;
      if (options_.metrics)
        slot->queue_gauge = &options_.metrics->gauge(
            "transport_conn_queue_bytes_" + std::to_string(msg.from) +
            "_to_" + std::to_string(msg.to));
    }
    OutConn& conn = *slot;
    if (conn.queued_bytes + frame.size() > options_.peer_queue_limit_bytes) {
      stats_->backpressure_drops.fetch_add(1, std::memory_order_relaxed);
      dropped = true;
    } else {
      conn.queued_bytes += frame.size();
      conn.queue.push_back(std::move(frame));
      if (conn.queue_gauge)
        conn.queue_gauge->set(static_cast<double>(conn.queued_bytes));
      stats_->messages_sent.fetch_add(1, std::memory_order_relaxed);
      if (!conn.dirty) {
        conn.dirty = true;
        dirty_.push_back(&conn);
        wake = true;
      }
    }
  }
  if (dropped) {
    if (msg.trace.valid())
      tracer_->event(msg.trace, "net.backpressure_drop", msg.type);
    flight_note("net.backpressure_drop",
                std::to_string(msg.from) + "->" + std::to_string(msg.to) +
                    " " + msg.type);
    return;
  }
  stats_->queued_bytes_now.fetch_add(frame_bytes, std::memory_order_relaxed);
  if (queued_bytes_gauge_)
    queued_bytes_gauge_->set(static_cast<double>(
        stats_->queued_bytes_now.load(std::memory_order_relaxed)));
  if (wake) io_wake();
}

void TcpNet::schedule_on(NodeId node, SimTime delay_ms,
                         std::function<void()> fn) {
  if (node >= endpoints_.size())
    throw std::logic_error("TcpNet::schedule_on: unknown endpoint id");
  {
    sync::MutexLock lock(timer_mu_);
    timers_.push_back(Timer{now() + std::max<SimTime>(0, delay_ms),
                            timer_seq_++, node, false, std::move(fn)});
    std::push_heap(timers_.begin(), timers_.end(), timer_later);
  }
  io_wake();
}

void TcpNet::post(NodeId node, std::function<void()> fn) {
  if (node >= endpoints_.size())
    throw std::logic_error("TcpNet::post: unknown endpoint id");
  dispatch(node, std::move(fn));
}

bn::Rng& TcpNet::rng(NodeId node) { return *endpoints_.at(node)->rng; }

std::uint16_t TcpNet::port(NodeId node) const {
  return endpoints_.at(node)->port;
}

void TcpNet::set_down(NodeId node, bool down) {
  {
    sync::MutexLock lock(mu_);
    down_requests_.emplace_back(node, down);
  }
  io_wake();
}

TcpNet::Stats TcpNet::stats() const {
  Stats s;
  const auto& a = *stats_;
  s.messages_sent = a.messages_sent.load(std::memory_order_relaxed);
  s.bytes_sent = a.bytes_sent.load(std::memory_order_relaxed);
  s.messages_received = a.messages_received.load(std::memory_order_relaxed);
  s.bytes_received = a.bytes_received.load(std::memory_order_relaxed);
  s.backpressure_drops = a.backpressure_drops.load(std::memory_order_relaxed);
  s.dropped_on_disconnect =
      a.dropped_on_disconnect.load(std::memory_order_relaxed);
  s.connects = a.connects.load(std::memory_order_relaxed);
  s.connect_failures = a.connect_failures.load(std::memory_order_relaxed);
  s.disconnects = a.disconnects.load(std::memory_order_relaxed);
  s.breaker_deferrals = a.breaker_deferrals.load(std::memory_order_relaxed);
  s.decode_errors = a.decode_errors.load(std::memory_order_relaxed);
  s.reads_paused = a.reads_paused.load(std::memory_order_relaxed);
  s.timers_fired = a.timers_fired.load(std::memory_order_relaxed);
  return s;
}

// ---------------------------------------------------------------------------
// Strand machinery
// ---------------------------------------------------------------------------

void TcpNet::dispatch(NodeId node, std::function<void()> fn) {
  Endpoint& ep = *endpoints_[node];
  bool do_submit = false;
  {
    sync::MutexLock lock(ep.mb_mu);
    ep.mailbox.push_back(std::move(fn));
    ep.depth.fetch_add(1, std::memory_order_relaxed);
    if (!ep.drain_scheduled && pool_) {
      ep.drain_scheduled = true;
      do_submit = true;
    }
  }
  if (do_submit) submit_drain(ep);
}

void TcpNet::submit_drain(Endpoint& ep) {
  pool_->submit([this, &ep] { drain_strand(ep); });
}

void TcpNet::drain_strand(Endpoint& ep) {
  std::size_t processed = 0;
  bool resubmit = false;
  for (;;) {
    std::function<void()> task;
    {
      sync::MutexLock lock(ep.mb_mu);
      if (ep.mailbox.empty()) {
        ep.drain_scheduled = false;
        break;
      }
      if (processed >= kStrandBatch) {
        resubmit = true;  // drain_scheduled stays true: we own the strand
        break;
      }
      task = std::move(ep.mailbox.front());
      ep.mailbox.pop_front();
    }
    const std::size_t depth =
        ep.depth.fetch_sub(1, std::memory_order_relaxed) - 1;
    task();
    ++processed;
    if (depth <= options_.mailbox_low_watermark &&
        ep.paused.load(std::memory_order_acquire)) {
      if (!ep.resume_request.exchange(true, std::memory_order_acq_rel))
        io_wake();
    }
  }
  if (strand_batch_ && processed > 0)
    strand_batch_->record(static_cast<double>(processed));
  if (resubmit) submit_drain(ep);
}

// ---------------------------------------------------------------------------
// io thread
// ---------------------------------------------------------------------------

void TcpNet::io_wake() {
  const std::uint64_t one = 1;
  // A full eventfd counter (impossible here) or a race with close is
  // harmless: the io loop re-checks all work sources every iteration.
  [[maybe_unused]] auto n = ::write(wake_fd_, &one, sizeof(one));
}

int TcpNet::timeout_to_next_timer_ms() {
  sync::MutexLock lock(timer_mu_);
  if (timers_.empty()) return -1;
  const double delta = timers_.front().due_ms - now();
  if (delta <= 0) return 0;
  return static_cast<int>(std::min(delta + 1.0, 60'000.0));
}

void TcpNet::fire_due_timers() {
  std::vector<Timer> due;
  {
    sync::MutexLock lock(timer_mu_);
    while (!timers_.empty() && timers_.front().due_ms <= now()) {
      std::pop_heap(timers_.begin(), timers_.end(), timer_later);
      due.push_back(std::move(timers_.back()));
      timers_.pop_back();
    }
  }
  const double fired_at = due.empty() ? 0 : now();
  for (auto& t : due) {
    stats_->timers_fired.fetch_add(1, std::memory_order_relaxed);
    // How late the heap ran this timer: epoll wakeup slop + io-loop load.
    if (timer_delay_ms_)
      timer_delay_ms_->record(std::max(0.0, fired_at - t.due_ms));
    if (t.io_internal) {
      t.fn();  // reconnect pacing: runs right here on the io thread
    } else {
      dispatch(t.node, std::move(t.fn));
    }
  }
}

void TcpNet::io_loop() {
  std::array<epoll_event, 64> events;
  // Busy time per iteration: everything between an epoll_wait returning
  // and the next one starting.  Rising percentiles here mean the single
  // io thread is becoming the bottleneck (the histogram ROADMAP item 5's
  // load generator watches).
  double busy_since = -1;
  while (!stopping_.load(std::memory_order_acquire)) {
    for (auto& ep : endpoints_) {
      if (ep->resume_request.exchange(false, std::memory_order_acq_rel) &&
          ep->paused.load(std::memory_order_acquire))
        resume_reads(*ep);
    }
    service_dirty_conns();
    fire_due_timers();
    const int timeout = timeout_to_next_timer_ms();
    if (io_busy_ms_ && busy_since >= 0)
      io_busy_ms_->record(now() - busy_since);
    const int n =
        ::epoll_wait(epoll_fd_, events.data(),
                     static_cast<int>(events.size()), timeout);
    busy_since = io_busy_ms_ ? now() : -1;
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll fd gone: shutting down
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[static_cast<std::size_t>(i)].data.fd;
      const std::uint32_t ev = events[static_cast<std::size_t>(i)].events;
      if (fd == wake_fd_) {
        std::uint64_t drained = 0;
        [[maybe_unused]] auto r = ::read(wake_fd_, &drained, sizeof(drained));
        continue;
      }
      if (auto it = listen_fds_.find(fd); it != listen_fds_.end()) {
        on_accept(*it->second);
        continue;
      }
      if (auto it = out_fds_.find(fd); it != out_fds_.end()) {
        OutConn& conn = *it->second;
        if (ev & (EPOLLERR | EPOLLHUP)) {
          conn_failed(conn, conn.state == OutConn::State::kEstablished);
          continue;
        }
        if (conn.state == OutConn::State::kConnecting && (ev & EPOLLOUT)) {
          on_connect_writable(conn);
          continue;
        }
        if (conn.state == OutConn::State::kEstablished) {
          if (ev & EPOLLIN) {
            // The protocol is one-way per connection; data only ever
            // appears here as an EOF/reset indicator.
            std::uint8_t sink[256];
            const ssize_t r = ::recv(conn.fd, sink, sizeof(sink), 0);
            if (r == 0 || (r < 0 && errno != EAGAIN && errno != EWOULDBLOCK)) {
              conn_failed(conn, true);
              continue;
            }
          }
          if (ev & EPOLLOUT) flush_writes(conn);
        }
        continue;
      }
      if (auto it = in_fds_.find(fd); it != in_fds_.end()) {
        InConn& conn = *it->second;
        if (ev & (EPOLLERR | EPOLLHUP)) {
          close_in_conn(conn);
          continue;
        }
        if (ev & EPOLLIN) on_readable(conn);
        continue;
      }
      // Stale event for an fd closed earlier in this batch: ignore.
    }
  }
  close_all_io();
}

void TcpNet::service_dirty_conns() {
  std::vector<OutConn*> dirty;
  std::vector<std::pair<NodeId, bool>> downs;
  {
    sync::MutexLock lock(mu_);
    dirty.swap(dirty_);
    for (OutConn* c : dirty) c->dirty = false;
    downs.swap(down_requests_);
  }
  for (const auto& [node, down] : downs) apply_down(node, down);
  for (OutConn* c : dirty) {
    switch (c->state) {
      case OutConn::State::kIdle:
        try_dial(*c);
        break;
      case OutConn::State::kEstablished:
        flush_writes(*c);
        break;
      case OutConn::State::kConnecting:
      case OutConn::State::kBackoff:
        break;  // in-flight machinery will pick the queue up
    }
  }
}

void TcpNet::try_dial(OutConn& conn) {
  {
    sync::MutexLock lock(mu_);
    if (conn.queue.empty() && conn.io_buf.empty()) return;
  }
  if (!health_.allow(conn.to, now())) {
    // Breaker open: check back when it may admit a half-open probe.
    stats_->breaker_deferrals.fetch_add(1, std::memory_order_relaxed);
    conn.state = OutConn::State::kBackoff;
    const SimTime delay =
        options_.reconnect.next_backoff(conn.prev_backoff, io_rng_);
    conn.prev_backoff = delay;
    sync::MutexLock lock(timer_mu_);
    timers_.push_back(Timer{now() + delay, timer_seq_++, conn.to, true,
                            [this, &conn] {
                              conn.state = OutConn::State::kIdle;
                              try_dial(conn);
                            }});
    std::push_heap(timers_.begin(), timers_.end(), timer_later);
    return;
  }
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    conn_failed(conn, false);
    return;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(endpoints_[conn.to]->port);
  const int rc =
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  if (rc == 0 || errno == EINPROGRESS) {
    conn.fd = fd;
    conn.state = OutConn::State::kConnecting;
    out_fds_[fd] = &conn;
    epoll_event ev{};
    ev.events = EPOLLOUT;
    ev.data.fd = fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
    if (rc == 0) conn_established(conn);
    return;
  }
  ::close(fd);
  conn_failed(conn, false);
}

void TcpNet::on_connect_writable(OutConn& conn) {
  int err = 0;
  socklen_t len = sizeof(err);
  if (::getsockopt(conn.fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0 || err != 0) {
    conn_failed(conn, false);
    return;
  }
  conn_established(conn);
}

void TcpNet::conn_established(OutConn& conn) {
  conn.state = OutConn::State::kEstablished;
  conn.want_write = false;
  conn.prev_backoff = 0;
  conn.attempts = 0;
  stats_->connects.fetch_add(1, std::memory_order_relaxed);
  flight_note("net.connect",
              std::to_string(conn.from) + "->" + std::to_string(conn.to));
  health_.record_success(conn.to);
  epoll_event ev{};
  ev.events = EPOLLIN;  // EOF watch; flush_writes arms EPOLLOUT as needed
  ev.data.fd = conn.fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
  flush_writes(conn);
}

void TcpNet::conn_failed(OutConn& conn, bool was_established) {
  if (conn.fd >= 0) {
    out_fds_.erase(conn.fd);
    ::close(conn.fd);
    conn.fd = -1;
  }
  // A partial frame may have left with the old socket; the rest of the
  // staging buffer is unframeable garbage to a fresh connection.
  conn.io_buf.clear();
  conn.io_off = 0;
  conn.want_write = false;
  if (was_established) {
    stats_->disconnects.fetch_add(1, std::memory_order_relaxed);
    flight_note("net.disconnect",
                std::to_string(conn.from) + "->" + std::to_string(conn.to));
  } else {
    stats_->connect_failures.fetch_add(1, std::memory_order_relaxed);
  }
  health_.record_failure(conn.to, now());
  conn.attempts += 1;
  if (conn.attempts >= options_.reconnect.max_attempts) {
    // Attempt budget exhausted for this outage: shed the queue (the actors'
    // retry layer owns end-to-end delivery) and go quiet until a new send.
    std::size_t flushed = 0;
    std::size_t flushed_bytes = 0;
    {
      sync::MutexLock lock(mu_);
      flushed = conn.queue.size();
      flushed_bytes = conn.queued_bytes;
      conn.queue.clear();
      conn.queued_bytes = 0;
      if (conn.queue_gauge) conn.queue_gauge->set(0);
    }
    stats_->queued_bytes_now.fetch_sub(flushed_bytes,
                                       std::memory_order_relaxed);
    stats_->dropped_on_disconnect.fetch_add(flushed,
                                            std::memory_order_relaxed);
    flight_note("net.queue_shed",
                std::to_string(conn.from) + "->" + std::to_string(conn.to) +
                    " frames=" + std::to_string(flushed));
    conn.state = OutConn::State::kIdle;
    conn.attempts = 0;
    conn.prev_backoff = 0;
    return;
  }
  conn.state = OutConn::State::kBackoff;
  const SimTime delay =
      options_.reconnect.next_backoff(conn.prev_backoff, io_rng_);
  conn.prev_backoff = delay;
  sync::MutexLock lock(timer_mu_);
  timers_.push_back(Timer{now() + delay, timer_seq_++, conn.to, true,
                          [this, &conn] {
                            conn.state = OutConn::State::kIdle;
                            try_dial(conn);
                          }});
  std::push_heap(timers_.begin(), timers_.end(), timer_later);
}

void TcpNet::flush_writes(OutConn& conn) {
  for (;;) {
    if (conn.io_off == conn.io_buf.size()) {
      conn.io_buf.clear();
      conn.io_off = 0;
      std::size_t moved = 0;
      {
        sync::MutexLock lock(mu_);
        while (!conn.queue.empty() && conn.io_buf.size() < kWriteChunk) {
          auto& frame = conn.queue.front();
          conn.io_buf.insert(conn.io_buf.end(), frame.begin(), frame.end());
          conn.queued_bytes -= frame.size();
          moved += frame.size();
          conn.queue.pop_front();
        }
        if (moved > 0 && conn.queue_gauge)
          conn.queue_gauge->set(static_cast<double>(conn.queued_bytes));
      }
      if (moved > 0) {
        stats_->queued_bytes_now.fetch_sub(moved, std::memory_order_relaxed);
        if (queued_bytes_gauge_)
          queued_bytes_gauge_->set(static_cast<double>(
              stats_->queued_bytes_now.load(std::memory_order_relaxed)));
      }
    }
    if (conn.io_buf.empty()) {
      if (conn.want_write) {
        conn.want_write = false;
        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.fd = conn.fd;
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
      }
      return;
    }
    const ssize_t n =
        ::send(conn.fd, conn.io_buf.data() + conn.io_off,
               conn.io_buf.size() - conn.io_off, MSG_NOSIGNAL);
    if (n > 0) {
      conn.io_off += static_cast<std::size_t>(n);
      stats_->bytes_sent.fetch_add(static_cast<std::uint64_t>(n),
                                   std::memory_order_relaxed);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!conn.want_write) {
        conn.want_write = true;
        epoll_event ev{};
        ev.events = EPOLLIN | EPOLLOUT;
        ev.data.fd = conn.fd;
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
      }
      return;
    }
    if (n < 0 && errno == EINTR) continue;
    conn_failed(conn, true);
    return;
  }
}

void TcpNet::on_accept(Endpoint& ep) {
  for (;;) {
    const int fd =
        ::accept4(ep.listen_fd, nullptr, nullptr,
                  SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN / transient: back to epoll
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn =
        std::make_unique<InConn>(fd, ep.id, options_.max_frame_bytes);
    epoll_event ev{};
    ev.data.fd = fd;
    if (ep.paused.load(std::memory_order_acquire)) {
      conn->paused = true;
      ev.events = 0;  // registered but muted until the strand drains
    } else {
      ev.events = EPOLLIN;
    }
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
    in_fds_[fd] = std::move(conn);
  }
}

void TcpNet::on_readable(InConn& conn) {
  Endpoint& ep = *endpoints_[conn.dst];
  if (ep.depth.load(std::memory_order_acquire) >
      options_.mailbox_high_watermark) {
    pause_reads(ep);
    return;
  }
  std::array<std::uint8_t, 64 * 1024> buf;
  for (;;) {
    const ssize_t n = ::recv(conn.fd, buf.data(), buf.size(), 0);
    if (n == 0) {
      close_in_conn(conn);
      return;
    }
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      close_in_conn(conn);
      return;
    }
    stats_->bytes_received.fetch_add(static_cast<std::uint64_t>(n),
                                     std::memory_order_relaxed);
    try {
      conn.decoder.feed(
          std::span<const std::uint8_t>(buf.data(),
                                        static_cast<std::size_t>(n)));
    } catch (const wire::DecodeError&) {
      stats_->decode_errors.fetch_add(1, std::memory_order_relaxed);
      flight_note("net.decode_error", "node=" + std::to_string(conn.dst));
      close_in_conn(conn);
      return;
    }
    while (auto frame = conn.decoder.next_frame()) {
      Message msg;
      try {
        msg = decode_envelope(frame->payload);
      } catch (const wire::DecodeError&) {
        stats_->decode_errors.fetch_add(1, std::memory_order_relaxed);
        flight_note("net.decode_error", "node=" + std::to_string(conn.dst));
        close_in_conn(conn);
        return;
      }
      // Restore the trace context the sender put on the wire, so the
      // handler's server span lands in the sender's trace.
      msg.trace.trace = frame->trace.trace;
      msg.trace.span = frame->trace.span;
      if (msg.to != conn.dst || msg.from >= endpoints_.size()) {
        // Envelope decoded but addressed nonsense: hostile or confused
        // peer.  Drop the message, keep the connection.
        stats_->decode_errors.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      stats_->messages_received.fetch_add(1, std::memory_order_relaxed);
      simnet::Node* node = ep.node;
      dispatch(conn.dst,
               [node, m = std::move(msg)] { node->on_message(m); });
    }
    if (ep.depth.load(std::memory_order_acquire) >
        options_.mailbox_high_watermark) {
      pause_reads(ep);
      return;
    }
  }
}

void TcpNet::close_in_conn(InConn& conn) {
  const int fd = conn.fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  in_fds_.erase(fd);  // destroys conn — do not touch it past this line
}

void TcpNet::pause_reads(Endpoint& ep) {
  ep.paused.store(true, std::memory_order_release);
  stats_->reads_paused.fetch_add(1, std::memory_order_relaxed);
  flight_note("net.reads_paused", "node=" + std::to_string(ep.id));
  for (auto& [fd, conn] : in_fds_) {
    if (conn->dst != ep.id || conn->paused) continue;
    conn->paused = true;
    epoll_event ev{};
    ev.events = 0;
    ev.data.fd = fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev);
  }
  // The strand may have drained between our depth check and the pause
  // flag becoming visible; re-check so the resume request cannot be lost.
  if (ep.depth.load(std::memory_order_acquire) <=
      options_.mailbox_low_watermark)
    resume_reads(ep);
}

void TcpNet::resume_reads(Endpoint& ep) {
  ep.paused.store(false, std::memory_order_release);
  for (auto& [fd, conn] : in_fds_) {
    if (conn->dst != ep.id || !conn->paused) continue;
    conn->paused = false;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev);
  }
}

void TcpNet::apply_down(NodeId node, bool down) {
  if (node >= endpoints_.size()) return;
  Endpoint& ep = *endpoints_[node];
  if (down == ep.down_io) return;
  ep.down_io = down;
  flight_note(down ? "net.node_down" : "net.node_up",
              "node=" + std::to_string(node));
  if (down) {
    if (ep.listen_fd >= 0) {
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, ep.listen_fd, nullptr);
      listen_fds_.erase(ep.listen_fd);
      ::close(ep.listen_fd);
      ep.listen_fd = -1;
    }
    for (auto it = in_fds_.begin(); it != in_fds_.end();) {
      if (it->second->dst == node) {
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, it->first, nullptr);
        ::close(it->first);
        it = in_fds_.erase(it);
      } else {
        ++it;
      }
    }
    std::vector<OutConn*> touching;
    {
      sync::MutexLock lock(mu_);
      for (auto& [key, conn] : conns_)
        if (key.first == node || key.second == node) touching.push_back(
            conn.get());
    }
    for (OutConn* conn : touching) {
      if (conn->from == node) {
        // The "crashed" endpoint: silently lose its socket and queue.
        if (conn->fd >= 0) {
          out_fds_.erase(conn->fd);
          ::close(conn->fd);
          conn->fd = -1;
        }
        conn->io_buf.clear();
        conn->io_off = 0;
        conn->want_write = false;
        conn->state = OutConn::State::kIdle;
        conn->attempts = 0;
        conn->prev_backoff = 0;
        std::size_t flushed = 0;
        std::size_t flushed_bytes = 0;
        {
          sync::MutexLock lock(mu_);
          flushed = conn->queue.size();
          flushed_bytes = conn->queued_bytes;
          conn->queue.clear();
          conn->queued_bytes = 0;
          if (conn->queue_gauge) conn->queue_gauge->set(0);
        }
        stats_->queued_bytes_now.fetch_sub(flushed_bytes,
                                           std::memory_order_relaxed);
        stats_->dropped_on_disconnect.fetch_add(flushed,
                                                std::memory_order_relaxed);
      } else if (conn->state == OutConn::State::kConnecting ||
                 conn->state == OutConn::State::kEstablished) {
        // Peers talking to the crashed node: sever now so they enter the
        // reconnect path instead of waiting for a kernel timeout.
        conn_failed(*conn, conn->state == OutConn::State::kEstablished);
      }
    }
  } else {
    try {
      open_listener(ep);
    } catch (const std::runtime_error&) {
      // Port momentarily unavailable: stay down; a later set_down(false)
      // can retry.  (SO_REUSEADDR makes this effectively unreachable.)
      ep.down_io = true;
    }
  }
}

void TcpNet::close_all_io() {
  for (auto& [fd, ep] : listen_fds_) {
    ::close(fd);
    ep->listen_fd = -1;
  }
  listen_fds_.clear();
  for (auto& [fd, conn] : in_fds_) ::close(fd);
  in_fds_.clear();
  std::vector<OutConn*> all;
  {
    sync::MutexLock lock(mu_);
    for (auto& [key, conn] : conns_) all.push_back(conn.get());
  }
  for (OutConn* conn : all) {
    if (conn->fd >= 0) {
      ::close(conn->fd);
      conn->fd = -1;
    }
    conn->state = OutConn::State::kIdle;
  }
  out_fds_.clear();
}

}  // namespace p2pcash::transport
