// transport.h — the seam between protocol actors and the network.
//
// The actors in src/actors speak a UDP-like typed-message discipline:
// fire-and-forget send, per-RPC timers, loss handled by retry/failover.
// This interface captures exactly the services they consume, so the same
// BrokerActor/MerchantActor/ClientActor code runs over
//
//   (a) SimnetTransport (simnet_transport.h) — a zero-cost shim over the
//       deterministic simnet::Network.  Every call forwards verbatim to
//       the objects the actors used to touch directly, so deterministic
//       tests, chaos schedules and golden traces stay byte-identical; and
//   (b) TcpNet (tcp_net.h) — a real epoll-based TCP io-loop with
//       length-prefixed framing, per-peer outbound queues, reconnection,
//       and a worker-thread pool delivering messages on per-endpoint
//       strands — real payments/sec on real cores.
//
// Contract every implementation must honor (the actors are written
// against it):
//   * send() is fire-and-forget and may silently lose messages — like UDP
//     to a dead host.  The actors' retry discipline supplies reliability.
//   * All callbacks for one endpoint — on_message deliveries, timers from
//     schedule_on(), tasks from post() — are mutually serialized (a
//     "strand").  Actor state therefore needs no locking of its own.
//     Nothing is serialized *across* endpoints: two different actors may
//     run concurrently, which is where the multicore throughput comes
//     from on the TCP implementation.
//   * now() is milliseconds on the transport's clock (virtual sim-time or
//     wall-clock since start); timers from schedule_on() fire on it.
//   * rng(node) returns a generator only ever touched from `node`'s
//     strand (the simnet implementation returns the network's shared
//     stream — safe there because the whole simulation is one thread, and
//     required for byte-identical replay of existing seeds).

#pragma once

#include <functional>

#include "bn/rng.h"
#include "obs/trace.h"
#include "simnet/net.h"

namespace p2pcash::transport {

using simnet::Message;
using simnet::NodeId;
using simnet::SimTime;

class Transport {
 public:
  virtual ~Transport();

  /// Registers an endpoint and assigns its NodeId.  Implementations may
  /// restrict when this is legal (TcpNet: only before start()).
  virtual NodeId attach(simnet::Node& node) = 0;

  /// Sends msg.from -> msg.to.  Fire-and-forget; may drop.
  virtual void send(Message msg) = 0;

  /// Current time in milliseconds on this transport's clock.
  virtual SimTime now() const = 0;

  /// Runs `fn` on `node`'s strand after `delay_ms` (>= 0).
  virtual void schedule_on(NodeId node, SimTime delay_ms,
                           std::function<void()> fn) = 0;

  /// Runs `fn` on `node`'s strand as soon as possible.  This is how code
  /// *outside* an actor (benches, runtime drivers) safely calls into it.
  virtual void post(NodeId node, std::function<void()> fn) = 0;

  /// RNG for `node`'s strand (retry jitter, cost sampling).
  virtual bn::Rng& rng(NodeId node) = 0;

  /// The tracer observing this transport, or nullptr when tracing is off.
  virtual obs::Tracer* tracer() const = 0;
};

}  // namespace p2pcash::transport
