// tcp_net.h — the real Transport: an epoll TCP io-loop plus a worker pool.
//
// One TcpNet hosts many endpoints (broker, merchants, clients) in one
// process, each with its own loopback listen socket; every message between
// them crosses a real kernel TCP connection with length-prefixed framing
// (src/wire/framing).  The paper's evaluation assumes genuinely concurrent
// peers — this is the piece that lets the same actor code exhibit real
// multicore payments/sec instead of simulated milliseconds.
//
// Threading model (see DESIGN.md "Transport architecture"):
//   * ONE io thread owns every file descriptor: epoll, nonblocking
//     accept/connect, socket reads/writes, and the timer heap deadline.
//     No other thread touches an fd.
//   * A verify::WorkerPool of `worker_threads` executes endpoint strands:
//     decoded messages, fired timers and post()ed tasks for one endpoint
//     run strictly serialized, so actor handlers need no locks of their
//     own; different endpoints run concurrently.
//   * send() may be called from any thread: it frames the message and
//     appends it to the (from,to) connection's outbound queue, then wakes
//     the io thread via eventfd.
//
// Reliability model is deliberately UDP-like, matching what the actors'
// retry/failover discipline was built for: a send may be silently lost
// when the peer is down, the queue cap is hit, or a connection dies with
// bytes in flight.  The transport's job is to *reconnect* (paced by the
// same RetryPolicy backoff the actors use, gated by a per-peer PeerHealth
// breaker) and to keep memory bounded, not to guarantee delivery.
//
// Backpressure, both directions:
//   * outbound: each directed connection carries at most
//     `peer_queue_limit_bytes` of queued frames; sends past the cap are
//     dropped and counted (backpressure_drops).  A socket that stops
//     accepting bytes (slow peer) therefore cannot grow our memory.
//   * inbound: when an endpoint's strand mailbox exceeds
//     `mailbox_high_watermark` tasks, the io thread stops reading that
//     endpoint's sockets (EPOLLIN unsubscribed) until the strand drains
//     below `mailbox_low_watermark` — the kernel receive window then
//     fills and the *sender's* queue takes the pressure, end to end.
//
// Linux-only (epoll + eventfd), like the rest of the accelerated path.

#pragma once

#include <atomic>
#include <deque>
#include <map>
#include <memory>
#include <string_view>
#include <thread>
#include <vector>

#include "actors/retry.h"
#include "crypto/chacha.h"
#include "sync/annotated.h"
#include "transport/transport.h"
#include "verify/worker_pool.h"
#include "wire/framing.h"

namespace p2pcash::obs {
class FlightRecorder;
class Gauge;
class Histogram;
class MetricsRegistry;
}  // namespace p2pcash::obs

namespace p2pcash::transport {

/// Canonical envelope bytes for one Message (from, to, type, payload) —
/// what actually travels inside a frame.  Exposed for tests.
std::vector<std::uint8_t> encode_envelope(const Message& msg);
/// Inverse; throws wire::DecodeError on malformed input.
Message decode_envelope(std::span<const std::uint8_t> bytes);

class TcpNet final : public Transport {
 public:
  struct Options {
    /// Strand-executor threads (the knob the throughput bench sweeps).
    std::size_t worker_threads = 1;
    /// Seed for the per-endpoint RNG streams (retry jitter, cost models).
    std::uint64_t seed = 1;
    std::size_t max_frame_bytes = wire::kDefaultMaxFrameBytes;
    /// Outbound per-connection queue cap; sends past it are dropped.
    std::size_t peer_queue_limit_bytes = std::size_t{4} << 20;
    /// Inbound flow control thresholds (strand mailbox depth, in tasks).
    std::size_t mailbox_high_watermark = 1024;
    std::size_t mailbox_low_watermark = 256;
    /// Reconnect pacing (decorrelated-jitter backoff, attempt budget per
    /// outage) and the per-peer connect breaker.
    actors::RetryPolicy reconnect;
    actors::PeerHealth::Config breaker;

    /// Observability seams (all optional, all borrowed — each must
    /// outlive the TcpNet; the registry additionally must not be scraped
    /// after the TcpNet is destroyed, since its collector reads TcpNet
    /// state).  With `metrics` set, the io loop, timer heap, strands and
    /// outbound queues export histograms/gauges/counters; with `tracer`
    /// unset, TcpNet owns a wall-clock tracer of its own so tracer() is
    /// never null; `flight` receives connection-lifecycle breadcrumbs.
    obs::MetricsRegistry* metrics = nullptr;
    obs::Tracer* tracer = nullptr;
    obs::FlightRecorder* flight = nullptr;
  };

  /// Transport-level accounting (all monotonic; snapshot via stats()).
  struct Stats {
    std::uint64_t messages_sent = 0;      ///< accepted into an outbound queue
    std::uint64_t bytes_sent = 0;         ///< framed bytes written to sockets
    std::uint64_t messages_received = 0;  ///< decoded and dispatched
    std::uint64_t bytes_received = 0;     ///< raw bytes read from sockets
    std::uint64_t backpressure_drops = 0; ///< outbound queue cap exceeded
    std::uint64_t dropped_on_disconnect = 0;  ///< queued frames lost with a conn
    std::uint64_t connects = 0;           ///< connections established
    std::uint64_t connect_failures = 0;
    std::uint64_t disconnects = 0;        ///< established connections lost
    std::uint64_t breaker_deferrals = 0;  ///< dials deferred by an open breaker
    std::uint64_t decode_errors = 0;      ///< framing/envelope violations
    std::uint64_t reads_paused = 0;       ///< inbound flow-control pauses
    std::uint64_t timers_fired = 0;
  };

  explicit TcpNet(Options options);
  /// Stops the io loop and worker pool; endpoints' Nodes must still be
  /// alive (they are only referenced, never owned).
  ~TcpNet() override;
  TcpNet(const TcpNet&) = delete;
  TcpNet& operator=(const TcpNet&) = delete;

  /// Registers an endpoint: binds a loopback listen socket (ephemeral
  /// port) and assigns the NodeId.  Only legal before start().
  NodeId attach(simnet::Node& node) override;

  /// Spawns the io thread and the worker pool.  Idempotent.
  void start();
  /// Joins the io thread, drains and joins the workers, closes every
  /// socket.  Sends after stop() are silently dropped.  Idempotent.
  void stop();
  bool running() const { return running_.load(std::memory_order_acquire); }

  void send(Message msg) override;
  SimTime now() const override;
  void schedule_on(NodeId node, SimTime delay_ms,
                   std::function<void()> fn) override;
  void post(NodeId node, std::function<void()> fn) override;
  bn::Rng& rng(NodeId node) override;
  /// Never null: the injected tracer (Options::tracer) or an owned
  /// wall-clock tracer whose sink can be read via trace_sink().  Traced
  /// sends carry their context in the wire frame's trace envelope, so
  /// spans stitch across nodes over real TCP.
  obs::Tracer* tracer() const override { return tracer_; }
  /// The owned tracer's sink; nullptr when a tracer was injected (the
  /// injector owns the sink then).
  obs::TraceSink* trace_sink() const { return owned_sink_.get(); }

  /// The endpoint's loopback listen port (stable across set_down cycles).
  std::uint16_t port(NodeId node) const;
  std::size_t worker_threads() const { return options_.worker_threads; }

  /// Crash-models a peer: down closes its listen socket and severs every
  /// connection touching it (senders see resets and enter the reconnect
  /// path); up re-binds the same port.  Safe to call while running.
  void set_down(NodeId node, bool down);

  Stats stats() const;

 private:
  struct Endpoint;
  struct OutConn;
  struct InConn;
  struct Timer;
  static bool timer_later(const Timer& a, const Timer& b);

  // -- strand machinery (any thread) --
  void dispatch(NodeId node, std::function<void()> fn);
  void drain_strand(Endpoint& ep);
  void submit_drain(Endpoint& ep);

  // -- observability --
  void setup_observability();  // ctor helper: tracer/metrics/collector
  void flight_note(std::string_view name, std::string_view detail);

  // -- io thread --
  void io_loop();
  void io_wake();
  int timeout_to_next_timer_ms();
  void fire_due_timers();
  void service_dirty_conns();
  void try_dial(OutConn& conn);
  void on_connect_writable(OutConn& conn);
  void conn_established(OutConn& conn);
  void conn_failed(OutConn& conn, bool was_established);
  void flush_writes(OutConn& conn);
  void on_accept(Endpoint& ep);
  void on_readable(InConn& conn);
  void close_in_conn(InConn& conn);
  void apply_down(NodeId node, bool down);
  void pause_reads(Endpoint& ep);
  void resume_reads(Endpoint& ep);
  void open_listener(Endpoint& ep);  // binds (re-binds) ep.port
  void close_all_io();

  Options options_;
  std::chrono::steady_clock::time_point epoch_;

  std::vector<std::unique_ptr<Endpoint>> endpoints_;
  std::unique_ptr<verify::WorkerPool> pool_;
  std::thread io_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  int epoll_fd_ = -1;
  int wake_fd_ = -1;

  /// Conn registry + outbound queues + control flags shared between
  /// send() (any thread) and the io thread.
  mutable sync::Mutex mu_{"transport.net", sync::level::kTransport};
  std::map<std::pair<NodeId, NodeId>, std::unique_ptr<OutConn>> conns_
      P2P_GUARDED_BY(mu_);
  std::vector<OutConn*> dirty_ P2P_GUARDED_BY(mu_);
  std::vector<std::pair<NodeId, bool>> down_requests_ P2P_GUARDED_BY(mu_);

  /// Timer heap shared between schedule_on (any thread) and the io thread.
  mutable sync::Mutex timer_mu_{"transport.timers",
                                sync::level::kTransportTimer};
  std::vector<Timer> timers_ P2P_GUARDED_BY(timer_mu_);  // min-heap
  std::uint64_t timer_seq_ P2P_GUARDED_BY(timer_mu_) = 0;

  actors::PeerHealth health_;          ///< connect breaker, keyed by dest
  crypto::ChaChaRng io_rng_;           ///< io-thread-only: backoff jitter

  // io-thread-only fd bookkeeping (attach() touches it too, but strictly
  // before the io thread exists).
  std::map<int, Endpoint*> listen_fds_;
  std::map<int, OutConn*> out_fds_;
  std::map<int, std::unique_ptr<InConn>> in_fds_;

  // Stats: relaxed atomics so hot paths never take a lock to count.
  struct AtomicStats;
  std::unique_ptr<AtomicStats> stats_;

  // Observability.  The owned sink/tracer exist only when no tracer was
  // injected; tracer_ itself is never null after construction.  Histogram
  // pointers are resolved once against the registry (node-based maps:
  // references are stable) and read lock-free on the hot paths.
  std::unique_ptr<obs::TraceSink> owned_sink_;
  std::unique_ptr<obs::Tracer> owned_tracer_;
  obs::Tracer* tracer_ = nullptr;
  obs::Histogram* io_busy_ms_ = nullptr;     ///< epoll loop busy time
  obs::Histogram* timer_delay_ms_ = nullptr; ///< timer-heap firing lag
  obs::Histogram* strand_batch_ = nullptr;   ///< tasks per strand drain
  obs::Gauge* queued_bytes_gauge_ = nullptr; ///< total outbound backlog
};

}  // namespace p2pcash::transport
