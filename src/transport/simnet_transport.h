// simnet_transport.h — the deterministic Transport: a forwarding shim
// over simnet::Network.
//
// Every method delegates to exactly the call the actors used to make
// directly (net.send, sim.schedule, sim.now, net.rng, net.tracer), in the
// same order, against the same objects.  That is the whole point: with
// this shim in place the simnet path is byte-identical to the
// pre-Transport code — same RNG draw sequence, same event ordering, same
// golden vectors, same chaos schedules.
//
// post() is the one genuinely new entry point (external injection onto an
// actor's strand).  On simnet a strand is just the single simulator
// thread, so it maps to schedule(0, fn): the task runs at the current
// sim-time, FIFO with everything else scheduled now.  Only new
// (transport-aware) drivers call it.

#pragma once

#include "transport/transport.h"

namespace p2pcash::transport {

class SimnetTransport final : public Transport {
 public:
  explicit SimnetTransport(simnet::Network& net) : net_(net) {}

  NodeId attach(simnet::Node& node) override { return net_.attach(node); }
  void send(Message msg) override { net_.send(std::move(msg)); }
  SimTime now() const override { return net_.sim().now(); }
  void schedule_on(NodeId, SimTime delay_ms,
                   std::function<void()> fn) override {
    net_.sim().schedule(delay_ms, std::move(fn));
  }
  void post(NodeId, std::function<void()> fn) override {
    net_.sim().schedule(0, std::move(fn));
  }
  bn::Rng& rng(NodeId) override { return net_.rng(); }
  obs::Tracer* tracer() const override { return net_.tracer(); }

  simnet::Network& net() { return net_; }

 private:
  simnet::Network& net_;
};

}  // namespace p2pcash::transport
