#include "transport/transport.h"

namespace p2pcash::transport {

// Out-of-line key function: anchors the vtable in this translation unit.
Transport::~Transport() = default;

}  // namespace p2pcash::transport
