// batch_verify.h — random-linear-combination batch verification for the
// payment NIZK and the double-spend representation check.
//
// Both checks are pure group equations over public values:
//   response:        A · B^d  == g1^r1 · g2^r2
//   representation:  C        == g1^e1 · g2^e2
// so n of them can be collapsed into ONE multi-exponentiation: pick random
// scalars z_i and test
//   prod_i ( A_i^{z_i} · B_i^{d_i·z_i} ) · g1^{-Σ z_i·r1_i} · g2^{-Σ z_i·r2_i} == 1.
// If every individual equation holds, the product is 1 for any z.  If some
// equation fails, the product is 1 only when the z_i hit a proper subgroup
// of Z_q^n — probability 2^-λ for λ-bit z — so a passing batch is correct
// except with negligible probability, and it costs one (2n+2)-term
// multi-exp (Pippenger buckets at larger n; see bn/multi_exp) instead of n
// separate 3-term ones.  The two g1/g2 columns fold into two fixed-base
// terms regardless of n — that is where the batch saving comes from.
//
// A failing batch is *bisected*: split in half, re-test each half, recurse
// until single items, which are checked with the plain per-item verifier.
// Every index the bisection names is therefore definitive (no false
// accusations from unlucky randomness), and accept/reject decisions are
// bit-compatible with running the individual verifier n times.
//
// The z_i come from the caller's Rng: they need only be unpredictable to
// the proof *submitter*, not secret afterwards, so a deterministic seeded
// Rng keeps chaos runs reproducible without weakening soundness against
// adversaries who cannot predict the seed.

#pragma once

#include <span>
#include <vector>

#include "nizk/representation.h"

namespace p2pcash::nizk {

/// One payment NIZK to check: A · B^d == g1^r1 · g2^r2.
struct BatchItem {
  Commitments comm;
  bn::BigInt d;
  Response resp;
};

/// One representation to check: commitment == g1^e1 · g2^e2.
struct RepresentationItem {
  bn::BigInt commitment;
  Representation rep;
};

/// Outcome of a batch check: `ok` iff every item verifies; otherwise
/// `bad_indices` names every offending item (ascending), each confirmed by
/// an individual re-verification during bisection.
struct BatchResult {
  bool ok = true;
  std::vector<std::size_t> bad_indices;
};

/// Batch form of verify_response.  Accounting matches what is actually
/// computed: 2n+2 Exp for the combined check, plus the bisection's re-runs
/// on failure (an all-valid batch of n >= 2 always beats 3n).
BatchResult batch_verify_responses(const group::SchnorrGroup& grp,
                                   std::span<const BatchItem> items,
                                   bn::Rng& rng);

/// Batch form of verify_representation (double-spend proof sweeps).
BatchResult batch_verify_representations(
    const group::SchnorrGroup& grp, std::span<const RepresentationItem> items,
    bn::Rng& rng);

}  // namespace p2pcash::nizk
