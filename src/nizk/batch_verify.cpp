#include "nizk/batch_verify.h"

#include <algorithm>
#include <functional>

namespace p2pcash::nizk {

using bn::BigInt;

namespace {

// Random-combiner width.  A batch with one bad proof survives the combined
// check only if the z_i land in a proper subspace — probability 2^-64 per
// attempt, and the submitter cannot grind against it because the z are
// drawn after the proofs are fixed.
const BigInt& z_bound() {
  static const BigInt* bound = new BigInt(BigInt{1} << 64);
  return *bound;
}

/// Recursive bisection driver shared by both batch forms.  `combined`
/// tests a sub-batch with one multi-exp; `single` is the definitive
/// per-item verifier run at the leaves.
void bisect(std::span<const std::size_t> idxs,
            const std::function<bool(std::span<const std::size_t>)>& combined,
            const std::function<bool(std::size_t)>& single,
            std::vector<std::size_t>& bad) {
  if (idxs.size() == 1) {
    if (!single(idxs[0])) bad.push_back(idxs[0]);
    return;
  }
  if (combined(idxs)) return;
  const std::size_t half = idxs.size() / 2;
  bisect(idxs.first(half), combined, single, bad);
  bisect(idxs.subspan(half), combined, single, bad);
}

BatchResult run_batch(
    std::size_t n, const std::function<bool(std::size_t)>& pre_check,
    const std::function<bool(std::span<const std::size_t>)>& combined,
    const std::function<bool(std::size_t)>& single) {
  BatchResult out;
  std::vector<std::size_t> good;
  good.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Scalar-range failures are named without any group arithmetic, just
    // like the individual verifier rejects them before exponentiating.
    if (pre_check(i)) {
      good.push_back(i);
    } else {
      out.bad_indices.push_back(i);
    }
  }
  if (!good.empty()) bisect(good, combined, single, out.bad_indices);
  std::sort(out.bad_indices.begin(), out.bad_indices.end());
  out.ok = out.bad_indices.empty();
  return out;
}

}  // namespace

BatchResult batch_verify_responses(const group::SchnorrGroup& grp,
                                   std::span<const BatchItem> items,
                                   bn::Rng& rng) {
  const BigInt& q = grp.q();
  auto pre_check = [&](std::size_t i) {
    const Response& r = items[i].resp;
    return !r.r1.is_negative() && r.r1 < q && !r.r2.is_negative() && r.r2 < q;
  };
  auto combined = [&](std::span<const std::size_t> idxs) {
    std::vector<BigInt> bases, exps;
    bases.reserve(2 * idxs.size() + 2);
    exps.reserve(2 * idxs.size() + 2);
    BigInt sum_r1{0}, sum_r2{0};
    for (std::size_t i : idxs) {
      const BatchItem& it = items[i];
      BigInt z = bn::random_nonzero_below(rng, z_bound());
      bases.push_back(it.comm.a);
      exps.push_back(z);
      bases.push_back(it.comm.b);
      exps.push_back(bn::mod_mul(it.d, z, q));
      sum_r1 = bn::mod_add(sum_r1, bn::mod_mul(it.resp.r1, z, q), q);
      sum_r2 = bn::mod_add(sum_r2, bn::mod_mul(it.resp.r2, z, q), q);
    }
    // Move the g1/g2 side across: exponent negation mod q turns the
    // equality into a product-equals-one test, and the two generator
    // columns stay two fixed-base terms no matter how large the batch is.
    bases.push_back(grp.g1());
    exps.push_back(bn::mod_sub(BigInt{0}, sum_r1, q));
    bases.push_back(grp.g2());
    exps.push_back(bn::mod_sub(BigInt{0}, sum_r2, q));
    return grp.multi_exp(bases, exps) == BigInt{1};
  };
  auto single = [&](std::size_t i) {
    return verify_response(grp, items[i].comm, items[i].d, items[i].resp);
  };
  return run_batch(items.size(), pre_check, combined, single);
}

BatchResult batch_verify_representations(
    const group::SchnorrGroup& grp, std::span<const RepresentationItem> items,
    bn::Rng& rng) {
  const BigInt& q = grp.q();
  auto pre_check = [](std::size_t) { return true; };
  auto combined = [&](std::span<const std::size_t> idxs) {
    std::vector<BigInt> bases, exps;
    bases.reserve(idxs.size() + 2);
    exps.reserve(idxs.size() + 2);
    BigInt sum_e1{0}, sum_e2{0};
    for (std::size_t i : idxs) {
      const RepresentationItem& it = items[i];
      BigInt z = bn::random_nonzero_below(rng, z_bound());
      bases.push_back(it.commitment);
      exps.push_back(z);
      sum_e1 = bn::mod_add(sum_e1, bn::mod_mul(it.rep.e1, z, q), q);
      sum_e2 = bn::mod_add(sum_e2, bn::mod_mul(it.rep.e2, z, q), q);
    }
    bases.push_back(grp.g1());
    exps.push_back(bn::mod_sub(BigInt{0}, sum_e1, q));
    bases.push_back(grp.g2());
    exps.push_back(bn::mod_sub(BigInt{0}, sum_e2, q));
    return grp.multi_exp(bases, exps) == BigInt{1};
  };
  auto single = [&](std::size_t i) {
    return verify_representation(grp, items[i].commitment, items[i].rep);
  };
  return run_batch(items.size(), pre_check, combined, single);
}

}  // namespace p2pcash::nizk
