// representation.h — Okamoto/Brands representation commitments, the payment
// NIZK, and double-spend extraction.
//
// During withdrawal the client picks x1, x2, y1, y2 in Z_q and commits
//   A = g1^x1 g2^x2,   B = g1^y1 g2^y2
// which the broker blind-signs into the coin.  Paying at merchant I_M at a
// given time yields the challenge d = H0(C, I_M, date/time) and the response
//   r1 = x1 + d*y1,  r2 = x2 + d*y2   (mod q)
// verified by  A * B^d == g1^r1 * g2^r2.
//
// Spending the same coin twice produces two transcripts with d != d', from
// which anyone can solve for the representations (paper §6 footnote 4):
//   y_i = (r_i' - r_i) / (d' - d),   x_i = r_i - d*y_i   (mod q).
// The recovered (x1, x2) / (y1, y2) are a self-authenticating, publicly
// verifiable proof of double-spending: producing a representation of a
// random A is as hard as computing discrete logs, so only a double-spend
// can reveal one.

#pragma once

#include <optional>

#include "bn/bigint.h"
#include "bn/rng.h"
#include "group/schnorr_group.h"

namespace p2pcash::nizk {

/// The client's private coin randomness.  The four scalars ARE coin
/// ownership: anyone holding them can spend (and a double-spend reveals
/// them — that is the paper's deterrent).  They are zeroized on
/// destruction so spent/expired coins leave no recoverable secrets.
struct CoinSecret {
  bn::BigInt x1, x2, y1, y2;  // ct-secret: x1, x2, y1, y2

  static CoinSecret random(const group::SchnorrGroup& grp, bn::Rng& rng);

  /// Zeroizes all four scalars now (also runs on destruction).
  void wipe() noexcept {
    x1.wipe();
    x2.wipe();
    y1.wipe();
    y2.wipe();
  }

  CoinSecret() = default;
  ~CoinSecret() { wipe(); }
  CoinSecret(const CoinSecret&) = default;
  CoinSecret& operator=(const CoinSecret&) = default;
  CoinSecret(CoinSecret&&) noexcept = default;
  CoinSecret& operator=(CoinSecret&&) noexcept = default;

  friend bool operator==(const CoinSecret&, const CoinSecret&) = default;
};

/// The public commitments embedded in the bare coin.
struct Commitments {
  bn::BigInt a;  // A = g1^x1 g2^x2
  bn::BigInt b;  // B = g1^y1 g2^y2

  friend bool operator==(const Commitments&, const Commitments&) = default;
};

/// Computes (A, B) from the secret. Costs 4 Exp.
Commitments commit(const group::SchnorrGroup& grp, const CoinSecret& secret);

/// The NIZK response revealed in a payment transcript.
struct Response {
  bn::BigInt r1, r2;

  friend bool operator==(const Response&, const Response&) = default;
};

/// r_i = x_i + d*y_i mod q. Pure scalar arithmetic — 0 Exp (this is why the
/// paying client's Exp column in Table 1 is zero).
Response respond(const group::SchnorrGroup& grp, const CoinSecret& secret,
                 const bn::BigInt& d);

/// Checks A * B^d == g1^r1 * g2^r2. Costs 3 Exp.
bool verify_response(const group::SchnorrGroup& grp, const Commitments& comm,
                     const bn::BigInt& d, const Response& resp);

/// A single (challenge, response) pair from a payment transcript.
struct ChallengeResponse {
  bn::BigInt d;
  Response resp;
};

/// Representation of one commitment with respect to (g1, g2).
struct Representation {
  bn::BigInt e1, e2;  // commitment == g1^e1 * g2^e2

  friend bool operator==(const Representation&, const Representation&) = default;
};

/// Both recovered representations.
struct ExtractedSecrets {
  Representation of_a;  // (x1, x2)
  Representation of_b;  // (y1, y2)
};

/// Recovers the coin secrets from two transcripts with distinct challenges.
/// Returns nullopt if d == d' (nothing can be extracted) — that case can
/// only arise from the *same* merchant/time, which the broker's deposit
/// database already de-duplicates.
std::optional<ExtractedSecrets> extract(const group::SchnorrGroup& grp,
                                        const ChallengeResponse& first,
                                        const ChallengeResponse& second);

/// Checks commitment == g1^e1 g2^e2 — the public double-spend proof check.
/// Costs 2 Exp.
bool verify_representation(const group::SchnorrGroup& grp,
                           const bn::BigInt& commitment,
                           const Representation& rep);

}  // namespace p2pcash::nizk
