#include "nizk/representation.h"

namespace p2pcash::nizk {

using bn::BigInt;

CoinSecret CoinSecret::random(const group::SchnorrGroup& grp, bn::Rng& rng) {
  // Member-wise assignment: CoinSecret is no longer an aggregate now that
  // it has a wiping destructor.
  CoinSecret s;
  s.x1 = grp.random_scalar(rng);
  s.x2 = grp.random_scalar(rng);
  s.y1 = grp.random_scalar(rng);
  s.y2 = grp.random_scalar(rng);
  return s;
}

Commitments commit(const group::SchnorrGroup& grp, const CoinSecret& secret) {
  Commitments c;
  c.a = grp.exp2(grp.g1(), secret.x1, grp.g2(), secret.x2);
  c.b = grp.exp2(grp.g1(), secret.y1, grp.g2(), secret.y2);
  return c;
}

Response respond(const group::SchnorrGroup& grp, const CoinSecret& secret,
                 const BigInt& d) {
  Response r;
  r.r1 = bn::mod_add(secret.x1, bn::mod_mul(d, secret.y1, grp.q()), grp.q());
  r.r2 = bn::mod_add(secret.x2, bn::mod_mul(d, secret.y2, grp.q()), grp.q());
  return r;
}

bool verify_response(const group::SchnorrGroup& grp, const Commitments& comm,
                     const BigInt& d, const Response& resp) {
  if (resp.r1.is_negative() || resp.r1 >= grp.q()) return false;
  if (resp.r2.is_negative() || resp.r2 >= grp.q()) return false;
  BigInt lhs = grp.mul(comm.a, grp.exp(comm.b, d));
  BigInt rhs = grp.exp2(grp.g1(), resp.r1, grp.g2(), resp.r2);
  return lhs == rhs;
}

std::optional<ExtractedSecrets> extract(const group::SchnorrGroup& grp,
                                        const ChallengeResponse& first,
                                        const ChallengeResponse& second) {
  const BigInt& q = grp.q();
  BigInt dd = bn::mod_sub(second.d, first.d, q);
  if (dd.is_zero()) return std::nullopt;
  BigInt dd_inv = bn::mod_inverse(dd, q);
  // y_i = (r_i' - r_i) / (d' - d)
  BigInt y1 = bn::mod_mul(bn::mod_sub(second.resp.r1, first.resp.r1, q),
                          dd_inv, q);
  BigInt y2 = bn::mod_mul(bn::mod_sub(second.resp.r2, first.resp.r2, q),
                          dd_inv, q);
  // x_i = r_i - d * y_i
  BigInt x1 = bn::mod_sub(first.resp.r1, bn::mod_mul(first.d, y1, q), q);
  BigInt x2 = bn::mod_sub(first.resp.r2, bn::mod_mul(first.d, y2, q), q);
  return ExtractedSecrets{Representation{std::move(x1), std::move(x2)},
                          Representation{std::move(y1), std::move(y2)}};
}

bool verify_representation(const group::SchnorrGroup& grp,
                           const BigInt& commitment, const Representation& rep) {
  BigInt rhs = grp.exp2(grp.g1(), rep.e1, grp.g2(), rep.e2);
  return commitment == rhs;
}

}  // namespace p2pcash::nizk
