// chacha.h — ChaCha20 block function (RFC 8439) and a deterministic RNG.
//
// ChaChaRng is the library's only randomness implementation: seeded from 32
// bytes, it implements bn::Rng, so every protocol run — tests, benchmarks,
// simulations — is reproducible bit-for-bit given the seed.  Production
// deployments would seed it from the OS entropy pool (see SystemRng).

#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>

#include "bn/rng.h"
#include "crypto/secret.h"

namespace p2pcash::crypto {

/// Raw ChaCha20 block function: fills a 64-byte block from key/counter/nonce.
void chacha20_block(const std::array<std::uint32_t, 8>& key,
                    std::uint32_t counter,
                    const std::array<std::uint32_t, 3>& nonce,
                    std::span<std::uint8_t, 64> out);

/// Deterministic cryptographically-strong RNG over the ChaCha20 keystream.
class ChaChaRng final : public bn::Rng {
 public:
  /// Seeds from exactly 32 bytes.
  explicit ChaChaRng(std::span<const std::uint8_t, 32> seed);
  /// Seeds from the SHA-256 of an arbitrary string label (test convenience).
  explicit ChaChaRng(std::string_view seed_label);
  /// Seeds from a 64-bit value (expanded through SHA-256).
  explicit ChaChaRng(std::uint64_t seed);

  void fill(std::span<std::uint8_t> out) override;

  /// Forks an independent child RNG; the child stream is computationally
  /// independent of the parent's future output.
  ChaChaRng fork(std::string_view label);

  /// Wipes the key and any buffered keystream: the internal state predicts
  /// every secret scalar this RNG ever produced.
  ~ChaChaRng() override {
    secure_wipe(key_);
    secure_wipe(block_);
  }
  ChaChaRng(const ChaChaRng&) = default;
  ChaChaRng& operator=(const ChaChaRng&) = default;
  ChaChaRng(ChaChaRng&&) noexcept = default;
  ChaChaRng& operator=(ChaChaRng&&) noexcept = default;

 private:
  void refill();

  std::array<std::uint32_t, 8> key_{};  // ct-secret: key_
  std::array<std::uint32_t, 3> nonce_{};
  std::uint32_t counter_ = 0;
  std::array<std::uint8_t, 64> block_{};
  std::size_t block_pos_ = 64;  // empty
};

/// RNG backed by the operating system entropy pool (/dev/urandom).
class SystemRng final : public bn::Rng {
 public:
  void fill(std::span<std::uint8_t> out) override;
};

}  // namespace p2pcash::crypto
