// sha256.h — SHA-256 (FIPS 180-4), implemented from scratch.
//
// This is the hash behind every random-oracle instantiation in the protocol:
// the challenge hash H: {0,1}* -> Z_q, the hash-to-group F: {0,1}* -> <g>,
// coin hashes h(bare coin) used for witness assignment, and commitment
// nonces h(salt || merchant).

#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace p2pcash::crypto {

/// Incremental SHA-256 hasher.
class Sha256 {
 public:
  static constexpr std::size_t kDigestSize = 32;
  using Digest = std::array<std::uint8_t, kDigestSize>;

  Sha256() { reset(); }

  void reset();
  Sha256& update(std::span<const std::uint8_t> data);
  Sha256& update(std::string_view data);
  /// Finalizes and returns the digest; the hasher must be reset() before
  /// further use.
  Digest finalize();

  /// One-shot convenience.
  static Digest hash(std::span<const std::uint8_t> data);
  static Digest hash(std::string_view data);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_{};
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
};

/// Digest as a lowercase hex string (for logging / URI encoding).
std::string digest_to_hex(const Sha256::Digest& d);

/// Hash a sequence of length-prefixed fields. Length prefixing makes the
/// encoding injective, so h(a||b) cannot collide with h(a'||b') when field
/// boundaries differ — required for all the paper's h(x||y) constructions.
Sha256::Digest hash_fields(std::span<const std::vector<std::uint8_t>> fields);

}  // namespace p2pcash::crypto
