// encoding.h — hex, base64 and percent (URI) codecs.
//
// The paper's prototype transfers all protocol state URL-encoded (§7); the
// wire layer uses these codecs to reproduce the byte counts of Table 2 and
// to offer the compact binary/base64 alternative the paper suggests.

#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace p2pcash::crypto {

std::string to_hex(std::span<const std::uint8_t> data);
/// Throws std::invalid_argument on odd length or non-hex characters.
std::vector<std::uint8_t> from_hex(std::string_view hex);

std::string to_base64(std::span<const std::uint8_t> data);
/// Accepts padded canonical base64; throws std::invalid_argument otherwise.
std::vector<std::uint8_t> from_base64(std::string_view b64);

/// Percent-encodes everything outside RFC 3986 "unreserved".
std::string uri_escape(std::string_view s);
/// Throws std::invalid_argument on malformed %-sequences.
std::string uri_unescape(std::string_view s);

}  // namespace p2pcash::crypto
