// hmac.h — HMAC-SHA256 (RFC 2104) and HKDF (RFC 5869).
//
// HKDF derives independent sub-keys (e.g. the broker's range-signing key vs
// its coin-signing key) from one master secret, and seeds per-component
// deterministic RNGs in tests.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "crypto/sha256.h"

namespace p2pcash::crypto {

/// HMAC-SHA256 of `data` under `key`.
Sha256::Digest hmac_sha256(std::span<const std::uint8_t> key,
                           std::span<const std::uint8_t> data);

/// HKDF-Extract: PRK = HMAC(salt, ikm).
Sha256::Digest hkdf_extract(std::span<const std::uint8_t> salt,
                            std::span<const std::uint8_t> ikm);

/// HKDF-Expand: `length` bytes of output keyed by `prk`, labelled by `info`.
/// length <= 255 * 32.
std::vector<std::uint8_t> hkdf_expand(const Sha256::Digest& prk,
                                      std::span<const std::uint8_t> info,
                                      std::size_t length);

/// Constant-time equality of two byte strings (length leak only).
bool constant_time_equal(std::span<const std::uint8_t> a,
                         std::span<const std::uint8_t> b);

}  // namespace p2pcash::crypto
