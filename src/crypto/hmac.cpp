#include "crypto/hmac.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace p2pcash::crypto {

Sha256::Digest hmac_sha256(std::span<const std::uint8_t> key,
                           std::span<const std::uint8_t> data) {
  std::array<std::uint8_t, 64> k_block{};
  if (key.size() > 64) {
    auto d = Sha256::hash(key);
    std::memcpy(k_block.data(), d.data(), d.size());
  } else if (!key.empty()) {  // empty key: null data() is UB for memcpy
    std::memcpy(k_block.data(), key.data(), key.size());
  }
  std::array<std::uint8_t, 64> ipad{};
  std::array<std::uint8_t, 64> opad{};
  for (int i = 0; i < 64; ++i) {
    ipad[i] = k_block[i] ^ 0x36;
    opad[i] = k_block[i] ^ 0x5c;
  }
  Sha256 inner;
  inner.update(ipad);
  inner.update(data);
  auto inner_digest = inner.finalize();
  Sha256 outer;
  outer.update(opad);
  outer.update(inner_digest);
  return outer.finalize();
}

Sha256::Digest hkdf_extract(std::span<const std::uint8_t> salt,
                            std::span<const std::uint8_t> ikm) {
  return hmac_sha256(salt, ikm);
}

std::vector<std::uint8_t> hkdf_expand(const Sha256::Digest& prk,
                                      std::span<const std::uint8_t> info,
                                      std::size_t length) {
  if (length > 255 * Sha256::kDigestSize)
    throw std::length_error("hkdf_expand: output too long");
  std::vector<std::uint8_t> out;
  out.reserve(length);
  std::vector<std::uint8_t> t;  // T(i-1)
  std::uint8_t counter = 1;
  while (out.size() < length) {
    std::vector<std::uint8_t> block = t;
    block.insert(block.end(), info.begin(), info.end());
    block.push_back(counter++);
    auto d = hmac_sha256(prk, block);
    t.assign(d.begin(), d.end());
    std::size_t take = std::min(t.size(), length - out.size());
    out.insert(out.end(), t.begin(), t.begin() + static_cast<std::ptrdiff_t>(take));
  }
  return out;
}

bool constant_time_equal(std::span<const std::uint8_t> a,
                         std::span<const std::uint8_t> b) {
  if (a.size() != b.size()) return false;
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    acc |= static_cast<std::uint8_t>(a[i] ^ b[i]);
  return acc == 0;
}

}  // namespace p2pcash::crypto
