// secret.h — secret-hygiene primitives: guaranteed zeroization.
//
// The protocols in this library are only as private as the handling of
// their secret scalars: the wallet's representation secrets (x1, x2, y1,
// y2), the requester's blinding factors (t1..t4), the signer's per-session
// nonces (u, s, d) and long-term keys.  A copy of any of these left in
// freed heap memory defeats the unlinkability argument against a local
// adversary (core dumps, swap, reuse of allocations).
//
// `secure_wipe` zeroizes memory through a volatile pointer followed by a
// compiler barrier, so the store cannot be elided as a dead write the way
// a plain memset before free routinely is.  `SecretBuffer` is an owning
// byte buffer that wipes itself on destruction and cannot be copied or
// compared with `==` (use `constant_time_equal` from crypto/hmac.h).
//
// This header is intentionally header-only: the bn layer (below crypto in
// the link graph) includes it for wiping randomness staging buffers
// without creating a library cycle.
//
// Secret-hygiene rules are enforced by tools/ct_lint.py; see
// docs/STATIC_ANALYSIS.md for what counts as a secret and how to annotate.

#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

namespace p2pcash::crypto {

/// Zeroizes `n` bytes at `p`. Never elided: writes go through a volatile
/// pointer and are followed by a compiler barrier.
inline void secure_wipe(void* p, std::size_t n) noexcept {
  if (p == nullptr || n == 0) return;
  volatile auto* vp = static_cast<volatile std::uint8_t*>(p);
  for (std::size_t i = 0; i < n; ++i) vp[i] = 0;
#if defined(__GNUC__) || defined(__clang__)
  __asm__ __volatile__("" : : "r"(p) : "memory");
#endif
}

/// Zeroizes a contiguous range of trivially-copyable objects in place
/// (vector, array, C array, span).  The range keeps its size; only the
/// contents are cleared.
template <typename C>
  requires requires(C& c) { std::span(c); } &&
           std::is_trivially_copyable_v<typename decltype(std::span(
               std::declval<C&>()))::element_type>
inline void secure_wipe(C& container) noexcept {
  auto s = std::span(container);
  secure_wipe(static_cast<void*>(s.data()), s.size_bytes());
}

/// An owning byte buffer that zeroizes its contents on destruction.
///
/// Move-only: copying a secret multiplies the surfaces that must be wiped,
/// so copies are explicit via `clone()`.  Equality comparison is deleted —
/// comparing secrets byte-by-byte is a timing oracle; callers must use
/// `crypto::constant_time_equal` on the spans instead.
class SecretBuffer {
 public:
  SecretBuffer() = default;
  explicit SecretBuffer(std::size_t size) : bytes_(size) {}
  explicit SecretBuffer(std::span<const std::uint8_t> data)
      : bytes_(data.begin(), data.end()) {}
  explicit SecretBuffer(std::vector<std::uint8_t>&& data) noexcept
      : bytes_(std::move(data)) {}

  ~SecretBuffer() { wipe(); }

  SecretBuffer(const SecretBuffer&) = delete;
  SecretBuffer& operator=(const SecretBuffer&) = delete;

  SecretBuffer(SecretBuffer&& other) noexcept : bytes_(std::move(other.bytes_)) {
    other.bytes_.clear();  // moved-from must own nothing left to wipe
  }
  SecretBuffer& operator=(SecretBuffer&& other) noexcept {
    if (this != &other) {
      wipe();
      bytes_ = std::move(other.bytes_);
      other.bytes_.clear();
    }
    return *this;
  }

  /// Deliberate, explicit duplication of the secret.
  SecretBuffer clone() const { return SecretBuffer(std::span(bytes_)); }

  std::uint8_t* data() noexcept { return bytes_.data(); }
  const std::uint8_t* data() const noexcept { return bytes_.data(); }
  std::size_t size() const noexcept { return bytes_.size(); }
  bool empty() const noexcept { return bytes_.empty(); }

  std::span<std::uint8_t> span() noexcept { return bytes_; }
  std::span<const std::uint8_t> span() const noexcept { return bytes_; }

  /// Implicit view conversions so SecretBuffer can be passed directly to
  /// span-taking crypto APIs (hmac_sha256, hkdf_*).
  operator std::span<const std::uint8_t>() const noexcept { return bytes_; }

  /// Zeroizes and empties the buffer now.
  void wipe() noexcept {
    secure_wipe(bytes_);
    bytes_.clear();
  }

  friend bool operator==(const SecretBuffer&, const SecretBuffer&) = delete;

 private:
  std::vector<std::uint8_t> bytes_;
};

}  // namespace p2pcash::crypto
