#include "crypto/encoding.h"

#include <stdexcept>

namespace p2pcash::crypto {

namespace {

constexpr char kHexDigits[] = "0123456789abcdef";
constexpr char kB64Digits[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

int b64_value(char c) {
  if (c >= 'A' && c <= 'Z') return c - 'A';
  if (c >= 'a' && c <= 'z') return c - 'a' + 26;
  if (c >= '0' && c <= '9') return c - '0' + 52;
  if (c == '+') return 62;
  if (c == '/') return 63;
  return -1;
}

bool is_unreserved(char c) {
  return (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') ||
         (c >= '0' && c <= '9') || c == '-' || c == '.' || c == '_' ||
         c == '~';
}

}  // namespace

std::string to_hex(std::span<const std::uint8_t> data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (auto b : data) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0xf]);
  }
  return out;
}

std::vector<std::uint8_t> from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0)
    throw std::invalid_argument("from_hex: odd length");
  std::vector<std::uint8_t> out(hex.size() / 2);
  for (std::size_t i = 0; i < out.size(); ++i) {
    int hi = hex_value(hex[2 * i]);
    int lo = hex_value(hex[2 * i + 1]);
    if (hi < 0 || lo < 0) throw std::invalid_argument("from_hex: bad digit");
    out[i] = static_cast<std::uint8_t>((hi << 4) | lo);
  }
  return out;
}

std::string to_base64(std::span<const std::uint8_t> data) {
  std::string out;
  out.reserve((data.size() + 2) / 3 * 4);
  std::size_t i = 0;
  for (; i + 3 <= data.size(); i += 3) {
    std::uint32_t v = (static_cast<std::uint32_t>(data[i]) << 16) |
                      (static_cast<std::uint32_t>(data[i + 1]) << 8) |
                      data[i + 2];
    out.push_back(kB64Digits[(v >> 18) & 0x3f]);
    out.push_back(kB64Digits[(v >> 12) & 0x3f]);
    out.push_back(kB64Digits[(v >> 6) & 0x3f]);
    out.push_back(kB64Digits[v & 0x3f]);
  }
  std::size_t rem = data.size() - i;
  if (rem == 1) {
    std::uint32_t v = static_cast<std::uint32_t>(data[i]) << 16;
    out.push_back(kB64Digits[(v >> 18) & 0x3f]);
    out.push_back(kB64Digits[(v >> 12) & 0x3f]);
    out.push_back('=');
    out.push_back('=');
  } else if (rem == 2) {
    std::uint32_t v = (static_cast<std::uint32_t>(data[i]) << 16) |
                      (static_cast<std::uint32_t>(data[i + 1]) << 8);
    out.push_back(kB64Digits[(v >> 18) & 0x3f]);
    out.push_back(kB64Digits[(v >> 12) & 0x3f]);
    out.push_back(kB64Digits[(v >> 6) & 0x3f]);
    out.push_back('=');
  }
  return out;
}

std::vector<std::uint8_t> from_base64(std::string_view b64) {
  if (b64.size() % 4 != 0)
    throw std::invalid_argument("from_base64: length not multiple of 4");
  std::vector<std::uint8_t> out;
  out.reserve(b64.size() / 4 * 3);
  for (std::size_t i = 0; i < b64.size(); i += 4) {
    int pads = 0;
    std::uint32_t v = 0;
    for (int j = 0; j < 4; ++j) {
      char c = b64[i + j];
      if (c == '=') {
        if (i + 4 != b64.size() || j < 2)
          throw std::invalid_argument("from_base64: misplaced padding");
        ++pads;
        v <<= 6;
      } else {
        if (pads) throw std::invalid_argument("from_base64: data after pad");
        int d = b64_value(c);
        if (d < 0) throw std::invalid_argument("from_base64: bad digit");
        v = (v << 6) | static_cast<std::uint32_t>(d);
      }
    }
    out.push_back(static_cast<std::uint8_t>(v >> 16));
    if (pads < 2) out.push_back(static_cast<std::uint8_t>(v >> 8));
    if (pads < 1) out.push_back(static_cast<std::uint8_t>(v));
  }
  return out;
}

std::string uri_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (is_unreserved(c)) {
      out.push_back(c);
    } else {
      out.push_back('%');
      out.push_back(kHexDigits[static_cast<std::uint8_t>(c) >> 4]);
      out.push_back(kHexDigits[static_cast<std::uint8_t>(c) & 0xf]);
    }
  }
  return out;
}

std::string uri_unescape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '%') {
      if (i + 2 >= s.size())
        throw std::invalid_argument("uri_unescape: truncated escape");
      int hi = hex_value(s[i + 1]);
      int lo = hex_value(s[i + 2]);
      if (hi < 0 || lo < 0)
        throw std::invalid_argument("uri_unescape: bad escape");
      out.push_back(static_cast<char>((hi << 4) | lo));
      i += 2;
    } else {
      out.push_back(s[i]);
    }
  }
  return out;
}

}  // namespace p2pcash::crypto
