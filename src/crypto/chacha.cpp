#include "crypto/chacha.h"

#include <bit>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "crypto/sha256.h"

namespace p2pcash::crypto {

namespace {

inline void quarter_round(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c,
                          std::uint32_t& d) {
  a += b; d ^= a; d = std::rotl(d, 16);
  c += d; b ^= c; b = std::rotl(b, 12);
  a += b; d ^= a; d = std::rotl(d, 8);
  c += d; b ^= c; b = std::rotl(b, 7);
}

}  // namespace

void chacha20_block(const std::array<std::uint32_t, 8>& key,
                    std::uint32_t counter,
                    const std::array<std::uint32_t, 3>& nonce,
                    std::span<std::uint8_t, 64> out) {
  std::uint32_t state[16] = {
      0x61707865, 0x3320646e, 0x79622d32, 0x6b206574,  // "expand 32-byte k"
      key[0], key[1], key[2], key[3],
      key[4], key[5], key[6], key[7],
      counter, nonce[0], nonce[1], nonce[2]};
  std::uint32_t working[16];
  std::memcpy(working, state, sizeof(state));
  for (int round = 0; round < 10; ++round) {
    quarter_round(working[0], working[4], working[8], working[12]);
    quarter_round(working[1], working[5], working[9], working[13]);
    quarter_round(working[2], working[6], working[10], working[14]);
    quarter_round(working[3], working[7], working[11], working[15]);
    quarter_round(working[0], working[5], working[10], working[15]);
    quarter_round(working[1], working[6], working[11], working[12]);
    quarter_round(working[2], working[7], working[8], working[13]);
    quarter_round(working[3], working[4], working[9], working[14]);
  }
  for (int i = 0; i < 16; ++i) {
    std::uint32_t v = working[i] + state[i];
    out[4 * i] = static_cast<std::uint8_t>(v);
    out[4 * i + 1] = static_cast<std::uint8_t>(v >> 8);
    out[4 * i + 2] = static_cast<std::uint8_t>(v >> 16);
    out[4 * i + 3] = static_cast<std::uint8_t>(v >> 24);
  }
}

ChaChaRng::ChaChaRng(std::span<const std::uint8_t, 32> seed) {
  for (int i = 0; i < 8; ++i) {
    key_[i] = static_cast<std::uint32_t>(seed[4 * i]) |
              (static_cast<std::uint32_t>(seed[4 * i + 1]) << 8) |
              (static_cast<std::uint32_t>(seed[4 * i + 2]) << 16) |
              (static_cast<std::uint32_t>(seed[4 * i + 3]) << 24);
  }
}

ChaChaRng::ChaChaRng(std::string_view seed_label)
    : ChaChaRng(std::span<const std::uint8_t, 32>(
          Sha256::hash(seed_label).data(), 32)) {}

ChaChaRng::ChaChaRng(std::uint64_t seed)
    : ChaChaRng([seed] {
        std::uint8_t buf[8];
        for (int i = 0; i < 8; ++i)
          buf[i] = static_cast<std::uint8_t>(seed >> (8 * i));
        return Sha256::hash(std::span<const std::uint8_t>(buf, 8));
      }()) {}

void ChaChaRng::refill() {
  chacha20_block(key_, counter_++, nonce_, block_);
  block_pos_ = 0;
}

void ChaChaRng::fill(std::span<std::uint8_t> out) {
  std::size_t offset = 0;
  while (offset < out.size()) {
    if (block_pos_ == 64) refill();
    std::size_t take = std::min(out.size() - offset, std::size_t{64} - block_pos_);
    std::memcpy(out.data() + offset, block_.data() + block_pos_, take);
    block_pos_ += take;
    offset += take;
  }
}

ChaChaRng ChaChaRng::fork(std::string_view label) {
  std::array<std::uint8_t, 32> child_seed;
  fill(child_seed);
  Sha256 h;
  h.update(child_seed);
  h.update(label);
  auto d = h.finalize();
  return ChaChaRng(std::span<const std::uint8_t, 32>(d.data(), 32));
}

void SystemRng::fill(std::span<std::uint8_t> out) {
  std::FILE* f = std::fopen("/dev/urandom", "rb");
  if (!f) throw std::runtime_error("SystemRng: cannot open /dev/urandom");
  std::size_t got = std::fread(out.data(), 1, out.size(), f);
  std::fclose(f);
  if (got != out.size())
    throw std::runtime_error("SystemRng: short read from /dev/urandom");
}

}  // namespace p2pcash::crypto
