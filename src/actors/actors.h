// actors.h — the four protocol roles as message-passing actors.
//
// Same protocol objects as the in-memory Deployment (Broker, Merchant,
// WitnessService, Wallet), but every protocol step is a network message
// over simnet, and every handler charges virtual compute time from a
// CostModel based on the crypto ops it actually performed (recorded by the
// metrics layer).  This is the harness behind Table 2: payment wall-clock
// and per-role bytes under PlanetLab latencies with python/openssl costs.
//
// Message flow (payment, n=k=1):
//   client  -> witness : pay.commit_req (coin_hash, nonce)
//   witness -> client  : pay.commit     (signed commitment)
//   client  -> merchant: pay.transcript (transcript + commitments)
//   merchant-> witness : pay.sign_req   (transcript)
//   witness -> merchant: pay.endorse / pay.double_spend
//   merchant-> client  : pay.service / pay.refused
// — 3 round trips, matching the paper's "payment requires 3 rounds of
// message exchange (2 for payment, and 1 for commitment)".

#pragma once

#include <functional>
#include <map>
#include <optional>

#include "crypto/chacha.h"
#include "ecash/broker.h"
#include "ecash/merchant.h"
#include "ecash/wallet.h"
#include "ecash/witness.h"
#include "simnet/net.h"

namespace p2pcash::actors {

using ecash::Cents;
using ecash::MerchantId;
using ecash::Timestamp;
using simnet::Message;
using simnet::NodeId;
using simnet::SimTime;

/// Where each role lives on the simulated network.
struct Directory {
  NodeId broker = 0;
  std::map<MerchantId, NodeId> merchants;  // storefront + witness co-located
};

/// Base for protocol actors: cost-charged replies and current sim time as a
/// protocol Timestamp.
class ProtocolActor : public simnet::Node {
 public:
  ProtocolActor(simnet::Network& net, simnet::CostModel cost)
      : net_(net), cost_(cost) {}

  Timestamp now() const {
    return static_cast<Timestamp>(net_.sim().now());
  }

 protected:
  /// Sends `msg` after charging the compute time for `ops`.
  void send_after_cost(const metrics::OpCounters& ops, Message msg);
  /// Sends with no compute charge.
  void send_now(Message msg);

  simnet::Network& net_;
  simnet::CostModel cost_;
};

/// The broker as an actor: withdrawal, deposit and renewal services.
class BrokerActor final : public ProtocolActor {
 public:
  BrokerActor(simnet::Network& net, simnet::CostModel cost,
              ecash::Broker& broker)
      : ProtocolActor(net, cost), broker_(broker) {}

  void on_message(const Message& msg) override;

  ecash::Broker& broker() { return broker_; }

 private:
  ecash::Broker& broker_;
};

/// A merchant machine: storefront and witness service behind one node.
class MerchantActor final : public ProtocolActor {
 public:
  MerchantActor(simnet::Network& net, simnet::CostModel cost,
                ecash::Merchant& merchant, ecash::WitnessService& witness,
                const Directory& directory)
      : ProtocolActor(net, cost),
        merchant_(merchant),
        witness_(witness),
        directory_(directory) {}

  void on_message(const Message& msg) override;

  ecash::Merchant& merchant() { return merchant_; }
  ecash::WitnessService& witness() { return witness_; }

 private:
  void handle_commit_request(const Message& msg);
  void handle_transcript(const Message& msg);
  void handle_sign_request(const Message& msg);
  void handle_sign_reply(const Message& msg);
  void handle_deposit_receipt(const Message& msg);

  ecash::Merchant& merchant_;
  ecash::WitnessService& witness_;
  const Directory& directory_;
  /// Payments awaiting witness replies: coin_hash -> paying client node.
  std::map<ecash::Hash256, NodeId> in_flight_;
};

/// The client as an actor: asynchronous withdraw/pay with completion
/// callbacks and timeouts.
class ClientActor final : public ProtocolActor {
 public:
  ClientActor(simnet::Network& net, simnet::CostModel cost,
              const group::SchnorrGroup& grp, sig::PublicKey broker_key,
              const ecash::WitnessTable& table, const Directory& directory,
              std::uint64_t seed);

  void on_message(const Message& msg) override;

  ecash::Wallet& wallet() { return wallet_; }

  /// Starts a withdrawal; `done` fires with the coin or a refusal.
  using WithdrawCallback =
      std::function<void(ecash::Outcome<ecash::WalletCoin>)>;
  void withdraw(Cents denomination, WithdrawCallback done);

  struct PayResult {
    bool accepted = false;
    SimTime elapsed_ms = 0;
    std::optional<ecash::DoubleSpendProof> double_spend_proof;
    std::optional<std::string> error;
  };
  using PayCallback = std::function<void(PayResult)>;
  /// Runs the full payment protocol for `coin` at `merchant`. Fails with
  /// "timeout" if not completed within timeout_ms (dead witness, lost
  /// messages).
  void pay(const ecash::WalletCoin& coin, const MerchantId& merchant,
           PayCallback done, SimTime timeout_ms = 60'000);

 private:
  struct PendingWithdrawal {
    std::optional<ecash::Wallet::Withdrawal> state;
    WithdrawCallback done;
  };
  struct PendingPayment {
    ecash::WalletCoin coin;
    MerchantId merchant;
    ecash::Wallet::PaymentIntent intent;
    std::vector<ecash::WitnessCommitment> commitments;
    std::vector<MerchantId> witnesses_asked;
    std::size_t commit_refusals = 0;
    SimTime started = 0;
    std::uint64_t generation = 0;  // guards the timeout event
    PayCallback done;
  };

  void handle_withdraw_offer(const Message& msg);
  void handle_withdraw_response(const Message& msg);
  void handle_commit(const Message& msg);
  void handle_pay_reply(const Message& msg);
  void finish_payment(PendingPayment& p, PayResult result);

  const group::SchnorrGroup& grp_;
  sig::PublicKey broker_key_;
  const ecash::WitnessTable& table_;
  const Directory& directory_;
  crypto::ChaChaRng rng_;
  ecash::Wallet wallet_;

  std::uint64_t next_request_ = 1;
  /// Withdrawals awaiting the broker's offer, keyed by our request id.
  std::map<std::uint64_t, PendingWithdrawal> withdrawal_requests_;
  /// Withdrawals awaiting the broker's response, keyed by broker session
  /// (a separate map: the two id spaces are unrelated and may collide).
  std::map<std::uint64_t, PendingWithdrawal> withdrawal_sessions_;
  std::map<ecash::Hash256, PendingPayment> payments_;  // by coin hash
  std::uint64_t pay_generation_ = 0;
};

}  // namespace p2pcash::actors
