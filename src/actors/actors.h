// actors.h — the four protocol roles as message-passing actors.
//
// Same protocol objects as the in-memory Deployment (Broker, Merchant,
// WitnessService, Wallet), but every protocol step is a network message
// over simnet, and every handler charges virtual compute time from a
// CostModel based on the crypto ops it actually performed (recorded by the
// metrics layer).  This is the harness behind Table 2: payment wall-clock
// and per-role bytes under PlanetLab latencies with python/openssl costs.
//
// Message flow (payment, n=k=1):
//   client  -> witness : pay.commit_req (coin_hash, nonce)
//   witness -> client  : pay.commit     (signed commitment)
//   client  -> merchant: pay.transcript (transcript + commitments)
//   merchant-> witness : pay.sign_req   (transcript)
//   witness -> merchant: pay.endorse / pay.double_spend
//   merchant-> client  : pay.service / pay.refused
// — 3 round trips, matching the paper's "payment requires 3 rounds of
// message exchange (2 for payment, and 1 for commitment)".

#pragma once

#include <functional>
#include <map>
#include <optional>

#include "actors/retry.h"
#include "crypto/chacha.h"
#include "ecash/broker.h"
#include "ecash/merchant.h"
#include "ecash/wallet.h"
#include "ecash/witness.h"
#include "simnet/net.h"
#include "transport/transport.h"

namespace p2pcash::actors {

using ecash::Cents;
using ecash::MerchantId;
using ecash::Timestamp;
using simnet::Message;
using simnet::NodeId;
using simnet::SimTime;

/// Where each role lives on the simulated network.
struct Directory {
  NodeId broker = 0;
  std::map<MerchantId, NodeId> merchants;  // storefront + witness co-located
};

/// Base for protocol actors: cost-charged replies and current time as a
/// protocol Timestamp.
///
/// Actors are written against transport::Transport, never a concrete
/// network: over SimnetTransport they behave byte-for-byte as they always
/// did on simnet; over TcpNet the same handlers run on real sockets and
/// worker threads.  The strand contract (transport.h) is what makes the
/// actors' lock-free state safe there: all of one actor's handlers,
/// timers and posts are mutually serialized by the transport.
class ProtocolActor : public simnet::Node {
 public:
  ProtocolActor(transport::Transport& tx, simnet::CostModel cost)
      : tx_(tx), cost_(cost) {}

  Timestamp now() const { return static_cast<Timestamp>(tx_.now()); }

 protected:
  /// Sends `msg` after charging the compute time for `ops`.
  void send_after_cost(const metrics::OpCounters& ops, Message msg);
  /// Same, but also closes `span` at the moment the message actually
  /// leaves, so the handler span's duration covers the compute charge.
  void send_after_cost(const metrics::OpCounters& ops, Message msg,
                       obs::TraceContext span);
  /// Sends with no compute charge.
  void send_now(Message msg);

  /// Current transport time in milliseconds (sim-time or wall-clock).
  SimTime now_ms() const { return tx_.now(); }
  /// Runs `fn` on this actor's strand after `delay_ms`.
  void schedule(SimTime delay_ms, std::function<void()> fn) {
    tx_.schedule_on(id(), delay_ms, std::move(fn));
  }
  /// This actor's strand-confined RNG (retry jitter, cost sampling).
  bn::Rng& rng() { return tx_.rng(id()); }

  /// The transport's tracer, or nullptr when tracing is off.  All span
  /// state in the actors is plain TraceContext values; with no tracer
  /// attached they stay invalid and every call on them no-ops.
  obs::Tracer* tracer() const { return tx_.tracer(); }
  /// Opens a child span of `parent` on this node (invalid when tracing is
  /// off or the parent is untraced).
  obs::TraceContext start_span(const obs::TraceContext& parent,
                               std::string_view name);
  /// Records a point-in-time annotation on `ctx`'s span.
  void trace_note(const obs::TraceContext& ctx, std::string_view name,
                  std::string_view detail = {});

  transport::Transport& tx_;
  simnet::CostModel cost_;
};

/// The broker as an actor: withdrawal, deposit and renewal services.
class BrokerActor final : public ProtocolActor {
 public:
  BrokerActor(transport::Transport& tx, simnet::CostModel cost,
              ecash::Broker& broker)
      : ProtocolActor(tx, cost), broker_(broker) {}

  void on_message(const Message& msg) override;

  ecash::Broker& broker() { return broker_; }

 private:
  ecash::Broker& broker_;
};

/// A merchant machine: storefront and witness service behind one node.
class MerchantActor final : public ProtocolActor {
 public:
  MerchantActor(transport::Transport& tx, simnet::CostModel cost,
                ecash::Merchant& merchant, ecash::WitnessService& witness,
                const Directory& directory)
      : ProtocolActor(tx, cost),
        merchant_(merchant),
        witness_(witness),
        directory_(directory) {}

  void on_message(const Message& msg) override;

  ecash::Merchant& merchant() { return merchant_; }
  ecash::WitnessService& witness() { return witness_; }

  void set_retry_policy(const RetryPolicy& policy) { retry_ = policy; }

  /// Drains the storefront's deposit queue and submits every transcript to
  /// the broker, retrying with backoff until a receipt (or a definitive
  /// refusal) arrives.  kAlreadyDeposited counts as an ack — it means an
  /// earlier retry landed and only the receipt was lost.  Transcripts whose
  /// retries are exhausted stay queued here; a later call re-submits them.
  void flush_deposits();
  /// Deposits submitted but not yet acknowledged by the broker.
  std::size_t deposits_outstanding() const { return pending_deposits_.size(); }

  /// Crash recovery: volatile per-payment actor state is gone; the durable
  /// Merchant/WitnessService state was restored by the owner.  Clients
  /// retry or time out cleanly.
  void on_restart();

  /// Retry/duplicate accounting for this actor.
  const metrics::ResilienceCounters& resilience() const { return resilience_; }

 private:
  void handle_commit_request(const Message& msg);
  void handle_transcript(const Message& msg);
  void handle_sign_request(const Message& msg);
  void handle_sign_reply(const Message& msg);
  void handle_deposit_receipt(const Message& msg);

  void send_deposit(const ecash::Hash256& coin_hash);
  void arm_deposit_timer(const ecash::Hash256& coin_hash,
                         std::size_t attempts_when_armed);

  ecash::Merchant& merchant_;
  ecash::WitnessService& witness_;
  const Directory& directory_;
  RetryPolicy retry_;
  metrics::ResilienceCounters resilience_;

  /// Payments awaiting witness replies, with enough context to re-drive the
  /// witnesses when the client retransmits the transcript.
  struct InFlight {
    NodeId client = 0;
    std::vector<MerchantId> witnesses;  ///< committing witnesses (sign_req targets)
    obs::TraceContext trace;  ///< the payment's causal context
  };
  std::map<ecash::Hash256, InFlight> in_flight_;

  /// Deposit submissions awaiting broker receipts.
  struct PendingDeposit {
    std::vector<std::uint8_t> payload;  ///< encoded SignedTranscript
    std::size_t attempts = 0;
    SimTime prev_backoff = 0;
    bool exhausted = false;  ///< retries used up; re-armed by flush_deposits
    obs::TraceContext parent;  ///< the originating payment's context
    obs::TraceContext span;    ///< open "deposit" span (invalid = none yet)
  };
  std::map<ecash::Hash256, PendingDeposit> pending_deposits_;
  /// Payment contexts remembered at service time so the (later, batched)
  /// deposit submission continues the same trace.
  std::map<ecash::Hash256, obs::TraceContext> deposit_trace_;
  std::uint64_t restart_generation_ = 0;  ///< invalidates timers on restart
};

/// The client as an actor: asynchronous withdraw/pay with completion
/// callbacks, timeouts, and a resilient RPC discipline — per-attempt
/// timeouts with decorrelated-jitter backoff, idempotent resends of the
/// same bytes, failover along the coin's witness replica set (chord
/// successor order), and a per-peer circuit breaker.
class ClientActor final : public ProtocolActor {
 public:
  ClientActor(transport::Transport& tx, simnet::CostModel cost,
              const group::SchnorrGroup& grp, sig::PublicKey broker_key,
              const ecash::WitnessTable& table, const Directory& directory,
              std::uint64_t seed);

  void on_message(const Message& msg) override;

  ecash::Wallet& wallet() { return wallet_; }

  void set_retry_policy(const RetryPolicy& policy) { retry_ = policy; }
  const RetryPolicy& retry_policy() const { return retry_; }
  void set_breaker_config(const PeerHealth::Config& config) {
    health_.configure(config);
  }
  PeerHealth& health() { return health_; }
  /// Retry/failover/duplicate accounting for this client.
  const metrics::ResilienceCounters& resilience() const { return resilience_; }

  /// Starts a withdrawal; `done` fires with the coin or a refusal.  With
  /// deadline_ms > 0 the two broker RPCs are retried with backoff until the
  /// deadline; the default 0 sends each message exactly once and never
  /// schedules a timer (a silent broker leaves the callback unfired).
  using WithdrawCallback =
      std::function<void(ecash::Outcome<ecash::WalletCoin>)>;
  void withdraw(Cents denomination, WithdrawCallback done,
                SimTime deadline_ms = 0);

  struct PayResult {
    bool accepted = false;
    SimTime elapsed_ms = 0;
    std::optional<ecash::DoubleSpendProof> double_spend_proof;
    std::optional<std::string> error;
    /// The payment's trace id when tracing was on (0 otherwise); the key
    /// into TraceSink::trace_jsonl for this payment's full causal history.
    obs::TraceId trace_id = 0;
  };
  using PayCallback = std::function<void(PayResult)>;
  /// Runs the full payment protocol for `coin` at `merchant`.  Engages the
  /// coin's witnesses in replica (failover) order, retries silent peers and
  /// fails over to the next assigned witness; fails with "timeout" at
  /// timeout_ms, or earlier with a specific diagnostic when no k-subset of
  /// witnesses can still commit.
  void pay(const ecash::WalletCoin& coin, const MerchantId& merchant,
           PayCallback done, SimTime timeout_ms = 60'000);

 private:
  struct PendingWithdrawal {
    std::optional<ecash::Wallet::Withdrawal> state;
    WithdrawCallback done;
    SimTime deadline = 0;  ///< absolute; 0 = retries disabled
    std::uint64_t generation = 0;
    std::size_t attempts = 1;
    SimTime prev_backoff = 0;
    /// The exact bytes/type of the last request, for idempotent resends.
    std::string last_type;
    std::vector<std::uint8_t> last_payload;
    obs::TraceContext span;  ///< root "withdraw" span
  };
  /// One witness in the payment's failover plan.
  struct WitnessAttempt {
    MerchantId witness;
    NodeId node = 0;
    std::size_t attempts = 0;  ///< commit_req sends so far (0 = not engaged)
    SimTime prev_backoff = 0;
    bool committed = false;
    bool refused = false;
    bool exhausted = false;  ///< max_attempts spent without an answer
  };
  struct PendingPayment {
    ecash::WalletCoin coin;
    MerchantId merchant;
    NodeId merchant_node = 0;
    ecash::Wallet::PaymentIntent intent;
    std::vector<ecash::WitnessCommitment> commitments;
    /// The coin's witnesses in chord failover order (see overlay::failover_order).
    std::vector<WitnessAttempt> plan;
    std::vector<std::uint8_t> commit_payload;      ///< resent verbatim
    std::vector<std::uint8_t> transcript_payload;  ///< non-empty once built
    std::size_t transcript_attempts = 0;
    SimTime transcript_prev_backoff = 0;
    SimTime started = 0;
    SimTime deadline = 0;
    std::uint64_t generation = 0;  // guards timeout/retry events
    PayCallback done;
    obs::TraceContext trace_root;  ///< root "payment" span
    /// Currently open phase span (assign_witness -> payment_commit ->
    /// witness_sign); outgoing messages carry this context.
    obs::TraceContext phase;
  };

  void handle_withdraw_offer(const Message& msg);
  void handle_withdraw_response(const Message& msg);
  void handle_commit(const Message& msg);
  void handle_pay_reply(const Message& msg);
  void finish_payment(PendingPayment& p, PayResult result);

  // -- resilient RPC machinery --
  void arm_withdraw_timer(bool by_session, std::uint64_t key,
                          std::uint64_t generation, std::size_t attempts);
  void on_withdraw_silence(bool by_session, std::uint64_t key,
                           std::uint64_t generation, std::size_t attempts);
  PendingWithdrawal* find_withdrawal(bool by_session, std::uint64_t key,
                                     std::uint64_t generation);
  /// Sends commit_req to plan[index] (first engagement or resend).
  void send_commit_req(PendingPayment& p, std::size_t index);
  void arm_commit_timer(const ecash::Hash256& coin_hash,
                        std::uint64_t generation, std::size_t index,
                        std::size_t attempts);
  void on_commit_silence(const ecash::Hash256& coin_hash,
                         std::uint64_t generation, std::size_t index,
                         std::size_t attempts);
  /// Engages the next never-engaged witness in the plan, if any.
  void engage_next_witness(PendingPayment& p);
  /// Fails the payment early when fewer than witness_k commitments remain
  /// reachable; `detail` explains the last straw.
  void check_commit_possibility(PendingPayment& p, const std::string& detail);
  void send_transcript(PendingPayment& p);
  void arm_transcript_timer(const ecash::Hash256& coin_hash,
                            std::uint64_t generation, std::size_t attempts);
  void on_transcript_silence(const ecash::Hash256& coin_hash,
                             std::uint64_t generation, std::size_t attempts);

  const group::SchnorrGroup& grp_;
  sig::PublicKey broker_key_;
  const ecash::WitnessTable& table_;
  const Directory& directory_;
  crypto::ChaChaRng rng_;
  ecash::Wallet wallet_;
  RetryPolicy retry_;
  PeerHealth health_;
  metrics::ResilienceCounters resilience_;

  std::uint64_t next_request_ = 1;
  /// Withdrawals awaiting the broker's offer, keyed by our request id.
  std::map<std::uint64_t, PendingWithdrawal> withdrawal_requests_;
  /// Withdrawals awaiting the broker's response, keyed by broker session
  /// (a separate map: the two id spaces are unrelated and may collide).
  std::map<std::uint64_t, PendingWithdrawal> withdrawal_sessions_;
  std::map<ecash::Hash256, PendingPayment> payments_;  // by coin hash
  std::uint64_t pay_generation_ = 0;
  std::uint64_t withdraw_generation_ = 0;
};

}  // namespace p2pcash::actors
