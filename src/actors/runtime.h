// runtime.h — a real multithreaded node deployment over TCP.
//
// The counterpart of SimWorld (world.h): the same construction recipe —
// broker, merchant machines (storefront + witness), clients, witness
// table published to everyone — but hosted on transport::TcpNet, so every
// protocol message crosses a real loopback TCP connection and every actor
// runs on a worker-pool strand.  This is the harness the scalability
// bench drives for true payments/sec: with W worker threads, W payments
// can be in distinct actors' handlers simultaneously.
//
// Differences from SimWorld, all forced by realness:
//   * Time is wall-clock milliseconds (the transport's clock), so runs
//     are NOT seed-reproducible; determinism tests stay on SimWorld.
//   * Every service gets its own RNG stream (SimWorld shares one across
//     the whole world — safe there because the simulation is one thread).
//   * The default CostModel is free_cost(): real crypto already costs
//     real time, and the simulated-cost model would just add sleeps.
//   * No FaultPlan; crash/restart is modeled at the transport
//     (TcpNet::set_down) — reconnection is the thing under test.
//
// This header is det_lint-scoped (src/actors): it reads no clock and no
// entropy of its own; all time flows through the Transport.

#pragma once

#include <future>
#include <memory>
#include <string>
#include <vector>

#include "actors/actors.h"
#include "obs/clock.h"
#include "obs/flight_recorder.h"
#include "obs/metrics_registry.h"
#include "obs/obs_server.h"
#include "obs/trace.h"
#include "store/log_store.h"
#include "store/vfs.h"
#include "transport/tcp_net.h"

namespace p2pcash::actors {

class NodeRuntime {
 public:
  struct Options {
    std::size_t merchants = 4;
    /// Strand-executor threads in the transport's worker pool.
    std::size_t worker_threads = 2;
    std::uint64_t seed = 1;
    /// Compute-cost model charged by actors before replies.  Defaults to
    /// free: the OpenSSL bignum work is real here.
    simnet::CostModel cost = simnet::free_cost();
    ecash::Broker::Config broker;
    ecash::Cents security_deposit = 10'000;
    /// Actor-level RPC retry discipline (timers on the wall clock now).
    RetryPolicy retry;
    PeerHealth::Config breaker;
    /// Transport knobs (queue caps, reconnect pacing, frame limit).
    /// worker_threads and seed above override the ones in here, and the
    /// runtime's own registry/tracer/flight-recorder are always wired in.
    transport::TcpNet::Options net;

    /// Trace ring capacity (spans + events retained for /tracez).
    std::size_t trace_capacity = 1 << 16;
    /// Flight-recorder ring capacity (crash breadcrumbs).
    std::size_t flight_capacity = 1024;
    /// Where the flight recorder dumps on abort/SIGUSR1.  Empty = stderr.
    /// Set explicitly by the host — this runtime reads no environment
    /// (src/actors is determinism-scoped; getenv is banned here).
    std::string flight_artifact;
    /// Durable mode: broker and every witness journal coin state into
    /// append-only logs (store::LogStore over an in-process MemVfs), with
    /// group-commit fsync latency exported through the runtime registry
    /// as store_* histograms — the same recipe SimWorld::durable_stores
    /// uses, here exercised under real concurrency.
    bool durable_stores = false;
  };

  explicit NodeRuntime(const group::SchnorrGroup& grp, Options options);
  ~NodeRuntime();  // stop()s
  NodeRuntime(const NodeRuntime&) = delete;
  NodeRuntime& operator=(const NodeRuntime&) = delete;

  transport::TcpNet& net() { return *net_; }
  ecash::Broker& broker() { return *broker_; }
  const Directory& directory() const { return directory_; }

  // -- observability -------------------------------------------------------
  // The runtime owns the full obs stack: a wall-clock Tracer whose spans
  // stitch across nodes via the wire trace envelope, a MetricsRegistry
  // fed by the transport/pool/store instrumentation, and an always-on
  // FlightRecorder of recent transport breadcrumbs.

  obs::MetricsRegistry& metrics() { return registry_; }
  const obs::MetricsRegistry& metrics() const { return registry_; }
  obs::TraceSink& trace_sink() { return sink_; }
  obs::Tracer& tracer() { return tracer_; }
  obs::FlightRecorder& flight_recorder() { return flight_; }

  /// Starts the HTTP scrape endpoint (127.0.0.1, `port` or ephemeral when
  /// 0) serving /metrics, /healthz, /tracez, /flightz from this runtime.
  /// Returns the bound port (0 on failure).  Idempotent.
  std::uint16_t start_obs_server(std::uint16_t port = 0);
  void stop_obs_server();
  obs::ObsServer& obs_server() { return obs_server_; }

  std::vector<MerchantId> merchant_ids() const;
  MerchantActor& merchant_actor(const MerchantId& id);
  NodeId merchant_node(const MerchantId& id) const;

  /// Creates a client endpoint.  Only legal before start() (the TCP
  /// transport fixes its endpoint set when the io loop spawns).
  ClientActor& add_client();

  /// Starts the io loop and worker pool; actors begin receiving.
  void start();
  /// Stops the transport.  Actors stay alive for post-mortem inspection.
  void stop();

  /// Takes a merchant machine down / up at the transport (listener closed,
  /// connections severed — senders enter the reconnect path).
  void set_merchant_down(const MerchantId& id, bool down);

  // -- blocking drivers ----------------------------------------------------
  // Callable from any external thread (NOT from an actor strand: they
  // block on a future the strand must fulfil).  The operation is posted
  // onto the client's strand, honoring the transport's serialization
  // contract.

  /// Withdraws one coin, waiting up to the actor-level deadline.
  ecash::Outcome<ecash::WalletCoin> withdraw(ClientActor& client,
                                             Cents denomination,
                                             SimTime deadline_ms = 30'000);

  /// Runs one full payment, waiting for the actor-level outcome.
  ClientActor::PayResult pay(ClientActor& client,
                             const ecash::WalletCoin& coin,
                             const MerchantId& merchant,
                             SimTime timeout_ms = 30'000);

  /// Sum of the resilience counters across all clients and merchants.
  metrics::ResilienceCounters resilience_totals() const;

 private:
  struct MerchantSlot {
    MerchantId id;
    std::unique_ptr<crypto::ChaChaRng> rng;  ///< strand-confined stream
    std::unique_ptr<ecash::Merchant> merchant;
    std::unique_ptr<ecash::WitnessService> witness;
    std::unique_ptr<store::LogStore> store;  ///< durable mode only
    std::unique_ptr<MerchantActor> actor;
  };

  group::SchnorrGroup grp_;
  Options options_;

  // Obs stack FIRST: the transport and stores borrow pointers into it, so
  // it must outlive them (declaration order = construction order; reverse
  // destruction tears the borrowers down before the lenders).
  obs::MetricsRegistry registry_;
  obs::TraceSink sink_;
  obs::WallClock wall_clock_;
  obs::FlightRecorder flight_;
  obs::Tracer tracer_;

  store::MemVfs store_vfs_;  ///< durable mode only (internally locked)
  std::unique_ptr<store::LogStore> broker_store_;

  std::unique_ptr<transport::TcpNet> net_;
  std::unique_ptr<crypto::ChaChaRng> broker_rng_;
  std::unique_ptr<ecash::Broker> broker_;
  std::unique_ptr<BrokerActor> broker_actor_;
  Directory directory_;
  std::vector<MerchantSlot> merchants_;
  std::vector<std::unique_ptr<ClientActor>> clients_;
  std::uint64_t next_client_seed_ = 0;

  // LAST: destroyed first, so a live scrape can never observe a
  // half-torn-down runtime.
  obs::ObsServer obs_server_;
};

}  // namespace p2pcash::actors
