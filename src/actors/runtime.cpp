#include "actors/runtime.h"

#include <cstdio>
#include <stdexcept>
#include <thread>
#include <utility>

namespace p2pcash::actors {

namespace {
MerchantId merchant_name(std::size_t i) {
  char buf[32];  // large enough for "m" + any 64-bit index
  std::snprintf(buf, sizeof buf, "m%03zu", i);
  return buf;
}

std::string witness_log_name(const MerchantId& id) {
  return "witness-" + id + ".log";
}
}  // namespace

NodeRuntime::NodeRuntime(const group::SchnorrGroup& grp, Options options)
    : grp_(grp),
      options_(options),
      sink_(options.trace_capacity),
      flight_(options.flight_capacity, obs::clock_fn(wall_clock_)),
      tracer_(wall_clock_, &sink_, &registry_),
      obs_server_(obs::ObsServer::Sources{&registry_, &sink_, &flight_,
                                          /*healthy=*/nullptr}) {
  sink_.set_meta(
      {"tcp", static_cast<std::uint32_t>(std::thread::hardware_concurrency())});
  if (!options_.flight_artifact.empty())
    flight_.set_artifact_path(options_.flight_artifact);
  registry_.register_collector([this] {
    using obs::Sample;
    return std::vector<Sample>{
        {"runtime_trace_spans", static_cast<double>(sink_.span_count()),
         Sample::Type::kGauge},
        {"runtime_trace_events", static_cast<double>(sink_.event_count()),
         Sample::Type::kGauge},
        {"runtime_trace_dropped_total", static_cast<double>(sink_.dropped()),
         Sample::Type::kCounter},
        {"runtime_flight_recorded_total",
         static_cast<double>(flight_.recorded()), Sample::Type::kCounter},
    };
  });

  auto net_options = options_.net;
  net_options.worker_threads = options_.worker_threads;
  net_options.seed = options_.seed;
  net_options.metrics = &registry_;
  net_options.tracer = &tracer_;
  net_options.flight = &flight_;
  net_ = std::make_unique<transport::TcpNet>(net_options);

  // Construction-time stream for key generation; every service then gets
  // its own fork, confined to its host actor's strand.  (SimWorld shares
  // one RNG across the world — legal only because simulation is
  // single-threaded.)
  crypto::ChaChaRng setup_rng(options_.seed);
  broker_rng_ =
      std::make_unique<crypto::ChaChaRng>(setup_rng.fork("broker"));
  broker_ = std::make_unique<ecash::Broker>(grp_, *broker_rng_,
                                            options_.broker);
  if (options_.durable_stores) {
    // Same journal recipe as SimWorld::durable_stores, with the fsync
    // latency histograms folded into this runtime's registry — group
    // commit under real multi-strand contention is exactly what the
    // store_* metrics exist to expose.
    store::LogStore::Options store_opts;
    store_opts.metrics = &registry_;
    broker_store_ = std::make_unique<store::LogStore>(store_vfs_, "broker.log",
                                                      store_opts);
    broker_->attach_store(*broker_store_);
  }
  broker_actor_ =
      std::make_unique<BrokerActor>(*net_, options_.cost, *broker_);
  directory_.broker = net_->attach(*broker_actor_);

  if (options_.merchants == 0)
    throw std::invalid_argument("NodeRuntime: need at least one merchant");
  merchants_.reserve(options_.merchants);
  for (std::size_t i = 0; i < options_.merchants; ++i) {
    MerchantSlot slot;
    slot.id = merchant_name(i);
    auto key = sig::KeyPair::generate(grp_, setup_rng);
    broker_->register_merchant(slot.id, key.public_key(),
                               options_.security_deposit);
    slot.rng = std::make_unique<crypto::ChaChaRng>(setup_rng.fork(slot.id));
    slot.merchant = std::make_unique<ecash::Merchant>(
        grp_, broker_->coin_key(), slot.id, key, *slot.rng);
    slot.witness = std::make_unique<ecash::WitnessService>(
        grp_, broker_->coin_key(), slot.id, key, *slot.rng);
    if (options_.durable_stores) {
      store::LogStore::Options store_opts;
      store_opts.metrics = &registry_;
      slot.store = std::make_unique<store::LogStore>(
          store_vfs_, witness_log_name(slot.id), store_opts);
      slot.witness->attach_store(*slot.store);
    }
    slot.actor = std::make_unique<MerchantActor>(
        *net_, options_.cost, *slot.merchant, *slot.witness, directory_);
    slot.actor->set_retry_policy(options_.retry);
    directory_.merchants[slot.id] = net_->attach(*slot.actor);
    merchants_.push_back(std::move(slot));
  }
  broker_->publish_witness_table(/*now=*/0);
}

NodeRuntime::~NodeRuntime() { stop(); }

std::vector<MerchantId> NodeRuntime::merchant_ids() const {
  std::vector<MerchantId> out;
  out.reserve(merchants_.size());
  for (const auto& slot : merchants_) out.push_back(slot.id);
  return out;
}

MerchantActor& NodeRuntime::merchant_actor(const MerchantId& id) {
  for (auto& slot : merchants_) {
    if (slot.id == id) return *slot.actor;
  }
  throw std::invalid_argument("NodeRuntime: unknown merchant " + id);
}

NodeId NodeRuntime::merchant_node(const MerchantId& id) const {
  auto it = directory_.merchants.find(id);
  if (it == directory_.merchants.end())
    throw std::invalid_argument("NodeRuntime: unknown merchant " + id);
  return it->second;
}

ClientActor& NodeRuntime::add_client() {
  clients_.push_back(std::make_unique<ClientActor>(
      *net_, options_.cost, grp_, broker_->coin_key(),
      broker_->current_table(), directory_,
      options_.seed * 1000003 + (++next_client_seed_)));
  net_->attach(*clients_.back());
  clients_.back()->set_retry_policy(options_.retry);
  clients_.back()->set_breaker_config(options_.breaker);
  return *clients_.back();
}

void NodeRuntime::start() {
  // An explicit artifact path opts this runtime into the process-global
  // crash hooks: SIGABRT (including lock-order violations) and SIGUSR1
  // dump the breadcrumb ring to that file.  Signal dispositions are
  // process-wide, so only the runtime the owner configured installs them.
  if (!options_.flight_artifact.empty())
    obs::FlightRecorder::install_process_hooks(&flight_);
  net_->start();
}

void NodeRuntime::stop() {
  if (!options_.flight_artifact.empty())
    obs::FlightRecorder::install_process_hooks(nullptr);
  obs_server_.stop();
  if (net_) net_->stop();
}

std::uint16_t NodeRuntime::start_obs_server(std::uint16_t port) {
  return obs_server_.start(port);
}

void NodeRuntime::stop_obs_server() { obs_server_.stop(); }

void NodeRuntime::set_merchant_down(const MerchantId& id, bool down) {
  net_->set_down(merchant_node(id), down);
}

ecash::Outcome<ecash::WalletCoin> NodeRuntime::withdraw(ClientActor& client,
                                                        Cents denomination,
                                                        SimTime deadline_ms) {
  auto promise =
      std::make_shared<std::promise<ecash::Outcome<ecash::WalletCoin>>>();
  auto future = promise->get_future();
  net_->post(client.id(), [&client, denomination, deadline_ms, promise] {
    client.withdraw(
        denomination,
        [promise](ecash::Outcome<ecash::WalletCoin> result) {
          promise->set_value(std::move(result));
        },
        deadline_ms);
  });
  return future.get();
}

ClientActor::PayResult NodeRuntime::pay(ClientActor& client,
                                        const ecash::WalletCoin& coin,
                                        const MerchantId& merchant,
                                        SimTime timeout_ms) {
  auto promise = std::make_shared<std::promise<ClientActor::PayResult>>();
  auto future = promise->get_future();
  net_->post(client.id(), [&client, coin, merchant, timeout_ms, promise] {
    client.pay(
        coin, merchant,
        [promise](ClientActor::PayResult result) {
          promise->set_value(std::move(result));
        },
        timeout_ms);
  });
  return future.get();
}

metrics::ResilienceCounters NodeRuntime::resilience_totals() const {
  // Counters are plain fields mutated on actor strands: call this only
  // while the transport is stopped (or quiescent).
  metrics::ResilienceCounters total;
  for (const auto& client : clients_) total += client->resilience();
  for (const auto& slot : merchants_) total += slot.actor->resilience();
  return total;
}

}  // namespace p2pcash::actors
