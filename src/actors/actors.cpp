#include "actors/actors.h"

#include <algorithm>

#include "overlay/chord.h"
#include "wire/codec.h"

namespace p2pcash::actors {

using bn::BigInt;
using ecash::Hash256;
using ecash::Outcome;
using ecash::Refusal;
using ecash::RefusalReason;
using metrics::OpCounters;
using metrics::ScopedOpCounting;
using wire::Reader;
using wire::Writer;

namespace {

void put_hash(Writer& w, const Hash256& h) { w.put_bytes(h); }

Hash256 get_hash(Reader& r) {
  auto bytes = r.get_bytes();
  if (bytes.size() != 32) throw wire::DecodeError("expected 32-byte hash");
  Hash256 h;
  std::copy(bytes.begin(), bytes.end(), h.begin());
  return h;
}

}  // namespace

// ---------------------------------------------------------------------------
// ProtocolActor
// ---------------------------------------------------------------------------

void ProtocolActor::send_after_cost(const OpCounters& ops, Message msg) {
  send_after_cost(ops, std::move(msg), obs::TraceContext{});
}

void ProtocolActor::send_after_cost(const OpCounters& ops, Message msg,
                                    obs::TraceContext span) {
  const SimTime cost = cost_.sample_cost_ms(ops, rng());
  if (cost <= 0) {
    if (auto* tr = tracer()) tr->end_span(span);
    tx_.send(std::move(msg));
    return;
  }
  schedule(cost,
                      [this, span, msg = std::move(msg)]() mutable {
                        if (auto* tr = tracer()) tr->end_span(span);
                        tx_.send(std::move(msg));
                      });
}

void ProtocolActor::send_now(Message msg) { tx_.send(std::move(msg)); }

obs::TraceContext ProtocolActor::start_span(const obs::TraceContext& parent,
                                            std::string_view name) {
  auto* tr = tracer();
  return tr ? tr->start_child(parent, name, id()) : obs::TraceContext{};
}

void ProtocolActor::trace_note(const obs::TraceContext& ctx,
                               std::string_view name,
                               std::string_view detail) {
  if (auto* tr = tracer()) tr->event(ctx, name, detail);
}

// ---------------------------------------------------------------------------
// BrokerActor
// ---------------------------------------------------------------------------

void BrokerActor::on_message(const Message& msg) {
  Reader r(msg.payload);
  if (msg.type == "withdraw.start") {
    const std::uint64_t req_id = r.get_u64();
    const Cents denomination = r.get_u32();
    const auto span = start_span(msg.trace, "broker_withdraw_offer");
    OpCounters ops;
    Message reply{id(), msg.from, "", {}, msg.trace};
    {
      ScopedOpCounting guard(ops);
      auto offer = broker_.start_withdrawal(denomination, now());
      Writer w;
      w.put_u64(req_id);
      if (offer) {
        reply.type = "withdraw.offer";
        w.put_u64(offer.value().session);
        offer.value().info.encode(w);
        w.put_bigint(offer.value().first.a);
        w.put_bigint(offer.value().first.b);
      } else {
        reply.type = "withdraw.refused";
        w.put_string(offer.refusal().detail);
      }
      reply.payload = w.take();
    }
    send_after_cost(ops, std::move(reply), span);
  } else if (msg.type == "withdraw.challenge") {
    const std::uint64_t session = r.get_u64();
    const BigInt e = r.get_bigint();
    const auto span = start_span(msg.trace, "broker_withdraw_finish");
    OpCounters ops;
    Message reply{id(), msg.from, "", {}, msg.trace};
    {
      ScopedOpCounting guard(ops);
      // finish_withdrawal is idempotent for a retransmitted identical
      // challenge, so client retries after a lost response are safe.
      auto response = broker_.finish_withdrawal(session, e);
      Writer w;
      w.put_u64(session);
      if (response) {
        reply.type = "withdraw.response";
        w.put_bigint(response.value().r);
        w.put_bigint(response.value().c);
        w.put_bigint(response.value().s);
      } else {
        reply.type = "withdraw.refused";
        w.put_string(response.refusal().detail);
      }
      reply.payload = w.take();
    }
    send_after_cost(ops, std::move(reply), span);
  } else if (msg.type == "deposit.submit") {
    auto st = ecash::SignedTranscript::decode(r);
    // The paper's final phase: the broker reconciles the deposit against
    // its spent-coin ledger and credits the merchant.
    const auto span = start_span(msg.trace, "reconcile");
    OpCounters ops;
    Message reply{id(), msg.from, "", {}, msg.trace};
    {
      ScopedOpCounting guard(ops);
      // The depositor is authenticated by its network endpoint here; a real
      // deployment would use a transport-level credential.
      auto receipt =
          broker_.deposit(st.transcript.merchant, st, now());
      Writer w;
      put_hash(w, st.transcript.coin.bare.coin_hash());
      if (receipt) {
        reply.type = "deposit.receipt";
        w.put_u32(receipt.value().credited);
        w.put_u8(receipt.value().paid_from_witness_deposit ? 1 : 0);
      } else {
        reply.type = "deposit.refused";
        // Machine-readable reason first: kAlreadyDeposited tells a retrying
        // depositor that an earlier copy landed and only the receipt was
        // lost, which is an ack rather than an error.
        w.put_u8(static_cast<std::uint8_t>(receipt.refusal().reason));
        w.put_string(receipt.refusal().detail);
      }
      reply.payload = w.take();
    }
    send_after_cost(ops, std::move(reply), span);
  }
}

// ---------------------------------------------------------------------------
// MerchantActor
// ---------------------------------------------------------------------------

void MerchantActor::on_message(const Message& msg) {
  if (msg.type == "pay.commit_req") {
    handle_commit_request(msg);
  } else if (msg.type == "pay.transcript") {
    handle_transcript(msg);
  } else if (msg.type == "pay.sign_req") {
    handle_sign_request(msg);
  } else if (msg.type == "pay.endorse" || msg.type == "pay.double_spend" ||
             msg.type == "pay.sign_refused") {
    handle_sign_reply(msg);
  } else if (msg.type == "deposit.receipt" || msg.type == "deposit.refused") {
    handle_deposit_receipt(msg);
  }
}

void MerchantActor::handle_commit_request(const Message& msg) {
  Reader r(msg.payload);
  const Hash256 coin_hash = get_hash(r);
  const Hash256 nonce = get_hash(r);
  const auto span = start_span(msg.trace, "witness_commit");
  OpCounters ops;
  Message reply{id(), msg.from, "", {}, msg.trace};
  {
    ScopedOpCounting guard(ops);
    auto commitment = witness_.request_commitment(coin_hash, nonce, now());
    Writer w;
    if (commitment) {
      reply.type = "pay.commit";
      commitment.value().encode(w);
    } else {
      reply.type = "pay.commit_refused";
      put_hash(w, coin_hash);
      w.put_string(commitment.refusal().detail);
    }
    reply.payload = w.take();
  }
  send_after_cost(ops, std::move(reply), span);
}

void MerchantActor::handle_transcript(const Message& msg) {
  Reader r(msg.payload);
  auto transcript = ecash::PaymentTranscript::decode(r);
  const std::uint8_t n = r.get_u8();
  std::vector<ecash::WitnessCommitment> commitments;
  commitments.reserve(n);
  for (std::uint8_t i = 0; i < n; ++i)
    commitments.push_back(ecash::WitnessCommitment::decode(r));

  const Hash256 coin_hash = transcript.coin.bare.coin_hash();

  // Idempotent retransmission handling: the client resends the same bytes
  // until it hears back, so a duplicate must converge on the same outcome
  // instead of a "coin already presented" refusal.
  if (merchant_.already_serviced(coin_hash)) {
    // Service was already delivered and the pay.service ack was lost in
    // transit; re-acknowledge.  The transcript only completes once — the
    // deposit queue and service counters are untouched.
    ++resilience_.duplicates_suppressed;
    trace_note(msg.trace, "dup.suppressed", "transcript for serviced coin");
    Writer w;
    put_hash(w, coin_hash);
    send_now(Message{id(), msg.from, "pay.service", w.take(), msg.trace});
    return;
  }
  if (auto it = in_flight_.find(coin_hash); it != in_flight_.end()) {
    if (it->second.client == msg.from) {
      // Same client retransmitted while witnesses are still being gathered:
      // re-drive the sign requests.  Witnesses re-issue endorsements for an
      // identical transcript idempotently, and duplicate endorsements are
      // suppressed in handle_sign_reply.
      ++resilience_.duplicates_suppressed;
      trace_note(msg.trace, "dup.suppressed", "transcript re-drive");
      it->second.trace = msg.trace;  // latest retransmission owns the phase
      Writer w;
      transcript.encode(w);
      auto payload = w.take();
      for (const auto& witness : it->second.witnesses) {
        auto node = directory_.merchants.find(witness);
        if (node == directory_.merchants.end()) continue;
        send_now(
            Message{id(), node->second, "pay.sign_req", payload, msg.trace});
      }
      return;
    }
    // A different client presenting the same coin is a concurrent spend
    // attempt; fall through and let receive_payment refuse it.
  }

  const auto span = start_span(msg.trace, "merchant_validate");
  OpCounters ops;
  std::optional<Refusal> refusal;
  {
    ScopedOpCounting guard(ops);
    auto accepted = merchant_.receive_payment(transcript, commitments, now());
    if (!accepted) refusal = accepted.refusal();
  }
  if (refusal) {
    Writer w;
    put_hash(w, coin_hash);
    w.put_string(refusal->detail);
    send_after_cost(
        ops, Message{id(), msg.from, "pay.refused", w.take(), msg.trace},
        span);
    return;
  }
  InFlight record;
  record.client = msg.from;
  record.trace = msg.trace;
  record.witnesses.reserve(commitments.size());
  for (const auto& commitment : commitments)
    record.witnesses.push_back(commitment.witness);
  in_flight_[coin_hash] = std::move(record);
  // Forward the transcript to every committing witness for countersigning.
  Writer w;
  transcript.encode(w);
  auto payload = w.take();
  bool first = true;
  for (const auto& commitment : commitments) {
    auto node = directory_.merchants.find(commitment.witness);
    if (node == directory_.merchants.end()) continue;
    Message sign_req{id(), node->second, "pay.sign_req", payload, msg.trace};
    if (first)
      send_after_cost(ops, std::move(sign_req), span);
    else
      send_after_cost(ops, std::move(sign_req));
    first = false;
    ops = OpCounters{};  // charge validation cost only once
  }
  // No reachable witness at all: the span would otherwise never close.
  if (first && tracer()) tracer()->end_span(span, "no reachable witness");
}

void MerchantActor::handle_sign_request(const Message& msg) {
  Reader r(msg.payload);
  auto transcript = ecash::PaymentTranscript::decode(r);
  const Hash256 coin_hash = transcript.coin.bare.coin_hash();
  const auto span = start_span(msg.trace, "witness_countersign");
  OpCounters ops;
  Message reply{id(), msg.from, "", {}, msg.trace};
  {
    ScopedOpCounting guard(ops);
    auto result = witness_.sign_transcript(transcript, now());
    Writer w;
    if (!result) {
      reply.type = "pay.sign_refused";
      put_hash(w, coin_hash);
      w.put_string(result.refusal().detail);
    } else if (auto* endorsement =
                   std::get_if<ecash::WitnessEndorsement>(&result.value())) {
      reply.type = "pay.endorse";
      put_hash(w, coin_hash);
      endorsement->encode(w);
    } else {
      reply.type = "pay.double_spend";
      std::get<ecash::DoubleSpendProof>(result.value()).encode(w);
    }
    reply.payload = w.take();
  }
  send_after_cost(ops, std::move(reply), span);
}

void MerchantActor::handle_sign_reply(const Message& msg) {
  Reader r(msg.payload);
  if (msg.type == "pay.double_spend") {
    auto proof = ecash::DoubleSpendProof::decode(r);
    auto client = in_flight_.find(proof.coin_hash);
    if (client == in_flight_.end()) {
      ++resilience_.late_replies_ignored;
      trace_note(msg.trace, "late_reply.ignored", "double-spend proof");
      return;
    }
    OpCounters ops;
    Message reply{id(), client->second.client, "", {},
                  client->second.trace};
    {
      ScopedOpCounting guard(ops);
      auto verified = merchant_.handle_double_spend(proof.coin_hash, proof);
      Writer w;
      if (verified) {
        reply.type = "pay.refused_double_spend";
        verified.value().encode(w);
      } else {
        // Witness answered with a bogus proof: from the client's view the
        // payment failed; the merchant can escalate to the arbiter.
        reply.type = "pay.refused";
        put_hash(w, proof.coin_hash);
        w.put_string(verified.refusal().detail);
      }
      reply.payload = w.take();
    }
    in_flight_.erase(client);
    send_after_cost(ops, std::move(reply));
    return;
  }

  const Hash256 coin_hash = get_hash(r);
  auto client = in_flight_.find(coin_hash);
  if (client == in_flight_.end()) {
    ++resilience_.late_replies_ignored;
    trace_note(msg.trace, "late_reply.ignored", msg.type);
    return;
  }

  if (msg.type == "pay.sign_refused") {
    const std::string detail = r.get_string();
    merchant_.abandon(coin_hash);
    Writer w;
    put_hash(w, coin_hash);
    w.put_string("witness refused: " + detail);
    send_now(Message{id(), client->second.client, "pay.refused", w.take(),
                     client->second.trace});
    in_flight_.erase(client);
    return;
  }

  // pay.endorse
  auto endorsement = ecash::WitnessEndorsement::decode(r);
  const obs::TraceContext payment_trace = client->second.trace;
  OpCounters ops;
  std::optional<Message> reply;
  bool serviced = false;
  {
    ScopedOpCounting guard(ops);
    auto done = merchant_.add_endorsement(coin_hash, endorsement);
    Writer w;
    if (!done) {
      if (done.refusal().reason == RefusalReason::kDuplicate) {
        // A re-driven sign request produced a second identical endorsement;
        // not a protocol failure, just a duplicate delivery.
        ++resilience_.duplicates_suppressed;
        trace_note(payment_trace, "dup.suppressed", "duplicate endorsement");
        return;
      }
      put_hash(w, coin_hash);
      w.put_string(done.refusal().detail);
      reply = Message{id(), client->second.client, "pay.refused", w.take(),
                      payment_trace};
    } else if (done.value()) {
      put_hash(w, coin_hash);
      reply = Message{id(), client->second.client, "pay.service", w.take(),
                      payment_trace};
      serviced = true;
    }
    // else: keep waiting for more endorsements (k-of-n).
  }
  if (reply) {
    if (serviced) {
      // Remember the payment's trace so the eventual deposit of this coin
      // (driven by flush_deposits, possibly much later) joins the same trace.
      deposit_trace_[coin_hash] = payment_trace;
    }
    in_flight_.erase(client);
    send_after_cost(ops, std::move(*reply));
  }
}

void MerchantActor::flush_deposits() {
  for (auto& st : merchant_.drain_deposit_queue()) {
    Writer w;
    st.encode(w);
    const Hash256 coin_hash = st.transcript.coin.bare.coin_hash();
    PendingDeposit pd;
    pd.payload = w.take();
    if (auto it = deposit_trace_.find(coin_hash);
        it != deposit_trace_.end()) {
      pd.parent = it->second;
      deposit_trace_.erase(it);
    }
    pending_deposits_[coin_hash] = std::move(pd);
  }
  // Collect keys first: send_deposit arms timers but never mutates the map,
  // still, iterate defensively over a stable key list.
  std::vector<Hash256> to_send;
  for (auto& [coin_hash, pd] : pending_deposits_) {
    if (pd.attempts > 0 && !pd.exhausted) continue;  // retry loop is running
    pd.exhausted = false;
    pd.attempts = 0;
    pd.prev_backoff = 0;
    to_send.push_back(coin_hash);
  }
  for (const auto& coin_hash : to_send) send_deposit(coin_hash);
}

void MerchantActor::send_deposit(const Hash256& coin_hash) {
  auto it = pending_deposits_.find(coin_hash);
  if (it == pending_deposits_.end()) return;
  PendingDeposit& pd = it->second;
  if (!pd.span.valid()) pd.span = start_span(pd.parent, "deposit");
  ++pd.attempts;
  send_now(Message{id(), directory_.broker, "deposit.submit", pd.payload,
                   pd.span});
  arm_deposit_timer(coin_hash, pd.attempts);
}

void MerchantActor::arm_deposit_timer(const Hash256& coin_hash,
                                      std::size_t attempts_when_armed) {
  const std::uint64_t restart_gen = restart_generation_;
  schedule(
      retry_.attempt_timeout_ms,
      [this, coin_hash, attempts_when_armed, restart_gen]() {
        if (restart_gen != restart_generation_) return;
        auto it = pending_deposits_.find(coin_hash);
        if (it == pending_deposits_.end()) return;  // acknowledged
        PendingDeposit& pd = it->second;
        if (pd.exhausted || pd.attempts != attempts_when_armed) return;
        if (pd.attempts >= retry_.max_attempts) {
          // Keep the transcript; a later flush_deposits() re-submits it.
          pd.exhausted = true;
          ++resilience_.timeouts;
          trace_note(pd.span, "rpc.exhausted",
                     "deposit retries exhausted; parked for next flush");
          if (auto* tr = tracer()) tr->end_span(pd.span, "exhausted");
          pd.span = obs::TraceContext{};
          return;
        }
        const SimTime backoff = retry_.next_backoff(pd.prev_backoff, rng());
        pd.prev_backoff = backoff;
        schedule(
            backoff, [this, coin_hash, attempts_when_armed, restart_gen]() {
              if (restart_gen != restart_generation_) return;
              auto it2 = pending_deposits_.find(coin_hash);
              if (it2 == pending_deposits_.end()) return;
              if (it2->second.exhausted ||
                  it2->second.attempts != attempts_when_armed)
                return;
              ++resilience_.retries;
              trace_note(it2->second.span, "rpc.retry",
                         "deposit attempt timed out; resending");
              send_deposit(coin_hash);
            });
      });
}

void MerchantActor::handle_deposit_receipt(const Message& msg) {
  Reader r(msg.payload);
  const Hash256 coin_hash = get_hash(r);
  auto it = pending_deposits_.find(coin_hash);
  if (it == pending_deposits_.end()) return;  // manual submission or dup ack
  std::string status = "ok";
  if (msg.type == "deposit.refused") {
    const auto reason = static_cast<RefusalReason>(r.get_u8());
    if (reason == RefusalReason::kAlreadyDeposited) {
      // An earlier retry landed and only the receipt was lost: that is an
      // ack, not an error.
      ++resilience_.duplicates_suppressed;
      trace_note(it->second.span, "dup.suppressed",
                 "already deposited: lost receipt, not an error");
    } else {
      status = "refused";
    }
    // Any other refusal is definitive (the broker validated and said no);
    // retrying the same bytes cannot change it.
  }
  if (auto* tr = tracer()) tr->end_span(it->second.span, status);
  pending_deposits_.erase(it);
}

void MerchantActor::on_restart() {
  // Volatile per-payment state is gone — clients re-drive or time out.
  in_flight_.clear();
  ++restart_generation_;  // orphan all armed timers
  // Deposit submissions are journaled with the durable storefront state.
  // The node is still down while this hook runs, so mark them for
  // re-submission by the next flush_deposits() instead of resending here.
  for (auto& [coin_hash, pd] : pending_deposits_) {
    pd.exhausted = true;
    pd.prev_backoff = 0;
    trace_note(pd.span, "node.restart", "merchant restarted mid-deposit");
    if (auto* tr = tracer()) tr->end_span(pd.span, "restart");
    pd.span = obs::TraceContext{};
  }
}

// ---------------------------------------------------------------------------
// ClientActor
// ---------------------------------------------------------------------------

ClientActor::ClientActor(transport::Transport& tx, simnet::CostModel cost,
                         const group::SchnorrGroup& grp,
                         sig::PublicKey broker_key,
                         const ecash::WitnessTable& table,
                         const Directory& directory, std::uint64_t seed)
    : ProtocolActor(tx, cost),
      grp_(grp),
      broker_key_(broker_key),
      table_(table),
      directory_(directory),
      rng_(seed),
      wallet_(grp, broker_key, broker_key, rng_) {}

void ClientActor::withdraw(Cents denomination, WithdrawCallback done,
                           SimTime deadline_ms) {
  const std::uint64_t req_id = next_request_++;
  PendingWithdrawal pending;
  pending.done = std::move(done);
  pending.generation = ++withdraw_generation_;
  if (auto* tr = tracer()) pending.span = tr->start_root("withdraw", id());
  Writer w;
  w.put_u64(req_id);
  w.put_u32(denomination);
  pending.last_type = "withdraw.start";
  pending.last_payload = w.take();
  const std::uint64_t generation = pending.generation;
  if (deadline_ms > 0) {
    pending.deadline = now_ms() + deadline_ms;
    // Overall deadline: fail with a clean refusal if still unresolved.
    schedule(deadline_ms, [this, generation]() {
      auto fail_in = [&](std::map<std::uint64_t, PendingWithdrawal>& m) {
        for (auto it = m.begin(); it != m.end(); ++it) {
          if (it->second.generation != generation) continue;
          auto cb = std::move(it->second.done);
          const auto span = it->second.span;
          m.erase(it);
          ++resilience_.timeouts;
          trace_note(span, "rpc.timeout", "withdrawal deadline expired");
          if (auto* tr = tracer()) tr->end_span(span, "timeout");
          cb(Refusal{RefusalReason::kInternal, "timeout"});
          return true;
        }
        return false;
      };
      if (!fail_in(withdrawal_requests_)) fail_in(withdrawal_sessions_);
    });
  }
  auto payload = pending.last_payload;
  const obs::TraceContext span = pending.span;
  withdrawal_requests_[req_id] = std::move(pending);
  send_now(Message{id(), directory_.broker, "withdraw.start",
                   std::move(payload), span});
  if (deadline_ms > 0) arm_withdraw_timer(false, req_id, generation, 1);
}

ClientActor::PendingWithdrawal* ClientActor::find_withdrawal(
    bool by_session, std::uint64_t key, std::uint64_t generation) {
  auto& map = by_session ? withdrawal_sessions_ : withdrawal_requests_;
  auto it = map.find(key);
  if (it == map.end() || it->second.generation != generation) return nullptr;
  return &it->second;
}

void ClientActor::arm_withdraw_timer(bool by_session, std::uint64_t key,
                                     std::uint64_t generation,
                                     std::size_t attempts) {
  schedule(retry_.attempt_timeout_ms,
                      [this, by_session, key, generation, attempts]() {
                        on_withdraw_silence(by_session, key, generation,
                                            attempts);
                      });
}

void ClientActor::on_withdraw_silence(bool by_session, std::uint64_t key,
                                      std::uint64_t generation,
                                      std::size_t attempts) {
  PendingWithdrawal* pending = find_withdrawal(by_session, key, generation);
  if (!pending || pending->deadline <= 0) return;
  if (pending->attempts != attempts) return;  // a newer attempt is in flight
  trace_note(pending->span, "rpc.silence", "no broker reply before timeout");
  if (health_.record_failure(directory_.broker, now_ms())) {
    ++resilience_.breaker_trips;
    trace_note(pending->span, "breaker.trip", "broker circuit opened");
  }
  if (pending->attempts >= retry_.max_attempts) return;  // deadline decides
  const SimTime backoff = retry_.next_backoff(pending->prev_backoff,
                                              rng());
  pending->prev_backoff = backoff;
  schedule(backoff, [this, by_session, key, generation,
                                attempts]() {
    PendingWithdrawal* p = find_withdrawal(by_session, key, generation);
    if (!p || p->attempts != attempts) return;
    if (!health_.allow(directory_.broker, now_ms())) {
      // Breaker open: re-arm so the retry loop resumes with the probe.
      arm_withdraw_timer(by_session, key, generation, attempts);
      return;
    }
    ++p->attempts;
    ++resilience_.retries;
    trace_note(p->span, "rpc.retry", "resending " + p->last_type);
    send_now(Message{id(), directory_.broker, p->last_type, p->last_payload,
                     p->span});
    arm_withdraw_timer(by_session, key, generation, p->attempts);
  });
}

void ClientActor::handle_withdraw_offer(const Message& msg) {
  Reader r(msg.payload);
  const std::uint64_t req_id = r.get_u64();
  auto it = withdrawal_requests_.find(req_id);
  if (it == withdrawal_requests_.end()) {
    // Duplicate offer (retransmitted start, duplicated delivery) — the
    // first copy won and this request id is gone.
    ++resilience_.late_replies_ignored;
    trace_note(msg.trace, "late_reply.ignored", "withdraw.offer");
    return;
  }

  ecash::Broker::WithdrawalOffer offer;
  offer.session = r.get_u64();
  offer.info = ecash::CoinInfo::decode(r);
  offer.first.a = r.get_bigint();
  offer.first.b = r.get_bigint();

  health_.record_success(directory_.broker);
  OpCounters ops;
  Message reply{id(), directory_.broker, "withdraw.challenge", {},
                it->second.span};
  {
    ScopedOpCounting guard(ops);
    it->second.state = wallet_.begin_withdrawal(offer);
    Writer w;
    w.put_u64(it->second.state->session);
    w.put_bigint(it->second.state->e);
    reply.payload = w.take();
  }
  // Move the pending record to the by-session map for the response phase.
  auto pending = std::move(it->second);
  withdrawal_requests_.erase(it);
  const std::uint64_t session = pending.state->session;
  const std::uint64_t generation = pending.generation;
  const bool retries = pending.deadline > 0;
  pending.last_type = "withdraw.challenge";
  pending.last_payload = reply.payload;
  pending.attempts = 1;
  pending.prev_backoff = 0;
  withdrawal_sessions_[session] = std::move(pending);
  send_after_cost(ops, std::move(reply));
  if (retries) arm_withdraw_timer(true, session, generation, 1);
}

void ClientActor::handle_withdraw_response(const Message& msg) {
  Reader r(msg.payload);
  const std::uint64_t id = r.get_u64();
  auto it = withdrawal_sessions_.find(id);
  if (it == withdrawal_sessions_.end() && msg.type == "withdraw.refused") {
    // A refusal straight after withdraw.start carries our request id.
    it = withdrawal_requests_.find(id);
    if (it == withdrawal_requests_.end()) {
      ++resilience_.late_replies_ignored;
      trace_note(msg.trace, "late_reply.ignored", "withdraw.refused");
      return;
    }
    auto pending = std::move(it->second);
    withdrawal_requests_.erase(it);
    if (auto* tr = tracer()) tr->end_span(pending.span, "refused");
    pending.done(Refusal{RefusalReason::kInternal, r.get_string()});
    return;
  }
  if (it == withdrawal_sessions_.end()) {
    ++resilience_.late_replies_ignored;
    trace_note(msg.trace, "late_reply.ignored", msg.type);
    return;
  }
  auto pending = std::move(it->second);
  withdrawal_sessions_.erase(it);

  if (msg.type == "withdraw.refused") {
    if (auto* tr = tracer()) tr->end_span(pending.span, "refused");
    pending.done(Refusal{RefusalReason::kInternal, r.get_string()});
    return;
  }
  health_.record_success(directory_.broker);
  blindsig::SignerResponse response;
  response.r = r.get_bigint();
  response.c = r.get_bigint();
  response.s = r.get_bigint();
  OpCounters ops;
  Outcome<ecash::WalletCoin> coin =
      Refusal{RefusalReason::kInternal, "unset"};
  {
    ScopedOpCounting guard(ops);
    coin = wallet_.complete_withdrawal(*pending.state, response, table_);
  }
  // Charge the unblinding cost before reporting completion.
  schedule(cost_.sample_cost_ms(ops, rng()),
                      [this, span = pending.span,
                       done = std::move(pending.done),
                       coin = std::move(coin)]() mutable {
                        if (auto* tr = tracer())
                          tr->end_span(span, coin ? "ok" : "refused");
                        done(std::move(coin));
                      });
}

void ClientActor::pay(const ecash::WalletCoin& coin,
                      const MerchantId& merchant, PayCallback done,
                      SimTime timeout_ms) {
  // One in-flight payment per coin per client: replies are correlated by
  // coin hash.  (An attacker wanting concurrent spends runs two clients —
  // see the actors test; the witness still serializes them.)
  {
    metrics::ScopedSuspendOpCounting suspend;
    const auto hash = coin.coin.bare.coin_hash();
    if (payments_.contains(hash)) {
      PayResult result;
      result.error = "payment already in flight for this coin";
      done(std::move(result));
      return;
    }
  }
  auto merchant_node = directory_.merchants.find(merchant);
  if (merchant_node == directory_.merchants.end()) {
    PayResult result;
    result.error = "unknown merchant";
    done(std::move(result));
    return;
  }
  PendingPayment p;
  p.coin = coin;
  p.merchant = merchant;
  p.merchant_node = merchant_node->second;
  p.started = now_ms();
  p.deadline = p.started + timeout_ms;
  p.generation = ++pay_generation_;
  p.done = std::move(done);
  if (auto* tr = tracer()) {
    p.trace_root = tr->start_root("payment", id());
    p.phase = tr->start_child(p.trace_root, "assign_witness", id());
  }

  OpCounters ops;
  {
    ScopedOpCounting guard(ops);
    p.intent = wallet_.prepare_payment(coin, merchant);
  }
  {
    // The coin's n witness entries are its replica set.  Order them the way
    // a chord successor-list lookup would try replicas from the coin's
    // primary witness point: nearest clockwise range first, then onward
    // around the ring.  (Suspended counting: witness_point re-hashes the
    // coin, which is bookkeeping, not protocol work.)
    metrics::ScopedSuspendOpCounting suspend;
    const bn::BigInt key = coin.coin.bare.witness_point(0);
    std::vector<bn::BigInt> points;
    points.reserve(coin.coin.witnesses.size());
    for (const auto& entry : coin.coin.witnesses) points.push_back(entry.lo);
    for (std::size_t idx : overlay::failover_order(key, points)) {
      const auto& entry = coin.coin.witnesses[idx];
      auto node = directory_.merchants.find(entry.merchant);
      if (node == directory_.merchants.end()) continue;
      WitnessAttempt attempt;
      attempt.witness = entry.merchant;
      attempt.node = node->second;
      p.plan.push_back(std::move(attempt));
    }
  }
  Writer w;
  put_hash(w, p.intent.coin_hash);
  put_hash(w, p.intent.nonce);
  p.commit_payload = w.take();

  const Hash256 coin_hash = p.intent.coin_hash;
  const std::uint64_t generation = p.generation;
  payments_[coin_hash] = std::move(p);

  // Step 1: engage the first witness_k admissible witnesses in failover
  // order, after charging the preparation cost once.  The rest of the plan
  // is spare capacity for failover.
  auto engage = [this, coin_hash, generation]() {
    auto it = payments_.find(coin_hash);
    if (it == payments_.end() || it->second.generation != generation) return;
    PendingPayment& payment = it->second;
    // Witness selection done: move the trace into the commit phase.
    if (auto* tr = tracer()) {
      tr->end_span(payment.phase);
      payment.phase = tr->start_child(payment.trace_root, "payment_commit",
                                      id());
    }
    const std::size_t need = payment.coin.coin.bare.info.witness_k;
    std::size_t engaged = 0;
    for (std::size_t i = 0; i < payment.plan.size() && engaged < need; ++i) {
      if (!health_.allow(payment.plan[i].node, now_ms())) continue;
      send_commit_req(payment, i);
      ++engaged;
    }
  };
  const SimTime prep_cost = cost_.sample_cost_ms(ops, rng());
  if (prep_cost > 0) {
    schedule(prep_cost, engage);
  } else {
    engage();
  }

  schedule(timeout_ms, [this, coin_hash, generation]() {
    auto it = payments_.find(coin_hash);
    if (it == payments_.end() || it->second.generation != generation) return;
    PayResult result;
    result.accepted = false;
    result.elapsed_ms = now_ms() - it->second.started;
    result.error = "timeout";
    ++resilience_.timeouts;
    trace_note(it->second.phase, "rpc.timeout", "payment deadline expired");
    finish_payment(it->second, std::move(result));
  });
}

void ClientActor::send_commit_req(PendingPayment& p, std::size_t index) {
  WitnessAttempt& attempt = p.plan[index];
  ++attempt.attempts;
  send_now(Message{id(), attempt.node, "pay.commit_req", p.commit_payload,
                   p.phase});
  arm_commit_timer(p.intent.coin_hash, p.generation, index, attempt.attempts);
}

void ClientActor::arm_commit_timer(const Hash256& coin_hash,
                                   std::uint64_t generation, std::size_t index,
                                   std::size_t attempts) {
  schedule(retry_.attempt_timeout_ms,
                      [this, coin_hash, generation, index, attempts]() {
                        on_commit_silence(coin_hash, generation, index,
                                          attempts);
                      });
}

void ClientActor::on_commit_silence(const Hash256& coin_hash,
                                    std::uint64_t generation,
                                    std::size_t index, std::size_t attempts) {
  auto it = payments_.find(coin_hash);
  if (it == payments_.end() || it->second.generation != generation) return;
  PendingPayment& p = it->second;
  if (!p.transcript_payload.empty()) return;  // commit stage already done
  WitnessAttempt& attempt = p.plan[index];
  if (attempt.committed || attempt.refused || attempt.exhausted ||
      attempt.attempts != attempts)
    return;
  // Silence: the witness (or the path to it) is failing.  Hedge with the
  // next replica immediately, and retry this one with backoff until its
  // attempt budget runs out.
  trace_note(p.phase, "rpc.silence",
             "no commit from witness node " + std::to_string(attempt.node));
  if (health_.record_failure(attempt.node, now_ms())) {
    ++resilience_.breaker_trips;
    trace_note(p.phase, "breaker.trip",
               "witness node " + std::to_string(attempt.node) +
                   " circuit opened");
  }
  engage_next_witness(p);
  if (attempt.attempts >= retry_.max_attempts) {
    attempt.exhausted = true;
    trace_note(p.phase, "rpc.exhausted",
               "witness node " + std::to_string(attempt.node) +
                   " attempt budget spent");
    check_commit_possibility(p, "witness unreachable");
    return;
  }
  const SimTime backoff = retry_.next_backoff(attempt.prev_backoff, rng());
  attempt.prev_backoff = backoff;
  schedule(backoff, [this, coin_hash, generation, index,
                                attempts]() {
    auto it2 = payments_.find(coin_hash);
    if (it2 == payments_.end() || it2->second.generation != generation) return;
    PendingPayment& p2 = it2->second;
    if (!p2.transcript_payload.empty()) return;
    WitnessAttempt& a2 = p2.plan[index];
    if (a2.committed || a2.refused || a2.exhausted || a2.attempts != attempts)
      return;
    ++resilience_.retries;
    trace_note(p2.phase, "rpc.retry",
               "re-requesting commitment from witness node " +
                   std::to_string(a2.node));
    send_commit_req(p2, index);
  });
}

void ClientActor::engage_next_witness(PendingPayment& p) {
  for (std::size_t i = 0; i < p.plan.size(); ++i) {
    WitnessAttempt& attempt = p.plan[i];
    if (attempt.attempts > 0 || attempt.refused || attempt.exhausted) continue;
    if (!health_.allow(attempt.node, now_ms())) continue;
    ++resilience_.failovers;
    trace_note(p.phase, "rpc.failover",
               "engaging spare witness node " + std::to_string(attempt.node));
    send_commit_req(p, i);
    return;
  }
}

void ClientActor::check_commit_possibility(PendingPayment& p,
                                           const std::string& detail) {
  const std::size_t need = p.coin.coin.bare.info.witness_k;
  if (p.commitments.size() >= need) return;
  std::size_t possible = 0;
  for (const auto& attempt : p.plan) {
    if (!attempt.refused && !attempt.exhausted) ++possible;
  }
  if (possible >= need) return;
  PayResult result;
  result.elapsed_ms = now_ms() - p.started;
  result.error = detail;
  finish_payment(p, std::move(result));
}

void ClientActor::handle_commit(const Message& msg) {
  Reader r(msg.payload);
  auto commitment = ecash::WitnessCommitment::decode(r);
  auto it = payments_.find(commitment.coin_hash);
  if (it == payments_.end()) {
    ++resilience_.late_replies_ignored;
    trace_note(msg.trace, "late_reply.ignored", "pay.commit");
    return;
  }
  PendingPayment& p = it->second;
  if (commitment.nonce != p.intent.nonce) {
    // A commitment from an earlier, abandoned payment of this coin — its
    // nonce binds a different (salt, merchant) pair.
    ++resilience_.late_replies_ignored;
    trace_note(msg.trace, "late_reply.ignored", "stale-nonce commitment");
    return;
  }
  auto plan_it = std::find_if(p.plan.begin(), p.plan.end(),
                              [&](const WitnessAttempt& a) {
                                return a.witness == commitment.witness;
                              });
  if (plan_it == p.plan.end()) {
    ++resilience_.late_replies_ignored;
    trace_note(msg.trace, "late_reply.ignored", "unknown witness");
    return;
  }
  if (plan_it->committed) {
    ++resilience_.duplicates_suppressed;  // duplicated delivery / resend echo
    trace_note(p.phase, "dup.suppressed", "duplicate commitment");
    return;
  }
  plan_it->committed = true;
  health_.record_success(plan_it->node);
  const std::uint8_t need = p.coin.coin.bare.info.witness_k;
  if (p.commitments.size() >= need) return;  // hedged extra; already moving on
  p.commitments.push_back(std::move(commitment));
  if (p.commitments.size() < need) return;

  // k commitments gathered: the commit phase is over, the witness-sign
  // phase (transcript build, merchant validation, countersignatures) opens.
  if (auto* tr = tracer()) {
    tr->end_span(p.phase);
    p.phase = tr->start_child(p.trace_root, "witness_sign", id());
  }

  // Step 3: build and send the transcript (this is where the client's Ver
  // of the commitment signature and the NIZK response happen).
  OpCounters ops;
  Outcome<ecash::PaymentTranscript> transcript =
      Refusal{RefusalReason::kInternal, "unset"};
  {
    ScopedOpCounting guard(ops);
    transcript = wallet_.build_transcript(p.coin, p.intent, p.commitments,
                                          now());
  }
  if (!transcript) {
    PayResult result;
    result.elapsed_ms = now_ms() - p.started;
    result.error = transcript.refusal().detail;
    finish_payment(p, std::move(result));
    return;
  }
  Writer w;
  transcript.value().encode(w);
  w.put_u8(static_cast<std::uint8_t>(p.commitments.size()));
  for (const auto& c : p.commitments) c.encode(w);
  p.transcript_payload = w.take();

  const Hash256 coin_hash = p.intent.coin_hash;
  const std::uint64_t generation = p.generation;
  const SimTime build_cost = cost_.sample_cost_ms(ops, rng());
  auto deliver = [this, coin_hash, generation]() {
    auto it2 = payments_.find(coin_hash);
    if (it2 == payments_.end() || it2->second.generation != generation) return;
    send_transcript(it2->second);
  };
  if (build_cost > 0) {
    schedule(build_cost, deliver);
  } else {
    deliver();
  }
}

void ClientActor::send_transcript(PendingPayment& p) {
  ++p.transcript_attempts;
  send_now(Message{id(), p.merchant_node, "pay.transcript",
                   p.transcript_payload, p.phase});
  arm_transcript_timer(p.intent.coin_hash, p.generation,
                       p.transcript_attempts);
}

void ClientActor::arm_transcript_timer(const Hash256& coin_hash,
                                       std::uint64_t generation,
                                       std::size_t attempts) {
  schedule(retry_.attempt_timeout_ms,
                      [this, coin_hash, generation, attempts]() {
                        on_transcript_silence(coin_hash, generation, attempts);
                      });
}

void ClientActor::on_transcript_silence(const Hash256& coin_hash,
                                        std::uint64_t generation,
                                        std::size_t attempts) {
  auto it = payments_.find(coin_hash);
  if (it == payments_.end() || it->second.generation != generation) return;
  PendingPayment& p = it->second;
  if (p.transcript_attempts != attempts) return;  // a resend superseded this
  trace_note(p.phase, "rpc.silence", "no merchant reply to transcript");
  if (health_.record_failure(p.merchant_node, now_ms())) {
    ++resilience_.breaker_trips;
    trace_note(p.phase, "breaker.trip", "merchant circuit opened");
  }
  if (p.transcript_attempts >= retry_.max_attempts) {
    // The merchant is the one fixed counterparty — no failover target.
    PayResult result;
    result.elapsed_ms = now_ms() - p.started;
    result.error = "merchant unreachable";
    finish_payment(p, std::move(result));
    return;
  }
  const SimTime backoff =
      retry_.next_backoff(p.transcript_prev_backoff, rng());
  p.transcript_prev_backoff = backoff;
  schedule(backoff, [this, coin_hash, generation, attempts]() {
    auto it2 = payments_.find(coin_hash);
    if (it2 == payments_.end() || it2->second.generation != generation) return;
    PendingPayment& p2 = it2->second;
    if (p2.transcript_attempts != attempts) return;
    ++resilience_.retries;
    trace_note(p2.phase, "rpc.retry", "resending transcript");
    send_transcript(p2);
  });
}

void ClientActor::handle_pay_reply(const Message& msg) {
  Reader r(msg.payload);
  if (msg.type == "pay.refused_double_spend") {
    auto proof = ecash::DoubleSpendProof::decode(r);
    auto it = payments_.find(proof.coin_hash);
    if (it == payments_.end()) {
      ++resilience_.late_replies_ignored;
      trace_note(msg.trace, "late_reply.ignored", "double-spend refusal");
      return;
    }
    if (msg.from != it->second.merchant_node) {
      ++resilience_.late_replies_ignored;
      trace_note(msg.trace, "late_reply.ignored", "wrong merchant");
      return;
    }
    trace_note(it->second.phase, "pay.double_spend",
               "merchant returned a double-spend proof");
    PayResult result;
    result.elapsed_ms = now_ms() - it->second.started;
    result.double_spend_proof = std::move(proof);
    result.error = "double spend detected";
    finish_payment(it->second, std::move(result));
    return;
  }
  const Hash256 coin_hash = get_hash(r);
  auto it = payments_.find(coin_hash);
  if (it == payments_.end()) {
    ++resilience_.late_replies_ignored;
    trace_note(msg.trace, "late_reply.ignored", msg.type);
    return;
  }
  PendingPayment& p = it->second;

  if (msg.type == "pay.commit_refused") {
    // One witness refused to commit; under k-of-n others may still carry
    // the payment.  Fail only when k successes are no longer reachable.
    auto plan_it = std::find_if(p.plan.begin(), p.plan.end(),
                                [&](const WitnessAttempt& a) {
                                  return a.node == msg.from;
                                });
    if (plan_it == p.plan.end()) {
      ++resilience_.late_replies_ignored;
      trace_note(msg.trace, "late_reply.ignored", "refusal from non-plan node");
      return;
    }
    plan_it->refused = true;
    health_.record_success(plan_it->node);  // it answered; it is alive
    trace_note(p.phase, "commit.refused",
               "witness node " + std::to_string(plan_it->node) + " refused");
    engage_next_witness(p);
    check_commit_possibility(p, "commitment refused: " + r.get_string());
    return;
  }

  // pay.service / pay.refused come from the payment's merchant; anything
  // else is a stray or stale delivery.
  if (msg.from != p.merchant_node) {
    ++resilience_.late_replies_ignored;
    trace_note(msg.trace, "late_reply.ignored", "reply from wrong node");
    return;
  }
  PayResult result;
  result.elapsed_ms = now_ms() - p.started;
  if (msg.type == "pay.service") {
    health_.record_success(p.merchant_node);
    result.accepted = true;
  } else {
    result.error = r.get_string();
  }
  finish_payment(p, std::move(result));
}

void ClientActor::finish_payment(PendingPayment& p, PayResult result) {
  result.trace_id = p.trace_root.trace;
  if (auto* tr = tracer()) {
    const std::string status =
        result.accepted ? "ok" : result.error.value_or("failed");
    tr->end_span(p.phase, status);
    tr->end_span(p.trace_root, status);
  }
  auto done = std::move(p.done);
  payments_.erase(p.intent.coin_hash);
  done(std::move(result));
}

void ClientActor::on_message(const Message& msg) {
  if (msg.type == "withdraw.offer") {
    handle_withdraw_offer(msg);
  } else if (msg.type == "withdraw.response" ||
             msg.type == "withdraw.refused") {
    handle_withdraw_response(msg);
  } else if (msg.type == "pay.commit") {
    handle_commit(msg);
  } else if (msg.type == "pay.service" || msg.type == "pay.refused" ||
             msg.type == "pay.refused_double_spend" ||
             msg.type == "pay.commit_refused") {
    handle_pay_reply(msg);
  }
}

}  // namespace p2pcash::actors
