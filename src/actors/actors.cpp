#include "actors/actors.h"

#include "wire/codec.h"

namespace p2pcash::actors {

using bn::BigInt;
using ecash::Hash256;
using ecash::Outcome;
using ecash::Refusal;
using ecash::RefusalReason;
using metrics::OpCounters;
using metrics::ScopedOpCounting;
using wire::Reader;
using wire::Writer;

namespace {

void put_hash(Writer& w, const Hash256& h) { w.put_bytes(h); }

Hash256 get_hash(Reader& r) {
  auto bytes = r.get_bytes();
  if (bytes.size() != 32) throw wire::DecodeError("expected 32-byte hash");
  Hash256 h;
  std::copy(bytes.begin(), bytes.end(), h.begin());
  return h;
}

}  // namespace

// ---------------------------------------------------------------------------
// ProtocolActor
// ---------------------------------------------------------------------------

void ProtocolActor::send_after_cost(const OpCounters& ops, Message msg) {
  const SimTime cost = cost_.sample_cost_ms(ops, net_.rng());
  if (cost <= 0) {
    net_.send(std::move(msg));
    return;
  }
  net_.sim().schedule(cost,
                      [this, msg = std::move(msg)]() mutable {
                        net_.send(std::move(msg));
                      });
}

void ProtocolActor::send_now(Message msg) { net_.send(std::move(msg)); }

// ---------------------------------------------------------------------------
// BrokerActor
// ---------------------------------------------------------------------------

void BrokerActor::on_message(const Message& msg) {
  Reader r(msg.payload);
  if (msg.type == "withdraw.start") {
    const std::uint64_t req_id = r.get_u64();
    const Cents denomination = r.get_u32();
    OpCounters ops;
    Message reply{id(), msg.from, "", {}};
    {
      ScopedOpCounting guard(ops);
      auto offer = broker_.start_withdrawal(denomination, now());
      Writer w;
      w.put_u64(req_id);
      if (offer) {
        reply.type = "withdraw.offer";
        w.put_u64(offer.value().session);
        offer.value().info.encode(w);
        w.put_bigint(offer.value().first.a);
        w.put_bigint(offer.value().first.b);
      } else {
        reply.type = "withdraw.refused";
        w.put_string(offer.refusal().detail);
      }
      reply.payload = w.take();
    }
    send_after_cost(ops, std::move(reply));
  } else if (msg.type == "withdraw.challenge") {
    const std::uint64_t session = r.get_u64();
    const BigInt e = r.get_bigint();
    OpCounters ops;
    Message reply{id(), msg.from, "", {}};
    {
      ScopedOpCounting guard(ops);
      auto response = broker_.finish_withdrawal(session, e);
      Writer w;
      w.put_u64(session);
      if (response) {
        reply.type = "withdraw.response";
        w.put_bigint(response.value().r);
        w.put_bigint(response.value().c);
        w.put_bigint(response.value().s);
      } else {
        reply.type = "withdraw.refused";
        w.put_string(response.refusal().detail);
      }
      reply.payload = w.take();
    }
    send_after_cost(ops, std::move(reply));
  } else if (msg.type == "deposit.submit") {
    auto st = ecash::SignedTranscript::decode(r);
    OpCounters ops;
    Message reply{id(), msg.from, "", {}};
    {
      ScopedOpCounting guard(ops);
      // The depositor is authenticated by its network endpoint here; a real
      // deployment would use a transport-level credential.
      auto receipt =
          broker_.deposit(st.transcript.merchant, st, now());
      Writer w;
      put_hash(w, st.transcript.coin.bare.coin_hash());
      if (receipt) {
        reply.type = "deposit.receipt";
        w.put_u32(receipt.value().credited);
        w.put_u8(receipt.value().paid_from_witness_deposit ? 1 : 0);
      } else {
        reply.type = "deposit.refused";
        w.put_string(receipt.refusal().detail);
      }
      reply.payload = w.take();
    }
    send_after_cost(ops, std::move(reply));
  }
}

// ---------------------------------------------------------------------------
// MerchantActor
// ---------------------------------------------------------------------------

void MerchantActor::on_message(const Message& msg) {
  if (msg.type == "pay.commit_req") {
    handle_commit_request(msg);
  } else if (msg.type == "pay.transcript") {
    handle_transcript(msg);
  } else if (msg.type == "pay.sign_req") {
    handle_sign_request(msg);
  } else if (msg.type == "pay.endorse" || msg.type == "pay.double_spend" ||
             msg.type == "pay.sign_refused") {
    handle_sign_reply(msg);
  } else if (msg.type == "deposit.receipt" || msg.type == "deposit.refused") {
    handle_deposit_receipt(msg);
  }
}

void MerchantActor::handle_commit_request(const Message& msg) {
  Reader r(msg.payload);
  const Hash256 coin_hash = get_hash(r);
  const Hash256 nonce = get_hash(r);
  OpCounters ops;
  Message reply{id(), msg.from, "", {}};
  {
    ScopedOpCounting guard(ops);
    auto commitment = witness_.request_commitment(coin_hash, nonce, now());
    Writer w;
    if (commitment) {
      reply.type = "pay.commit";
      commitment.value().encode(w);
    } else {
      reply.type = "pay.commit_refused";
      put_hash(w, coin_hash);
      w.put_string(commitment.refusal().detail);
    }
    reply.payload = w.take();
  }
  send_after_cost(ops, std::move(reply));
}

void MerchantActor::handle_transcript(const Message& msg) {
  Reader r(msg.payload);
  auto transcript = ecash::PaymentTranscript::decode(r);
  const std::uint8_t n = r.get_u8();
  std::vector<ecash::WitnessCommitment> commitments;
  commitments.reserve(n);
  for (std::uint8_t i = 0; i < n; ++i)
    commitments.push_back(ecash::WitnessCommitment::decode(r));

  const Hash256 coin_hash = transcript.coin.bare.coin_hash();
  OpCounters ops;
  std::optional<Refusal> refusal;
  {
    ScopedOpCounting guard(ops);
    auto accepted = merchant_.receive_payment(transcript, commitments, now());
    if (!accepted) refusal = accepted.refusal();
  }
  if (refusal) {
    Writer w;
    put_hash(w, coin_hash);
    w.put_string(refusal->detail);
    send_after_cost(ops, Message{id(), msg.from, "pay.refused", w.take()});
    return;
  }
  in_flight_[coin_hash] = msg.from;
  // Forward the transcript to every committing witness for countersigning.
  Writer w;
  transcript.encode(w);
  auto payload = w.take();
  for (const auto& commitment : commitments) {
    auto node = directory_.merchants.find(commitment.witness);
    if (node == directory_.merchants.end()) continue;
    send_after_cost(ops,
                    Message{id(), node->second, "pay.sign_req", payload});
    ops = OpCounters{};  // charge validation cost only once
  }
}

void MerchantActor::handle_sign_request(const Message& msg) {
  Reader r(msg.payload);
  auto transcript = ecash::PaymentTranscript::decode(r);
  const Hash256 coin_hash = transcript.coin.bare.coin_hash();
  OpCounters ops;
  Message reply{id(), msg.from, "", {}};
  {
    ScopedOpCounting guard(ops);
    auto result = witness_.sign_transcript(transcript, now());
    Writer w;
    if (!result) {
      reply.type = "pay.sign_refused";
      put_hash(w, coin_hash);
      w.put_string(result.refusal().detail);
    } else if (auto* endorsement =
                   std::get_if<ecash::WitnessEndorsement>(&result.value())) {
      reply.type = "pay.endorse";
      put_hash(w, coin_hash);
      endorsement->encode(w);
    } else {
      reply.type = "pay.double_spend";
      std::get<ecash::DoubleSpendProof>(result.value()).encode(w);
    }
    reply.payload = w.take();
  }
  send_after_cost(ops, std::move(reply));
}

void MerchantActor::handle_sign_reply(const Message& msg) {
  Reader r(msg.payload);
  if (msg.type == "pay.double_spend") {
    auto proof = ecash::DoubleSpendProof::decode(r);
    auto client = in_flight_.find(proof.coin_hash);
    if (client == in_flight_.end()) return;
    OpCounters ops;
    Message reply{id(), client->second, "", {}};
    {
      ScopedOpCounting guard(ops);
      auto verified = merchant_.handle_double_spend(proof.coin_hash, proof);
      Writer w;
      if (verified) {
        reply.type = "pay.refused_double_spend";
        verified.value().encode(w);
      } else {
        // Witness answered with a bogus proof: from the client's view the
        // payment failed; the merchant can escalate to the arbiter.
        reply.type = "pay.refused";
        put_hash(w, proof.coin_hash);
        w.put_string(verified.refusal().detail);
      }
      reply.payload = w.take();
    }
    in_flight_.erase(client);
    send_after_cost(ops, std::move(reply));
    return;
  }

  const Hash256 coin_hash = get_hash(r);
  auto client = in_flight_.find(coin_hash);
  if (client == in_flight_.end()) return;

  if (msg.type == "pay.sign_refused") {
    const std::string detail = r.get_string();
    merchant_.abandon(coin_hash);
    Writer w;
    put_hash(w, coin_hash);
    w.put_string("witness refused: " + detail);
    send_now(Message{id(), client->second, "pay.refused", w.take()});
    in_flight_.erase(client);
    return;
  }

  // pay.endorse
  auto endorsement = ecash::WitnessEndorsement::decode(r);
  OpCounters ops;
  std::optional<Message> reply;
  {
    ScopedOpCounting guard(ops);
    auto done = merchant_.add_endorsement(coin_hash, endorsement);
    Writer w;
    if (!done) {
      put_hash(w, coin_hash);
      w.put_string(done.refusal().detail);
      reply = Message{id(), client->second, "pay.refused", w.take()};
    } else if (done.value()) {
      put_hash(w, coin_hash);
      reply = Message{id(), client->second, "pay.service", w.take()};
    }
    // else: keep waiting for more endorsements (k-of-n).
  }
  if (reply) {
    in_flight_.erase(client);
    send_after_cost(ops, std::move(*reply));
  }
}

void MerchantActor::handle_deposit_receipt(const Message&) {
  // Deposits are fire-and-forget for the storefront; receipts are counted
  // by the benchmarks via the broker's ledgers.
}

// ---------------------------------------------------------------------------
// ClientActor
// ---------------------------------------------------------------------------

ClientActor::ClientActor(simnet::Network& net, simnet::CostModel cost,
                         const group::SchnorrGroup& grp,
                         sig::PublicKey broker_key,
                         const ecash::WitnessTable& table,
                         const Directory& directory, std::uint64_t seed)
    : ProtocolActor(net, cost),
      grp_(grp),
      broker_key_(broker_key),
      table_(table),
      directory_(directory),
      rng_(seed),
      wallet_(grp, broker_key, broker_key, rng_) {}

void ClientActor::withdraw(Cents denomination, WithdrawCallback done) {
  const std::uint64_t req_id = next_request_++;
  withdrawal_requests_[req_id] =
      PendingWithdrawal{std::nullopt, std::move(done)};
  Writer w;
  w.put_u64(req_id);
  w.put_u32(denomination);
  send_now(Message{id(), directory_.broker, "withdraw.start", w.take()});
}

void ClientActor::handle_withdraw_offer(const Message& msg) {
  Reader r(msg.payload);
  const std::uint64_t req_id = r.get_u64();
  auto it = withdrawal_requests_.find(req_id);
  if (it == withdrawal_requests_.end()) return;

  ecash::Broker::WithdrawalOffer offer;
  offer.session = r.get_u64();
  offer.info = ecash::CoinInfo::decode(r);
  offer.first.a = r.get_bigint();
  offer.first.b = r.get_bigint();

  OpCounters ops;
  Message reply{id(), directory_.broker, "withdraw.challenge", {}};
  {
    ScopedOpCounting guard(ops);
    it->second.state = wallet_.begin_withdrawal(offer);
    Writer w;
    w.put_u64(it->second.state->session);
    w.put_bigint(it->second.state->e);
    reply.payload = w.take();
  }
  // Move the pending record to the by-session map for the response phase.
  auto pending = std::move(it->second);
  withdrawal_requests_.erase(it);
  withdrawal_sessions_[pending.state->session] = std::move(pending);
  send_after_cost(ops, std::move(reply));
}

void ClientActor::handle_withdraw_response(const Message& msg) {
  Reader r(msg.payload);
  const std::uint64_t id = r.get_u64();
  auto it = withdrawal_sessions_.find(id);
  if (it == withdrawal_sessions_.end() && msg.type == "withdraw.refused") {
    // A refusal straight after withdraw.start carries our request id.
    it = withdrawal_requests_.find(id);
    if (it == withdrawal_requests_.end()) return;
    auto pending = std::move(it->second);
    withdrawal_requests_.erase(it);
    pending.done(Refusal{RefusalReason::kInternal, r.get_string()});
    return;
  }
  if (it == withdrawal_sessions_.end()) return;
  auto pending = std::move(it->second);
  withdrawal_sessions_.erase(it);

  if (msg.type == "withdraw.refused") {
    pending.done(Refusal{RefusalReason::kInternal, r.get_string()});
    return;
  }
  blindsig::SignerResponse response;
  response.r = r.get_bigint();
  response.c = r.get_bigint();
  response.s = r.get_bigint();
  OpCounters ops;
  Outcome<ecash::WalletCoin> coin =
      Refusal{RefusalReason::kInternal, "unset"};
  {
    ScopedOpCounting guard(ops);
    coin = wallet_.complete_withdrawal(*pending.state, response, table_);
  }
  // Charge the unblinding cost before reporting completion.
  net_.sim().schedule(cost_.sample_cost_ms(ops, net_.rng()),
                      [done = std::move(pending.done),
                       coin = std::move(coin)]() mutable {
                        done(std::move(coin));
                      });
}

void ClientActor::pay(const ecash::WalletCoin& coin,
                      const MerchantId& merchant, PayCallback done,
                      SimTime timeout_ms) {
  // One in-flight payment per coin per client: replies are correlated by
  // coin hash.  (An attacker wanting concurrent spends runs two clients —
  // see the actors test; the witness still serializes them.)
  {
    metrics::ScopedSuspendOpCounting suspend;
    const auto hash = coin.coin.bare.coin_hash();
    if (payments_.contains(hash)) {
      PayResult result;
      result.error = "payment already in flight for this coin";
      done(std::move(result));
      return;
    }
  }
  PendingPayment p;
  p.coin = coin;
  p.merchant = merchant;
  p.started = net_.sim().now();
  p.generation = ++pay_generation_;
  p.done = std::move(done);

  OpCounters ops;
  {
    ScopedOpCounting guard(ops);
    p.intent = wallet_.prepare_payment(coin, merchant);
  }
  const Hash256 coin_hash = p.intent.coin_hash;
  const std::uint64_t generation = p.generation;

  // Step 1: request commitments from every assigned witness in parallel.
  Writer w;
  put_hash(w, p.intent.coin_hash);
  put_hash(w, p.intent.nonce);
  auto payload = w.take();
  for (const auto& entry : coin.coin.witnesses) {
    auto node = directory_.merchants.find(entry.merchant);
    if (node == directory_.merchants.end()) continue;
    p.witnesses_asked.push_back(entry.merchant);
    send_after_cost(ops, Message{id(), node->second, "pay.commit_req",
                                 payload});
    ops = OpCounters{};  // charge preparation once
  }
  payments_[coin_hash] = std::move(p);

  net_.sim().schedule(timeout_ms, [this, coin_hash, generation]() {
    auto it = payments_.find(coin_hash);
    if (it == payments_.end() || it->second.generation != generation) return;
    PayResult result;
    result.accepted = false;
    result.elapsed_ms = net_.sim().now() - it->second.started;
    result.error = "timeout";
    finish_payment(it->second, std::move(result));
  });
}

void ClientActor::handle_commit(const Message& msg) {
  Reader r(msg.payload);
  auto commitment = ecash::WitnessCommitment::decode(r);
  auto it = payments_.find(commitment.coin_hash);
  if (it == payments_.end()) return;
  PendingPayment& p = it->second;
  const std::uint8_t need = p.coin.coin.bare.info.witness_k;
  if (p.commitments.size() >= need) return;  // already proceeding
  for (const auto& c : p.commitments) {
    if (c.witness == commitment.witness) return;  // duplicate slot owner
  }
  p.commitments.push_back(std::move(commitment));
  if (p.commitments.size() < need) return;

  // Step 3: build and send the transcript (this is where the client's Ver
  // of the commitment signature and the NIZK response happen).
  OpCounters ops;
  Outcome<ecash::PaymentTranscript> transcript =
      Refusal{RefusalReason::kInternal, "unset"};
  {
    ScopedOpCounting guard(ops);
    transcript = wallet_.build_transcript(p.coin, p.intent, p.commitments,
                                          now());
  }
  if (!transcript) {
    PayResult result;
    result.elapsed_ms = net_.sim().now() - p.started;
    result.error = transcript.refusal().detail;
    finish_payment(p, std::move(result));
    return;
  }
  auto node = directory_.merchants.find(p.merchant);
  if (node == directory_.merchants.end()) {
    PayResult result;
    result.error = "unknown merchant";
    finish_payment(p, std::move(result));
    return;
  }
  Writer w;
  transcript.value().encode(w);
  w.put_u8(static_cast<std::uint8_t>(p.commitments.size()));
  for (const auto& c : p.commitments) c.encode(w);
  send_after_cost(ops,
                  Message{id(), node->second, "pay.transcript", w.take()});
}

void ClientActor::handle_pay_reply(const Message& msg) {
  Reader r(msg.payload);
  if (msg.type == "pay.refused_double_spend") {
    auto proof = ecash::DoubleSpendProof::decode(r);
    auto it = payments_.find(proof.coin_hash);
    if (it == payments_.end()) return;
    PayResult result;
    result.elapsed_ms = net_.sim().now() - it->second.started;
    result.double_spend_proof = std::move(proof);
    result.error = "double spend detected";
    finish_payment(it->second, std::move(result));
    return;
  }
  const Hash256 coin_hash = get_hash(r);
  auto it = payments_.find(coin_hash);
  if (it == payments_.end()) return;
  PayResult result;
  result.elapsed_ms = net_.sim().now() - it->second.started;
  if (msg.type == "pay.service") {
    result.accepted = true;
  } else if (msg.type == "pay.commit_refused") {
    // One witness refused to commit; under k-of-n others may still carry
    // the payment. Fail only when k successes are no longer reachable.
    PendingPayment& p = it->second;
    ++p.commit_refusals;
    const std::size_t possible = p.witnesses_asked.size() - p.commit_refusals;
    if (p.commitments.size() < p.coin.coin.bare.info.witness_k &&
        possible < p.coin.coin.bare.info.witness_k) {
      result.error = "commitment refused: " + r.get_string();
      finish_payment(p, std::move(result));
    }
    return;
  } else {
    result.error = r.get_string();
  }
  finish_payment(it->second, std::move(result));
}

void ClientActor::finish_payment(PendingPayment& p, PayResult result) {
  auto done = std::move(p.done);
  payments_.erase(p.intent.coin_hash);
  done(std::move(result));
}

void ClientActor::on_message(const Message& msg) {
  if (msg.type == "withdraw.offer") {
    handle_withdraw_offer(msg);
  } else if (msg.type == "withdraw.response" ||
             msg.type == "withdraw.refused") {
    handle_withdraw_response(msg);
  } else if (msg.type == "pay.commit") {
    handle_commit(msg);
  } else if (msg.type == "pay.service" || msg.type == "pay.refused" ||
             msg.type == "pay.refused_double_spend" ||
             msg.type == "pay.commit_refused") {
    handle_pay_reply(msg);
  }
}

}  // namespace p2pcash::actors
