// retry.h — retry policy and per-peer circuit breaker for the resilient
// RPC layer.
//
// The actors speak UDP-like request/response over simnet: a silent peer is
// indistinguishable from a lost message, so every payment-critical RPC
// (commitment request, transcript hand-off, deposit submission) is wrapped
// in the same discipline: a per-attempt timeout, exponential backoff with
// decorrelated jitter between resends, a cap on attempts per peer, and a
// per-peer circuit breaker so a dead witness stops eating attempts while
// its replicas carry the payment.  All randomness comes from the caller's
// bn::Rng, keeping chaos runs seed-reproducible.
//
// Observability: the actors annotate every retry, failover, timeout and
// breaker trip onto the enclosing payment span (rpc.retry, rpc.failover,
// rpc.silence, rpc.exhausted, breaker.trip — see src/obs/trace.h), so a
// trace shows exactly which resilience machinery fired and when.

#pragma once

#include <cstdint>
#include <map>

#include "bn/rng.h"
#include "simnet/models.h"
#include "simnet/sim.h"
#include "sync/annotated.h"

namespace p2pcash::actors {

/// Knobs for one retried RPC.  Defaults are tuned so a fault-free run is
/// byte-for-byte identical to the retry-free protocol (the first attempt is
/// the protocol message; timers only ever fire as no-ops).
struct RetryPolicy {
  /// Silence window before a resend / failover is considered.
  simnet::SimTime attempt_timeout_ms = 4'000;
  /// Decorrelated-jitter backoff: next = min(cap, uniform(base, 3 * prev)).
  simnet::SimTime backoff_base_ms = 250;
  simnet::SimTime backoff_cap_ms = 8'000;
  /// Sends per peer (including the first) before giving up on it.
  std::size_t max_attempts = 4;

  /// Samples the next backoff delay given the previous one (0 on the first
  /// retry).  Decorrelated jitter (min(cap, uniform(base, 3*prev))) spreads
  /// retry storms instead of synchronizing them.
  simnet::SimTime next_backoff(simnet::SimTime prev_ms, bn::Rng& rng) const;
};

/// Per-peer consecutive-failure circuit breaker.
///
/// closed --(failure_threshold consecutive failures)--> open
/// open   --(open_ms elapsed)--> half-open: allow() admits ONE probe
/// half-open --success--> closed;  --failure--> open again (re-trip)
///
/// Any success fully closes the breaker and resets the failure count.
///
/// Internally locked: breaker state is check-then-update (allow() admits
/// exactly one half-open probe), so concurrent RPC completions must not
/// interleave inside a transition.
class PeerHealth {
 public:
  struct Config {
    std::size_t failure_threshold = 3;  ///< consecutive failures to trip
    simnet::SimTime open_ms = 10'000;   ///< how long the breaker stays open
  };

  PeerHealth() = default;
  explicit PeerHealth(Config config) : config_(config) {}

  /// Replaces the config and resets all breaker state (same semantics as
  /// constructing a fresh PeerHealth with `config`).
  void configure(Config config);

  /// True if a request to `peer` may be sent now.  While open, admits a
  /// single half-open probe once open_ms has elapsed.
  bool allow(simnet::NodeId peer, simnet::SimTime now);

  void record_success(simnet::NodeId peer);
  /// Records a failure; returns true iff this transition tripped the
  /// breaker (closed -> open, or a failed half-open probe re-opening it).
  bool record_failure(simnet::NodeId peer, simnet::SimTime now);

  bool is_open(simnet::NodeId peer, simnet::SimTime now) const;
  std::uint64_t trips() const {
    sync::MutexLock lock(mu_);
    return trips_;
  }

 private:
  struct State {
    std::size_t consecutive_failures = 0;
    bool open = false;
    bool probing = false;  ///< half-open probe in flight
    simnet::SimTime open_until = 0;
  };

  mutable sync::Mutex mu_{"actors.peer_health", sync::level::kActors};
  Config config_ P2P_GUARDED_BY(mu_);
  std::map<simnet::NodeId, State> peers_ P2P_GUARDED_BY(mu_);
  std::uint64_t trips_ P2P_GUARDED_BY(mu_) = 0;
};

}  // namespace p2pcash::actors
