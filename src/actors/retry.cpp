#include "actors/retry.h"

#include <algorithm>

namespace p2pcash::actors {

simnet::SimTime RetryPolicy::next_backoff(simnet::SimTime prev_ms,
                                          bn::Rng& rng) const {
  const simnet::SimTime lo = backoff_base_ms;
  // Clamp BEFORE the 3x multiply: SimTime is a double, so a pathological
  // prev_ms (a caller feeding accumulated sim time, DBL_MAX, or an inf
  // from earlier arithmetic) would make 3 * prev_ms non-finite, and the
  // bounds of the jitter draw below would no longer be guaranteed to be
  // finite values inside [base, cap].
  const simnet::SimTime prev = std::min(prev_ms, backoff_cap_ms);
  const simnet::SimTime hi =
      std::min(backoff_cap_ms, std::max(lo, 3 * prev));
  if (hi <= lo) return lo;
  const double u = static_cast<double>(rng.next_u64() >> 11) * 0x1.0p-53;
  return lo + u * (hi - lo);
}

void PeerHealth::configure(Config config) {
  sync::MutexLock lock(mu_);
  config_ = config;
  peers_.clear();
  trips_ = 0;
}

bool PeerHealth::allow(simnet::NodeId peer, simnet::SimTime now) {
  sync::MutexLock lock(mu_);
  auto it = peers_.find(peer);
  if (it == peers_.end() || !it->second.open) return true;
  State& s = it->second;
  if (now >= s.open_until && !s.probing) {
    s.probing = true;  // half-open: exactly one probe
    return true;
  }
  return false;
}

void PeerHealth::record_success(simnet::NodeId peer) {
  sync::MutexLock lock(mu_);
  peers_.erase(peer);
}

bool PeerHealth::record_failure(simnet::NodeId peer, simnet::SimTime now) {
  sync::MutexLock lock(mu_);
  State& s = peers_[peer];
  if (s.open) {
    if (!s.probing) return false;  // failure of a pre-open attempt
    // Failed half-open probe: re-open the window.
    s.probing = false;
    s.open_until = now + config_.open_ms;
    ++trips_;
    return true;
  }
  if (++s.consecutive_failures < config_.failure_threshold) return false;
  s.open = true;
  s.probing = false;
  s.open_until = now + config_.open_ms;
  ++trips_;
  return true;
}

bool PeerHealth::is_open(simnet::NodeId peer, simnet::SimTime now) const {
  sync::MutexLock lock(mu_);
  auto it = peers_.find(peer);
  return it != peers_.end() && it->second.open && now < it->second.open_until;
}

}  // namespace p2pcash::actors
