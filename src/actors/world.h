// world.h — assembles a complete simulated deployment: broker node,
// merchant nodes (storefront + witness) and client nodes on one simnet
// Network.  The construction mirrors the paper's PlanetLab setup: every
// party on a different WAN host.
//
// The world owns a FaultPlan wired to each node's crash-recovery hooks:
// crashing a merchant snapshots its witness state (the synchronous-WAL
// model — commitments and spent records survive), and restarting restores
// that snapshot, drops the storefront's half-done payments and resets the
// actor's volatile RPC state.  The broker likewise snapshots its ledgers.

#pragma once

#include <memory>
#include <vector>

#include "actors/actors.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"
#include "simnet/fault.h"
#include "simnet/sim.h"
#include "store/log_store.h"
#include "store/vfs.h"
#include "transport/simnet_transport.h"

namespace p2pcash::actors {

class SimWorld {
 public:
  struct Options {
    std::size_t merchants = 8;
    std::uint64_t seed = 1;
    simnet::CostModel cost = simnet::openssl_cost();
    simnet::WireFormat wire = simnet::WireFormat::kBinary;
    /// One-way latency bounds in ms (the paper's WAN: 25–50).
    simnet::SimTime latency_lo = 25.0;
    simnet::SimTime latency_hi = 50.0;
    ecash::Broker::Config broker;
    ecash::Cents security_deposit = 10'000;
    /// RPC retry discipline applied to every client and merchant actor.
    RetryPolicy retry;
    /// Circuit-breaker configuration applied to every client.
    PeerHealth::Config breaker;
    /// When true, a Tracer is attached to the network before any node
    /// exists, so every protocol phase of every payment is spanned.  The
    /// trace layer consumes no RNG and adds no wire bytes: enabling it
    /// cannot perturb a chaos schedule or the Table-2 byte accounting.
    bool trace = false;
    /// Ring-buffer capacity of the trace sink (records, spans + events).
    std::size_t trace_capacity = std::size_t{1} << 16;
    /// When true, broker and witnesses run behind append-only LogStores on
    /// an in-memory Vfs, and the chaos crash hooks become real
    /// kill-at-any-byte crash points: a crash tears the log at an
    /// RNG-chosen unsynced byte and restart recovers by reopening the log
    /// (truncate torn tail, restore checkpoint, replay deltas).  The
    /// default (false) keeps the legacy snapshot hooks — and every seeded
    /// schedule — byte-identical.
    bool durable_stores = false;
  };

  explicit SimWorld(const group::SchnorrGroup& grp, Options options);

  simnet::Simulator& sim() { return sim_; }
  simnet::Network& net() { return *net_; }
  transport::Transport& transport() { return *shim_; }
  ecash::Broker& broker() { return *broker_; }
  const Directory& directory() const { return directory_; }
  const group::SchnorrGroup& grp() const { return grp_; }

  std::vector<MerchantId> merchant_ids() const;
  MerchantActor& merchant_actor(const MerchantId& id);
  ecash::Merchant& merchant(const MerchantId& id);
  ecash::WitnessService& witness(const MerchantId& id);
  NodeId merchant_node(const MerchantId& id) const;

  /// Creates a client node (its own RNG stream derived from the seed).
  ClientActor& add_client();

  /// Takes a merchant machine down / up (storefront and witness together).
  void set_merchant_down(const MerchantId& id, bool down);

  /// The chaos engine, with crash-recovery hooks for every protocol node
  /// already registered (see the header comment).
  simnet::FaultPlan& faults() { return *faults_; }

  /// Convenience wrappers over faults(): crash with recovery semantics.
  void crash_merchant(const MerchantId& id, simnet::SimTime at,
                      simnet::SimTime restart_at);
  void crash_broker(simnet::SimTime at, simnet::SimTime restart_at);

  /// Every attached node id (broker, merchants, clients created so far).
  std::vector<NodeId> all_nodes() const;

  /// Sum of the resilience counters across all clients and merchant actors.
  metrics::ResilienceCounters resilience_totals() const;

  /// The world's metrics registry.  Collectors for the resilience totals,
  /// the thread's op totals, simulator progress and per-world network
  /// traffic are pre-registered; benches add their own histograms.
  obs::MetricsRegistry& metrics() { return registry_; }
  /// The trace sink (empty unless tracing is enabled).
  obs::TraceSink& trace_sink() { return sink_; }
  /// The tracer, or nullptr when tracing is off.
  obs::Tracer* tracer() { return trace_on_ ? tracer_.get() : nullptr; }
  /// Turns span/event recording on or off at runtime (Options.trace sets
  /// the initial state).  Existing records are kept.
  void set_tracing(bool on);
  bool tracing() const { return trace_on_; }

  /// The durable-mode Vfs holding every node's log (see
  /// Options::durable_stores).  Exposed so tests can inspect or corrupt
  /// log bytes; file names are "broker.log" and "witness-<id>.log".
  store::MemVfs& store_vfs() { return store_vfs_; }

 private:
  struct MerchantSlot {
    MerchantId id;
    std::unique_ptr<ecash::Merchant> merchant;
    std::unique_ptr<ecash::WitnessService> witness;
    std::unique_ptr<MerchantActor> actor;
    /// Witness snapshot taken by the crash hook (synchronous WAL).
    std::vector<std::uint8_t> durable;
    /// Durable mode: the witness's append-only log (reopened on restart).
    std::unique_ptr<store::LogStore> store;
  };

  void register_collectors();

  group::SchnorrGroup grp_;
  Options options_;
  simnet::Simulator sim_;
  obs::MetricsRegistry registry_;
  obs::TraceSink sink_;
  std::unique_ptr<obs::Tracer> tracer_;
  bool trace_on_ = false;
  std::unique_ptr<crypto::ChaChaRng> rng_;
  std::unique_ptr<simnet::Network> net_;
  /// The deterministic Transport the actors speak through: a verbatim
  /// forwarding shim over net_, so the simnet path stays byte-identical.
  std::unique_ptr<transport::SimnetTransport> shim_;
  std::unique_ptr<ecash::Broker> broker_;
  std::unique_ptr<BrokerActor> broker_actor_;
  std::unique_ptr<simnet::FaultPlan> faults_;
  Directory directory_;
  std::vector<MerchantSlot> merchants_;
  std::vector<std::unique_ptr<ClientActor>> clients_;
  std::vector<std::uint8_t> broker_durable_;
  /// Durable mode only (empty otherwise): the in-memory filesystem and
  /// the broker's log.  Declared before the services that journal into
  /// them are destroyed (members destruct in reverse order, so the stores
  /// must outlive nothing — services never journal from destructors).
  store::MemVfs store_vfs_;
  std::unique_ptr<store::LogStore> broker_store_;
  std::uint64_t next_client_seed_ = 0;
};

}  // namespace p2pcash::actors
