// world.h — assembles a complete simulated deployment: broker node,
// merchant nodes (storefront + witness) and client nodes on one simnet
// Network.  The construction mirrors the paper's PlanetLab setup: every
// party on a different WAN host.

#pragma once

#include <memory>
#include <vector>

#include "actors/actors.h"
#include "simnet/sim.h"

namespace p2pcash::actors {

class SimWorld {
 public:
  struct Options {
    std::size_t merchants = 8;
    std::uint64_t seed = 1;
    simnet::CostModel cost = simnet::openssl_cost();
    simnet::WireFormat wire = simnet::WireFormat::kBinary;
    /// One-way latency bounds in ms (the paper's WAN: 25–50).
    simnet::SimTime latency_lo = 25.0;
    simnet::SimTime latency_hi = 50.0;
    ecash::Broker::Config broker;
    ecash::Cents security_deposit = 10'000;
  };

  explicit SimWorld(const group::SchnorrGroup& grp, Options options);

  simnet::Simulator& sim() { return sim_; }
  simnet::Network& net() { return *net_; }
  ecash::Broker& broker() { return *broker_; }
  const Directory& directory() const { return directory_; }
  const group::SchnorrGroup& grp() const { return grp_; }

  std::vector<MerchantId> merchant_ids() const;
  MerchantActor& merchant_actor(const MerchantId& id);
  ecash::Merchant& merchant(const MerchantId& id);
  ecash::WitnessService& witness(const MerchantId& id);
  NodeId merchant_node(const MerchantId& id) const;

  /// Creates a client node (its own RNG stream derived from the seed).
  ClientActor& add_client();

  /// Takes a merchant machine down / up (storefront and witness together).
  void set_merchant_down(const MerchantId& id, bool down);

 private:
  struct MerchantSlot {
    MerchantId id;
    std::unique_ptr<ecash::Merchant> merchant;
    std::unique_ptr<ecash::WitnessService> witness;
    std::unique_ptr<MerchantActor> actor;
  };

  group::SchnorrGroup grp_;
  Options options_;
  simnet::Simulator sim_;
  std::unique_ptr<crypto::ChaChaRng> rng_;
  std::unique_ptr<simnet::Network> net_;
  std::unique_ptr<ecash::Broker> broker_;
  std::unique_ptr<BrokerActor> broker_actor_;
  Directory directory_;
  std::vector<MerchantSlot> merchants_;
  std::vector<std::unique_ptr<ClientActor>> clients_;
  std::uint64_t next_client_seed_ = 0;
};

}  // namespace p2pcash::actors
