#include "actors/world.h"

#include <cstdio>
#include <stdexcept>
#include <thread>

namespace p2pcash::actors {

namespace {
MerchantId merchant_name(std::size_t i) {
  char buf[32];  // large enough for "m" + any 64-bit index
  std::snprintf(buf, sizeof buf, "m%03zu", i);
  return buf;
}

std::string witness_log_name(const MerchantId& id) {
  return "witness-" + id + ".log";
}

std::uint64_t draw_u64(bn::Rng& rng) {
  std::array<std::uint8_t, 8> b{};
  rng.fill(b);
  std::uint64_t v = 0;
  for (std::uint8_t x : b) v = (v << 8) | x;
  return v;
}
}  // namespace

SimWorld::SimWorld(const group::SchnorrGroup& grp, Options options)
    : grp_(grp), options_(options), sink_(options_.trace_capacity) {
  rng_ = std::make_unique<crypto::ChaChaRng>(options_.seed);
  net_ = std::make_unique<simnet::Network>(
      sim_,
      std::make_unique<simnet::UniformLatency>(options_.latency_lo,
                                               options_.latency_hi),
      *rng_, options_.wire);
  shim_ = std::make_unique<transport::SimnetTransport>(*net_);
  // The tracer reads the simulator clock directly: spans carry sim-time,
  // so the same seed replays a byte-identical trace.
  tracer_ = std::make_unique<obs::Tracer>([this]() { return sim_.now(); },
                                          &sink_, &registry_);
  // Mark exported batches as simulator traces so tooling can tell them
  // from TCP traces without filename conventions.  hardware_threads is
  // advisory metadata: the simulation itself is single-threaded.
  sink_.set_meta(
      {"sim", static_cast<std::uint32_t>(std::thread::hardware_concurrency())});
  set_tracing(options_.trace);
  register_collectors();
  broker_ = std::make_unique<ecash::Broker>(grp_, *rng_, options_.broker);
  broker_actor_ =
      std::make_unique<BrokerActor>(*shim_, options_.cost, *broker_);
  directory_.broker = shim_->attach(*broker_actor_);
  faults_ = std::make_unique<simnet::FaultPlan>(*net_);
  if (options_.durable_stores) {
    // Durable mode: the broker journals into an append-only log; a crash
    // kills the process at an arbitrary byte of the unsynced tail, and
    // restart reopens the log (truncate + checkpoint restore + delta
    // replay) — no acknowledged state may be lost.
    store::LogStore::Options store_opts;
    store_opts.metrics = &registry_;
    broker_store_ = std::make_unique<store::LogStore>(store_vfs_, "broker.log",
                                                      store_opts);
    broker_->attach_store(*broker_store_);
    faults_->set_recovery_hooks(
        directory_.broker,
        /*on_crash=*/
        [this](simnet::NodeId) {
          store_vfs_.crash_file(
              "broker.log",
              draw_u64(*rng_) %
                  (store_vfs_.unsynced_bytes("broker.log") + 1));
        },
        /*on_restart=*/
        [this](simnet::NodeId) {
          store::LogStore::Options opts;
          opts.metrics = &registry_;
          broker_store_.reset();
          broker_store_ = std::make_unique<store::LogStore>(
              store_vfs_, "broker.log", opts);
          broker_->attach_store(*broker_store_);
        });
  } else {
    // Broker crash model: ledgers, account table and open sessions are
    // snapshotted synchronously at crash time and restored at restart
    // (restore_state itself discards half-open withdrawal sessions).
    faults_->set_recovery_hooks(
        directory_.broker,
        /*on_crash=*/[this](simnet::NodeId) {
          broker_durable_ = broker_->snapshot_state();
        },
        /*on_restart=*/[this](simnet::NodeId) {
          if (!broker_durable_.empty()) broker_->restore_state(broker_durable_);
        });
  }

  if (options_.merchants == 0)
    throw std::invalid_argument("SimWorld: need at least one merchant");
  merchants_.reserve(options_.merchants);
  for (std::size_t i = 0; i < options_.merchants; ++i) {
    MerchantSlot slot;
    slot.id = merchant_name(i);
    auto key = sig::KeyPair::generate(grp_, *rng_);
    broker_->register_merchant(slot.id, key.public_key(),
                               options_.security_deposit);
    slot.merchant = std::make_unique<ecash::Merchant>(
        grp_, broker_->coin_key(), slot.id, key, *rng_);
    slot.witness = std::make_unique<ecash::WitnessService>(
        grp_, broker_->coin_key(), slot.id, key, *rng_);
    slot.actor = std::make_unique<MerchantActor>(
        *shim_, options_.cost, *slot.merchant, *slot.witness, directory_);
    slot.actor->set_retry_policy(options_.retry);
    directory_.merchants[slot.id] = shim_->attach(*slot.actor);
    // Hooks capture the slot INDEX: merchants_ may still reallocate while
    // this constructor loop pushes more slots.
    if (options_.durable_stores) {
      store::LogStore::Options store_opts;
      store_opts.metrics = &registry_;
      slot.store = std::make_unique<store::LogStore>(
          store_vfs_, witness_log_name(slot.id), store_opts);
      slot.witness->attach_store(*slot.store);
      faults_->set_recovery_hooks(
          directory_.merchants[slot.id],
          /*on_crash=*/
          [this, i](simnet::NodeId) {
            const std::string log = witness_log_name(merchants_[i].id);
            store_vfs_.crash_file(
                log, draw_u64(*rng_) % (store_vfs_.unsynced_bytes(log) + 1));
          },
          /*on_restart=*/
          [this, i](simnet::NodeId) {
            MerchantSlot& s = merchants_[i];
            store::LogStore::Options opts;
            opts.metrics = &registry_;
            s.store.reset();
            s.store = std::make_unique<store::LogStore>(
                store_vfs_, witness_log_name(s.id), opts);
            s.witness->attach_store(*s.store);
            s.merchant->drop_pending();
            s.actor->on_restart();
          });
    } else {
      faults_->set_recovery_hooks(
          directory_.merchants[slot.id],
          /*on_crash=*/
          [this, i](simnet::NodeId) {
            // Synchronous WAL: the witness's commitments, spent records and
            // proofs are on disk at the moment of the crash.
            merchants_[i].durable = merchants_[i].witness->snapshot_state();
          },
          /*on_restart=*/
          [this, i](simnet::NodeId) {
            MerchantSlot& s = merchants_[i];
            if (!s.durable.empty()) s.witness->restore_state(s.durable);
            // Storefront's half-done payments were in memory only; clients
            // re-drive or time out.  Endorsed deposits survive (queue +
            // pending submissions are journaled with the witness WAL).
            s.merchant->drop_pending();
            s.actor->on_restart();
          });
    }
    merchants_.push_back(std::move(slot));
  }
  broker_->publish_witness_table(/*now=*/0);
}

std::vector<MerchantId> SimWorld::merchant_ids() const {
  std::vector<MerchantId> out;
  out.reserve(merchants_.size());
  for (const auto& slot : merchants_) out.push_back(slot.id);
  return out;
}

MerchantActor& SimWorld::merchant_actor(const MerchantId& id) {
  for (auto& slot : merchants_) {
    if (slot.id == id) return *slot.actor;
  }
  throw std::invalid_argument("SimWorld: unknown merchant " + id);
}

ecash::Merchant& SimWorld::merchant(const MerchantId& id) {
  return merchant_actor(id).merchant();
}

ecash::WitnessService& SimWorld::witness(const MerchantId& id) {
  return merchant_actor(id).witness();
}

NodeId SimWorld::merchant_node(const MerchantId& id) const {
  auto it = directory_.merchants.find(id);
  if (it == directory_.merchants.end())
    throw std::invalid_argument("SimWorld: unknown merchant " + id);
  return it->second;
}

ClientActor& SimWorld::add_client() {
  clients_.push_back(std::make_unique<ClientActor>(
      *shim_, options_.cost, grp_, broker_->coin_key(),
      broker_->current_table(), directory_,
      options_.seed * 1000003 + (++next_client_seed_)));
  shim_->attach(*clients_.back());
  clients_.back()->set_retry_policy(options_.retry);
  clients_.back()->set_breaker_config(options_.breaker);
  return *clients_.back();
}

void SimWorld::set_merchant_down(const MerchantId& id, bool down) {
  net_->set_down(merchant_node(id), down);
}

void SimWorld::crash_merchant(const MerchantId& id, simnet::SimTime at,
                              simnet::SimTime restart_at) {
  faults_->schedule_crash(merchant_node(id), at, restart_at);
}

void SimWorld::crash_broker(simnet::SimTime at, simnet::SimTime restart_at) {
  faults_->schedule_crash(directory_.broker, at, restart_at);
}

std::vector<NodeId> SimWorld::all_nodes() const {
  std::vector<NodeId> out;
  out.push_back(directory_.broker);
  for (const auto& [id, node] : directory_.merchants) out.push_back(node);
  for (std::size_t i = 0; i < clients_.size(); ++i)
    out.push_back(clients_[i]->id());
  return out;
}

metrics::ResilienceCounters SimWorld::resilience_totals() const {
  metrics::ResilienceCounters total;
  for (const auto& client : clients_) total += client->resilience();
  for (const auto& slot : merchants_) total += slot.actor->resilience();
  return total;
}

void SimWorld::set_tracing(bool on) {
  trace_on_ = on;
  net_->set_tracer(on ? tracer_.get() : nullptr);
}

void SimWorld::register_collectors() {
  registry_.register_collector([this]() {
    auto samples = obs::resilience_samples("world", resilience_totals());
    auto ops = obs::op_counter_samples("world", metrics::thread_op_totals());
    samples.insert(samples.end(), ops.begin(), ops.end());
    return samples;
  });
  registry_.register_collector([this]() {
    std::uint64_t sent = 0, received = 0, messages = 0;
    for (NodeId node : all_nodes()) {
      sent += net_->bytes_sent(node);
      received += net_->bytes_received(node);
      messages += net_->messages_sent(node);
    }
    using obs::Sample;
    return std::vector<Sample>{
        {"world_net_bytes_sent_total", static_cast<double>(sent),
         Sample::Type::kCounter},
        {"world_net_bytes_received_total", static_cast<double>(received),
         Sample::Type::kCounter},
        {"world_net_messages_sent_total", static_cast<double>(messages),
         Sample::Type::kCounter},
        {"world_sim_now_ms", sim_.now(), Sample::Type::kGauge},
        {"world_sim_events_executed_total",
         static_cast<double>(sim_.events_executed()), Sample::Type::kCounter},
        {"world_fixed_base_table_bytes",
         static_cast<double>(grp_.fixed_base_memory_bytes()),
         Sample::Type::kGauge},
        {"world_trace_spans", static_cast<double>(sink_.span_count()),
         Sample::Type::kGauge},
        {"world_trace_events", static_cast<double>(sink_.event_count()),
         Sample::Type::kGauge},
        {"world_trace_dropped_total", static_cast<double>(sink_.dropped()),
         Sample::Type::kCounter},
    };
  });
}

}  // namespace p2pcash::actors
