// abe_okamoto.h — the Abe–Okamoto provably secure partially blind signature
// (CRYPTO 2000), specialised as in the paper's Algorithm 1.
//
// The broker signs a message (the client's commitments A, B) it never sees,
// while a public `info` string (denomination, witness-list version, two
// expiration dates) is bound into the signature in the clear through
// z = F(info).  The resulting "bare coin" (rho, omega, sigma, delta, info,
// msg) is strongly unforgeable and partially blind: the broker learns
// nothing about the bare coin beyond info, which gives coin unlinkability
// (paper §6).
//
// Message flow (paper Algorithm 1):
//   1. B -> C : a = g^u, b = g^s z^d            (u, s, d random in Z_q)
//   2. C -> B : e = H(alpha||beta||z||msg) - t2 - t4
//   3. B -> C : (r, c, s)  with c = e - d, r = u - c x
//   4. C unblinds: rho = r+t1, omega = c+t2, sigma = s+t3, delta = e-c+t4
//      and checks omega + delta == H(g^rho y^omega || g^sigma z^delta || z || msg).

#pragma once

#include <cstdint>
#include <vector>

#include "bn/bigint.h"
#include "bn/rng.h"
#include "group/schnorr_group.h"

namespace p2pcash::blindsig {

/// The unblinded signature carried inside every coin.
struct PartialBlindSignature {
  bn::BigInt rho, omega, sigma, delta;

  friend bool operator==(const PartialBlindSignature&,
                         const PartialBlindSignature&) = default;
};

/// Step-1 message from the signer.
struct SignerFirstMessage {
  bn::BigInt a, b;
};

/// Step-3 message from the signer.
struct SignerResponse {
  bn::BigInt r, c, s;
};

/// Signer (broker) side. One Session per issuing protocol run.
class BlindSigner {
 public:
  BlindSigner(group::SchnorrGroup grp, bn::BigInt secret_x);

  /// Wipes the signing key x.
  ~BlindSigner() { x_.wipe(); }
  BlindSigner(const BlindSigner&) = default;
  BlindSigner& operator=(const BlindSigner&) = default;
  BlindSigner(BlindSigner&&) noexcept = default;
  BlindSigner& operator=(BlindSigner&&) noexcept = default;

  /// Per-run signer state. Holds the secrets (u, s, d); must be used for
  /// exactly one respond().  The nonces are zeroized on destruction: a
  /// leaked u recovers the signing key from (c, r) via x = (u - r) / c.
  struct Session {
    std::vector<std::uint8_t> info;
    bn::BigInt z;        // F(info)
    bn::BigInt u, s, d;  // signer nonces  // ct-secret: u, s, d
    SignerFirstMessage first;

    Session() = default;
    ~Session() {
      u.wipe();
      s.wipe();
      d.wipe();
    }
    Session(const Session&) = default;
    Session& operator=(const Session&) = default;
    Session(Session&&) noexcept = default;
    Session& operator=(Session&&) noexcept = default;
  };

  /// Step 1: commits to nonces for a signature on `info`.
  Session start(const std::vector<std::uint8_t>& info, bn::Rng& rng) const;

  /// Step 3: answers the client's blinded challenge e.
  SignerResponse respond(const Session& session, const bn::BigInt& e) const;

  const bn::BigInt& public_y() const { return y_; }
  const bn::BigInt& secret_x() const { return x_; }

 private:
  group::SchnorrGroup grp_;
  bn::BigInt x_;  // ct-secret: x_
  bn::BigInt y_;
};

/// Requester (client) side. One instance per coin withdrawal.
class BlindRequester {
 public:
  /// `msg` is the blinded message (encoding of A, B); `info` is the public
  /// attachment the signer must also know.
  BlindRequester(group::SchnorrGroup grp, bn::BigInt signer_y,
                 std::vector<std::uint8_t> info, std::vector<std::uint8_t> msg);

  /// Wipes the blinding factors t1..t4 — they link the blinded session to
  /// the unblinded coin, so their lifetime bounds the unlinkability window.
  ~BlindRequester() {
    t1_.wipe();
    t2_.wipe();
    t3_.wipe();
    t4_.wipe();
  }
  BlindRequester(const BlindRequester&) = default;
  BlindRequester& operator=(const BlindRequester&) = default;
  BlindRequester(BlindRequester&&) noexcept = default;
  BlindRequester& operator=(BlindRequester&&) noexcept = default;

  /// Step 2: blinds the signer's commitment into challenge e.
  bn::BigInt challenge(const SignerFirstMessage& first, bn::Rng& rng);

  /// Step 4: unblinds the response. Throws std::runtime_error if the
  /// signature fails the verification equation (broker misbehaved).
  PartialBlindSignature unblind(const SignerResponse& response);

 private:
  group::SchnorrGroup grp_;
  bn::BigInt y_;
  std::vector<std::uint8_t> info_;
  std::vector<std::uint8_t> msg_;
  bn::BigInt z_;
  bn::BigInt t1_, t2_, t3_, t4_;  // ct-secret: t1_, t2_, t3_, t4_
  bn::BigInt e_;
  bool challenged_ = false;
};

/// Public verification: omega + delta == H(g^rho y^omega || g^sigma z^delta
/// || z || msg) with z = F(info).  Costs 4 Exp + 2 Hash (F and H) — the
/// paper's Table 1 counts these raw, not as a Ver unit.
bool verify(const group::SchnorrGroup& grp, const bn::BigInt& signer_y,
            const std::vector<std::uint8_t>& info,
            const std::vector<std::uint8_t>& msg,
            const PartialBlindSignature& sig);

/// Signer-private verification using x (g^rho y^omega = g^(rho + x*omega)):
/// 3 Exp + 2 Hash. This is why the paper's broker rows in Table 1 show one
/// exponentiation fewer per coin check than a merchant pays.
bool verify_with_secret(const group::SchnorrGroup& grp, const bn::BigInt& x,
                        const std::vector<std::uint8_t>& info,
                        const std::vector<std::uint8_t>& msg,
                        const PartialBlindSignature& sig);

}  // namespace p2pcash::blindsig
