#include "blindsig/abe_okamoto.h"

#include <stdexcept>

#include "metrics/counters.h"

namespace p2pcash::blindsig {

using bn::BigInt;

namespace {

// Injective (length-prefixed) encoding of the challenge-hash preimage
// alpha || beta || z || msg.
std::vector<std::uint8_t> challenge_preimage(const BigInt& alpha,
                                             const BigInt& beta,
                                             const BigInt& z,
                                             const std::vector<std::uint8_t>& msg) {
  std::vector<std::uint8_t> out;
  auto put = [&out](const std::vector<std::uint8_t>& bytes) {
    std::uint32_t n = static_cast<std::uint32_t>(bytes.size());
    out.push_back(static_cast<std::uint8_t>(n >> 24));
    out.push_back(static_cast<std::uint8_t>(n >> 16));
    out.push_back(static_cast<std::uint8_t>(n >> 8));
    out.push_back(static_cast<std::uint8_t>(n));
    out.insert(out.end(), bytes.begin(), bytes.end());
  };
  put(alpha.to_bytes_be());
  put(beta.to_bytes_be());
  put(z.to_bytes_be());
  put(msg);
  return out;
}

}  // namespace

BlindSigner::BlindSigner(group::SchnorrGroup grp, bn::BigInt secret_x)
    : grp_(std::move(grp)), x_(std::move(secret_x)) {
  metrics::ScopedSuspendOpCounting suspend;  // key setup is not protocol cost
  y_ = grp_.exp_g(x_);
}

BlindSigner::Session BlindSigner::start(const std::vector<std::uint8_t>& info,
                                        bn::Rng& rng) const {
  Session session;
  session.info = info;
  session.z = grp_.hash_to_group(info);
  session.u = grp_.random_scalar(rng);
  session.s = grp_.random_scalar(rng);
  session.d = grp_.random_scalar(rng);
  session.first.a = grp_.exp_g(session.u);
  session.first.b =
      grp_.mul(grp_.exp_g(session.s), grp_.exp(session.z, session.d));
  return session;
}

SignerResponse BlindSigner::respond(const Session& session,
                                    const bn::BigInt& e) const {
  SignerResponse resp;
  resp.c = bn::mod_sub(e, session.d, grp_.q());
  resp.r = bn::mod_sub(session.u, bn::mod_mul(resp.c, x_, grp_.q()), grp_.q());
  resp.s = session.s;
  return resp;
}

BlindRequester::BlindRequester(group::SchnorrGroup grp, bn::BigInt signer_y,
                               std::vector<std::uint8_t> info,
                               std::vector<std::uint8_t> msg)
    : grp_(std::move(grp)),
      y_(std::move(signer_y)),
      info_(std::move(info)),
      msg_(std::move(msg)) {
  z_ = grp_.hash_to_group(info_);
}

BigInt BlindRequester::challenge(const SignerFirstMessage& first,
                                 bn::Rng& rng) {
  if (challenged_)
    throw std::logic_error("BlindRequester: challenge() called twice");
  // No subgroup-membership check on (a, b): the paper's protocol relies on
  // the step-4 verification equation, which rejects any deviant response.
  t1_ = grp_.random_scalar(rng);
  t2_ = grp_.random_scalar(rng);
  t3_ = grp_.random_scalar(rng);
  t4_ = grp_.random_scalar(rng);
  BigInt alpha =
      grp_.mul(grp_.mul(first.a, grp_.exp_g(t1_)), grp_.exp(y_, t2_));
  BigInt beta =
      grp_.mul(grp_.mul(first.b, grp_.exp_g(t3_)), grp_.exp(z_, t4_));
  BigInt epsilon = grp_.hash_to_zq(challenge_preimage(alpha, beta, z_, msg_));
  e_ = bn::mod_sub(bn::mod_sub(epsilon, t2_, grp_.q()), t4_, grp_.q());
  challenged_ = true;
  return e_;
}

PartialBlindSignature BlindRequester::unblind(const SignerResponse& response) {
  if (!challenged_)
    throw std::logic_error("BlindRequester: unblind() before challenge()");
  PartialBlindSignature sig;
  sig.rho = bn::mod_add(response.r, t1_, grp_.q());
  sig.omega = bn::mod_add(response.c, t2_, grp_.q());
  sig.sigma = bn::mod_add(response.s, t3_, grp_.q());
  sig.delta = bn::mod_add(bn::mod_sub(e_, response.c, grp_.q()), t4_, grp_.q());
  // Client-side check of the verification equation (paper Algorithm 1
  // step 4).  A failure here means the broker deviated from the protocol.
  BigInt lhs = grp_.mul(grp_.exp_g(sig.rho), grp_.exp(y_, sig.omega));
  BigInt rhs = grp_.mul(grp_.exp_g(sig.sigma), grp_.exp(z_, sig.delta));
  BigInt expected = grp_.hash_to_zq(challenge_preimage(lhs, rhs, z_, msg_));
  if (bn::mod_add(sig.omega, sig.delta, grp_.q()) != expected)
    throw std::runtime_error("BlindRequester: broker response fails to verify");
  return sig;
}

bool verify(const group::SchnorrGroup& grp, const bn::BigInt& signer_y,
            const std::vector<std::uint8_t>& info,
            const std::vector<std::uint8_t>& msg,
            const PartialBlindSignature& sig) {
  for (const BigInt* scalar : {&sig.rho, &sig.omega, &sig.sigma, &sig.delta}) {
    if (scalar->is_negative() || *scalar >= grp.q()) return false;
  }
  BigInt z = grp.hash_to_group(info);
  BigInt lhs = grp.mul(grp.exp_g(sig.rho), grp.exp(signer_y, sig.omega));
  BigInt rhs = grp.mul(grp.exp_g(sig.sigma), grp.exp(z, sig.delta));
  BigInt expected = grp.hash_to_zq(challenge_preimage(lhs, rhs, z, msg));
  return bn::mod_add(sig.omega, sig.delta, grp.q()) == expected;
}

bool verify_with_secret(const group::SchnorrGroup& grp, const bn::BigInt& x,
                        const std::vector<std::uint8_t>& info,
                        const std::vector<std::uint8_t>& msg,
                        const PartialBlindSignature& sig) {
  for (const BigInt* scalar : {&sig.rho, &sig.omega, &sig.sigma, &sig.delta}) {
    if (scalar->is_negative() || *scalar >= grp.q()) return false;
  }
  BigInt z = grp.hash_to_group(info);
  // g^rho * y^omega = g^(rho + x*omega): one exponentiation instead of two.
  BigInt exponent = bn::mod_add(sig.rho, bn::mod_mul(x, sig.omega, grp.q()),
                                grp.q());
  BigInt lhs = grp.exp_g(exponent);
  BigInt rhs = grp.mul(grp.exp_g(sig.sigma), grp.exp(z, sig.delta));
  BigInt expected = grp.hash_to_zq(challenge_preimage(lhs, rhs, z, msg));
  return bn::mod_add(sig.omega, sig.delta, grp.q()) == expected;
}

}  // namespace p2pcash::blindsig
