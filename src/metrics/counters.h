// counters.h — crypto-operation and byte accounting.
//
// Table 1 of the paper reports, per protocol and per role, the number of
// modular exponentiations (Exp), protocol-level hash invocations (Hash),
// signature generations (Sig) and signature verifications (Ver).  Rather
// than hand-counting, the primitive layers report into a thread-local
// OpCounters that a ScopedOpCounting RAII guard installs, so the benchmark
// regenerates the table from the code that actually runs.
//
// Counting convention: Exp counts *logical* exponentiations, independent
// of implementation.  A fused product like SchnorrGroup::exp2 (Straus
// interleaving or fixed-base tables) still counts one Exp per base —
// count_exp(2) — so Table 1 is invariant under the fast-path machinery
// (pinned by multi_exp_test).

#pragma once

#include <cstdint>
#include <string>

namespace p2pcash::metrics {

/// Counts of protocol-visible cryptographic operations.
struct OpCounters {
  std::uint64_t exp = 0;   ///< modular exponentiations in the group
  std::uint64_t hash = 0;  ///< protocol-level hash invocations
  std::uint64_t sig = 0;   ///< plain signature generations
  std::uint64_t ver = 0;   ///< signature verifications

  OpCounters& operator+=(const OpCounters& o) {
    exp += o.exp;
    hash += o.hash;
    sig += o.sig;
    ver += o.ver;
    return *this;
  }
  friend OpCounters operator-(OpCounters a, const OpCounters& b) {
    a.exp -= b.exp;
    a.hash -= b.hash;
    a.sig -= b.sig;
    a.ver -= b.ver;
    return a;
  }
  friend bool operator==(const OpCounters&, const OpCounters&) = default;

  std::string to_string() const;
};

/// Fault-handling accounting for the resilient RPC layer: how often the
/// actors retried, failed over to another replica, suppressed a duplicate
/// delivery, tripped a circuit breaker, gave up at the deadline, or ignored
/// a reply that arrived after its request had been abandoned.
struct ResilienceCounters {
  std::uint64_t retries = 0;      ///< same-peer resends after silence
  std::uint64_t failovers = 0;    ///< engagements of the next replica
  std::uint64_t duplicates_suppressed = 0;  ///< redundant deliveries ignored
  std::uint64_t breaker_trips = 0;  ///< closed/half-open -> open transitions
  std::uint64_t timeouts = 0;     ///< RPCs failed at the overall deadline
  std::uint64_t late_replies_ignored = 0;  ///< replies past their request

  ResilienceCounters& operator+=(const ResilienceCounters& o) {
    retries += o.retries;
    failovers += o.failovers;
    duplicates_suppressed += o.duplicates_suppressed;
    breaker_trips += o.breaker_trips;
    timeouts += o.timeouts;
    late_replies_ignored += o.late_replies_ignored;
    return *this;
  }
  /// Snapshot diff: `after - before` is what happened in between.  Chaos
  /// tests snapshot totals before a run and diff afterwards instead of
  /// re-reading cumulative totals by hand.
  friend ResilienceCounters operator-(ResilienceCounters a,
                                      const ResilienceCounters& b) {
    a.retries -= b.retries;
    a.failovers -= b.failovers;
    a.duplicates_suppressed -= b.duplicates_suppressed;
    a.breaker_trips -= b.breaker_trips;
    a.timeouts -= b.timeouts;
    a.late_replies_ignored -= b.late_replies_ignored;
    return a;
  }
  void reset() { *this = ResilienceCounters{}; }
  friend bool operator==(const ResilienceCounters&,
                         const ResilienceCounters&) = default;

  std::string to_string() const;
};

/// Installs `target` as the thread's active counter for its lifetime;
/// restores the previous target on destruction (guards nest).
class ScopedOpCounting {
 public:
  explicit ScopedOpCounting(OpCounters& target);
  ~ScopedOpCounting();
  ScopedOpCounting(const ScopedOpCounting&) = delete;
  ScopedOpCounting& operator=(const ScopedOpCounting&) = delete;

 private:
  OpCounters* previous_;
};

/// Suspends op counting on this thread for its lifetime. Used by the plain
/// signature layer: the paper's Table 1 counts a signature generation /
/// verification as one Sig/Ver unit, not as its constituent exponentiations.
class ScopedSuspendOpCounting {
 public:
  ScopedSuspendOpCounting();
  ~ScopedSuspendOpCounting();
  ScopedSuspendOpCounting(const ScopedSuspendOpCounting&) = delete;
  ScopedSuspendOpCounting& operator=(const ScopedSuspendOpCounting&) = delete;

 private:
  OpCounters* previous_;
};

// Reporting hooks called by the primitive layers. No-ops when no counter
// is installed on this thread.
void count_exp(std::uint64_t n = 1);
void count_hash(std::uint64_t n = 1);
void count_sig(std::uint64_t n = 1);
void count_ver(std::uint64_t n = 1);

/// The thread's active counter, or nullptr.
OpCounters* active_counters();

/// Cumulative per-thread totals of every op the count_* hooks ever saw on
/// this thread, including work done while a ScopedSuspendOpCounting guard
/// was active (the totals answer "how much crypto ran", not "what does
/// Table 1 charge").  This is the feed the obs::MetricsRegistry exports;
/// the scoped Table-1 mechanism above is untouched by it.
const OpCounters& thread_op_totals();
void reset_thread_op_totals();

}  // namespace p2pcash::metrics
