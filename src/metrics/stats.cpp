#include "metrics/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace p2pcash::metrics {

void RunningStats::add(double sample) {
  samples_.push_back(sample);
  sum_ += sample;
  sum_sq_ += sample * sample;
  sorted_valid_ = false;
}

double RunningStats::mean() const {
  if (samples_.empty()) return 0;
  return sum_ / static_cast<double>(samples_.size());
}

double RunningStats::stddev() const {
  const auto n = static_cast<double>(samples_.size());
  if (samples_.size() < 2) return 0;
  double m = mean();
  double var = (sum_sq_ - n * m * m) / (n - 1);
  return var > 0 ? std::sqrt(var) : 0;
}

double RunningStats::min() const {
  if (samples_.empty()) return 0;
  return *std::min_element(samples_.begin(), samples_.end());
}

double RunningStats::max() const {
  if (samples_.empty()) return 0;
  return *std::max_element(samples_.begin(), samples_.end());
}

double RunningStats::percentile(double pct) const {
  if (samples_.empty()) return 0;
  if (pct < 0 || pct > 100)
    throw std::invalid_argument("RunningStats::percentile: pct out of range");
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
  double rank = pct / 100.0 * static_cast<double>(sorted_.size() - 1);
  auto lo = static_cast<std::size_t>(rank);
  auto hi = std::min(lo + 1, sorted_.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return sorted_[lo] * (1 - frac) + sorted_[hi] * frac;
}

std::string RunningStats::summary() const {
  std::ostringstream os;
  os << "mean=" << mean() << " sd=" << stddev() << " min=" << min()
     << " p50=" << percentile(50) << " p99=" << percentile(99)
     << " max=" << max() << " n=" << count();
  return os.str();
}

}  // namespace p2pcash::metrics
