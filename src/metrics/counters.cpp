#include "metrics/counters.h"

#include <sstream>

namespace p2pcash::metrics {

namespace {
thread_local OpCounters* g_active = nullptr;
thread_local OpCounters g_totals;
}  // namespace

std::string OpCounters::to_string() const {
  std::ostringstream os;
  os << "exp=" << exp << " hash=" << hash << " sig=" << sig << " ver=" << ver;
  return os.str();
}

std::string ResilienceCounters::to_string() const {
  std::ostringstream os;
  os << "retries=" << retries << " failovers=" << failovers
     << " dup_suppressed=" << duplicates_suppressed
     << " breaker_trips=" << breaker_trips << " timeouts=" << timeouts
     << " late_ignored=" << late_replies_ignored;
  return os.str();
}

ScopedOpCounting::ScopedOpCounting(OpCounters& target) : previous_(g_active) {
  g_active = &target;
}

ScopedOpCounting::~ScopedOpCounting() { g_active = previous_; }

ScopedSuspendOpCounting::ScopedSuspendOpCounting() : previous_(g_active) {
  g_active = nullptr;
}

ScopedSuspendOpCounting::~ScopedSuspendOpCounting() { g_active = previous_; }

void count_exp(std::uint64_t n) {
  g_totals.exp += n;
  if (g_active) g_active->exp += n;
}
void count_hash(std::uint64_t n) {
  g_totals.hash += n;
  if (g_active) g_active->hash += n;
}
void count_sig(std::uint64_t n) {
  g_totals.sig += n;
  if (g_active) g_active->sig += n;
}
void count_ver(std::uint64_t n) {
  g_totals.ver += n;
  if (g_active) g_active->ver += n;
}

OpCounters* active_counters() { return g_active; }

const OpCounters& thread_op_totals() { return g_totals; }

void reset_thread_op_totals() { g_totals = OpCounters{}; }

}  // namespace p2pcash::metrics
