// stats.h — running statistics for the benchmark harness.
//
// Table 2 of the paper reports mean and standard deviation over 100 trials;
// the ablation benches additionally report percentiles, so samples are kept.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace p2pcash::metrics {

/// Accumulates double-valued samples; O(n) memory to support percentiles.
class RunningStats {
 public:
  void add(double sample);

  std::size_t count() const { return samples_.size(); }
  double sum() const { return sum_; }
  double mean() const;
  /// Sample standard deviation (n-1 denominator); 0 for fewer than 2 samples.
  double stddev() const;
  double min() const;
  double max() const;
  /// Linear-interpolated percentile, pct in [0, 100].
  double percentile(double pct) const;

  /// "mean=… sd=… min=… p50=… p99=… max=… n=…" summary line.
  std::string summary() const;

 private:
  std::vector<double> samples_;
  double sum_ = 0;
  double sum_sq_ = 0;
  mutable std::vector<double> sorted_;  // cache, invalidated by add()
  mutable bool sorted_valid_ = false;
};

/// Byte-count accounting per named channel (e.g. per protocol role).
class ByteCounter {
 public:
  void add(std::uint64_t bytes) { total_ += bytes; ++messages_; }
  std::uint64_t total() const { return total_; }
  std::uint64_t messages() const { return messages_; }
  void reset() { total_ = 0; messages_ = 0; }

 private:
  std::uint64_t total_ = 0;
  std::uint64_t messages_ = 0;
};

}  // namespace p2pcash::metrics
