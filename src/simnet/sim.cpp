#include "simnet/sim.h"

#include <stdexcept>
#include <utility>

namespace p2pcash::simnet {

void Simulator::schedule(SimTime delay_ms, std::function<void()> fn) {
  if (delay_ms < 0)
    throw std::invalid_argument("Simulator::schedule: negative delay");
  queue_.push(Event{now_ + delay_ms, next_seq_++, std::move(fn)});
}

SimTime Simulator::run() {
  while (!queue_.empty()) {
    Event event = queue_.top();
    queue_.pop();
    now_ = event.time;
    ++executed_;
    event.fn();
  }
  return now_;
}

SimTime Simulator::run_until(SimTime deadline) {
  while (!queue_.empty() && queue_.top().time <= deadline) {
    Event event = queue_.top();
    queue_.pop();
    now_ = event.time;
    ++executed_;
    event.fn();
  }
  if (now_ < deadline) now_ = deadline;
  return now_;
}

}  // namespace p2pcash::simnet
