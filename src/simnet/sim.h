// sim.h — a minimal discrete-event simulator.
//
// The paper's Table 2 measures the payment protocol over PlanetLab (WAN
// RTTs of 50–100 ms) with Python-speed crypto.  We reproduce that testbed
// as a discrete-event simulation: virtual time advances only through
// scheduled events, so runs are deterministic, reproducible and as fast as
// the host allows while still exhibiting real latency/compute structure.

#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace p2pcash::simnet {

/// Virtual time in milliseconds (fractional for sub-ms compute costs).
using SimTime = double;

class Simulator {
 public:
  SimTime now() const { return now_; }

  /// Schedules `fn` to run at now() + delay_ms (delay must be >= 0).
  /// Events at equal times run in scheduling order (stable).
  void schedule(SimTime delay_ms, std::function<void()> fn);

  /// Runs events until the queue empties. Returns the final time.
  SimTime run();
  /// Runs events with time <= deadline; pending later events remain queued.
  SimTime run_until(SimTime deadline);

  std::size_t pending() const { return queue_.size(); }
  std::uint64_t events_executed() const { return executed_; }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;  // tiebreaker: FIFO among same-time events
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace p2pcash::simnet
