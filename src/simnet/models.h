// models.h — latency and compute-cost models for the simulated testbed.
//
// Latency reproduces the paper's environment: "round-trip time on WAN is
// expected to be at least 50-100 ms (observed on PlanetLab nodes in the
// US)".  Compute cost reproduces the paper's two implementation points:
// Python-native bignum crypto (~250 ms per signature — what Table 2
// actually measured) and OpenSSL (~4.8 ms per signature — what §7 projects
// real deployments would see).

#pragma once

#include <cstdint>
#include <string>

#include "bn/rng.h"
#include "metrics/counters.h"
#include "simnet/sim.h"

namespace p2pcash::simnet {

using NodeId = std::uint32_t;

/// One-way message latency model.
class LatencyModel {
 public:
  virtual ~LatencyModel() = default;
  virtual SimTime one_way_ms(NodeId from, NodeId to, bn::Rng& rng) = 0;
};

/// Fixed one-way latency (e.g. 0 for co-located processes).
class ConstantLatency final : public LatencyModel {
 public:
  explicit ConstantLatency(SimTime ms) : ms_(ms) {}
  SimTime one_way_ms(NodeId, NodeId, bn::Rng&) override { return ms_; }

 private:
  SimTime ms_;
};

/// Uniform one-way latency in [lo, hi) ms; self-messages are free.
class UniformLatency final : public LatencyModel {
 public:
  UniformLatency(SimTime lo_ms, SimTime hi_ms) : lo_(lo_ms), hi_(hi_ms) {}
  SimTime one_way_ms(NodeId from, NodeId to, bn::Rng& rng) override;

 private:
  SimTime lo_, hi_;
};

/// The paper's PlanetLab WAN: 50–100 ms RTT -> 25–50 ms one way.
UniformLatency planetlab_wan();
/// A LAN: 0.2–0.5 ms one way.
UniformLatency lan();

/// Charges virtual time for cryptographic work, given the op counts the
/// metrics layer recorded around a protocol step.
struct CostModel {
  std::string name;
  double exp_ms = 0;   ///< per modular exponentiation
  double hash_ms = 0;  ///< per protocol-level hash
  double sig_ms = 0;   ///< per plain signature
  double ver_ms = 0;   ///< per signature verification
  /// Host-noise factor: each charge is scaled by a uniform sample from
  /// [1-jitter, 1+jitter].  Models scheduling/GC variance on shared
  /// hardware — the paper's PlanetLab trials show an 18% latency stddev
  /// that is far above pure propagation-delay variance.
  double jitter = 0;

  SimTime cost_ms(const metrics::OpCounters& ops) const {
    return static_cast<double>(ops.exp) * exp_ms +
           static_cast<double>(ops.hash) * hash_ms +
           static_cast<double>(ops.sig) * sig_ms +
           static_cast<double>(ops.ver) * ver_ms;
  }

  /// cost_ms with the jitter factor applied (rng unused when jitter == 0).
  SimTime sample_cost_ms(const metrics::OpCounters& ops, bn::Rng& rng) const {
    SimTime base = cost_ms(ops);
    if (jitter <= 0 || base <= 0) return base;
    double u = static_cast<double>(rng.next_u64() >> 11) * 0x1.0p-53;
    return base * (1.0 - jitter + 2.0 * jitter * u);
  }
};

/// Python 2.4-era native bignums on a P4 (the paper's prototype: "average
/// wall-clock time for an RSA signature is 250ms").
CostModel python2007_cost();
/// OpenSSL on the same hardware ("compared to 4.8ms using OpenSSL").
CostModel openssl_cost();
/// Zero compute cost (isolates pure network effects).
CostModel free_cost();

/// Wire format for message-size accounting.
enum class WireFormat {
  kBinary,  ///< length-prefixed binary (the compact option of §7)
  kUri,     ///< URL-encoded with base64 payloads (what the prototype used)
};

/// Bytes on the wire for a message with `type_len` header characters and a
/// `payload_len`-byte body under the given format.  The URI form models the
/// paper's REST encoding: base64 expansion plus percent-escaping of the
/// '+', '/' and '=' characters (~5.3% of base64 output each, 3 bytes per
/// escape) plus key/value framing.
std::size_t encoded_size(WireFormat format, std::size_t type_len,
                         std::size_t payload_len);

/// Exact wire size: for kUri this renders the actual
/// "op=<type>&data=<base64(payload)>" form (what the paper's prototype put
/// on the wire) and measures it; for kBinary it equals encoded_size.
std::size_t encoded_size_exact(WireFormat format, std::string_view type,
                               std::span<const std::uint8_t> payload);

}  // namespace p2pcash::simnet
