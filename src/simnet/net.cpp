#include "simnet/net.h"

#include <stdexcept>

namespace p2pcash::simnet {

Network::Network(Simulator& sim, std::unique_ptr<LatencyModel> latency,
                 bn::Rng& rng, WireFormat format)
    : sim_(sim), latency_(std::move(latency)), rng_(rng), format_(format) {
  if (!latency_)
    throw std::invalid_argument("Network: latency model required");
}

NodeId Network::attach(Node& node) {
  node.id_ = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(&node);
  return node.id_;
}

void Network::send(Message msg) {
  if (msg.to >= nodes_.size())
    throw std::invalid_argument("Network::send: unknown destination");
  const std::size_t wire_bytes =
      encoded_size_exact(format_, msg.type, msg.payload);
  traffic_[msg.from].sent.add(wire_bytes);

  if (down_.contains(msg.from) || down_.contains(msg.to)) return;
  if (drop_rate_ > 0) {
    double u = static_cast<double>(rng_.next_u64() >> 11) * 0x1.0p-53;
    if (u < drop_rate_) return;
  }
  const SimTime delay = latency_->one_way_ms(msg.from, msg.to, rng_);
  sim_.schedule(delay, [this, msg = std::move(msg), wire_bytes]() {
    if (down_.contains(msg.to)) return;  // went down in flight
    traffic_[msg.to].received.add(wire_bytes);
    nodes_[msg.to]->on_message(msg);
  });
}

void Network::set_down(NodeId node, bool down) {
  if (down)
    down_.insert(node);
  else
    down_.erase(node);
}

std::uint64_t Network::bytes_sent(NodeId node) const {
  auto it = traffic_.find(node);
  return it == traffic_.end() ? 0 : it->second.sent.total();
}

std::uint64_t Network::bytes_received(NodeId node) const {
  auto it = traffic_.find(node);
  return it == traffic_.end() ? 0 : it->second.received.total();
}

std::uint64_t Network::messages_sent(NodeId node) const {
  auto it = traffic_.find(node);
  return it == traffic_.end() ? 0 : it->second.sent.messages();
}

void Network::reset_byte_counts() { traffic_.clear(); }

}  // namespace p2pcash::simnet
