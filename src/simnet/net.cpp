#include "simnet/net.h"

#include <stdexcept>

namespace p2pcash::simnet {

Network::Network(Simulator& sim, std::unique_ptr<LatencyModel> latency,
                 bn::Rng& rng, WireFormat format)
    : sim_(sim), latency_(std::move(latency)), rng_(rng), format_(format) {
  if (!latency_)
    throw std::invalid_argument("Network: latency model required");
}

NodeId Network::attach(Node& node) {
  node.id_ = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(&node);
  return node.id_;
}

double Network::sample_uniform() {
  return static_cast<double>(rng_.next_u64() >> 11) * 0x1.0p-53;
}

void Network::trace_event(const Message& msg, std::string_view name,
                          std::string_view detail) {
  if (!tracer_ || !msg.trace.valid()) return;
  std::string text(detail);
  text += " type=";
  text += msg.type;
  text += " " + std::to_string(msg.from) + "->" + std::to_string(msg.to);
  tracer_->event(msg.trace, name, text);
}

void Network::deliver_copy(Message msg, SimTime delay,
                           std::size_t wire_bytes) {
  sim_.schedule(delay, [this, msg = std::move(msg), wire_bytes]() {
    if (down_.contains(msg.to)) {  // went down in flight
      trace_event(msg, "net.lost", "receiver went down in flight");
      return;
    }
    traffic_[msg.to].received.add(wire_bytes);
    nodes_[msg.to]->on_message(msg);
  });
}

void Network::send(Message msg) {
  if (msg.to >= nodes_.size())
    throw std::invalid_argument("Network::send: unknown destination");
  const std::size_t wire_bytes =
      encoded_size_exact(format_, msg.type, msg.payload);
  // The sender pays exactly once per send(), whatever the network then does
  // to the message (see the byte-accounting contract in net.h).
  traffic_[msg.from].sent.add(wire_bytes);

  if (down_.contains(msg.from) || down_.contains(msg.to)) {
    trace_event(msg, "net.drop", "endpoint down");
    return;
  }
  if (partition_separates(msg.from, msg.to)) {
    trace_event(msg, "net.drop", "partitioned");
    return;
  }
  const LinkFault* fault = link_fault(msg.from, msg.to);
  if (drop_rate_ > 0 && sample_uniform() < drop_rate_) {
    trace_event(msg, "net.drop", "ambient loss");
    return;
  }
  if (fault && fault->drop > 0 && sample_uniform() < fault->drop) {
    trace_event(msg, "net.drop", "link fault loss");
    return;
  }

  SimTime delay = latency_->one_way_ms(msg.from, msg.to, rng_);
  if (fault) {
    delay += fault->extra_latency_ms;
    if (fault->reorder > 0 && sample_uniform() < fault->reorder) {
      // Hold this message back so later sends on the link overtake it.
      delay += sample_uniform() * fault->reorder_hold_ms;
      trace_event(msg, "net.reorder", "held back");
    }
  }
  const bool duplicate =
      fault && fault->duplicate > 0 && sample_uniform() < fault->duplicate;
  if (duplicate) {
    SimTime dup_delay = latency_->one_way_ms(msg.from, msg.to, rng_) +
                        fault->extra_latency_ms;
    trace_event(msg, "net.dup", "spurious extra copy");
    deliver_copy(msg, dup_delay, wire_bytes);  // the spurious extra copy
  }
  deliver_copy(std::move(msg), delay, wire_bytes);
}

void Network::set_down(NodeId node, bool down) {
  if (down)
    down_.insert(node);
  else
    down_.erase(node);
}

void Network::set_link_fault(NodeId from, NodeId to, const LinkFault& fault) {
  if (fault.active())
    link_faults_[{from, to}] = fault;
  else
    link_faults_.erase({from, to});
}

void Network::clear_link_fault(NodeId from, NodeId to) {
  link_faults_.erase({from, to});
}

const LinkFault* Network::link_fault(NodeId from, NodeId to) const {
  auto it = link_faults_.find({from, to});
  return it == link_faults_.end() ? nullptr : &it->second;
}

void Network::set_partition(const std::vector<std::vector<NodeId>>& groups) {
  partition_group_.clear();
  for (std::size_t g = 0; g < groups.size(); ++g) {
    for (NodeId node : groups[g]) partition_group_[node] = g;
  }
  partitioned_ = !partition_group_.empty();
}

bool Network::partition_separates(NodeId a, NodeId b) const {
  if (!partitioned_) return false;
  auto group = [this](NodeId n) {
    auto it = partition_group_.find(n);
    return it == partition_group_.end() ? std::size_t{0} : it->second;
  };
  return group(a) != group(b);
}

std::uint64_t Network::bytes_sent(NodeId node) const {
  auto it = traffic_.find(node);
  return it == traffic_.end() ? 0 : it->second.sent.total();
}

std::uint64_t Network::bytes_received(NodeId node) const {
  auto it = traffic_.find(node);
  return it == traffic_.end() ? 0 : it->second.received.total();
}

std::uint64_t Network::messages_sent(NodeId node) const {
  auto it = traffic_.find(node);
  return it == traffic_.end() ? 0 : it->second.sent.messages();
}

void Network::reset_byte_counts() { traffic_.clear(); }

}  // namespace p2pcash::simnet
