#include "simnet/fault.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>

namespace p2pcash::simnet {

namespace {

double uniform(bn::Rng& rng) {
  return static_cast<double>(rng.next_u64() >> 11) * 0x1.0p-53;
}

SimTime uniform_in(bn::Rng& rng, SimTime lo, SimTime hi) {
  return hi <= lo ? lo : lo + uniform(rng) * (hi - lo);
}

std::string fmt(const char* format, ...) {
  char buf[256];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buf, sizeof buf, format, args);
  va_end(args);
  return buf;
}

}  // namespace

void FaultPlan::set_recovery_hooks(NodeId node, RecoveryHook on_crash,
                                   RecoveryHook on_restart) {
  hooks_[node] = Hooks{std::move(on_crash), std::move(on_restart)};
}

void FaultPlan::schedule_crash(NodeId node, SimTime at, SimTime restart_at) {
  note(restart_at >= at
           ? fmt("t=%.0f crash node %u, restart t=%.0f", at, node, restart_at)
           : fmt("t=%.0f crash node %u, no restart", at, node));
  net_.sim().schedule(at, [this, node]() {
    auto it = hooks_.find(node);
    if (it != hooks_.end() && it->second.on_crash) it->second.on_crash(node);
    net_.set_down(node, true);
  });
  if (restart_at < at) return;
  net_.sim().schedule(restart_at, [this, node]() {
    // Recovery runs while the node is still dark, then it comes back up.
    auto it = hooks_.find(node);
    if (it != hooks_.end() && it->second.on_restart)
      it->second.on_restart(node);
    net_.set_down(node, false);
  });
}

void FaultPlan::schedule_link_fault(NodeId from, NodeId to,
                                    const LinkFault& fault, SimTime at,
                                    SimTime clear_at) {
  note(fmt("t=%.0f link %u->%u drop=%.2f lat+=%.0f dup=%.2f reord=%.2f "
           "until t=%.0f",
           at, from, to, fault.drop, fault.extra_latency_ms, fault.duplicate,
           fault.reorder, clear_at));
  net_.sim().schedule(at, [this, from, to, fault]() {
    net_.set_link_fault(from, to, fault);
  });
  if (clear_at >= at) {
    net_.sim().schedule(clear_at, [this, from, to]() {
      net_.clear_link_fault(from, to);
    });
  }
}

void FaultPlan::schedule_partition(std::string name,
                                   std::vector<std::vector<NodeId>> groups,
                                   SimTime at, SimTime heal_at) {
  note(fmt("t=%.0f partition '%s' (%zu groups), heal t=%.0f", at,
           name.c_str(), groups.size(), heal_at));
  net_.sim().schedule(at, [this, groups = std::move(groups)]() {
    net_.set_partition(groups);
  });
  if (heal_at >= at) {
    net_.sim().schedule(heal_at, [this]() { net_.heal_partition(); });
  }
}

void FaultPlan::randomize(const ChaosOptions& opt, bn::Rng& rng) {
  const SimTime window = std::max<SimTime>(0, opt.horizon_ms - opt.start_ms);

  for (std::size_t i = 0; i < opt.crashes && !opt.crashable.empty(); ++i) {
    NodeId node = opt.crashable[static_cast<std::size_t>(
        rng.next_u64() % opt.crashable.size())];
    SimTime at = opt.start_ms + uniform(rng) * window * 0.7;
    SimTime outage = uniform_in(rng, opt.min_outage_ms, opt.max_outage_ms);
    SimTime restart = std::min(at + outage, opt.horizon_ms);
    schedule_crash(node, at, restart);
  }

  for (std::size_t i = 0; i < opt.link_faults && opt.nodes.size() >= 2; ++i) {
    NodeId from = opt.nodes[static_cast<std::size_t>(rng.next_u64() %
                                                     opt.nodes.size())];
    NodeId to = from;
    while (to == from) {
      to = opt.nodes[static_cast<std::size_t>(rng.next_u64() %
                                              opt.nodes.size())];
    }
    LinkFault fault;
    fault.drop = uniform(rng) * opt.max_drop;
    fault.extra_latency_ms = uniform(rng) * opt.max_extra_latency_ms;
    fault.duplicate = uniform(rng) * opt.max_duplicate;
    fault.reorder = uniform(rng) * opt.max_reorder;
    fault.reorder_hold_ms = uniform(rng) * opt.max_reorder_hold_ms;
    SimTime at = opt.start_ms + uniform(rng) * window * 0.8;
    SimTime clear_at =
        std::min(at + uniform_in(rng, 1'000, window * 0.5), opt.horizon_ms);
    schedule_link_fault(from, to, fault, at, clear_at);
  }

  for (std::size_t i = 0; i < opt.partitions && opt.nodes.size() >= 2; ++i) {
    // Random two-way split; re-flip until both sides are non-empty.
    std::vector<NodeId> side_a, side_b;
    do {
      side_a.clear();
      side_b.clear();
      for (NodeId node : opt.nodes) {
        (rng.next_u64() & 1 ? side_a : side_b).push_back(node);
      }
    } while (side_a.empty() || side_b.empty());
    SimTime at = opt.start_ms + uniform(rng) * window * 0.6;
    SimTime heal = std::min(
        at + uniform_in(rng, opt.min_partition_ms, opt.max_partition_ms),
        opt.horizon_ms);
    schedule_partition(fmt("p%zu", i), {std::move(side_a), std::move(side_b)},
                       at, heal);
  }
}

}  // namespace p2pcash::simnet
