#include "simnet/models.h"

#include "wire/uri_form.h"

namespace p2pcash::simnet {

SimTime UniformLatency::one_way_ms(NodeId from, NodeId to, bn::Rng& rng) {
  if (from == to) return 0;
  // 53-bit uniform double in [0, 1).
  double u = static_cast<double>(rng.next_u64() >> 11) * 0x1.0p-53;
  return lo_ + (hi_ - lo_) * u;
}

UniformLatency planetlab_wan() { return UniformLatency(25.0, 50.0); }
UniformLatency lan() { return UniformLatency(0.2, 0.5); }

CostModel python2007_cost() {
  // Calibrated to the paper's observations: a plain signature costs 250 ms;
  // other operations scale with their exponentiation content relative to
  // OpenSSL (factor ~52 = 250 / 4.8).
  return CostModel{"python2007", /*exp=*/45.0, /*hash=*/0.5, /*sig=*/250.0,
                   /*ver=*/95.0, /*jitter=*/0.35};
}

CostModel openssl_cost() {
  // ~4.8 ms per signature on the paper's P4 3.2 GHz; a bare 1024-bit
  // exponentiation with a 160-bit exponent is ~0.8 ms; verification is two
  // exponentiations.
  return CostModel{"openssl", /*exp=*/0.8, /*hash=*/0.01, /*sig=*/4.8,
                   /*ver=*/1.8, /*jitter=*/0.10};
}

CostModel free_cost() { return CostModel{"free", 0, 0, 0, 0, 0}; }

std::size_t encoded_size(WireFormat format, std::size_t type_len,
                         std::size_t payload_len) {
  switch (format) {
    case WireFormat::kBinary:
      // type string + 4-byte length prefix + payload.
      return type_len + 4 + payload_len;
    case WireFormat::kUri: {
      // Estimate for "op=<type>&data=<base64(payload)>" with
      // percent-escaping; exact sizes come from encoded_size_exact.
      std::size_t b64 = (payload_len + 2) / 3 * 4;
      std::size_t escapes = b64 * 2 / 32 + 2;
      return 3 + type_len + 6 + b64 + 2 * escapes;
    }
  }
  return payload_len;
}

std::size_t encoded_size_exact(WireFormat format, std::string_view type,
                               std::span<const std::uint8_t> payload) {
  if (format == WireFormat::kBinary)
    return encoded_size(format, type.size(), payload.size());
  // Render the paper's actual REST form: op=<type>&data=<base64(payload)>,
  // both sides percent-escaped — and measure it.
  wire::UriForm form;
  form.add("op", std::string(type));
  form.add_bytes("data", payload);
  return form.rendered_size();
}

}  // namespace p2pcash::simnet
