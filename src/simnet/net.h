// net.h — simulated message-passing network.
//
// Nodes exchange typed, byte-counted messages through a Network that
// charges latency from a LatencyModel and supports fault injection (node
// down, message drop).  Per-node byte counters provide the Table-2
// "bytes transmitted" numbers under either wire format.

#pragma once

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "bn/rng.h"
#include "metrics/stats.h"
#include "simnet/models.h"
#include "simnet/sim.h"

namespace p2pcash::simnet {

/// A typed message. The payload is an opaque canonical encoding; `type`
/// selects the handler on the receiving actor.
struct Message {
  NodeId from = 0;
  NodeId to = 0;
  std::string type;
  std::vector<std::uint8_t> payload;
};

/// A network endpoint. Subclasses implement on_message.
class Node {
 public:
  virtual ~Node() = default;
  virtual void on_message(const Message& msg) = 0;

  NodeId id() const { return id_; }

 private:
  friend class Network;
  NodeId id_ = 0;
};

class Network {
 public:
  /// `rng` drives latency sampling and drop decisions; must outlive the
  /// network.
  Network(Simulator& sim, std::unique_ptr<LatencyModel> latency, bn::Rng& rng,
          WireFormat format = WireFormat::kBinary);

  Simulator& sim() { return sim_; }
  WireFormat wire_format() const { return format_; }
  /// The network's RNG stream (latency/drops/compute jitter).
  bn::Rng& rng() { return rng_; }

  /// Registers a node and assigns its id.
  NodeId attach(Node& node);

  /// Sends msg.from -> msg.to with sampled latency. Counts bytes at the
  /// sender (and receiver on delivery). Messages to down nodes or lost to
  /// the drop rate vanish silently — exactly like UDP to a dead host.
  void send(Message msg);

  /// Fault injection.
  void set_down(NodeId node, bool down);
  bool is_down(NodeId node) const { return down_.contains(node); }
  /// Probability in [0,1] that any message is silently lost.
  void set_drop_rate(double rate) { drop_rate_ = rate; }

  /// Bytes sent by a node since attach (wire-format encoded sizes).
  std::uint64_t bytes_sent(NodeId node) const;
  std::uint64_t bytes_received(NodeId node) const;
  std::uint64_t messages_sent(NodeId node) const;
  void reset_byte_counts();

 private:
  struct Traffic {
    metrics::ByteCounter sent;
    metrics::ByteCounter received;
  };

  Simulator& sim_;
  std::unique_ptr<LatencyModel> latency_;
  bn::Rng& rng_;
  WireFormat format_;
  std::vector<Node*> nodes_;
  std::set<NodeId> down_;
  double drop_rate_ = 0;
  std::map<NodeId, Traffic> traffic_;
};

}  // namespace p2pcash::simnet
