// net.h — simulated message-passing network.
//
// Nodes exchange typed, byte-counted messages through a Network that
// charges latency from a LatencyModel and supports fault injection (node
// down, message drop, directed per-link faults, named partitions).
// Per-node byte counters provide the Table-2 "bytes transmitted" numbers
// under either wire format.
//
// Byte-accounting contract (pinned by simnet_test): `bytes_sent` /
// `messages_sent` count exactly one wire-encoded message per send() call —
// the sender pays for what it puts on the wire whether the network drops,
// delays or duplicates it.  `bytes_received` counts every copy actually
// delivered, so a duplicated message is received twice but sent once.

#pragma once

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "bn/rng.h"
#include "metrics/stats.h"
#include "obs/trace.h"
#include "simnet/models.h"
#include "simnet/sim.h"

namespace p2pcash::transport {
class TcpNet;
}  // namespace p2pcash::transport

namespace p2pcash::simnet {

/// A typed message. The payload is an opaque canonical encoding; `type`
/// selects the handler on the receiving actor.
///
/// `trace` is the causal trace context the message propagates (simulator
/// metadata, not wire bytes: it is never encoded and never counted, so
/// tracing cannot perturb the byte accounting).  Duplicated and reordered
/// deliveries carry the same context as the original send.
struct Message {
  NodeId from = 0;
  NodeId to = 0;
  std::string type;
  std::vector<std::uint8_t> payload;
  obs::TraceContext trace;
};

/// A network endpoint. Subclasses implement on_message.
class Node {
 public:
  virtual ~Node() = default;
  virtual void on_message(const Message& msg) = 0;

  NodeId id() const { return id_; }

 private:
  friend class Network;
  // The real transport (src/transport/tcp_net) assigns ids the same way
  // Network does; it is the only other implementation of that role.
  friend class p2pcash::transport::TcpNet;
  NodeId id_ = 0;
};

/// A directed per-link fault model (WAN pathologies on one from->to edge).
/// All probabilities are independent per message; sampling is driven by the
/// network's seeded RNG, so schedules replay exactly.
struct LinkFault {
  double drop = 0;             ///< extra loss probability on this link
  SimTime extra_latency_ms = 0;  ///< added to every sampled one-way latency
  double duplicate = 0;        ///< probability a second copy is delivered
  double reorder = 0;          ///< probability a message is held back…
  SimTime reorder_hold_ms = 0;  ///< …by up to this much (later sends overtake)

  bool active() const {
    return drop > 0 || extra_latency_ms > 0 || duplicate > 0 || reorder > 0;
  }
};

class Network {
 public:
  /// `rng` drives latency sampling and drop decisions; must outlive the
  /// network.
  Network(Simulator& sim, std::unique_ptr<LatencyModel> latency, bn::Rng& rng,
          WireFormat format = WireFormat::kBinary);

  Simulator& sim() { return sim_; }
  WireFormat wire_format() const { return format_; }
  /// The network's RNG stream (latency/drops/compute jitter).
  bn::Rng& rng() { return rng_; }

  /// Attaches (or detaches, with nullptr) a tracer.  While attached, every
  /// network anomaly that touches a traced message — drop, duplicate,
  /// reorder hold, loss to a down node — is recorded as an event on the
  /// message's span, so a trace explains exactly why a retry fired.  The
  /// tracer must outlive the network or be detached first.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }
  obs::Tracer* tracer() const { return tracer_; }

  /// Registers a node and assigns its id.
  NodeId attach(Node& node);

  /// Sends msg.from -> msg.to with sampled latency. Counts bytes at the
  /// sender (and receiver on delivery). Messages to down nodes or lost to
  /// the drop rate vanish silently — exactly like UDP to a dead host.
  void send(Message msg);

  /// Fault injection.
  void set_down(NodeId node, bool down);
  bool is_down(NodeId node) const { return down_.contains(node); }
  /// Probability in [0,1] that any message is silently lost.
  void set_drop_rate(double rate) { drop_rate_ = rate; }

  /// Installs (or replaces) a directed per-link fault; an inactive fault
  /// clears the link.
  void set_link_fault(NodeId from, NodeId to, const LinkFault& fault);
  void clear_link_fault(NodeId from, NodeId to);
  void clear_link_faults() { link_faults_.clear(); }
  const LinkFault* link_fault(NodeId from, NodeId to) const;

  /// Partitions the node set: nodes in different groups cannot exchange
  /// messages (sends across the cut vanish like drops).  Nodes not listed
  /// in any group join group 0.  Replaces any previous partition.
  void set_partition(const std::vector<std::vector<NodeId>>& groups);
  /// Heals the partition: full connectivity again.
  void heal_partition() { partition_group_.clear(); partitioned_ = false; }
  bool partitioned() const { return partitioned_; }
  /// True iff a and b are currently on opposite sides of a partition.
  bool partition_separates(NodeId a, NodeId b) const;

  /// Bytes sent by a node since attach (wire-format encoded sizes).
  std::uint64_t bytes_sent(NodeId node) const;
  std::uint64_t bytes_received(NodeId node) const;
  std::uint64_t messages_sent(NodeId node) const;
  void reset_byte_counts();

 private:
  struct Traffic {
    metrics::ByteCounter sent;
    metrics::ByteCounter received;
  };

  /// Uniform double in [0, 1) from the network RNG.
  double sample_uniform();
  /// Schedules one delivered copy of msg after `delay`.
  void deliver_copy(Message msg, SimTime delay, std::size_t wire_bytes);

  /// Records a net.* anomaly event for msg when tracing is on.
  void trace_event(const Message& msg, std::string_view name,
                   std::string_view detail);

  Simulator& sim_;
  std::unique_ptr<LatencyModel> latency_;
  bn::Rng& rng_;
  WireFormat format_;
  obs::Tracer* tracer_ = nullptr;
  std::vector<Node*> nodes_;
  std::set<NodeId> down_;
  double drop_rate_ = 0;
  std::map<std::pair<NodeId, NodeId>, LinkFault> link_faults_;
  std::map<NodeId, std::size_t> partition_group_;
  bool partitioned_ = false;
  std::map<NodeId, Traffic> traffic_;
};

}  // namespace p2pcash::simnet
