// fault.h — deterministic, seed-driven fault scheduling (the chaos engine).
//
// The paper's availability argument (§6, PlanetLab deployment §7) claims the
// witness scheme keeps its *hard* double-spend guarantee while witnesses
// crash, churn and the WAN loses messages.  A FaultPlan turns that claim
// into an executable schedule: per-node crash/restart windows (wired to the
// owner's crash-recovery hooks so a restart re-runs recovery rather than
// just flipping the down bit), directed per-link faults (loss, added
// latency, duplication, reordering) and named partitions that heal at a
// scheduled time.  Every schedule is generated from a bn::Rng, so a single
// seed reproduces the whole run — the chaos suite's failure artifact is
// just the seed plus the plan's log().

#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "bn/rng.h"
#include "simnet/net.h"

namespace p2pcash::simnet {

class FaultPlan {
 public:
  /// Called with the node id at crash time (e.g. snapshot durable state —
  /// the synchronous-WAL model) and at restart time (e.g. rebuild the
  /// service from the snapshot), while the node is still marked down.
  using RecoveryHook = std::function<void(NodeId)>;

  explicit FaultPlan(Network& net) : net_(net) {}

  /// Registers crash/restart hooks for a node. Either may be null.
  void set_recovery_hooks(NodeId node, RecoveryHook on_crash,
                          RecoveryHook on_restart);

  /// Schedules a crash window [at, restart_at); restart_at < at means the
  /// node never comes back within this plan.
  void schedule_crash(NodeId node, SimTime at, SimTime restart_at);

  /// Schedules a directed link fault over [at, clear_at).
  void schedule_link_fault(NodeId from, NodeId to, const LinkFault& fault,
                           SimTime at, SimTime clear_at);

  /// Schedules a named partition over [at, heal_at). Replaces any earlier
  /// partition while active; healing restores full connectivity.
  void schedule_partition(std::string name,
                          std::vector<std::vector<NodeId>> groups, SimTime at,
                          SimTime heal_at);

  /// Random-schedule generator: everything below is sampled from `rng`, so
  /// the same (options, seed) pair always yields the same schedule.
  struct ChaosOptions {
    SimTime start_ms = 2'000;    ///< quiet warm-up before the first fault
    SimTime horizon_ms = 60'000;  ///< all faults cleared/healed by here

    std::vector<NodeId> crashable;  ///< nodes eligible for crash/restart
    std::size_t crashes = 2;
    SimTime min_outage_ms = 1'000;
    SimTime max_outage_ms = 10'000;

    std::vector<NodeId> nodes;  ///< population for link faults / partitions
    std::size_t link_faults = 4;
    double max_drop = 0.4;
    SimTime max_extra_latency_ms = 150;
    double max_duplicate = 0.5;
    double max_reorder = 0.5;
    SimTime max_reorder_hold_ms = 300;

    std::size_t partitions = 1;
    SimTime min_partition_ms = 2'000;
    SimTime max_partition_ms = 8'000;
  };
  void randomize(const ChaosOptions& opt, bn::Rng& rng);

  /// Human-readable schedule, one line per scheduled fault — printed next
  /// to the seed when a chaos run violates an invariant.
  const std::vector<std::string>& log() const { return log_; }

  Network& net() { return net_; }

 private:
  struct Hooks {
    RecoveryHook on_crash;
    RecoveryHook on_restart;
  };

  void note(std::string line) { log_.push_back(std::move(line)); }

  Network& net_;
  std::map<NodeId, Hooks> hooks_;
  std::vector<std::string> log_;
};

}  // namespace p2pcash::simnet
