#include "ecash/wallet.h"

#include <stdexcept>

namespace p2pcash::ecash {

using bn::BigInt;

Wallet::Wallet(group::SchnorrGroup grp, sig::PublicKey broker_coin_key,
               sig::PublicKey broker_identity_key, bn::Rng& rng)
    : grp_(std::move(grp)),
      broker_coin_key_(std::move(broker_coin_key)),
      broker_identity_key_(std::move(broker_identity_key)),
      rng_(rng) {}

Wallet::Withdrawal Wallet::begin_withdrawal(
    const Broker::WithdrawalOffer& offer) {
  nizk::CoinSecret secret = nizk::CoinSecret::random(grp_, rng_);
  nizk::Commitments comm = nizk::commit(grp_, secret);  // A, B (4 Exp)
  BareCoin shape;  // only to build the canonical blind message
  shape.info = offer.info;
  shape.a = comm.a;
  shape.b = comm.b;
  blindsig::BlindRequester requester(grp_, broker_coin_key_.y,
                                     offer.info.bytes(),
                                     shape.blind_message());
  BigInt e = requester.challenge(offer.first, rng_);
  return Withdrawal{offer.session,   offer.info,   std::move(secret),
                    std::move(comm), std::move(requester), std::move(e)};
}

Outcome<WalletCoin> Wallet::finish(const CoinInfo& info,
                                   const nizk::CoinSecret& secret,
                                   const nizk::Commitments& comm,
                                   blindsig::BlindRequester& requester,
                                   const blindsig::SignerResponse& resp,
                                   const WitnessTable& table) {
  if (table.version() != info.list_version)
    return Refusal{RefusalReason::kInternal,
                   "witness table version does not match coin info"};
  WalletCoin wc;
  wc.secret = secret;
  wc.coin.bare.info = info;
  wc.coin.bare.a = comm.a;
  wc.coin.bare.b = comm.b;
  try {
    wc.coin.bare.sig = requester.unblind(resp);
  } catch (const std::runtime_error& err) {
    return Refusal{RefusalReason::kBadSignature, err.what()};
  }
  // Attach the broker-signed witness entries selected by h(bare coin):
  // probe indices 0, 1, 2, … and skip collisions with already-assigned
  // witnesses, so the coin carries witness_n *distinct* witnesses.
  const auto coin_hash = wc.coin.bare.coin_hash();
  for (std::uint8_t idx = 0;
       idx < kMaxWitnessProbes && wc.coin.witnesses.size() < info.witness_n;
       ++idx) {
    BigInt point = witness_point(coin_hash, idx);
    bool collision = false;
    for (const auto& prior : wc.coin.witnesses) {
      if (prior.contains(point)) collision = true;
    }
    if (collision) continue;
    auto entry = table.lookup(point);
    if (!entry)
      return Refusal{RefusalReason::kInternal, "witness table has a gap"};
    // The client verifies the broker's signature on the entry it copies
    // (its 1 Ver in Table 1's withdrawal row).
    if (!sig::verify(grp_, broker_identity_key_, entry->signed_payload(),
                     entry->broker_sig))
      return Refusal{RefusalReason::kBadSignature,
                     "witness entry signature invalid"};
    wc.coin.witnesses.push_back(std::move(*entry));
  }
  if (wc.coin.witnesses.size() < info.witness_n)
    return Refusal{RefusalReason::kInternal,
                   "not enough distinct witnesses in the table"};
  return wc;
}

Outcome<WalletCoin> Wallet::complete_withdrawal(
    Withdrawal& state, const blindsig::SignerResponse& resp,
    const WitnessTable& table) {
  auto out = finish(state.info, state.secret, state.comm, state.requester,
                    resp, table);
  // On success the coin owns the only live copy; the in-flight state must
  // not keep a second one (the caller may hold `state` indefinitely).
  if (out) state.secret.wipe();
  return out;
}

Wallet::PaymentIntent Wallet::prepare_payment(const WalletCoin& coin,
                                              const MerchantId& merchant) {
  PaymentIntent intent;
  intent.coin_hash = coin.coin.bare.coin_hash();
  intent.salt.resize(16);
  rng_.fill(intent.salt);
  intent.nonce = payment_nonce(intent.salt, merchant);
  intent.merchant = merchant;
  return intent;
}

Outcome<PaymentTranscript> Wallet::build_transcript(
    const WalletCoin& coin, const PaymentIntent& intent,
    const std::vector<WitnessCommitment>& commitments, Timestamp now) {
  // Each commitment must cover exactly this coin and this (hidden)
  // merchant, be unexpired, and carry a valid signature from one of the
  // coin's assigned witnesses; witness_k distinct witnesses are required.
  std::vector<MerchantId> committed;
  for (const auto& commitment : commitments) {
    if (commitment.coin_hash != intent.coin_hash)
      return Refusal{RefusalReason::kBadProof,
                     "commitment covers another coin"};
    if (commitment.nonce != intent.nonce)
      return Refusal{RefusalReason::kBadNonce,
                     "commitment bound to other nonce"};
    if (now >= commitment.expires)
      return Refusal{RefusalReason::kStaleRequest, "commitment expired"};
    const SignedWitnessEntry* entry = nullptr;
    for (const auto& w : coin.coin.witnesses) {
      if (w.merchant == commitment.witness) {
        entry = &w;
        break;
      }
    }
    if (!entry)
      return Refusal{RefusalReason::kWrongWitness,
                     "commitment from a non-assigned witness"};
    for (const auto& prior : committed) {
      if (prior == commitment.witness)
        return Refusal{RefusalReason::kBadProof,
                       "duplicate commitment witness"};
    }
    if (!sig::verify(grp_, entry->witness_key, commitment.signed_payload(),
                     commitment.witness_sig))
      return Refusal{RefusalReason::kBadSignature,
                     "witness commitment signature invalid"};
    committed.push_back(commitment.witness);
  }
  if (committed.size() < coin.coin.bare.info.witness_k)
    return Refusal{RefusalReason::kBadProof,
                   "insufficient witness commitments"};

  PaymentTranscript t;
  t.coin = coin.coin;
  t.merchant = intent.merchant;
  t.datetime = now;
  t.salt = intent.salt;
  BigInt d = payment_challenge(grp_, t.coin, t.merchant, t.datetime);
  t.resp = nizk::respond(grp_, coin.secret, d);
  return t;
}

Wallet::Renewal Wallet::begin_renewal(const WalletCoin& old_coin,
                                      const Broker::RenewalOffer& offer,
                                      const BigInt& renewal_challenge,
                                      Timestamp datetime) {
  nizk::CoinSecret secret = nizk::CoinSecret::random(grp_, rng_);
  nizk::Commitments comm = nizk::commit(grp_, secret);
  BareCoin shape;
  shape.info = offer.info;
  shape.a = comm.a;
  shape.b = comm.b;
  blindsig::BlindRequester requester(grp_, broker_coin_key_.y,
                                     offer.info.bytes(),
                                     shape.blind_message());
  BigInt e = requester.challenge(offer.first, rng_);
  Renewal state{offer.session,
                offer.info,
                std::move(secret),
                std::move(comm),
                std::move(requester),
                std::move(e),
                nizk::respond(grp_, old_coin.secret, renewal_challenge),
                datetime};
  return state;
}

Outcome<WalletCoin> Wallet::complete_renewal(
    Renewal& state, const blindsig::SignerResponse& resp,
    const WitnessTable& table) {
  auto out = finish(state.info, state.secret, state.comm, state.requester,
                    resp, table);
  if (out) state.secret.wipe();
  return out;
}

Wallet::ReceiveIntent Wallet::prepare_receive() {
  ReceiveIntent intent;
  intent.secret = nizk::CoinSecret::random(grp_, rng_);
  intent.comm = nizk::commit(grp_, intent.secret);
  return intent;
}

nizk::Response Wallet::respond_transfer(const WalletCoin& coin,
                                        const BigInt& new_a,
                                        const BigInt& new_b,
                                        Timestamp datetime) const {
  BigInt d = transfer_challenge(grp_, coin.coin, new_a, new_b, datetime);
  return nizk::respond(grp_, coin.secret, d);
}

Outcome<WalletCoin> Wallet::accept_transfer(const Coin& coin_before,
                                            const TransferLink& link,
                                            const ReceiveIntent& intent) const {
  if (link.new_a != intent.comm.a || link.new_b != intent.comm.b)
    return Refusal{RefusalReason::kBadProof,
                   "transfer link targets other commitments"};
  WalletCoin received;
  received.coin = coin_before;
  received.coin.transfers.push_back(link);
  received.secret = intent.secret;
  // The recipient verifies the whole chain (and thus the witness's
  // signature on its own link) before treating the coin as money.
  if (auto chain = verify_transfer_chain(grp_, received.coin); !chain)
    return chain.refusal();
  return received;
}

Cents Wallet::balance() const {
  Cents total = 0;
  for (const auto& c : coins_) total += c.coin.bare.info.denomination;
  return total;
}

std::optional<WalletCoin> Wallet::take_coin(Cents denomination) {
  for (auto it = coins_.begin(); it != coins_.end(); ++it) {
    if (it->coin.bare.info.denomination == denomination) {
      WalletCoin out = std::move(*it);
      coins_.erase(it);
      return out;
    }
  }
  return std::nullopt;
}

}  // namespace p2pcash::ecash
